// Alloc-regression gates for the simulator's hot paths. These are
// ordinary tests (they run in CI's test and bench-smoke jobs) so an
// allocation slipped into the event loop fails the build instead of
// silently eroding the numbers BENCH_simperf.json records.
package dvemig

import (
	"encoding/json"
	"os"
	"testing"
	"time"

	"dvemig/internal/eval"
	"dvemig/internal/obs"
	"dvemig/internal/simprof"
	"dvemig/internal/simtime"
	"dvemig/internal/sockmig"
)

// ringState carries the re-arm parameters behind one pointer: boxing a
// bare Duration into the trampoline's any-slot would itself allocate,
// which is exactly what this gate exists to catch.
type ringState struct {
	s *simtime.Scheduler
	d simtime.Duration
}

// ringArm is the closure-free self-rescheduling event the alloc gate
// fires: the scheduler's AfterCall trampoline carries the state pointer
// through its any-slot, so re-arming allocates nothing once the event
// free list is warm.
func ringArm(a0, _ any) {
	r := a0.(*ringState)
	r.s.AfterCall(r.d, "gate.ring", ringArm, r, nil)
}

// TestAllocGateEventLoop pins the scheduler's fire/re-arm cycle — the
// dominant pattern of every simulation — at zero allocations per fired
// event.
func TestAllocGateEventLoop(t *testing.T) {
	s := simtime.NewScheduler()
	for i := 0; i < 64; i++ {
		r := &ringState{s: s, d: simtime.Duration(i+1) * simtime.Duration(time.Microsecond)}
		s.AfterCall(r.d, "gate.ring", ringArm, r, nil)
	}
	s.RunFor(simtime.Duration(time.Millisecond)) // warm the free list
	per := testing.AllocsPerRun(10, func() {
		s.RunFor(64 * simtime.Duration(time.Microsecond))
	})
	if per > 0 {
		t.Fatalf("event-loop step allocates %.1f/run, want 0", per)
	}
}

// TestAllocGateTimerChurn pins the arm/cancel pattern the TCP
// retransmission timer generates on every ACK at zero allocations.
func TestAllocGateTimerChurn(t *testing.T) {
	s := simtime.NewScheduler()
	for i := 0; i < 1024; i++ {
		s.After(simtime.Duration(i+1)*simtime.Duration(time.Hour), "gate.backdrop", func() {})
	}
	ev := s.After(simtime.Duration(time.Second), "gate.rto", func() {})
	s.Cancel(ev) // warm the free list
	per := testing.AllocsPerRun(100, func() {
		e := s.After(simtime.Duration(time.Second), "gate.rto", func() {})
		s.Cancel(e)
	})
	if per > 0 {
		t.Fatalf("timer arm+cancel allocates %.1f/run, want 0", per)
	}
}

// TestAllocGateTicker pins the periodic-loop re-arm (process ticks,
// client command loops) at zero allocations per tick.
func TestAllocGateTicker(t *testing.T) {
	s := simtime.NewScheduler()
	var ticks int
	tk := simtime.NewTicker(s, simtime.Duration(time.Millisecond), "gate.tick", func() { ticks++ })
	tk.Start()
	defer tk.Stop()
	s.RunFor(simtime.Duration(10 * time.Millisecond)) // warm up
	per := testing.AllocsPerRun(10, func() {
		s.RunFor(simtime.Duration(10 * time.Millisecond))
	})
	if per > 0 {
		t.Fatalf("ticker re-arm allocates %.1f per 10 ticks, want 0", per)
	}
}

// TestAllocGateMigrationEngine is the bench-smoke regression fence: a
// full 8-connection live migration must not allocate more than 25%
// over the allocs/op recorded in BENCH_simperf.json. Regenerating the
// record (SIMPERF_REPORT=1 go test -run TestWriteSimPerfReport)
// re-baselines the gate; deleting it skips the gate.
func TestAllocGateMigrationEngine(t *testing.T) {
	data, err := os.ReadFile("BENCH_simperf.json")
	if err != nil {
		t.Skipf("no BENCH_simperf.json: %v", err)
	}
	var report struct {
		MigrationEngine struct {
			Current struct {
				AllocsPerOp float64 `json:"allocs_per_op"`
			} `json:"current"`
		} `json:"MigrationEngine"`
	}
	if err := json.Unmarshal(data, &report); err != nil {
		t.Fatalf("BENCH_simperf.json: %v", err)
	}
	recorded := report.MigrationEngine.Current.AllocsPerOp
	if recorded <= 0 {
		t.Skip("BENCH_simperf.json has no MigrationEngine.current record")
	}
	fc := eval.DefaultFreezeConfig(sockmig.IncrementalCollective, 8)
	fc.Repeats = 1
	measured := testing.AllocsPerRun(3, func() {
		if _, err := eval.RunFreezePoint(fc); err != nil {
			t.Fatal(err)
		}
	})
	ceiling := recorded * 1.25
	if measured > ceiling {
		t.Fatalf("migration engine allocs/op = %.0f, exceeds recorded %.0f +25%% headroom (%.0f) — "+
			"fix the regression or re-baseline with SIMPERF_REPORT=1",
			measured, recorded, ceiling)
	}
	t.Logf("migration engine allocs/op = %.0f (recorded %.0f, ceiling %.0f)", measured, recorded, ceiling)
}

// TestAllocGateSamplerDisabled pins the streaming-observability plane's
// disabled path at zero allocations: a nil *Sampler (the default when
// no cell opts into sampling) must make every method a free no-op, so
// the sampler's existence costs unobserved simulations nothing.
func TestAllocGateSamplerDisabled(t *testing.T) {
	var s *obs.Sampler
	var ts *obs.TimeSeries
	var e *obs.SLOEngine
	var w obs.SampleWindow
	per := testing.AllocsPerRun(100, func() {
		s.Start()
		s.Flush()
		s.Stop()
		s.OnSample(nil)
		s.AttachSLO(nil)
		_ = s.Store()
		_ = s.Windows()
		ts.Append(0, 0)
		_ = ts.Len()
		e.Observe(w)
		_ = e.Results()
	})
	if per > 0 {
		t.Fatalf("disabled sampler path allocates %.1f/run, want 0", per)
	}
}

// TestAllocGateSimprofDisabled pins the self-profiling plane's disabled
// path at zero allocations: a nil *Profiler (the default everywhere —
// no command flag, no config field set) hands out nil collectors whose
// every method must be a free no-op, so the scheduler's per-event
// Begin/End hook, the parallel runner's cell brackets and the migration
// engine's phase recording cost unprofiled runs nothing.
func TestAllocGateSimprofDisabled(t *testing.T) {
	var p *simprof.Profiler
	lp := p.Loop("cell")
	sp := p.Sweep("sweep", 4)
	sk := p.Skew("cell")
	if lp != nil || sp != nil || sk != nil {
		t.Fatal("nil profiler handed out non-nil collectors")
	}
	per := testing.AllocsPerRun(100, func() {
		t0 := lp.Begin()
		lp.End(t0, "netsim.deliver", 3)
		_ = lp.Events()
		sp.Begin(4, 2)
		sp.CellStart(0, 0)
		sp.CellEnd(0)
		sp.End()
		sk.Record("freeze", 1000, sk.NowNs())
	})
	if per > 0 {
		t.Fatalf("disabled simprof path allocates %.1f/run, want 0", per)
	}
}
