module dvemig

go 1.22
