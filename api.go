package dvemig

import (
	"dvemig/internal/dve"
	"dvemig/internal/lb"
	"dvemig/internal/migration"
	"dvemig/internal/netsim"
	"dvemig/internal/netstack"
	"dvemig/internal/openarena"
	"dvemig/internal/proc"
	"dvemig/internal/simtime"
	"dvemig/internal/sockmig"
	"dvemig/internal/stream"
)

// This file is the public API surface: the types a downstream user needs
// to assemble a simulated single-IP cluster, run processes with live
// network connections, migrate them, and turn on the load-balancing
// middleware. The implementation lives in internal/ packages; everything
// re-exported here is stable.

// Core simulation types.
type (
	// Scheduler is the virtual clock and event loop every simulation
	// runs on.
	Scheduler = simtime.Scheduler
	// Duration and Time are virtual-time spans and instants
	// (time.Duration compatible).
	Duration = simtime.Duration
	// Cluster is the single-IP-address testbed: broadcast router,
	// in-cluster switch, server nodes.
	Cluster = proc.Cluster
	// Node is one server machine.
	Node = proc.Node
	// Process is a simulated OS process with threads, memory and FDs.
	Process = proc.Process
	// Addr is an IPv4 address on the simulated network.
	Addr = netsim.Addr
	// Stack is one machine's network stack (server nodes expose it as
	// Node.Stack; external client hosts are bare stacks).
	Stack = netstack.Stack
	// TCPSocket and UDPSocket are the simulated kernel sockets.
	TCPSocket = netstack.TCPSocket
	// UDPSocket is the datagram counterpart.
	UDPSocket = netstack.UDPSocket
)

// Migration engine types.
type (
	// Migrator is the per-node migration daemon (migd).
	Migrator = migration.Migrator
	// MigrationConfig tunes precopy, strategy, capture and deadlines.
	MigrationConfig = migration.Config
	// MigrationMetrics reports one migration (freeze time, bytes, …).
	MigrationMetrics = migration.Metrics
	// Strategy selects the socket migration variant.
	Strategy = sockmig.Strategy
	// Guardian / Standby are the fault-tolerance extension.
	Guardian = migration.Guardian
	// Standby receives checkpoints and restarts processes after a crash.
	Standby = migration.Standby
)

// Socket migration strategies (§III-C).
const (
	Iterative             = sockmig.Iterative
	Collective            = sockmig.Collective
	IncrementalCollective = sockmig.IncrementalCollective
)

// Load balancing middleware types.
type (
	// Conductor is the per-node load-balancing daemon (cond).
	Conductor = lb.Conductor
	// ConductorConfig tunes the four policies.
	ConductorConfig = lb.Config
)

// Conductor modes.
const (
	ModeBalance     = lb.ModeBalance
	ModeConsolidate = lb.ModeConsolidate
)

// NewScheduler creates the virtual clock a simulation runs on.
func NewScheduler() *Scheduler { return simtime.NewScheduler() }

// NewCluster builds a single-IP cluster with n server nodes attached to
// a broadcast router (public side) and a switch (in-cluster side).
func NewCluster(sched *Scheduler, n int) *Cluster { return proc.NewCluster(sched, n) }

// NewMigrator starts the migration service (migd + capture + transd) on
// a node.
func NewMigrator(n *Node, cfg MigrationConfig) (*Migrator, error) {
	return migration.NewMigrator(n, cfg)
}

// DefaultMigrationConfig returns the paper's configuration: precopy with
// a 20 ms freeze threshold and incremental collective socket migration.
func DefaultMigrationConfig() MigrationConfig { return migration.DefaultConfig() }

// NewConductor starts the load-balancing daemon on a node that already
// runs a Migrator.
func NewConductor(n *Node, m *Migrator, cfg ConductorConfig) (*Conductor, error) {
	return lb.NewConductor(n, m, cfg)
}

// DefaultConductorConfig returns the evaluation's policy parameters.
func DefaultConductorConfig() ConductorConfig { return lb.DefaultConfig() }

// NewGuardian starts periodic checkpointing of p to the standby at buddy.
func NewGuardian(p *Process, buddy Addr, interval Duration) (*Guardian, error) {
	return migration.NewGuardian(p, buddy, interval)
}

// NewStandby starts the checkpoint receiver on a node.
func NewStandby(n *Node) (*Standby, error) { return migration.NewStandby(n) }

// NewTCPSocket allocates a TCP socket on a node's stack.
func NewTCPSocket(n *Node) *TCPSocket { return netstack.NewTCPSocket(n.Stack) }

// NewTCPSocketOn allocates a TCP socket on any stack (e.g. an external
// client host created with Cluster.NewExternalHost).
func NewTCPSocketOn(st *Stack) *TCPSocket { return netstack.NewTCPSocket(st) }

// NewUDPSocket allocates a UDP socket on a node's stack.
func NewUDPSocket(n *Node) *UDPSocket { return netstack.NewUDPSocket(n.Stack) }

// NewUDPSocketOn allocates a UDP socket on any stack.
func NewUDPSocketOn(st *Stack) *UDPSocket { return netstack.NewUDPSocket(st) }

// Experiment entry points (the paper's evaluation, ready to run).
type (
	// DVEConfig / DVEResults drive the Fig 5 distributed-virtual-
	// environment experiment.
	DVEConfig = dve.Config
	// DVEResults carries the measured series.
	DVEResults = dve.Results
	// Fig4Config / Fig4Result drive the OpenArena experiment.
	Fig4Config = openarena.Fig4Config
	// Fig4Result carries Fig 4's measurements.
	Fig4Result = openarena.Fig4Result
	// StreamConfig / StreamResult drive the streaming extension.
	StreamConfig = stream.ExperimentConfig
	// StreamResult carries viewer-experience measurements.
	StreamResult = stream.ExperimentResult
)

// DefaultDVEConfig mirrors §VI-C: 5 nodes, 10,000 clients, ~15 minutes.
func DefaultDVEConfig() DVEConfig { return dve.DefaultConfig() }

// RunDVE builds and runs the Fig 5d/5e/5f simulation.
func RunDVE(cfg DVEConfig) (*DVEResults, error) {
	sim, err := dve.New(cfg)
	if err != nil {
		return nil, err
	}
	return sim.Run(), nil
}

// DefaultFig4Config mirrors §VI-B: 24 clients, 20 updates/s.
func DefaultFig4Config() Fig4Config { return openarena.DefaultFig4Config() }

// RunFig4 runs the OpenArena migration experiment.
func RunFig4(cfg Fig4Config) (*Fig4Result, error) { return openarena.RunFig4(cfg) }

// DefaultStreamConfig mirrors the §VIII streaming scenario.
func DefaultStreamConfig() StreamConfig { return stream.DefaultExperimentConfig() }

// RunStream runs the migrate-while-streaming experiment.
func RunStream(cfg StreamConfig) (*StreamResult, error) { return stream.RunExperiment(cfg) }
