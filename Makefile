# Convenience targets; everything is plain `go` underneath.

.PHONY: all build test bench report examples cover

all: build test

build:
	go build ./...

test:
	go vet ./...
	go test ./...

bench:
	go test -bench=. -benchmem ./...

report:
	go run ./cmd/report

examples:
	@for d in examples/*/; do echo "== $$d"; go run ./$$d; echo; done

cover:
	go test -cover ./internal/... .
