// Benchmark harness: one benchmark per table/figure of the paper's
// evaluation section, plus the ablations DESIGN.md calls out. The
// benchmarks measure *simulated* quantities (freeze milliseconds, bytes,
// CPU spread) and publish them as custom metrics; wall-clock ns/op is the
// cost of running the simulator, not the system.
//
//	go test -bench=. -benchmem
package dvemig

import (
	"fmt"
	"testing"

	"dvemig/internal/dve"
	"dvemig/internal/eval"
	"dvemig/internal/hla"
	"dvemig/internal/migration"
	"dvemig/internal/openarena"
	"dvemig/internal/proc"
	"dvemig/internal/simtime"
	"dvemig/internal/sockmig"
	"dvemig/internal/stream"
)

// BenchmarkFig4PacketDelay regenerates Fig 4: the packet-level delay an
// OpenArena server's clients observe when the server is live migrated
// (paper: ≈25 ms on the 50 ms cadence; ≈20 ms process downtime).
func BenchmarkFig4PacketDelay(b *testing.B) {
	var extra, freeze float64
	for i := 0; i < b.N; i++ {
		res, err := openarena.RunFig4(openarena.DefaultFig4Config())
		if err != nil {
			b.Fatal(err)
		}
		extra = float64(res.ExtraDelay) / 1e6
		freeze = float64(res.Metrics.FreezeTime) / 1e6
	}
	b.ReportMetric(extra, "delay-ms")
	b.ReportMetric(freeze, "freeze-ms")
}

func freezeBench(b *testing.B, strategy sockmig.Strategy, conns int) *eval.FreezePoint {
	b.Helper()
	fc := eval.DefaultFreezeConfig(strategy, conns)
	fc.Repeats = 1
	var pt *eval.FreezePoint
	for i := 0; i < b.N; i++ {
		var err error
		pt, err = eval.RunFreezePoint(fc)
		if err != nil {
			b.Fatal(err)
		}
	}
	return pt
}

// BenchmarkFig5bFreezeTime regenerates Fig 5b: worst-case process freeze
// time vs connection count for the three socket migration strategies
// (paper @1024: iterative ≈190 ms, incremental collective <40 ms).
func BenchmarkFig5bFreezeTime(b *testing.B) {
	for _, s := range eval.SweepStrategies {
		for _, n := range []int{16, 64, 256, 1024} {
			b.Run(fmt.Sprintf("%s/conns-%d", slug(s), n), func(b *testing.B) {
				pt := freezeBench(b, s, n)
				b.ReportMetric(float64(pt.WorstFreeze)/1e6, "freeze-ms")
			})
		}
	}
}

// BenchmarkFig5cSocketBytes regenerates Fig 5c: socket data transferred
// during the freeze phase (paper @1024: ≈3.5 MB full vs a small fraction
// incremental).
func BenchmarkFig5cSocketBytes(b *testing.B) {
	for _, s := range eval.SweepStrategies {
		for _, n := range []int{16, 64, 256, 1024} {
			b.Run(fmt.Sprintf("%s/conns-%d", slug(s), n), func(b *testing.B) {
				pt := freezeBench(b, s, n)
				b.ReportMetric(float64(pt.WorstSockBytes)/1024, "sock-kB")
			})
		}
	}
}

func slug(s sockmig.Strategy) string {
	switch s {
	case sockmig.Iterative:
		return "iterative"
	case sockmig.Collective:
		return "collective"
	default:
		return "incremental"
	}
}

func dveBenchConfig(lbOn bool) dve.Config {
	cfg := dve.DefaultConfig()
	cfg.Duration = 300 * 1e9
	cfg.MoveStart = 30 * 1e9
	cfg.MoveProb = 0.08
	cfg.LB = lbOn
	cfg.LBConfig.ImbalanceThreshold = 0.08
	cfg.LBConfig.CalmDown = 8e9
	return cfg
}

func runDVE(b *testing.B, lbOn bool) *dve.Results {
	b.Helper()
	var r *dve.Results
	for i := 0; i < b.N; i++ {
		sim, err := dve.New(dveBenchConfig(lbOn))
		if err != nil {
			b.Fatal(err)
		}
		r = sim.Run()
	}
	return r
}

// BenchmarkFig5dProcessDistribution regenerates Fig 5d: how many zone
// servers each node runs over time with load balancing on — edge nodes
// shed servers, middle nodes absorb them.
func BenchmarkFig5dProcessDistribution(b *testing.B) {
	r := runDVE(b, true)
	last := func(name string) float64 {
		vs := r.Procs.Get(name).Values
		return vs[len(vs)-1]
	}
	b.ReportMetric(float64(r.Migrations), "migrations")
	b.ReportMetric(20-last("node1"), "servers-shed-node1")
	b.ReportMetric(20-last("node5"), "servers-shed-node5")
}

// BenchmarkFig5eCPUNoLB regenerates Fig 5e: per-node CPU without load
// balancing — edge nodes >95 %, middle nodes <65-70 %.
func BenchmarkFig5eCPUNoLB(b *testing.B) {
	r := runDVE(b, false)
	b.ReportMetric(r.NodeCPUMean("node1", 220e9), "node1-cpu-%")
	b.ReportMetric(r.NodeCPUMean("node3", 220e9), "node3-cpu-%")
	b.ReportMetric(r.FinalSpread, "cpu-spread-%")
}

// BenchmarkFig5fCPUWithLB regenerates Fig 5f: the same run with load
// balancing enabled — the spread tightens markedly.
func BenchmarkFig5fCPUWithLB(b *testing.B) {
	r := runDVE(b, true)
	b.ReportMetric(r.NodeCPUMean("node1", 220e9), "node1-cpu-%")
	b.ReportMetric(r.NodeCPUMean("node3", 220e9), "node3-cpu-%")
	b.ReportMetric(r.FinalSpread, "cpu-spread-%")
}

// BenchmarkAblationStrategies contrasts the three strategies at a fixed
// 256 connections in one place (the design choice §III-C motivates).
func BenchmarkAblationStrategies(b *testing.B) {
	for _, s := range eval.SweepStrategies {
		b.Run(slug(s), func(b *testing.B) {
			pt := freezeBench(b, s, 256)
			b.ReportMetric(float64(pt.WorstFreeze)/1e6, "freeze-ms")
			b.ReportMetric(float64(pt.WorstSockBytes)/1024, "sock-kB")
		})
	}
}

// BenchmarkAblationIncrementalTracking isolates the incremental socket
// tracking: collective with tracking (incremental collective) vs without
// (plain collective), at 512 connections.
func BenchmarkAblationIncrementalTracking(b *testing.B) {
	for _, s := range []sockmig.Strategy{sockmig.Collective, sockmig.IncrementalCollective} {
		name := "tracking-off"
		if s == sockmig.IncrementalCollective {
			name = "tracking-on"
		}
		b.Run(name, func(b *testing.B) {
			pt := freezeBench(b, s, 512)
			b.ReportMetric(float64(pt.WorstSockBytes)/1024, "freeze-sock-kB")
			var pre float64
			for _, m := range pt.Runs {
				pre += float64(m.PrecopySockBytes) / 1024
			}
			b.ReportMetric(pre/float64(len(pt.Runs)), "precopy-sock-kB")
		})
	}
}

// BenchmarkAblationCaptureOff disables incoming-packet-loss prevention:
// client TCP stacks must retransmit whatever fell into the freeze window
// (paper §III-B / prior work [8] report exactly this loss).
func BenchmarkAblationCaptureOff(b *testing.B) {
	for _, on := range []bool{true, false} {
		name := "capture-on"
		if !on {
			name = "capture-off"
		}
		b.Run(name, func(b *testing.B) {
			fc := eval.DefaultFreezeConfig(sockmig.IncrementalCollective, 128)
			fc.Repeats = 4 // cover several traffic phases
			fc.MigCfg.EnableCapture = on
			var pt *eval.FreezePoint
			for i := 0; i < b.N; i++ {
				var err error
				pt, err = eval.RunFreezePoint(fc)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(pt.ClientRetransmits), "client-retransmits")
			var captured float64
			for _, m := range pt.Runs {
				captured += float64(m.Captured)
			}
			b.ReportMetric(captured, "captured-packets")
		})
	}
}

// BenchmarkAblationPrecopyOff degrades live migration to stop-and-copy:
// all memory moves inside the freeze window.
func BenchmarkAblationPrecopyOff(b *testing.B) {
	for _, on := range []bool{true, false} {
		name := "precopy-on"
		if !on {
			name = "precopy-off"
		}
		b.Run(name, func(b *testing.B) {
			fc := eval.DefaultFreezeConfig(sockmig.IncrementalCollective, 64)
			fc.Repeats = 1
			fc.MemPages = 4096 // 16 MiB: make memory matter
			fc.MigCfg.EnablePrecopy = on
			var pt *eval.FreezePoint
			for i := 0; i < b.N; i++ {
				var err error
				pt, err = eval.RunFreezePoint(fc)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(pt.WorstFreeze)/1e6, "freeze-ms")
			b.ReportMetric(float64(pt.Runs[0].FreezeMemBytes)/1024, "freeze-mem-kB")
		})
	}
}

// BenchmarkAblationLBThreshold sweeps the transfer policy's imbalance
// threshold: too lax leaves imbalance, too eager burns migrations.
func BenchmarkAblationLBThreshold(b *testing.B) {
	for _, thr := range []float64{0.06, 0.12, 0.25} {
		b.Run(fmt.Sprintf("threshold-%.2f", thr), func(b *testing.B) {
			var r *dve.Results
			for i := 0; i < b.N; i++ {
				cfg := dveBenchConfig(true)
				cfg.LBConfig.ImbalanceThreshold = thr
				sim, err := dve.New(cfg)
				if err != nil {
					b.Fatal(err)
				}
				r = sim.Run()
			}
			b.ReportMetric(r.FinalSpread, "cpu-spread-%")
			b.ReportMetric(float64(r.Migrations), "migrations")
		})
	}
}

// BenchmarkBaselineNATDispatch contrasts the paper's broadcast router +
// capture design against the NAT single-IP baseline ([8]/[11]): datagram
// loss while a UDP service port moves between nodes.
func BenchmarkBaselineNATDispatch(b *testing.B) {
	var bc, nat *eval.DispatchResult
	for i := 0; i < b.N; i++ {
		var err error
		bc, nat, err = eval.RunDispatchComparison(eval.DefaultDispatchConfig())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(bc.Lost), "broadcast-lost")
	b.ReportMetric(float64(nat.Lost), "nat-lost")
}

// BenchmarkMigrationEngine is a plain throughput benchmark of one full
// live migration (8 connections), for profiling the engine itself. It
// runs with the observability plane detached — the nil-check fast path
// whose cost BENCH_simperf.json pins (≤2% ns/op, +0 allocs/op vs the
// pre-obs baseline).
func BenchmarkMigrationEngine(b *testing.B) {
	fc := eval.DefaultFreezeConfig(sockmig.IncrementalCollective, 8)
	fc.Repeats = 1
	for i := 0; i < b.N; i++ {
		if _, err := eval.RunFreezePoint(fc); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMigrationEngineStrategy runs the same full migration under
// each memory-movement strategy — the per-strategy engine cost
// BENCH_simperf.json records (post-copy trades pre-copy's round loop
// for the demand-pull/prefetch machinery; hybrid pays one round plus a
// smaller pull phase).
func BenchmarkMigrationEngineStrategy(b *testing.B) {
	for _, name := range migration.StrategyNames() {
		name := name
		b.Run(name, func(b *testing.B) {
			mig, err := migration.StrategyByName(name)
			if err != nil {
				b.Fatal(err)
			}
			fc := eval.DefaultFreezeConfig(sockmig.IncrementalCollective, 8)
			fc.Repeats = 1
			fc.MigCfg.Mig = mig
			for i := 0; i < b.N; i++ {
				if _, err := eval.RunFreezePoint(fc); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkMigrationEngineObserved is the same migration with the
// observability plane attached (spans, phase histograms, harvest and
// capture) — compare against BenchmarkMigrationEngine for the
// enabled-mode overhead.
func BenchmarkMigrationEngineObserved(b *testing.B) {
	fc := eval.DefaultFreezeConfig(sockmig.IncrementalCollective, 8)
	fc.Repeats = 1
	fc.Observe = true
	for i := 0; i < b.N; i++ {
		if _, err := eval.RunFreezePoint(fc); err != nil {
			b.Fatal(err)
		}
	}
}

var _ = migration.DefaultConfig // keep import stable for doc reference

// BenchmarkExtensionStreaming measures the streaming future-work case:
// viewer stalls under live migration vs stop-and-copy.
func BenchmarkExtensionStreaming(b *testing.B) {
	for _, precopy := range []bool{true, false} {
		name := "live"
		if !precopy {
			name = "stop-and-copy"
		}
		b.Run(name, func(b *testing.B) {
			var res *stream.ExperimentResult
			for i := 0; i < b.N; i++ {
				cfg := stream.DefaultExperimentConfig()
				if !precopy {
					cfg.Prebuffer = 120 * 1e6
					cfg.Server.MemPages = 16384
					cfg.MigCfg.EnablePrecopy = false
				}
				var err error
				res, err = stream.RunExperiment(cfg)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(res.Rebuffers), "viewer-stalls")
			b.ReportMetric(float64(res.Metrics.FreezeTime)/1e6, "freeze-ms")
		})
	}
}

// BenchmarkBaselineAppLayerLB contrasts the OS-level middleware with the
// prior-work application-layer zone-handoff baseline (§I): both tame the
// imbalance, but the baseline's client-visible outage is orders of
// magnitude larger.
func BenchmarkBaselineAppLayerLB(b *testing.B) {
	for _, mode := range []string{"os-level", "app-layer"} {
		mode := mode
		b.Run(mode, func(b *testing.B) {
			var r *dve.Results
			for i := 0; i < b.N; i++ {
				cfg := dveBenchConfig(mode == "os-level")
				if mode == "app-layer" {
					cfg.AppLayerLB = true
					cfg.AppLayer.CalmDown = 8e9
				}
				sim, err := dve.New(cfg)
				if err != nil {
					b.Fatal(err)
				}
				r = sim.Run()
			}
			b.ReportMetric(r.FinalSpread, "cpu-spread-%")
			b.ReportMetric(r.OutageClientSeconds, "outage-client-s")
		})
	}
}

// BenchmarkExtensionHLAFederation measures lockstep throughput of an
// HLA-style federation and the (absence of) disruption a federate's
// migration causes: steps per simulated second before and after.
func BenchmarkExtensionHLAFederation(b *testing.B) {
	var perSecBefore, perSecAfter float64
	var violations uint64
	for i := 0; i < b.N; i++ {
		sched := simtime.NewScheduler()
		cluster := proc.NewCluster(sched, 3)
		var migs []*migration.Migrator
		for _, n := range cluster.Nodes {
			m, err := migration.NewMigrator(n, migration.DefaultConfig())
			if err != nil {
				b.Fatal(err)
			}
			migs = append(migs, m)
		}
		fed, err := hla.New(cluster, cluster.Nodes, hla.DefaultConfig())
		if err != nil {
			b.Fatal(err)
		}
		sched.RunFor(5e9)
		s0 := fed.MinStep()
		perSecBefore = float64(s0) / 5
		migs[1].Migrate(fed.Federates[1].Proc, cluster.Nodes[2].LocalIP, func(m *migration.Metrics, err error) {
			if err != nil {
				b.Fatal(err)
			}
		})
		sched.RunFor(5e9)
		perSecAfter = float64(fed.MinStep()-s0) / 5
		violations = fed.Violations()
	}
	b.ReportMetric(perSecBefore, "steps/s-before")
	b.ReportMetric(perSecAfter, "steps/s-after")
	b.ReportMetric(float64(violations), "sync-violations")
}
