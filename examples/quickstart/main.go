// Quickstart: build a two-node single-IP cluster, run a process that
// holds a live TCP connection to an external client, live-migrate it to
// the other node, and watch the connection survive — no client-side
// cooperation, no packet loss.
package main

import (
	"fmt"
	"log"

	"dvemig/internal/migration"
	"dvemig/internal/netstack"
	"dvemig/internal/proc"
	"dvemig/internal/simtime"
)

func main() {
	// 1. The testbed: a broadcast router fronting one public IP, two
	//    server nodes, an in-cluster switch. Everything runs on a
	//    deterministic virtual clock.
	sched := simtime.NewScheduler()
	cluster := proc.NewCluster(sched, 2)

	// 2. Migration daemons (migd + capture + translation) on every node.
	migCfg := migration.DefaultConfig() // incremental collective strategy
	var migs []*migration.Migrator
	for _, n := range cluster.Nodes {
		m, err := migration.NewMigrator(n, migCfg)
		if err != nil {
			log.Fatal(err)
		}
		migs = append(migs, m)
	}

	// 3. A server process on node1 listening on the cluster IP.
	srv := cluster.Nodes[0].Spawn("echo_server", 1)
	lst := netstack.NewTCPSocket(cluster.Nodes[0].Stack)
	if err := lst.Listen(cluster.ClusterIP, 9000); err != nil {
		log.Fatal(err)
	}
	srv.FDs.Install(&proc.TCPFile{Sock: lst})
	lst.OnAccept = func(ch *netstack.TCPSocket) {
		srv.FDs.Install(&proc.TCPFile{Sock: ch})
	}
	// The app: an echo loop, polled at 20 Hz. The closure travels with
	// the process when it migrates.
	srv.Tick = func(self *proc.Process) {
		tcp, _ := self.Sockets()
		for _, sk := range tcp {
			if data := sk.Recv(); len(data) > 0 {
				_ = sk.Send(append([]byte("echo:"), data...))
			}
		}
	}
	cluster.Nodes[0].StartLoop(srv, 50*1e6)

	// 4. An external client connects through the router and talks.
	ext := cluster.NewExternalHost("laptop")
	cli := netstack.NewTCPSocket(ext)
	if err := cli.Connect(cluster.ClusterIP, 9000); err != nil {
		log.Fatal(err)
	}
	var replies []byte
	cli.OnReadable = func() { replies = append(replies, cli.Recv()...) }
	sched.RunFor(1e9)
	cli.Send([]byte("hello-before;"))
	sched.RunFor(1e9)

	// 5. Live-migrate the server to node2 while the client keeps sending.
	ticker := simtime.NewTicker(sched, 30*1e6, "client", func() {
		cli.Send([]byte("x"))
	})
	ticker.Start()
	migs[0].Migrate(srv, cluster.Nodes[1].LocalIP, func(m *migration.Metrics, err error) {
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("migrated in %v total, process frozen for only %v\n", m.TotalTime, m.FreezeTime)
		fmt.Printf("precopy rounds: %d, captured during freeze: %d packets (zero loss)\n",
			m.Rounds, m.Captured)
	})
	sched.RunFor(5e9)
	ticker.Stop()

	// 6. The very same connection still works, served from node2.
	cli.Send([]byte("hello-after;"))
	sched.RunFor(1e9)
	fmt.Printf("client received %d bytes over one uninterrupted connection\n", len(replies))
	fmt.Printf("server now lives on node2 with %d processes; node1 has %d\n",
		cluster.Nodes[1].NumProcesses(), cluster.Nodes[0].NumProcesses())
	if cli.Retransmits == 0 {
		fmt.Println("client TCP never retransmitted: the freeze window was fully captured")
	}
}
