// Loadbalance: a condensed version of the §VI-C experiment. Five nodes
// serve a 10×10 virtual world with 10,000 clients; the crowd drifts to
// the corners, overloading the edge nodes. Run once with the conductor
// middleware off and once with it on, and compare the final imbalance.
package main

import (
	"fmt"
	"log"

	"dvemig/internal/dve"
)

func main() {
	run := func(lbOn bool) *dve.Results {
		cfg := dve.DefaultConfig()
		cfg.Duration = 300 * 1e9 // 5 simulated minutes, accelerated drift
		cfg.MoveStart = 30 * 1e9
		cfg.MoveProb = 0.08
		cfg.LB = lbOn
		cfg.LBConfig.ImbalanceThreshold = 0.08
		cfg.LBConfig.CalmDown = 8e9
		sim, err := dve.New(cfg)
		if err != nil {
			log.Fatal(err)
		}
		return sim.Run()
	}

	fmt.Println("running without load balancing...")
	off := run(false)
	fmt.Println("running with the conductor middleware...")
	on := run(true)

	fmt.Println()
	fmt.Printf("%8s %28s %28s\n", "node", "no LB (end CPU %)", "LB on (end CPU %)")
	for _, name := range off.CPU.Names() {
		fmt.Printf("%8s %28.1f %28.1f\n", name,
			off.NodeCPUMean(name, 220e9), on.NodeCPUMean(name, 220e9))
	}
	fmt.Println()
	fmt.Printf("final CPU spread (max-min): %.1f%% without LB vs %.1f%% with LB\n",
		off.FinalSpread, on.FinalSpread)
	fmt.Printf("zone-server migrations performed: %d\n", on.Migrations)
	if len(on.FreezeTimes) > 0 {
		worst := on.FreezeTimes[0]
		for _, f := range on.FreezeTimes {
			if f > worst {
				worst = f
			}
		}
		fmt.Printf("worst freeze during any migration: %.1f ms — imperceptible at 20 Hz\n",
			float64(worst)/1e6)
	}
}
