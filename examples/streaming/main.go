// Streaming: the paper's main future perspective (§VIII) — migrate a
// multimedia streaming server mid-stream. Eight viewers with 200 ms
// playout buffers watch a 1.5 Mb/s stream; the server live-migrates and
// nobody rebuffers. The same move done stop-and-copy (no precopy) with a
// big media cache freezes long enough to stall every viewer.
package main

import (
	"fmt"
	"log"

	"dvemig/internal/stream"
)

func main() {
	live := stream.DefaultExperimentConfig()
	resLive, err := stream.RunExperiment(live)
	if err != nil {
		log.Fatal(err)
	}

	stop := stream.DefaultExperimentConfig()
	stop.Prebuffer = 120 * 1e6
	stop.Server.MemPages = 16384 // 64 MiB media cache
	stop.MigCfg.EnablePrecopy = false
	resStop, err := stream.RunExperiment(stop)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("migrating a 1.5 Mb/s media server under 8 viewers:")
	fmt.Printf("%22s %16s %16s\n", "", "live (precopy)", "stop-and-copy")
	fmt.Printf("%22s %16.1f %16.1f\n", "freeze (ms)",
		float64(resLive.Metrics.FreezeTime)/1e6, float64(resStop.Metrics.FreezeTime)/1e6)
	fmt.Printf("%22s %16d %16d\n", "rebuffering stalls", resLive.Rebuffers, resStop.Rebuffers)
	fmt.Printf("%22s %16d %16d\n", "chunks out of order", resLive.OutOfOrder, resStop.OutOfOrder)
	fmt.Printf("%22s %16d %16d\n", "viewers still playing", resLive.StillPlaying, resStop.StillPlaying)
	fmt.Println()
	fmt.Println("the stream never loses or reorders a byte either way — but only the")
	fmt.Println("precopy freeze fits inside the viewers' playout buffers.")
}
