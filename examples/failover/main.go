// Failover: the fault-tolerance extension (paper §VIII names it as
// future work for the mechanism), driven end to end by the conductor's
// failure detector. A counter service on node1 is guarded by periodic
// checkpoints streamed to a standby on node2 and its ownership is
// announced under an epoch. Node1 then crashes — and nobody calls
// Activate by hand: node2's conductor notices the missed heartbeats,
// confirms the peer dead, claims the service with its freshest image,
// wins the election and restarts the service under a bumped ownership
// epoch. UDP service port and TCP listener come back intact, at most
// one checkpoint interval of state is lost, and any node still holding
// stale serving state would fence itself the moment it heard the new
// epoch advertised.
package main

import (
	"fmt"
	"log"

	"dvemig/internal/faults"
	"dvemig/internal/lb"
	"dvemig/internal/migration"
	"dvemig/internal/netstack"
	"dvemig/internal/obs"
	"dvemig/internal/proc"
	"dvemig/internal/simtime"
)

func main() {
	sched := simtime.NewScheduler()
	cluster := proc.NewCluster(sched, 3)

	// One shared observability plane: every migrator and conductor traces
	// into the same tracer, so the epilogue migration's spans — source,
	// destination and any conductor decisions — share one trace ID.
	o := obs.New(sched)

	// Conductors on every node: load balancing, heartbeats, and — once a
	// standby is wired in — the failure detector that drives failover.
	var conds []*lb.Conductor
	var migs []*migration.Migrator
	for _, n := range cluster.Nodes {
		mig, err := migration.NewMigrator(n, migration.DefaultConfig())
		if err != nil {
			log.Fatal(err)
		}
		mig.SetObs(o)
		cd, err := lb.NewConductor(n, mig, lb.DefaultConfig())
		if err != nil {
			log.Fatal(err)
		}
		cd.SetObs(o)
		conds = append(conds, cd)
		migs = append(migs, mig)
	}
	standby, err := migration.NewStandby(cluster.Nodes[1])
	if err != nil {
		log.Fatal(err)
	}
	conds[1].EnableFailover(standby)

	// The service: counts requests, persists the counter in its memory.
	svc := cluster.Nodes[0].Spawn("scoreboard", 1)
	mem := svc.AS.Mmap(4*proc.PageSize, "rw-")
	us := netstack.NewUDPSocket(cluster.Nodes[0].Stack)
	if err := us.Bind(cluster.ClusterIP, 5100); err != nil {
		log.Fatal(err)
	}
	svc.FDs.Install(&proc.UDPFile{Sock: us})
	svc.Tick = func(self *proc.Process) {
		_, udp := self.Sockets()
		for _, sock := range udp {
			for {
				dg, ok := sock.Recv()
				if !ok {
					break
				}
				cur, _ := self.AS.Read(mem.Start, 4)
				n := uint32(cur[0]) | uint32(cur[1])<<8 | uint32(cur[2])<<16
				n++
				_ = self.AS.Write(mem.Start, []byte{byte(n), byte(n >> 8), byte(n >> 16)})
				_ = sock.SendTo(dg.SrcIP, dg.SrcPort, []byte{byte(n), byte(n >> 8), byte(n >> 16)})
			}
		}
	}
	cluster.Nodes[0].StartLoop(svc, 50*1e6)

	// Guard the service and announce its ownership: the guardian ships a
	// checkpoint every 500ms, stamped with the minted epoch.
	guardian, err := migration.NewGuardian(svc, cluster.Nodes[1].LocalIP, 500*1e6)
	if err != nil {
		log.Fatal(err)
	}
	epoch := conds[0].AnnounceOwnership("scoreboard", guardian)

	// A client scoring points through the public IP.
	ext := cluster.NewExternalHost("player")
	extAddr, _ := ext.SourceAddrFor(cluster.ClusterIP)
	cli := netstack.NewUDPSocket(ext)
	cli.BindEphemeral(extAddr)
	var lastScore uint32
	cli.OnReadable = func() {
		for {
			dg, ok := cli.Recv()
			if !ok {
				return
			}
			lastScore = uint32(dg.Payload[0]) | uint32(dg.Payload[1])<<8 | uint32(dg.Payload[2])<<16
		}
	}
	tk := simtime.NewTicker(sched, 100*1e6, "score", func() {
		_ = cli.SendTo(cluster.ClusterIP, 5100, []byte("+1"))
	})
	tk.Start()

	sched.RunFor(5e9)
	fmt.Printf("service owned under epoch %d; score=%d, checkpoints shipped=%d (last image %d bytes)\n",
		epoch, lastScore, guardian.Sent, guardian.LastBytes)

	// Node1 dies — injected through the fault plane, the same mechanism
	// the chaos suite uses. From here on nothing is scripted: node2's
	// detector walks the peer through suspect → dead, claims the service
	// and activates the image on its own.
	scoreAtCrash := lastScore
	inj := faults.NewInjector(sched, 1)
	inj.CrashAt(cluster, cluster.Nodes[0], sched.Now()+1)
	sched.RunFor(12e9)

	for _, ev := range conds[1].Events {
		switch ev.Kind {
		case "suspect", "peer-dead":
			fmt.Printf("t=%4.1fs detector: %s %v\n", float64(ev.At)/1e9, ev.Kind, ev.Peer)
		case "claim", "activate":
			fmt.Printf("t=%4.1fs failover: %s %q\n", float64(ev.At)/1e9, ev.Kind, ev.Name)
		}
	}
	newEpoch, _ := conds[1].OwnershipEpoch("scoreboard")
	fmt.Printf("standby activated automatically (%d failover) — now owned by node2 under epoch %d\n",
		conds[1].Failovers, newEpoch)

	sched.RunFor(5e9)
	fmt.Printf("after failover: score=%d (was %d at crash; at most one 500ms interval lost, then climbing again)\n",
		lastScore, scoreAtCrash)

	// Epilogue: a planned live migration moves the restarted service off
	// the standby onto node3 — e.g. to free the buddy for its next ward.
	// PhaseEvent.Since hands each consumer the previous phase's
	// timestamp, so the per-phase latency is Time-Since — no bookkeeping
	// of "when did the last phase fire" on our side.
	var restarted *proc.Process
	for _, p := range cluster.Nodes[1].Processes() {
		if p.Name == "scoreboard" {
			restarted = p
		}
	}
	if restarted == nil {
		log.Fatal("restarted scoreboard not found on node2")
	}
	migs[1].OnPhase = func(ev migration.PhaseEvent) {
		fmt.Printf("t=%4.1fs phase %-8s +%6.2fms on %s\n",
			float64(ev.Time)/1e9, ev.Phase, float64(ev.Time-ev.Since)/1e6, ev.Node)
	}
	migs[1].Migrate(restarted, cluster.Nodes[2].LocalIP, func(m *migration.Metrics, err error) {
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("planned migration done: froze %.2fms\n", float64(m.FreezeTime)/1e6)
		// The trace ID names the whole causal tree: the source migration
		// span, every phase child, and node3's inbound restore spans all
		// parent into span #TraceID. Filter on it in Perfetto (or grep a
		// -trace-out export for "trace_id":"N") to see this one migration
		// end to end across both nodes.
		fmt.Printf("end-to-end trace id of the planned migration: %d\n", m.TraceID)
	})
	sched.RunFor(5e9)
	tk.Stop()
	fmt.Printf("final score=%d, scoreboard now on node3\n", lastScore)
	fmt.Println()
	fmt.Println("To see where two seeds of the same experiment first part ways, export both and diff them:")
	fmt.Println("  go run ./cmd/migbench -conns 64 -repeats 1 -seed 1 -trace-out a.json")
	fmt.Println("  go run ./cmd/migbench -conns 64 -repeats 1 -seed 2 -trace-out b.json")
	fmt.Println("  go run ./cmd/obsdiff a.json b.json   # first divergent event + its causal ancestry")
}
