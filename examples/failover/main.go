// Failover: the fault-tolerance extension (paper §VIII names it as
// future work for the mechanism). A counter service on node1 is guarded
// by periodic checkpoints streamed to node2; node1 then crashes, and the
// standby restarts the service from the last image — UDP service port
// and TCP listener intact, at most one checkpoint interval of state lost.
package main

import (
	"fmt"
	"log"

	"dvemig/internal/faults"
	"dvemig/internal/migration"
	"dvemig/internal/netstack"
	"dvemig/internal/proc"
	"dvemig/internal/simtime"
)

func main() {
	sched := simtime.NewScheduler()
	cluster := proc.NewCluster(sched, 2)
	standby, err := migration.NewStandby(cluster.Nodes[1])
	if err != nil {
		log.Fatal(err)
	}

	// The service: counts requests, persists the counter in its memory.
	svc := cluster.Nodes[0].Spawn("scoreboard", 1)
	mem := svc.AS.Mmap(4*proc.PageSize, "rw-")
	us := netstack.NewUDPSocket(cluster.Nodes[0].Stack)
	if err := us.Bind(cluster.ClusterIP, 5100); err != nil {
		log.Fatal(err)
	}
	svc.FDs.Install(&proc.UDPFile{Sock: us})
	svc.Tick = func(self *proc.Process) {
		_, udp := self.Sockets()
		for _, sock := range udp {
			for {
				dg, ok := sock.Recv()
				if !ok {
					break
				}
				cur, _ := self.AS.Read(mem.Start, 4)
				n := uint32(cur[0]) | uint32(cur[1])<<8 | uint32(cur[2])<<16
				n++
				_ = self.AS.Write(mem.Start, []byte{byte(n), byte(n >> 8), byte(n >> 16)})
				_ = sock.SendTo(dg.SrcIP, dg.SrcPort, []byte{byte(n), byte(n >> 8), byte(n >> 16)})
			}
		}
	}
	cluster.Nodes[0].StartLoop(svc, 50*1e6)

	guardian, err := migration.NewGuardian(svc, cluster.Nodes[1].LocalIP, 500*1e6)
	if err != nil {
		log.Fatal(err)
	}

	// A client scoring points through the public IP.
	ext := cluster.NewExternalHost("player")
	extAddr, _ := ext.SourceAddrFor(cluster.ClusterIP)
	cli := netstack.NewUDPSocket(ext)
	cli.BindEphemeral(extAddr)
	var lastScore uint32
	cli.OnReadable = func() {
		for {
			dg, ok := cli.Recv()
			if !ok {
				return
			}
			lastScore = uint32(dg.Payload[0]) | uint32(dg.Payload[1])<<8 | uint32(dg.Payload[2])<<16
		}
	}
	tk := simtime.NewTicker(sched, 100*1e6, "score", func() {
		_ = cli.SendTo(cluster.ClusterIP, 5100, []byte("+1"))
	})
	tk.Start()

	sched.RunFor(5e9)
	fmt.Printf("before crash: score=%d, checkpoints shipped=%d (last image %d bytes)\n",
		lastScore, guardian.Sent, guardian.LastBytes)

	// Node1 dies — injected through the fault plane, the same mechanism
	// the chaos suite uses. CrashAt schedules a hard node failure at a
	// virtual instant; faults.CrashAtPhase can instead arm the crash on a
	// named migration phase (see internal/migration's crash-matrix test),
	// and the injector also scripts loss bursts, duplication, reordering
	// and link partitions on any simulated link.
	guardian.Stop()
	scoreAtCrash := lastScore
	inj := faults.NewInjector(sched, 1)
	inj.CrashAt(cluster, cluster.Nodes[0], sched.Now()+1)
	sched.RunFor(1e9)

	restarted, err := standby.Activate("scoreboard")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("standby activated %q on %s (pid %d)\n", restarted.Name, restarted.Node.Name, restarted.PID)

	sched.RunFor(5e9)
	tk.Stop()
	fmt.Printf("after failover: score=%d (was %d at crash; at most one 500ms interval lost, then climbing again)\n",
		lastScore, scoreAtCrash)
}
