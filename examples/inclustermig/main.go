// Inclustermig: demonstrates migrating a process that holds an
// *in-cluster* connection (a MySQL session to the database node) — the
// §III-C scenario. The peer's transd installs a translation filter, the
// connection follows the process through TWO consecutive migrations, and
// the database server never notices anything.
package main

import (
	"fmt"
	"log"

	"dvemig/internal/dve"
	"dvemig/internal/migration"
	"dvemig/internal/netstack"
	"dvemig/internal/proc"
	"dvemig/internal/simtime"
	"dvemig/internal/xlat"
)

func main() {
	sched := simtime.NewScheduler()
	cluster := proc.NewCluster(sched, 3)
	dbNode := cluster.AddNode("db")
	db, err := dve.StartDBServer(dbNode)
	if err != nil {
		log.Fatal(err)
	}
	// The DB machine runs only the translation daemon (it neither sends
	// nor receives migrations itself).
	transd, err := xlat.StartTransd(dbNode.Stack, dbNode.LocalIP)
	if err != nil {
		log.Fatal(err)
	}

	var migs []*migration.Migrator
	for _, n := range cluster.Nodes[:3] {
		m, err := migration.NewMigrator(n, migration.DefaultConfig())
		if err != nil {
			log.Fatal(err)
		}
		migs = append(migs, m)
	}

	// The worker on node1 keeps one MySQL session and writes a heartbeat
	// row twice a second.
	w := cluster.Nodes[0].Spawn("world_writer", 1)
	sess := netstack.NewTCPSocket(cluster.Nodes[0].Stack)
	if err := sess.Connect(dbNode.LocalIP, dve.DBPort); err != nil {
		log.Fatal(err)
	}
	w.FDs.Install(&proc.TCPFile{Sock: sess})
	seq := 0
	w.Tick = func(self *proc.Process) {
		tcp, _ := self.Sockets()
		for _, sk := range tcp {
			sk.Recv()
			seq++
			_ = sk.Send([]byte(fmt.Sprintf("SET heartbeat %d;", seq)))
		}
	}
	cluster.Nodes[0].StartLoop(w, 500*1e6)
	sched.RunFor(3e9)
	fmt.Printf("before migration: db heartbeat=%s, translation rules on db host: %d\n",
		db.Get("heartbeat"), len(transd.Translator().Rules()))

	hop := func(from int, to int) {
		p := findWorker(cluster.Nodes[to-1], cluster.Nodes[from])
		migs[from].Migrate(p, cluster.Nodes[to].LocalIP, func(m *migration.Metrics, err error) {
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("hop node%d -> node%d: frozen %v\n", from+1, to+1, m.FreezeTime)
		})
		sched.RunFor(5e9)
	}
	hop(0, 1) // node1 -> node2
	hop(1, 2) // node2 -> node3

	sched.RunFor(2e9)
	rules := transd.Translator().Rules()
	fmt.Printf("after two hops: db heartbeat=%s (still climbing), rules on db host: %d\n",
		db.Get("heartbeat"), len(rules))
	for _, r := range rules {
		fmt.Printf("  translation: %v\n", r)
	}
	fmt.Println("the database's socket still believes it talks to node1:")
	fmt.Printf("  sessions accepted: %d (never reconnected), queries served: %d\n",
		db.Sessions, db.Queries)
}

func findWorker(on *proc.Node, fallback *proc.Node) *proc.Process {
	for _, n := range []*proc.Node{fallback, on} {
		for _, p := range n.Processes() {
			if p.Name == "world_writer" {
				return p
			}
		}
	}
	log.Fatal("worker lost")
	return nil
}
