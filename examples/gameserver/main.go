// Gameserver: the §VI-B scenario as a narrative example. An OpenArena
// style UDP server with 24 players is live-migrated between nodes while
// the game runs; the packet trace shows the regular 50 ms snapshot
// cadence and the one slightly-late group the migration causes.
package main

import (
	"fmt"
	"log"

	"dvemig/internal/openarena"
)

func main() {
	cfg := openarena.DefaultFig4Config()
	res, err := openarena.RunFig4(cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("OpenArena server, 24 clients, 20 updates/s, migrated mid-game")
	fmt.Println()
	// Render the Fig 4 staircase: snapshot groups of 24 packets arriving
	// every 50 ms, with the post-migration group delayed. The freeze
	// happens at the END of the precopy phase, so center on the gap.
	_, gapAt := res.Trace.MaxGap()
	window := res.Trace.Window(gapAt-250*1e6, gapAt+150*1e6)
	if len(window) == 0 {
		log.Fatal("no packets captured")
	}
	base := window[0].At
	lastGroup := base
	count := 0
	fmt.Printf("%12s %14s\n", "group at", "gap")
	for i, rec := range window {
		if i > 0 && rec.At-window[i-1].At > 10*1e6 {
			fmt.Printf("%10.1fms %12.1fms  %s\n", float64(lastGroup-base)/1e6,
				float64(rec.At-lastGroup)/1e6, bar(count))
			lastGroup = rec.At
			count = 0
		}
		count++
	}
	fmt.Printf("%10.1fms %14s %s\n", float64(lastGroup-base)/1e6, "-", bar(count))
	fmt.Println()
	fmt.Printf("process freeze:         %.1f ms\n", float64(res.Metrics.FreezeTime)/1e6)
	fmt.Printf("delay due to migration: %.1f ms on the regular %.0f ms cadence\n",
		float64(res.ExtraDelay)/1e6, float64(res.BaselineGap)/1e6)
	fmt.Printf("packets captured during the freeze and replayed afterwards: %d\n", res.Metrics.Reinjected)
}

func bar(n int) string {
	s := ""
	for i := 0; i < n && i < 40; i++ {
		s += "#"
	}
	return s
}
