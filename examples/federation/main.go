// Federation: the distributed-simulation face of DVEs (HLA, the paper's
// §I). Five federates advance in conservative lockstep over all-to-all
// in-cluster TCP; one federate is live-migrated mid-run and the
// federation never breaks its time-synchronization invariant.
package main

import (
	"fmt"
	"log"

	"dvemig/internal/hla"
	"dvemig/internal/migration"
	"dvemig/internal/proc"
	"dvemig/internal/simtime"
)

func main() {
	sched := simtime.NewScheduler()
	cluster := proc.NewCluster(sched, 3)
	var migs []*migration.Migrator
	for _, n := range cluster.Nodes {
		m, err := migration.NewMigrator(n, migration.DefaultConfig())
		if err != nil {
			log.Fatal(err)
		}
		migs = append(migs, m)
	}
	fed, err := hla.New(cluster, cluster.Nodes, hla.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	sched.RunFor(3e9)
	fmt.Printf("t=3s: federation at logical step %d..%d (lockstep)\n", fed.MinStep(), fed.MaxStep())

	target := fed.Federates[1]
	fmt.Printf("live-migrating %s from node2 to node3 while the federation runs...\n", target.Proc.Name)
	migs[1].Migrate(target.Proc, cluster.Nodes[2].LocalIP, func(m *migration.Metrics, err error) {
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  frozen for %v; %d TCP connections moved, %d packets captured\n",
			m.FreezeTime, m.TCPMigrated, m.Captured)
	})
	sched.RunFor(7e9)

	fmt.Printf("t=10s: federation at step %d..%d, sync violations: %d\n",
		fed.MinStep(), fed.MaxStep(), fed.Violations())
	if fed.Violations() == 0 && fed.MaxStep()-fed.MinStep() <= 1 {
		fmt.Println("conservative time synchronization held through the migration.")
	}
}
