// Command lbcluster is an interactive-scale demo of the decentralized
// middleware: it builds a cluster, spawns unevenly sized worker
// processes, lets the conductors balance (or consolidate) them, and
// prints the per-node load every few simulated seconds.
//
// Usage:
//
//	lbcluster [-nodes 5] [-workers 12] [-mode balance|consolidate] [-duration 120]
package main

import (
	"flag"
	"fmt"
	"os"

	"dvemig/internal/lb"
	"dvemig/internal/migration"
	"dvemig/internal/proc"
	"dvemig/internal/simtime"
)

func main() {
	nodes := flag.Int("nodes", 5, "cluster size")
	workers := flag.Int("workers", 12, "worker processes, all spawned on node1")
	mode := flag.String("mode", "balance", "balance|consolidate")
	duration := flag.Int("duration", 120, "simulated seconds")
	flag.Parse()

	sched := simtime.NewScheduler()
	cluster := proc.NewCluster(sched, *nodes)
	cfg := lb.DefaultConfig()
	cfg.CalmDown = 5e9
	switch *mode {
	case "balance":
		cfg.Mode = lb.ModeBalance
	case "consolidate":
		cfg.Mode = lb.ModeConsolidate
	default:
		fmt.Fprintf(os.Stderr, "lbcluster: unknown mode %q\n", *mode)
		os.Exit(2)
	}

	var conductors []*lb.Conductor
	for _, n := range cluster.Nodes {
		m, err := migration.NewMigrator(n, migration.DefaultConfig())
		if err != nil {
			fmt.Fprintf(os.Stderr, "lbcluster: %v\n", err)
			os.Exit(1)
		}
		cd, err := lb.NewConductor(n, m, cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "lbcluster: %v\n", err)
			os.Exit(1)
		}
		conductors = append(conductors, cd)
	}

	// All workers start on node1 with varied demand: the worst case for a
	// sender-initiated balancer.
	rnd := simtime.NewRand(7)
	for i := 0; i < *workers; i++ {
		p := cluster.Nodes[0].Spawn(fmt.Sprintf("worker%d", i), 1)
		v := p.AS.Mmap(64*proc.PageSize, "rw-")
		p.CPUDemand = 0.1 + 0.05*float64(rnd.Intn(8))
		heap := v.Start
		p.Tick = func(self *proc.Process) { _ = self.AS.Touch(heap) }
		cluster.Nodes[0].StartLoop(p, 50*1e6)
	}

	fmt.Printf("%8s", "t(s)")
	for _, n := range cluster.Nodes {
		fmt.Printf("%18s", n.Name)
	}
	fmt.Println()
	printer := simtime.NewTicker(sched, 5e9, "print", func() {
		fmt.Printf("%8.0f", sched.Now().Seconds())
		for _, n := range cluster.Nodes {
			fmt.Printf("  %5.1f%% (%2d procs)", n.Utilization()*100, n.NumProcesses())
		}
		fmt.Println()
	})
	printer.Start()
	sched.RunUntil(simtime.Duration(*duration) * 1e9)

	total := 0
	for _, cd := range conductors {
		total += cd.Migrations
	}
	fmt.Printf("\ncompleted migrations: %d\n", total)
	for _, cd := range conductors {
		for _, e := range cd.Events {
			if e.Kind == "migrate-out" {
				fmt.Printf("  %6.0fs %s pid=%d -> %v\n", e.At.Seconds(), cd.Node.Name, e.PID, e.Peer)
			}
		}
	}
}
