// Command migbench regenerates Fig 5b (worst-case process freeze time)
// and Fig 5c (socket bytes transferred during the freeze phase) by live
// migrating a zone server with 16…1024 client TCP connections plus one
// MySQL session, under the iterative, collective and incremental
// collective socket migration strategies.
//
// Usage:
//
//	migbench [-conns 16,32,...] [-repeats 3] [-what freeze|bytes|all]
//	         [-seed N] [-phase-table] [-attr-table]
//	         [-strategy precopy|postcopy|hybrid] [-strategy-race]
//	         [-trace-out mig.json] [-metrics-out mig.metrics]
//	         [-cpuprofile cpu.pprof] [-memprofile mem.pprof] [-simprof-out simprof.json]
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"dvemig/internal/eval"
	"dvemig/internal/migration"
	"dvemig/internal/obs"
	"dvemig/internal/simprof"
)

func main() {
	connsFlag := flag.String("conns", "16,32,64,128,256,512,1024", "comma-separated connection counts")
	repeats := flag.Int("repeats", 3, "repetitions per point (worst case is reported)")
	what := flag.String("what", "all", "freeze|bytes|all")
	parallel := flag.Int("parallel", 0, "worker goroutines for the sweep (0 = GOMAXPROCS, 1 = serial); results are identical at any setting")
	seed := flag.Uint64("seed", 0, "deterministic traffic-alignment seed; same seed = byte-identical artifacts, different seeds diverge (diagnose with obsdiff)")
	traceOut := flag.String("trace-out", "", "run the sweep observed and write a Chrome trace_event JSON of every migration to this file")
	metricsOut := flag.String("metrics-out", "", "run the sweep observed and write the merged metric snapshots to this file")
	phaseTable := flag.Bool("phase-table", false, "run the sweep observed and print the per-phase latency breakdown")
	attrTable := flag.Bool("attr-table", false, "run the sweep observed and print the per-connection freeze-time attribution (Fig 5b breakdown axis)")
	strategy := flag.String("strategy", "precopy", "memory-movement strategy: precopy|postcopy|hybrid (orthogonal to the socket-strategy axis the tables sweep)")
	race := flag.Bool("strategy-race", false, "run the chaos strategy race (all three strategies head to head) and print its tables instead of the Fig 5b/5c sweep")
	cpuProfile := flag.String("cpuprofile", "", "write a pprof CPU profile of the run to this file")
	memProfile := flag.String("memprofile", "", "write a pprof heap profile (post-GC) to this file at exit")
	simprofOut := flag.String("simprof-out", "", "self-profile the simulator's hot paths and write the simprof JSON report to this file")
	flag.Parse()

	sess, err := simprof.OpenSession(*cpuProfile, *memProfile, *simprofOut, 1)
	if err != nil {
		fmt.Fprintf(os.Stderr, "migbench: %v\n", err)
		os.Exit(2)
	}
	closeSession := func() {
		if err := sess.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "migbench: writing profiles: %v\n", err)
			os.Exit(1)
		}
	}

	if *race {
		cfg := eval.DefaultStrategySweepConfig()
		cfg.Chaos.Workers = *parallel
		cfg.Chaos.Prof = sess.Prof
		r, err := eval.RunStrategySweep(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "migbench: %v\n", err)
			os.Exit(1)
		}
		fmt.Println(r.Table())
		fmt.Println(r.Summary())
		closeSession()
		return
	}
	mig, err := migration.StrategyByName(*strategy)
	if err != nil {
		fmt.Fprintf(os.Stderr, "migbench: %v\n", err)
		os.Exit(2)
	}

	var conns []int
	for _, tok := range strings.Split(*connsFlag, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(tok))
		if err != nil || n <= 0 {
			fmt.Fprintf(os.Stderr, "migbench: bad connection count %q\n", tok)
			os.Exit(2)
		}
		conns = append(conns, n)
	}

	observe := *traceOut != "" || *metricsOut != "" || *phaseTable || *attrTable
	points, err := eval.RunFreezeSweepProf(conns, eval.SweepStrategies, *repeats, *parallel, *seed, observe, mig, sess.Prof)
	if err != nil {
		fmt.Fprintf(os.Stderr, "migbench: %v\n", err)
		os.Exit(1)
	}
	for _, pt := range points {
		fmt.Fprintf(os.Stderr, "  measured %4d conns / %-24s freeze=%6.1fms bytes=%d\n",
			pt.Conns, pt.Strategy, float64(pt.WorstFreeze)/1e6, pt.WorstSockBytes)
	}
	fmt.Println()
	if *what == "freeze" || *what == "all" {
		fmt.Println("=== Fig 5b ===")
		fmt.Println(eval.Fig5bTable(points))
	}
	if *what == "bytes" || *what == "all" {
		fmt.Println("=== Fig 5c ===")
		fmt.Println(eval.Fig5cTable(points))
	}
	if *phaseTable {
		fmt.Println("=== per-phase breakdown ===")
		fmt.Println(eval.PhaseTable(points))
	}
	if *attrTable {
		fmt.Println("=== freeze-time attribution ===")
		fmt.Println(eval.FreezeAttrTable(points))
	}
	if *traceOut != "" || *metricsOut != "" {
		// Point order is conns-major, strategy-minor (the canonical sweep
		// order), and repeats within a point merged in repeat order, so
		// the artifacts are byte-identical at any -parallel setting.
		var caps []*obs.Capture
		for _, pt := range points {
			caps = append(caps, pt.Caps...)
		}
		if *traceOut != "" {
			if err := obs.WriteChromeTraceFile(*traceOut, caps...); err != nil {
				fmt.Fprintf(os.Stderr, "migbench: writing trace: %v\n", err)
				os.Exit(1)
			}
			fmt.Fprintf(os.Stderr, "wrote %s\n", *traceOut)
		}
		if *metricsOut != "" {
			if err := obs.WriteMetricsFile(*metricsOut, caps...); err != nil {
				fmt.Fprintf(os.Stderr, "migbench: writing metrics: %v\n", err)
				os.Exit(1)
			}
			fmt.Fprintf(os.Stderr, "wrote %s\n", *metricsOut)
		}
	}
	closeSession()
}
