// Command soak runs the long-horizon control-plane soak: a continuous
// stream of declarative migration objects pumped through the
// reconcile/retry lifecycle across the chaos battery, with exactly-once
// and single-owner audits. The process exits nonzero if any cell ends
// with an audit violation, so CI can gate on it directly.
//
// Usage:
//
//	soak [-requests 500] [-seeds 1,2] [-scenario lossy] [-strategy mixed] [-workers 0]
//	     [-sample 1s] [-series-out series.json]
//	     [-cpuprofile cpu.pprof] [-memprofile mem.pprof] [-simprof-out simprof.json]
//
// With observability on, a sim-time sampler snapshots every cell's
// metrics each -sample period into time series, runs incremental audits
// at every boundary (violations surface in their containing window with
// a scoped flight dump) and evaluates the soak SLOs, rendered after the
// main table.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"dvemig/internal/eval"
	"dvemig/internal/migration"
	"dvemig/internal/obs"
	"dvemig/internal/simprof"
)

func main() {
	requests := flag.Int("requests", 500, "migration objects pumped per (scenario, seed) cell")
	seedsArg := flag.String("seeds", "1,2", "comma-separated rng seeds, one cell per scenario per seed")
	scenario := flag.String("scenario", "", "run a single scenario by name (default: the whole battery)")
	strategy := flag.String("strategy", "mixed", "memory-movement strategy: precopy|postcopy|hybrid|mixed")
	procs := flag.Int("procs", 9, "migratable processes per cell")
	inflight := flag.Int("inflight", 4, "max concurrently open migration objects")
	cancels := flag.Float64("cancels", 0.02, "fraction of submissions that get a cancel verb")
	workers := flag.Int("workers", 0, "sweep parallelism (0 = GOMAXPROCS); results are identical at any value")
	flight := flag.Int("flight", 512, "flight-recorder depth (0 disables; dumped on audit violation)")
	causes := flag.Bool("causes", false, "print sampled failure cause chains per cell")
	traceOut := flag.String("trace-out", "", "write a Chrome trace_event JSON of every cell to this file")
	metricsOut := flag.String("metrics-out", "", "write the merged metric snapshot artifacts to this file")
	sample := flag.Duration("sample", time.Second, "sim-time sampling cadence for series, incremental audits and SLOs (0 disables)")
	seriesOut := flag.String("series-out", "", "write every cell's sampled time series + SLO verdicts to this file (.csv for CSV, else JSON)")
	cpuProfile := flag.String("cpuprofile", "", "write a pprof CPU profile of the run to this file")
	memProfile := flag.String("memprofile", "", "write a pprof heap profile (post-GC) to this file at exit")
	simprofOut := flag.String("simprof-out", "", "self-profile the simulator's hot paths and write the simprof JSON report to this file")
	flag.Parse()

	sess, err := simprof.OpenSession(*cpuProfile, *memProfile, *simprofOut, 1)
	if err != nil {
		fmt.Fprintf(os.Stderr, "soak: %v\n", err)
		os.Exit(2)
	}

	cfg := eval.DefaultSoakConfig()
	cfg.Requests = *requests
	cfg.Procs = *procs
	cfg.Inflight = *inflight
	cfg.CancelFraction = *cancels
	cfg.Workers = *workers
	cfg.FlightDepth = *flight
	cfg.Prof = sess.Prof
	cfg.Observe = *traceOut != "" || *metricsOut != "" || *seriesOut != ""
	if *sample <= 0 {
		cfg.SamplePeriod = -1 // sampling, incremental audits and SLOs off
	} else {
		cfg.SamplePeriod = *sample
	}
	if *strategy != "mixed" && *strategy != "" {
		if _, err := migration.StrategyByName(*strategy); err != nil {
			fmt.Fprintf(os.Stderr, "soak: %v\n", err)
			os.Exit(2)
		}
	}
	cfg.Strategy = *strategy

	cfg.Seeds = nil
	for _, f := range strings.Split(*seedsArg, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		s, err := strconv.ParseUint(f, 10, 64)
		if err != nil {
			fmt.Fprintf(os.Stderr, "soak: bad seed %q: %v\n", f, err)
			os.Exit(2)
		}
		cfg.Seeds = append(cfg.Seeds, s)
	}
	if *scenario != "" {
		var picked []eval.SoakScenario
		for _, sc := range cfg.Scenarios {
			if sc.Name == *scenario {
				picked = append(picked, sc)
			}
		}
		if len(picked) == 0 {
			fmt.Fprintf(os.Stderr, "soak: unknown scenario %q\n", *scenario)
			os.Exit(2)
		}
		cfg.Scenarios = picked
	}

	fmt.Fprintf(os.Stderr, "soaking %d cells × %d requests (strategy %s)...\n",
		len(cfg.Scenarios)*len(cfg.Seeds), cfg.Requests, cfg.Strategy)
	rep, err := eval.RunSoak(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "soak: %v\n", err)
		os.Exit(1)
	}
	fmt.Print(rep.Table())
	if t := rep.SLOTable(); t != "" {
		fmt.Print(t)
	}

	if *causes {
		for _, res := range rep.Results {
			for _, c := range res.FailureCauses {
				fmt.Printf("  %s/seed%d failure: %s\n", res.Scenario, res.Seed, c)
			}
		}
	}
	writeArtifacts(*traceOut, *metricsOut, *seriesOut, rep)
	if err := sess.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "soak: writing profiles: %v\n", err)
		os.Exit(1)
	}

	bad := false
	for _, res := range rep.Results {
		if len(res.Violations) > 0 {
			bad = true
			fmt.Printf("\nVIOLATIONS in %s/seed%d:\n", res.Scenario, res.Seed)
			for _, v := range res.Violations {
				fmt.Printf("  - %s\n", v)
			}
			if res.FlightDump != "" {
				fmt.Printf("flight recorder (%s/seed%d):\n%s\n", res.Scenario, res.Seed, res.FlightDump)
			}
		}
	}
	if bad {
		os.Exit(1)
	}
}

func writeArtifacts(tracePath, metricsPath, seriesPath string, rep *eval.SoakReport) {
	if tracePath == "" && metricsPath == "" && seriesPath == "" {
		return
	}
	caps := rep.Captures()
	if tracePath != "" {
		if err := obs.WriteChromeTraceFile(tracePath, caps...); err != nil {
			fmt.Fprintf(os.Stderr, "soak: writing trace: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", tracePath)
	}
	if metricsPath != "" {
		if err := obs.WriteMetricsFile(metricsPath, caps...); err != nil {
			fmt.Fprintf(os.Stderr, "soak: writing metrics: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", metricsPath)
	}
	if seriesPath != "" {
		if err := obs.WriteSeriesFile(seriesPath, caps...); err != nil {
			fmt.Fprintf(os.Stderr, "soak: writing series: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", seriesPath)
	}
}
