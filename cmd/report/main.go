// Command report runs the complete evaluation — Fig 4, the Fig 5b/5c
// sweep, the Fig 5d/5e/5f simulations and the extension experiments —
// and prints one consolidated paper-vs-measured report.
//
// Usage:
//
//	report [-full]           # -full uses the paper-scale parameters (slower)
//	report [-phase-table]    # adds the observed per-phase latency breakdown
//	report [-cpuprofile cpu.pprof] [-memprofile mem.pprof] [-simprof-out simprof.json]
package main

import (
	"flag"
	"fmt"
	"os"

	"dvemig/internal/dve"
	"dvemig/internal/eval"
	"dvemig/internal/obs"
	"dvemig/internal/openarena"
	"dvemig/internal/simprof"
	"dvemig/internal/stream"
)

func main() {
	full := flag.Bool("full", false, "paper-scale sweep (1024 connections, 900s simulations)")
	parallel := flag.Int("parallel", 0, "worker goroutines for the sweeps (0 = GOMAXPROCS, 1 = serial); results are identical at any setting")
	phaseTable := flag.Bool("phase-table", false, "run the Fig 5b/5c sweep observed and print the per-phase latency breakdown")
	traceOut := flag.String("trace-out", "", "write a Chrome trace of the observed Fig 5b/5c sweep to this file (implies observing the sweep)")
	metricsOut := flag.String("metrics-out", "", "write the observed sweep's merged metric snapshots to this file")
	cpuProfile := flag.String("cpuprofile", "", "write a pprof CPU profile of the run to this file")
	memProfile := flag.String("memprofile", "", "write a pprof heap profile (post-GC) to this file at exit")
	simprofOut := flag.String("simprof-out", "", "self-profile the simulator's hot paths and write the simprof JSON report to this file")
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintf(os.Stderr, "report: %v\n", err)
		os.Exit(1)
	}

	sess, err := simprof.OpenSession(*cpuProfile, *memProfile, *simprofOut, 1)
	if err != nil {
		fail(err)
	}

	fmt.Println("=== dvemig evaluation report (all quantities simulated) ===")
	fmt.Println()

	// Fig 4.
	fig4, err := openarena.RunFig4(openarena.DefaultFig4Config())
	if err != nil {
		fail(err)
	}
	fmt.Println("Fig 4 — OpenArena, 24 clients, live migration mid-game")
	fmt.Printf("  freeze %.1f ms (paper ~20), packet delay %.1f ms (paper ~25), cadence %.1f ms\n",
		float64(fig4.Metrics.FreezeTime)/1e6, float64(fig4.ExtraDelay)/1e6, float64(fig4.BaselineGap)/1e6)
	fmt.Println()

	// Fig 5b/5c sweep.
	conns := []int{16, 64, 256}
	repeats := 1
	if *full {
		conns = eval.SweepConns
		repeats = 3
	}
	observe := *phaseTable || *traceOut != "" || *metricsOut != ""
	points, err := eval.RunFreezeSweepProf(conns, eval.SweepStrategies, repeats, *parallel, 0, observe, nil, sess.Prof)
	if err != nil {
		fail(err)
	}
	fmt.Println("Fig 5b — " + eval.Fig5bTable(points))
	fmt.Println("Fig 5c — " + eval.Fig5cTable(points))
	if *phaseTable {
		fmt.Println("Per-phase breakdown — " + eval.PhaseTable(points))
		fmt.Println("Freeze attribution — " + eval.FreezeAttrTable(points))
	}
	if *traceOut != "" || *metricsOut != "" {
		var caps []*obs.Capture
		for _, pt := range points {
			caps = append(caps, pt.Caps...)
		}
		if *traceOut != "" {
			if err := obs.WriteChromeTraceFile(*traceOut, caps...); err != nil {
				fail(err)
			}
			fmt.Fprintf(os.Stderr, "wrote %s\n", *traceOut)
		}
		if *metricsOut != "" {
			if err := obs.WriteMetricsFile(*metricsOut, caps...); err != nil {
				fail(err)
			}
			fmt.Fprintf(os.Stderr, "wrote %s\n", *metricsOut)
		}
	}

	// Fig 5d/e/f: the LB-off and LB-on runs are independent simulations,
	// so they too fan out over the parallel runner.
	dcfg := dve.DefaultConfig()
	if !*full {
		dcfg.Duration = 300e9
		dcfg.MoveStart = 30e9
		dcfg.MoveProb = 0.08
	}
	dveRuns, err := eval.RunParallel([]bool{false, true}, *parallel,
		func(lb bool) (*dve.Results, error) { return runDVE(dcfg, lb) })
	if err != nil {
		fail(err)
	}
	off, on := dveRuns[0], dveRuns[1]
	fmt.Println("Fig 5e/5f — DVE load balancing")
	fmt.Print(eval.DVESummary(off, false))
	fmt.Print(eval.DVESummary(on, true))
	fmt.Println()

	// Extensions.
	st, err := stream.RunExperiment(stream.DefaultExperimentConfig())
	if err != nil {
		fail(err)
	}
	bc, nat, err := eval.RunDispatchComparison(eval.DefaultDispatchConfig())
	if err != nil {
		fail(err)
	}
	fmt.Println("Extensions")
	fmt.Printf("  streaming: %d viewer stalls across a live migration (freeze %.1f ms)\n",
		st.Rebuffers, float64(st.Metrics.FreezeTime)/1e6)
	fmt.Printf("  dispatch: %s lost %d datagrams; %s lost %d\n",
		bc.Mode, bc.Lost, nat.Mode, nat.Lost)
	fmt.Printf("  client outage: OS-level %.2f client-seconds vs app-layer baseline %.2f\n",
		on.OutageClientSeconds, mustAppLayer(dcfg).OutageClientSeconds)
	if err := sess.Close(); err != nil {
		fail(err)
	}
}

func runDVE(cfg dve.Config, lb bool) (*dve.Results, error) {
	cfg.LB = lb
	sim, err := dve.New(cfg)
	if err != nil {
		return nil, err
	}
	return sim.Run(), nil
}

func mustAppLayer(cfg dve.Config) *dve.Results {
	cfg.LB = false
	cfg.AppLayerLB = true
	sim, err := dve.New(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "report: %v\n", err)
		os.Exit(1)
	}
	return sim.Run()
}
