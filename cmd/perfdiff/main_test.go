package main

import (
	"strings"
	"testing"
)

func findComp(t *testing.T, comps []comparison, path string) comparison {
	t.Helper()
	for _, c := range comps {
		if c.Path == path {
			return c
		}
	}
	t.Fatalf("no comparison for %q in %+v", path, comps)
	return comparison{}
}

// TestCompareFlagsInjectedRegression is the acceptance check: an
// injected ≥25% ns/op regression must be flagged at the 0.25 threshold.
func TestCompareFlagsInjectedRegression(t *testing.T) {
	old := map[string]any{
		"SimCoreEventLoop": map[string]any{
			"ns_per_op": 100.0, "allocs_per_op": 1.0, "events/s": 1e7,
		},
		"note": "env record, not a metric",
	}
	new := map[string]any{
		"SimCoreEventLoop": map[string]any{
			"ns_per_op": 130.0, "allocs_per_op": 1.0, "events/s": 1e7,
		},
		"note": "env record, not a metric",
	}
	comps := compare(old, new, 0.25, nil)
	c := findComp(t, comps, "SimCoreEventLoop.ns_per_op")
	if !c.Worse {
		t.Errorf("30%% ns_per_op regression not flagged: %+v", c)
	}
	if c := findComp(t, comps, "SimCoreEventLoop.allocs_per_op"); c.Worse {
		t.Errorf("unchanged allocs_per_op flagged: %+v", c)
	}
	// Exactly at the threshold is not a regression; just past it is.
	new["SimCoreEventLoop"].(map[string]any)["ns_per_op"] = 125.0
	if c := findComp(t, compare(old, new, 0.25, nil), "SimCoreEventLoop.ns_per_op"); c.Worse {
		t.Errorf("exactly-at-threshold flagged: %+v", c)
	}
}

// Rate metrics regress downward: a throughput drop past the threshold
// must be flagged, a gain must not.
func TestCompareRateDirection(t *testing.T) {
	old := map[string]any{"SimCoreEventLoop": map[string]any{"events/s": 1e7}}
	new := map[string]any{"SimCoreEventLoop": map[string]any{"events/s": 7e6}}
	if c := findComp(t, compare(old, new, 0.25, nil), "SimCoreEventLoop.events/s"); !c.Worse {
		t.Errorf("30%% throughput drop not flagged: %+v", c)
	}
	new["SimCoreEventLoop"].(map[string]any)["events/s"] = 2e7
	if c := findComp(t, compare(old, new, 0.25, nil), "SimCoreEventLoop.events/s"); c.Worse {
		t.Errorf("throughput gain flagged as regression: %+v", c)
	}
}

// The committed MigrationEngine entry nests live numbers under
// "current"; a bench-parsed snapshot is flat and must be compared
// through that branch.
func TestCompareDescendsIntoCurrent(t *testing.T) {
	old := map[string]any{
		"MigrationEngine": map[string]any{
			"baseline_db8741a": map[string]any{"ns_per_op": 5e7},
			"current":          map[string]any{"ns_per_op": 1e7},
		},
	}
	new := map[string]any{
		"MigrationEngine": map[string]any{"ns_per_op": 2e7},
	}
	c := findComp(t, compare(old, new, 0.25, nil), "MigrationEngine.ns_per_op")
	if c.Old != 1e7 {
		t.Errorf("compared against %.0f, want the current branch 1e7", c.Old)
	}
	if !c.Worse {
		t.Errorf("2x regression vs current not flagged: %+v", c)
	}
}

// The -metrics selector restricts comparison to the named leaf keys.
func TestCompareMetricSelector(t *testing.T) {
	old := map[string]any{"B": map[string]any{"ns_per_op": 100.0, "allocs_per_op": 10.0}}
	new := map[string]any{"B": map[string]any{"ns_per_op": 900.0, "allocs_per_op": 10.0}}
	comps := compare(old, new, 0.25, map[string]bool{"allocs_per_op": true})
	for _, c := range comps {
		if strings.HasSuffix(c.Path, "ns_per_op") {
			t.Errorf("ns_per_op compared despite selector: %+v", c)
		}
	}
	findComp(t, comps, "B.allocs_per_op")
}

func TestParseBench(t *testing.T) {
	out := `goos: linux
goarch: amd64
pkg: dvemig
BenchmarkSimCoreEventLoop-1      	 8259148	       138.3 ns/op	   7229926 events/s	      32 B/op	       1 allocs/op
BenchmarkSimCoreChaosSweep/workers-1-1 	       1	905260195 ns/op	  8.837 sims/s	187456616 B/op	 1789811 allocs/op
BenchmarkMigrationEngine-1       	       5	  10941873 ns/op	  11052950 B/op	     37408 allocs/op
PASS
`
	snap := parseBench([]byte(out))
	el, ok := snap["SimCoreEventLoop"].(map[string]any)
	if !ok {
		t.Fatalf("SimCoreEventLoop missing: %+v", snap)
	}
	if got := el["ns_per_op"].(float64); got != 138.3 {
		t.Errorf("ns_per_op = %v, want 138.3", got)
	}
	if got := el["events/s"].(float64); got != 7229926 {
		t.Errorf("events/s = %v, want 7229926", got)
	}
	sweep, ok := snap["SimCoreChaosSweep"].(map[string]any)
	if !ok {
		t.Fatalf("SimCoreChaosSweep missing: %+v", snap)
	}
	w1, ok := sweep["workers_1"].(map[string]any)
	if !ok {
		t.Fatalf("workers_1 missing (sub-bench '-' not mapped to '_'): %+v", sweep)
	}
	if got := w1["allocs_per_op"].(float64); got != 1789811 {
		t.Errorf("workers_1 allocs_per_op = %v", got)
	}
	// End-to-end: the parsed snapshot compares against a committed-shaped
	// old file, descending into MigrationEngine.current.
	old := map[string]any{
		"MigrationEngine": map[string]any{
			"current": map[string]any{"allocs_per_op": 37408.0},
		},
	}
	c := findComp(t, compare(old, snap, 0.25, nil), "MigrationEngine.allocs_per_op")
	if c.Worse {
		t.Errorf("identical allocs_per_op flagged: %+v", c)
	}
}
