// Command perfdiff compares two BENCH_simperf.json-shaped snapshots —
// or a live `go test -bench` run against the committed file — and exits
// nonzero when any tracked metric regressed past the threshold. It is
// the repo's machine-checked perf trajectory: CI runs the 1-iteration
// bench smoke, parses its output into snapshot shape and diffs it
// against the committed baseline.
//
// Usage:
//
//	perfdiff [-threshold 0.25] [-metrics ns_per_op,...] old.json new.json
//	perfdiff [-threshold 0.25] -bench bench.txt old.json
//
// Comparison walks every numeric leaf present in both snapshots at the
// same path. Direction is inferred from the metric name: ns_per_op /
// bytes_per_op / allocs_per_op regress upward, rate metrics ("…/s",
// best_speedup_vs_serial) regress downward; anything else (notes,
// verdicts, environment records) is skipped. A snapshot entry of the
// {baseline_*, current} shape is compared through its "current" branch
// when the other side is flat — the shape TestWriteSimPerfReport gives
// the MigrationEngine suite.
//
// Exit codes: 0 no regression, 1 at least one metric regressed, 2
// usage/IO/parse error.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
)

type comparison struct {
	Path  string
	Old   float64
	New   float64
	Ratio float64 // new/old for lower-better, old/new for higher-better
	Worse bool
}

// metricDir reports how the named leaf regresses: +1 = lower is better
// (regress when new > old), -1 = higher is better, 0 = not compared.
func metricDir(key string) int {
	switch key {
	case "ns_per_op", "bytes_per_op", "allocs_per_op":
		return +1
	case "best_speedup_vs_serial":
		return -1
	}
	if strings.HasSuffix(key, "/s") {
		return -1
	}
	return 0
}

// compare walks old and new in parallel and scores every numeric leaf
// whose key names a tracked metric and which exists on both sides.
// selected filters by leaf key (nil/empty = every tracked metric).
func compare(old, new map[string]any, threshold float64, selected map[string]bool) []comparison {
	var out []comparison
	var walk func(path string, o, n any)
	walk = func(path string, o, n any) {
		om, oIsMap := o.(map[string]any)
		nm, nIsMap := n.(map[string]any)
		switch {
		case oIsMap && nIsMap:
			// The committed MigrationEngine entry nests the live numbers
			// under "current" next to the recorded baseline; a bench-run
			// snapshot is flat. Descend into old's current branch when new
			// has no matching key but old has one.
			if cur, ok := om["current"].(map[string]any); ok {
				if _, alsoNew := nm["current"]; !alsoNew {
					om = cur
				}
			}
			keys := make([]string, 0, len(om))
			for k := range om {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			for _, k := range keys {
				nv, ok := nm[k]
				if !ok {
					continue
				}
				p := k
				if path != "" {
					p = path + "." + k
				}
				walk(p, om[k], nv)
			}
		case !oIsMap && !nIsMap:
			ov, oOK := o.(float64)
			nv, nOK := n.(float64)
			if !oOK || !nOK {
				return
			}
			key := path
			if i := strings.LastIndexByte(path, '.'); i >= 0 {
				key = path[i+1:]
			}
			dir := metricDir(key)
			if dir == 0 || (len(selected) > 0 && !selected[key]) {
				return
			}
			c := comparison{Path: path, Old: ov, New: nv}
			switch {
			case ov == 0 && nv == 0:
				c.Ratio = 1
			case ov == 0 || nv == 0:
				// A metric collapsing to (or appearing from) zero is a
				// shape change, not a measured ratio; flag only a
				// lower-better metric that grew from zero.
				c.Ratio = 0
				c.Worse = dir > 0 && nv > 0
			case dir > 0:
				c.Ratio = nv / ov
				c.Worse = c.Ratio > 1+threshold
			default:
				c.Ratio = ov / nv
				c.Worse = c.Ratio > 1+threshold
			}
			out = append(out, c)
		}
	}
	walk("", any(old), any(new))
	return out
}

// parseBench converts `go test -bench -benchmem` output into the
// nested snapshot shape: BenchmarkName[-P] and sub-bench segments map
// to path components ("SimCoreChaosSweep/workers-1" →
// SimCoreChaosSweep.workers_1), units map to the snapshot keys
// (ns/op → ns_per_op, B/op → bytes_per_op, allocs/op → allocs_per_op;
// rate units like events/s keep their name).
func parseBench(data []byte) map[string]any {
	root := map[string]any{}
	for _, line := range strings.Split(string(data), "\n") {
		fields := strings.Fields(line)
		if len(fields) < 3 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := strings.TrimPrefix(fields[0], "Benchmark")
		// Strip the -GOMAXPROCS suffix from the last path segment.
		if i := strings.LastIndexByte(name, '-'); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		metrics := map[string]float64{}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch unit := fields[i+1]; unit {
			case "ns/op":
				metrics["ns_per_op"] = v
			case "B/op":
				metrics["bytes_per_op"] = v
			case "allocs/op":
				metrics["allocs_per_op"] = v
			default:
				metrics[unit] = v
			}
		}
		if len(metrics) == 0 {
			continue
		}
		// Descend: path segments are sub-bench names with '-' → '_' so
		// "workers-1" lines up with the committed "workers_1" keys.
		node := root
		segs := strings.Split(name, "/")
		for _, seg := range segs[:len(segs)-1] {
			seg = strings.ReplaceAll(seg, "-", "_")
			child, ok := node[seg].(map[string]any)
			if !ok {
				child = map[string]any{}
				node[seg] = child
			}
			node = child
		}
		leafKey := strings.ReplaceAll(segs[len(segs)-1], "-", "_")
		leaf, ok := node[leafKey].(map[string]any)
		if !ok {
			leaf = map[string]any{}
			node[leafKey] = leaf
		}
		for k, v := range metrics {
			leaf[k] = v
		}
	}
	return root
}

func loadJSON(path string) (map[string]any, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	m := map[string]any{}
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return m, nil
}

func main() {
	threshold := flag.Float64("threshold", 0.25, "regression threshold as a fraction (0.25 = fail beyond ±25%)")
	benchPath := flag.String("bench", "", "parse this `go test -bench` output as the new snapshot (then only old.json is given)")
	metricsFlag := flag.String("metrics", "", "comma-separated metric keys to compare (default: every tracked metric); e.g. allocs_per_op,bytes_per_op for noise-free 1-iteration smokes")
	quiet := flag.Bool("q", false, "print regressions only")
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: perfdiff [-threshold 0.25] [-metrics k1,k2] old.json new.json")
		fmt.Fprintln(os.Stderr, "       perfdiff [-threshold 0.25] [-metrics k1,k2] -bench bench.txt old.json")
		flag.PrintDefaults()
	}
	flag.Parse()

	var old, new map[string]any
	var err error
	switch {
	case *benchPath != "" && flag.NArg() == 1:
		old, err = loadJSON(flag.Arg(0))
		if err == nil {
			var data []byte
			if data, err = os.ReadFile(*benchPath); err == nil {
				new = parseBench(data)
				if len(new) == 0 {
					err = fmt.Errorf("%s: no benchmark lines found", *benchPath)
				}
			}
		}
	case *benchPath == "" && flag.NArg() == 2:
		if old, err = loadJSON(flag.Arg(0)); err == nil {
			new, err = loadJSON(flag.Arg(1))
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "perfdiff: %v\n", err)
		os.Exit(2)
	}

	selected := map[string]bool{}
	for _, k := range strings.Split(*metricsFlag, ",") {
		if k = strings.TrimSpace(k); k != "" {
			selected[k] = true
		}
	}

	comps := compare(old, new, *threshold, selected)
	if len(comps) == 0 {
		fmt.Fprintln(os.Stderr, "perfdiff: no comparable metrics found")
		os.Exit(2)
	}
	regressions := 0
	for _, c := range comps {
		if c.Worse {
			regressions++
			fmt.Printf("REGRESSION %-52s old=%-14.6g new=%-14.6g ratio=%.3f (threshold %.2f)\n",
				c.Path, c.Old, c.New, c.Ratio, 1+*threshold)
		} else if !*quiet {
			fmt.Printf("ok         %-52s old=%-14.6g new=%-14.6g ratio=%.3f\n",
				c.Path, c.Old, c.New, c.Ratio)
		}
	}
	fmt.Printf("perfdiff: %d metrics compared, %d regressions (threshold ±%.0f%%)\n",
		len(comps), regressions, *threshold*100)
	if regressions > 0 {
		os.Exit(1)
	}
}
