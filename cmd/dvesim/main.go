// Command dvesim runs the §VI-C distributed-virtual-environment
// simulation: 10×10 zones on five server nodes, 10,000 clients drifting
// toward the corners over ~15 minutes, with or without the load-balancing
// middleware. It prints the per-node CPU series (Fig 5e / Fig 5f), the
// zone-server distribution series (Fig 5d) and a summary.
//
// Usage:
//
//	dvesim [-lb] [-duration 900] [-fast]
//	       [-cpuprofile cpu.pprof] [-memprofile mem.pprof] [-simprof-out simprof.json]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"dvemig/internal/dve"
	"dvemig/internal/eval"
	"dvemig/internal/migration"
	"dvemig/internal/obs"
	"dvemig/internal/simprof"
	"dvemig/internal/simtime"
)

func main() {
	lbOn := flag.Bool("lb", false, "enable the load balancing middleware (Fig 5f) instead of plain (Fig 5e)")
	both := flag.Bool("both", false, "run the LB-off and LB-on simulations concurrently and print both (Fig 5e and 5f)")
	duration := flag.Int("duration", 900, "simulated seconds")
	fast := flag.Bool("fast", false, "accelerated movement for quick demos")
	series := flag.Bool("series", true, "print the full time series tables")
	neighbors := flag.Bool("neighbors", false, "connect zone servers to their grid neighbors (both-ends migration)")
	showMap := flag.Bool("fig5a", false, "print the Fig 5a zone map and exit")
	csvDir := flag.String("csv", "", "write cpu.csv / procs.csv / rate.csv time series into this directory")
	traceOut := flag.String("trace-out", "", "write a Chrome trace_event JSON (Perfetto-loadable) of the run to this file")
	metricsOut := flag.String("metrics-out", "", "write the run's metric snapshot (counters/gauges/histograms) to this file")
	sample := flag.Duration("sample", time.Second, "sim-time sampling cadence for the observability time series (0 disables)")
	seriesOut := flag.String("series-out", "", "write the sampled time series to this file (.csv for CSV, else JSON)")
	strategy := flag.String("strategy", "precopy", "memory-movement strategy for every LB migration: precopy|postcopy|hybrid")
	soak := flag.Bool("soak", false, "run the control-plane soak battery instead of the DVE simulation")
	soakRequests := flag.Int("soak-requests", 200, "with -soak: migration objects per (scenario, seed) cell")
	cpuProfile := flag.String("cpuprofile", "", "write a pprof CPU profile of the run to this file")
	memProfile := flag.String("memprofile", "", "write a pprof heap profile (post-GC) to this file at exit")
	simprofOut := flag.String("simprof-out", "", "self-profile the simulator's hot paths and write the simprof JSON report to this file")
	flag.Parse()

	if *showMap {
		fmt.Println(dve.Fig5a())
		return
	}

	sess, err := simprof.OpenSession(*cpuProfile, *memProfile, *simprofOut, 1)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dvesim: %v\n", err)
		os.Exit(2)
	}
	closeSession := func() {
		if err := sess.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "dvesim: writing profiles: %v\n", err)
			os.Exit(1)
		}
	}

	if *soak {
		runSoak(*soakRequests, *strategy, *traceOut, *metricsOut, *seriesOut, sess.Prof)
		closeSession()
		return
	}

	observe := *traceOut != "" || *metricsOut != "" || *seriesOut != ""
	cfg := dve.DefaultConfig()
	mig, err := migration.StrategyByName(*strategy)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dvesim: %v\n", err)
		os.Exit(2)
	}
	cfg.MigConfig.Mig = mig
	cfg.LB = *lbOn
	cfg.Observe = observe
	cfg.NeighborLinks = *neighbors
	cfg.Duration = simtime.Duration(*duration) * 1e9
	if *fast {
		cfg.MoveStart = 30 * 1e9
		cfg.MoveProb = 0.08
		cfg.LBConfig.ImbalanceThreshold = 0.08
		cfg.LBConfig.CalmDown = 8e9
	}
	if *both {
		// The two runs are independent simulations with private
		// schedulers; the parallel runner overlaps them and returns the
		// results in canonical (off, on) order.
		fmt.Fprintf(os.Stderr, "running %ds of simulated time twice (lb off and on, concurrently)...\n", *duration)
		caps := make([]*obs.Capture, 2)
		runs, err := eval.RunParallel([]bool{false, true}, 0, func(lb bool) (*dve.Results, error) {
			c := cfg
			c.LB = lb
			sim, err := dve.New(c)
			if err != nil {
				return nil, err
			}
			sim.Cluster.Sched.Prof = sess.Prof.Loop(fmt.Sprintf("dve/lb=%v", lb))
			attachSampler(sim, *sample)
			r := sim.Run()
			if observe {
				// Index writes are per-worker-disjoint and canonical
				// (off=0, on=1), so the exported file is deterministic.
				idx := 0
				if lb {
					idx = 1
				}
				caps[idx] = sim.CaptureObs(fmt.Sprintf("dve/lb=%v", lb))
			}
			return r, nil
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "dvesim: %v\n", err)
			os.Exit(1)
		}
		writeObs(*traceOut, *metricsOut, *seriesOut, caps...)
		if *series {
			fmt.Printf("=== Fig 5e (CPU per node, no LB) ===\n%s\n", runs[0].CPU.Table())
			fmt.Printf("=== Fig 5f (CPU per node, LB enabled) ===\n%s\n", runs[1].CPU.Table())
			fmt.Printf("=== Fig 5d (zone servers per node) ===\n%s\n", runs[1].Procs.Table())
		}
		fmt.Println(eval.DVESummary(runs[0], false))
		fmt.Println(eval.DVESummary(runs[1], true))
		closeSession()
		return
	}

	sim, err := dve.New(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dvesim: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "running %ds of simulated time (%d zones, %d clients, lb=%v)...\n",
		*duration, dve.GridW*dve.GridH, cfg.Clients, cfg.LB)
	sim.Cluster.Sched.Prof = sess.Prof.Loop(fmt.Sprintf("dve/lb=%v", cfg.LB))
	attachSampler(sim, *sample)
	r := sim.Run()
	if observe {
		writeObs(*traceOut, *metricsOut, *seriesOut, sim.CaptureObs(fmt.Sprintf("dve/lb=%v", cfg.LB)))
	}

	if *series {
		fig := "Fig 5e (CPU per node, no LB)"
		if cfg.LB {
			fig = "Fig 5f (CPU per node, LB enabled)"
		}
		fmt.Printf("=== %s ===\n%s\n", fig, r.CPU.Table())
		if cfg.LB {
			fmt.Printf("=== Fig 5d (zone servers per node) ===\n%s\n", r.Procs.Table())
		}
	}
	if *csvDir != "" {
		for name, set := range map[string]interface{ CSV() string }{
			"cpu.csv": r.CPU, "procs.csv": r.Procs, "rate.csv": r.UpdateRate,
		} {
			path := filepath.Join(*csvDir, name)
			if err := os.WriteFile(path, []byte(set.CSV()), 0o644); err != nil {
				fmt.Fprintf(os.Stderr, "dvesim: %v\n", err)
				os.Exit(1)
			}
			fmt.Fprintf(os.Stderr, "wrote %s\n", path)
		}
	}
	fmt.Println(eval.DVESummary(r, cfg.LB))
	closeSession()
}

// attachSampler arms a sim-time sampler on an observed run: every
// period the cluster totals are harvested (idempotently) into the
// registry and appended to ring series, which CaptureObs then folds
// into the exported artifacts. No-op when unobserved or period ≤ 0.
func attachSampler(sim *dve.Simulation, period time.Duration) {
	if sim.Obs == nil || period <= 0 {
		return
	}
	s := obs.NewSampler(sim.Cluster.Sched, sim.Obs.Metrics, period, 0)
	s.Harvest = func(r *obs.Registry) { obs.HarvestCluster(r, sim.Cluster) }
	sim.Obs.Sampler = s
	s.Start()
}

// runSoak is the -soak mode: a reduced control-plane soak battery (the
// full-size one lives in cmd/soak) sharing dvesim's artifact flags.
func runSoak(requests int, strategy, tracePath, metricsPath, seriesPath string, prof *simprof.Profiler) {
	cfg := eval.DefaultSoakConfig()
	cfg.Requests = requests
	cfg.Strategy = strategy
	cfg.Observe = tracePath != "" || metricsPath != "" || seriesPath != ""
	cfg.Prof = prof
	fmt.Fprintf(os.Stderr, "soaking %d cells × %d requests (strategy %s)...\n",
		len(cfg.Scenarios)*len(cfg.Seeds), cfg.Requests, cfg.Strategy)
	rep, err := eval.RunSoak(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dvesim: %v\n", err)
		os.Exit(1)
	}
	fmt.Print(rep.Table())
	if t := rep.SLOTable(); t != "" {
		fmt.Print(t)
	}
	writeObs(tracePath, metricsPath, seriesPath, rep.Captures()...)
	for _, res := range rep.Results {
		if len(res.Violations) > 0 {
			fmt.Fprintf(os.Stderr, "dvesim: soak violations in %s/seed%d: %v\n",
				res.Scenario, res.Seed, res.Violations)
			os.Exit(1)
		}
	}
}

// writeObs writes the trace, metrics and/or series artifacts when
// their flags were given; any path may be empty.
func writeObs(tracePath, metricsPath, seriesPath string, caps ...*obs.Capture) {
	write := func(path, what string, fn func(string, ...*obs.Capture) error) {
		if path == "" {
			return
		}
		if err := fn(path, caps...); err != nil {
			fmt.Fprintf(os.Stderr, "dvesim: writing %s: %v\n", what, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", path)
	}
	write(tracePath, "trace", obs.WriteChromeTraceFile)
	write(metricsPath, "metrics", obs.WriteMetricsFile)
	write(seriesPath, "series", obs.WriteSeriesFile)
}
