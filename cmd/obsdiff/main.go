// Command obsdiff compares two observability artifacts exported by the
// same experiment (dvesim/migbench/report -trace-out or -metrics-out
// files) and reports the FIRST point where they diverge, with the
// divergent span's causal ancestry. Exports are deterministic functions
// of a run, so everything after the first divergence is cascade — the
// first event is where a determinism break (or an intentional seed
// change) actually bit.
//
// Usage:
//
//	obsdiff a.json b.json     # Chrome traces (detected by leading '{')
//	obsdiff a.txt b.txt       # metrics text otherwise
//	obsdiff -trace a b        # force trace mode
//	obsdiff -metrics a b      # force metrics mode
//
// Exit codes: 0 identical, 1 divergent, 2 usage/IO/parse error.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"

	"dvemig/internal/obs"
)

func main() {
	forceTrace := flag.Bool("trace", false, "treat inputs as Chrome trace JSON")
	forceMetrics := flag.Bool("metrics", false, "treat inputs as metrics text")
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: obsdiff [-trace|-metrics] fileA fileB")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 2 || (*forceTrace && *forceMetrics) {
		flag.Usage()
		os.Exit(2)
	}
	pathA, pathB := flag.Arg(0), flag.Arg(1)
	a, err := os.ReadFile(pathA)
	if err != nil {
		fail(err)
	}
	b, err := os.ReadFile(pathB)
	if err != nil {
		fail(err)
	}

	isTrace := *forceTrace
	if !*forceTrace && !*forceMetrics {
		isTrace = looksLikeJSON(a)
		if isTrace != looksLikeJSON(b) {
			fail(fmt.Errorf("%s and %s appear to be different artifact kinds; force with -trace or -metrics", pathA, pathB))
		}
	}

	var d *obs.Divergence
	if isTrace {
		d, err = obs.DiffTraceJSON(a, b)
	} else {
		d, err = obs.DiffMetricsText(a, b)
	}
	if err != nil {
		fail(err)
	}
	if d == nil {
		fmt.Printf("%s == %s: identical\n", pathA, pathB)
		return
	}
	fmt.Printf("%s != %s\n%s\n", pathA, pathB, d)
	os.Exit(1)
}

func looksLikeJSON(data []byte) bool {
	t := bytes.TrimLeft(data, " \t\r\n")
	return len(t) > 0 && (t[0] == '{' || t[0] == '[')
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "obsdiff: %v\n", err)
	os.Exit(2)
}
