// Command tracecheck validates observability artifacts exported by
// dvesim, migbench or report. Chrome trace JSON (-trace-out files) must
// parse, carry the mandatory fields on every event and contain at least
// one span; metrics text (-metrics-out files) must have well-formed
// sections, non-negative integer counters and self-consistent
// histograms. With -connected, traces must additionally form connected
// causal trees: every span's ancestry resolves to its trace root, no
// destination/conductor span roots an orphan trace, and at least one
// trace links a source migration span to a destination inbound span
// across tracks. CI's obs job runs it against freshly exported
// artifacts so a schema or causality regression fails the build instead
// of silently producing files Perfetto refuses to load.
//
// Series JSON (-series-out files, kind "dvemig-series") must carry the
// kind marker, a positive sample period, aligned t/v arrays with
// strictly increasing timestamps, and monotonic counter-kind series.
// Series CSV (-series-out files ending .csv) must carry the
// "capture,series,kind,t_ns,value" header and obey the same per-series
// invariants: known kinds, strictly increasing timestamps, monotonic
// non-negative counter values.
//
// Artifact kinds are auto-detected (the "dvemig-series" kind marker =
// series JSON, the series CSV header line = series CSV, else leading
// '{' or '[' = trace JSON, otherwise metrics text); force with -trace,
// -metrics or -series (which accepts either series form).
//
// Usage:
//
//	tracecheck [-connected] [-trace|-metrics|-series] file [file ...]
//
// Exit codes: 0 all files valid, 1 trace schema failure, 2 usage/IO
// error, 3 metrics validation failure, 4 trace connectivity failure,
// 5 series validation failure. When several classes fail across the
// file list, the schema class wins, then metrics, then connectivity,
// then series.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"

	"dvemig/internal/obs"
)

const (
	exitOK        = 0
	exitSchema    = 1
	exitUsage     = 2
	exitMetrics   = 3
	exitConnected = 4
	exitSeries    = 5
)

func main() {
	connected := flag.Bool("connected", false, "require traces to form connected causal trees with a cross-track migration→inbound link")
	forceTrace := flag.Bool("trace", false, "treat all inputs as Chrome trace JSON")
	forceMetrics := flag.Bool("metrics", false, "treat all inputs as metrics text")
	forceSeries := flag.Bool("series", false, "treat all inputs as sampled time-series artifacts (JSON or CSV)")
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: tracecheck [-connected] [-trace|-metrics|-series] file [file ...]")
		flag.PrintDefaults()
	}
	flag.Parse()
	forced := 0
	for _, f := range []bool{*forceTrace, *forceMetrics, *forceSeries} {
		if f {
			forced++
		}
	}
	if flag.NArg() < 1 || forced > 1 || (*connected && (*forceMetrics || *forceSeries)) {
		flag.Usage()
		os.Exit(exitUsage)
	}

	var schemaBad, metricsBad, connBad, seriesBad bool
	for _, path := range flag.Args() {
		data, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tracecheck: %v\n", err)
			os.Exit(exitUsage)
		}
		isCSV := obs.LooksLikeSeriesCSV(data)
		isSeries := *forceSeries || (forced == 0 && (isCSV || obs.LooksLikeSeriesJSON(data)))
		if isSeries {
			validate, form := obs.ValidateSeriesJSON, "series"
			if isCSV {
				validate, form = obs.ValidateSeriesCSV, "series csv"
			}
			if err := validate(data); err != nil {
				fmt.Fprintf(os.Stderr, "tracecheck: %s: %v\n", path, err)
				seriesBad = true
				continue
			}
			fmt.Printf("%s: %s ok (%d bytes)\n", path, form, len(data))
			continue
		}
		isTrace := *forceTrace || (!*forceMetrics && looksLikeJSON(data))
		if !isTrace {
			if err := obs.ValidateMetricsText(data); err != nil {
				fmt.Fprintf(os.Stderr, "tracecheck: %s: %v\n", path, err)
				metricsBad = true
				continue
			}
			fmt.Printf("%s: metrics ok (%d bytes)\n", path, len(data))
			continue
		}
		if err := obs.ValidateChromeTrace(data); err != nil {
			fmt.Fprintf(os.Stderr, "tracecheck: %s: %v\n", path, err)
			schemaBad = true
			continue
		}
		if *connected {
			if err := obs.CheckConnected(data); err != nil {
				fmt.Fprintf(os.Stderr, "tracecheck: %s: %v\n", path, err)
				connBad = true
				continue
			}
			fmt.Printf("%s: trace ok, connected (%d bytes)\n", path, len(data))
			continue
		}
		fmt.Printf("%s: trace ok (%d bytes)\n", path, len(data))
	}
	switch {
	case schemaBad:
		os.Exit(exitSchema)
	case metricsBad:
		os.Exit(exitMetrics)
	case connBad:
		os.Exit(exitConnected)
	case seriesBad:
		os.Exit(exitSeries)
	}
}

func looksLikeJSON(data []byte) bool {
	t := bytes.TrimLeft(data, " \t\r\n")
	return len(t) > 0 && (t[0] == '{' || t[0] == '[')
}
