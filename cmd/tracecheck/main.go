// Command tracecheck validates a Chrome trace_event JSON document
// produced by the observability plane (-trace-out on dvesim, migbench
// or report): it must parse, carry the mandatory fields on every event
// and contain at least one span. CI's obs smoke job runs it against a
// freshly exported trace so a schema regression fails the build instead
// of silently producing files Perfetto refuses to load.
//
// Usage:
//
//	tracecheck trace.json [trace2.json ...]
package main

import (
	"fmt"
	"os"

	"dvemig/internal/obs"
)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: tracecheck trace.json [trace2.json ...]")
		os.Exit(2)
	}
	bad := false
	for _, path := range os.Args[1:] {
		data, err := os.ReadFile(path)
		if err == nil {
			err = obs.ValidateChromeTrace(data)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "tracecheck: %s: %v\n", path, err)
			bad = true
			continue
		}
		fmt.Printf("%s: ok (%d bytes)\n", path, len(data))
	}
	if bad {
		os.Exit(1)
	}
}
