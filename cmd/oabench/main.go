// Command oabench regenerates the Fig 4 experiment: an OpenArena-style
// UDP game server with 24 connected clients is live-migrated mid-game;
// server packets are captured tcpdump-style at the players' access link
// and the migration-imposed delay is reported, together with the process
// freeze time (§VI-B reports ≈20 ms downtime and ≈25 ms packet delay).
//
// Usage:
//
//	oabench [-clients 24] [-plot]
package main

import (
	"flag"
	"fmt"
	"os"

	"dvemig/internal/openarena"
	"dvemig/internal/simtime"
)

func main() {
	clients := flag.Int("clients", 24, "number of connected players")
	plot := flag.Bool("plot", true, "print packet-number-vs-time rows around the migration (Fig 4)")
	flag.Parse()

	cfg := openarena.DefaultFig4Config()
	cfg.Clients = *clients
	res, err := openarena.RunFig4(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "oabench: %v\n", err)
		os.Exit(1)
	}

	if *plot {
		fmt.Println("=== Fig 4: packets around the migration ===")
		fmt.Printf("%12s %10s\n", "t-rel (ms)", "packet #")
		_, gapAt := res.Trace.MaxGap()
		window := res.Trace.Window(gapAt-150*1e6, gapAt+200*1e6)
		base := simtime.Time(0)
		if len(window) > 0 {
			base = window[0].At
		}
		for i, rec := range window {
			fmt.Printf("%12.3f %10d\n", float64(rec.At-base)/1e6, i)
		}
		fmt.Println()
	}
	fmt.Printf("clients:                 %d\n", cfg.Clients)
	fmt.Printf("server frame period:     %.0f ms (20 updates/s)\n", float64(cfg.Server.FramePeriod)/1e6)
	fmt.Printf("process freeze time:     %.1f ms   (paper: ~20 ms)\n", float64(res.Metrics.FreezeTime)/1e6)
	fmt.Printf("regular packet cadence:  %.1f ms\n", float64(res.BaselineGap)/1e6)
	fmt.Printf("max gap at migration:    %.1f ms\n", float64(res.MaxGap)/1e6)
	fmt.Printf("delay due to migration:  %.1f ms   (paper: ~25 ms)\n", float64(res.ExtraDelay)/1e6)
	fmt.Printf("captured during freeze:  %d packets, reinjected %d\n", res.Metrics.Captured, res.Metrics.Reinjected)
	fmt.Printf("snapshots received/sent: %d / %d per client frames\n", res.TotalReceived, res.ExpectedPerClient)
}
