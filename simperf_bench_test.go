// Simulator-core performance suite: throughput of the discrete-event
// scheduler (events/s), of the timer arm/cancel churn pattern the TCP
// stack generates (cancels/s), of whole simulations (sims/s), and the
// scaling of the parallel sweep runner over worker counts.
//
// Unlike the figure benchmarks in bench_test.go these measure the
// simulator itself — wall-clock ns/op and allocs/op are the quantities
// of interest, not simulated milliseconds.
//
//	go test -bench=SimCore -benchmem
//
// SIMPERF_REPORT=1 go test -run TestWriteSimPerfReport writes the
// numbers (plus the recorded pre-overhaul baseline) to
// BENCH_simperf.json.
package dvemig

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"dvemig/internal/eval"
	"dvemig/internal/migration"
	"dvemig/internal/simprof"
	"dvemig/internal/simtime"
	"dvemig/internal/sockmig"
)

// BenchmarkSimCoreEventLoop measures raw scheduler throughput: a ring
// of self-rescheduling events, the dominant pattern of every simulation
// (tickers, process loops, packet deliveries).
func BenchmarkSimCoreEventLoop(b *testing.B) {
	const ring = 64
	s := simtime.NewScheduler()
	var fired int
	var arm func(d simtime.Duration)
	arm = func(d simtime.Duration) {
		s.After(d, "bench.ring", func() {
			fired++
			arm(d)
		})
	}
	for i := 0; i < ring; i++ {
		arm(time.Duration(i+1) * time.Microsecond)
	}
	b.ReportAllocs()
	b.ResetTimer()
	start := time.Now()
	target := fired + b.N
	for fired < target {
		s.RunFor(64 * time.Microsecond)
	}
	elapsed := time.Since(start)
	b.ReportMetric(float64(fired)/elapsed.Seconds(), "events/s")
}

// BenchmarkSimCoreTimerChurn measures the arm/cancel/re-arm pattern the
// TCP retransmission timer generates on every ACK — the hot path the
// eager O(log n) Cancel and the event free list exist for. Each
// iteration arms a timer and cancels it before it fires.
func BenchmarkSimCoreTimerChurn(b *testing.B) {
	s := simtime.NewScheduler()
	// A backdrop of pending timers makes the heap realistically deep.
	for i := 0; i < 1024; i++ {
		s.After(time.Duration(i+1)*time.Hour, "bench.backdrop", func() {})
	}
	b.ReportAllocs()
	b.ResetTimer()
	start := time.Now()
	for i := 0; i < b.N; i++ {
		ev := s.After(time.Second, "bench.rto", func() {})
		s.Cancel(ev)
	}
	elapsed := time.Since(start)
	b.ReportMetric(float64(b.N)/elapsed.Seconds(), "cancels/s")
	if s.Pending() != 1024 {
		b.Fatalf("pending = %d, want 1024 (exact-Pending broken)", s.Pending())
	}
}

// BenchmarkSimCoreMigrationSim measures whole-simulation throughput: a
// complete live migration (64 connections), end to end.
func BenchmarkSimCoreMigrationSim(b *testing.B) {
	fc := eval.DefaultFreezeConfig(sockmig.IncrementalCollective, 64)
	fc.Repeats = 1
	b.ReportAllocs()
	b.ResetTimer()
	start := time.Now()
	for i := 0; i < b.N; i++ {
		if _, err := eval.RunFreezePoint(fc); err != nil {
			b.Fatal(err)
		}
	}
	elapsed := time.Since(start)
	b.ReportMetric(float64(b.N)/elapsed.Seconds(), "sims/s")
}

// BenchmarkSimCoreChaosSweep measures the chaos battery (8 scenarios ×
// 1 seed) at increasing worker counts: the parallel runner's scaling.
// Every worker count produces bit-identical results (pinned in
// internal/eval's parallel tests); only the wall clock changes.
func BenchmarkSimCoreChaosSweep(b *testing.B) {
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers-%d", workers), func(b *testing.B) {
			cfg := eval.DefaultChaosConfig()
			cfg.Seeds = []uint64{1}
			cfg.Workers = workers
			b.ReportAllocs()
			b.ResetTimer()
			start := time.Now()
			for i := 0; i < b.N; i++ {
				if _, err := eval.RunChaosSweep(cfg); err != nil {
					b.Fatal(err)
				}
			}
			elapsed := time.Since(start)
			b.ReportMetric(float64(b.N*len(cfg.Scenarios))/elapsed.Seconds(), "sims/s")
		})
	}
}

// simPerfBaseline is the pre-overhaul measurement of
// BenchmarkMigrationEngine (8-connection full migration, -benchtime 5x)
// on this container's CPU, taken at commit db8741a — before eager timer
// cancellation, pooled packet payloads and the serialization scratch
// buffers landed. TestWriteSimPerfReport re-measures the same benchmark
// on the current tree and records both, so the win stays auditable.
var simPerfBaseline = map[string]float64{
	"ns_per_op":     50311246,
	"bytes_per_op":  94353323,
	"allocs_per_op": 304514,
}

// TestWriteSimPerfReport runs the SimCore suite via testing.Benchmark
// and writes BENCH_simperf.json. Gated behind SIMPERF_REPORT=1 so the
// ordinary test run stays fast.
func TestWriteSimPerfReport(t *testing.T) {
	if os.Getenv("SIMPERF_REPORT") == "" {
		t.Skip("set SIMPERF_REPORT=1 to write BENCH_simperf.json")
	}
	record := func(r testing.BenchmarkResult) map[string]float64 {
		m := map[string]float64{
			"ns_per_op":     float64(r.NsPerOp()),
			"bytes_per_op":  float64(r.AllocedBytesPerOp()),
			"allocs_per_op": float64(r.AllocsPerOp()),
		}
		for k, v := range r.Extra {
			m[k] = v
		}
		return m
	}
	report := map[string]any{
		"suite":      "SimCore",
		"gomaxprocs": runtime.GOMAXPROCS(0),
		"cpus":       runtime.NumCPU(),
		"go":         runtime.Version(),
		"note": "wall-clock performance of the simulator core; all simulated " +
			"results are bit-identical at every worker count (see internal/eval parallel tests). " +
			"Sweep speedup is bounded by min(workers, cpus): on a single-core host the " +
			"worker columns are expected to be flat and only prove determinism and race-cleanness.",
	}
	benches := map[string]func(*testing.B){
		"SimCoreEventLoop":    BenchmarkSimCoreEventLoop,
		"SimCoreTimerChurn":   BenchmarkSimCoreTimerChurn,
		"SimCoreMigrationSim": BenchmarkSimCoreMigrationSim,
	}
	for name, fn := range benches {
		report[name] = record(testing.Benchmark(fn))
	}
	sweep := map[string]any{}
	var serialNs, bestParallelNs float64
	for _, workers := range []int{1, 2, 4} {
		workers := workers
		r := testing.Benchmark(func(b *testing.B) {
			cfg := eval.DefaultChaosConfig()
			cfg.Seeds = []uint64{1}
			cfg.Workers = workers
			for i := 0; i < b.N; i++ {
				if _, err := eval.RunChaosSweep(cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
		ns := float64(r.NsPerOp())
		sweep[fmt.Sprintf("workers_%d", workers)] = map[string]float64{"ns_per_op": ns}
		if workers == 1 {
			serialNs = ns
		}
		if bestParallelNs == 0 || ns < bestParallelNs {
			bestParallelNs = ns
		}
	}
	if serialNs > 0 && bestParallelNs > 0 {
		sweep["best_speedup_vs_serial"] = serialNs / bestParallelNs
	}
	report["SimCoreChaosSweep"] = sweep

	// The HEAD-vs-now comparison on the unchanged reference benchmark.
	engine := record(testing.Benchmark(BenchmarkMigrationEngine))
	report["MigrationEngine"] = map[string]any{
		"baseline_db8741a": simPerfBaseline,
		"current":          engine,
		"allocs_ratio":     engine["allocs_per_op"] / simPerfBaseline["allocs_per_op"],
		"ns_ratio":         engine["ns_per_op"] / simPerfBaseline["ns_per_op"],
	}

	// Per-strategy engine cost (the EXPERIMENTS.md strategy-race section
	// quotes these).
	strat := map[string]any{
		"note": "one full 8-connection live migration per op, per memory-movement " +
			"strategy (BenchmarkMigrationEngineStrategy); post-copy skips the " +
			"pre-copy round loop, hybrid pays one round plus a short pull phase",
	}
	for _, name := range migration.StrategyNames() {
		mig, err := migration.StrategyByName(name)
		if err != nil {
			t.Fatal(err)
		}
		strat[name] = record(testing.Benchmark(func(b *testing.B) {
			fc := eval.DefaultFreezeConfig(sockmig.IncrementalCollective, 8)
			fc.Repeats = 1
			fc.MigCfg.Mig = mig
			for i := 0; i < b.N; i++ {
				if _, err := eval.RunFreezePoint(fc); err != nil {
					b.Fatal(err)
				}
			}
		}))
	}
	report["MigrationEngineStrategy"] = strat

	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("BENCH_simperf.json", append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote BENCH_simperf.json:\n%s", data)
}

// TestWriteSimPerfSoakSLO runs the 12-cell soak battery with streaming
// sampling on and merges the per-scenario SLO verdicts into
// BENCH_simperf.json under the "SoakSLO" key — only that key, so the
// engine benchmarks recorded by TestWriteSimPerfReport keep their
// numbers (the alloc gate's ±1% comparison stays meaningful). Gated
// behind SIMPERF_SLO=1.
func TestWriteSimPerfSoakSLO(t *testing.T) {
	if os.Getenv("SIMPERF_SLO") == "" {
		t.Skip("set SIMPERF_SLO=1 to record SoakSLO into BENCH_simperf.json")
	}
	cfg := eval.DefaultSoakConfig()
	cfg.Observe = true
	rep, err := eval.RunSoak(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cells := map[string]any{}
	for _, res := range rep.Results {
		objectives := map[string]any{}
		for _, s := range res.SLO {
			burns := map[string]any{}
			for _, b := range s.Burns {
				burns[fmt.Sprintf("burn_%d", b.Len)] = map[string]any{"peak": b.Peak, "peak_at": b.PeakAt}
			}
			objectives[s.Name] = map[string]any{
				"target":         s.Objective.Max,
				"overall":        s.Overall,
				"met":            s.Met,
				"windows":        s.Samples,
				"breach_windows": s.BreachWindows,
				"first_breach":   s.FirstBreach,
				"burns":          burns,
			}
		}
		cells[fmt.Sprintf("%s/seed%d", res.Scenario, res.Seed)] = objectives
	}
	slo := map[string]any{
		"note": "per-cell SLO verdicts over sampled windows (1s sim-time cadence); " +
			"overall is the full-run cumulative value, breach_windows counts single " +
			"sample windows over target, burns are trailing-window peak burn rates",
		"requests_per_cell": cfg.Requests,
		"sample_period_ns":  int64(time.Second),
		"cells":             cells,
	}

	// Merge: rewrite only the SoakSLO key of the existing report.
	report := map[string]any{}
	if data, err := os.ReadFile("BENCH_simperf.json"); err == nil {
		if err := json.Unmarshal(data, &report); err != nil {
			t.Fatalf("BENCH_simperf.json: %v", err)
		}
	}
	report["SoakSLO"] = slo
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("BENCH_simperf.json", append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("merged SoakSLO into BENCH_simperf.json (%d cells)", len(cells))
}

// TestWriteSimPerfSweepOccupancy profiles the chaos sweep at several
// requested worker counts and merges the per-worker busy/idle occupancy
// into BENCH_simperf.json under the "SweepOccupancy" key — only that
// key, same merge discipline as SoakSLO. This is the measured answer to
// why BenchmarkSimCoreChaosSweep shows no speedup on this host: the
// runner clamps workers to GOMAXPROCS, so requested 2/4 collapse to the
// same effective parallelism and the occupancy numbers prove where the
// wall time went. Gated behind SIMPERF_OCC=1.
func TestWriteSimPerfSweepOccupancy(t *testing.T) {
	if os.Getenv("SIMPERF_OCC") == "" {
		t.Skip("set SIMPERF_OCC=1 to record SweepOccupancy into BENCH_simperf.json")
	}
	sweeps := map[string]any{}
	for _, workers := range []int{1, 2, 4} {
		prof := simprof.New(1)
		cfg := eval.DefaultChaosConfig()
		cfg.Workers = workers
		cfg.Observe = false
		cfg.Prof = prof
		if _, err := eval.RunChaosSweep(cfg); err != nil {
			t.Fatal(err)
		}
		r := prof.Report()
		if len(r.Sweeps) != 1 {
			t.Fatalf("workers=%d: %d sweep reports, want 1", workers, len(r.Sweeps))
		}
		sw := r.Sweeps[0]
		workerStats := map[string]any{}
		for _, w := range sw.Workers {
			workerStats[fmt.Sprintf("worker_%d", w.Worker)] = map[string]any{
				"cells":     w.Cells,
				"busy_ns":   w.BusyNs,
				"idle_ns":   w.IdleNs,
				"occupancy": w.Occupancy,
			}
		}
		entry := map[string]any{
			"workers_requested": sw.WorkersRequested,
			"workers_effective": sw.WorkersEffective,
			"cells":             sw.Cells,
			"wall_ns":           sw.WallNs,
			"gc_cycles":         sw.GCCycles,
			"alloc_bytes":       sw.AllocBytes,
			"workers":           workerStats,
		}
		if r.EventLoopTotal != nil {
			entry["event_loop"] = map[string]any{
				"events":          r.EventLoopTotal.Events,
				"wall_ns":         r.EventLoopTotal.WallNs,
				"attributed_frac": r.EventLoopTotal.AttributedFrac,
			}
		}
		sweeps[fmt.Sprintf("workers_%d", workers)] = entry
	}
	occ := map[string]any{
		"note": "per-worker busy/idle occupancy of the chaos sweep per requested worker " +
			"count; workers_effective = min(requested, GOMAXPROCS, cells), which is why " +
			"BenchmarkSimCoreChaosSweep's curve is flat on a single-CPU host — every " +
			"requested count collapses to one effective worker at ~full occupancy",
		"gomaxprocs": runtime.GOMAXPROCS(0),
		"cpus":       runtime.NumCPU(),
		"go":         runtime.Version(),
		"sweeps":     sweeps,
	}

	// Merge: rewrite only the SweepOccupancy key of the existing report.
	report := map[string]any{}
	if data, err := os.ReadFile("BENCH_simperf.json"); err == nil {
		if err := json.Unmarshal(data, &report); err != nil {
			t.Fatalf("BENCH_simperf.json: %v", err)
		}
	}
	report["SweepOccupancy"] = occ
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("BENCH_simperf.json", append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("merged SweepOccupancy into BENCH_simperf.json (%d worker counts)", len(sweeps))
}
