// Package dvemig is a full reproduction of "An Efficient Process Live
// Migration Mechanism for Load Balanced Distributed Virtual Environments"
// (Gerofi, Fujita, Ishikawa — IEEE CLUSTER 2010).
//
// The system migrates live processes that hold massive numbers of TCP and
// UDP connections between the nodes of a single-IP-address cluster, with
// incremental collective socket migration keeping the freeze time short
// enough for interactive game servers, broadcast-based capture preventing
// incoming packet loss, netfilter-style address translation keeping
// in-cluster connections alive, and a decentralized conductor middleware
// using the mechanism to balance load across the cluster.
//
// Because real OS-level process state cannot be captured from Go, the
// entire substrate is a deterministic discrete-event simulation of the
// paper's testbed: see DESIGN.md for the system inventory and the
// substitution argument, EXPERIMENTS.md for paper-vs-measured results,
// and the benchmarks in bench_test.go for the figure-by-figure harness.
//
// Layout:
//
//	internal/simtime    virtual clock, event scheduler, jiffies
//	internal/netsim     packets, links, broadcast router, switch
//	internal/netstack   TCP/UDP stack with netfilter hooks
//	internal/proc       nodes, processes, dirty-page address spaces
//	internal/ckpt       BLCR-equivalent checkpoint/restart + precopy
//	internal/capture    incoming-packet-loss prevention
//	internal/xlat       local address translation + transd
//	internal/sockmig    iterative/collective/incremental socket migration
//	internal/migration  the live-migration engine (migd)
//	internal/lb         the conductor load-balancing middleware
//	internal/dve        the 10×10-zone DVE workload (Fig 5)
//	internal/openarena  the OpenArena workload (Fig 4)
//	internal/eval       experiment harnesses
package dvemig
