// Package netsim models the physical network of the single-IP-address
// cluster from the paper: IPv4/TCP/UDP packets, network interfaces, links
// with bandwidth and latency, the broadcast router that replicates every
// incoming public packet to all DVE server nodes, and the in-cluster
// switch used for private communication.
package netsim

import (
	"encoding/binary"
	"fmt"
	"sync"

	"dvemig/internal/simtime"
)

// payloadPool recycles packet payload buffers. Payloads on the simulated
// wire are at most one MTU (1500 bytes); pooling them removes the
// dominant per-packet allocation from the TCP hot path. The pool is
// shared across concurrently running simulations (sync.Pool is
// goroutine-safe) and buffer identity never influences simulation
// results, so determinism is unaffected.
var payloadPool = sync.Pool{
	New: func() any { return new([payloadBufCap]byte) },
}

// payloadBufCap is the capacity of pooled payload buffers: one Ethernet
// MTU plus slack for jumbo checkpoint chunks staying under 1536.
const payloadBufCap = 1536

// GetPayload returns a length-n byte slice, recycled from the payload
// pool when n fits a pooled buffer. Callers hand the buffer back via
// PutPayload (usually through Packet.Release) when the payload's life
// ends. The pool holds *[payloadBufCap]byte array pointers rather than
// *[]byte slice headers: a pointer round-trips through the pool's `any`
// without boxing, so neither Get nor Put allocates.
func GetPayload(n int) []byte {
	if n > payloadBufCap {
		return make([]byte, n)
	}
	return payloadPool.Get().(*[payloadBufCap]byte)[:n]
}

// PutPayload recycles a payload buffer obtained from GetPayload.
// Oversized or foreign buffers are simply dropped.
func PutPayload(b []byte) {
	if cap(b) != payloadBufCap {
		return
	}
	payloadPool.Put((*[payloadBufCap]byte)(b[:payloadBufCap]))
}

// packetPool recycles Packet structs themselves: the fabric and the TCP
// send path mint one struct per segment plus one per hop clone, which
// dominates the event loop's allocation profile once payloads are pooled.
// Like payloadPool it is shared across concurrently running simulations;
// struct identity never influences results.
var packetPool = sync.Pool{New: func() any { return new(Packet) }}

// NewPacket returns a zeroed Packet drawn from the struct pool. Callers
// that construct literal &Packet{} values remain correct (Release accepts
// any packet), they just bypass the recycling.
func NewPacket() *Packet {
	p := packetPool.Get().(*Packet)
	*p = Packet{}
	return p
}

// Release returns the packet's payload buffer and struct to their pools.
// It must only be called at points where the packet provably has no
// other referents: drop paths in the fabric, after the receiving socket
// copied the bytes out, or after an acknowledged segment leaves the
// write queue. Releasing twice before the struct is reused is harmless
// (the second call sees the released flag); fields must not be read
// after Release — the struct may be serving another packet, possibly in
// a concurrently running simulation.
func (p *Packet) Release() {
	if p.released {
		return
	}
	p.released = true
	if p.Payload != nil {
		PutPayload(p.Payload)
		p.Payload = nil
	}
	packetPool.Put(p)
}

// Addr is an IPv4 address.
type Addr uint32

// MakeAddr builds an address from dotted-quad components.
func MakeAddr(a, b, c, d byte) Addr {
	return Addr(uint32(a)<<24 | uint32(b)<<16 | uint32(c)<<8 | uint32(d))
}

// String renders the address in dotted-quad notation.
func (a Addr) String() string {
	return fmt.Sprintf("%d.%d.%d.%d", byte(a>>24), byte(a>>16), byte(a>>8), byte(a))
}

// Protocol numbers, matching IANA assignments.
const (
	ProtoTCP = 6
	ProtoUDP = 17
)

// TCP header flag bits.
const (
	FlagFIN = 1 << iota
	FlagSYN
	FlagRST
	FlagPSH
	FlagACK
)

// Packet is a simulated IP datagram carrying either a TCP segment or a UDP
// datagram. Header fields are kept as plain struct members; Marshal
// produces a canonical wire encoding used for checksums, size accounting
// and serialization across the simulated network.
type Packet struct {
	// IP header.
	SrcIP Addr
	DstIP Addr
	Proto byte
	TTL   byte

	// Transport header (shared field layout for TCP and UDP).
	SrcPort uint16
	DstPort uint16

	// TCP-only fields.
	Seq      uint32
	Ack      uint32
	Flags    byte
	Window   uint16
	TSVal    uint32 // TCP timestamp option: sender jiffies
	TSEcr    uint32 // TCP timestamp option: echoed timestamp
	Checksum uint16

	Payload []byte

	// Dst is the destination cache entry the packet inherited from its
	// originating socket (see paper §V-D); nil for forwarded packets.
	Dst *DstEntry

	// Trace carries the causal trace context of the migration (or
	// failover checkpoint stream) this packet belongs to. It is
	// out-of-band simulator metadata: not part of the canonical wire
	// encoding, never checksummed, and nil for ordinary application
	// traffic. One immutable TraceRef is shared by every packet of a
	// stamped socket (a pointer, not two inline words, so the common
	// unstamped path pays one nil word per packet); Clone's struct copy
	// preserves it across hops.
	Trace *TraceRef

	// Class tags the traffic class the packet belongs to. Like Trace it
	// is out-of-band metadata — never marshalled, never checksummed —
	// used by NIC accounting to break migration traffic out of the
	// aggregate: the post-copy page-pull channel stamps ClassPagePull so
	// the degraded-window analysis can see exactly how much pull traffic
	// shared the wire with the application.
	Class byte

	// released guards the struct pool against double-Release (see
	// Release). Out-of-band; never marshalled.
	released bool
}

// Traffic classes (Packet.Class).
const (
	// ClassDefault is ordinary application or control traffic.
	ClassDefault byte = iota
	// ClassPagePull marks post-copy demand-pull and prefetch traffic on
	// the migration control connection after the destination resumed.
	ClassPagePull
	// ClassCheckpoint marks checkpoint-transfer traffic on the migd
	// control connection: precopy deltas, the freeze image and chunk
	// streams. Post-copy restamps the connection to ClassPagePull at
	// handover, so the two classes partition migration traffic by phase.
	ClassCheckpoint
)

// TraceRef is a causal trace coordinate — the trace ID and the deciding
// span's ID, mirroring obs.TraceContext without importing it (netsim
// must stay obs-free). Treat as immutable once attached to a socket.
type TraceRef struct {
	Trace uint64
	Span  uint64
}

// DstEntry models a Linux IP destination cache entry: the resolved next
// hop for a flow. During local address translation the entry inherited
// from the peer's socket still points at the pre-migration address, so the
// translation filter must replace it (paper §V-D).
type DstEntry struct {
	NextHop Addr
	Iface   string
}

// headerBytes is the canonical encoded header size (a simplified fixed
// layout: 20-byte IP header plus a 20-byte transport header with a 12-byte
// timestamp option area, mirroring a typical TCP header with options).
const headerBytes = 52

// Len returns the total wire length of the packet in bytes, which drives
// the link-level transfer-time model.
func (p *Packet) Len() int { return headerBytes + len(p.Payload) }

// Clone returns a copy with a private payload buffer (drawn from the
// payload pool). The broadcast router clones packets so each node can
// mangle its copy independently (netfilter hooks rewrite headers in
// place). The destination cache entry is shared: DstEntry values are
// immutable once published — translation filters replace the pointer,
// never the fields.
func (p *Packet) Clone() *Packet {
	q := packetPool.Get().(*Packet)
	*q = *p
	q.released = false
	if len(p.Payload) == 0 {
		q.Payload = nil
	} else {
		q.Payload = GetPayload(len(p.Payload))
		copy(q.Payload, p.Payload)
	}
	return q
}

// marshalHeader encodes the 52-byte canonical header into buf.
func (p *Packet) marshalHeader(buf []byte) {
	binary.BigEndian.PutUint32(buf[0:], uint32(p.SrcIP))
	binary.BigEndian.PutUint32(buf[4:], uint32(p.DstIP))
	buf[8] = p.Proto
	buf[9] = p.TTL
	binary.BigEndian.PutUint16(buf[10:], p.SrcPort)
	binary.BigEndian.PutUint16(buf[12:], p.DstPort)
	binary.BigEndian.PutUint32(buf[14:], p.Seq)
	binary.BigEndian.PutUint32(buf[18:], p.Ack)
	buf[22] = p.Flags
	binary.BigEndian.PutUint16(buf[23:], p.Window)
	binary.BigEndian.PutUint32(buf[25:], p.TSVal)
	binary.BigEndian.PutUint32(buf[29:], p.TSEcr)
	binary.BigEndian.PutUint16(buf[33:], p.Checksum)
	for i := 35; i < headerBytes; i++ {
		buf[i] = 0
	}
}

// Marshal encodes the packet into the canonical wire format.
func (p *Packet) Marshal() []byte {
	buf := make([]byte, headerBytes+len(p.Payload))
	p.marshalHeader(buf)
	copy(buf[headerBytes:], p.Payload)
	return buf
}

// Unmarshal decodes a packet from the canonical wire format.
func Unmarshal(buf []byte) (*Packet, error) {
	if len(buf) < headerBytes {
		return nil, fmt.Errorf("netsim: short packet: %d bytes", len(buf))
	}
	p := &Packet{
		SrcIP:    Addr(binary.BigEndian.Uint32(buf[0:])),
		DstIP:    Addr(binary.BigEndian.Uint32(buf[4:])),
		Proto:    buf[8],
		TTL:      buf[9],
		SrcPort:  binary.BigEndian.Uint16(buf[10:]),
		DstPort:  binary.BigEndian.Uint16(buf[12:]),
		Seq:      binary.BigEndian.Uint32(buf[14:]),
		Ack:      binary.BigEndian.Uint32(buf[18:]),
		Flags:    buf[22],
		Window:   binary.BigEndian.Uint16(buf[23:]),
		TSVal:    binary.BigEndian.Uint32(buf[25:]),
		TSEcr:    binary.BigEndian.Uint32(buf[29:]),
		Checksum: binary.BigEndian.Uint16(buf[33:]),
		Payload:  append([]byte(nil), buf[headerBytes:]...),
	}
	return p, nil
}

// ComputeChecksum returns the Internet checksum over the packet's
// pseudo-header and payload with the checksum field zeroed, following RFC
// 1071 folding. Translation filters must recompute it after rewriting
// addresses (paper §V-D). The sum is computed without materializing the
// wire encoding: the header goes through a stack buffer and the payload
// is summed in place (the header length is even, so the two partial sums
// compose exactly as in the single-buffer form).
func (p *Packet) ComputeChecksum() uint16 {
	var hdr [headerBytes]byte
	saved := p.Checksum
	p.Checksum = 0
	p.marshalHeader(hdr[:])
	p.Checksum = saved
	var sum uint32
	for i := 0; i < headerBytes; i += 2 {
		sum += uint32(binary.BigEndian.Uint16(hdr[i:]))
	}
	b := p.Payload
	n := len(b) &^ 1
	for i := 0; i < n; i += 2 {
		sum += uint32(binary.BigEndian.Uint16(b[i:]))
	}
	if len(b)%2 == 1 {
		sum += uint32(b[len(b)-1]) << 8
	}
	for sum>>16 != 0 {
		sum = (sum & 0xFFFF) + (sum >> 16)
	}
	return ^uint16(sum)
}

// FixChecksum recomputes and stores the checksum.
func (p *Packet) FixChecksum() { p.Checksum = p.ComputeChecksum() }

// ChecksumOK reports whether the stored checksum matches the content.
func (p *Packet) ChecksumOK() bool { return p.Checksum == p.ComputeChecksum() }

func internetChecksum(b []byte) uint16 {
	var sum uint32
	for i := 0; i+1 < len(b); i += 2 {
		sum += uint32(binary.BigEndian.Uint16(b[i:]))
	}
	if len(b)%2 == 1 {
		sum += uint32(b[len(b)-1]) << 8
	}
	for sum>>16 != 0 {
		sum = (sum & 0xFFFF) + (sum >> 16)
	}
	return ^uint16(sum)
}

// FlagString renders TCP flags, e.g. "SYN|ACK".
func FlagString(f byte) string {
	s := ""
	add := func(bit byte, name string) {
		if f&bit != 0 {
			if s != "" {
				s += "|"
			}
			s += name
		}
	}
	add(FlagSYN, "SYN")
	add(FlagFIN, "FIN")
	add(FlagRST, "RST")
	add(FlagPSH, "PSH")
	add(FlagACK, "ACK")
	if s == "" {
		s = "-"
	}
	return s
}

// String renders a one-line summary used by the tracer.
func (p *Packet) String() string {
	proto := "UDP"
	if p.Proto == ProtoTCP {
		proto = "TCP"
	}
	return fmt.Sprintf("%s %s:%d > %s:%d %s seq=%d ack=%d len=%d",
		proto, p.SrcIP, p.SrcPort, p.DstIP, p.DstPort, FlagString(p.Flags), p.Seq, p.Ack, len(p.Payload))
}

// FlowKey identifies one direction of a transport flow; it is the match
// key used by capture filters (remote IP, remote port, local port — paper
// §III-B uses exactly this triple, and we add the protocol).
type FlowKey struct {
	RemoteIP   Addr
	RemotePort uint16
	LocalPort  uint16
	Proto      byte
}

// MatchesIncoming reports whether an incoming packet belongs to the flow.
func (k FlowKey) MatchesIncoming(p *Packet) bool {
	return p.Proto == k.Proto && p.SrcIP == k.RemoteIP &&
		p.SrcPort == k.RemotePort && p.DstPort == k.LocalPort
}

// Sniffer receives a copy of every packet delivered on the interface it is
// attached to; it is the tcpdump of the simulation (used for Fig 4).
type Sniffer interface {
	Capture(at simtime.Time, dir string, p *Packet)
}
