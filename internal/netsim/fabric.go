package netsim

import (
	"fmt"

	"dvemig/internal/flight"
	"dvemig/internal/simtime"
)

// Handler consumes packets delivered to a NIC.
type Handler interface {
	DeliverPacket(p *Packet)
}

// HandlerFunc adapts a function to the Handler interface.
type HandlerFunc func(p *Packet)

// DeliverPacket calls the function.
func (f HandlerFunc) DeliverPacket(p *Packet) { f(p) }

// LinkParams describe a link's performance: Bandwidth in bits per second,
// one-way propagation Latency, and an optional random LossRate in [0,1).
// The paper's testbed is Gigabit Ethernet on both the public and the
// in-cluster network; loss is used by robustness experiments only.
type LinkParams struct {
	Bandwidth float64 // bits per second
	Latency   simtime.Duration
	LossRate  float64
}

// GigabitEthernet matches the evaluation testbed (§VI-A).
var GigabitEthernet = LinkParams{Bandwidth: 1e9, Latency: 50 * 1e3} // 50µs

// FaultAction is the fault plane's decision for one packet traversal.
// The zero value means "deliver normally".
type FaultAction struct {
	// Drop discards the packet (burst loss, dead link, partition).
	Drop bool
	// ExtraDelay is added to the propagation latency (jitter, or a large
	// hold that reorders the packet behind its successors).
	ExtraDelay simtime.Duration
	// Duplicate delivers a second copy of the packet, DupDelay after the
	// original's arrival time.
	Duplicate bool
	DupDelay  simtime.Duration
}

// FaultModel is a per-link fault program. It generalizes the old lone
// LossRate knob: the NIC consults it once per egress packet (dir "tx",
// where loss/duplication/reordering/jitter apply) and once per ingress
// packet (dir "rx", where link-down windows block delivery). netsim only
// defines the contract; deterministic implementations live in
// internal/faults so links stay dependency-free.
type FaultModel interface {
	Apply(now simtime.Time, dir string, p *Packet) FaultAction
}

// TransferTime returns serialization delay for n bytes on the link.
func (lp LinkParams) TransferTime(n int) simtime.Duration {
	if lp.Bandwidth <= 0 {
		return 0
	}
	bits := float64(n) * 8
	return simtime.Duration(bits / lp.Bandwidth * 1e9)
}

// NIC is a network interface: an address on a segment plus egress
// serialization state. Ingress is pushed to the Handler by the segment.
type NIC struct {
	Name    string
	Addr    Addr
	Params  LinkParams
	handler Handler
	seg     segment
	sched   *simtime.Scheduler

	busyUntil simtime.Time // egress serialization horizon
	sniffers  []Sniffer
	lossRand  *simtime.Rand
	fault     FaultModel

	// Counters for diagnostics and tests.
	TxPackets, RxPackets uint64
	TxBytes, RxBytes     uint64
	// LossDropped counts packets the link's random-loss model discarded.
	LossDropped uint64
	// Fault-plane counters: packets the installed FaultModel dropped,
	// duplicated, or delayed on this NIC.
	FaultDropped    uint64
	FaultDuplicated uint64
	FaultDelayed    uint64

	// Page-pull class accounting (Packet.Class == ClassPagePull): the
	// post-copy demand-pull/prefetch bytes that crossed this NIC, so the
	// strategy race can attribute degraded-window wire pressure.
	PullTxBytes, PullRxBytes uint64

	// Checkpoint class accounting (Packet.Class == ClassCheckpoint):
	// precopy/freeze transfer bytes on the migd connection, so eval can
	// attribute migration wire pressure separately from the pull phase.
	CkptTxBytes, CkptRxBytes uint64

	// FR, when attached, records every packet verdict on this NIC into
	// the flight recorder (tx, rx, drops, duplicates). Nil by default.
	FR *flight.Recorder
}

// frPkt packs one endpoint of a packet into a flight-recorder payload:
// the address in the upper 32 bits, the port in the lower 16.
func frPkt(ip Addr, port uint16) int64 {
	return int64(uint64(ip)<<32 | uint64(port))
}

// frRecord records one packet verdict (no-op when fr is nil).
func frRecord(fr *flight.Recorder, at simtime.Time, verdict string, p *Packet) {
	fr.Record(int64(at), "pkt", verdict, frPkt(p.SrcIP, p.SrcPort), frPkt(p.DstIP, p.DstPort), int64(p.Seq))
}

// SetHandler installs the ingress consumer (the node's network stack).
func (n *NIC) SetHandler(h Handler) { n.handler = h }

// AttachSniffer adds a tcpdump-style tap observing both directions.
func (n *NIC) AttachSniffer(s Sniffer) { n.sniffers = append(n.sniffers, s) }

// SetFault installs (or, with nil, removes) the link's fault program.
func (n *NIC) SetFault(fm FaultModel) { n.fault = fm }

// Fault returns the installed fault program, nil if none.
func (n *NIC) Fault() FaultModel { return n.fault }

// Send transmits the packet on the NIC's segment. Transmission is
// serialized: back-to-back sends queue behind each other at line rate,
// which is what makes the iterative socket-migration strategy pay a
// per-message penalty while collective transfers stream at full bandwidth.
func (n *NIC) Send(p *Packet) {
	if n.seg == nil {
		panic(fmt.Sprintf("netsim: NIC %s not attached to a segment", n.Name))
	}
	now := n.sched.Now()
	start := now
	if n.busyUntil > start {
		start = n.busyUntil
	}
	done := start + n.Params.TransferTime(p.Len())
	n.busyUntil = done
	n.TxPackets++
	n.TxBytes += uint64(p.Len())
	switch p.Class {
	case ClassPagePull:
		n.PullTxBytes += uint64(p.Len())
	case ClassCheckpoint:
		n.CkptTxBytes += uint64(p.Len())
	}
	if n.FR != nil {
		frRecord(n.FR, now, "tx", p)
	}
	for _, s := range n.sniffers {
		s.Capture(now, "tx", p)
	}
	if n.Params.LossRate > 0 {
		if n.lossRand == nil {
			seed := uint64(17)
			for _, c := range n.Name {
				seed = seed*131 + uint64(c)
			}
			n.lossRand = simtime.NewRand(seed)
		}
		if n.lossRand.Float64() < n.Params.LossRate {
			n.LossDropped++
			if n.FR != nil {
				frRecord(n.FR, now, "drop-loss", p)
			}
			p.Release() // swallowed by the wire
			return
		}
	}
	extra := simtime.Duration(0)
	if n.fault != nil {
		act := n.fault.Apply(now, "tx", p)
		if act.Drop {
			n.FaultDropped++
			if n.FR != nil {
				frRecord(n.FR, now, "drop-fault", p)
			}
			p.Release()
			return
		}
		if act.ExtraDelay > 0 {
			n.FaultDelayed++
			extra = act.ExtraDelay
		}
		if act.Duplicate {
			n.FaultDuplicated++
			if n.FR != nil {
				frRecord(n.FR, now, "dup", p)
			}
			dup := p.Clone()
			n.sched.AtCall(done+n.Params.Latency+extra+act.DupDelay, "netsim.deliver-dup", routeCall, n, dup)
		}
	}
	arrive := done + n.Params.Latency + extra
	n.sched.AtCall(arrive, "netsim.deliver", routeCall, n, p)
}

// routeCall is the closure-free delivery trampoline: the NIC and packet
// ride in the pooled event's argument slots, so the per-packet schedule
// in Send allocates nothing.
func routeCall(a0, a1 any) {
	n := a0.(*NIC)
	p := a1.(*Packet)
	n.seg.route(n, p)
}

func (n *NIC) deliver(p *Packet) {
	if n.fault != nil {
		if act := n.fault.Apply(n.sched.Now(), "rx", p); act.Drop {
			n.FaultDropped++
			if n.FR != nil {
				frRecord(n.FR, n.sched.Now(), "drop-fault", p)
			}
			p.Release()
			return
		}
	}
	n.RxPackets++
	n.RxBytes += uint64(p.Len())
	switch p.Class {
	case ClassPagePull:
		n.PullRxBytes += uint64(p.Len())
	case ClassCheckpoint:
		n.CkptRxBytes += uint64(p.Len())
	}
	if n.FR != nil {
		frRecord(n.FR, n.sched.Now(), "rx", p)
	}
	for _, s := range n.sniffers {
		s.Capture(n.sched.Now(), "rx", p)
	}
	if n.handler != nil {
		n.handler.DeliverPacket(p)
	}
}

// segment is a physical medium packets traverse.
type segment interface {
	route(from *NIC, p *Packet)
}

// Switch is the in-cluster network: a learning switch that delivers each
// packet to the NIC owning the destination address.
type Switch struct {
	sched *simtime.Scheduler
	ports map[Addr]*NIC
	// Dropped counts packets to unknown addresses (e.g. sent to a node
	// that left the cluster), visible to fault-tolerance tests.
	Dropped uint64
}

// NewSwitch creates an empty in-cluster switch.
func NewSwitch(s *simtime.Scheduler) *Switch {
	return &Switch{sched: s, ports: make(map[Addr]*NIC)}
}

// Attach creates a NIC with the given address and connects it.
func (sw *Switch) Attach(name string, addr Addr, params LinkParams) *NIC {
	if _, dup := sw.ports[addr]; dup {
		panic(fmt.Sprintf("netsim: duplicate switch address %s", addr))
	}
	n := &NIC{Name: name, Addr: addr, Params: params, seg: sw, sched: sw.sched}
	sw.ports[addr] = n
	return n
}

// Detach removes the NIC from the switch (node leaves the cluster).
func (sw *Switch) Detach(n *NIC) { delete(sw.ports, n.Addr) }

func (sw *Switch) route(from *NIC, p *Packet) {
	dst, ok := sw.ports[p.DstIP]
	if !ok {
		sw.Dropped++
		p.Release()
		return
	}
	dst.deliver(p)
}

// BroadcastRouter is the single-IP-address router (§II-A): every packet
// arriving from the public side whose destination is the cluster address
// is *broadcast* to all server-node public NICs; each node's stack then
// decides (by port ownership) whether to process or silently drop it.
// Packets from server nodes to external addresses are routed out to the
// matching client NIC. The broadcast property is what lets sockets migrate
// inside the cluster with no router reconfiguration, and what the capture
// module exploits to prevent incoming packet loss.
type BroadcastRouter struct {
	sched      *simtime.Scheduler
	ClusterIP  Addr
	servers    []*NIC
	external   map[Addr]*NIC
	Broadcasts uint64
	Dropped    uint64
}

// NewBroadcastRouter creates a router fronting the given cluster IP.
func NewBroadcastRouter(s *simtime.Scheduler, clusterIP Addr) *BroadcastRouter {
	return &BroadcastRouter{sched: s, ClusterIP: clusterIP, external: make(map[Addr]*NIC)}
}

// AttachServer connects a server node's public interface. All server
// public NICs share the cluster IP, so the NIC is identified by name only.
func (r *BroadcastRouter) AttachServer(name string, params LinkParams) *NIC {
	n := &NIC{Name: name, Addr: r.ClusterIP, Params: params, seg: r, sched: r.sched}
	r.servers = append(r.servers, n)
	return n
}

// DetachServer disconnects a server NIC (node leaves).
func (r *BroadcastRouter) DetachServer(n *NIC) {
	for i, s := range r.servers {
		if s == n {
			r.servers = append(r.servers[:i], r.servers[i+1:]...)
			return
		}
	}
}

// AttachExternal connects a client machine on the WAN side.
func (r *BroadcastRouter) AttachExternal(name string, addr Addr, params LinkParams) *NIC {
	if addr == r.ClusterIP {
		panic("netsim: external host cannot use the cluster IP")
	}
	if _, dup := r.external[addr]; dup {
		panic(fmt.Sprintf("netsim: duplicate external address %s", addr))
	}
	n := &NIC{Name: name, Addr: addr, Params: params, seg: r, sched: r.sched}
	r.external[addr] = n
	return n
}

func (r *BroadcastRouter) route(from *NIC, p *Packet) {
	if p.DstIP == r.ClusterIP {
		// Broadcast to every server node; each gets its own clone so
		// netfilter hooks can mangle independently.
		r.Broadcasts++
		for _, srv := range r.servers {
			if srv == from {
				continue
			}
			srv.deliver(p.Clone())
		}
		p.Release() // the original dies after the fan-out
		return
	}
	if dst, ok := r.external[p.DstIP]; ok {
		dst.deliver(p)
		return
	}
	r.Dropped++
	p.Release()
}

// ServerCount reports how many server NICs are attached (used by tests
// and by the discovery protocol's expectations).
func (r *BroadcastRouter) ServerCount() int { return len(r.servers) }
