package netsim

import (
	"testing"
	"time"

	"dvemig/internal/simtime"
)

func TestNATRouterDispatchesByPort(t *testing.T) {
	s := simtime.NewScheduler()
	r := NewNATRouter(s, MakeAddr(203, 0, 113, 10), 5*time.Millisecond)
	var hits1, hits2 int
	n1 := r.AttachServer("n1", GigabitEthernet)
	n1.SetHandler(HandlerFunc(func(p *Packet) { hits1++ }))
	n2 := r.AttachServer("n2", GigabitEthernet)
	n2.SetHandler(HandlerFunc(func(p *Packet) { hits2++ }))
	cli := r.AttachExternal("cli", MakeAddr(198, 51, 100, 1), GigabitEthernet)
	r.MapPort(ProtoUDP, 5000, n1)
	r.MapPort(ProtoUDP, 6000, n2)

	cli.Send(&Packet{SrcIP: cli.Addr, DstIP: r.ClusterIP, Proto: ProtoUDP, DstPort: 5000})
	cli.Send(&Packet{SrcIP: cli.Addr, DstIP: r.ClusterIP, Proto: ProtoUDP, DstPort: 6000})
	cli.Send(&Packet{SrcIP: cli.Addr, DstIP: r.ClusterIP, Proto: ProtoUDP, DstPort: 7000})
	s.Run()
	if hits1 != 1 || hits2 != 1 {
		t.Fatalf("dispatch wrong: %d/%d", hits1, hits2)
	}
	if r.DroppedUnmapped != 1 {
		t.Fatalf("unmapped drops = %d", r.DroppedUnmapped)
	}
}

func TestNATRouterUpdateDelayWindow(t *testing.T) {
	s := simtime.NewScheduler()
	r := NewNATRouter(s, MakeAddr(203, 0, 113, 10), 10*time.Millisecond)
	var hits1, hits2 int
	n1 := r.AttachServer("n1", GigabitEthernet)
	n1.SetHandler(HandlerFunc(func(p *Packet) { hits1++ }))
	n2 := r.AttachServer("n2", GigabitEthernet)
	n2.SetHandler(HandlerFunc(func(p *Packet) { hits2++ }))
	cli := r.AttachExternal("cli", MakeAddr(198, 51, 100, 1), GigabitEthernet)
	r.MapPort(ProtoUDP, 5000, n1)

	updated := false
	r.UpdateMapping(ProtoUDP, 5000, n2, func() { updated = true })
	// During the delay packets still land on n1.
	s.RunFor(5 * time.Millisecond)
	cli.Send(&Packet{SrcIP: cli.Addr, DstIP: r.ClusterIP, Proto: ProtoUDP, DstPort: 5000})
	s.RunFor(2 * time.Millisecond)
	if hits1 != 1 || hits2 != 0 || updated {
		t.Fatalf("update applied early: %d/%d/%v", hits1, hits2, updated)
	}
	// After the delay they flow to n2.
	s.RunFor(10 * time.Millisecond)
	cli.Send(&Packet{SrcIP: cli.Addr, DstIP: r.ClusterIP, Proto: ProtoUDP, DstPort: 5000})
	s.Run()
	if !updated || hits2 != 1 {
		t.Fatalf("update not applied: %d/%d/%v", hits1, hits2, updated)
	}
}

func TestNATRouterServerToClient(t *testing.T) {
	s := simtime.NewScheduler()
	r := NewNATRouter(s, MakeAddr(203, 0, 113, 10), 0)
	srv := r.AttachServer("n1", GigabitEthernet)
	got := 0
	cli := r.AttachExternal("cli", MakeAddr(198, 51, 100, 1), GigabitEthernet)
	cli.SetHandler(HandlerFunc(func(p *Packet) { got++ }))
	srv.Send(&Packet{SrcIP: r.ClusterIP, DstIP: cli.Addr})
	srv.Send(&Packet{SrcIP: r.ClusterIP, DstIP: MakeAddr(9, 9, 9, 9)})
	s.Run()
	if got != 1 || r.Dropped != 1 {
		t.Fatalf("outbound path wrong: got=%d dropped=%d", got, r.Dropped)
	}
}
