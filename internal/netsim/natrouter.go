package netsim

import (
	"fmt"

	"dvemig/internal/simtime"
)

// NATRouter is the baseline the paper contrasts with (§II-A, §VII-A):
// a network-address-translation single-IP cluster à la LVS [11] and
// NEC's TCP-Migration [8], where the router holds a dispatch table
// mapping each service port to exactly one server node. Migrating a
// connection requires updating the router's mapping, and "each time a
// connection is migrated inside the cluster the router's IP to MAC
// address mapping needs to be updated", causing incoming packet loss
// during the update window — the problem the broadcast configuration
// eliminates.
type NATRouter struct {
	sched     *simtime.Scheduler
	ClusterIP Addr

	servers  []*NIC
	external map[Addr]*NIC
	table    map[dispatchKey]*NIC

	// UpdateDelay models the router reconfiguration latency (control
	// plane round trip + table commit).
	UpdateDelay simtime.Duration

	// DroppedUnmapped counts packets to ports with no mapping (including
	// packets that raced an in-flight update).
	DroppedUnmapped uint64
	Dropped         uint64
}

type dispatchKey struct {
	proto byte
	port  uint16
}

// NewNATRouter creates a NAT dispatcher for the cluster IP.
func NewNATRouter(s *simtime.Scheduler, clusterIP Addr, updateDelay simtime.Duration) *NATRouter {
	return &NATRouter{
		sched: s, ClusterIP: clusterIP,
		external:    make(map[Addr]*NIC),
		table:       make(map[dispatchKey]*NIC),
		UpdateDelay: updateDelay,
	}
}

// AttachServer connects a server node's public interface.
func (r *NATRouter) AttachServer(name string, params LinkParams) *NIC {
	n := &NIC{Name: name, Addr: r.ClusterIP, Params: params, seg: r, sched: r.sched}
	r.servers = append(r.servers, n)
	return n
}

// AttachExternal connects a client machine.
func (r *NATRouter) AttachExternal(name string, addr Addr, params LinkParams) *NIC {
	if _, dup := r.external[addr]; dup {
		panic(fmt.Sprintf("netsim: duplicate external address %s", addr))
	}
	n := &NIC{Name: name, Addr: addr, Params: params, seg: r, sched: r.sched}
	r.external[addr] = n
	return n
}

// MapPort installs a dispatch entry immediately (initial deployment).
func (r *NATRouter) MapPort(proto byte, port uint16, to *NIC) {
	r.table[dispatchKey{proto, port}] = to
}

// UpdateMapping re-points a port to another server after the router's
// reconfiguration delay; done (optional) fires when the new mapping is
// live. Until then packets keep flowing to the old owner.
func (r *NATRouter) UpdateMapping(proto byte, port uint16, to *NIC, done func()) {
	r.sched.After(r.UpdateDelay, "nat.update", func() {
		r.table[dispatchKey{proto, port}] = to
		if done != nil {
			done()
		}
	})
}

func (r *NATRouter) route(from *NIC, p *Packet) {
	if p.DstIP == r.ClusterIP {
		dst, ok := r.table[dispatchKey{p.Proto, p.DstPort}]
		if !ok {
			r.DroppedUnmapped++
			return
		}
		dst.deliver(p.Clone())
		return
	}
	if dst, ok := r.external[p.DstIP]; ok {
		dst.deliver(p)
		return
	}
	r.Dropped++
}
