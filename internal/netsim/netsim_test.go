package netsim

import (
	"reflect"
	"testing"
	"testing/quick"
	"time"

	"dvemig/internal/simtime"
)

func TestAddrString(t *testing.T) {
	a := MakeAddr(192, 168, 0, 1)
	if a.String() != "192.168.0.1" {
		t.Fatalf("got %s", a)
	}
	if MakeAddr(10, 0, 0, 255).String() != "10.0.0.255" {
		t.Fatal("dotted quad wrong")
	}
}

func TestPacketMarshalRoundTrip(t *testing.T) {
	f := func(src, dst uint32, sp, dp uint16, seq, ack, tsv, tse uint32, flags, proto byte, payload []byte) bool {
		if len(payload) == 0 {
			payload = nil // wire format cannot distinguish nil from empty
		}
		p := &Packet{
			SrcIP: Addr(src), DstIP: Addr(dst), Proto: proto, TTL: 64,
			SrcPort: sp, DstPort: dp, Seq: seq, Ack: ack, Flags: flags,
			Window: 65535, TSVal: tsv, TSEcr: tse, Payload: payload,
		}
		p.FixChecksum()
		q, err := Unmarshal(p.Marshal())
		if err != nil {
			return false
		}
		p.Dst = nil
		q.Dst = nil
		return reflect.DeepEqual(p, q)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestUnmarshalShortPacket(t *testing.T) {
	if _, err := Unmarshal(make([]byte, 10)); err == nil {
		t.Fatal("short packet accepted")
	}
}

func TestChecksumDetectsMutation(t *testing.T) {
	p := &Packet{SrcIP: 1, DstIP: 2, Proto: ProtoTCP, SrcPort: 80, DstPort: 81, Payload: []byte("hello")}
	p.FixChecksum()
	if !p.ChecksumOK() {
		t.Fatal("fresh checksum invalid")
	}
	p.DstIP = 3 // what a translation filter does before fixing the checksum
	if p.ChecksumOK() {
		t.Fatal("checksum did not detect rewritten destination")
	}
	p.FixChecksum()
	if !p.ChecksumOK() {
		t.Fatal("re-fixed checksum invalid")
	}
}

func TestCloneIsDeep(t *testing.T) {
	p := &Packet{Payload: []byte{1, 2, 3}, Dst: &DstEntry{NextHop: 9}}
	q := p.Clone()
	q.Payload[0] = 99
	if p.Payload[0] != 1 {
		t.Fatal("clone shares payload with original")
	}
	// DstEntry values are immutable once published: filters replace the
	// pointer, never the fields, so the clone shares the entry.
	q.Dst = &DstEntry{NextHop: 1}
	if p.Dst.NextHop != 9 {
		t.Fatal("replacing the clone's Dst pointer must not touch the original")
	}
}

// TestChecksumMatchesReference pins the split header/payload checksum to
// the original single-buffer RFC 1071 implementation over a spread of
// payload lengths (odd and even) and field patterns.
func TestChecksumMatchesReference(t *testing.T) {
	for _, n := range []int{0, 1, 2, 3, 15, 16, 1447, 1448} {
		payload := make([]byte, n)
		for i := range payload {
			payload[i] = byte(i*7 + n)
		}
		p := &Packet{
			SrcIP: MakeAddr(203, 0, 113, 9), DstIP: MakeAddr(10, 0, 0, 3),
			Proto: ProtoTCP, TTL: 63, SrcPort: 5123, DstPort: 80,
			Seq: 0xDEADBEEF, Ack: 0x01020304, Flags: FlagACK | FlagPSH,
			Window: 65535, TSVal: 123456, TSEcr: 654321,
			Payload: payload,
		}
		saved := p.Checksum
		p.Checksum = 0
		want := internetChecksum(p.Marshal())
		p.Checksum = saved
		if got := p.ComputeChecksum(); got != want {
			t.Fatalf("len=%d: ComputeChecksum=%#x, reference=%#x", n, got, want)
		}
	}
}

func TestFlowKeyMatch(t *testing.T) {
	k := FlowKey{RemoteIP: MakeAddr(10, 0, 0, 2), RemotePort: 5000, LocalPort: 80, Proto: ProtoTCP}
	in := &Packet{Proto: ProtoTCP, SrcIP: MakeAddr(10, 0, 0, 2), SrcPort: 5000, DstIP: MakeAddr(10, 0, 0, 1), DstPort: 80}
	if !k.MatchesIncoming(in) {
		t.Fatal("flow key should match")
	}
	other := *in
	other.SrcPort = 5001
	if k.MatchesIncoming(&other) {
		t.Fatal("flow key matched wrong port")
	}
	udp := *in
	udp.Proto = ProtoUDP
	if k.MatchesIncoming(&udp) {
		t.Fatal("flow key matched wrong proto")
	}
}

func TestTransferTime(t *testing.T) {
	lp := LinkParams{Bandwidth: 1e9}
	// 125 bytes = 1000 bits = 1µs at 1 Gb/s.
	if got := lp.TransferTime(125); got != time.Microsecond {
		t.Fatalf("TransferTime = %v, want 1µs", got)
	}
	if (LinkParams{}).TransferTime(1000) != 0 {
		t.Fatal("zero-bandwidth link should have zero transfer time")
	}
}

func TestSwitchDelivery(t *testing.T) {
	s := simtime.NewScheduler()
	sw := NewSwitch(s)
	a := sw.Attach("a", MakeAddr(192, 168, 0, 1), GigabitEthernet)
	b := sw.Attach("b", MakeAddr(192, 168, 0, 2), GigabitEthernet)
	var got *Packet
	b.SetHandler(HandlerFunc(func(p *Packet) { got = p }))
	a.Send(&Packet{SrcIP: a.Addr, DstIP: b.Addr, Proto: ProtoUDP, Payload: []byte("x")})
	s.Run()
	if got == nil || string(got.Payload) != "x" {
		t.Fatal("switch did not deliver")
	}
	if a.TxPackets != 1 || b.RxPackets != 1 {
		t.Fatal("counters wrong")
	}
}

func TestSwitchDropsUnknownDestination(t *testing.T) {
	s := simtime.NewScheduler()
	sw := NewSwitch(s)
	a := sw.Attach("a", MakeAddr(192, 168, 0, 1), GigabitEthernet)
	a.Send(&Packet{SrcIP: a.Addr, DstIP: MakeAddr(192, 168, 0, 99)})
	s.Run()
	if sw.Dropped != 1 {
		t.Fatalf("Dropped = %d, want 1", sw.Dropped)
	}
}

func TestSwitchDetach(t *testing.T) {
	s := simtime.NewScheduler()
	sw := NewSwitch(s)
	a := sw.Attach("a", MakeAddr(192, 168, 0, 1), GigabitEthernet)
	b := sw.Attach("b", MakeAddr(192, 168, 0, 2), GigabitEthernet)
	sw.Detach(b)
	a.Send(&Packet{SrcIP: a.Addr, DstIP: b.Addr})
	s.Run()
	if sw.Dropped != 1 {
		t.Fatal("packet to detached node not dropped")
	}
}

func TestBroadcastRouterReplicatesToAllServers(t *testing.T) {
	s := simtime.NewScheduler()
	cluster := MakeAddr(203, 0, 113, 10)
	r := NewBroadcastRouter(s, cluster)
	var hits [3]int
	var nics [3]*NIC
	for i := range nics {
		i := i
		nics[i] = r.AttachServer("srv", GigabitEthernet)
		nics[i].SetHandler(HandlerFunc(func(p *Packet) { hits[i]++ }))
	}
	cli := r.AttachExternal("cli", MakeAddr(198, 51, 100, 1), GigabitEthernet)
	cli.Send(&Packet{SrcIP: cli.Addr, DstIP: cluster, Proto: ProtoUDP, DstPort: 27960})
	s.Run()
	for i, h := range hits {
		if h != 1 {
			t.Fatalf("server %d received %d copies, want 1", i, h)
		}
	}
	if r.Broadcasts != 1 {
		t.Fatalf("Broadcasts = %d", r.Broadcasts)
	}
}

func TestBroadcastRouterClonesPerServer(t *testing.T) {
	s := simtime.NewScheduler()
	cluster := MakeAddr(203, 0, 113, 10)
	r := NewBroadcastRouter(s, cluster)
	var seen []*Packet
	for i := 0; i < 2; i++ {
		n := r.AttachServer("srv", GigabitEthernet)
		n.SetHandler(HandlerFunc(func(p *Packet) { seen = append(seen, p) }))
	}
	cli := r.AttachExternal("cli", MakeAddr(198, 51, 100, 1), GigabitEthernet)
	cli.Send(&Packet{SrcIP: cli.Addr, DstIP: cluster, Payload: []byte{7}})
	s.Run()
	if len(seen) != 2 {
		t.Fatalf("copies = %d", len(seen))
	}
	seen[0].Payload[0] = 42
	if seen[1].Payload[0] != 7 {
		t.Fatal("server copies alias the same payload")
	}
}

func TestBroadcastRouterServerToClient(t *testing.T) {
	s := simtime.NewScheduler()
	cluster := MakeAddr(203, 0, 113, 10)
	r := NewBroadcastRouter(s, cluster)
	srv := r.AttachServer("srv", GigabitEthernet)
	got := 0
	cli := r.AttachExternal("cli", MakeAddr(198, 51, 100, 1), GigabitEthernet)
	cli.SetHandler(HandlerFunc(func(p *Packet) { got++ }))
	srv.Send(&Packet{SrcIP: cluster, DstIP: cli.Addr})
	s.Run()
	if got != 1 {
		t.Fatalf("client received %d packets", got)
	}
	if r.Broadcasts != 0 {
		t.Fatal("outbound packet was broadcast")
	}
}

func TestBroadcastRouterDetachServer(t *testing.T) {
	s := simtime.NewScheduler()
	r := NewBroadcastRouter(s, MakeAddr(203, 0, 113, 10))
	a := r.AttachServer("a", GigabitEthernet)
	r.AttachServer("b", GigabitEthernet)
	if r.ServerCount() != 2 {
		t.Fatal("server count")
	}
	r.DetachServer(a)
	if r.ServerCount() != 1 {
		t.Fatal("detach failed")
	}
}

func TestEgressSerialization(t *testing.T) {
	// Two back-to-back sends must queue: second arrival = 2*transfer + latency.
	s := simtime.NewScheduler()
	sw := NewSwitch(s)
	lp := LinkParams{Bandwidth: 1e9, Latency: 100 * time.Microsecond}
	a := sw.Attach("a", MakeAddr(10, 0, 0, 1), lp)
	b := sw.Attach("b", MakeAddr(10, 0, 0, 2), lp)
	var arrivals []simtime.Time
	b.SetHandler(HandlerFunc(func(p *Packet) { arrivals = append(arrivals, s.Now()) }))
	payload := make([]byte, 125000-headerBytes) // 1ms at 1Gb/s
	a.Send(&Packet{SrcIP: a.Addr, DstIP: b.Addr, Payload: payload})
	a.Send(&Packet{SrcIP: a.Addr, DstIP: b.Addr, Payload: payload})
	s.Run()
	if len(arrivals) != 2 {
		t.Fatalf("arrivals = %d", len(arrivals))
	}
	want1 := time.Millisecond + 100*time.Microsecond
	want2 := 2*time.Millisecond + 100*time.Microsecond
	if arrivals[0] != want1 || arrivals[1] != want2 {
		t.Fatalf("arrivals = %v, want [%v %v]", arrivals, want1, want2)
	}
}

type recSniffer struct{ n int }

func (r *recSniffer) Capture(at simtime.Time, dir string, p *Packet) { r.n++ }

func TestSnifferSeesBothDirections(t *testing.T) {
	s := simtime.NewScheduler()
	sw := NewSwitch(s)
	a := sw.Attach("a", MakeAddr(10, 0, 0, 1), GigabitEthernet)
	b := sw.Attach("b", MakeAddr(10, 0, 0, 2), GigabitEthernet)
	b.SetHandler(HandlerFunc(func(p *Packet) {
		reply := &Packet{SrcIP: b.Addr, DstIP: a.Addr}
		b.Send(reply)
	}))
	tap := &recSniffer{}
	a.AttachSniffer(tap)
	a.Send(&Packet{SrcIP: a.Addr, DstIP: b.Addr})
	s.Run()
	if tap.n != 2 { // one tx, one rx
		t.Fatalf("sniffer saw %d packets, want 2", tap.n)
	}
}

func TestFlagString(t *testing.T) {
	if FlagString(FlagSYN|FlagACK) != "SYN|ACK" {
		t.Fatalf("got %q", FlagString(FlagSYN|FlagACK))
	}
	if FlagString(0) != "-" {
		t.Fatal("empty flags")
	}
}

func TestDuplicateAttachPanics(t *testing.T) {
	s := simtime.NewScheduler()
	sw := NewSwitch(s)
	sw.Attach("a", MakeAddr(10, 0, 0, 1), GigabitEthernet)
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate address did not panic")
		}
	}()
	sw.Attach("a2", MakeAddr(10, 0, 0, 1), GigabitEthernet)
}

func TestLinkLossModel(t *testing.T) {
	s := simtime.NewScheduler()
	sw := NewSwitch(s)
	lossy := LinkParams{Bandwidth: 1e9, Latency: 50 * 1e3, LossRate: 0.2}
	a := sw.Attach("a", MakeAddr(10, 0, 0, 1), lossy)
	b := sw.Attach("b", MakeAddr(10, 0, 0, 2), GigabitEthernet)
	got := 0
	b.SetHandler(HandlerFunc(func(p *Packet) { got++ }))
	const n = 2000
	for i := 0; i < n; i++ {
		a.Send(&Packet{SrcIP: a.Addr, DstIP: b.Addr})
	}
	s.Run()
	if a.LossDropped == 0 {
		t.Fatal("lossy link dropped nothing")
	}
	if got+int(a.LossDropped) != n {
		t.Fatalf("accounting: %d delivered + %d dropped != %d", got, a.LossDropped, n)
	}
	rate := float64(a.LossDropped) / n
	if rate < 0.15 || rate > 0.25 {
		t.Fatalf("loss rate %v far from configured 0.2", rate)
	}
	// Deterministic: a rerun with the same topology drops identically.
	s2 := simtime.NewScheduler()
	sw2 := NewSwitch(s2)
	a2 := sw2.Attach("a", MakeAddr(10, 0, 0, 1), lossy)
	sw2.Attach("b", MakeAddr(10, 0, 0, 2), GigabitEthernet)
	for i := 0; i < n; i++ {
		a2.Send(&Packet{SrcIP: a2.Addr, DstIP: MakeAddr(10, 0, 0, 2)})
	}
	s2.Run()
	if a2.LossDropped != a.LossDropped {
		t.Fatalf("loss model not deterministic: %d vs %d", a2.LossDropped, a.LossDropped)
	}
}
