package netsim

import (
	"bytes"
	"testing"
)

// FuzzPacketUnmarshal: arbitrary bytes must never panic the wire
// decoder, and any buffer it accepts must survive a marshal/unmarshal
// roundtrip bit-identically — the property the snapshot queues rely on.
func FuzzPacketUnmarshal(f *testing.F) {
	p := &Packet{
		SrcIP: MakeAddr(10, 0, 0, 1), DstIP: MakeAddr(10, 0, 0, 2),
		Proto: ProtoTCP, TTL: 64, SrcPort: 1234, DstPort: 80,
		Seq: 42, Ack: 7, Flags: FlagACK, Window: 65535,
		TSVal: 100, TSEcr: 99, Payload: []byte("hello"),
	}
	p.FixChecksum()
	f.Add(p.Marshal())
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xFF}, 34))
	f.Fuzz(func(t *testing.T, data []byte) {
		q, err := Unmarshal(data)
		if err != nil {
			return
		}
		again, err := Unmarshal(q.Marshal())
		if err != nil {
			t.Fatalf("re-unmarshal of marshaled packet failed: %v", err)
		}
		if !bytes.Equal(again.Marshal(), q.Marshal()) {
			t.Fatal("marshal/unmarshal not a fixpoint")
		}
	})
}
