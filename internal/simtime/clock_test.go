package simtime

import (
	"testing"
	"testing/quick"
	"time"
)

func TestSchedulerOrdersEventsByTime(t *testing.T) {
	s := NewScheduler()
	var got []int
	s.After(30*time.Millisecond, "c", func() { got = append(got, 3) })
	s.After(10*time.Millisecond, "a", func() { got = append(got, 1) })
	s.After(20*time.Millisecond, "b", func() { got = append(got, 2) })
	s.Run()
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("events fired out of order: %v", got)
	}
	if s.Now() != 30*time.Millisecond {
		t.Fatalf("clock = %v, want 30ms", s.Now())
	}
}

func TestSchedulerSameInstantIsFIFO(t *testing.T) {
	s := NewScheduler()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		s.After(5*time.Millisecond, "tie", func() { got = append(got, i) })
	}
	s.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("same-instant events not FIFO: %v", got)
		}
	}
}

func TestSchedulerCancel(t *testing.T) {
	s := NewScheduler()
	fired := false
	e := s.After(time.Millisecond, "x", func() { fired = true })
	s.Cancel(e)
	s.Run()
	if fired {
		t.Fatal("canceled event fired")
	}
	if !e.Canceled() {
		t.Fatal("event not marked canceled")
	}
}

func TestSchedulerRunUntilAdvancesClock(t *testing.T) {
	s := NewScheduler()
	n := 0
	s.After(10*time.Millisecond, "a", func() { n++ })
	s.After(50*time.Millisecond, "b", func() { n++ })
	s.RunUntil(20 * time.Millisecond)
	if n != 1 {
		t.Fatalf("ran %d events, want 1", n)
	}
	if s.Now() != 20*time.Millisecond {
		t.Fatalf("clock = %v, want 20ms", s.Now())
	}
	s.RunFor(40 * time.Millisecond)
	if n != 2 {
		t.Fatalf("ran %d events, want 2", n)
	}
}

func TestSchedulerPastSchedulingPanics(t *testing.T) {
	s := NewScheduler()
	s.After(10*time.Millisecond, "a", func() {})
	s.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling in the past did not panic")
		}
	}()
	s.At(5*time.Millisecond, "past", func() {})
}

func TestSchedulerNestedScheduling(t *testing.T) {
	s := NewScheduler()
	depth := 0
	var rec func()
	rec = func() {
		depth++
		if depth < 100 {
			s.After(time.Millisecond, "rec", rec)
		}
	}
	s.After(time.Millisecond, "rec", rec)
	s.Run()
	if depth != 100 {
		t.Fatalf("depth = %d, want 100", depth)
	}
	if s.Now() != 100*time.Millisecond {
		t.Fatalf("clock = %v, want 100ms", s.Now())
	}
}

func TestSchedulerNextEventTime(t *testing.T) {
	s := NewScheduler()
	if _, ok := s.NextEventTime(); ok {
		t.Fatal("empty scheduler reported a next event")
	}
	s.After(7*time.Millisecond, "a", func() {})
	when, ok := s.NextEventTime()
	if !ok || when != 7*time.Millisecond {
		t.Fatalf("next event = %v,%v; want 7ms,true", when, ok)
	}
}

func TestJiffies(t *testing.T) {
	if j := Jiffies(0, 100); j != 100 {
		t.Fatalf("Jiffies(0,100) = %d", j)
	}
	if j := Jiffies(25*time.Millisecond, 0); j != 2 {
		t.Fatalf("Jiffies(25ms,0) = %d, want 2", j)
	}
	// Different boot offsets observe different jiffies for the same instant,
	// the property that forces timestamp adjustment during socket migration.
	a := Jiffies(time.Second, 1000)
	b := Jiffies(time.Second, 5000)
	if b-a != 4000 {
		t.Fatalf("skew = %d, want 4000", b-a)
	}
}

func TestTicker(t *testing.T) {
	s := NewScheduler()
	n := 0
	tk := NewTicker(s, 10*time.Millisecond, "tick", func() { n++ })
	tk.Start()
	s.RunUntil(55 * time.Millisecond)
	if n != 5 {
		t.Fatalf("ticks = %d, want 5", n)
	}
	tk.Stop()
	s.RunUntil(200 * time.Millisecond)
	if n != 5 {
		t.Fatalf("ticker fired after Stop: %d", n)
	}
	tk.Start()
	s.RunUntil(230 * time.Millisecond)
	if n != 8 {
		t.Fatalf("restarted ticker ticks = %d, want 8", n)
	}
}

func TestTickerStopFromCallback(t *testing.T) {
	s := NewScheduler()
	n := 0
	var tk *Ticker
	tk = NewTicker(s, time.Millisecond, "tick", func() {
		n++
		if n == 3 {
			tk.Stop()
		}
	})
	tk.Start()
	s.Run()
	if n != 3 {
		t.Fatalf("ticks = %d, want 3", n)
	}
}

func TestRandDeterminism(t *testing.T) {
	a, b := NewRand(42), NewRand(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
	c := NewRand(43)
	same := true
	for i := 0; i < 10; i++ {
		if NewRand(42).Uint64() == c.Uint64() && i > 0 {
			continue
		}
		same = false
	}
	if same {
		t.Fatal("different seeds produced identical streams")
	}
}

func TestRandIntnRange(t *testing.T) {
	r := NewRand(7)
	if err := quick.Check(func(n uint16) bool {
		m := int(n%1000) + 1
		v := r.Intn(m)
		return v >= 0 && v < m
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRandFloat64Range(t *testing.T) {
	r := NewRand(9)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestRandPermIsPermutation(t *testing.T) {
	r := NewRand(11)
	if err := quick.Check(func(n uint8) bool {
		m := int(n % 64)
		p := r.Perm(m)
		if len(p) != m {
			return false
		}
		seen := make([]bool, m)
		for _, v := range p {
			if v < 0 || v >= m || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestExpDurationPositiveAndBounded(t *testing.T) {
	r := NewRand(13)
	mean := 10 * time.Millisecond
	for i := 0; i < 10000; i++ {
		d := r.ExpDuration(mean)
		if d < 0 || d > 100*mean {
			t.Fatalf("ExpDuration out of bounds: %v", d)
		}
	}
}

func TestZeroSeedRemapped(t *testing.T) {
	r := NewRand(0)
	if r.Uint64() == 0 && r.Uint64() == 0 {
		t.Fatal("zero-seeded PRNG stuck at zero")
	}
}

func TestSchedulerOrderingProperty(t *testing.T) {
	// For any set of delays, events run in nondecreasing time order and
	// same-time events preserve scheduling order; canceled events never run.
	f := func(delays []uint16, cancelMask []bool) bool {
		s := NewScheduler()
		type fired struct {
			at  Time
			seq int
		}
		var order []fired
		var events []*Event
		for i, d := range delays {
			i := i
			at := Time(d) * time.Millisecond
			events = append(events, s.At(at, "p", func() {
				order = append(order, fired{s.Now(), i})
			}))
		}
		canceled := map[int]bool{}
		for i, c := range cancelMask {
			if c && i < len(events) {
				s.Cancel(events[i])
				canceled[i] = true
			}
		}
		s.Run()
		want := 0
		for i := range delays {
			if !canceled[i] {
				want++
			}
		}
		if len(order) != want {
			return false
		}
		for k := 1; k < len(order); k++ {
			if order[k].at < order[k-1].at {
				return false
			}
			if order[k].at == order[k-1].at && order[k].seq < order[k-1].seq {
				return false // FIFO among ties broken
			}
		}
		for _, o := range order {
			if canceled[o.seq] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestTickerStartAligned pins the grid alignment StartAligned
// guarantees: no matter when the ticker is armed, ticks land on whole
// multiples of the period — the anchor that makes sampling instants
// independent of construction order.
func TestTickerStartAligned(t *testing.T) {
	s := NewScheduler()
	var fired []Time
	tk := NewTicker(s, 100*time.Millisecond, "aligned", func() { fired = append(fired, s.Now()) })
	s.RunUntil(150 * time.Millisecond) // arm off-grid
	tk.StartAligned()
	s.RunUntil(450 * time.Millisecond)
	tk.Stop()
	want := []Time{200 * time.Millisecond, 300 * time.Millisecond, 400 * time.Millisecond}
	if len(fired) != len(want) {
		t.Fatalf("ticks at %v, want %v", fired, want)
	}
	for i := range want {
		if fired[i] != want[i] {
			t.Fatalf("ticks at %v, want %v", fired, want)
		}
	}
	// Starting exactly on the grid still skips to the *next* multiple —
	// a tick at the current instant would sample a half-built window.
	fired = nil
	s.RunUntil(500 * time.Millisecond)
	tk.StartAligned()
	s.RunUntil(650 * time.Millisecond)
	tk.Stop()
	if len(fired) != 1 || fired[0] != 600*time.Millisecond {
		t.Fatalf("on-grid restart ticks at %v, want [600ms]", fired)
	}
}
