package simtime

import (
	"fmt"
	"testing"
	"time"
)

// The churn interpreter drives a Scheduler through an arbitrary
// interleaving of At / After / Cancel / double-Cancel / nested-schedule
// / cancel-from-callback / step operations decoded from a byte program,
// while maintaining a shadow model of the live event set. After every
// operation it checks the three invariants the eager-cancel overhaul
// must preserve:
//
//  1. exact Pending: Pending() equals the model's live-event count at
//     every step (canceled events leave the heap immediately);
//  2. canceled events never fire, even when their *Event struct has
//     been recycled through the free list for a new event;
//  3. events fire in nondecreasing time order, FIFO among ties.
//
// The same interpreter backs the deterministic property test and the
// fuzz target.

type churnHandle struct {
	ev       *Event
	id       int
	canceled bool
	fired    bool
}

type churnState struct {
	s       *Scheduler
	handles []*churnHandle
	pending int // model: scheduled, not yet fired or canceled
	lastAt  Time
	lastSeq int
	nextID  int
	fails   []string
}

func (cs *churnState) failf(format string, args ...any) {
	if len(cs.fails) < 10 {
		cs.fails = append(cs.fails, fmt.Sprintf(format, args...))
	}
}

func (cs *churnState) check(op string) {
	if got := cs.s.Pending(); got != cs.pending {
		cs.failf("after %s: Pending()=%d, model=%d", op, got, cs.pending)
	}
}

// schedule arms one event that records its firing; the callback runs the
// model bookkeeping so nested scheduling stays consistent.
func (cs *churnState) schedule(at Time, onFire func()) *churnHandle {
	h := &churnHandle{id: cs.nextID}
	cs.nextID++
	h.ev = cs.s.At(at, "churn", func() {
		if h.canceled {
			cs.failf("canceled event %d fired at %v", h.id, cs.s.Now())
		}
		if h.fired {
			cs.failf("event %d fired twice", h.id)
		}
		h.fired = true
		cs.pending--
		now := cs.s.Now()
		if now < cs.lastAt {
			cs.failf("time went backwards: %v after %v", now, cs.lastAt)
		}
		if now == cs.lastAt && h.id < cs.lastSeq {
			// FIFO among ties: ids are assigned in scheduling order and
			// same-instant events must fire in that order. (Cancellations
			// only remove events, which cannot reorder the survivors.)
			cs.failf("FIFO violated at %v: event %d after %d", now, h.id, cs.lastSeq)
		}
		cs.lastAt, cs.lastSeq = now, h.id
		if onFire != nil {
			onFire()
		}
	})
	cs.pending++
	cs.handles = append(cs.handles, h)
	return h
}

// cancel cancels a live handle. Handles that already fired or were
// canceled are left alone: per the ownership contract their *Event
// pointer is dead and may have been recycled for an unrelated event, so
// touching it would cancel someone else's timer — exactly the aliasing
// bug the contract (and the holders' nil-on-fire discipline) prevents.
func (cs *churnState) cancel(h *churnHandle) {
	if h.fired || h.canceled {
		return
	}
	cs.s.Cancel(h.ev)
	h.canceled = true
	cs.pending--
}

func (cs *churnState) pick(b byte) *churnHandle {
	if len(cs.handles) == 0 {
		return nil
	}
	return cs.handles[int(b)%len(cs.handles)]
}

// runChurnProgram interprets a byte program. Each step consumes an
// opcode byte and one operand byte.
func runChurnProgram(program []byte) []string {
	cs := &churnState{s: NewScheduler()}
	for i := 0; i+1 < len(program); i += 2 {
		op, arg := program[i], program[i+1]
		delay := Time(arg) * time.Millisecond
		switch op % 8 {
		case 0: // At(now+delay)
			cs.schedule(cs.s.Now()+delay, nil)
			cs.check("At")
		case 1: // After(delay)
			cs.schedule(cs.s.Now()+delay, nil)
			cs.check("After")
		case 2: // Cancel a handle (possibly already fired/canceled)
			if h := cs.pick(arg); h != nil {
				cs.cancel(h)
			}
			cs.check("Cancel")
		case 3: // double-Cancel: back-to-back cancel on the same pointer.
			// The second Cancel hits a dead (free-listed, not yet reused)
			// struct and must be a no-op. Only safe back-to-back — after
			// any At() the struct may belong to a new event.
			if h := cs.pick(arg); h != nil && !h.fired && !h.canceled {
				cs.s.Cancel(h.ev)
				cs.s.Cancel(h.ev)
				h.canceled = true
				cs.pending--
			}
			cs.check("double-Cancel")
		case 4: // nested schedule: callback arms another event
			cs.schedule(cs.s.Now()+delay, func() {
				cs.schedule(cs.s.Now()+delay+time.Millisecond, nil)
			})
			cs.check("nested-At")
		case 5: // cancel-from-callback: callback cancels a victim handle
			victim := cs.pick(arg)
			cs.schedule(cs.s.Now()+delay, func() {
				if victim != nil {
					cs.cancel(victim)
				}
			})
			cs.check("cancel-from-callback")
		case 6: // step: run everything up to the next event time
			if next, ok := cs.s.NextEventTime(); ok {
				cs.s.RunUntil(next)
			}
			cs.check("step")
		case 7: // RunFor(delay)
			cs.s.RunFor(delay)
			cs.check("RunFor")
		}
	}
	cs.s.Run()
	cs.check("final Run")
	if cs.pending != 0 {
		cs.failf("model still has %d pending after Run()", cs.pending)
	}
	for _, h := range cs.handles {
		if !h.fired && !h.canceled {
			cs.failf("event %d neither fired nor canceled after Run()", h.id)
		}
	}
	return cs.fails
}

// TestSchedulerChurnProperty drives the interpreter with deterministic
// pseudo-random programs: heavy arm/cancel churn exercises the eager
// heap removal and the free-list recycling (thousands of struct reuses
// per program) against the shadow model.
func TestSchedulerChurnProperty(t *testing.T) {
	for seed := uint64(1); seed <= 50; seed++ {
		r := NewRand(seed)
		program := make([]byte, 2000)
		for i := range program {
			program[i] = byte(r.Uint64())
		}
		if fails := runChurnProgram(program); len(fails) > 0 {
			t.Fatalf("seed %d: %v", seed, fails)
		}
	}
}

// TestSchedulerChurnReusesFreeList sanity-checks that the property test
// actually exercises struct recycling: after churn, newly armed events
// come from the free list rather than fresh allocations.
func TestSchedulerChurnReusesFreeList(t *testing.T) {
	s := NewScheduler()
	evs := make([]*Event, 100)
	for i := range evs {
		evs[i] = s.After(Time(i)*time.Millisecond, "x", func() {})
	}
	for _, e := range evs {
		s.Cancel(e)
	}
	if len(s.free) != len(evs) {
		t.Fatalf("free list has %d entries, want %d", len(s.free), len(evs))
	}
	reused := s.After(time.Millisecond, "y", func() {})
	if reused != evs[len(evs)-1] {
		t.Fatal("canceled event struct was not recycled")
	}
	if reused.Canceled() {
		t.Fatal("recycled event still marked canceled")
	}
	// The stale pointer to the same struct must be inert: canceling via
	// it would now hit a pending event it no longer owns — the state
	// machine makes that a real cancel of the new event, which is why
	// holders must nil their pointers. Verify the documented behaviour.
	s.Run()
	if s.Pending() != 0 {
		t.Fatalf("pending = %d after Run", s.Pending())
	}
}

// FuzzSchedulerChurn feeds arbitrary byte programs to the interpreter.
// Any panic (heap corruption, backwards clock) or invariant breach is a
// finding.
func FuzzSchedulerChurn(f *testing.F) {
	f.Add([]byte{0, 10, 1, 5, 2, 0, 6, 0, 7, 50})
	f.Add([]byte{4, 3, 5, 1, 3, 2, 6, 0, 0, 0, 7, 255})
	r := NewRand(7)
	seedProg := make([]byte, 64)
	for i := range seedProg {
		seedProg[i] = byte(r.Uint64())
	}
	f.Add(seedProg)
	f.Fuzz(func(t *testing.T, program []byte) {
		if len(program) > 4096 {
			program = program[:4096]
		}
		if fails := runChurnProgram(program); len(fails) > 0 {
			t.Fatalf("%v", fails)
		}
	})
}
