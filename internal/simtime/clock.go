// Package simtime provides the virtual time base of the simulated cluster:
// a discrete-event scheduler, a virtual clock, Linux-style jiffies with
// per-node skew, and a deterministic pseudo random number generator.
//
// Everything in this repository runs against simulated time. The event
// loop is single threaded, which makes every experiment bit-for-bit
// reproducible: benchmarks measure simulated milliseconds and simulated
// bytes, never wall-clock noise of the host machine.
package simtime

import (
	"container/heap"
	"fmt"
	"math"
	"time"

	"dvemig/internal/flight"
	"dvemig/internal/simprof"
)

// Duration is a span of virtual time. It reuses time.Duration so that the
// familiar constants (time.Millisecond etc.) can be used by callers.
type Duration = time.Duration

// Time is an absolute point in virtual time, measured as a Duration since
// the start of the simulation.
type Time = time.Duration

// JiffyPeriod is the length of one jiffy. Linux 2.6 with HZ=100 increments
// the jiffies counter every 10 milliseconds, which is the configuration the
// paper assumes for TCP timestamps.
const JiffyPeriod = 10 * time.Millisecond

// Event lifecycle states. An event is pending while it sits in the heap,
// firing while its callback runs, and dead once it has fired or been
// canceled. Dead events may be recycled by the scheduler's free list, so a
// retained *Event pointer must be dropped (niled) as soon as the holder
// learns the event fired or after the holder cancels it.
const (
	statePending uint8 = iota
	stateFiring
	stateDead
)

// Event is a scheduled callback.
//
// Ownership contract: once an event has fired or been canceled the pointer
// is dead and the struct may be reused for a future event. Holders that
// keep an *Event across callbacks (timers in sockets, leases, claims) must
// nil their reference when the callback runs and immediately after calling
// Cancel.
type Event struct {
	when     Time
	seq      uint64 // tie-breaker for deterministic ordering
	fn       func()
	fn2      func(a0, a1 any) // closure-free form (AtCall); fn==nil then
	arg0     any
	arg1     any
	canceled bool
	state    uint8
	index    int // heap index, -1 when not in the heap
	name     string
}

// Canceled reports whether the event has been canceled.
func (e *Event) Canceled() bool { return e.canceled }

// When returns the virtual time at which the event fires (or would have
// fired if canceled).
func (e *Event) When() Time { return e.when }

type eventQueue []*Event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].when != q[j].when {
		return q[i].when < q[j].when
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}
func (q *eventQueue) Push(x any) {
	e := x.(*Event)
	e.index = len(*q)
	*q = append(*q, e)
}
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*q = old[:n-1]
	return e
}

// maxFreeEvents bounds the scheduler's event free list so that a burst of
// timers does not pin memory forever.
const maxFreeEvents = 4096

// Scheduler is a discrete-event simulator: a priority queue of events
// ordered by virtual time, with FIFO ordering among events scheduled for
// the same instant. Canceling an event removes it from the heap eagerly
// (O(log n)) and recycles the struct through a free list, so heavy
// timer churn (arm/cancel per TCP ACK) neither grows the heap nor
// allocates per timer.
type Scheduler struct {
	now      Time
	seq      uint64
	queue    eventQueue
	nsteps   uint64
	ncancels uint64
	free     []*Event

	// FR, when attached, records every event fire into the flight
	// recorder: virtual time, event name, and sequence number. Nil (the
	// default) costs one pointer comparison per step.
	FR *flight.Recorder

	// Prof, when attached, samples the wall-clock cost of every event
	// dispatch into the self-profiling plane, bucketed by the event
	// name's subsystem. It only reads the host clock — it never touches
	// virtual time, so profiled and unprofiled runs are bit-identical.
	// Nil (the default) costs two pointer comparisons per step.
	Prof *simprof.LoopProf
}

// NewScheduler returns a scheduler whose clock starts at zero.
func NewScheduler() *Scheduler {
	return &Scheduler{}
}

// Now returns the current virtual time.
func (s *Scheduler) Now() Time { return s.now }

// Steps returns the number of events executed so far. Useful for asserting
// that simulations terminate.
func (s *Scheduler) Steps() uint64 { return s.nsteps }

// Cancels returns the number of pending events removed via Cancel so
// far (events already fired or already canceled do not count). The
// observability plane harvests it alongside Steps.
func (s *Scheduler) Cancels() uint64 { return s.ncancels }

// Pending returns the exact number of live events currently queued.
// Canceled events are removed from the heap eagerly, so after a
// simulation drains Pending()==0 iff no timer leaked.
func (s *Scheduler) Pending() int { return len(s.queue) }

// PendingNames returns the names of every queued event in an
// unspecified order. It exists for leak diagnostics: when a drained
// simulation reports Pending() > 0, the names identify the timers that
// were never fired or canceled.
func (s *Scheduler) PendingNames() []string {
	out := make([]string, len(s.queue))
	for i, e := range s.queue {
		out[i] = e.name
	}
	return out
}

// At schedules fn to run at absolute virtual time t. Scheduling in the past
// is a programming error and panics: the event loop cannot rewind.
func (s *Scheduler) At(t Time, name string, fn func()) *Event {
	if t < s.now {
		panic(fmt.Sprintf("simtime: scheduling %q at %v before now %v", name, t, s.now))
	}
	s.seq++
	var e *Event
	if n := len(s.free); n > 0 {
		e = s.free[n-1]
		s.free[n-1] = nil
		s.free = s.free[:n-1]
	} else {
		e = &Event{}
	}
	e.when, e.seq, e.fn, e.name = t, s.seq, fn, name
	e.canceled = false
	e.state = statePending
	heap.Push(&s.queue, e)
	return e
}

// After schedules fn to run d from now.
func (s *Scheduler) After(d Duration, name string, fn func()) *Event {
	if d < 0 {
		d = 0
	}
	return s.At(s.now+d, name, fn)
}

// AtCall schedules fn(a0, a1) at absolute virtual time t. Unlike At it
// takes a plain function plus its arguments, stored inline in the pooled
// Event, so hot paths (per-packet delivery, per-segment retransmission
// timers) schedule without allocating a closure. Pointer-shaped arguments
// convert to `any` without boxing, keeping the call alloc-free.
func (s *Scheduler) AtCall(t Time, name string, fn func(a0, a1 any), a0, a1 any) *Event {
	if t < s.now {
		panic(fmt.Sprintf("simtime: scheduling %q at %v before now %v", name, t, s.now))
	}
	s.seq++
	var e *Event
	if n := len(s.free); n > 0 {
		e = s.free[n-1]
		s.free[n-1] = nil
		s.free = s.free[:n-1]
	} else {
		e = &Event{}
	}
	e.when, e.seq, e.name = t, s.seq, name
	e.fn = nil
	e.fn2, e.arg0, e.arg1 = fn, a0, a1
	e.canceled = false
	e.state = statePending
	heap.Push(&s.queue, e)
	return e
}

// AfterCall schedules fn(a0, a1) to run d from now (see AtCall).
func (s *Scheduler) AfterCall(d Duration, name string, fn func(a0, a1 any), a0, a1 any) *Event {
	if d < 0 {
		d = 0
	}
	return s.AtCall(s.now+d, name, fn, a0, a1)
}

// Cancel removes the event from the queue immediately (O(log n)) and
// recycles it. Canceling an already-fired, already-canceled or nil event
// is a no-op; canceling the currently firing event only marks it canceled
// (the callback is already running and cannot be recalled).
func (s *Scheduler) Cancel(e *Event) {
	if e == nil || e.state != statePending {
		if e != nil && e.state == stateFiring {
			e.canceled = true
		}
		return
	}
	e.canceled = true
	s.ncancels++
	heap.Remove(&s.queue, e.index)
	s.release(e)
}

// release marks an event dead and parks it on the free list. The canceled
// flag and name are preserved so that a holder which kept the pointer can
// still observe Canceled() until the struct is reused by At.
func (s *Scheduler) release(e *Event) {
	e.state = stateDead
	e.fn = nil
	e.fn2, e.arg0, e.arg1 = nil, nil, nil
	e.index = -1
	if len(s.free) < maxFreeEvents {
		s.free = append(s.free, e)
	}
}

// step executes the earliest event. It returns false when the queue is empty.
func (s *Scheduler) step() bool {
	if len(s.queue) == 0 {
		return false
	}
	e := heap.Pop(&s.queue).(*Event)
	if e.when < s.now {
		panic("simtime: event queue went backwards")
	}
	s.now = e.when
	s.nsteps++
	if s.FR != nil {
		s.FR.Record(int64(s.now), "sched", e.name, int64(e.seq), 0, 0)
	}
	var t0 int64
	if s.Prof != nil {
		t0 = s.Prof.Begin()
	}
	e.state = stateFiring
	if e.fn != nil {
		fn := e.fn
		fn()
	} else {
		fn2, a0, a1 := e.fn2, e.arg0, e.arg1
		fn2(a0, a1)
	}
	if s.Prof != nil {
		s.Prof.End(t0, e.name, len(s.queue))
	}
	s.release(e)
	return true
}

// Run executes events until the queue drains.
func (s *Scheduler) Run() {
	for s.step() {
	}
}

// RunUntil executes events with time ≤ deadline, then advances the clock to
// the deadline. Events scheduled beyond the deadline remain queued.
func (s *Scheduler) RunUntil(deadline Time) {
	for {
		e := s.peek()
		if e == nil || e.when > deadline {
			break
		}
		s.step()
	}
	if s.now < deadline {
		s.now = deadline
	}
}

// RunFor is RunUntil(Now()+d).
func (s *Scheduler) RunFor(d Duration) { s.RunUntil(s.now + d) }

func (s *Scheduler) peek() *Event {
	if len(s.queue) == 0 {
		return nil
	}
	return s.queue[0]
}

// NextEventTime returns the virtual time of the next pending event and
// whether one exists.
func (s *Scheduler) NextEventTime() (Time, bool) {
	e := s.peek()
	if e == nil {
		return 0, false
	}
	return e.when, true
}

// Jiffies converts an absolute virtual time into a jiffies counter value
// given a per-node boot offset. The paper's TCP timestamp adjustment relies
// on different nodes having different jiffies values for the same instant.
func Jiffies(now Time, bootOffset uint32) uint32 {
	return bootOffset + uint32(now/JiffyPeriod)
}

// Ticker invokes fn every period until Stop is called. The first tick
// fires one period after Start.
type Ticker struct {
	s       *Scheduler
	period  Duration
	fn      func()
	ev      *Event
	stop    bool
	running bool
	name    string
}

// NewTicker creates a stopped ticker; call Start to begin.
func NewTicker(s *Scheduler, period Duration, name string, fn func()) *Ticker {
	if period <= 0 {
		panic("simtime: ticker period must be positive")
	}
	return &Ticker{s: s, period: period, fn: fn, name: name}
}

// Start arms the ticker. Starting a running ticker is a no-op.
func (t *Ticker) Start() {
	if t.running {
		return
	}
	t.stop = false
	t.running = true
	t.arm()
}

func (t *Ticker) arm() {
	t.ev = t.s.AfterCall(t.period, t.name, tickerCall, t, nil)
}

// StartAligned arms the ticker so every tick lands on a whole multiple
// of the period, regardless of when it is called: the first tick fires
// at the next multiple strictly after now, and re-arming by +period
// stays on the grid. Samplers use this so sample instants depend only
// on the period — never on construction order — which is what keeps
// time-series artifacts byte-identical across harness variations.
// Starting a running ticker is a no-op.
func (t *Ticker) StartAligned() {
	if t.running {
		return
	}
	t.stop = false
	t.running = true
	next := (t.s.Now()/t.period + 1) * t.period
	t.ev = t.s.AtCall(next, t.name, tickerCall, t, nil)
}

// tickerCall is the closure-free tick trampoline: a ticker re-arms once
// per period for the whole simulation, so the per-tick schedule must not
// allocate.
func tickerCall(a0, _ any) {
	t := a0.(*Ticker)
	t.ev = nil // event is dead the moment it fires
	if t.stop {
		t.running = false
		return
	}
	t.fn()
	if !t.stop {
		t.arm()
	} else {
		t.running = false
	}
}

// Stop disarms the ticker.
func (t *Ticker) Stop() {
	t.stop = true
	t.running = false
	if t.ev != nil {
		t.s.Cancel(t.ev)
		t.ev = nil
	}
}

// Rand is a small, fast, deterministic PRNG (xorshift64*), independent of
// math/rand so that simulation results never change across Go releases.
type Rand struct{ state uint64 }

// NewRand seeds a generator; seed 0 is remapped to a fixed constant.
func NewRand(seed uint64) *Rand {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	return &Rand{state: seed}
}

// Uint64 returns the next raw 64-bit value.
func (r *Rand) Uint64() uint64 {
	x := r.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.state = x
	return x * 0x2545F4914F6CDD1D
}

// Intn returns a uniform value in [0, n). It panics when n ≤ 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("simtime: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Float64 returns a uniform value in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / float64(1<<53)
}

// ExpDuration returns an exponentially distributed duration with the given
// mean, clamped to a sane maximum to keep event queues bounded.
func (r *Rand) ExpDuration(mean Duration) Duration {
	u := r.Float64()
	if u <= 0 {
		u = math.SmallestNonzeroFloat64
	}
	d := Duration(float64(mean) * -math.Log(u))
	if d > 100*mean {
		d = 100 * mean
	}
	return d
}

// Perm returns a deterministic random permutation of [0, n).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}
