package openarena

import (
	"testing"
	"time"

	"dvemig/internal/migration"
	"dvemig/internal/proc"
	"dvemig/internal/simtime"
)

func TestServerSnapshotCadence(t *testing.T) {
	sched := simtime.NewScheduler()
	c := proc.NewCluster(sched, 1)
	cfg := DefaultServerConfig()
	cfg.MemPages = 256 // keep the unit test light
	cfg.DirtyPerFrame = 16
	srv, err := StartServer(c.Nodes[0], cfg)
	if err != nil {
		t.Fatal(err)
	}
	host := c.NewExternalHost("players")
	var clients []*Client
	for i := 0; i < 4; i++ {
		cl, err := NewClient(host, c.ClusterIP, cfg.FramePeriod)
		if err != nil {
			t.Fatal(err)
		}
		clients = append(clients, cl)
	}
	sched.RunUntil(2 * time.Second)
	// 20 frames/s for 2s ≈ 40 frames; each client gets ~1 snapshot per
	// frame after registration.
	if srv.Frames < 39 || srv.Frames > 41 {
		t.Fatalf("frames = %d", srv.Frames)
	}
	for i, cl := range clients {
		if cl.Received < 35 {
			t.Fatalf("client %d received only %d snapshots", i, cl.Received)
		}
		if cl.LastFrame < srv.Frames-2 {
			t.Fatalf("client %d stale: last frame %d of %d", i, cl.LastFrame, srv.Frames)
		}
	}
	if srv.SnapshotsSent == 0 {
		t.Fatal("no snapshots sent")
	}
}

func TestServerRegistersClientsDynamically(t *testing.T) {
	sched := simtime.NewScheduler()
	c := proc.NewCluster(sched, 1)
	cfg := DefaultServerConfig()
	cfg.MemPages = 64
	cfg.DirtyPerFrame = 4
	srv, err := StartServer(c.Nodes[0], cfg)
	if err != nil {
		t.Fatal(err)
	}
	_ = srv
	host := c.NewExternalHost("players")
	cl1, _ := NewClient(host, c.ClusterIP, cfg.FramePeriod)
	sched.RunUntil(time.Second)
	mid := cl1.Received
	if mid == 0 {
		t.Fatal("first client got nothing")
	}
	cl2, _ := NewClient(host, c.ClusterIP, cfg.FramePeriod)
	sched.RunUntil(2 * time.Second)
	if cl2.Received == 0 {
		t.Fatal("late joiner got nothing")
	}
	if cl1.Received <= mid {
		t.Fatal("first client starved after join")
	}
}

func TestFig4MigrationDelay(t *testing.T) {
	cfg := DefaultFig4Config()
	res, err := RunFig4(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// The regular cadence is the 50 ms frame period.
	if res.BaselineGap < 45*time.Millisecond || res.BaselineGap > 55*time.Millisecond {
		t.Fatalf("baseline gap = %v, want ≈50ms", res.BaselineGap)
	}
	// §VI-B: ~20 ms process downtime...
	if res.Metrics.FreezeTime < 5*time.Millisecond || res.Metrics.FreezeTime > 60*time.Millisecond {
		t.Fatalf("freeze = %v, want ≈20ms", res.Metrics.FreezeTime)
	}
	// ...and ≈25 ms packet-level delay over the expected transmission.
	if res.ExtraDelay < 5*time.Millisecond || res.ExtraDelay > 80*time.Millisecond {
		t.Fatalf("extra delay = %v, want ≈25ms", res.ExtraDelay)
	}
	// The 24 clients see groups of 24 packets; the trace must hold a
	// plausible number of them.
	if len(res.Trace.Records) < 24*40 {
		t.Fatalf("trace too small: %d records", len(res.Trace.Records))
	}
	// Capture prevented snapshot loss: each client received one snapshot
	// per frame it was registered for, minus at most the frames skipped
	// while frozen (freeze < one frame → at most 1) and the join frame.
	perClient := float64(res.TotalReceived) / 24
	if perClient < float64(res.ExpectedPerClient)-3 {
		t.Fatalf("snapshot loss: %.1f received of %d frames", perClient, res.ExpectedPerClient)
	}
	// UDP migration carried the socket: one UDP socket moved.
	if res.Metrics.UDPMigrated != 1 {
		t.Fatalf("UDPMigrated = %d", res.Metrics.UDPMigrated)
	}
}

func TestFig4UsercmdsSurviveMigration(t *testing.T) {
	// Clients keep sending during the migration; the server's client
	// table (program state) must survive so it keeps addressing all 24.
	cfg := DefaultFig4Config()
	cfg.Duration = 5 * 1e9
	res, err := RunFig4(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// After migration the stream continues: records exist in the last
	// half second.
	tail := res.Trace.Window(cfg.Duration-500*1e6, cfg.Duration)
	if len(tail) < 24*8 {
		t.Fatalf("stream did not continue after migration: %d tail records", len(tail))
	}
	mig := migration.DefaultConfig()
	_ = mig
}
