// Package openarena models the OpenArena (Quake III engine) multiplayer
// server of §VI-B: a UDP game server updating its clients 20 times per
// second, live-migrated mid-game with 24 connected players. The Fig 4
// experiment captures server packets at the clients (tcpdump-style) and
// measures the delay the migration imposes on the snapshot cadence.
package openarena

import (
	"encoding/binary"

	"dvemig/internal/netsim"
	"dvemig/internal/netstack"
	"dvemig/internal/proc"
	"dvemig/internal/simtime"
)

// GamePort is the Quake III / OpenArena server port.
const GamePort = 27960

// Protocol message sizes: clients send small usercmd packets; the server
// answers with game-state snapshots.
const (
	UsercmdBytes  = 48
	SnapshotBytes = 256
)

// ServerConfig shapes the game server.
type ServerConfig struct {
	// FramePeriod is the server frame time: 20 updates per second is the
	// engine default (§VI-B).
	FramePeriod simtime.Duration
	// MemPages is the server's address space; DirtyPerFrame pages are
	// written each frame (entity state churn), which determines how much
	// memory the final freeze round must move.
	MemPages      uint64
	DirtyPerFrame uint64
	CPUDemand     float64
}

// DefaultServerConfig approximates a busy Quake III server: a 32 MiB
// working set with ~1.6 MB touched per frame.
func DefaultServerConfig() ServerConfig {
	return ServerConfig{
		FramePeriod:   50 * 1e6,
		MemPages:      8192,
		DirtyPerFrame: 400,
		CPUDemand:     0.6,
	}
}

type clientKey struct {
	ip   uint32
	port uint16
}

// fillEntityPage fills buf with deterministic, dense (never-zero)
// pseudo-entity bytes, seeded per page so pages differ. Density is the
// point: the checkpoint codec's zero/sparse elision must see these
// pages as the incompressible entity state a real server carries.
func fillEntityPage(buf []byte, seed uint64) {
	x := seed*0x9e3779b97f4a7c15 + 0xda942042e4dd58b5
	for j := range buf {
		x ^= x << 13
		x ^= x >> 7
		buf[j] = byte(x%255) + 1
	}
}

// Server is the game server handle.
type Server struct {
	Proc *proc.Process
	// Frames counts server frames; SnapshotsSent counts outgoing updates.
	Frames        uint64
	SnapshotsSent uint64
}

// StartServer spawns the game server process on node n, bound to the
// cluster IP (the node's default-route source address). The client table
// lives in the server's program state and travels with the process.
func StartServer(n *proc.Node, cfg ServerConfig) (*Server, error) {
	s := &Server{}
	p := n.Spawn("oa_ded", 2)
	p.CPUDemand = cfg.CPUDemand
	v := p.AS.Mmap(cfg.MemPages*proc.PageSize, "rw-")
	// A real game server's working set is dense — entity arrays, BSP
	// data, textures — not zeros, so seed every page with incompressible
	// content. This matters for migration fidelity: the checkpoint
	// pipeline elides zero and near-zero pages, and a sparse seeding
	// would let it shrink the transfer (and the measured downtime) far
	// below what the paper's workload produced.
	pageBuf := make([]byte, proc.PageSize)
	for i := uint64(0); i < cfg.MemPages; i++ {
		fillEntityPage(pageBuf, i)
		if err := p.AS.Write(v.Start+i*proc.PageSize, pageBuf); err != nil {
			return nil, err
		}
	}
	p.FDs.Install(&proc.RegularFile{Path: "/usr/share/openarena/baseoa/pak0.pk3"})

	us := netstack.NewUDPSocket(n.Stack)
	cluster, err := n.Stack.SourceAddrFor(0) // the default-route source: the cluster IP
	if err != nil {
		return nil, err
	}
	if err := us.Bind(cluster, GamePort); err != nil {
		return nil, err
	}
	p.FDs.Install(&proc.UDPFile{Sock: us})

	clients := make(map[clientKey]uint32) // key -> last usercmd sequence
	order := make([]clientKey, 0, 32)     // deterministic send order
	frame := uint64(0)
	heap := v.Start
	p.Tick = func(self *proc.Process) {
		frame++
		s.Frames++
		_, udp := self.Sockets()
		if len(udp) == 0 {
			return
		}
		sock := udp[0]
		// Drain usercmds; register clients.
		for {
			dg, ok := sock.Recv()
			if !ok {
				break
			}
			if len(dg.Payload) >= 4 {
				k := clientKey{uint32(dg.SrcIP), dg.SrcPort}
				if _, known := clients[k]; !known {
					order = append(order, k)
				}
				clients[k] = binary.BigEndian.Uint32(dg.Payload)
			}
		}
		// Entity state churn rewrites part of the working set with fresh
		// (dense) entity data: the frame stamp makes the content new,
		// the rest of the scratch page stays dense so the checkpoint
		// codec cannot elide it.
		binary.BigEndian.PutUint64(pageBuf, frame|1<<56)
		for i := uint64(0); i < cfg.DirtyPerFrame; i++ {
			pg := (frame*cfg.DirtyPerFrame + i) % cfg.MemPages
			_ = self.AS.Write(heap+pg*proc.PageSize, pageBuf)
		}
		// Send one snapshot per client per frame.
		snap := make([]byte, SnapshotBytes)
		binary.BigEndian.PutUint64(snap, frame)
		for _, k := range order {
			if err := sock.SendTo(netsim.Addr(k.ip), k.port, snap); err == nil {
				s.SnapshotsSent++
			}
		}
	}
	s.Proc = p
	n.StartLoop(p, cfg.FramePeriod)
	return s, nil
}

// Client is one simulated player: it sends usercmds at the server frame
// rate and counts the snapshots it receives.
type Client struct {
	Sock *netstack.UDPSocket
	// Received counts snapshots; LastFrame is the newest frame seen;
	// Seq is the usercmd sequence counter.
	Received  uint64
	LastFrame uint64
	Seq       uint32

	ticker *simtime.Ticker
}

// NewClient creates a player on the external stack and starts its
// command loop toward the cluster address.
func NewClient(st *netstack.Stack, cluster netsim.Addr, period simtime.Duration) (*Client, error) {
	c := &Client{}
	src, err := st.SourceAddrFor(cluster)
	if err != nil {
		return nil, err
	}
	c.Sock = netstack.NewUDPSocket(st)
	c.Sock.BindEphemeral(src)
	c.Sock.OnReadable = func() {
		for {
			dg, ok := c.Sock.Recv()
			if !ok {
				return
			}
			c.Received++
			if len(dg.Payload) >= 8 {
				if f := binary.BigEndian.Uint64(dg.Payload); f > c.LastFrame {
					c.LastFrame = f
				}
			}
		}
	}
	c.ticker = simtime.NewTicker(st.Scheduler(), period, "oa.client", func() {
		c.Seq++
		cmd := make([]byte, UsercmdBytes)
		binary.BigEndian.PutUint32(cmd, c.Seq)
		_ = c.Sock.SendTo(cluster, GamePort, cmd)
	})
	c.ticker.Start()
	return c, nil
}

// Stop halts the client's command loop.
func (c *Client) Stop() { c.ticker.Stop() }

// Loss returns how many snapshots the client missed, judged by frame
// numbering (frames broadcast while the client was connected).
func (c *Client) Loss(framesSinceJoin uint64) int {
	if uint64(c.Received) >= framesSinceJoin {
		return 0
	}
	return int(framesSinceJoin - c.Received)
}
