package openarena

import (
	"fmt"

	"dvemig/internal/migration"
	"dvemig/internal/proc"
	"dvemig/internal/simtime"
	"dvemig/internal/trace"
)

// Fig4Config parameterizes the §VI-B experiment: live-migrate an
// OpenArena server with 24 connected clients and measure the packet-level
// delay with tcpdump.
type Fig4Config struct {
	Clients   int
	Server    ServerConfig
	MigCfg    migration.Config
	MigrateAt simtime.Duration
	Duration  simtime.Duration
}

// DefaultFig4Config mirrors the paper's run.
func DefaultFig4Config() Fig4Config {
	return Fig4Config{
		Clients:   24,
		Server:    DefaultServerConfig(),
		MigCfg:    migration.DefaultConfig(),
		MigrateAt: 2 * 1e9,
		Duration:  4 * 1e9,
	}
}

// Fig4Result reports the experiment.
type Fig4Result struct {
	// Trace holds every server→client snapshot packet seen at the
	// players' access link (the tcpdump of Fig 4).
	Trace *trace.PacketTrace
	// Metrics is the migration's engine-side measurement (its FreezeTime
	// is the "20 milliseconds downtime" figure of §VI-B).
	Metrics *migration.Metrics
	// MaxGap is the largest pause between consecutive snapshot groups;
	// BaselineGap is the regular cadence (≈50 ms); ExtraDelay is their
	// difference — the ≈25 ms Fig 4 annotates.
	MaxGap      simtime.Duration
	BaselineGap simtime.Duration
	ExtraDelay  simtime.Duration
	// TotalReceived sums snapshots over all clients; ExpectedPerClient is
	// the frame count while connected (loss shows as a deficit).
	TotalReceived     uint64
	ExpectedPerClient uint64
}

// RunFig4 executes the experiment and returns the measurements.
func RunFig4(cfg Fig4Config) (*Fig4Result, error) {
	sched := simtime.NewScheduler()
	cluster := proc.NewCluster(sched, 2)
	var migs []*migration.Migrator
	for _, n := range cluster.Nodes {
		m, err := migration.NewMigrator(n, cfg.MigCfg)
		if err != nil {
			return nil, err
		}
		migs = append(migs, m)
	}
	srv, err := StartServer(cluster.Nodes[0], cfg.Server)
	if err != nil {
		return nil, err
	}

	host := cluster.NewExternalHost("players")
	tap := &trace.PacketTrace{FilterPort: GamePort, FilterDir: "rx"}
	// The external host's NIC is the players' access link; sniff it.
	hostNICSniff(cluster, tap)

	// Players join staggered across one frame so their command traffic is
	// spread in time, as real clients' would be.
	clients := make([]*Client, 0, cfg.Clients)
	stagger := cfg.Server.FramePeriod / simtime.Duration(cfg.Clients)
	for i := 0; i < cfg.Clients; i++ {
		at := simtime.Duration(i) * stagger
		sched.At(at, "fig4.join", func() {
			c, err := NewClient(host, cluster.ClusterIP, cfg.Server.FramePeriod)
			if err != nil {
				panic(err) // cannot happen: host has a default route
			}
			clients = append(clients, c)
		})
	}

	var mm *migration.Metrics
	var migErr error
	sched.At(cfg.MigrateAt, "fig4.migrate", func() {
		migs[0].Migrate(srv.Proc, cluster.Nodes[1].LocalIP, func(m *migration.Metrics, err error) {
			mm, migErr = m, err
		})
	})
	sched.RunUntil(cfg.Duration)
	for _, c := range clients {
		c.Stop()
	}
	sched.RunFor(200 * 1e6)
	if migErr != nil {
		return nil, fmt.Errorf("fig4: migration failed: %w", migErr)
	}
	if mm == nil {
		return nil, fmt.Errorf("fig4: migration did not finish")
	}

	res := &Fig4Result{Trace: tap, Metrics: mm}
	res.MaxGap, _ = tap.MaxGap()
	res.BaselineGap = baselineGap(tap, cfg.MigrateAt)
	res.ExtraDelay = res.MaxGap - res.BaselineGap
	for _, c := range clients {
		res.TotalReceived += c.Received
	}
	res.ExpectedPerClient = srv.Frames
	return res, nil
}

// hostNICSniff attaches the tap to the most recently attached external
// NIC (the players' host).
func hostNICSniff(c *proc.Cluster, tap *trace.PacketTrace) {
	// NewExternalHost attaches exactly one NIC per host; reach it through
	// the router by re-attaching a sniffer on the last external NIC. The
	// cluster API does not expose it directly, so we register during
	// creation instead — see NewExternalHostNIC below.
	nic := c.LastExternalNIC()
	if nic != nil {
		nic.AttachSniffer(tap)
	}
}

// baselineGap returns the typical (median) inter-group gap before the
// migration: group boundaries are gaps larger than a quarter frame.
func baselineGap(t *trace.PacketTrace, before simtime.Duration) simtime.Duration {
	var gaps []float64
	recs := t.Window(0, before)
	for i := 1; i < len(recs); i++ {
		g := recs[i].At - recs[i-1].At
		if g > 10*1e6 { // ignore intra-group spacing
			gaps = append(gaps, float64(g))
		}
	}
	if len(gaps) == 0 {
		return 0
	}
	return simtime.Duration(trace.Percentile(gaps, 50))
}
