// Package capture implements the incoming-packet-loss prevention
// mechanism of §III-B / §V-B (the cap_trans_mod kernel module): while a
// socket is being migrated, the destination node captures packets that
// match the migrating connection on the NF_INET_LOCAL_IN hook, dedups
// TCP segments by sequence number, and reinjects the queue through the
// okfn (ip_rcv_finish) once the socket is restored.
//
// The single-IP broadcast router makes this possible with no router
// changes: the destination node already sees every client packet.
package capture

import (
	"fmt"

	"dvemig/internal/netsim"
	"dvemig/internal/netstack"
)

// Filter captures packets for one migrating connection (TCP: exact
// remote IP/port + local port) or one migrating server port (UDP:
// RemoteIP/RemotePort zero act as wildcards, since a UDP server socket
// receives from arbitrary peers).
type Filter struct {
	Key netsim.FlowKey

	// Epoch stamps the ownership epoch under which the filter was
	// installed. A fence raised above it (FencePort) garbage-collects
	// the filter and forbids reinjection of its queue: a node that lost
	// ownership of a port must never replay packets it stole for it.
	Epoch uint64

	queue   []*netsim.Packet
	seqSeen map[uint32]bool

	// Captured and Deduped count packets queued and duplicates skipped.
	Captured, Deduped uint64
}

func (f *Filter) matches(p *netsim.Packet) bool {
	if p.Proto != f.Key.Proto {
		return false
	}
	if p.DstPort != f.Key.LocalPort {
		return false
	}
	if f.Key.RemoteIP != 0 && p.SrcIP != f.Key.RemoteIP {
		return false
	}
	if f.Key.RemotePort != 0 && p.SrcPort != f.Key.RemotePort {
		return false
	}
	return true
}

// QueueLen reports captured packets currently held.
func (f *Filter) QueueLen() int { return len(f.queue) }

// Service owns the capture filters of one node.
type Service struct {
	stack   *netstack.Stack
	hook    netstack.HookID
	hooked  bool
	filters []*Filter

	// fences maps a local port to the minimum acceptable filter epoch.
	// Raised by FencePort when the node observes that ownership of the
	// port moved to a higher epoch elsewhere.
	fences map[uint16]uint64

	// TotalCaptured counts across all filters' lifetimes; Fenced counts
	// filters dropped (queue discarded) by epoch fences.
	TotalCaptured uint64
	Fenced        uint64
}

// NewService creates the capture service for a node's stack. The hook is
// installed lazily when the first filter is enabled.
func NewService(st *netstack.Stack) *Service {
	return &Service{stack: st, fences: make(map[uint16]uint64)}
}

// Enable starts capturing packets matching key with epoch 0 (unfenced
// legacy path). It returns the filter so the migration engine can
// inspect the queue.
func (s *Service) Enable(key netsim.FlowKey) *Filter {
	return s.EnableEpoch(key, 0)
}

// EnableEpoch starts capturing packets matching key under an ownership
// epoch. If the port is already fenced above the epoch the returned
// filter is inert: it is not installed and will never capture — the
// caller's migration is acting on superseded ownership.
func (s *Service) EnableEpoch(key netsim.FlowKey, ep uint64) *Filter {
	f := &Filter{Key: key, Epoch: ep, seqSeen: make(map[uint32]bool)}
	if min, fenced := s.fences[key.LocalPort]; fenced && ep < min {
		s.Fenced++
		return f // inert: below the fence, never installed
	}
	s.filters = append(s.filters, f)
	if !s.hooked {
		// Negative priority: run before translation and anything else on
		// LOCAL_IN, so the capture window is airtight.
		s.hook = s.stack.RegisterHook(netstack.HookLocalIn, -100, s.hookFn)
		s.hooked = true
	}
	return f
}

// FencePort raises the minimum acceptable epoch for a local port and
// garbage-collects every installed filter below it, discarding their
// queues. Called when the node learns the port's service is owned
// elsewhere at a higher epoch: whatever was captured here belongs to a
// superseded owner and must never be reinjected.
func (s *Service) FencePort(port uint16, ep uint64) int {
	if cur := s.fences[port]; ep <= cur {
		return 0
	}
	s.fences[port] = ep
	dropped := 0
	kept := s.filters[:0]
	for _, f := range s.filters {
		if f.Key.LocalPort == port && f.Epoch < ep {
			for _, p := range f.queue {
				p.Release()
			}
			f.queue = nil
			s.Fenced++
			dropped++
			continue
		}
		kept = append(kept, f)
	}
	s.filters = kept
	if len(s.filters) == 0 && s.hooked {
		s.stack.UnregisterHook(s.hook)
		s.hooked = false
	}
	return dropped
}

// PortFence returns the current fence epoch for a port (0 = unfenced).
func (s *Service) PortFence(port uint16) uint64 { return s.fences[port] }

func (s *Service) hookFn(p *netsim.Packet) netstack.Verdict {
	for _, f := range s.filters {
		if !f.matches(p) {
			continue
		}
		// TCP sequence dedup: "checks TCP sequence numbers and stores
		// duplicated packets only once" (§III-B).
		if p.Proto == netsim.ProtoTCP {
			if f.seqSeen[p.Seq] {
				f.Deduped++
				p.Release() // duplicate consumed, not requeued
				return netstack.VerdictStolen
			}
			f.seqSeen[p.Seq] = true
		}
		f.queue = append(f.queue, p)
		f.Captured++
		s.TotalCaptured++
		return netstack.VerdictStolen
	}
	return netstack.VerdictAccept
}

// ReinjectAndDisable removes the filter and submits each captured packet
// back to the stack through the okfn, in arrival order. The migrated
// socket — rehashed just before this call — processes them as if they
// had just arrived. Returns the number of packets reinjected.
//
// A filter whose epoch fell below the port fence is refused: it is
// removed and its queue discarded, but nothing is reinjected — replaying
// packets captured under superseded ownership would hand a stale owner
// back its traffic.
func (s *Service) ReinjectAndDisable(f *Filter) (int, error) {
	if min, fenced := s.fences[f.Key.LocalPort]; fenced && f.Epoch < min {
		s.Drop(f)
		s.Fenced++
		return 0, fmt.Errorf("capture: filter %v fenced (epoch %d < %d)", f.Key, f.Epoch, min)
	}
	idx := -1
	for i, g := range s.filters {
		if g == f {
			idx = i
			break
		}
	}
	if idx < 0 {
		return 0, fmt.Errorf("capture: filter %v not enabled", f.Key)
	}
	s.filters = append(s.filters[:idx], s.filters[idx+1:]...)
	if len(s.filters) == 0 && s.hooked {
		s.stack.UnregisterHook(s.hook)
		s.hooked = false
	}
	n := 0
	for _, p := range f.queue {
		s.stack.Reinject(p)
		n++
	}
	f.queue = nil
	return n, nil
}

// Drop discards a filter and its queue without reinjection (abort path).
func (s *Service) Drop(f *Filter) {
	for i, g := range s.filters {
		if g == f {
			s.filters = append(s.filters[:i], s.filters[i+1:]...)
			break
		}
	}
	if len(s.filters) == 0 && s.hooked {
		s.stack.UnregisterHook(s.hook)
		s.hooked = false
	}
	for _, p := range f.queue {
		p.Release()
	}
	f.queue = nil
}

// ActiveFilters reports how many filters are enabled.
func (s *Service) ActiveFilters() int { return len(s.filters) }
