package capture

import (
	"testing"
	"testing/quick"
	"time"

	"dvemig/internal/netsim"
	"dvemig/internal/netstack"
	"dvemig/internal/proc"
	"dvemig/internal/simtime"
)

func TestTCPCaptureAndReinject(t *testing.T) {
	c := proc.NewCluster(simtime.NewScheduler(), 2)
	n1, n2 := c.Nodes[0], c.Nodes[1]
	// Client connects to a server socket owned by n1 on the cluster IP.
	lst := netstack.NewTCPSocket(n1.Stack)
	if err := lst.Listen(c.ClusterIP, 5555); err != nil {
		t.Fatal(err)
	}
	var srv *netstack.TCPSocket
	lst.OnAccept = func(ch *netstack.TCPSocket) { srv = ch }
	ext := c.NewExternalHost("cli")
	cli := netstack.NewTCPSocket(ext)
	if err := cli.Connect(c.ClusterIP, 5555); err != nil {
		t.Fatal(err)
	}
	c.Sched.RunFor(time.Second)
	if srv == nil {
		t.Fatal("no accept")
	}

	// Begin migration: destination n2 enables capture for the flow, then
	// the source disables the socket.
	svc := NewService(n2.Stack)
	key := netsim.FlowKey{RemoteIP: cli.LocalIP, RemotePort: cli.LocalPort,
		LocalPort: 5555, Proto: netsim.ProtoTCP}
	f := svc.Enable(key)
	srv.Unhash()

	// Client sends during the freeze window; packets are lost at n1 (no
	// socket) but captured at n2 thanks to the broadcast.
	cli.Send([]byte("during-freeze"))
	c.Sched.RunFor(50 * time.Millisecond)
	if f.QueueLen() == 0 {
		t.Fatal("nothing captured during freeze")
	}

	// Restore the socket on n2 and reinject.
	snap := netstack.SnapshotTCP(srv)
	restored, err := netstack.RestoreTCP(n2.Stack, snap)
	if err != nil {
		t.Fatal(err)
	}
	var got []byte
	restored.OnReadable = func() { got = append(got, restored.Recv()...) }
	n, err := svc.ReinjectAndDisable(f)
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("no packets reinjected")
	}
	c.Sched.RunFor(time.Second)
	if string(got) != "during-freeze" {
		t.Fatalf("data after reinjection = %q", got)
	}
	if svc.ActiveFilters() != 0 {
		t.Fatal("filter left active")
	}
	// No retransmission was needed: the data arrived via the capture
	// queue before the client's RTO fired.
	if cli.Retransmits != 0 {
		t.Fatalf("client retransmitted %d times despite capture", cli.Retransmits)
	}
}

func TestCaptureDedupsBySeq(t *testing.T) {
	sched := simtime.NewScheduler()
	st := netstack.NewStack(sched, "dst", 0)
	svc := NewService(st)
	key := netsim.FlowKey{RemoteIP: 0x01020304, RemotePort: 1000, LocalPort: 80, Proto: netsim.ProtoTCP}
	f := svc.Enable(key)
	mk := func(seq uint32) *netsim.Packet {
		return &netsim.Packet{Proto: netsim.ProtoTCP, SrcIP: 0x01020304, SrcPort: 1000,
			DstIP: 0x0a000001, DstPort: 80, Seq: seq, Payload: []byte("x")}
	}
	if v := svcHook(svc, mk(100)); v != netstack.VerdictStolen {
		t.Fatal("first packet not stolen")
	}
	if v := svcHook(svc, mk(100)); v != netstack.VerdictStolen {
		t.Fatal("duplicate should still be consumed")
	}
	if v := svcHook(svc, mk(101)); v != netstack.VerdictStolen {
		t.Fatal("second seq not stolen")
	}
	if f.QueueLen() != 2 {
		t.Fatalf("queue = %d, want 2 (dup removed)", f.QueueLen())
	}
	if f.Deduped != 1 {
		t.Fatalf("deduped = %d", f.Deduped)
	}
}

// svcHook drives the service's hook function directly.
func svcHook(s *Service, p *netsim.Packet) netstack.Verdict { return s.hookFn(p) }

func TestUDPWildcardCapture(t *testing.T) {
	sched := simtime.NewScheduler()
	st := netstack.NewStack(sched, "dst", 0)
	svc := NewService(st)
	f := svc.Enable(netsim.FlowKey{LocalPort: 27960, Proto: netsim.ProtoUDP})
	for i := 0; i < 3; i++ {
		p := &netsim.Packet{Proto: netsim.ProtoUDP, SrcIP: netsim.Addr(100 + i),
			SrcPort: uint16(4000 + i), DstPort: 27960, Payload: []byte{byte(i)}}
		if svcHook(svc, p) != netstack.VerdictStolen {
			t.Fatal("udp packet not captured")
		}
	}
	// Non-matching port passes through.
	p := &netsim.Packet{Proto: netsim.ProtoUDP, DstPort: 1234}
	if svcHook(svc, p) != netstack.VerdictAccept {
		t.Fatal("unrelated packet captured")
	}
	if f.QueueLen() != 3 {
		t.Fatalf("queue = %d", f.QueueLen())
	}
}

func TestCaptureFilterSelectivity(t *testing.T) {
	sched := simtime.NewScheduler()
	st := netstack.NewStack(sched, "dst", 0)
	svc := NewService(st)
	key := netsim.FlowKey{RemoteIP: 5, RemotePort: 50, LocalPort: 80, Proto: netsim.ProtoTCP}
	svc.Enable(key)
	cases := []struct {
		p    netsim.Packet
		want netstack.Verdict
	}{
		{netsim.Packet{Proto: netsim.ProtoTCP, SrcIP: 5, SrcPort: 50, DstPort: 80}, netstack.VerdictStolen},
		{netsim.Packet{Proto: netsim.ProtoTCP, SrcIP: 6, SrcPort: 50, DstPort: 80}, netstack.VerdictAccept},
		{netsim.Packet{Proto: netsim.ProtoTCP, SrcIP: 5, SrcPort: 51, DstPort: 80}, netstack.VerdictAccept},
		{netsim.Packet{Proto: netsim.ProtoTCP, SrcIP: 5, SrcPort: 50, DstPort: 81}, netstack.VerdictAccept},
		{netsim.Packet{Proto: netsim.ProtoUDP, SrcIP: 5, SrcPort: 50, DstPort: 80}, netstack.VerdictAccept},
	}
	for i, tc := range cases {
		pk := tc.p
		if got := svcHook(svc, &pk); got != tc.want {
			t.Fatalf("case %d: verdict %v, want %v", i, got, tc.want)
		}
	}
}

func TestDropDiscardsQueue(t *testing.T) {
	sched := simtime.NewScheduler()
	st := netstack.NewStack(sched, "dst", 0)
	svc := NewService(st)
	f := svc.Enable(netsim.FlowKey{LocalPort: 1, Proto: netsim.ProtoUDP})
	svcHook(svc, &netsim.Packet{Proto: netsim.ProtoUDP, DstPort: 1})
	svc.Drop(f)
	if svc.ActiveFilters() != 0 || f.QueueLen() != 0 {
		t.Fatal("drop did not clean up")
	}
	if st.Stats.Reinjected != 0 {
		t.Fatal("drop must not reinject")
	}
}

func TestReinjectUnknownFilter(t *testing.T) {
	st := netstack.NewStack(simtime.NewScheduler(), "dst", 0)
	svc := NewService(st)
	if _, err := svc.ReinjectAndDisable(&Filter{}); err == nil {
		t.Fatal("unknown filter accepted")
	}
}

func TestMultipleFiltersIndependent(t *testing.T) {
	st := netstack.NewStack(simtime.NewScheduler(), "dst", 0)
	svc := NewService(st)
	f1 := svc.Enable(netsim.FlowKey{LocalPort: 10, Proto: netsim.ProtoUDP})
	f2 := svc.Enable(netsim.FlowKey{LocalPort: 20, Proto: netsim.ProtoUDP})
	svcHook(svc, &netsim.Packet{Proto: netsim.ProtoUDP, DstPort: 10})
	svcHook(svc, &netsim.Packet{Proto: netsim.ProtoUDP, DstPort: 20})
	svcHook(svc, &netsim.Packet{Proto: netsim.ProtoUDP, DstPort: 20})
	if f1.QueueLen() != 1 || f2.QueueLen() != 2 {
		t.Fatalf("queues = %d,%d", f1.QueueLen(), f2.QueueLen())
	}
	if _, err := svc.ReinjectAndDisable(f1); err != nil {
		t.Fatal(err)
	}
	if svc.ActiveFilters() != 1 {
		t.Fatal("wrong filter removed")
	}
}

func TestFencePortDropsStaleFilters(t *testing.T) {
	st := netstack.NewStack(simtime.NewScheduler(), "dst", 0)
	svc := NewService(st)
	old := svc.EnableEpoch(netsim.FlowKey{LocalPort: 70, RemoteIP: 8, RemotePort: 8, Proto: netsim.ProtoUDP}, 1)
	cur := svc.EnableEpoch(netsim.FlowKey{LocalPort: 70, RemoteIP: 9, RemotePort: 9, Proto: netsim.ProtoUDP}, 2)
	other := svc.EnableEpoch(netsim.FlowKey{LocalPort: 71, Proto: netsim.ProtoUDP}, 1)
	svcHook(svc, &netsim.Packet{Proto: netsim.ProtoUDP, SrcIP: 8, SrcPort: 8, DstPort: 70})
	svcHook(svc, &netsim.Packet{Proto: netsim.ProtoUDP, SrcIP: 9, SrcPort: 9, DstPort: 70})
	svcHook(svc, &netsim.Packet{Proto: netsim.ProtoUDP, DstPort: 71})

	if dropped := svc.FencePort(70, 2); dropped != 1 {
		t.Fatalf("FencePort dropped %d filters, want 1", dropped)
	}
	if old.QueueLen() != 0 {
		t.Fatal("stale filter kept its queue")
	}
	if cur.QueueLen() != 1 || other.QueueLen() != 1 {
		t.Fatal("fence touched filters at or above the epoch, or on another port")
	}
	if svc.ActiveFilters() != 2 {
		t.Fatalf("active filters = %d, want 2", svc.ActiveFilters())
	}
	if svc.Fenced != 1 {
		t.Fatalf("Fenced = %d, want 1", svc.Fenced)
	}
	if svc.PortFence(70) != 2 || svc.PortFence(71) != 0 {
		t.Fatal("PortFence watermark wrong")
	}
	// Fences only ratchet forward.
	if svc.FencePort(70, 1) != 0 || svc.PortFence(70) != 2 {
		t.Fatal("fence moved backward")
	}
	// The surviving current-epoch filter still reinjects normally.
	if n, err := svc.ReinjectAndDisable(cur); err != nil || n != 1 {
		t.Fatalf("current-epoch reinject = %d, %v", n, err)
	}
}

func TestEnableBelowFenceIsInert(t *testing.T) {
	st := netstack.NewStack(simtime.NewScheduler(), "dst", 0)
	svc := NewService(st)
	svc.FencePort(80, 5)
	f := svc.EnableEpoch(netsim.FlowKey{LocalPort: 80, Proto: netsim.ProtoUDP}, 4)
	if svc.ActiveFilters() != 0 {
		t.Fatal("stale filter was installed")
	}
	if svcHook(svc, &netsim.Packet{Proto: netsim.ProtoUDP, DstPort: 80}) != netstack.VerdictAccept {
		t.Fatal("inert filter captured a packet")
	}
	if f.QueueLen() != 0 || f.Captured != 0 {
		t.Fatal("inert filter has state")
	}
	if svc.Fenced != 1 {
		t.Fatalf("Fenced = %d, want 1", svc.Fenced)
	}
	// Legacy Enable (epoch 0) on a fenced port is likewise inert.
	svc.Enable(netsim.FlowKey{LocalPort: 80, Proto: netsim.ProtoUDP})
	if svc.ActiveFilters() != 0 {
		t.Fatal("legacy filter installed below fence")
	}
	// At or above the fence installs normally.
	g := svc.EnableEpoch(netsim.FlowKey{LocalPort: 80, Proto: netsim.ProtoUDP}, 5)
	if svc.ActiveFilters() != 1 {
		t.Fatal("fresh filter not installed")
	}
	svc.Drop(g)
}

func TestReinjectRefusedBelowFence(t *testing.T) {
	st := netstack.NewStack(simtime.NewScheduler(), "dst", 0)
	svc := NewService(st)
	f := svc.EnableEpoch(netsim.FlowKey{LocalPort: 90, Proto: netsim.ProtoUDP}, 1)
	svcHook(svc, &netsim.Packet{Proto: netsim.ProtoUDP, DstPort: 90})
	// Ownership moves to epoch 2 elsewhere while the caller still holds f.
	// The fence GCs the installed filter immediately, and a later attempt
	// to reinject the stale handle must be refused without reinjection.
	svc.FencePort(90, 2)
	if svc.ActiveFilters() != 0 {
		t.Fatal("fence left the stale filter installed")
	}
	if n, err := svc.ReinjectAndDisable(f); err == nil || n != 0 {
		t.Fatalf("fenced reinjection allowed: n=%d err=%v", n, err)
	}
	if st.Stats.Reinjected != 0 {
		t.Fatal("fenced filter reinjected packets")
	}
}

func TestCaptureMultisetProperty(t *testing.T) {
	// For any random packet sequence: every non-duplicate matching packet
	// is captured exactly once; reinjection releases exactly the captured
	// set; non-matching packets always pass through.
	f := func(seqs []uint16, ports []uint8) bool {
		sched := simtime.NewScheduler()
		st := netstack.NewStack(sched, "dst", 0)
		svc := NewService(st)
		filt := svc.Enable(netsim.FlowKey{RemoteIP: 9, RemotePort: 99, LocalPort: 80, Proto: netsim.ProtoTCP})
		seen := map[uint32]bool{}
		wantCaptured := 0
		passed := 0
		n := len(seqs)
		if len(ports) < n {
			n = len(ports)
		}
		for i := 0; i < n; i++ {
			match := ports[i]%2 == 0
			p := &netsim.Packet{Proto: netsim.ProtoTCP, SrcIP: 9, SrcPort: 99,
				DstPort: 80, Seq: uint32(seqs[i]), Payload: []byte{1}}
			if !match {
				p.DstPort = 81
			}
			v := svcHook(svc, p)
			switch {
			case match && !seen[p.Seq]:
				seen[p.Seq] = true
				wantCaptured++
				if v != netstack.VerdictStolen {
					return false
				}
			case match: // duplicate: consumed but not queued
				if v != netstack.VerdictStolen {
					return false
				}
			default:
				passed++
				if v != netstack.VerdictAccept {
					return false
				}
			}
		}
		if filt.QueueLen() != wantCaptured {
			return false
		}
		rel, err := svc.ReinjectAndDisable(filt)
		if err != nil {
			return false
		}
		return rel == wantCaptured && int(st.Stats.Reinjected) == wantCaptured
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
