// Package stream implements the multimedia-streaming use case the paper
// names as its main future perspective (§VIII): a constant-bitrate media
// server whose subscribers hold small playout buffers, live-migrated
// mid-stream. Whether viewers notice depends on the freeze time against
// the buffer depth — precopy live migration stays under it, stop-and-copy
// does not.
package stream

import (
	"encoding/binary"

	"dvemig/internal/netsim"
	"dvemig/internal/netstack"
	"dvemig/internal/proc"
	"dvemig/internal/simtime"
)

// Port is the media server's TCP service port (RTSP's well-known port).
const Port = 8554

// ServerConfig shapes the media server.
type ServerConfig struct {
	// BitrateKbps is the per-subscriber media bitrate.
	BitrateKbps int
	// ChunkPeriod is the pacing interval: one chunk per subscriber per
	// period.
	ChunkPeriod simtime.Duration
	// MemPages of working set (encoder state etc.), lightly dirtied.
	MemPages uint64
}

// DefaultServerConfig streams 1.5 Mb/s in 40 ms chunks.
func DefaultServerConfig() ServerConfig {
	return ServerConfig{BitrateKbps: 1500, ChunkPeriod: 40 * 1e6, MemPages: 512}
}

// ChunkBytes returns the payload size of one chunk (8-byte sequence
// header included).
func (c ServerConfig) ChunkBytes() int {
	return int(int64(c.BitrateKbps) * 1000 / 8 * int64(c.ChunkPeriod) / 1e9)
}

// Server is the handle to the media server process.
type Server struct {
	Proc *proc.Process
	// ChunksSent counts media chunks across all subscribers.
	ChunksSent uint64
}

// Start spawns the streaming server on node n; it listens on the node's
// default-route source address (the cluster IP).
func Start(n *proc.Node, cfg ServerConfig) (*Server, error) {
	s := &Server{}
	p := n.Spawn("mediad", 2)
	p.CPUDemand = 0.3
	v := p.AS.Mmap(cfg.MemPages*proc.PageSize, "rw-")
	// Fault the working set in: encoder tables, media cache.
	for i := uint64(0); i < cfg.MemPages; i += 2 {
		if err := p.AS.Write(v.Start+i*proc.PageSize, []byte{0x4d, byte(i)}); err != nil {
			return nil, err
		}
	}

	addr, err := n.Stack.SourceAddrFor(0)
	if err != nil {
		return nil, err
	}
	lst := netstack.NewTCPSocket(n.Stack)
	if err := lst.Listen(addr, Port); err != nil {
		return nil, err
	}
	p.FDs.Install(&proc.TCPFile{Sock: lst})
	lst.OnAccept = func(ch *netstack.TCPSocket) {
		p.FDs.Install(&proc.TCPFile{Sock: ch})
	}

	// Per-subscriber sequence counters keyed by connection identity so
	// they survive migration (the socket objects are rebuilt, the ports
	// are not).
	seqs := make(map[uint16]uint64)
	chunk := make([]byte, cfg.ChunkBytes())
	tick := uint64(0)
	p.Tick = func(self *proc.Process) {
		tick++
		_ = self.AS.Touch(v.Start + uint64(tick%cfg.MemPages)*proc.PageSize)
		tcp, _ := self.Sockets()
		for _, sk := range tcp {
			if sk.State != netstack.TCPEstablished {
				continue
			}
			sk.Recv() // subscriber keepalives
			seq := seqs[sk.RemotePort]
			seqs[sk.RemotePort] = seq + 1
			binary.BigEndian.PutUint64(chunk, seq)
			if err := sk.Send(chunk); err == nil {
				s.ChunksSent++
			}
		}
	}
	s.Proc = p
	n.StartLoop(p, cfg.ChunkPeriod)
	return s, nil
}

// Client is one subscriber with a playout buffer.
type Client struct {
	Sock *netstack.TCPSocket

	// BufferedBytes is the current playout buffer depth; playback starts
	// once PrebufferBytes have accumulated and drains at the media rate.
	BufferedBytes  int
	PrebufferBytes int
	playing        bool

	// Rebuffers counts stalls: play ticks that found too little data.
	Rebuffers int
	// ChunksReceived counts whole chunks; OutOfOrder counts sequence
	// regressions (must stay zero: TCP plus migration must not reorder).
	ChunksReceived uint64
	OutOfOrder     int
	nextSeq        uint64

	drainPerTick int
	chunkBytes   int
	header       []byte
	ticker       *simtime.Ticker
}

// NewClient connects a subscriber from an external stack to the cluster
// address and starts its playout clock.
func NewClient(st *netstack.Stack, cluster netsim.Addr, cfg ServerConfig, prebuffer simtime.Duration) (*Client, error) {
	c := &Client{
		chunkBytes:     cfg.ChunkBytes(),
		drainPerTick:   cfg.ChunkBytes(),
		PrebufferBytes: int(int64(cfg.BitrateKbps) * 1000 / 8 * int64(prebuffer) / 1e9),
	}
	c.Sock = netstack.NewTCPSocket(st)
	if err := c.Sock.Connect(cluster, Port); err != nil {
		return nil, err
	}
	c.Sock.OnReadable = func() {
		data := c.Sock.Recv()
		c.BufferedBytes += len(data)
		// Track chunk sequence numbers across the byte stream.
		for _, b := range data {
			c.header = append(c.header, b)
			if len(c.header) == c.chunkBytes {
				seq := binary.BigEndian.Uint64(c.header)
				if seq < c.nextSeq {
					c.OutOfOrder++
				}
				c.nextSeq = seq + 1
				c.ChunksReceived++
				c.header = c.header[:0]
			}
		}
	}
	// The playout clock: drain one chunk's worth per period once the
	// prebuffer filled; an under-run is a visible rebuffering stall that
	// resets the prebuffer phase.
	c.ticker = simtime.NewTicker(st.Scheduler(), cfg.ChunkPeriod, "stream.play", func() {
		if !c.playing {
			if c.BufferedBytes >= c.PrebufferBytes {
				c.playing = true
			}
			return
		}
		if c.BufferedBytes < c.drainPerTick {
			c.Rebuffers++
			c.playing = false
			return
		}
		c.BufferedBytes -= c.drainPerTick
	})
	c.ticker.Start()
	return c, nil
}

// Stop halts the playout clock.
func (c *Client) Stop() { c.ticker.Stop() }

// Playing reports whether the client is currently playing (not
// prebuffering after a stall).
func (c *Client) Playing() bool { return c.playing }
