package stream

import (
	"fmt"

	"dvemig/internal/migration"
	"dvemig/internal/proc"
	"dvemig/internal/simtime"
)

// ExperimentConfig drives the migrate-while-streaming experiment.
type ExperimentConfig struct {
	Subscribers int
	Server      ServerConfig
	MigCfg      migration.Config
	// Prebuffer is the client playout buffer depth in time.
	Prebuffer simtime.Duration
	MigrateAt simtime.Duration
	Duration  simtime.Duration
}

// DefaultExperimentConfig: 8 viewers with 200 ms buffers, migrated at 2 s.
func DefaultExperimentConfig() ExperimentConfig {
	return ExperimentConfig{
		Subscribers: 8,
		Server:      DefaultServerConfig(),
		MigCfg:      migration.DefaultConfig(),
		Prebuffer:   200 * 1e6,
		MigrateAt:   2 * 1e9,
		Duration:    8 * 1e9,
	}
}

// ExperimentResult reports viewer experience across the migration.
type ExperimentResult struct {
	Metrics *migration.Metrics
	// Rebuffers sums stalls over all viewers; OutOfOrder must be zero.
	Rebuffers  int
	OutOfOrder int
	// ChunksReceived sums whole chunks over all viewers.
	ChunksReceived uint64
	// StillPlaying counts viewers playing at the end.
	StillPlaying int
}

// RunExperiment streams to the subscribers, migrates the server mid
// stream, and reports the playback experience.
func RunExperiment(cfg ExperimentConfig) (*ExperimentResult, error) {
	sched := simtime.NewScheduler()
	cluster := proc.NewCluster(sched, 2)
	var migs []*migration.Migrator
	for _, n := range cluster.Nodes {
		m, err := migration.NewMigrator(n, cfg.MigCfg)
		if err != nil {
			return nil, err
		}
		migs = append(migs, m)
	}
	srv, err := Start(cluster.Nodes[0], cfg.Server)
	if err != nil {
		return nil, err
	}
	host := cluster.NewExternalHost("viewers")
	var clients []*Client
	for i := 0; i < cfg.Subscribers; i++ {
		c, err := NewClient(host, cluster.ClusterIP, cfg.Server, cfg.Prebuffer)
		if err != nil {
			return nil, err
		}
		clients = append(clients, c)
	}

	var mm *migration.Metrics
	var migErr error
	sched.At(cfg.MigrateAt, "stream.migrate", func() {
		migs[0].Migrate(srv.Proc, cluster.Nodes[1].LocalIP, func(m *migration.Metrics, err error) {
			mm, migErr = m, err
		})
	})
	sched.RunUntil(cfg.Duration)
	if migErr != nil {
		return nil, fmt.Errorf("stream: migration failed: %w", migErr)
	}
	if mm == nil {
		return nil, fmt.Errorf("stream: migration did not finish")
	}
	res := &ExperimentResult{Metrics: mm}
	for _, c := range clients {
		res.Rebuffers += c.Rebuffers
		res.OutOfOrder += c.OutOfOrder
		res.ChunksReceived += c.ChunksReceived
		if c.Playing() {
			res.StillPlaying++
		}
		c.Stop()
	}
	return res, nil
}
