package stream

import (
	"testing"
	"time"

	"dvemig/internal/proc"
	"dvemig/internal/simtime"
)

func TestChunkBytes(t *testing.T) {
	cfg := DefaultServerConfig()
	// 1.5 Mb/s over 40 ms = 7500 bytes.
	if got := cfg.ChunkBytes(); got != 7500 {
		t.Fatalf("ChunkBytes = %d, want 7500", got)
	}
}

func TestSteadyStreamingNoStalls(t *testing.T) {
	sched := simtime.NewScheduler()
	c := proc.NewCluster(sched, 1)
	cfg := DefaultServerConfig()
	srv, err := Start(c.Nodes[0], cfg)
	if err != nil {
		t.Fatal(err)
	}
	host := c.NewExternalHost("viewers")
	cl, err := NewClient(host, c.ClusterIP, cfg, 200*1e6)
	if err != nil {
		t.Fatal(err)
	}
	sched.RunUntil(5 * time.Second)
	if cl.Rebuffers != 0 {
		t.Fatalf("steady stream stalled %d times", cl.Rebuffers)
	}
	if !cl.Playing() {
		t.Fatal("viewer never started playing")
	}
	if cl.OutOfOrder != 0 {
		t.Fatal("chunks out of order on a plain stream")
	}
	// ~25 chunks/s for ~5s minus the prebuffer phase.
	if cl.ChunksReceived < 100 {
		t.Fatalf("chunks = %d", cl.ChunksReceived)
	}
	if srv.ChunksSent < cl.ChunksReceived {
		t.Fatal("accounting mismatch")
	}
}

func TestLiveMigrationDoesNotStallViewers(t *testing.T) {
	cfg := DefaultExperimentConfig()
	res, err := RunExperiment(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// The freeze (a few ms, well under the 200 ms buffer) must be
	// invisible: zero rebuffering, zero reordering, all viewers playing.
	if res.Rebuffers != 0 {
		t.Fatalf("live migration caused %d stalls", res.Rebuffers)
	}
	if res.OutOfOrder != 0 {
		t.Fatalf("reordering across migration: %d", res.OutOfOrder)
	}
	if res.StillPlaying != cfg.Subscribers {
		t.Fatalf("only %d/%d viewers still playing", res.StillPlaying, cfg.Subscribers)
	}
	if res.Metrics.FreezeTime >= cfg.Prebuffer {
		t.Fatalf("freeze %v not under the %v buffer; test is vacuous",
			res.Metrics.FreezeTime, time.Duration(cfg.Prebuffer))
	}
}

func TestStopAndCopyStallsViewers(t *testing.T) {
	cfg := DefaultExperimentConfig()
	cfg.Prebuffer = 120 * 1e6
	cfg.Server.MemPages = 16384 // 64 MiB: stop-and-copy freeze ≫ buffer
	cfg.MigCfg.EnablePrecopy = false
	res, err := RunExperiment(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.FreezeTime < 120*time.Millisecond {
		t.Skipf("stop-and-copy freeze only %v; cannot exceed buffer", res.Metrics.FreezeTime)
	}
	if res.Rebuffers == 0 {
		t.Fatal("stop-and-copy exceeded the buffer but nobody stalled")
	}
	// Even then the stream heals: no data lost or reordered.
	if res.OutOfOrder != 0 {
		t.Fatal("reordering under stop-and-copy")
	}
}

func TestViewerChurn(t *testing.T) {
	// Subscribers joining mid-stream get their own sequence space and
	// clean playback.
	sched := simtime.NewScheduler()
	c := proc.NewCluster(sched, 1)
	cfg := DefaultServerConfig()
	if _, err := Start(c.Nodes[0], cfg); err != nil {
		t.Fatal(err)
	}
	host := c.NewExternalHost("viewers")
	c1, err := NewClient(host, c.ClusterIP, cfg, 100*1e6)
	if err != nil {
		t.Fatal(err)
	}
	sched.RunUntil(2 * time.Second)
	c2, err := NewClient(host, c.ClusterIP, cfg, 100*1e6)
	if err != nil {
		t.Fatal(err)
	}
	sched.RunUntil(4 * time.Second)
	if c2.Rebuffers != 0 || !c2.Playing() || c2.OutOfOrder != 0 {
		t.Fatalf("late joiner unhappy: stalls=%d playing=%v ooo=%d",
			c2.Rebuffers, c2.Playing(), c2.OutOfOrder)
	}
	if c1.Rebuffers != 0 {
		t.Fatal("existing viewer disturbed by churn")
	}
}
