package hla

import (
	"testing"
	"time"

	"dvemig/internal/migration"
	"dvemig/internal/proc"
	"dvemig/internal/simtime"
)

func newFederation(t *testing.T, nodes int, cfg Config) (*proc.Cluster, []*migration.Migrator, *Federation) {
	t.Helper()
	c := proc.NewCluster(simtime.NewScheduler(), nodes)
	var migs []*migration.Migrator
	for _, n := range c.Nodes {
		m, err := migration.NewMigrator(n, migration.DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		migs = append(migs, m)
	}
	fed, err := New(c, c.Nodes, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c, migs, fed
}

func TestFederationAdvancesInLockstep(t *testing.T) {
	c, _, fed := newFederation(t, 3, DefaultConfig())
	c.Sched.RunFor(10 * time.Second)
	if fed.MinStep() < 100 {
		t.Fatalf("federation too slow: min step %d", fed.MinStep())
	}
	if fed.MaxStep()-fed.MinStep() > 1 {
		t.Fatalf("lockstep broken: spread %d..%d", fed.MinStep(), fed.MaxStep())
	}
	if fed.Violations() != 0 {
		t.Fatalf("conservative-sync violations: %d", fed.Violations())
	}
}

func TestFederationSurvivesFederateMigration(t *testing.T) {
	c, migs, fed := newFederation(t, 3, DefaultConfig())
	c.Sched.RunFor(3 * time.Second)
	before := fed.MinStep()

	// Migrate federate1 (on node2) to node3 mid-run.
	target := fed.Federates[1].Proc
	var done bool
	var mErr error
	migs[1].Migrate(target, c.Nodes[2].LocalIP, func(m *migration.Metrics, err error) {
		done, mErr = true, err
	})
	c.Sched.RunFor(10 * time.Second)
	if !done || mErr != nil {
		t.Fatalf("migration: done=%v err=%v", done, mErr)
	}
	if fed.MinStep() <= before+50 {
		t.Fatalf("federation stalled after migration: %d -> %d", before, fed.MinStep())
	}
	if fed.MaxStep()-fed.MinStep() > 1 {
		t.Fatalf("lockstep broken after migration: %d..%d", fed.MinStep(), fed.MaxStep())
	}
	if fed.Violations() != 0 {
		t.Fatalf("violations after migration: %d", fed.Violations())
	}
	// The federate really moved.
	found := false
	for _, p := range c.Nodes[2].Processes() {
		if p.Name == "federate1" {
			found = true
		}
	}
	if !found {
		t.Fatal("federate1 not on node3")
	}
}

func TestFederationSurvivesEveryFederateMigratingOnce(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Federates = 4
	c, migs, fed := newFederation(t, 4, cfg)
	c.Sched.RunFor(2 * time.Second)
	// Rotate every federate to the next node, one at a time.
	for i := 0; i < cfg.Federates; i++ {
		from := i % len(c.Nodes)
		to := (i + 1) % len(c.Nodes)
		var done bool
		var mErr error
		migs[from].Migrate(fed.Federates[i].Proc, c.Nodes[to].LocalIP, func(m *migration.Metrics, err error) {
			done, mErr = true, err
		})
		c.Sched.RunFor(5 * time.Second)
		if !done || mErr != nil {
			t.Fatalf("rotating federate %d: done=%v err=%v", i, done, mErr)
		}
		// Track the moved process handle for the next operations.
		for _, p := range c.Nodes[to].Processes() {
			if p.Name == fed.Federates[i].Proc.Name {
				fed.Federates[i].Proc = p
			}
		}
	}
	before := fed.MinStep()
	c.Sched.RunFor(5 * time.Second)
	if fed.MinStep() <= before {
		t.Fatal("federation dead after full rotation")
	}
	if fed.Violations() != 0 {
		t.Fatalf("violations: %d", fed.Violations())
	}
	if fed.MaxStep()-fed.MinStep() > 1 {
		t.Fatalf("lockstep spread %d..%d", fed.MinStep(), fed.MaxStep())
	}
}

func TestFederationRejectsTrivialSize(t *testing.T) {
	c := proc.NewCluster(simtime.NewScheduler(), 1)
	if _, err := New(c, c.Nodes, Config{Federates: 1, PollPeriod: 1e7}); err == nil {
		t.Fatal("single-federate federation accepted")
	}
}
