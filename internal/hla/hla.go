// Package hla models the other DVE class the paper opens with:
// distributed simulations in the style of the High-Level Architecture
// (IEEE 1516). A federation of federate processes advances in conservative
// lockstep — a federate may move from logical step k to k+1 only after
// every peer's step-k message arrived — over in-cluster TCP connections.
//
// The safety property conservative synchronization guarantees (no
// federate ever runs more than one step ahead of any other) must hold
// through a live migration of any federate: the step messages ride the
// very connections the migration mechanism preserves.
package hla

import (
	"encoding/binary"
	"fmt"

	"dvemig/internal/netstack"
	"dvemig/internal/proc"
	"dvemig/internal/simtime"
)

// BasePort: federate i accepts federation connections on BasePort+i of
// its node's in-cluster address.
const BasePort = 23000

// Config shapes a federation.
type Config struct {
	// Federates is the federation size.
	Federates int
	// PollPeriod is each federate's real-time loop period (how often it
	// checks for grant messages and tries to advance).
	PollPeriod simtime.Duration
	// WorkPages is the per-federate state touched each step.
	WorkPages uint64
	// CPUDemand per federate.
	CPUDemand float64
}

// DefaultConfig is a five-federate federation polling at 100 Hz.
func DefaultConfig() Config {
	return Config{Federates: 5, PollPeriod: 10 * 1e6, WorkPages: 32, CPUDemand: 0.25}
}

// Federate is one member's handle.
type Federate struct {
	Index int
	Proc  *proc.Process

	// Step is the federate's current logical time.
	Step uint64
	// Advances counts completed steps; Violations counts observations of
	// a peer more than one step away (must stay zero).
	Advances   uint64
	Violations uint64

	peerStep []uint64 // latest step heard from each peer
}

// Federation wires the federates together and tracks global invariants.
type Federation struct {
	Config    Config
	Federates []*Federate
}

// stepMsg encodes "I completed step k".
func stepMsg(from int, step uint64) []byte {
	b := make([]byte, 12)
	binary.BigEndian.PutUint32(b, uint32(from))
	binary.BigEndian.PutUint64(b[4:], step)
	return b
}

// New creates the federation: federate i runs on nodes[i%len(nodes)],
// with all-to-all TCP connections over the in-cluster network.
func New(cluster *proc.Cluster, nodes []*proc.Node, cfg Config) (*Federation, error) {
	if cfg.Federates < 2 {
		return nil, fmt.Errorf("hla: need at least two federates")
	}
	fed := &Federation{Config: cfg}
	type endpoint struct {
		proc *proc.Process
		f    *Federate
	}
	endpoints := make([]*endpoint, cfg.Federates)

	// Spawn federate processes with listeners.
	for i := 0; i < cfg.Federates; i++ {
		n := nodes[i%len(nodes)]
		p := n.Spawn(fmt.Sprintf("federate%d", i), 1)
		v := p.AS.Mmap(cfg.WorkPages*proc.PageSize, "rw-")
		_ = v
		p.CPUDemand = cfg.CPUDemand
		f := &Federate{Index: i, Proc: p, peerStep: make([]uint64, cfg.Federates)}
		lst := netstack.NewTCPSocket(n.Stack)
		if err := lst.Listen(n.LocalIP, BasePort+uint16(i)); err != nil {
			return nil, err
		}
		p.FDs.Install(&proc.TCPFile{Sock: lst})
		owner := p
		lst.OnAccept = func(ch *netstack.TCPSocket) {
			owner.FDs.Install(&proc.TCPFile{Sock: ch})
		}
		endpoints[i] = &endpoint{proc: p, f: f}
		fed.Federates = append(fed.Federates, f)
	}
	// All-to-all connections (i dials j for i < j).
	for i := 0; i < cfg.Federates; i++ {
		for j := i + 1; j < cfg.Federates; j++ {
			from := nodes[i%len(nodes)]
			to := nodes[j%len(nodes)]
			sk := netstack.NewTCPSocket(from.Stack)
			if err := sk.Connect(to.LocalIP, BasePort+uint16(j)); err != nil {
				return nil, err
			}
			endpoints[i].proc.FDs.Install(&proc.TCPFile{Sock: sk})
		}
	}
	cluster.Sched.RunFor(1e9) // handshakes

	// The federate program: parse grant messages, advance when every
	// peer reached our step, announce the new step. All state the loop
	// needs lives in the closure and the process, so it migrates.
	for i := 0; i < cfg.Federates; i++ {
		f := endpoints[i].f
		idx := i
		// Reassembly buffers are keyed by the connection's remote
		// identity, which is stable across migrations (socket objects
		// are rebuilt; their peers are not).
		type connKey struct {
			ip   uint32
			port uint16
		}
		buf := make(map[connKey][]byte)
		heap := endpoints[i].proc.AS.VMAs()[0]
		first := true
		endpoints[i].proc.Tick = func(self *proc.Process) {
			if first {
				first = false
				f.broadcast(self, stepMsg(idx, 0))
			}
			tcp, _ := self.Sockets()
			for _, sk := range tcp {
				if sk.State != netstack.TCPEstablished {
					continue
				}
				k := connKey{uint32(sk.RemoteIP), sk.RemotePort}
				data := sk.Recv()
				if len(data) > 0 {
					buf[k] = append(buf[k], data...)
					for len(buf[k]) >= 12 {
						from := int(binary.BigEndian.Uint32(buf[k]))
						step := binary.BigEndian.Uint64(buf[k][4:])
						buf[k] = buf[k][12:]
						if from >= 0 && from < len(f.peerStep) && step > f.peerStep[from] {
							f.peerStep[from] = step
						}
					}
				}
			}
			// Conservative advance rule: move to Step+1 only when every
			// peer announced at least Step.
			ready := true
			for p, s := range f.peerStep {
				if p == idx {
					continue
				}
				if s < f.Step {
					ready = false
				}
				// Invariant probe: conservative sync bounds the skew.
				if s > f.Step+1 {
					f.Violations++
				}
			}
			if ready {
				f.Step++
				f.Advances++
				_ = self.AS.Touch(heap.Start + (f.Step%cfg.WorkPages)*proc.PageSize)
				f.broadcast(self, stepMsg(idx, f.Step))
			}
		}
		nodes[i%len(nodes)].StartLoop(endpoints[i].proc, cfg.PollPeriod)
	}
	return fed, nil
}

// broadcast sends the message on every established connection.
func (f *Federate) broadcast(self *proc.Process, msg []byte) {
	tcp, _ := self.Sockets()
	for _, sk := range tcp {
		if sk.State == netstack.TCPEstablished {
			_ = sk.Send(msg)
		}
	}
}

// MinStep and MaxStep report the federation's logical-time spread.
func (fed *Federation) MinStep() uint64 {
	m := fed.Federates[0].Step
	for _, f := range fed.Federates {
		if f.Step < m {
			m = f.Step
		}
	}
	return m
}

// MaxStep reports the most advanced federate.
func (fed *Federation) MaxStep() uint64 {
	m := fed.Federates[0].Step
	for _, f := range fed.Federates {
		if f.Step > m {
			m = f.Step
		}
	}
	return m
}

// Violations sums invariant violations across federates.
func (fed *Federation) Violations() uint64 {
	var v uint64
	for _, f := range fed.Federates {
		v += f.Violations
	}
	return v
}
