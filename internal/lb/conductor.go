// Package lb implements the decentralized dynamic load-balancing
// middleware of §IV: the conductor daemon (cond) that discovers peers,
// monitors local resource consumption (the role atop plays in the paper),
// exchanges periodic load broadcasts, and instruments process migrations
// according to the four classic policies — transfer, location, selection
// and information [Shivaratri/Krueger/Singhal].
package lb

import (
	"encoding/binary"
	"fmt"

	"dvemig/internal/migration"
	"dvemig/internal/netsim"
	"dvemig/internal/netstack"
	"dvemig/internal/obs"
	"dvemig/internal/proc"
	"dvemig/internal/simtime"
)

// CondPort is the UDP port conductor daemons use.
const CondPort = 7901

// Mode selects the balancing objective.
type Mode int

// Modes: Balance equalizes load (the paper); Consolidate packs load onto
// few nodes to let others idle (the power-management future-work use).
const (
	ModeBalance Mode = iota
	ModeConsolidate
)

// Config tunes the conductor.
type Config struct {
	// Period between monitoring/broadcast ticks (information policy).
	Period simtime.Duration
	// HighThreshold: load above which a node is overloaded outright.
	HighThreshold float64
	// ImbalanceThreshold: load-minus-cluster-average above which the node
	// initiates a migration even below HighThreshold.
	ImbalanceThreshold float64
	// CalmDown is the post-migration stabilization period on both ends.
	CalmDown simtime.Duration
	// PeerTimeout expires silent peers (missed heartbeats).
	PeerTimeout simtime.Duration
	// SuspectAfter marks a peer suspect after this much heartbeat
	// silence; PeerTimeout then confirms death. Zero defaults to
	// 2×Period. Suspect peers stop receiving migrations but do not yet
	// trigger failover — a peer that flaps back within PeerTimeout never
	// causes an activation.
	SuspectAfter simtime.Duration
	// ClaimWait is the failover election window between broadcasting an
	// ownership claim and activating the standby image (zero defaults to
	// 2×Period); competing claims arriving within the window are
	// compared by (epoch, seq, lower address).
	ClaimWait simtime.Duration
	// ResumeGrace is how long a healed, formerly isolated owner listens
	// for a higher-epoch owner before resuming its suspended service
	// (zero defaults to 3×Period).
	ResumeGrace simtime.Duration
	// DeadRetention keeps dead peer entries around — still heartbeated —
	// so a healed node relearns the cluster quickly and hears the new
	// owner's advertisements; entries are GC'd after
	// PeerTimeout+DeadRetention of silence (zero defaults to 60 s).
	DeadRetention simtime.Duration
	// ScanMax bounds the discovery scan of the local /24.
	ScanMax byte
	// EWMA smoothing factor for the load signal (0..1, weight of the new
	// sample).
	EWMA float64
	Mode Mode
	// LowThreshold (consolidate mode): a node below it tries to drain.
	LowThreshold float64
}

// DefaultConfig mirrors the evaluation setup.
func DefaultConfig() Config {
	return Config{
		Period:             1e9, // 1s
		HighThreshold:      0.90,
		ImbalanceThreshold: 0.12,
		CalmDown:           15e9, // 15s
		PeerTimeout:        4e9,
		ScanMax:            32,
		EWMA:               0.5,
		Mode:               ModeBalance,
		LowThreshold:       0.25,
	}
}

type condState int

const (
	stateIdle condState = iota
	stateSending
	stateReceiving
)

// PeerState is the failure detector's verdict on a peer. The zero value
// is PeerAlive so freshly noted peers start healthy.
type PeerState int

// Detector states: Alive → Suspect (age > SuspectAfter) → Dead
// (age > PeerTimeout), with revival on any heartbeat. PeerUnknown is
// returned for addresses the conductor has never seen (or GC'd).
const (
	PeerAlive PeerState = iota
	PeerSuspect
	PeerDead
	PeerUnknown
)

func (s PeerState) String() string {
	switch s {
	case PeerAlive:
		return "alive"
	case PeerSuspect:
		return "suspect"
	case PeerDead:
		return "dead"
	}
	return "unknown"
}

type peerInfo struct {
	addr     netsim.Addr
	load     float64
	lastSeen simtime.Time
	state    PeerState
}

// Event records one load-balancing or failover decision, for the
// experiment logs.
type Event struct {
	At   simtime.Time
	Kind string // "migrate-out", "migrate-in", "reject", "abort", "suspect", "peer-dead", "revived", "claim", "activate", "fence", "suspend", "resume"
	Peer netsim.Addr
	PID  int
	Load float64
	// Name carries the service name for failover events.
	Name string
	// Err carries the failure for "abort" events.
	Err string
}

// Conductor is one node's cond daemon.
type Conductor struct {
	Node   *proc.Node
	Mig    *migration.Migrator
	Config Config

	sock   *netstack.UDPSocket
	ticker *simtime.Ticker

	peers map[netsim.Addr]*peerInfo
	load  float64 // smoothed local load

	state      condState
	calmUntil  simtime.Time
	reserveSeq uint32
	reserveAt  simtime.Time
	nextSeq    uint32

	// extLocked marks the migration slot as held by an external driver
	// (the control plane's node agent): the conductor neither proposes
	// nor accepts transfers while it is set, and none of its own
	// timeouts may clear the state. Acquired/released synchronously via
	// TryAcquireMigration/ReleaseMigration — an early-aborted migration
	// frees the slot the instant its done callback runs, not at the
	// next heartbeat tick.
	extLocked bool

	// Failover state (see failover.go). standby is nil until
	// EnableFailover wires one; owned tracks local service ownerships;
	// claims tracks pending failover elections; maxPeersSeen is the
	// high-water mark of simultaneously known peers (the quorum gate's
	// notion of cluster size); isolatedSince is when the alive-peer count
	// last dropped to zero.
	standby       *migration.Standby
	owned         map[string]*ownership
	claims        map[string]*claim
	maxPeersSeen  int
	isolatedSince simtime.Time
	isolated      bool

	// Events logs decisions; Migrations counts completed outbound moves;
	// Failovers counts standby activations this conductor performed.
	Events     []Event
	Migrations int
	Failovers  int

	// Obs is the node's observability plane (nil = disabled). Attach via
	// SetObs so the metric handles in obsm are pre-resolved.
	Obs  *obs.Obs
	obsm condObsHandles

	// balSpan is the open span of the pending rebalance decision this
	// conductor proposed (sender side; at most one, mirroring the
	// one-proposal-at-a-time state machine). rsvSpan is the receiver-side
	// reservation span, parented via the TraceContext the proposal
	// carried. Both nil when the plane is disabled.
	balSpan *obs.Span
	rsvSpan *obs.Span
}

// Wire opcodes.
const (
	opDiscover      = 1
	opDiscoverReply = 2
	opHeartbeat     = 3
	opPropose       = 4
	opAccept        = 5
	opReject        = 6
	opDone          = 7
	opRelease       = 8
	opOwner         = 9  // ownership advertisement: [op][8B epoch][8B seq][name]
	opClaim         = 10 // failover claim: [op][8B epoch][8B seq][name]
)

// NewConductor starts the daemon on a node that already runs a migration
// service. It binds the conductor port and scans the local network for
// peers (§IV: "the conductor daemon process scans the local network").
func NewConductor(n *proc.Node, mig *migration.Migrator, cfg Config) (*Conductor, error) {
	c := &Conductor{Node: n, Mig: mig, Config: cfg, peers: make(map[netsim.Addr]*peerInfo),
		owned: make(map[string]*ownership), claims: make(map[string]*claim)}
	c.sock = netstack.NewUDPSocket(n.Stack)
	if err := c.sock.Bind(n.LocalIP, CondPort); err != nil {
		return nil, fmt.Errorf("cond: %w", err)
	}
	c.sock.OnReadable = c.serve
	c.ticker = simtime.NewTicker(n.Sched, cfg.Period, "cond.tick", c.tick)
	c.ticker.Start()
	c.scan()
	return c, nil
}

// Stop halts the daemon (node leaving the cluster).
func (c *Conductor) Stop() {
	c.ticker.Stop()
	c.sock.Close()
}

// Load returns the smoothed local load in [0,1].
func (c *Conductor) Load() float64 { return c.load }

// PeerCount returns the live (non-dead) peer count.
func (c *Conductor) PeerCount() int {
	n := 0
	for _, p := range c.peers {
		if p.state != PeerDead {
			n++
		}
	}
	return n
}

// PeerState exposes the failure detector's verdict on a peer, for
// policies and tests.
func (c *Conductor) PeerState(addr netsim.Addr) PeerState {
	p := c.peers[addr]
	if p == nil {
		return PeerUnknown
	}
	return p.state
}

// AlivePeers lists peers the detector currently trusts, sorted for
// deterministic iteration.
func (c *Conductor) AlivePeers() []netsim.Addr {
	var out []netsim.Addr
	for addr, p := range c.peers {
		if p.state == PeerAlive {
			out = append(out, addr)
		}
	}
	sortAddrs(out)
	return out
}

func (c *Conductor) aliveCount() int {
	n := 0
	for _, p := range c.peers {
		if p.state == PeerAlive {
			n++
		}
	}
	return n
}

// ClusterAverage approximates the overall cluster load from the local
// sample and the latest peer broadcasts (§IV: each node maintains "an
// approximation on the overall load of the whole cluster"). Dead peers
// are excluded — their last broadcast describes a machine that no
// longer contributes capacity.
func (c *Conductor) ClusterAverage() float64 {
	sum := c.load
	n := 1.0
	for _, p := range c.peers {
		if p.state == PeerDead {
			continue
		}
		sum += p.load
		n++
	}
	return sum / n
}

// Derived detector defaults (zero config values fall back here).
func (c *Conductor) suspectAfter() simtime.Duration {
	if c.Config.SuspectAfter > 0 {
		return c.Config.SuspectAfter
	}
	return 2 * c.Config.Period
}

func (c *Conductor) deadRetention() simtime.Duration {
	if c.Config.DeadRetention > 0 {
		return c.Config.DeadRetention
	}
	return 60e9
}

func (c *Conductor) now() simtime.Time { return c.Node.Sched.Now() }

// scan probes every address on the local /24 up to ScanMax.
func (c *Conductor) scan() {
	base := proc.LocalNet
	for i := byte(1); i <= c.Config.ScanMax; i++ {
		addr := base + netsim.Addr(i)
		if addr == c.Node.LocalIP {
			continue
		}
		c.send(addr, []byte{opDiscover})
	}
}

func (c *Conductor) send(to netsim.Addr, payload []byte) {
	_ = c.sock.SendTo(to, CondPort, payload)
}

func loadMsg(op byte, load float64) []byte {
	b := make([]byte, 9)
	b[0] = op
	binary.BigEndian.PutUint64(b[1:], uint64(load*1e6))
	return b
}

func seqMsg(op byte, seq uint32) []byte {
	b := make([]byte, 5)
	b[0] = op
	binary.BigEndian.PutUint32(b[1:], seq)
	return b
}

// tick is the periodic monitor + information policy + decision step.
func (c *Conductor) tick() {
	// Monitor (atop role): smooth the instantaneous utilisation.
	u := c.Node.Utilization()
	c.load = c.Config.EWMA*u + (1-c.Config.EWMA)*c.load

	// Information policy: periodic broadcast doubling as heartbeat. Dead
	// entries are heartbeated too — a healed node must hear from us to
	// relearn the cluster (and, through the ownership advertisements
	// below, to learn it was superseded).
	hb := loadMsg(opHeartbeat, c.load)
	for _, addr := range c.peerAddrs() {
		c.send(addr, hb)
	}
	c.advertiseOwnership()

	// Failure detector: Alive → Suspect → Dead on heartbeat age, with
	// GC after the retention window. notePeer revives on any message.
	// Sorted iteration keeps the claim broadcasts onPeerDead emits in a
	// deterministic order.
	for _, addr := range c.peerAddrs() {
		p := c.peers[addr]
		age := c.now() - p.lastSeen
		switch {
		case age > c.Config.PeerTimeout+c.deadRetention():
			delete(c.peers, addr)
		case age > c.Config.PeerTimeout:
			if p.state != PeerDead {
				p.state = PeerDead
				c.Events = append(c.Events, Event{At: c.now(), Kind: "peer-dead", Peer: addr})
				c.detectorFlip("dead", addr)
				c.onPeerDead(addr)
			}
		case age > c.suspectAfter():
			if p.state == PeerAlive {
				p.state = PeerSuspect
				c.Events = append(c.Events, Event{At: c.now(), Kind: "suspect", Peer: addr})
				c.detectorFlip("suspect", addr)
			}
		}
	}
	c.checkIsolation()

	// Release a stuck reservation (sender never delivered).
	if c.state == stateReceiving && c.now()-c.reserveAt > 5*c.Config.Period {
		c.state = stateIdle
		c.reserveEnd("expired")
	}

	if c.state != stateIdle || c.now() < c.calmUntil || len(c.peers) == 0 {
		return
	}
	switch c.Config.Mode {
	case ModeBalance:
		c.considerBalance()
	case ModeConsolidate:
		c.considerConsolidate()
	}
}

// considerBalance implements the sender-initiated transfer policy and the
// location policy of §IV-A/B.
func (c *Conductor) considerBalance() {
	avg := c.ClusterAverage()
	over := c.load > c.Config.HighThreshold || c.load-avg > c.Config.ImbalanceThreshold
	if !over {
		return
	}
	excess := c.load - avg
	// Location policy: a node about as far below the average as we are
	// above it, so both converge to the average after the move.
	var best *peerInfo
	bestScore := 1e18
	for _, addr := range c.peerAddrs() {
		p := c.peers[addr]
		if p.state != PeerAlive || p.load >= avg {
			continue
		}
		score := abs(excess - (avg - p.load))
		if score < bestScore {
			bestScore = score
			best = p
		}
	}
	if best == nil {
		return
	}
	if c.selectProcess(excess) == nil {
		return // nothing suitable to move
	}
	c.propose(best.addr)
}

// considerConsolidate drains a lightly loaded node onto the busiest peer
// that still has headroom (power-management mode).
func (c *Conductor) considerConsolidate() {
	if c.load >= c.Config.LowThreshold || c.Node.NumProcesses() == 0 {
		return
	}
	var best *peerInfo
	for _, addr := range c.peerAddrs() {
		p := c.peers[addr]
		if p.state != PeerAlive || p.load+c.load > c.Config.HighThreshold {
			continue
		}
		if best == nil || p.load > best.load {
			best = p
		}
	}
	if best == nil {
		return
	}
	c.propose(best.addr)
}

// propose sends a transfer proposal. The wire message carries the
// rebalance-decision span's TraceContext (zeros when unobserved), so
// the receiver's reservation span — and, transitively, the whole
// migration that may follow — parents into this decision.
func (c *Conductor) propose(to netsim.Addr) {
	c.nextSeq++
	c.state = stateSending
	c.reserveSeq = c.nextSeq
	c.reserveAt = c.now()
	ctx := c.rebalanceStart(to)
	msg := make([]byte, 29)
	msg[0] = opPropose
	binary.BigEndian.PutUint32(msg[1:], c.nextSeq)
	binary.BigEndian.PutUint64(msg[5:], uint64(c.load*1e6))
	binary.BigEndian.PutUint64(msg[13:], ctx.Trace)
	binary.BigEndian.PutUint64(msg[21:], ctx.Span)
	c.send(to, msg)
	// Proposal timeout. The extLocked guard keeps a stale timeout from
	// clearing a slot the control plane has since acquired (the seq is
	// not advanced by TryAcquireMigration).
	seq := c.nextSeq
	c.Node.Sched.After(3*c.Config.Period, "cond.propose-timeout", func() {
		if c.state == stateSending && c.reserveSeq == seq && !c.extLocked {
			c.state = stateIdle
			c.rebalanceEnd("timeout")
		}
	})
}

// TryAcquireMigration claims the conductor's one-migration-at-a-time
// slot for an external driver (the control plane's node agent). While
// held, the conductor makes no balancing proposals and rejects inbound
// ones — exactly as if its own migration were in flight. Returns false
// when the slot is busy (a conductor-initiated transfer or reservation
// is active, or another external driver holds it).
func (c *Conductor) TryAcquireMigration() bool {
	if c.state != stateIdle {
		return false
	}
	c.state = stateSending
	c.extLocked = true
	return true
}

// ReleaseMigration frees the slot claimed by TryAcquireMigration. It
// must be called synchronously from the migration's done callback —
// including the early-abort path that never reached Freeze — so the
// conductor can balance again the same instant, not at its next tick.
// Releasing a slot not externally held is a no-op.
func (c *Conductor) ReleaseMigration() {
	if !c.extLocked {
		return
	}
	c.extLocked = false
	if c.state == stateSending {
		c.state = stateIdle
	}
}

// MigrationSlotFree reports whether the migration slot is idle (tests
// and the agent's admission check).
func (c *Conductor) MigrationSlotFree() bool { return c.state == stateIdle }

// selectProcess applies the selection policy of §IV-C: the process whose
// CPU consumption is closest to the local excess over the cluster
// average.
func (c *Conductor) selectProcess(excess float64) *proc.Process {
	desired := excess * c.Node.Cores
	var best *proc.Process
	bestScore := 1e18
	for _, p := range c.Node.Processes() {
		if p.State != proc.ProcRunning || p.CPUDemand <= 0 {
			continue
		}
		score := abs(p.CPUDemand - desired)
		if score < bestScore {
			bestScore = score
			best = p
		}
	}
	return best
}

func (c *Conductor) serve() {
	for {
		dg, ok := c.sock.Recv()
		if !ok {
			return
		}
		if len(dg.Payload) == 0 {
			continue
		}
		from := dg.SrcIP
		switch dg.Payload[0] {
		case opDiscover:
			c.notePeer(from, -1)
			c.send(from, loadMsg(opDiscoverReply, c.load))
		case opDiscoverReply, opHeartbeat:
			if len(dg.Payload) >= 9 {
				c.notePeer(from, float64(binary.BigEndian.Uint64(dg.Payload[1:]))/1e6)
			}
		case opPropose:
			c.handlePropose(from, dg.Payload)
		case opAccept:
			c.handleAccept(from, dg.Payload)
		case opReject:
			if c.state == stateSending {
				c.state = stateIdle
				c.Events = append(c.Events, Event{At: c.now(), Kind: "reject", Peer: from})
				c.rebalanceEnd("rejected")
			}
		case opDone:
			// Sender finished delivering into us; calm down.
			if c.state == stateReceiving {
				c.state = stateIdle
				c.calmUntil = c.now() + c.Config.CalmDown
				c.reserveEnd("done")
			}
		case opRelease:
			if c.state == stateReceiving {
				c.state = stateIdle
				c.reserveEnd("released")
			}
		case opOwner:
			if name, ep, seq, err := decodeOwnerMsg(dg.Payload); err == nil {
				c.handleOwner(from, name, ep, seq)
			}
		case opClaim:
			if name, ep, seq, err := decodeOwnerMsg(dg.Payload); err == nil {
				c.handleClaim(from, name, ep, seq)
			}
		}
	}
}

func (c *Conductor) notePeer(addr netsim.Addr, load float64) {
	p := c.peers[addr]
	if p == nil {
		p = &peerInfo{addr: addr}
		c.peers[addr] = p
	}
	if load >= 0 {
		p.load = load
	}
	p.lastSeen = c.now()
	if p.state != PeerAlive {
		// Revival: the detector trusts the peer again (a flap, or a
		// partition healing). Failover decisions taken in between stand;
		// epochs sort out who serves.
		if p.state == PeerDead {
			c.Events = append(c.Events, Event{At: c.now(), Kind: "revived", Peer: addr})
			c.detectorFlip("revived", addr)
		}
		p.state = PeerAlive
	}
	if n := len(c.peers); n > c.maxPeersSeen {
		c.maxPeersSeen = n
	}
}

// handlePropose runs the receiver side of the transfer policy: accept at
// most one migration at a time (two-phase commit, §IV-A), reject while
// calming down or already migrating.
func (c *Conductor) handlePropose(from netsim.Addr, payload []byte) {
	if len(payload) < 13 {
		return
	}
	seq := binary.BigEndian.Uint32(payload[1:])
	if c.state != stateIdle || c.now() < c.calmUntil {
		c.send(from, seqMsg(opReject, seq))
		return
	}
	var ctx obs.TraceContext
	if len(payload) >= 29 {
		ctx = obs.TraceContext{
			Trace: binary.BigEndian.Uint64(payload[13:]),
			Span:  binary.BigEndian.Uint64(payload[21:]),
		}
	}
	c.state = stateReceiving
	c.reserveAt = c.now()
	c.reserveStart(from, ctx)
	c.send(from, seqMsg(opAccept, seq))
}

func (c *Conductor) handleAccept(from netsim.Addr, payload []byte) {
	if len(payload) < 5 || c.state != stateSending {
		return
	}
	if binary.BigEndian.Uint32(payload[1:]) != c.reserveSeq {
		return
	}
	avg := c.ClusterAverage()
	p := c.selectProcess(c.load - avg)
	if p == nil {
		c.send(from, seqMsg(opRelease, c.reserveSeq))
		c.state = stateIdle
		c.rebalanceEnd("released")
		return
	}
	pid := p.PID
	// The migration parents into the rebalance-decision span: the whole
	// end-to-end trace — source phases, destination restore — hangs off
	// the conductor decision that caused it.
	c.balSpan.SetInt("pid", int64(pid))
	c.Mig.MigrateTraced(p, from, c.balSpan.Context(), func(m *migration.Metrics, err error) {
		if err != nil {
			// Aborted migration: the process rolled back here, nothing
			// arrived at the peer. Release the peer's reservation
			// (opRelease clears it without the post-receive calm-down)
			// and calm down locally so a flapping destination is not
			// immediately re-proposed to.
			c.Events = append(c.Events, Event{At: c.now(), Kind: "abort", Peer: from, PID: pid, Load: c.load, Err: err.Error()})
			c.send(from, seqMsg(opRelease, c.reserveSeq))
			c.state = stateIdle
			c.calmUntil = c.now() + c.Config.CalmDown
			c.rebalanceEnd("aborted")
			return
		}
		c.Migrations++
		c.Events = append(c.Events, Event{At: c.now(), Kind: "migrate-out", Peer: from, PID: pid, Load: c.load})
		c.send(from, seqMsg(opDone, c.reserveSeq))
		c.state = stateIdle
		c.calmUntil = c.now() + c.Config.CalmDown
		c.rebalanceEnd("done")
	})
}

// Drain gracefully evacuates the node ("machines may join and leave at
// any time", §IV): every running process is migrated to the live peer
// with the lowest known load, one after another, and done fires with the
// number of processes moved and the first error if any. The conductor
// stops making its own balancing decisions while draining.
func (c *Conductor) Drain(done func(moved int, err error)) {
	c.state = stateSending // block the balancing loop
	moved := 0
	var step func()
	step = func() {
		procs := c.Node.Processes()
		var victim *proc.Process
		for _, p := range procs {
			if p.State == proc.ProcRunning {
				victim = p
				break
			}
		}
		if victim == nil {
			c.state = stateIdle
			if done != nil {
				done(moved, nil)
			}
			return
		}
		var best *peerInfo
		for _, addr := range c.peerAddrs() {
			p := c.peers[addr]
			if p.state != PeerAlive {
				continue
			}
			if best == nil || p.load < best.load {
				best = p
			}
		}
		if best == nil {
			c.state = stateIdle
			if done != nil {
				done(moved, fmt.Errorf("cond: no peers to drain to"))
			}
			return
		}
		pid := victim.PID
		c.Mig.Migrate(victim, best.addr, func(m *migration.Metrics, err error) {
			if err != nil {
				c.state = stateIdle
				if done != nil {
					done(moved, err)
				}
				return
			}
			moved++
			c.Events = append(c.Events, Event{At: c.now(), Kind: "drain", Peer: best.addr, PID: pid})
			step()
		})
	}
	step()
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
