package lb

import (
	"encoding/binary"
	"errors"
	"sort"

	"dvemig/internal/migration"
	"dvemig/internal/netsim"
	"dvemig/internal/obs"
	"dvemig/internal/simtime"
)

// Detector-driven failover (layered on the failure detector in
// conductor.go). Each conductor may be wired to a standby daemon via
// EnableFailover; owners register their services with AnnounceOwnership
// so every advert carries the service's ownership epoch. When the
// detector confirms a peer dead, conductors holding checkpoint images
// from that peer broadcast claims and run a short election: the claim
// with the freshest image — (epoch, seq), lower address breaking ties —
// wins and activates the image under a freshly minted epoch. The new
// owner's adverts then fence any stale serving state cluster-wide: a
// healed old owner that hears a higher epoch dismantles its sockets,
// capture filters and translation rules without emitting a packet.
//
// Two safety rails close the remaining split-brain windows:
//
//   - Quorum gate: a claimant that can see no peers of a ≥3-node
//     cluster refuses to activate — it must assume it is the one
//     partitioned off.
//   - Self-fencing: an owner that loses sight of every peer suspends
//     its services (loops stopped, sockets unhashed, state intact); on
//     heal it waits ResumeGrace for a higher-epoch owner to speak up
//     before resuming. In a two-node world this is what makes the
//     survivor's lone activation safe.

// ownership tracks one service this conductor's node currently serves.
type ownership struct {
	epoch     uint64
	guardian  *migration.Guardian
	since     simtime.Time
	suspended bool
	resume    *simtime.Event
}

// claim is a pending failover election for a dead owner's service.
type claim struct {
	name  string
	ep    uint64 // freshness of our stored image
	seq   uint64
	timer *simtime.Event

	// at/span are the election's observability anchors: the claim
	// broadcast time and the claim-to-outcome span (nil when the plane
	// is disabled).
	at   simtime.Time
	span *obs.Span
}

// EnableFailover wires a standby daemon into the conductor so the
// failure detector can drive activations of its stored images.
func (c *Conductor) EnableFailover(sb *migration.Standby) { c.standby = sb }

// AnnounceOwnership registers that this node serves the named service,
// minting an ownership epoch if none exists yet, stamping it into the
// service's guardian (nil for unguarded services) so shipped images
// carry it, and broadcasting an ownership advert. Returns the epoch.
func (c *Conductor) AnnounceOwnership(name string, g *migration.Guardian) uint64 {
	ep := c.Mig.Epochs.Current(name)
	if ep == 0 {
		ep = c.Mig.Epochs.Bump(name)
	}
	if g != nil {
		g.Epoch = ep
		if c.Obs != nil && g.Span == nil {
			gs := c.Obs.Trace.Start(c.Node.Name, "guard")
			gs.SetAttr("service", name)
			gs.SetInt("epoch", int64(ep))
			g.Span = gs
		}
	}
	c.owned[name] = &ownership{epoch: ep, guardian: g, since: c.now()}
	c.broadcast(encodeOwnerMsg(opOwner, name, ep, 0))
	return ep
}

// OwnedServices lists the services this conductor serves, sorted.
func (c *Conductor) OwnedServices() []string { return c.ownedNames() }

// OwnershipEpoch reports the epoch a local ownership runs under, and
// whether the service is currently suspended by self-fencing. Zero
// epoch means the service is not owned here.
func (c *Conductor) OwnershipEpoch(name string) (ep uint64, suspended bool) {
	own := c.owned[name]
	if own == nil {
		return 0, false
	}
	return own.epoch, own.suspended
}

// advertiseOwnership re-broadcasts every live (non-suspended) ownership
// each tick so healed nodes and latecomers learn who serves what under
// which epoch. A suspended owner stays mute: it cannot prove it was not
// superseded while isolated.
func (c *Conductor) advertiseOwnership() {
	for _, name := range c.ownedNames() {
		own := c.owned[name]
		if own.suspended {
			continue
		}
		c.broadcast(encodeOwnerMsg(opOwner, name, own.epoch, 0))
	}
}

// onPeerDead starts a failover election for every service whose latest
// standby image came from the dead node.
func (c *Conductor) onPeerDead(addr netsim.Addr) {
	if c.standby == nil {
		return
	}
	for _, name := range c.standby.ImagesFrom(addr) {
		c.startClaim(name)
	}
}

// startClaim opens the election window for a service: broadcast our
// image's freshness, wait ClaimWait for a fresher competing claim or a
// live owner's defence, then activate.
func (c *Conductor) startClaim(name string) {
	if c.owned[name] != nil || c.claims[name] != nil {
		return
	}
	ep, seq, _, ok := c.standby.ImageInfo(name)
	if !ok || c.Mig.Epochs.Stale(name, ep) {
		return // no image, or a fresher owner was already observed
	}
	cl := &claim{name: name, ep: ep, seq: seq, at: c.now()}
	c.claims[name] = cl
	c.Events = append(c.Events, Event{At: c.now(), Kind: "claim", Name: name})
	c.electionStart(cl)
	c.broadcast(encodeOwnerMsg(opClaim, name, ep, seq))
	cl.timer = c.Node.Sched.After(c.claimWait(), "cond.claim", func() {
		cl.timer = nil // fired; the event pointer is dead
		if c.claims[name] != cl {
			return
		}
		delete(c.claims, name)
		c.activate(name, cl)
	})
}

// activate restarts the claimed service from the local standby image
// under a freshly minted epoch and advertises the new ownership. cl is
// the won election (nil when activation is driven outside an election).
func (c *Conductor) activate(name string, cl *claim) {
	// Quorum gate: seeing no peers of a cluster that has held ≥3 nodes
	// means we are the ones cut off — the majority side will elect its
	// own claimant. (In a two-node world the survivor has no witnesses
	// by construction; the old owner self-suspends on isolation, so the
	// lone activation is safe.)
	if c.aliveCount() == 0 && c.maxPeersSeen >= 2 {
		c.electionEnd(cl, "refused-quorum")
		return
	}
	imgEp, _, _, ok := c.standby.ImageInfo(name)
	if !ok || c.Mig.Epochs.Stale(name, imgEp) {
		c.electionEnd(cl, "refused-stale")
		return
	}
	c.Mig.Epochs.Observe(name, imgEp)
	ep := c.Mig.Epochs.Bump(name)
	droppedBefore := c.standby.DroppedDatagrams
	p, err := c.standby.Activate(name)
	if err != nil {
		c.electionEnd(cl, "refused-restore")
		return
	}
	c.owned[name] = &ownership{epoch: ep, since: c.now()}
	c.Failovers++
	c.Events = append(c.Events, Event{At: c.now(), Kind: "activate", Name: name, PID: p.PID})
	c.electionEnd(cl, "won")
	c.noteActivation(name, ep, p.PID, droppedBefore, cl)
	c.broadcast(encodeOwnerMsg(opOwner, name, ep, 0))
}

// handleOwner processes an ownership advertisement.
func (c *Conductor) handleOwner(from netsim.Addr, name string, ep, seq uint64) {
	_ = seq
	// A fresh-enough advert settles any pending election here.
	if cl := c.claims[name]; cl != nil && ep >= cl.ep {
		c.cancelClaim(name)
	}
	if own := c.owned[name]; own != nil {
		if ep > own.epoch {
			// Superseded: a standby took over while we were away.
			c.fenceOwned(name, ep, from)
		} else if ep < own.epoch {
			// Defend: the sender advertises from a stale epoch; our
			// unicast advert makes it fence itself.
			c.send(from, encodeOwnerMsg(opOwner, name, own.epoch, 0))
		}
		return
	}
	// Not an owner: ratchet the watermark and dismantle any stale local
	// serving state (a healed node that lost ownership while isolated).
	c.Mig.FenceService(name, ep)
}

// fenceOwned dismantles a local ownership superseded by a higher epoch.
func (c *Conductor) fenceOwned(name string, ep uint64, by netsim.Addr) {
	own := c.owned[name]
	if own == nil {
		return
	}
	if own.guardian != nil {
		own.guardian.Stop()
	}
	if own.resume != nil {
		c.Node.Sched.Cancel(own.resume)
		own.resume = nil
	}
	delete(c.owned, name)
	c.Mig.FenceService(name, ep)
	c.Events = append(c.Events, Event{At: c.now(), Kind: "fence", Peer: by, Name: name})
	c.noteEvent("fence", name)
}

// handleClaim processes a failover claim broadcast by a peer that
// believes the named service's owner died.
func (c *Conductor) handleClaim(from netsim.Addr, name string, ep, seq uint64) {
	// A live owner defends its service; the claimant cancels on any
	// advert at or above its image's epoch. A suspended owner stays
	// quiet — it cannot prove it was not superseded.
	if own := c.owned[name]; own != nil {
		if !own.suspended && own.epoch >= ep {
			c.send(from, encodeOwnerMsg(opOwner, name, own.epoch, 0))
		}
		return
	}
	if cl := c.claims[name]; cl != nil {
		if claimBeats(ep, seq, from, cl.ep, cl.seq, c.Node.LocalIP) {
			// Outbid: their image is fresher.
			c.cancelClaim(name)
		} else {
			// Ours is fresher; resend it unicast in case our original
			// broadcast crossed theirs mid-flight.
			c.send(from, encodeOwnerMsg(opClaim, name, cl.ep, cl.seq))
		}
		return
	}
	// No pending claim here, but if our stored image beats theirs we
	// counter-claim — without this, a claim racing ahead of our own
	// detector would activate a staler image unopposed.
	if c.standby == nil {
		return
	}
	myEp, mySeq, _, ok := c.standby.ImageInfo(name)
	if ok && !c.Mig.Epochs.Stale(name, myEp) &&
		claimBeats(myEp, mySeq, c.Node.LocalIP, ep, seq, from) {
		c.startClaim(name)
	}
}

func (c *Conductor) cancelClaim(name string) {
	cl := c.claims[name]
	if cl == nil {
		return
	}
	if cl.timer != nil {
		c.Node.Sched.Cancel(cl.timer)
		cl.timer = nil
	}
	delete(c.claims, name)
	c.electionEnd(cl, "canceled")
}

// checkIsolation self-fences an owner whose every peer is confirmed
// dead: without witnesses it cannot distinguish its own NIC failure
// from everyone else dying, and in the broadcast cluster serving blind
// risks double ownership the moment a standby on the majority side
// activates. Mere suspicion does not suspend — a blip shorter than
// PeerTimeout never interrupts service — and the ordering stays safe
// because the owner confirms its peers dead (and goes mute) at
// PeerTimeout, while any remote claimant activates no earlier than
// PeerTimeout+ClaimWait. On heal each suspended service resumes after
// ResumeGrace unless a higher-epoch owner speaks up in the meantime.
func (c *Conductor) checkIsolation() {
	if c.PeerCount() == 0 && c.maxPeersSeen >= 1 {
		if !c.isolated {
			c.isolated = true
			c.isolatedSince = c.now()
			for _, name := range c.ownedNames() {
				own := c.owned[name]
				// Ownership acquired during the isolation itself (the
				// two-node survivor's activation) is exempt.
				if own.suspended || own.since >= c.isolatedSince {
					continue
				}
				own.suspended = true
				c.Mig.SuspendService(name)
				c.Events = append(c.Events, Event{At: c.now(), Kind: "suspend", Name: name})
				c.noteEvent("suspend", name)
			}
		}
		return
	}
	if c.aliveCount() > 0 && c.isolated {
		c.isolated = false
		for _, name := range c.ownedNames() {
			own := c.owned[name]
			if !own.suspended || own.resume != nil {
				continue
			}
			n, o := name, own
			o.resume = c.Node.Sched.After(c.resumeGrace(), "cond.resume", func() {
				o.resume = nil
				if c.owned[n] != o || !o.suspended {
					return
				}
				o.suspended = false
				c.Mig.ResumeService(n)
				c.Events = append(c.Events, Event{At: c.now(), Kind: "resume", Name: n})
				c.noteEvent("resume", n)
				c.broadcast(encodeOwnerMsg(opOwner, n, o.epoch, 0))
			})
		}
	}
}

// claimBeats orders competing claims: higher epoch, then higher seq,
// then lower address.
func claimBeats(aEp, aSeq uint64, aAddr netsim.Addr, bEp, bSeq uint64, bAddr netsim.Addr) bool {
	if aEp != bEp {
		return aEp > bEp
	}
	if aSeq != bSeq {
		return aSeq > bSeq
	}
	return aAddr < bAddr
}

// Derived failover defaults (zero config values fall back here).
func (c *Conductor) claimWait() simtime.Duration {
	if c.Config.ClaimWait > 0 {
		return c.Config.ClaimWait
	}
	return 2 * c.Config.Period
}

func (c *Conductor) resumeGrace() simtime.Duration {
	if c.Config.ResumeGrace > 0 {
		return c.Config.ResumeGrace
	}
	return 3 * c.Config.Period
}

// broadcast sends a message to every known peer — dead ones included,
// since a healed node must hear adverts to fence itself — in sorted
// address order for deterministic packet traces.
func (c *Conductor) broadcast(msg []byte) {
	for _, addr := range c.peerAddrs() {
		c.send(addr, msg)
	}
}

// peerAddrs lists every known peer address in sorted order.
func (c *Conductor) peerAddrs() []netsim.Addr {
	out := make([]netsim.Addr, 0, len(c.peers))
	for addr := range c.peers {
		out = append(out, addr)
	}
	sortAddrs(out)
	return out
}

func (c *Conductor) ownedNames() []string {
	out := make([]string, 0, len(c.owned))
	for name := range c.owned {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

func sortAddrs(a []netsim.Addr) {
	sort.Slice(a, func(i, j int) bool { return a[i] < a[j] })
}

// Ownership/claim wire layout: [op][8B epoch][8B seq][name].
func encodeOwnerMsg(op byte, name string, ep, seq uint64) []byte {
	b := make([]byte, 17+len(name))
	b[0] = op
	binary.BigEndian.PutUint64(b[1:], ep)
	binary.BigEndian.PutUint64(b[9:], seq)
	copy(b[17:], name)
	return b
}

func decodeOwnerMsg(b []byte) (name string, ep, seq uint64, err error) {
	if len(b) < 17 {
		return "", 0, 0, errors.New("cond: short owner message")
	}
	return string(b[17:]), binary.BigEndian.Uint64(b[1:]), binary.BigEndian.Uint64(b[9:]), nil
}
