package lb

import (
	"testing"
	"time"

	"dvemig/internal/faults"
	"dvemig/internal/migration"
	"dvemig/internal/netsim"
	"dvemig/internal/netstack"
	"dvemig/internal/proc"
	"dvemig/internal/simtime"
)

// announceService spawns a guarded counter service on the owner node:
// a process ticking a counter into page 0 and serving a UDP port on the
// cluster IP, checkpointed every interval to a standby on the buddy
// node, its ownership announced through the owner's conductor.
func announceService(t *testing.T, e *lbEnv, owner, buddy int, name string,
	interval simtime.Duration) (*proc.Process, *migration.Guardian) {
	t.Helper()
	n := e.c.Nodes[owner]
	p := n.Spawn(name, 1)
	v := p.AS.Mmap(8*proc.PageSize, "rw-")
	p.Tick = func(self *proc.Process) {
		cur, _ := self.AS.Read(v.Start, 8)
		x := uint64(cur[0]) | uint64(cur[1])<<8
		x++
		_ = self.AS.Write(v.Start, []byte{byte(x), byte(x >> 8)})
	}
	us := netstack.NewUDPSocket(n.Stack)
	if err := us.Bind(e.c.ClusterIP, 5151); err != nil {
		t.Fatal(err)
	}
	p.FDs.Install(&proc.UDPFile{Sock: us})
	n.StartLoop(p, 50*time.Millisecond)
	g, err := migration.NewGuardian(p, e.c.Nodes[buddy].LocalIP, interval)
	if err != nil {
		t.Fatal(err)
	}
	e.conductors[owner].AnnounceOwnership(name, g)
	return p, g
}

func enableStandby(t *testing.T, e *lbEnv, i int) *migration.Standby {
	t.Helper()
	sb, err := migration.NewStandby(e.c.Nodes[i])
	if err != nil {
		t.Fatal(err)
	}
	e.conductors[i].EnableFailover(sb)
	return sb
}

func findByName(n *proc.Node, name string) *proc.Process {
	for _, p := range n.Processes() {
		if p.Name == name && p.State == proc.ProcRunning {
			return p
		}
	}
	return nil
}

func counterValue(t *testing.T, p *proc.Process) uint64 {
	t.Helper()
	v := p.AS.VMAs()[0]
	cur, err := p.AS.Read(v.Start, 8)
	if err != nil {
		t.Fatal(err)
	}
	return uint64(cur[0]) | uint64(cur[1])<<8
}

func countEvents(cd *Conductor, kind string) int {
	n := 0
	for _, ev := range cd.Events {
		if ev.Kind == kind {
			n++
		}
	}
	return n
}

// TestDetectorStateTransitions walks one peer through the detector:
// silence shorter than SuspectAfter leaves it alive; past SuspectAfter
// it turns suspect (and stops receiving migrations); a heartbeat
// revives it; silence past PeerTimeout confirms it dead.
func TestDetectorStateTransitions(t *testing.T) {
	e := newLBEnv(t, 3, DefaultConfig()) // Period 1s → suspect 2s, dead 4s
	inj := faults.NewInjector(e.c.Sched, 1)
	e.c.Sched.RunFor(3 * time.Second)
	victim := e.c.Nodes[2].LocalIP
	if e.conductors[0].PeerState(victim) != PeerAlive {
		t.Fatal("setup: peer not alive")
	}

	// A flap shorter than SuspectAfter: never even suspected. Windows
	// start mid-tick (+200ms) so they never race a heartbeat boundary.
	now := e.c.Sched.Now()
	inj.DownFor(e.c.Nodes[2].LocalNIC, now+200*1e6, now+1700*1e6)
	e.c.Sched.RunFor(4 * time.Second)
	if got := countEvents(e.conductors[0], "suspect"); got != 0 {
		t.Fatalf("short flap raised %d suspicions", got)
	}

	// Silence past SuspectAfter but healed before PeerTimeout: suspected,
	// revived, never declared dead.
	now = e.c.Sched.Now()
	inj.DownFor(e.c.Nodes[2].LocalNIC, now+200*1e6, now+3700*1e6)
	e.c.Sched.RunFor(3300 * time.Millisecond)
	if e.conductors[0].PeerState(victim) != PeerSuspect {
		t.Fatalf("state = %v, want suspect", e.conductors[0].PeerState(victim))
	}
	e.c.Sched.RunFor(3 * time.Second)
	if e.conductors[0].PeerState(victim) != PeerAlive {
		t.Fatal("suspect peer not revived by heartbeat")
	}
	if countEvents(e.conductors[0], "peer-dead") != 0 {
		t.Fatal("flapping peer declared dead")
	}

	// Real death: silence past PeerTimeout.
	e.conductors[2].Stop()
	e.c.RemoveNode(e.c.Nodes[2])
	e.c.Sched.RunFor(6 * time.Second)
	if e.conductors[0].PeerState(victim) != PeerDead {
		t.Fatalf("state = %v, want dead", e.conductors[0].PeerState(victim))
	}
	if countEvents(e.conductors[0], "peer-dead") != 1 {
		t.Fatal("no peer-dead event")
	}
	if e.conductors[0].PeerCount() != 1 {
		t.Fatalf("PeerCount = %d, want 1", e.conductors[0].PeerCount())
	}
	// The dead entry is retained (still heartbeated) and GC'd only after
	// the retention window.
	if e.conductors[0].PeerState(victim) == PeerUnknown {
		t.Fatal("dead peer GC'd before retention window")
	}
}

// TestSuspectPeerExcludedFromPolicies: the transfer/location policies
// must not pick a suspect destination.
func TestSuspectPeerExcludedFromPolicies(t *testing.T) {
	cfg := DefaultConfig()
	e := newLBEnv(t, 2, cfg)
	e.c.Sched.RunFor(2 * time.Second)
	cd := e.conductors[0]
	spawnWorker(e.c.Nodes[0], "w", 1.9)
	cd.load = 0.95
	for _, p := range cd.peers {
		p.state, p.load = PeerSuspect, 0
	}
	cd.considerBalance()
	if cd.state != stateIdle {
		t.Fatal("balancer proposed to a suspect peer")
	}
	// Control: the same situation with an alive peer does propose.
	for _, p := range cd.peers {
		p.state = PeerAlive
	}
	cd.considerBalance()
	if cd.state != stateSending {
		t.Fatal("control: alive peer not proposed to")
	}
}

// TestDetectorDrivenFailover is the tentpole's end-to-end path: the
// owner crashes, the detector confirms it dead, the buddy holding its
// images claims, wins the (unopposed) election, activates under a
// bumped epoch and advertises the new ownership.
func TestDetectorDrivenFailover(t *testing.T) {
	e := newLBEnv(t, 3, DefaultConfig())
	enableStandby(t, e, 1)
	p, _ := announceService(t, e, 0, 1, "counter_svc", 500*1e6)
	e.c.Sched.RunFor(3 * time.Second)
	before := counterValue(t, p)
	if before == 0 {
		t.Fatal("service never ran")
	}

	e.c.Nodes[0].Fail(e.c)
	e.c.Sched.RunFor(12 * time.Second)

	cd1 := e.conductors[1]
	if cd1.Failovers != 1 {
		t.Fatalf("Failovers = %d, want 1", cd1.Failovers)
	}
	if countEvents(cd1, "claim") == 0 || countEvents(cd1, "activate") == 0 {
		t.Fatal("claim/activate events missing")
	}
	q := findByName(e.c.Nodes[1], "counter_svc")
	if q == nil {
		t.Fatal("service not restarted on the buddy")
	}
	// The witness without an image never activates.
	if e.conductors[2].Failovers != 0 {
		t.Fatal("imageless witness activated")
	}
	// Epoch bumped past the image's: the owner announced under epoch 1,
	// so the failed-over service runs under ≥2.
	ep, suspended := cd1.OwnershipEpoch("counter_svc")
	if ep < 2 || suspended {
		t.Fatalf("new ownership epoch=%d suspended=%v", ep, suspended)
	}
	// The service keeps making progress on the new owner.
	restored := counterValue(t, q)
	e.c.Sched.RunFor(2 * time.Second)
	if counterValue(t, q) <= restored {
		t.Fatal("restarted service does not run")
	}
	// Exactly one running owner cluster-wide.
	owners := 0
	for _, n := range e.c.Nodes {
		if findByName(n, "counter_svc") != nil {
			owners++
		}
	}
	if owners != 1 {
		t.Fatalf("%d running owners", owners)
	}
}

// TestClaimElectionFreshestImageWins: two standbys hold images of the
// same service at the same epoch but different checkpoint seqs. Both
// claim when the owner dies; the staler claimant must yield.
func TestClaimElectionFreshestImageWins(t *testing.T) {
	e := newLBEnv(t, 3, DefaultConfig())
	enableStandby(t, e, 1)
	enableStandby(t, e, 2)
	// Fast guardian to node2's standby... no: node1 gets the fast one so
	// the winner is not just the lower address.
	p, g1 := announceService(t, e, 0, 1, "counter_svc", 400*1e6)
	g2, err := migration.NewGuardian(p, e.c.Nodes[2].LocalIP, 1100*1e6)
	if err != nil {
		t.Fatal(err)
	}
	g2.Epoch = g1.Epoch // both ship under the announced epoch
	e.c.Sched.RunFor(5 * time.Second)

	e.c.Nodes[0].Fail(e.c)
	e.c.Sched.RunFor(15 * time.Second)

	if e.conductors[1].Failovers != 1 || e.conductors[2].Failovers != 0 {
		t.Fatalf("failovers = %d/%d, want the fresher image (node2's standby lost: seq gap)",
			e.conductors[1].Failovers, e.conductors[2].Failovers)
	}
	if countEvents(e.conductors[2], "claim") == 0 {
		t.Fatal("losing standby never claimed")
	}
	owners := 0
	for _, n := range e.c.Nodes {
		if findByName(n, "counter_svc") != nil {
			owners++
		}
	}
	if owners != 1 {
		t.Fatalf("%d running owners after election", owners)
	}
}

// TestFlappingOwnerTriggersNoFailover: the owner's link drops for a
// window past SuspectAfter but short of PeerTimeout. The detector
// suspects it; nobody claims, nobody activates, and the owner never
// self-suspends (its own view of the peers is merely suspect too).
func TestFlappingOwnerTriggersNoFailover(t *testing.T) {
	e := newLBEnv(t, 3, DefaultConfig())
	inj := faults.NewInjector(e.c.Sched, 1)
	enableStandby(t, e, 1)
	p, _ := announceService(t, e, 0, 1, "counter_svc", 500*1e6)
	e.c.Sched.RunFor(3 * time.Second)

	now := e.c.Sched.Now()
	inj.DownFor(e.c.Nodes[0].LocalNIC, now, now+3*1e9) // suspect at 2s, dead at 4s
	e.c.Sched.RunFor(10 * time.Second)

	for i, cd := range e.conductors {
		if n := countEvents(cd, "claim") + countEvents(cd, "activate"); n != 0 {
			t.Fatalf("conductor %d ran a failover for a flap (%d events)", i, n)
		}
	}
	if countEvents(e.conductors[0], "suspend") != 0 {
		t.Fatal("owner self-suspended during a flap shorter than PeerTimeout")
	}
	if findByName(e.c.Nodes[0], "counter_svc") != p {
		t.Fatal("service disturbed by the flap")
	}
	before := counterValue(t, p)
	e.c.Sched.RunFor(time.Second)
	if counterValue(t, p) <= before {
		t.Fatal("service stopped ticking")
	}
}

// TestIsolatedOwnerSuspendsAndResumes: an owner that loses sight of
// every peer goes mute (loop stopped, sockets unhashed) and resumes
// only after the heal grace passes with no higher-epoch owner heard.
func TestIsolatedOwnerSuspendsAndResumes(t *testing.T) {
	e := newLBEnv(t, 2, DefaultConfig())
	inj := faults.NewInjector(e.c.Sched, 1)
	p, _ := announceService(t, e, 0, 1, "counter_svc", 500*1e6)
	e.c.Sched.RunFor(3 * time.Second)

	now := e.c.Sched.Now()
	inj.DownFor(e.c.Nodes[0].LocalNIC, now, now+10*1e9)
	e.c.Sched.RunFor(8 * time.Second)
	if countEvents(e.conductors[0], "suspend") != 1 {
		t.Fatal("isolated owner did not suspend")
	}
	if _, suspended := e.conductors[0].OwnershipEpoch("counter_svc"); !suspended {
		t.Fatal("ownership not marked suspended")
	}
	frozen := counterValue(t, p)
	e.c.Sched.RunFor(time.Second)
	if counterValue(t, p) != frozen {
		t.Fatal("suspended service still ticking")
	}
	_, udp := p.Sockets()
	if len(udp) != 1 || !udp[0].Unhashed() {
		t.Fatal("suspended service's socket still hashed")
	}

	// Heal; nobody holds an image, so after ResumeGrace the owner
	// resumes exactly where it left off.
	e.c.Sched.RunFor(10 * time.Second)
	if countEvents(e.conductors[0], "resume") != 1 {
		t.Fatal("healed owner did not resume")
	}
	if _, suspended := e.conductors[0].OwnershipEpoch("counter_svc"); suspended {
		t.Fatal("ownership still suspended after resume")
	}
	if udp[0].Unhashed() {
		t.Fatal("socket not rehashed on resume")
	}
	after := counterValue(t, p)
	e.c.Sched.RunFor(time.Second)
	if counterValue(t, p) <= after {
		t.Fatal("resumed service does not tick")
	}
}

// TestHealedStaleOwnerIsFenced is the split-brain heal: the owner is
// partitioned long enough for the standby side to confirm it dead and
// activate under a higher epoch. When the partition heals, the old
// owner hears the new epoch and dismantles its copy instead of
// resuming — converging to exactly one owner.
func TestHealedStaleOwnerIsFenced(t *testing.T) {
	e := newLBEnv(t, 3, DefaultConfig())
	inj := faults.NewInjector(e.c.Sched, 1)
	enableStandby(t, e, 1)
	p, _ := announceService(t, e, 0, 1, "counter_svc", 500*1e6)
	e.c.Sched.RunFor(3 * time.Second)

	now := e.c.Sched.Now()
	inj.DownFor(e.c.Nodes[0].LocalNIC, now, now+14*1e9)
	e.c.Sched.RunFor(20 * time.Second)

	// The partitioned owner suspended, then got fenced on heal — it must
	// not have resumed.
	cd0 := e.conductors[0]
	if countEvents(cd0, "suspend") != 1 {
		t.Fatal("isolated owner did not suspend")
	}
	if countEvents(cd0, "fence") != 1 {
		t.Fatal("healed stale owner was not fenced")
	}
	if countEvents(cd0, "resume") != 0 {
		t.Fatal("stale owner resumed despite the higher epoch")
	}
	if ep, _ := cd0.OwnershipEpoch("counter_svc"); ep != 0 {
		t.Fatal("stale owner still thinks it owns the service")
	}
	if p.State == proc.ProcRunning {
		t.Fatal("fenced process still running")
	}
	// The standby side activated exactly once and serves alone.
	if e.conductors[1].Failovers != 1 {
		t.Fatalf("Failovers = %d, want 1", e.conductors[1].Failovers)
	}
	owners := 0
	for _, n := range e.c.Nodes {
		if findByName(n, "counter_svc") != nil {
			owners++
		}
	}
	if owners != 1 {
		t.Fatalf("%d running owners after heal", owners)
	}
	// The old owner's epoch table ratcheted to the new owner's epoch.
	newEp, _ := e.conductors[1].OwnershipEpoch("counter_svc")
	if got := e.migrators[0].Epochs.Current("counter_svc"); got < newEp {
		t.Fatalf("stale owner's watermark %d below new epoch %d", got, newEp)
	}
}

// TestClaimOrdering pins the election comparator: epoch before seq,
// seq before address, lower address breaking exact ties.
func TestClaimOrdering(t *testing.T) {
	cases := []struct {
		aEp, aSeq uint64
		aAddr     uint32
		bEp, bSeq uint64
		bAddr     uint32
		want      bool
	}{
		{2, 1, 9, 1, 99, 1, true},   // higher epoch beats any seq
		{1, 5, 9, 1, 3, 1, true},    // same epoch: higher seq
		{1, 5, 2, 1, 5, 9, true},    // exact tie: lower address
		{1, 5, 9, 1, 5, 2, false},   // exact tie: higher address loses
		{1, 2, 1, 2, 99, 99, false}, // lower epoch loses
	}
	for i, tc := range cases {
		got := claimBeats(tc.aEp, tc.aSeq, netsim.Addr(tc.aAddr), tc.bEp, tc.bSeq, netsim.Addr(tc.bAddr))
		if got != tc.want {
			t.Errorf("case %d: claimBeats = %v, want %v", i, got, tc.want)
		}
	}
}

// TestOwnerMsgRoundtrip pins the advert/claim wire format.
func TestOwnerMsgRoundtrip(t *testing.T) {
	b := encodeOwnerMsg(opClaim, "zone_serv", 7, 41)
	if b[0] != opClaim || len(b) != 17+len("zone_serv") {
		t.Fatalf("frame: op=%d len=%d", b[0], len(b))
	}
	name, ep, seq, err := decodeOwnerMsg(b)
	if err != nil || name != "zone_serv" || ep != 7 || seq != 41 {
		t.Fatalf("roundtrip: %q/%d/%d/%v", name, ep, seq, err)
	}
	if _, _, _, err := decodeOwnerMsg(b[:16]); err == nil {
		t.Fatal("short frame accepted")
	}
}
