package lb

import (
	"testing"
	"time"

	"dvemig/internal/migration"
	"dvemig/internal/netsim"
	"dvemig/internal/proc"
	"dvemig/internal/simtime"
)

// lbEnv wires a cluster with migrators and conductors on every node.
type lbEnv struct {
	c          *proc.Cluster
	migrators  []*migration.Migrator
	conductors []*Conductor
}

func newLBEnv(t *testing.T, nodes int, cfg Config) *lbEnv {
	t.Helper()
	e := &lbEnv{c: proc.NewCluster(simtime.NewScheduler(), nodes)}
	for _, n := range e.c.Nodes {
		m, err := migration.NewMigrator(n, migration.DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		e.migrators = append(e.migrators, m)
		cd, err := NewConductor(n, m, cfg)
		if err != nil {
			t.Fatal(err)
		}
		e.conductors = append(e.conductors, cd)
	}
	return e
}

// spawnWorker creates a migratable process with the given CPU demand.
func spawnWorker(n *proc.Node, name string, demand float64) *proc.Process {
	p := n.Spawn(name, 1)
	v := p.AS.Mmap(32*proc.PageSize, "rw-")
	for i := uint64(0); i < 8; i++ {
		p.AS.Write(v.Start+i*proc.PageSize, []byte{byte(i)})
	}
	p.CPUDemand = demand
	p.Tick = func(self *proc.Process) {
		self.AS.Touch(v.Start)
	}
	n.StartLoop(p, 50*time.Millisecond)
	return p
}

func TestDiscoveryFindsAllPeers(t *testing.T) {
	e := newLBEnv(t, 5, DefaultConfig())
	e.c.Sched.RunFor(3 * time.Second)
	for i, cd := range e.conductors {
		if cd.PeerCount() != 4 {
			t.Fatalf("conductor %d peers = %d, want 4", i, cd.PeerCount())
		}
	}
}

func TestHeartbeatPropagatesLoadAndAverage(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ImbalanceThreshold = 10 // never migrate in this test
	e := newLBEnv(t, 2, cfg)
	spawnWorker(e.c.Nodes[0], "w", 1.6) // load 0.8 on node1
	e.c.Sched.RunFor(10 * time.Second)
	// Node2's view of the average should be ~ (0.8+0)/2.
	avg := e.conductors[1].ClusterAverage()
	if avg < 0.3 || avg > 0.5 {
		t.Fatalf("cluster average = %v, want ≈0.4", avg)
	}
	if l := e.conductors[0].Load(); l < 0.7 {
		t.Fatalf("local load = %v, want ≈0.8", l)
	}
}

func TestPeerExpiryOnSilence(t *testing.T) {
	e := newLBEnv(t, 3, DefaultConfig())
	e.c.Sched.RunFor(3 * time.Second)
	if e.conductors[0].PeerCount() != 2 {
		t.Fatal("setup")
	}
	e.conductors[2].Stop()
	e.c.RemoveNode(e.c.Nodes[2])
	e.c.Sched.RunFor(10 * time.Second)
	if e.conductors[0].PeerCount() != 1 {
		t.Fatalf("dead peer not expired: %d", e.conductors[0].PeerCount())
	}
}

func TestBalanceMigratesFromHotToCold(t *testing.T) {
	cfg := DefaultConfig()
	cfg.CalmDown = 5e9
	e := newLBEnv(t, 3, cfg)
	// Node1: four workers ≈ 0.95 load; others idle.
	for i := 0; i < 4; i++ {
		spawnWorker(e.c.Nodes[0], "zone", 0.475)
	}
	e.c.Sched.RunFor(3 * time.Minute)
	n1 := e.c.Nodes[0].NumProcesses()
	n2 := e.c.Nodes[1].NumProcesses()
	n3 := e.c.Nodes[2].NumProcesses()
	if n1+n2+n3 != 4 {
		t.Fatalf("processes lost: %d+%d+%d", n1, n2, n3)
	}
	if n2+n3 < 2 {
		t.Fatalf("load not spread: node1=%d node2=%d node3=%d", n1, n2, n3)
	}
	if e.conductors[0].Migrations == 0 {
		t.Fatal("no migrations recorded")
	}
	// Loads converged: node1 no longer above average by the threshold.
	avg := e.conductors[0].ClusterAverage()
	if e.conductors[0].Load()-avg > cfg.ImbalanceThreshold+0.05 {
		t.Fatalf("node1 still imbalanced: load=%v avg=%v", e.conductors[0].Load(), avg)
	}
}

func TestReceiverAcceptsOneMigrationAtATime(t *testing.T) {
	cfg := DefaultConfig()
	e := newLBEnv(t, 2, cfg)
	e.c.Sched.RunFor(2 * time.Second)
	recv := e.conductors[1]
	// Simulate two concurrent proposals by invoking the handler directly.
	propose := func(seq uint32) []byte {
		b := append(seqMsg(opPropose, seq), make([]byte, 8)...)
		return b
	}
	recv.handlePropose(e.c.Nodes[0].LocalIP, propose(1))
	if recv.state != stateReceiving {
		t.Fatal("first proposal not accepted")
	}
	recv.handlePropose(e.c.Nodes[0].LocalIP, propose(2))
	if recv.state != stateReceiving {
		t.Fatal("state corrupted by second proposal")
	}
}

func TestCalmDownBlocksImmediateRemigration(t *testing.T) {
	cfg := DefaultConfig()
	cfg.CalmDown = time.Hour // effectively forever
	e := newLBEnv(t, 2, cfg)
	for i := 0; i < 4; i++ {
		spawnWorker(e.c.Nodes[0], "zone", 0.5)
	}
	e.c.Sched.RunFor(2 * time.Minute)
	if e.conductors[0].Migrations > 1 {
		t.Fatalf("calm-down ignored: %d migrations", e.conductors[0].Migrations)
	}
}

func TestSelectionPolicyPicksClosestProcess(t *testing.T) {
	e := newLBEnv(t, 2, DefaultConfig())
	n := e.c.Nodes[0]
	spawnWorker(n, "small", 0.1)
	mid := spawnWorker(n, "mid", 0.4)
	spawnWorker(n, "big", 0.9)
	got := e.conductors[0].selectProcess(0.2) // desired = 0.2*2 cores = 0.4
	if got != mid {
		t.Fatalf("selected %q, want mid", got.Name)
	}
	// Frozen processes are not eligible.
	mid.State = proc.ProcFrozen
	if e.conductors[0].selectProcess(0.2) == mid {
		t.Fatal("frozen process selected")
	}
}

func TestConsolidateModeDrainsLightNode(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Mode = ModeConsolidate
	cfg.CalmDown = 3e9
	e := newLBEnv(t, 2, cfg)
	// Node1 lightly loaded, node2 moderately loaded.
	spawnWorker(e.c.Nodes[0], "lonely", 0.2)
	spawnWorker(e.c.Nodes[1], "busy", 0.8)
	e.c.Sched.RunFor(2 * time.Minute)
	if e.c.Nodes[0].NumProcesses() != 0 {
		t.Fatalf("light node not drained: %d processes left", e.c.Nodes[0].NumProcesses())
	}
	if e.c.Nodes[1].NumProcesses() != 2 {
		t.Fatalf("busy node has %d processes, want 2", e.c.Nodes[1].NumProcesses())
	}
}

func TestLateJoinerIsDiscovered(t *testing.T) {
	cfg := DefaultConfig()
	e := newLBEnv(t, 2, cfg)
	e.c.Sched.RunFor(3 * time.Second)
	// A third node joins later; its scan finds the others and their
	// replies register it.
	n3 := e.c.AddNode("node3")
	m3, err := migration.NewMigrator(n3, migration.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	cd3, err := NewConductor(n3, m3, cfg)
	if err != nil {
		t.Fatal(err)
	}
	e.c.Sched.RunFor(3 * time.Second)
	if cd3.PeerCount() != 2 {
		t.Fatalf("late joiner peers = %d", cd3.PeerCount())
	}
	if e.conductors[0].PeerCount() != 2 {
		t.Fatalf("existing node did not learn about joiner: %d", e.conductors[0].PeerCount())
	}
}

func TestNoMigrationWhenBalanced(t *testing.T) {
	cfg := DefaultConfig()
	e := newLBEnv(t, 3, cfg)
	for _, n := range e.c.Nodes {
		spawnWorker(n, "even", 0.8)
	}
	e.c.Sched.RunFor(2 * time.Minute)
	total := 0
	for _, cd := range e.conductors {
		total += cd.Migrations
	}
	if total != 0 {
		t.Fatalf("balanced cluster migrated %d times", total)
	}
}

func TestDrainEvacuatesNode(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ImbalanceThreshold = 10 // disable autonomous balancing
	e := newLBEnv(t, 3, cfg)
	for i := 0; i < 3; i++ {
		spawnWorker(e.c.Nodes[0], "w", 0.2)
	}
	spawnWorker(e.c.Nodes[1], "busy", 0.9) // node2 busier than node3
	e.c.Sched.RunFor(3 * time.Second)

	var moved int
	var drainErr error
	doneAt := false
	e.conductors[0].Drain(func(m int, err error) { moved, drainErr, doneAt = m, err, true })
	e.c.Sched.RunFor(time.Minute)
	if !doneAt {
		t.Fatal("drain never completed")
	}
	if drainErr != nil {
		t.Fatalf("drain failed: %v", drainErr)
	}
	if moved != 3 || e.c.Nodes[0].NumProcesses() != 0 {
		t.Fatalf("moved=%d, left=%d", moved, e.c.Nodes[0].NumProcesses())
	}
	// Everything went to the least-loaded peer (node3).
	if e.c.Nodes[2].NumProcesses() != 3 {
		t.Fatalf("node3 has %d processes, want 3", e.c.Nodes[2].NumProcesses())
	}
	// Conductor resumes normal operation.
	if e.conductors[0].state != stateIdle {
		t.Fatal("conductor stuck after drain")
	}
	drains := 0
	for _, ev := range e.conductors[0].Events {
		if ev.Kind == "drain" {
			drains++
		}
	}
	if drains != 3 {
		t.Fatalf("drain events = %d", drains)
	}
}

func TestDrainWithoutPeersFails(t *testing.T) {
	cfg := DefaultConfig()
	e := newLBEnv(t, 1, cfg)
	spawnWorker(e.c.Nodes[0], "w", 0.2)
	var drainErr error
	e.conductors[0].Drain(func(m int, err error) { drainErr = err })
	e.c.Sched.RunFor(10 * time.Second)
	if drainErr == nil {
		t.Fatal("drain with no peers should fail")
	}
}

func TestDrainEmptyNodeIsNoop(t *testing.T) {
	cfg := DefaultConfig()
	e := newLBEnv(t, 2, cfg)
	e.c.Sched.RunFor(2 * time.Second)
	var moved = -1
	var drainErr error
	e.conductors[0].Drain(func(m int, err error) { moved, drainErr = m, err })
	e.c.Sched.RunFor(5 * time.Second)
	if moved != 0 || drainErr != nil {
		t.Fatalf("empty drain: moved=%d err=%v", moved, drainErr)
	}
}

func TestLocationPolicyPicksOppositeSideOfAverage(t *testing.T) {
	// §IV-B: the chosen receiver should be about as far below the cluster
	// average as the sender is above it. With the sender at 0.9 and peers
	// at {0.1, 0.45, 0.62}, average ≈ 0.52, excess ≈ 0.38: the 0.1 peer
	// (0.42 below) is the opposite-side match, NOT the least-loaded-wins
	// tie with 0.45 — here they coincide; distinguish by adding a peer
	// even further below: with peers {0.02, 0.45}, average ≈ 0.46 and
	// excess ≈ 0.44, so the 0.02 node (0.44 below) wins over 0.45.
	cfg := DefaultConfig()
	cfg.ImbalanceThreshold = 10 // manual control
	e := newLBEnv(t, 2, cfg)
	cd := e.conductors[0]
	cd.load = 0.9
	cd.peers = map[netsim.Addr]*peerInfo{
		1001: {addr: 1001, load: 0.02, lastSeen: cd.now()},
		1002: {addr: 1002, load: 0.45, lastSeen: cd.now()},
		1003: {addr: 1003, load: 0.60, lastSeen: cd.now()},
	}
	avg := cd.ClusterAverage()
	excess := cd.load - avg
	// Reproduce the policy's choice.
	var best netsim.Addr
	bestScore := 1e18
	for a, p := range cd.peers {
		if p.load >= avg {
			continue
		}
		score := excess - (avg - p.load)
		if score < 0 {
			score = -score
		}
		if score < bestScore {
			bestScore = score
			best = a
		}
	}
	if best != 1001 {
		t.Fatalf("opposite-side selection picked %v (avg=%.2f excess=%.2f)", best, avg, excess)
	}
}

func TestClusterAverageTracksTruth(t *testing.T) {
	// The decentralized approximation must converge to the true average
	// once heartbeats have flowed.
	cfg := DefaultConfig()
	cfg.ImbalanceThreshold = 10
	e := newLBEnv(t, 4, cfg)
	demands := []float64{1.8, 1.0, 0.4, 0.0}
	for i, d := range demands {
		if d > 0 {
			spawnWorker(e.c.Nodes[i], "w", d)
		}
	}
	e.c.Sched.RunFor(15 * time.Second)
	truth := (0.9 + 0.5 + 0.2 + 0.0) / 4 // demand/2 cores each
	for i, cd := range e.conductors {
		if diff := cd.ClusterAverage() - truth; diff > 0.05 || diff < -0.05 {
			t.Fatalf("conductor %d average %v, truth %v", i, cd.ClusterAverage(), truth)
		}
	}
}

func TestProposalTimeoutUnsticksSender(t *testing.T) {
	cfg := DefaultConfig()
	e := newLBEnv(t, 2, cfg)
	e.c.Sched.RunFor(2 * time.Second)
	cd := e.conductors[0]
	// Propose to a black hole.
	cd.propose(netsim.Addr(0x7F000001))
	if cd.state != stateSending {
		t.Fatal("propose did not enter sending state")
	}
	e.c.Sched.RunFor(10 * time.Second)
	if cd.state != stateIdle {
		t.Fatal("sender stuck after unanswered proposal")
	}
}

func TestReceiverReservationTimesOut(t *testing.T) {
	cfg := DefaultConfig()
	e := newLBEnv(t, 2, cfg)
	e.c.Sched.RunFor(2 * time.Second)
	recv := e.conductors[1]
	recv.handlePropose(e.c.Nodes[0].LocalIP, append(seqMsg(opPropose, 1), make([]byte, 8)...))
	if recv.state != stateReceiving {
		t.Fatal("not reserved")
	}
	// Sender never delivers; the reservation must expire.
	e.c.Sched.RunFor(30 * time.Second)
	if recv.state != stateIdle {
		t.Fatal("reservation never released")
	}
}
