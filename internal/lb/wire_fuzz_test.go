package lb

import (
	"testing"

	"dvemig/internal/migration"
	"dvemig/internal/netstack"
	"dvemig/internal/proc"
	"dvemig/internal/simtime"
)

// FuzzOwnerMsg feeds arbitrary bytes to the ownership/claim frame
// decoder. The frame arrives from the network, so the decoder must
// never panic, must reject anything shorter than the fixed header, and
// every frame it accepts must roundtrip through the encoder.
func FuzzOwnerMsg(f *testing.F) {
	f.Add(encodeOwnerMsg(opOwner, "scoreboard", 3, 7))
	f.Add(encodeOwnerMsg(opClaim, "", 0, 0))
	f.Add([]byte{})
	f.Add(make([]byte, 16))
	f.Fuzz(func(t *testing.T, data []byte) {
		name, ep, seq, err := decodeOwnerMsg(data)
		if len(data) < 17 {
			if err == nil {
				t.Fatalf("decoded a %d-byte frame (min header is 17)", len(data))
			}
			return
		}
		if err != nil {
			return
		}
		back := encodeOwnerMsg(data[0], name, ep, seq)
		name2, ep2, seq2, err := decodeOwnerMsg(back)
		if err != nil || name2 != name || ep2 != ep || seq2 != seq {
			t.Fatalf("roundtrip broken: (%q,%d,%d,%v) != (%q,%d,%d)",
				name2, ep2, seq2, err, name, ep, seq)
		}
		if len(back) != len(data) {
			t.Fatalf("re-encoded length %d != original %d", len(back), len(data))
		}
	})
}

// FuzzConductorServe throws raw datagrams at a live conductor's UDP
// port — the op switch, the heartbeat load decoder and the owner/claim
// handlers all parse attacker-controlled bytes. Whatever arrives, the
// conductor must not panic and must keep serving: a well-formed
// heartbeat sent afterwards has to register the peer as alive.
func FuzzConductorServe(f *testing.F) {
	f.Add([]byte{opHeartbeat, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF})
	f.Add([]byte{opOwner})
	f.Add(encodeOwnerMsg(opClaim, "zone", ^uint64(0), ^uint64(0)))
	f.Add([]byte{opPropose, 0, 0, 0})
	f.Add([]byte{0xEE})
	f.Fuzz(func(t *testing.T, data []byte) {
		sched := simtime.NewScheduler()
		cluster := proc.NewCluster(sched, 2)
		mig, err := migration.NewMigrator(cluster.Nodes[0], migration.DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		cd, err := NewConductor(cluster.Nodes[0], mig, DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		atk := netstack.NewUDPSocket(cluster.Nodes[1].Stack)
		atk.BindEphemeral(cluster.Nodes[1].LocalIP)
		if err := atk.SendTo(cluster.Nodes[0].LocalIP, CondPort, data); err != nil {
			t.Fatal(err)
		}
		sched.RunFor(100 * 1e6)
		// The conductor must still be parsing: a valid heartbeat from the
		// same source registers it as an alive peer.
		if err := atk.SendTo(cluster.Nodes[0].LocalIP, CondPort, loadMsg(opHeartbeat, 0.5)); err != nil {
			t.Fatal(err)
		}
		sched.RunFor(100 * 1e6)
		if st := cd.PeerState(cluster.Nodes[1].LocalIP); st != PeerAlive {
			t.Fatalf("conductor wedged after fuzz frame: peer state = %v", st)
		}
	})
}
