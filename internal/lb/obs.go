package lb

import (
	"dvemig/internal/obs"
	"dvemig/internal/simtime"
)

// Observability wiring for the conductor: failure-detector transitions
// become instants plus a flip counter, failover elections become spans
// (claim → activation, with the outcome as an attribute), and epoch
// bumps / fences / suspend-resume decisions are annotated on the node's
// track. Everything is gated on the single c.Obs pointer so an
// unobserved conductor pays one comparison per decision point.

// condObsHandles caches the conductor's metric handles (nil when the
// plane is disabled; methods on nil handles are no-ops).
type condObsHandles struct {
	detectorFlips *obs.Counter
	elections     *obs.Counter
	activations   *obs.Counter
	epochBumps    *obs.Counter
	fences        *obs.Counter
	droppedDgrams *obs.Counter
	claimWaitUs   *obs.Histogram
}

// SetObs attaches an observability plane to the conductor and
// pre-resolves the metric handles. Call before the first tick fires; a
// nil o detaches the plane.
func (c *Conductor) SetObs(o *obs.Obs) {
	c.Obs = o
	r := o.M()
	c.obsm.detectorFlips = r.Counter("lb/detector_flips_total")
	c.obsm.elections = r.Counter("lb/elections_total")
	c.obsm.activations = r.Counter("lb/activations_total")
	c.obsm.epochBumps = r.Counter("lb/epoch_bumps_total")
	c.obsm.fences = r.Counter("lb/fences_total")
	c.obsm.droppedDgrams = r.Counter("lb/failover_dropped_datagrams_total")
	c.obsm.claimWaitUs = r.Histogram("lb/claim_to_activate_us", obs.DurationBucketsUs)
}

// detectorFlip records one failure-detector state change as an instant
// on the node's track plus the flip counter.
func (c *Conductor) detectorFlip(kind string, peer string) {
	if c.Obs == nil {
		return
	}
	c.obsm.detectorFlips.Inc()
	c.Obs.Trace.Instant(c.Node.Name, "detector:"+kind, obs.Attr{Key: "peer", Val: peer})
}

// electionStart opens the claim→activate span of one failover election.
func (c *Conductor) electionStart(cl *claim) {
	if c.Obs == nil {
		return
	}
	c.obsm.elections.Inc()
	cl.span = c.Obs.Trace.Start(c.Node.Name, "election")
	cl.span.SetAttr("service", cl.name)
}

// electionEnd closes an election span with its outcome.
func (c *Conductor) electionEnd(cl *claim, outcome string) {
	if c.Obs == nil || cl == nil || cl.span == nil {
		return
	}
	cl.span.SetAttr("outcome", outcome)
	cl.span.Close()
}

// noteActivation records one standby activation: the epoch bump as an
// instant, the activation span (zero-width: the restart is synchronous
// within one event), and the datagrams the restart-consistency rule
// discarded.
func (c *Conductor) noteActivation(name string, ep uint64, pid int, droppedBefore uint64, claimedAt simtime.Time) {
	if c.Obs == nil {
		return
	}
	c.obsm.activations.Inc()
	c.obsm.epochBumps.Inc()
	if c.standby != nil {
		c.obsm.droppedDgrams.Add(c.standby.DroppedDatagrams - droppedBefore)
	}
	if claimedAt > 0 {
		c.obsm.claimWaitUs.Observe(float64(c.now()-claimedAt) / 1e3)
	}
	s := c.Obs.Trace.Start(c.Node.Name, "activation")
	s.SetAttr("service", name)
	s.SetInt("epoch", int64(ep))
	s.SetInt("pid", int64(pid))
	s.Close()
	c.Obs.Trace.Instant(c.Node.Name, "epoch-bump",
		obs.Attr{Key: "service", Val: name}, obs.Attr{Key: "epoch", Val: itoa(ep)})
}

// noteEvent annotates a non-election conductor decision (fence,
// suspend, resume) as an instant.
func (c *Conductor) noteEvent(kind, service string) {
	if c.Obs == nil {
		return
	}
	if kind == "fence" {
		c.obsm.fences.Inc()
	}
	c.Obs.Trace.Instant(c.Node.Name, kind, obs.Attr{Key: "service", Val: service})
}

func itoa(v uint64) string {
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}
