package lb

import (
	"dvemig/internal/netsim"
	"dvemig/internal/obs"
)

// Observability wiring for the conductor: failure-detector transitions
// become instants plus a flip counter, failover elections become spans
// (claim → activation, with the outcome as an attribute), and epoch
// bumps / fences / suspend-resume decisions are annotated on the node's
// track. Everything is gated on the single c.Obs pointer so an
// unobserved conductor pays one comparison per decision point.

// condObsHandles caches the conductor's metric handles (nil when the
// plane is disabled; methods on nil handles are no-ops).
type condObsHandles struct {
	detectorFlips *obs.Counter
	elections     *obs.Counter
	activations   *obs.Counter
	epochBumps    *obs.Counter
	fences        *obs.Counter
	droppedDgrams *obs.Counter
	claimWaitUs   *obs.Histogram
}

// SetObs attaches an observability plane to the conductor and
// pre-resolves the metric handles. Call before the first tick fires; a
// nil o detaches the plane.
func (c *Conductor) SetObs(o *obs.Obs) {
	c.Obs = o
	r := o.M()
	c.obsm.detectorFlips = r.Counter("lb/detector_flips_total")
	c.obsm.elections = r.Counter("lb/elections_total")
	c.obsm.activations = r.Counter("lb/activations_total")
	c.obsm.epochBumps = r.Counter("lb/epoch_bumps_total")
	c.obsm.fences = r.Counter("lb/fences_total")
	c.obsm.droppedDgrams = r.Counter("lb/failover_dropped_datagrams_total")
	c.obsm.claimWaitUs = r.Histogram("lb/claim_to_activate_us", obs.DurationBucketsUs)
}

// detectorFlip records one failure-detector state change: into the
// node's flight recorder (always, when attached), and as an instant on
// the node's track plus the flip counter (when the plane is enabled).
func (c *Conductor) detectorFlip(kind string, peer netsim.Addr) {
	if c.Node.FR != nil {
		c.Node.FR.Record(int64(c.now()), "detector", kind, int64(peer), 0, 0)
	}
	if c.Obs == nil {
		return
	}
	c.obsm.detectorFlips.Inc()
	c.Obs.Trace.Instant(c.Node.Name, "detector:"+kind, obs.Attr{Key: "peer", Val: peer.String()})
}

// electionStart opens the claim→activate span of one failover
// election. The span links into the trace the dead owner's guardian
// stamped onto its checkpoint stream (when known): the detector flip,
// claim, election and activation all hang off the guarded service's
// trace, across nodes.
func (c *Conductor) electionStart(cl *claim) {
	if c.Obs == nil {
		return
	}
	c.obsm.elections.Inc()
	var ctx obs.TraceContext
	if c.standby != nil {
		ctx = c.standby.ImageTraceCtx(cl.name)
	}
	cl.span = c.Obs.Trace.StartLinked(c.Node.Name, "election", ctx)
	cl.span.SetAttr("service", cl.name)
}

// electionEnd closes an election span with its outcome.
func (c *Conductor) electionEnd(cl *claim, outcome string) {
	if c.Obs == nil || cl == nil || cl.span == nil {
		return
	}
	cl.span.SetAttr("outcome", outcome)
	cl.span.Close()
}

// noteActivation records one standby activation: the epoch bump as an
// instant, the activation span (zero-width: the restart is synchronous
// within one event; parented into the won election's span so the
// detector→claim→activate chain is one connected trace), and the
// datagrams the restart-consistency rule discarded.
func (c *Conductor) noteActivation(name string, ep uint64, pid int, droppedBefore uint64, cl *claim) {
	if c.Obs == nil {
		return
	}
	c.obsm.activations.Inc()
	c.obsm.epochBumps.Inc()
	if c.standby != nil {
		c.obsm.droppedDgrams.Add(c.standby.DroppedDatagrams - droppedBefore)
	}
	if cl != nil && cl.at > 0 {
		c.obsm.claimWaitUs.Observe(float64(c.now()-cl.at) / 1e3)
	}
	var s *obs.Span
	if cl != nil && cl.span != nil {
		s = cl.span.Child("activation")
	} else {
		s = c.Obs.Trace.Start(c.Node.Name, "activation")
	}
	s.SetAttr("service", name)
	s.SetInt("epoch", int64(ep))
	s.SetInt("pid", int64(pid))
	s.Close()
	c.Obs.Trace.Instant(c.Node.Name, "epoch-bump",
		obs.Attr{Key: "service", Val: name}, obs.Attr{Key: "epoch", Val: itoa(ep)})
}

// rebalanceStart opens the root "rebalance" span of one outbound
// proposal. The returned context rides on the opPropose wire message so
// the peer's reserve span, the migration phase spans on both nodes and
// the xlat install all parent into this one trace. Returns the zero
// context when the plane is disabled.
func (c *Conductor) rebalanceStart(to netsim.Addr) obs.TraceContext {
	if c.Obs == nil {
		return obs.TraceContext{}
	}
	c.balSpan = c.Obs.Trace.Start(c.Node.Name, "rebalance")
	c.balSpan.SetAttr("dest", to.String())
	return c.balSpan.Context()
}

// rebalanceEnd closes the outbound rebalance span with its outcome
// (done, rejected, timeout, released, aborted).
func (c *Conductor) rebalanceEnd(outcome string) {
	if c.balSpan == nil {
		return
	}
	c.balSpan.SetAttr("outcome", outcome)
	c.balSpan.Close()
	c.balSpan = nil
}

// reserveStart opens the receiving side's "reserve" span, linked into
// the proposer's rebalance trace via the context carried on the wire.
func (c *Conductor) reserveStart(from netsim.Addr, ctx obs.TraceContext) {
	if c.Obs == nil {
		return
	}
	c.rsvSpan = c.Obs.Trace.StartLinked(c.Node.Name, "reserve", ctx)
	c.rsvSpan.SetAttr("from", from.String())
}

// reserveEnd closes the reserve span with its outcome (done, released,
// expired).
func (c *Conductor) reserveEnd(outcome string) {
	if c.rsvSpan == nil {
		return
	}
	c.rsvSpan.SetAttr("outcome", outcome)
	c.rsvSpan.Close()
	c.rsvSpan = nil
}

// noteEvent annotates a non-election conductor decision (fence,
// suspend, resume): into the flight recorder when attached, and as an
// instant when the plane is enabled.
func (c *Conductor) noteEvent(kind, service string) {
	if c.Node.FR != nil {
		c.Node.FR.Record(int64(c.now()), "conductor", kind, 0, 0, 0)
	}
	if c.Obs == nil {
		return
	}
	if kind == "fence" {
		c.obsm.fences.Inc()
	}
	c.Obs.Trace.Instant(c.Node.Name, kind, obs.Attr{Key: "service", Val: service})
}

func itoa(v uint64) string {
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}
