// Package trace provides the measurement instruments of the evaluation:
// a tcpdump-style packet tracer (Fig 4 captures server packets with
// tcpdump) and time-series recorders for CPU and process-count plots
// (Fig 5d/5e/5f).
package trace

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"dvemig/internal/netsim"
	"dvemig/internal/simtime"
)

// Record is one captured packet.
type Record struct {
	At  simtime.Time
	Dir string // "tx" or "rx"
	// Summary fields copied out of the packet (the packet itself may be
	// mutated downstream by netfilter hooks).
	Proto   byte
	SrcIP   netsim.Addr
	DstIP   netsim.Addr
	SrcPort uint16
	DstPort uint16
	Seq     uint32
	Len     int
	Flags   byte
}

// PacketTrace is a sniffer that retains packet records, optionally
// filtered by transport port.
type PacketTrace struct {
	// FilterPort, when non-zero, keeps only packets with this source or
	// destination port.
	FilterPort uint16
	// FilterDir, when non-empty, keeps only "tx" or "rx" records.
	FilterDir string

	Records []Record

	// DirFiltered / LastDirFiltered are the freeze-gap marker for
	// direction-filtered captures: how many port-matching packets the
	// direction filter dropped and when the most recent one passed. Fig
	// 4's analysis reads them to tell a true freeze (both directions
	// silent) from a one-sided silence (e.g. a tx-only capture of a
	// frozen server that is still receiving client traffic). They are a
	// side channel only — Gaps() is defined over the kept Records, so a
	// filtered packet landing mid-handshake between two kept packets
	// never splits their gap.
	DirFiltered     uint64
	LastDirFiltered simtime.Time
}

// Capture implements netsim.Sniffer.
func (t *PacketTrace) Capture(at simtime.Time, dir string, p *netsim.Packet) {
	if t.FilterPort != 0 && p.SrcPort != t.FilterPort && p.DstPort != t.FilterPort {
		return
	}
	if t.FilterDir != "" && dir != t.FilterDir {
		t.DirFiltered++
		t.LastDirFiltered = at
		return
	}
	t.Records = append(t.Records, Record{
		At: at, Dir: dir, Proto: p.Proto,
		SrcIP: p.SrcIP, DstIP: p.DstIP, SrcPort: p.SrcPort, DstPort: p.DstPort,
		Seq: p.Seq, Len: len(p.Payload), Flags: p.Flags,
	})
}

// Gaps returns the time differences between consecutive records — the
// quantity Fig 4 plots around the migration.
func (t *PacketTrace) Gaps() []simtime.Duration {
	if len(t.Records) < 2 {
		return nil
	}
	out := make([]simtime.Duration, 0, len(t.Records)-1)
	for i := 1; i < len(t.Records); i++ {
		out = append(out, t.Records[i].At-t.Records[i-1].At)
	}
	return out
}

// MaxGap returns the largest inter-packet gap and the time at which the
// later packet arrived.
func (t *PacketTrace) MaxGap() (simtime.Duration, simtime.Time) {
	var max simtime.Duration
	var at simtime.Time
	for i := 1; i < len(t.Records); i++ {
		if g := t.Records[i].At - t.Records[i-1].At; g > max {
			max = g
			at = t.Records[i].At
		}
	}
	return max, at
}

// Window returns the records with At in [from, to).
func (t *PacketTrace) Window(from, to simtime.Time) []Record {
	var out []Record
	for _, r := range t.Records {
		if r.At >= from && r.At < to {
			out = append(out, r)
		}
	}
	return out
}

// Series is a named time series of float samples.
type Series struct {
	Name   string
	Times  []simtime.Time
	Values []float64
}

// Add appends a sample.
func (s *Series) Add(at simtime.Time, v float64) {
	s.Times = append(s.Times, at)
	s.Values = append(s.Values, v)
}

// Len returns the sample count.
func (s *Series) Len() int { return len(s.Values) }

// Min and Max return value extremes (0 when empty).
func (s *Series) Min() float64 {
	if len(s.Values) == 0 {
		return 0
	}
	m := s.Values[0]
	for _, v := range s.Values {
		if v < m {
			m = v
		}
	}
	return m
}

// Max returns the largest sample.
func (s *Series) Max() float64 {
	if len(s.Values) == 0 {
		return 0
	}
	m := s.Values[0]
	for _, v := range s.Values {
		if v > m {
			m = v
		}
	}
	return m
}

// Mean returns the average sample.
func (s *Series) Mean() float64 {
	if len(s.Values) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range s.Values {
		sum += v
	}
	return sum / float64(len(s.Values))
}

// After returns the sub-series with time ≥ from.
func (s *Series) After(from simtime.Time) *Series {
	out := &Series{Name: s.Name}
	for i, t := range s.Times {
		if t >= from {
			out.Add(t, s.Values[i])
		}
	}
	return out
}

// SeriesSet groups one series per node, keyed by name, preserving
// insertion order — the shape of the Fig 5 per-node plots.
type SeriesSet struct {
	order []string
	byKey map[string]*Series
}

// NewSeriesSet creates an empty set.
func NewSeriesSet() *SeriesSet {
	return &SeriesSet{byKey: make(map[string]*Series)}
}

// Get returns (creating if needed) the series with the given name.
func (ss *SeriesSet) Get(name string) *Series {
	s, ok := ss.byKey[name]
	if !ok {
		s = &Series{Name: name}
		ss.byKey[name] = s
		ss.order = append(ss.order, name)
	}
	return s
}

// Names returns series names in insertion order.
func (ss *SeriesSet) Names() []string { return append([]string(nil), ss.order...) }

// longest returns the series with the most samples (ties broken by
// insertion order). Table and CSV take their row times from it: sampling
// is aligned across series, but a series created mid-run (a node that
// joined late) or one that stopped early must not truncate the others.
// Earlier versions iterated the first series' times and silently dropped
// every later row.
func (ss *SeriesSet) longest() *Series {
	if len(ss.order) == 0 {
		return nil
	}
	best := ss.byKey[ss.order[0]]
	for _, n := range ss.order[1:] {
		if s := ss.byKey[n]; s.Len() > best.Len() {
			best = s
		}
	}
	return best
}

// Table renders the set as aligned rows (time in seconds, one column per
// series), the textual equivalent of the paper's figures.
func (ss *SeriesSet) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%10s", "t(s)")
	for _, n := range ss.order {
		fmt.Fprintf(&b, "%12s", n)
	}
	b.WriteByte('\n')
	longest := ss.longest()
	if longest == nil {
		return b.String()
	}
	for i, t := range longest.Times {
		fmt.Fprintf(&b, "%10.1f", t.Seconds())
		for _, n := range ss.order {
			s := ss.byKey[n]
			if i < len(s.Values) {
				fmt.Fprintf(&b, "%12.2f", s.Values[i])
			} else {
				fmt.Fprintf(&b, "%12s", "-")
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// CSV renders the set as comma-separated rows with a header, suitable
// for gnuplot/spreadsheet import ("t_s,node1,node2,...").
func (ss *SeriesSet) CSV() string {
	var b strings.Builder
	b.WriteString("t_s")
	for _, n := range ss.order {
		b.WriteByte(',')
		b.WriteString(n)
	}
	b.WriteByte('\n')
	longest := ss.longest()
	if longest == nil {
		return b.String()
	}
	for i, t := range longest.Times {
		fmt.Fprintf(&b, "%.3f", t.Seconds())
		for _, n := range ss.order {
			s := ss.byKey[n]
			if i < len(s.Values) {
				fmt.Fprintf(&b, ",%.4f", s.Values[i])
			} else {
				b.WriteString(",")
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Percentile returns the p-th percentile (0-100) of the values using
// linear interpolation between closest ranks (the same estimator as
// numpy's default). p outside [0,100] clamps to the extremes; the input
// slice is not mutated. Earlier versions truncated the fractional rank,
// which biased every non-exact percentile (p99 included) toward the
// next-lower sample.
func Percentile(values []float64, p float64) float64 {
	if len(values) == 0 {
		return 0
	}
	v := append([]float64(nil), values...)
	sort.Float64s(v)
	if p <= 0 {
		return v[0]
	}
	if p >= 100 {
		return v[len(v)-1]
	}
	rank := p / 100 * float64(len(v)-1)
	lo := int(math.Floor(rank))
	frac := rank - float64(lo)
	if frac == 0 || lo+1 >= len(v) {
		return v[lo]
	}
	return v[lo] + frac*(v[lo+1]-v[lo])
}
