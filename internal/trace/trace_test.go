package trace

import (
	"strings"
	"testing"
	"time"

	"dvemig/internal/netsim"
)

func rec(tr *PacketTrace, at time.Duration, dir string, sp, dp uint16) {
	tr.Capture(at, dir, &netsim.Packet{Proto: netsim.ProtoUDP, SrcPort: sp, DstPort: dp, Payload: []byte("xy")})
}

func TestPacketTraceFilter(t *testing.T) {
	tr := &PacketTrace{FilterPort: 27960, FilterDir: "tx"}
	rec(tr, 0, "tx", 27960, 5000)
	rec(tr, time.Millisecond, "rx", 5000, 27960)  // wrong dir
	rec(tr, 2*time.Millisecond, "tx", 1234, 5678) // wrong port
	rec(tr, 3*time.Millisecond, "tx", 5000, 27960)
	if len(tr.Records) != 2 {
		t.Fatalf("records = %d, want 2", len(tr.Records))
	}
}

// TestGapsWithDirectionFilters locks the freeze-gap semantics of
// one-sided captures: a simulated handshake interleaves tx and rx on
// port 7000, the server goes silent (frozen) from 100ms to 250ms while
// rx traffic keeps arriving, and the direction filters must (1) leave
// the gap computation over the kept records untouched — a filtered
// packet landing mid-handshake never splits a gap — and (2) record the
// dropped direction in the freeze-gap marker instead of discarding it.
func TestGapsWithDirectionFilters(t *testing.T) {
	type pkt struct {
		at  time.Duration
		dir string
	}
	flow := []pkt{
		{0, "tx"}, {5 * time.Millisecond, "rx"}, // handshake
		{50 * time.Millisecond, "tx"}, {60 * time.Millisecond, "rx"},
		{100 * time.Millisecond, "tx"}, // last server packet before freeze
		{150 * time.Millisecond, "rx"}, // client keeps sending into the freeze
		{200 * time.Millisecond, "rx"},
		{250 * time.Millisecond, "tx"}, // server resumes
		{255 * time.Millisecond, "rx"},
	}
	run := func(dir string) *PacketTrace {
		tr := &PacketTrace{FilterPort: 7000, FilterDir: dir}
		for _, p := range flow {
			rec(tr, p.at, p.dir, 7000, 5000)
		}
		return tr
	}

	tx := run("tx")
	wantTx := []time.Duration{50 * time.Millisecond, 50 * time.Millisecond, 150 * time.Millisecond}
	if gaps := tx.Gaps(); len(gaps) != len(wantTx) {
		t.Fatalf("tx gaps = %v, want %v", gaps, wantTx)
	} else {
		for i, w := range wantTx {
			if gaps[i] != w {
				t.Fatalf("tx gaps = %v, want %v", gaps, wantTx)
			}
		}
	}
	// The freeze shows up as the tx max gap even though rx packets
	// crossed the wire inside it (they must not split the gap)...
	if max, at := tx.MaxGap(); max != 150*time.Millisecond || at != 250*time.Millisecond {
		t.Fatalf("tx max gap = %v at %v", max, at)
	}
	// ...and the marker proves the silence was one-sided.
	if tx.DirFiltered != 5 || tx.LastDirFiltered != 255*time.Millisecond {
		t.Fatalf("tx marker = %d @ %v", tx.DirFiltered, tx.LastDirFiltered)
	}

	rx := run("rx")
	wantRx := []time.Duration{55 * time.Millisecond, 90 * time.Millisecond, 50 * time.Millisecond, 55 * time.Millisecond}
	if gaps := rx.Gaps(); len(gaps) != len(wantRx) {
		t.Fatalf("rx gaps = %v, want %v", gaps, wantRx)
	} else {
		for i, w := range wantRx {
			if gaps[i] != w {
				t.Fatalf("rx gaps = %v, want %v", gaps, wantRx)
			}
		}
	}
	if rx.DirFiltered != 4 || rx.LastDirFiltered != 250*time.Millisecond {
		t.Fatalf("rx marker = %d @ %v", rx.DirFiltered, rx.LastDirFiltered)
	}

	// An unfiltered capture sees every packet and no marker.
	all := run("")
	if len(all.Records) != len(flow) || all.DirFiltered != 0 {
		t.Fatalf("unfiltered records = %d marker = %d", len(all.Records), all.DirFiltered)
	}
}

func TestGapsAndMaxGap(t *testing.T) {
	tr := &PacketTrace{}
	for _, at := range []time.Duration{0, 50 * time.Millisecond, 100 * time.Millisecond, 175 * time.Millisecond} {
		rec(tr, at, "tx", 1, 2)
	}
	gaps := tr.Gaps()
	if len(gaps) != 3 || gaps[0] != 50*time.Millisecond || gaps[2] != 75*time.Millisecond {
		t.Fatalf("gaps = %v", gaps)
	}
	max, at := tr.MaxGap()
	if max != 75*time.Millisecond || at != 175*time.Millisecond {
		t.Fatalf("max gap = %v at %v", max, at)
	}
	if (&PacketTrace{}).Gaps() != nil {
		t.Fatal("empty trace gaps")
	}
}

func TestWindow(t *testing.T) {
	tr := &PacketTrace{}
	for i := 0; i < 10; i++ {
		rec(tr, time.Duration(i)*time.Second, "tx", 1, 2)
	}
	w := tr.Window(3*time.Second, 6*time.Second)
	if len(w) != 3 || w[0].At != 3*time.Second {
		t.Fatalf("window = %v", w)
	}
}

func TestSeriesStats(t *testing.T) {
	s := &Series{Name: "node1"}
	for i, v := range []float64{80, 95, 65, 100} {
		s.Add(time.Duration(i)*time.Second, v)
	}
	if s.Len() != 4 || s.Min() != 65 || s.Max() != 100 || s.Mean() != 85 {
		t.Fatalf("stats: len=%d min=%v max=%v mean=%v", s.Len(), s.Min(), s.Max(), s.Mean())
	}
	after := s.After(2 * time.Second)
	if after.Len() != 2 || after.Values[0] != 65 {
		t.Fatalf("after = %+v", after)
	}
	empty := &Series{}
	if empty.Min() != 0 || empty.Max() != 0 || empty.Mean() != 0 {
		t.Fatal("empty series stats")
	}
}

func TestSeriesSetTable(t *testing.T) {
	ss := NewSeriesSet()
	for i := 0; i < 3; i++ {
		ss.Get("node1").Add(time.Duration(i)*time.Second, float64(90+i))
		ss.Get("node2").Add(time.Duration(i)*time.Second, float64(70-i))
	}
	names := ss.Names()
	if len(names) != 2 || names[0] != "node1" {
		t.Fatalf("names = %v", names)
	}
	tab := ss.Table()
	if !strings.Contains(tab, "node1") || !strings.Contains(tab, "92.00") {
		t.Fatalf("table:\n%s", tab)
	}
	lines := strings.Split(strings.TrimSpace(tab), "\n")
	if len(lines) != 4 {
		t.Fatalf("table rows = %d", len(lines))
	}
	if NewSeriesSet().Table() == "" {
		t.Fatal("empty set renders header")
	}
}

func TestPercentile(t *testing.T) {
	vals := []float64{5, 1, 3, 2, 4}
	if Percentile(vals, 0) != 1 || Percentile(vals, 100) != 5 || Percentile(vals, 50) != 3 {
		t.Fatal("percentile wrong")
	}
	if Percentile(nil, 50) != 0 {
		t.Fatal("empty percentile")
	}
	// Input must not be mutated.
	if vals[0] != 5 {
		t.Fatal("percentile sorted its input")
	}
}

// TestPercentileInterpolation pins the linear-interpolation estimator
// on 1–5 samples at the percentiles the reports actually quote. The old
// rank-truncating implementation returned the next-lower sample for
// every non-exact rank (e.g. p99 of [1..5] was 4, not 4.96).
func TestPercentileInterpolation(t *testing.T) {
	cases := []struct {
		name string
		vals []float64
		p    float64
		want float64
	}{
		{"one/p0", []float64{7}, 0, 7},
		{"one/p50", []float64{7}, 50, 7},
		{"one/p99", []float64{7}, 99, 7},
		{"one/p100", []float64{7}, 100, 7},
		{"two/p0", []float64{10, 20}, 0, 10},
		{"two/p50", []float64{10, 20}, 50, 15},
		{"two/p99", []float64{10, 20}, 99, 19.9},
		{"two/p100", []float64{10, 20}, 100, 20},
		{"three/p0", []float64{3, 1, 2}, 0, 1},
		{"three/p50", []float64{3, 1, 2}, 50, 2},
		{"three/p99", []float64{3, 1, 2}, 99, 2.98},
		{"three/p100", []float64{3, 1, 2}, 100, 3},
		{"four/p0", []float64{4, 2, 1, 3}, 0, 1},
		{"four/p50", []float64{4, 2, 1, 3}, 50, 2.5},
		{"four/p99", []float64{4, 2, 1, 3}, 99, 3.97},
		{"four/p100", []float64{4, 2, 1, 3}, 100, 4},
		{"five/p0", []float64{5, 1, 3, 2, 4}, 0, 1},
		{"five/p50", []float64{5, 1, 3, 2, 4}, 50, 3},
		{"five/p99", []float64{5, 1, 3, 2, 4}, 99, 4.96},
		{"five/p100", []float64{5, 1, 3, 2, 4}, 100, 5},
		{"clamp-low", []float64{1, 2}, -5, 1},
		{"clamp-high", []float64{1, 2}, 120, 2},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := Percentile(tc.vals, tc.p)
			if diff := got - tc.want; diff > 1e-9 || diff < -1e-9 {
				t.Fatalf("Percentile(%v, %v) = %v, want %v", tc.vals, tc.p, got, tc.want)
			}
		})
	}
}

// TestSeriesSetRagged is the regression test for the truncation bug:
// when the first series is shorter than a later one, Table and CSV must
// still render every row of the longest series, padding the missing
// cells rather than dropping the tail.
func TestSeriesSetRagged(t *testing.T) {
	ss := NewSeriesSet()
	ss.Get("node1").Add(0, 10) // joined, then stopped sampling
	for i := 0; i < 3; i++ {
		ss.Get("node2").Add(time.Duration(i)*time.Second, float64(20+i))
	}
	tab := ss.Table()
	lines := strings.Split(strings.TrimSpace(tab), "\n")
	if len(lines) != 4 {
		t.Fatalf("table rows = %d, want header + 3 (longest series), got:\n%s", len(lines), tab)
	}
	if !strings.Contains(tab, "22.00") {
		t.Fatalf("table lost the longest series' tail:\n%s", tab)
	}
	if !strings.Contains(lines[2], "-") || !strings.Contains(lines[3], "-") {
		t.Fatalf("short series not padded with '-':\n%s", tab)
	}
	csv := ss.CSV()
	want := "t_s,node1,node2\n0.000,10.0000,20.0000\n1.000,,21.0000\n2.000,,22.0000\n"
	if csv != want {
		t.Fatalf("csv = %q, want %q", csv, want)
	}
}

func TestSeriesSetCSV(t *testing.T) {
	ss := NewSeriesSet()
	ss.Get("node1").Add(5*time.Second, 80.5)
	ss.Get("node2").Add(5*time.Second, 70.25)
	csv := ss.CSV()
	want := "t_s,node1,node2\n5.000,80.5000,70.2500\n"
	if csv != want {
		t.Fatalf("csv = %q, want %q", csv, want)
	}
	if NewSeriesSet().CSV() != "t_s\n" {
		t.Fatal("empty csv header wrong")
	}
}
