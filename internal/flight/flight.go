// Package flight implements a bounded, allocation-free flight recorder:
// a ring buffer of the last N structured events per track (node, NIC,
// scheduler). Hot paths record fixed-size events with static strings and
// integer payloads — no formatting, no allocation, no branches beyond a
// nil check when the recorder is detached — and failure paths dump the
// retained window for post-mortem diagnosis.
//
// flight is a dependency-free leaf package: simtime, netsim, netstack,
// proc, migration and lb all record into it, so it must import none of
// them (the same constraint that keeps the obs harvester acyclic).
// Timestamps are therefore plain int64 nanoseconds, not simtime.Time.
package flight

import (
	"fmt"
	"io"
)

// Event is one fixed-size flight-recorder record. Kind and Name must be
// static (or at least pre-existing) strings on hot paths: the recorder
// stores the string headers, never copies the bytes, so recording
// allocates nothing.
type Event struct {
	At   int64  // virtual time, nanoseconds
	Kind string // event class: "sched", "pkt", "phase", "detector", ...
	Name string // event name within the class
	A    int64  // class-specific payloads (pid, seq, addr, ...)
	B    int64
	C    int64
}

// Recorder is a bounded ring of the last N events on one track. The
// zero-capacity and nil recorder both discard everything, so callers
// gate recording on a single pointer comparison.
type Recorder struct {
	Track string
	buf   []Event
	n     uint64 // total events ever recorded
}

// New returns a recorder retaining the last capacity events.
func New(track string, capacity int) *Recorder {
	if capacity <= 0 {
		capacity = 1
	}
	return &Recorder{Track: track, buf: make([]Event, 0, capacity)}
}

// Record appends one event, overwriting the oldest once the ring is
// full. Safe on a nil receiver; steady-state cost is one bounds-checked
// slot store.
func (r *Recorder) Record(at int64, kind, name string, a, b, c int64) {
	if r == nil {
		return
	}
	e := Event{At: at, Kind: kind, Name: name, A: a, B: b, C: c}
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, e)
	} else {
		r.buf[r.n%uint64(cap(r.buf))] = e
	}
	r.n++
}

// Len reports how many events are currently retained.
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	return len(r.buf)
}

// Total reports how many events were ever recorded (retained + evicted).
func (r *Recorder) Total() uint64 {
	if r == nil {
		return 0
	}
	return r.n
}

// Events returns the retained window oldest-first. It allocates; call it
// from failure paths only.
func (r *Recorder) Events() []Event {
	if r == nil || len(r.buf) == 0 {
		return nil
	}
	out := make([]Event, 0, len(r.buf))
	if len(r.buf) < cap(r.buf) {
		return append(out, r.buf...)
	}
	head := int(r.n % uint64(cap(r.buf))) // oldest slot
	out = append(out, r.buf[head:]...)
	return append(out, r.buf[:head]...)
}

// Dump writes the retained window as text (the format documented in
// DESIGN.md §7): a header line with retention counts, then one line per
// event, oldest first.
func (r *Recorder) Dump(w io.Writer) {
	if r == nil {
		return
	}
	fmt.Fprintf(w, "flight %s: %d/%d events retained (oldest first)\n",
		r.Track, r.Len(), r.Total())
	for _, e := range r.Events() {
		fmt.Fprintf(w, "  %14.6fs %-9s %-28s a=%-12d b=%-12d c=%d\n",
			float64(e.At)/1e9, e.Kind, e.Name, e.A, e.B, e.C)
	}
}

// DumpRange writes the retained events whose timestamps fall in the
// half-open window [fromNs, toNs) — an event exactly at fromNs is
// included, one exactly at toNs belongs to the next window. The header
// reports the in-window count against the retained count so a reader
// can tell filtering from eviction.
func (r *Recorder) DumpRange(w io.Writer, fromNs, toNs int64) {
	if r == nil {
		return
	}
	events := r.Events()
	in := 0
	for _, e := range events {
		if e.At >= fromNs && e.At < toNs {
			in++
		}
	}
	fmt.Fprintf(w, "flight %s: %d/%d retained events in window (%d/%d total retained, oldest first)\n",
		r.Track, in, r.Len(), r.Len(), r.Total())
	for _, e := range events {
		if e.At < fromNs || e.At >= toNs {
			continue
		}
		fmt.Fprintf(w, "  %14.6fs %-9s %-28s a=%-12d b=%-12d c=%d\n",
			float64(e.At)/1e9, e.Kind, e.Name, e.A, e.B, e.C)
	}
}

// Set groups the recorders of one simulation so failure paths can dump
// every track at once.
type Set struct {
	Depth int
	recs  []*Recorder
}

// NewSet returns a set whose tracks each retain depth events.
func NewSet(depth int) *Set {
	if depth <= 0 {
		depth = 256
	}
	return &Set{Depth: depth}
}

// Track creates (and registers) a recorder for the named track.
func (s *Set) Track(name string) *Recorder {
	r := New(name, s.Depth)
	s.recs = append(s.recs, r)
	return r
}

// Recorders returns the registered recorders in creation order.
func (s *Set) Recorders() []*Recorder {
	if s == nil {
		return nil
	}
	return s.recs
}

// Dump writes every track's retained window, in creation order.
func (s *Set) Dump(w io.Writer) {
	if s == nil {
		return
	}
	for _, r := range s.recs {
		r.Dump(w)
	}
}

// DumpWindow writes every track's retained events scoped to the
// half-open sample window [fromNs, toNs), preceded by a locator header
// naming the window index and sim-time range. A mid-run dump is then
// self-locating — the reader knows which slice of the run the events
// belong to — and scoped: events recorded outside the window (still
// retained in the rings) are filtered out, an event exactly at fromNs
// included, one exactly at toNs left to the next window.
func (s *Set) DumpWindow(w io.Writer, window int, fromNs, toNs int64) {
	if s == nil {
		return
	}
	fmt.Fprintf(w, "flight dump @ sample window %d [%.6fs, %.6fs)\n",
		window, float64(fromNs)/1e9, float64(toNs)/1e9)
	for _, r := range s.recs {
		r.DumpRange(w, fromNs, toNs)
	}
}
