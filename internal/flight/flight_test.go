package flight

import (
	"strings"
	"testing"
)

func TestRecorderRingSemantics(t *testing.T) {
	r := New("node1", 4)
	if r.Len() != 0 || r.Total() != 0 || r.Events() != nil {
		t.Fatal("fresh recorder not empty")
	}
	for i := 0; i < 3; i++ {
		r.Record(int64(i), "sched", "tick", int64(i), 0, 0)
	}
	ev := r.Events()
	if len(ev) != 3 || ev[0].At != 0 || ev[2].At != 2 {
		t.Fatalf("partial ring = %+v", ev)
	}
	// Overflow: only the last 4 survive, oldest first.
	for i := 3; i < 10; i++ {
		r.Record(int64(i), "sched", "tick", int64(i), 0, 0)
	}
	ev = r.Events()
	if len(ev) != 4 || r.Total() != 10 {
		t.Fatalf("len=%d total=%d", len(ev), r.Total())
	}
	for i, e := range ev {
		if want := int64(6 + i); e.At != want || e.A != want {
			t.Fatalf("event %d = %+v, want At=%d", i, e, want)
		}
	}
}

func TestNilRecorderSafe(t *testing.T) {
	var r *Recorder
	r.Record(1, "k", "n", 0, 0, 0) // must not panic
	if r.Len() != 0 || r.Total() != 0 || r.Events() != nil {
		t.Fatal("nil recorder not inert")
	}
	var b strings.Builder
	r.Dump(&b)
	if b.Len() != 0 {
		t.Fatal("nil recorder dumped output")
	}
	var s *Set
	if s.Recorders() != nil {
		t.Fatal("nil set returned recorders")
	}
	s.Dump(&b) // must not panic
}

func TestDumpFormat(t *testing.T) {
	s := NewSet(8)
	r := s.Track("node1")
	r.Record(1_500_000, "phase", "freeze", 101, 0, 250_000)
	r.Record(2_000_000, "pkt", "rx", 7, 9, 42)
	var b strings.Builder
	s.Dump(&b)
	out := b.String()
	if !strings.Contains(out, "flight node1: 2/2 events retained") {
		t.Fatalf("missing header:\n%s", out)
	}
	if !strings.Contains(out, "phase") || !strings.Contains(out, "freeze") ||
		!strings.Contains(out, "a=101") || !strings.Contains(out, "c=250000") {
		t.Fatalf("missing event fields:\n%s", out)
	}
	// Events render oldest first.
	if strings.Index(out, "freeze") > strings.Index(out, "rx") {
		t.Fatalf("events not oldest-first:\n%s", out)
	}
}

// TestDumpWindowBoundaries pins the half-open [From, To) window
// semantics: an event timestamped exactly at From is part of the
// window, one exactly at To belongs to the next window.
func TestDumpWindowBoundaries(t *testing.T) {
	s := NewSet(8)
	r := s.Track("node1")
	from, to := int64(1_000_000_000), int64(2_000_000_000)
	r.Record(from-1, "pkt", "before", 1, 0, 0)
	r.Record(from, "pkt", "at-from", 2, 0, 0)
	r.Record(from+500_000_000, "pkt", "inside", 3, 0, 0)
	r.Record(to, "pkt", "at-to", 4, 0, 0)
	r.Record(to+1, "pkt", "after", 5, 0, 0)

	var b strings.Builder
	s.DumpWindow(&b, 1, from, to)
	out := b.String()
	if !strings.Contains(out, "flight dump @ sample window 1 [1.000000s, 2.000000s)") {
		t.Fatalf("missing locator header:\n%s", out)
	}
	if !strings.Contains(out, "at-from") || !strings.Contains(out, "inside") {
		t.Fatalf("window dropped in-range events (At==From must be included):\n%s", out)
	}
	for _, name := range []string{"before", "at-to", "after"} {
		if strings.Contains(out, name) {
			t.Fatalf("window leaked out-of-range event %q (At==To must be excluded):\n%s", name, out)
		}
	}
	if !strings.Contains(out, "flight node1: 2/5 retained events in window") {
		t.Fatalf("header does not report the filtered count:\n%s", out)
	}
}

// TestDumpRangeEmptyAndNil covers the degenerate windows: an empty
// window dumps a header and nothing else, and a nil recorder is a no-op.
func TestDumpRangeEmptyAndNil(t *testing.T) {
	r := New("node1", 4)
	r.Record(10, "pkt", "rx", 1, 0, 0)
	var b strings.Builder
	r.DumpRange(&b, 100, 200)
	if !strings.Contains(b.String(), "0/1 retained events in window") {
		t.Fatalf("empty window header wrong:\n%s", b.String())
	}
	if strings.Contains(b.String(), "rx") {
		t.Fatalf("empty window leaked events:\n%s", b.String())
	}
	var nilR *Recorder
	b.Reset()
	nilR.DumpRange(&b, 0, 100)
	if b.Len() != 0 {
		t.Fatalf("nil recorder wrote output: %q", b.String())
	}
}

// BenchmarkRecord pins the flight recorder's steady-state recording cost
// at zero allocations: the ring overwrites in place and never copies the
// event strings.
func BenchmarkRecord(b *testing.B) {
	r := New("bench", 512)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Record(int64(i), "pkt", "rx", int64(i), int64(i*2), 0)
	}
	if r.Total() != uint64(b.N) {
		b.Fatal("lost events")
	}
}
