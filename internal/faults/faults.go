// Package faults is the deterministic fault-injection plane.
//
// It programs failures into the simulated fabric — loss bursts,
// duplication, reordering, bounded delay jitter, link-down windows and
// node crashes — all driven off the virtual clock, so a given (scenario,
// seed) pair reproduces the exact same packet-level behaviour on every
// run. Programs implement netsim.FaultModel and are installed per NIC;
// crash triggers hang off migration phase hooks so a failure can be
// pinned to an exact protocol moment ("destination dies during precopy
// round 2", "during freeze", "while reinjecting").
//
// The package exists to answer the question the paper's §V evaluation
// leaves open: do the no-loss/no-duplication/no-reordering invariants
// survive when the cluster itself is misbehaving? The chaos suites in
// internal/migration and internal/eval are built on it.
package faults

import (
	"dvemig/internal/netsim"
	"dvemig/internal/simtime"
)

// Window is a half-open interval [From, To) of virtual time.
type Window struct {
	From, To simtime.Time
}

// Contains reports whether t falls inside the window.
func (w Window) Contains(t simtime.Time) bool { return t >= w.From && t < w.To }

// Burst is a window of elevated random loss, e.g. a flaky transceiver
// or a congested uplink shedding packets for a few hundred ms.
type Burst struct {
	Window Window
	// Rate is the drop probability while the burst is active.
	Rate float64
}

// Program is a scriptable per-link fault program. The zero value does
// nothing; knobs compose (a packet can be jittered and duplicated).
// Egress ("tx") consults every knob; ingress ("rx") consults only the
// Down windows, which is what makes a window a full partition: neither
// direction of the link passes traffic.
//
// All randomness comes from one xorshift64* stream seeded by Seed, and
// decisions are evaluated in a fixed order, so a Program is bit-for-bit
// reproducible under the deterministic scheduler.
type Program struct {
	Seed uint64

	// BaseLoss is the steady-state random drop probability.
	BaseLoss float64
	// Bursts raise the drop probability inside their windows (the
	// highest active rate wins over BaseLoss).
	Bursts []Burst

	// DupRate duplicates a packet with this probability; the copy
	// arrives DupDelay after the original (default 200µs when zero).
	DupRate  float64
	DupDelay simtime.Duration

	// ReorderRate holds a packet for ReorderDelay (default 2ms when
	// zero) with this probability, letting its successors overtake it
	// on the wire — the classic reordering model.
	ReorderRate  float64
	ReorderDelay simtime.Duration

	// JitterMax adds a uniform random delay in [0, JitterMax) to every
	// packet when non-zero.
	JitterMax simtime.Duration

	// Down lists windows during which the link is dead in both
	// directions (cable pull, switch reboot, partition).
	Down []Window

	rng *simtime.Rand
}

// NewProgram returns an empty program with its RNG seeded.
func NewProgram(seed uint64) *Program { return &Program{Seed: seed} }

func (pr *Program) rand() *simtime.Rand {
	if pr.rng == nil {
		pr.rng = simtime.NewRand(pr.Seed | 1)
	}
	return pr.rng
}

func (pr *Program) down(now simtime.Time) bool {
	for _, w := range pr.Down {
		if w.Contains(now) {
			return true
		}
	}
	return false
}

// Apply implements netsim.FaultModel.
func (pr *Program) Apply(now simtime.Time, dir string, p *netsim.Packet) netsim.FaultAction {
	var act netsim.FaultAction
	if pr.down(now) {
		act.Drop = true
		return act
	}
	if dir != "tx" {
		// Ingress only honours the down windows; everything else is an
		// egress phenomenon (and must not double-fire per traversal).
		return act
	}
	// Fixed evaluation order: loss, duplication, reordering, jitter.
	rate := pr.BaseLoss
	for _, b := range pr.Bursts {
		if b.Window.Contains(now) && b.Rate > rate {
			rate = b.Rate
		}
	}
	if rate > 0 && pr.rand().Float64() < rate {
		act.Drop = true
		return act
	}
	if pr.DupRate > 0 && pr.rand().Float64() < pr.DupRate {
		act.Duplicate = true
		act.DupDelay = pr.DupDelay
		if act.DupDelay <= 0 {
			act.DupDelay = 200 * 1e3 // 200µs
		}
	}
	if pr.ReorderRate > 0 && pr.rand().Float64() < pr.ReorderRate {
		d := pr.ReorderDelay
		if d <= 0 {
			d = 2 * 1e6 // 2ms
		}
		act.ExtraDelay += d
	}
	if pr.JitterMax > 0 {
		act.ExtraDelay += simtime.Duration(pr.rand().Uint64() % uint64(pr.JitterMax))
	}
	return act
}
