package faults

import (
	"testing"

	"dvemig/internal/netsim"
	"dvemig/internal/simtime"
)

// rig is two NICs on a switch with a receive counter on b.
type rig struct {
	sched *simtime.Scheduler
	a, b  *netsim.NIC
	rx    []simtime.Time // arrival times at b
}

func newRig(t *testing.T) *rig {
	t.Helper()
	sched := simtime.NewScheduler()
	sw := netsim.NewSwitch(sched)
	r := &rig{sched: sched}
	r.a = sw.Attach("a", netsim.MakeAddr(10, 0, 0, 1), netsim.GigabitEthernet)
	r.b = sw.Attach("b", netsim.MakeAddr(10, 0, 0, 2), netsim.GigabitEthernet)
	r.b.SetHandler(netsim.HandlerFunc(func(p *netsim.Packet) {
		r.rx = append(r.rx, sched.Now())
	}))
	return r
}

func (r *rig) sendAt(t simtime.Time, seq uint32) {
	r.sched.At(t, "test.send", func() {
		r.a.Send(&netsim.Packet{
			SrcIP: netsim.MakeAddr(10, 0, 0, 1), DstIP: netsim.MakeAddr(10, 0, 0, 2),
			Proto: netsim.ProtoUDP, SrcPort: 1, DstPort: 2, Seq: seq,
			Payload: []byte("x"),
		})
	})
}

func TestDownWindowBlocksBothDirections(t *testing.T) {
	r := newRig(t)
	in := NewInjector(r.sched, 42)
	in.DownFor(r.a, 10*1e6, 20*1e6)

	r.sendAt(5*1e6, 1)  // before the window: delivered
	r.sendAt(15*1e6, 2) // inside: dropped on egress
	r.sendAt(25*1e6, 3) // after: delivered
	r.sched.Run()
	if len(r.rx) != 2 {
		t.Fatalf("got %d deliveries, want 2", len(r.rx))
	}
	if r.a.FaultDropped != 1 {
		t.Fatalf("FaultDropped = %d, want 1", r.a.FaultDropped)
	}

	// rx side: a down window on the *receiver* must also block.
	r2 := newRig(t)
	in2 := NewInjector(r2.sched, 42)
	in2.DownFor(r2.b, 0, 100*1e6)
	r2.sendAt(1*1e6, 1)
	r2.sched.Run()
	if len(r2.rx) != 0 {
		t.Fatalf("receiver down window leaked %d packets", len(r2.rx))
	}
}

func TestBurstLossElevatesInsideWindowOnly(t *testing.T) {
	r := newRig(t)
	in := NewInjector(r.sched, 7)
	in.Attach(r.a, &Program{
		Bursts: []Burst{{Window: Window{From: 0, To: 50 * 1e6}, Rate: 1.0}},
	})
	for i := 0; i < 10; i++ {
		r.sendAt(simtime.Time(i)*10*1e6+1, uint32(i)) // 1,10ms+1,...
	}
	r.sched.Run()
	// Sends at t < 50ms all dropped (rate 1.0), the rest delivered.
	if len(r.rx) != 5 {
		t.Fatalf("got %d deliveries, want 5", len(r.rx))
	}
}

func TestDuplicationDeliversTwoCopies(t *testing.T) {
	r := newRig(t)
	in := NewInjector(r.sched, 3)
	in.Attach(r.a, &Program{DupRate: 1.0})
	r.sendAt(1*1e6, 1)
	r.sched.Run()
	if len(r.rx) != 2 {
		t.Fatalf("got %d deliveries, want 2 (original + duplicate)", len(r.rx))
	}
	if r.rx[1] <= r.rx[0] {
		t.Fatalf("duplicate must trail the original: %v then %v", r.rx[0], r.rx[1])
	}
	if r.a.FaultDuplicated != 1 {
		t.Fatalf("FaultDuplicated = %d, want 1", r.a.FaultDuplicated)
	}
}

func TestReorderHoldLetsSuccessorOvertake(t *testing.T) {
	r := newRig(t)
	// Hold every packet sent through a program with ReorderRate 1 for
	// 2ms; send two packets back to back: with the hold applied to the
	// first only, the second would overtake. With it applied to both,
	// order is preserved but both are delayed. Verify the delay exists
	// and determinism by spot-checking arrival times.
	in := NewInjector(r.sched, 9)
	pr := in.Attach(r.a, &Program{ReorderRate: 0.5})
	_ = pr
	var seqs []uint32
	r.b.SetHandler(netsim.HandlerFunc(func(p *netsim.Packet) {
		r.rx = append(r.rx, r.sched.Now())
		seqs = append(seqs, p.Seq)
	}))
	for i := 0; i < 20; i++ {
		r.sendAt(simtime.Time(i)*100*1e3+1, uint32(i))
	}
	r.sched.Run()
	if len(seqs) != 20 {
		t.Fatalf("got %d deliveries, want 20 (reorder must not lose)", len(seqs))
	}
	inOrder := true
	for i := 1; i < len(seqs); i++ {
		if seqs[i] < seqs[i-1] {
			inOrder = false
		}
	}
	if inOrder {
		t.Fatalf("expected at least one overtake with ReorderRate 0.5 over 20 packets, got none")
	}
}

func TestProgramDeterminism(t *testing.T) {
	run := func() ([]simtime.Time, uint64) {
		r := newRig(t)
		in := NewInjector(r.sched, 1234)
		in.Attach(r.a, &Program{
			BaseLoss: 0.2, DupRate: 0.1, ReorderRate: 0.1, JitterMax: 500 * 1e3,
			Bursts: []Burst{{Window: Window{From: 2 * 1e6, To: 4 * 1e6}, Rate: 0.9}},
		})
		for i := 0; i < 200; i++ {
			r.sendAt(simtime.Time(i)*50*1e3+1, uint32(i))
		}
		r.sched.Run()
		return r.rx, r.a.FaultDropped
	}
	rx1, d1 := run()
	rx2, d2 := run()
	if d1 != d2 || len(rx1) != len(rx2) {
		t.Fatalf("non-deterministic: drops %d vs %d, deliveries %d vs %d", d1, d2, len(rx1), len(rx2))
	}
	for i := range rx1 {
		if rx1[i] != rx2[i] {
			t.Fatalf("delivery %d at %v vs %v", i, rx1[i], rx2[i])
		}
	}
}

func TestDeriveSeedDistinctPerLink(t *testing.T) {
	sched := simtime.NewScheduler()
	in := NewInjector(sched, 5)
	s1 := in.deriveSeed("node1.pub")
	s2 := in.deriveSeed("node1.pub") // same name, new attachment
	s3 := in.deriveSeed("node2.pub")
	if s1 == s2 || s1 == s3 || s2 == s3 {
		t.Fatalf("seeds must differ: %x %x %x", s1, s2, s3)
	}
}
