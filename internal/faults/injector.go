package faults

import (
	"dvemig/internal/migration"
	"dvemig/internal/netsim"
	"dvemig/internal/obs"
	"dvemig/internal/proc"
	"dvemig/internal/simtime"
)

// Injector owns the fault programs of one simulation run. It hands out
// per-link RNG seeds derived from its master seed, the link name and
// the attachment order, so a scenario is fully determined by (script,
// master seed) and two NICs never share a random stream.
type Injector struct {
	Sched *simtime.Scheduler
	Seed  uint64

	// Obs, when set, gets every injected fault annotated as an instant
	// on the affected link's or node's track. Window annotations use
	// InstantAt with the window's own timestamps — the injector must
	// never schedule observability events, or it would renumber the
	// event sequence and break bit-identical trace hashes.
	Obs *obs.Obs

	nAttached uint64
}

// NewInjector creates an injector with a master seed.
func NewInjector(sched *simtime.Scheduler, seed uint64) *Injector {
	return &Injector{Sched: sched, Seed: seed}
}

// deriveSeed mixes the master seed with the link name and a counter
// (splitmix64-style finalizer).
func (in *Injector) deriveSeed(name string) uint64 {
	h := in.Seed ^ 0x9e3779b97f4a7c15
	for _, c := range name {
		h = (h ^ uint64(c)) * 0xff51afd7ed558ccd
	}
	in.nAttached++
	h ^= in.nAttached * 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

// Attach installs prog on the NIC, seeding its RNG if the program did
// not fix a seed itself. It returns prog for chaining.
func (in *Injector) Attach(nic *netsim.NIC, prog *Program) *Program {
	if prog.Seed == 0 {
		prog.Seed = in.deriveSeed(nic.Name)
	}
	nic.SetFault(prog)
	return prog
}

// ProgramOn returns the Program installed on the NIC, attaching a fresh
// empty one when the NIC has none (or a foreign FaultModel).
func (in *Injector) ProgramOn(nic *netsim.NIC) *Program {
	if pr, ok := nic.Fault().(*Program); ok && pr != nil {
		return pr
	}
	return in.Attach(nic, NewProgram(0))
}

// DownFor takes the link dead in both directions during [from, to):
// no packet leaves or reaches the NIC inside the window.
func (in *Injector) DownFor(nic *netsim.NIC, from, to simtime.Time) {
	pr := in.ProgramOn(nic)
	pr.Down = append(pr.Down, Window{From: from, To: to})
	if in.Obs != nil {
		in.Obs.Trace.InstantAt(from, nic.Name, "fault:link-down")
		in.Obs.Trace.InstantAt(to, nic.Name, "fault:link-up")
		in.Obs.Metrics.Counter("faults/link_down_windows_total").Inc()
	}
}

// Isolate partitions a whole node during [from, to): both its public
// and in-cluster interfaces go dark, which is indistinguishable (to the
// rest of the cluster) from a crash that heals.
func (in *Injector) Isolate(n *proc.Node, from, to simtime.Time) {
	if n.PublicNIC != nil {
		in.DownFor(n.PublicNIC, from, to)
	}
	if n.LocalNIC != nil {
		in.DownFor(n.LocalNIC, from, to)
	}
}

// CrashAt schedules a hard, permanent node crash at virtual time t.
func (in *Injector) CrashAt(c *proc.Cluster, n *proc.Node, t simtime.Time) {
	in.Sched.At(t, "faults.crash."+n.Name, func() {
		if n.Alive {
			n.Fail(c)
			if in.Obs != nil {
				in.Obs.Trace.Instant(n.Name, "fault:crash")
				in.Obs.Metrics.Counter("faults/crashes_total").Inc()
			}
		}
	})
}

// CrashAtPhase arms a crash trigger on a migration phase: when the
// watched migrator fires ph (for PhasePrecopy, optionally a specific
// round; round 0 matches any), the victim node dies on the spot. Watch
// the source migrator for Connect/Precopy/Freeze/Transfer and the
// destination migrator for Restore/Reinject. Any previously installed
// OnPhase hook keeps running.
func CrashAtPhase(c *proc.Cluster, watch *migration.Migrator, victim *proc.Node,
	ph migration.Phase, round int) {
	prev := watch.OnPhase
	watch.OnPhase = func(ev migration.PhaseEvent) {
		if prev != nil {
			prev(ev)
		}
		if ev.Phase == ph && (round == 0 || ev.Round == round) && victim.Alive {
			victim.Fail(c)
		}
	}
}
