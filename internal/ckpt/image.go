// Package ckpt is the checkpoint/restart library of the system — the
// analogue of Berkeley Lab Checkpoint/Restart (BLCR) that the paper
// extends. It provides full process checkpointing, restart, and the
// incremental address-space tracking (dirty pages plus VMA-list diffing)
// that the precopy phase of live migration is built on (§III-A, §V-A).
//
// Behavioural state (the Go closures standing in for program text) is
// carried by reference inside Image — in a real system the code lives in
// the executable, which the paper assumes is present on every node.
// Everything that would actually cross the wire (memory pages, VMA
// geometry, registers, FD metadata, socket state) has a binary encoding,
// and migration charges network time for exactly those bytes.
package ckpt

import (
	"encoding/binary"
	"errors"
	"fmt"

	"dvemig/internal/netstack"
	"dvemig/internal/proc"
	"dvemig/internal/simtime"
)

// ThreadImage is the per-thread execution context transferred in the
// freeze phase: registers and identity (§III-A: "each thread then
// transfers registers, signal handlers and its process/thread ID").
type ThreadImage struct {
	TID  int
	Regs proc.Registers
}

// PageImage is one page of memory content.
type PageImage struct {
	VMAStart uint64
	Index    uint64
	Data     []byte
}

// VMARange describes region geometry for insert/resize records.
type VMARange struct {
	Start, End uint64
	Perms      string
}

// FDImage records one open file descriptor. Regular files carry path,
// offset and flags only (contents are on every node, §II-A); sockets
// carry full snapshots.
type FDImage struct {
	FD     int
	Kind   string // "file", "tcp", "udp"
	Path   string
	Offset int64
	Flags  int

	TCP *netstack.TCPSnapshot
	UDP *netstack.UDPSnapshot
}

// Image is a complete process checkpoint.
type Image struct {
	PID        int
	Name       string
	Threads    []ThreadImage
	VMAs       []VMARange
	Pages      []PageImage
	FDs        []FDImage
	CPUDemand  float64
	LoopPeriod simtime.Duration
	// HandledSignals lists signals with installed handlers; the handler
	// functions themselves ride in Behavior.
	HandledSignals []proc.Signal

	// Behavior carries the non-serializable program state by reference
	// (see package comment).
	Behavior *Behavior
}

// Behavior is the code-and-closures side of a process.
type Behavior struct {
	Tick        func(*proc.Process)
	SigHandlers map[proc.Signal]func(*proc.Process, *proc.Thread)
}

// --- binary encoding (size-faithful wire format) -------------------------

type wbuf struct{ b []byte }

func (w *wbuf) u8(v byte)    { w.b = append(w.b, v) }
func (w *wbuf) u16(v uint16) { w.b = binary.BigEndian.AppendUint16(w.b, v) }
func (w *wbuf) u32(v uint32) { w.b = binary.BigEndian.AppendUint32(w.b, v) }
func (w *wbuf) u64(v uint64) { w.b = binary.BigEndian.AppendUint64(w.b, v) }
func (w *wbuf) str(s string) { w.bytes([]byte(s)) }
func (w *wbuf) bytes(v []byte) {
	w.u32(uint32(len(v)))
	w.b = append(w.b, v...)
}

type rbuf struct {
	b   []byte
	off int
	err error
}

func (r *rbuf) fail() {
	if r.err == nil {
		r.err = errors.New("ckpt: truncated image")
	}
}
func (r *rbuf) u8() byte {
	if r.err != nil || r.off+1 > len(r.b) {
		r.fail()
		return 0
	}
	v := r.b[r.off]
	r.off++
	return v
}
func (r *rbuf) u16() uint16 {
	if r.err != nil || r.off+2 > len(r.b) {
		r.fail()
		return 0
	}
	v := binary.BigEndian.Uint16(r.b[r.off:])
	r.off += 2
	return v
}
func (r *rbuf) u32() uint32 {
	if r.err != nil || r.off+4 > len(r.b) {
		r.fail()
		return 0
	}
	v := binary.BigEndian.Uint32(r.b[r.off:])
	r.off += 4
	return v
}
func (r *rbuf) u64() uint64 {
	if r.err != nil || r.off+8 > len(r.b) {
		r.fail()
		return 0
	}
	v := binary.BigEndian.Uint64(r.b[r.off:])
	r.off += 8
	return v
}
func (r *rbuf) bytes() []byte {
	n := int(r.u32())
	if r.err != nil || n < 0 || r.off+n > len(r.b) {
		r.fail()
		return nil
	}
	v := append([]byte(nil), r.b[r.off:r.off+n]...)
	r.off += n
	return v
}
func (r *rbuf) str() string { return string(r.bytes()) }

func encodeThread(w *wbuf, t ThreadImage) {
	w.u32(uint32(t.TID))
	w.u64(t.Regs.PC)
	w.u64(t.Regs.SP)
	for _, g := range t.Regs.GPR {
		w.u64(g)
	}
}

func decodeThread(r *rbuf) ThreadImage {
	var t ThreadImage
	t.TID = int(r.u32())
	t.Regs.PC = r.u64()
	t.Regs.SP = r.u64()
	for i := range t.Regs.GPR {
		t.Regs.GPR[i] = r.u64()
	}
	return t
}

func encodeFD(w *wbuf, f FDImage) {
	w.u32(uint32(f.FD))
	w.str(f.Kind)
	switch f.Kind {
	case "file":
		w.str(f.Path)
		w.u64(uint64(f.Offset))
		w.u32(uint32(f.Flags))
	case "tcp":
		w.bytes(f.TCP.Encode())
	case "udp":
		w.bytes(f.UDP.Encode())
	}
}

func decodeFD(r *rbuf) (FDImage, error) {
	var f FDImage
	f.FD = int(r.u32())
	f.Kind = r.str()
	switch f.Kind {
	case "file":
		f.Path = r.str()
		f.Offset = int64(r.u64())
		f.Flags = int(r.u32())
	case "tcp":
		snap, err := netstack.DecodeTCPSnapshot(r.bytes())
		if err != nil {
			return f, err
		}
		f.TCP = snap
	case "udp":
		snap, err := netstack.DecodeUDPSnapshot(r.bytes())
		if err != nil {
			return f, err
		}
		f.UDP = snap
	default:
		if r.err == nil {
			return f, fmt.Errorf("ckpt: unknown fd kind %q", f.Kind)
		}
	}
	return f, r.err
}

// Encode serializes the image's transferable state.
func (img *Image) Encode() []byte { return img.EncodeInto(nil) }

// EncodeInto serializes the image into buf (reusing its capacity,
// overwriting its content); the guardian checkpoint stream calls this
// with a per-guardian scratch buffer so the periodic full-image encodes
// stop allocating.
func (img *Image) EncodeInto(buf []byte) []byte {
	w := wbuf{b: buf[:0]}
	w.u32(uint32(img.PID))
	w.str(img.Name)
	w.u64(uint64(img.CPUDemand * 1e6))
	w.u64(uint64(img.LoopPeriod))
	w.u32(uint32(len(img.HandledSignals)))
	for _, s := range img.HandledSignals {
		w.u32(uint32(s))
	}
	w.u32(uint32(len(img.Threads)))
	for _, t := range img.Threads {
		encodeThread(&w, t)
	}
	w.u32(uint32(len(img.VMAs)))
	for _, v := range img.VMAs {
		w.u64(v.Start)
		w.u64(v.End)
		w.str(v.Perms)
	}
	w.u32(uint32(len(img.Pages)))
	for _, p := range img.Pages {
		w.u64(p.VMAStart)
		w.u64(p.Index)
		encodePage(&w, p.Data)
	}
	w.u32(uint32(len(img.FDs)))
	for _, f := range img.FDs {
		encodeFD(&w, f)
	}
	return w.b
}

// DecodeImage parses an encoded image. Behavior is nil in the result;
// the caller re-attaches it (it travels by reference in the simulation).
func DecodeImage(data []byte) (*Image, error) {
	r := &rbuf{b: data}
	img := &Image{}
	img.PID = int(r.u32())
	img.Name = r.str()
	img.CPUDemand = float64(r.u64()) / 1e6
	img.LoopPeriod = simtime.Duration(r.u64())
	nh := int(r.u32())
	if r.err != nil || nh > 1<<16 {
		return nil, errors.New("ckpt: corrupt image header")
	}
	for i := 0; i < nh; i++ {
		img.HandledSignals = append(img.HandledSignals, proc.Signal(r.u32()))
	}
	nt := int(r.u32())
	if r.err != nil || nt > 1<<16 {
		return nil, errors.New("ckpt: corrupt thread count")
	}
	for i := 0; i < nt; i++ {
		img.Threads = append(img.Threads, decodeThread(r))
	}
	nv := int(r.u32())
	if r.err != nil || nv > 1<<20 {
		return nil, errors.New("ckpt: corrupt vma count")
	}
	for i := 0; i < nv; i++ {
		img.VMAs = append(img.VMAs, VMARange{Start: r.u64(), End: r.u64(), Perms: r.str()})
	}
	np := int(r.u32())
	if r.err != nil || np > 1<<24 {
		return nil, errors.New("ckpt: corrupt page count")
	}
	for i := 0; i < np; i++ {
		img.Pages = append(img.Pages, PageImage{VMAStart: r.u64(), Index: r.u64(), Data: decodePageData(r)})
	}
	nf := int(r.u32())
	if r.err != nil || nf > 1<<20 {
		return nil, errors.New("ckpt: corrupt fd count")
	}
	for i := 0; i < nf; i++ {
		f, err := decodeFD(r)
		if err != nil {
			return nil, err
		}
		img.FDs = append(img.FDs, f)
	}
	if r.err != nil {
		return nil, r.err
	}
	return img, nil
}
