package ckpt

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
)

// Context-file persistence: BLCR writes checkpoints to "context files"
// that can be restarted later (and the paper assumes shared or replicated
// storage, §II-A). WriteImage/ReadImage frame an encoded image with a
// magic, a format version and a CRC so a torn or corrupted file is
// detected instead of restored.

const (
	fileMagic   = 0x44564d47 // "DVMG"
	fileVersion = 1
)

// WriteImage serializes the image to w in context-file format.
func WriteImage(w io.Writer, img *Image) error {
	body := img.Encode()
	var hdr [16]byte
	binary.BigEndian.PutUint32(hdr[0:], fileMagic)
	binary.BigEndian.PutUint32(hdr[4:], fileVersion)
	binary.BigEndian.PutUint32(hdr[8:], uint32(len(body)))
	binary.BigEndian.PutUint32(hdr[12:], crc32.ChecksumIEEE(body))
	if _, err := w.Write(hdr[:]); err != nil {
		return fmt.Errorf("ckpt: write header: %w", err)
	}
	if _, err := w.Write(body); err != nil {
		return fmt.Errorf("ckpt: write body: %w", err)
	}
	return nil
}

// ReadImage parses a context file written by WriteImage, verifying the
// magic, version, length and checksum. Behavior is nil in the result, as
// with DecodeImage.
func ReadImage(r io.Reader) (*Image, error) {
	var hdr [16]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("ckpt: read header: %w", err)
	}
	if binary.BigEndian.Uint32(hdr[0:]) != fileMagic {
		return nil, fmt.Errorf("ckpt: not a context file (bad magic)")
	}
	if v := binary.BigEndian.Uint32(hdr[4:]); v != fileVersion {
		return nil, fmt.Errorf("ckpt: unsupported context-file version %d", v)
	}
	n := binary.BigEndian.Uint32(hdr[8:])
	if n > 1<<30 {
		return nil, fmt.Errorf("ckpt: absurd context-file size %d", n)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return nil, fmt.Errorf("ckpt: read body: %w", err)
	}
	if crc := crc32.ChecksumIEEE(body); crc != binary.BigEndian.Uint32(hdr[12:]) {
		return nil, fmt.Errorf("ckpt: context file corrupted (checksum mismatch)")
	}
	return DecodeImage(body)
}
