package ckpt

import (
	"fmt"
	"sort"

	"dvemig/internal/proc"
)

// PageCoord names one page of an address space: the owning region's
// start address and the page index within it.
type PageCoord struct {
	VMAStart uint64
	Index    uint64
}

// Addr returns the page's virtual address.
func (c PageCoord) Addr() uint64 { return c.VMAStart + c.Index*proc.PageSize }

// PageDir is the partial-image directory a post-copy (or hybrid)
// migration ships at freeze time instead of page content: the full VMA
// geometry plus, for every resident page, a presence verdict. Present
// pages already hold their authoritative content on the destination
// (hybrid's bounded pre-copy round shipped them and they stayed clean);
// absent pages stay on the source and are pulled on demand or swept by
// the background prefetcher. Unlisted pages were never materialized and
// remain lazy zero pages on both sides.
type PageDir struct {
	VMAs    []VMARange
	Present []PageCoord
	Absent  []PageCoord
}

// BuildPageDir walks the address space in canonical (VMA, index) order
// and classifies every resident page with the present predicate. A nil
// predicate marks everything absent (pure post-copy).
func BuildPageDir(as *proc.AddressSpace, present func(v *proc.VMA, idx uint64, pg *proc.Page) bool) *PageDir {
	dir := &PageDir{}
	for _, v := range as.VMAs() {
		dir.VMAs = append(dir.VMAs, VMARange{Start: v.Start, End: v.End, Perms: v.Perms})
		idxs := make([]uint64, 0, len(v.Pages))
		for idx := range v.Pages {
			idxs = append(idxs, idx)
		}
		sort.Slice(idxs, func(i, j int) bool { return idxs[i] < idxs[j] })
		for _, idx := range idxs {
			c := PageCoord{VMAStart: v.Start, Index: idx}
			if present != nil && present(v, idx, v.Pages[idx]) {
				dir.Present = append(dir.Present, c)
			} else {
				dir.Absent = append(dir.Absent, c)
			}
		}
	}
	return dir
}

// Encode serializes the directory.
func (d *PageDir) Encode() []byte { return d.EncodeInto(nil) }

// EncodeInto serializes into buf's capacity (see MemDelta.EncodeInto).
func (d *PageDir) EncodeInto(buf []byte) []byte {
	w := wbuf{b: buf[:0]}
	w.u32(uint32(len(d.VMAs)))
	for _, v := range d.VMAs {
		w.u64(v.Start)
		w.u64(v.End)
		w.str(v.Perms)
	}
	for _, set := range [][]PageCoord{d.Present, d.Absent} {
		w.u32(uint32(len(set)))
		for _, c := range set {
			w.u64(c.VMAStart)
			w.u64(c.Index)
		}
	}
	return w.b
}

// DecodePageDir parses an encoded directory.
func DecodePageDir(data []byte) (*PageDir, error) {
	r := &rbuf{b: data}
	d := &PageDir{}
	nv := int(r.u32())
	if r.err != nil || nv > 1<<20 {
		return nil, fmt.Errorf("ckpt: corrupt page-dir vma count")
	}
	for i := 0; i < nv && r.err == nil; i++ {
		d.VMAs = append(d.VMAs, VMARange{Start: r.u64(), End: r.u64(), Perms: r.str()})
	}
	for set := 0; set < 2; set++ {
		n := int(r.u32())
		if r.err != nil || n > 1<<24 {
			return nil, fmt.Errorf("ckpt: corrupt page-dir coord count")
		}
		coords := make([]PageCoord, 0, n)
		for i := 0; i < n && r.err == nil; i++ {
			coords = append(coords, PageCoord{VMAStart: r.u64(), Index: r.u64()})
		}
		if set == 0 {
			d.Present = coords
		} else {
			d.Absent = coords
		}
	}
	if r.err != nil {
		return nil, r.err
	}
	return d, nil
}

// ApplyPageDir reconciles the destination's shadow address space with
// the freeze-time directory: geometry is brought to the frozen shape
// (pure post-copy starts from an empty shadow; hybrid's shadow already
// holds round-one state), every present page is verified resident, and
// every absent page gets a placeholder that faults until filled.
func ApplyPageDir(as *proc.AddressSpace, dir *PageDir) error {
	want := make(map[uint64]VMARange, len(dir.VMAs))
	for _, v := range dir.VMAs {
		want[v.Start] = v
	}
	var stale []uint64
	for _, v := range as.VMAs() {
		if _, ok := want[v.Start]; !ok {
			stale = append(stale, v.Start)
		}
	}
	for _, s := range stale {
		if err := as.Munmap(s); err != nil {
			return err
		}
	}
	for _, v := range dir.VMAs {
		cur := findRegion(as, v.Start)
		switch {
		case cur == nil:
			if _, err := as.MmapFixed(v.Start, v.End, v.Perms); err != nil {
				return err
			}
		case cur.End != v.End:
			if err := as.Resize(v.Start, v.End-v.Start); err != nil {
				return err
			}
		}
	}
	for _, c := range dir.Present {
		v := findRegion(as, c.VMAStart)
		if v == nil || v.Pages[c.Index] == nil || v.Pages[c.Index].Absent {
			return fmt.Errorf("ckpt: directory says page %#x+%d is present but it is not",
				c.VMAStart, c.Index)
		}
	}
	for _, c := range dir.Absent {
		if err := as.MarkAbsent(c.VMAStart, c.Index); err != nil {
			return err
		}
	}
	return nil
}

func findRegion(as *proc.AddressSpace, start uint64) *proc.VMA {
	for _, v := range as.VMAs() {
		if v.Start == start {
			return v
		}
	}
	return nil
}

// ExtractPage copies one page's content out of a (frozen) address
// space — the pull server's read primitive. The bool is false when the
// coordinate names no resident page.
func ExtractPage(as *proc.AddressSpace, c PageCoord) ([]byte, bool) {
	v := findRegion(as, c.VMAStart)
	if v == nil {
		return nil, false
	}
	pg := v.Pages[c.Index]
	if pg == nil || pg.Absent {
		return nil, false
	}
	return append([]byte(nil), pg.Data...), true
}
