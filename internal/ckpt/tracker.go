package ckpt

import (
	"sort"

	"dvemig/internal/proc"
)

// MemDelta is one round of incremental address-space updates: geometry
// changes against the tracking list plus the content of pages dirtied
// since the previous round.
type MemDelta struct {
	Round   int
	NewVMAs []VMARange
	Removed []uint64 // start addresses of unmapped regions
	Resized []VMARange
	Pages   []PageImage
}

// Empty reports whether the delta carries nothing.
func (d *MemDelta) Empty() bool {
	return len(d.NewVMAs) == 0 && len(d.Removed) == 0 && len(d.Resized) == 0 && len(d.Pages) == 0
}

// PageDataBytes sums the raw page content the delta carries — the
// strategy race's bytes-transferred axis (geometry records and framing
// excluded so pre-copy, post-copy and hybrid compare like for like).
func (d *MemDelta) PageDataBytes() uint64 {
	var n uint64
	for _, p := range d.Pages {
		n += uint64(len(p.Data))
	}
	return n
}

// Encode serializes the delta (this is what crosses the network each
// precopy round).
func (d *MemDelta) Encode() []byte { return d.EncodeInto(nil) }

// EncodeInto serializes the delta into buf (reusing its capacity,
// overwriting its content) and returns the encoded bytes. The migration
// hot path calls this with a per-connection scratch buffer so precopy
// rounds stop allocating; the transport copies the bytes into the socket
// send buffer, so the scratch may be reused immediately after the send.
func (d *MemDelta) EncodeInto(buf []byte) []byte {
	w := wbuf{b: buf[:0]}
	w.u32(uint32(d.Round))
	w.u32(uint32(len(d.NewVMAs)))
	for _, v := range d.NewVMAs {
		w.u64(v.Start)
		w.u64(v.End)
		w.str(v.Perms)
	}
	w.u32(uint32(len(d.Removed)))
	for _, s := range d.Removed {
		w.u64(s)
	}
	w.u32(uint32(len(d.Resized)))
	for _, v := range d.Resized {
		w.u64(v.Start)
		w.u64(v.End)
		w.str(v.Perms)
	}
	w.u32(uint32(len(d.Pages)))
	for _, p := range d.Pages {
		w.u64(p.VMAStart)
		w.u64(p.Index)
		encodePage(&w, p.Data)
	}
	return w.b
}

// DecodeMemDelta parses an encoded delta.
func DecodeMemDelta(data []byte) (*MemDelta, error) {
	r := &rbuf{b: data}
	d := &MemDelta{Round: int(r.u32())}
	n := int(r.u32())
	for i := 0; i < n && r.err == nil; i++ {
		d.NewVMAs = append(d.NewVMAs, VMARange{Start: r.u64(), End: r.u64(), Perms: r.str()})
	}
	n = int(r.u32())
	for i := 0; i < n && r.err == nil; i++ {
		d.Removed = append(d.Removed, r.u64())
	}
	n = int(r.u32())
	for i := 0; i < n && r.err == nil; i++ {
		d.Resized = append(d.Resized, VMARange{Start: r.u64(), End: r.u64(), Perms: r.str()})
	}
	n = int(r.u32())
	for i := 0; i < n && r.err == nil; i++ {
		d.Pages = append(d.Pages, PageImage{VMAStart: r.u64(), Index: r.u64(), Data: decodePageData(r)})
	}
	if r.err != nil {
		return nil, r.err
	}
	return d, nil
}

type trackEntry struct {
	start, end uint64
	perms      string
}

// Tracker maintains the linked list of "our own tracking structures that
// store the memory area properties of the last incremental loop" (§V-A).
// Each round it diffs the live vm_area list against the tracking list,
// emits geometry changes, collects dirty pages and clears their bits.
type Tracker struct {
	prev  []trackEntry
	round int
}

// NewTracker returns an empty tracker; the first Delta call transfers
// the full mapping and all resident pages (the initial precopy transfer
// of "memory mappings" in Fig 3).
func NewTracker() *Tracker { return &Tracker{} }

// Round returns how many deltas have been produced.
func (t *Tracker) Round() int { return t.round }

// Delta computes one incremental round against the address space.
func (t *Tracker) Delta(as *proc.AddressSpace) *MemDelta {
	t.round++
	d := &MemDelta{Round: t.round}
	live := as.VMAs()

	// Diff the live VMA list against the tracking list. Both are sorted
	// by start address.
	prevByStart := make(map[uint64]trackEntry, len(t.prev))
	for _, e := range t.prev {
		prevByStart[e.start] = e
	}
	liveByStart := make(map[uint64]bool, len(live))
	firstRound := t.round == 1
	for _, v := range live {
		liveByStart[v.Start] = true
		e, known := prevByStart[v.Start]
		switch {
		case !known:
			d.NewVMAs = append(d.NewVMAs, VMARange{Start: v.Start, End: v.End, Perms: v.Perms})
		case e.end != v.End || e.perms != v.Perms:
			d.Resized = append(d.Resized, VMARange{Start: v.Start, End: v.End, Perms: v.Perms})
		}
	}
	for _, e := range t.prev {
		if !liveByStart[e.start] {
			d.Removed = append(d.Removed, e.start)
		}
	}
	sort.Slice(d.Removed, func(i, j int) bool { return d.Removed[i] < d.Removed[j] })

	// Page content: on the first round everything resident, afterwards
	// only pages with the dirty bit set.
	if firstRound {
		for _, v := range live {
			idxs := make([]uint64, 0, len(v.Pages))
			for idx := range v.Pages {
				idxs = append(idxs, idx)
			}
			sort.Slice(idxs, func(i, j int) bool { return idxs[i] < idxs[j] })
			for _, idx := range idxs {
				d.Pages = append(d.Pages, PageImage{
					VMAStart: v.Start, Index: idx,
					Data: append([]byte(nil), v.Pages[idx].Data...),
				})
			}
		}
	} else {
		for _, ref := range as.DirtyPages() {
			pg := ref.VMA.Pages[ref.PageIndex]
			d.Pages = append(d.Pages, PageImage{
				VMAStart: ref.VMA.Start, Index: ref.PageIndex,
				Data: append([]byte(nil), pg.Data...),
			})
		}
	}
	as.ClearDirty()

	// Update the tracking list.
	t.prev = t.prev[:0]
	for _, v := range live {
		t.prev = append(t.prev, trackEntry{start: v.Start, end: v.End, perms: v.Perms})
	}
	return d
}

// ApplyDelta replays one round onto the destination's shadow address
// space: geometry first, then page content.
func ApplyDelta(as *proc.AddressSpace, d *MemDelta) error {
	for _, s := range d.Removed {
		if err := as.Munmap(s); err != nil {
			return err
		}
	}
	for _, v := range d.NewVMAs {
		if _, err := as.MmapFixed(v.Start, v.End, v.Perms); err != nil {
			return err
		}
	}
	for _, v := range d.Resized {
		if err := as.Resize(v.Start, v.End-v.Start); err != nil {
			return err
		}
	}
	for _, p := range d.Pages {
		if err := as.Write(p.VMAStart+p.Index*proc.PageSize, p.Data); err != nil {
			return err
		}
	}
	as.ClearDirty()
	return nil
}
