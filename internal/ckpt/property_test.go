package ckpt

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"dvemig/internal/proc"
)

// TestMemDeltaEncodeDecodeProperty: any generated delta survives the wire
// format bit for bit.
func TestMemDeltaEncodeDecodeProperty(t *testing.T) {
	f := func(round uint8, starts []uint16, pageIdx []uint8, data []byte) bool {
		d := &MemDelta{Round: int(round)}
		for i, st := range starts {
			base := uint64(st)*proc.PageSize + 0x10000
			switch i % 3 {
			case 0:
				d.NewVMAs = append(d.NewVMAs, VMARange{Start: base, End: base + proc.PageSize, Perms: "rw-"})
			case 1:
				d.Removed = append(d.Removed, base)
			case 2:
				d.Resized = append(d.Resized, VMARange{Start: base, End: base + 2*proc.PageSize, Perms: "r--"})
			}
		}
		for i, idx := range pageIdx {
			pg := data
			if len(pg) > proc.PageSize {
				pg = pg[:proc.PageSize]
			}
			d.Pages = append(d.Pages, PageImage{
				VMAStart: uint64(i) * 0x100000, Index: uint64(idx),
				Data: append([]byte(nil), pg...),
			})
		}
		got, err := DecodeMemDelta(d.Encode())
		if err != nil {
			return false
		}
		// Normalize nil/empty page data.
		for i := range d.Pages {
			if len(d.Pages[i].Data) == 0 {
				d.Pages[i].Data = nil
			}
		}
		for i := range got.Pages {
			if len(got.Pages[i].Data) == 0 {
				got.Pages[i].Data = nil
			}
		}
		return reflect.DeepEqual(d, got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// TestPrecopyRandomWorkloadConverges: under an arbitrary interleaving of
// writes, mmaps, munmaps and resizes between rounds, applying every delta
// to a shadow always reproduces the source exactly.
func TestPrecopyRandomWorkloadConverges(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		rnd := rand.New(rand.NewSource(seed))
		as := proc.NewAddressSpace()
		var regions []uint64
		// Seed with a few regions.
		for i := 0; i < 3; i++ {
			v := as.Mmap(uint64(1+rnd.Intn(8))*proc.PageSize, "rw-")
			regions = append(regions, v.Start)
		}
		tr := NewTracker()
		shadow := proc.NewAddressSpace()
		rounds := 3 + rnd.Intn(5)
		for r := 0; r < rounds; r++ {
			if err := ApplyDelta(shadow, tr.Delta(as)); err != nil {
				t.Fatalf("seed %d round %d: %v", seed, r, err)
			}
			// Random mutations between rounds.
			for op := 0; op < 5; op++ {
				switch rnd.Intn(4) {
				case 0: // write
					if len(regions) > 0 {
						start := regions[rnd.Intn(len(regions))]
						if v := findRegion(as, start); v != nil {
							off := uint64(rnd.Intn(int(v.Len())))
							n := 1 + rnd.Intn(200)
							buf := make([]byte, n)
							rnd.Read(buf)
							if off+uint64(n) > v.Len() {
								off = 0
							}
							_ = as.Write(v.Start+off, buf)
						}
					}
				case 1: // mmap
					v := as.Mmap(uint64(1+rnd.Intn(4))*proc.PageSize, "rw-")
					regions = append(regions, v.Start)
				case 2: // munmap
					if len(regions) > 1 {
						i := rnd.Intn(len(regions))
						if as.Munmap(regions[i]) == nil {
							regions = append(regions[:i], regions[i+1:]...)
						}
					}
				case 3: // resize (shrink only: growth may collide)
					if len(regions) > 0 {
						start := regions[rnd.Intn(len(regions))]
						if v := findRegion(as, start); v != nil && v.Len() > proc.PageSize {
							_ = as.Resize(start, v.Len()-proc.PageSize)
						}
					}
				}
			}
		}
		// Final freeze round.
		if err := ApplyDelta(shadow, tr.Delta(as)); err != nil {
			t.Fatalf("seed %d final: %v", seed, err)
		}
		assertSpacesEqual(t, seed, as, shadow)
	}
}

func assertSpacesEqual(t *testing.T, seed int64, a, b *proc.AddressSpace) {
	t.Helper()
	av, bv := a.VMAs(), b.VMAs()
	if len(av) != len(bv) {
		t.Fatalf("seed %d: vma count %d vs %d", seed, len(av), len(bv))
	}
	for i := range av {
		if av[i].Start != bv[i].Start || av[i].End != bv[i].End {
			t.Fatalf("seed %d: geometry mismatch at %d", seed, i)
		}
		x, _ := a.Read(av[i].Start, int(av[i].Len()))
		y, _ := b.Read(bv[i].Start, int(bv[i].Len()))
		if !bytes.Equal(x, y) {
			t.Fatalf("seed %d: content mismatch in region %#x", seed, av[i].Start)
		}
	}
}
