package ckpt

import (
	"bytes"
	"testing"
)

// rtPage encodes data and decodes it back, asserting byte identity.
func rtPage(t *testing.T, data []byte) []byte {
	t.Helper()
	var w wbuf
	encodePage(&w, data)
	r := &rbuf{b: w.b}
	out := decodePageData(r)
	if r.err != nil {
		t.Fatalf("decode failed: %v (input len %d)", r.err, len(data))
	}
	if r.off != len(w.b) {
		t.Fatalf("decoder consumed %d of %d bytes", r.off, len(w.b))
	}
	if !bytes.Equal(out, data) {
		t.Fatalf("round trip mismatch: %d bytes in, %d out", len(data), len(out))
	}
	return w.b
}

func TestPageCodecRoundTrip(t *testing.T) {
	page := func(fill func(b []byte)) []byte {
		b := make([]byte, 4096)
		fill(b)
		return b
	}
	cases := map[string][]byte{
		"empty":      {},
		"zero":       page(func(b []byte) {}),
		"one-byte":   page(func(b []byte) { b[17] = 0xA7 }),
		"last-byte":  page(func(b []byte) { b[4095] = 1 }),
		"first-byte": page(func(b []byte) { b[0] = 9 }),
		"two-runs":   page(func(b []byte) { b[10] = 1; b[4000] = 2 }),
		"small-gap":  page(func(b []byte) { b[10] = 1; b[12] = 2 }), // merged run
		"dense": page(func(b []byte) {
			for i := range b {
				b[i] = byte(i%255) + 1
			}
		}),
		"half": page(func(b []byte) {
			for i := 0; i < 2048; i++ {
				b[i] = 0xEE
			}
		}),
		"alternating": page(func(b []byte) {
			for i := 0; i < len(b); i += 2 {
				b[i] = 1
			}
		}),
		"big-raw":  bytes.Repeat([]byte{3}, 1<<16), // over the sparse offset range
		"odd-size": []byte{0, 0, 0, 5, 0},
	}
	for name, data := range cases {
		t.Run(name, func(t *testing.T) {
			enc := rtPage(t, data)
			if len(data) >= 64 && isAllZero(data) && len(enc) > 16 {
				t.Fatalf("zero page encoded to %d bytes", len(enc))
			}
		})
	}
}

func isAllZero(b []byte) bool {
	for _, v := range b {
		if v != 0 {
			return false
		}
	}
	return true
}

// TestPageCodecElision pins the size wins the pipeline depends on: zero
// pages vanish, near-zero pages shrink two orders of magnitude, and
// dense pages pay at most the one-byte tag over the raw format.
func TestPageCodecElision(t *testing.T) {
	enc := func(data []byte) int {
		var w wbuf
		encodePage(&w, data)
		return len(w.b)
	}
	zero := make([]byte, 4096)
	if n := enc(zero); n > 8 {
		t.Fatalf("zero page: %d bytes, want <=8", n)
	}
	near := make([]byte, 4096)
	near[100] = 0xCD
	if n := enc(near); n > 32 {
		t.Fatalf("near-zero page: %d bytes, want <=32", n)
	}
	dense := make([]byte, 4096)
	for i := range dense {
		dense[i] = byte(i%255) + 1
	}
	if n := enc(dense); n > 4096+8 {
		t.Fatalf("dense page: %d bytes, want <=%d", n, 4096+8)
	}
}

// TestPageCodecRandomized round-trips pseudo-random pages across a
// density sweep (an xorshift generator keeps it deterministic).
func TestPageCodecRandomized(t *testing.T) {
	x := uint64(0x2545F4914F6CDD1D)
	rnd := func() uint64 {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		return x
	}
	for trial := 0; trial < 200; trial++ {
		size := int(rnd() % 5000)
		density := rnd() % 100
		data := make([]byte, size)
		for i := range data {
			if rnd()%100 < density {
				data[i] = byte(rnd())
			}
		}
		rtPage(t, data)
	}
}

// FuzzPageCodec: arbitrary bytes through the decoder must never panic,
// and whatever decodes must re-encode/decode to the same content.
func FuzzPageCodec(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{pageEncZero, 0, 0, 16, 0})
	f.Add([]byte{pageEncSparse, 0, 0, 0, 8, 0, 1, 0, 2, 0xAB, 0xCD})
	f.Add([]byte{pageEncRaw, 0, 0, 0, 2, 7, 7})
	f.Add([]byte{pageEncSparse, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF})
	f.Fuzz(func(t *testing.T, b []byte) {
		r := &rbuf{b: b}
		out := decodePageData(r)
		if r.err != nil {
			return
		}
		// Whatever decoded must survive a canonical round trip.
		var w wbuf
		encodePage(&w, out)
		r2 := &rbuf{b: w.b}
		out2 := decodePageData(r2)
		if r2.err != nil {
			t.Fatalf("re-decode failed: %v", r2.err)
		}
		if !bytes.Equal(out, out2) {
			t.Fatal("canonical round trip changed content")
		}
	})
}
