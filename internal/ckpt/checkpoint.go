package ckpt

import (
	"fmt"
	"sort"

	"dvemig/internal/netstack"
	"dvemig/internal/proc"
)

// Checkpoint takes a full (stop-and-copy) checkpoint of the process: all
// resident memory pages, VMA geometry, thread contexts, the open file
// table (metadata only — file contents live on every node), and socket
// snapshots. The caller must have made the process quiescent; for
// sockets that means they are unhashed or idle.
func Checkpoint(p *proc.Process) *Image {
	img := &Image{
		PID:        p.PID,
		Name:       p.Name,
		CPUDemand:  p.CPUDemand,
		LoopPeriod: p.LoopPeriod,
		Behavior: &Behavior{
			Tick:        p.Tick,
			SigHandlers: p.SigHandlers,
		},
	}
	for sig := range p.SigHandlers {
		img.HandledSignals = append(img.HandledSignals, sig)
	}
	sort.Slice(img.HandledSignals, func(i, j int) bool {
		return img.HandledSignals[i] < img.HandledSignals[j]
	})
	for _, th := range p.Threads {
		img.Threads = append(img.Threads, ThreadImage{TID: th.TID, Regs: th.Regs})
	}
	for _, v := range p.AS.VMAs() {
		img.VMAs = append(img.VMAs, VMARange{Start: v.Start, End: v.End, Perms: v.Perms})
		idxs := make([]uint64, 0, len(v.Pages))
		for idx := range v.Pages {
			idxs = append(idxs, idx)
		}
		sort.Slice(idxs, func(i, j int) bool { return idxs[i] < idxs[j] })
		for _, idx := range idxs {
			img.Pages = append(img.Pages, PageImage{
				VMAStart: v.Start, Index: idx,
				Data: append([]byte(nil), v.Pages[idx].Data...),
			})
		}
	}
	img.FDs = checkpointFDs(p)
	return img
}

// checkpointFDs dumps the FD table. Sockets are snapshotted in place;
// the live-migration engine instead excludes them here and handles them
// through the collective socket migration path.
func checkpointFDs(p *proc.Process) []FDImage {
	var out []FDImage
	for _, fd := range p.FDs.FDs() {
		switch f := p.FDs.Get(fd).(type) {
		case *proc.RegularFile:
			out = append(out, FDImage{FD: fd, Kind: "file", Path: f.Path, Offset: f.Offset, Flags: f.Flags})
		case *proc.TCPFile:
			out = append(out, FDImage{FD: fd, Kind: "tcp", TCP: netstack.SnapshotTCP(f.Sock)})
		case *proc.UDPFile:
			out = append(out, FDImage{FD: fd, Kind: "udp", UDP: netstack.SnapshotUDP(f.Sock)})
		}
	}
	return out
}

// CheckpointFDsExcludingSockets dumps only the regular-file descriptors:
// the third phase of collective socket migration runs "BLCR's regular
// file descriptor table iteration, but excluding the already processed
// network connections" (§III-C).
func CheckpointFDsExcludingSockets(p *proc.Process) []FDImage {
	var out []FDImage
	for _, fd := range p.FDs.FDs() {
		if f, ok := p.FDs.Get(fd).(*proc.RegularFile); ok {
			out = append(out, FDImage{FD: fd, Kind: "file", Path: f.Path, Offset: f.Offset, Flags: f.Flags})
		}
	}
	return out
}

// SocketFDs lists descriptor/socket pairs in FD-table order.
func SocketFDs(p *proc.Process) (tcp map[int]*netstack.TCPSocket, udp map[int]*netstack.UDPSocket) {
	tcp = make(map[int]*netstack.TCPSocket)
	udp = make(map[int]*netstack.UDPSocket)
	for _, fd := range p.FDs.FDs() {
		switch f := p.FDs.Get(fd).(type) {
		case *proc.TCPFile:
			tcp[fd] = f.Sock
		case *proc.UDPFile:
			udp[fd] = f.Sock
		}
	}
	return tcp, udp
}

// Restore materializes the image as a new process on node n: rebuild the
// address space (regular BLCR restart), re-open files, restore sockets
// (rehash + retransmission timer restart), recreate threads with their
// registers, re-install signal handlers, and resume the real-time loop.
func Restore(n *proc.Node, img *Image) (*proc.Process, error) {
	p := n.Spawn(img.Name, 0)
	// BLCR restores the original PID when possible.
	n.Detach(p)
	p.PID = img.PID
	n.Adopt(p)

	p.CPUDemand = img.CPUDemand
	p.Threads = p.Threads[:0] // replace the bootstrap thread
	for _, ti := range img.Threads {
		th := p.NewThread()
		th.TID = ti.TID
		th.Regs = ti.Regs
	}
	for _, v := range img.VMAs {
		if _, err := p.AS.MmapFixed(v.Start, v.End, v.Perms); err != nil {
			return nil, fmt.Errorf("ckpt restore: %w", err)
		}
	}
	for _, pg := range img.Pages {
		if err := p.AS.Write(pg.VMAStart+pg.Index*proc.PageSize, pg.Data); err != nil {
			return nil, fmt.Errorf("ckpt restore page: %w", err)
		}
	}
	p.AS.ClearDirty()
	if err := RestoreFDs(n, p, img.FDs); err != nil {
		return nil, err
	}
	if img.Behavior != nil {
		p.Tick = img.Behavior.Tick
		if img.Behavior.SigHandlers != nil {
			p.SigHandlers = img.Behavior.SigHandlers
		}
	}
	if img.LoopPeriod > 0 && p.Tick != nil {
		n.StartLoop(p, img.LoopPeriod)
	}
	return p, nil
}

// RestoreFDs re-creates file descriptors from images on process p.
func RestoreFDs(n *proc.Node, p *proc.Process, fds []FDImage) error {
	for _, f := range fds {
		switch f.Kind {
		case "file":
			if err := p.FDs.InstallAt(f.FD, &proc.RegularFile{Path: f.Path, Offset: f.Offset, Flags: f.Flags}); err != nil {
				return err
			}
		case "tcp":
			sk, err := netstack.RestoreTCP(n.Stack, f.TCP)
			if err != nil {
				return fmt.Errorf("ckpt restore tcp fd %d: %w", f.FD, err)
			}
			if err := p.FDs.InstallAt(f.FD, &proc.TCPFile{Sock: sk}); err != nil {
				return err
			}
		case "udp":
			us, err := netstack.RestoreUDP(n.Stack, f.UDP)
			if err != nil {
				return fmt.Errorf("ckpt restore udp fd %d: %w", f.FD, err)
			}
			if err := p.FDs.InstallAt(f.FD, &proc.UDPFile{Sock: us}); err != nil {
				return err
			}
		default:
			return fmt.Errorf("ckpt restore: unknown fd kind %q", f.Kind)
		}
	}
	return nil
}
