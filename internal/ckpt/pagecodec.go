package ckpt

// Page-content codec: the per-page encoding the checkpoint pipeline
// ships. A page is encoded as a one-byte tag plus a tag-specific body:
//
//	raw    — u32 length + the bytes verbatim (the historical format).
//	zero   — u32 length only: the page is all zeros, nothing crosses
//	         the wire (zero-page elision; zone-server working sets are
//	         mostly untouched zero pages).
//	sparse — u32 raw length, u16 segment count, then per segment
//	         {u16 offset, u16 length, bytes}: a delta against the zero
//	         page carrying only the non-zero runs. Chosen only when it
//	         is strictly smaller than raw, so pathological content
//	         costs at most one tag byte over the historical format.
//
// The decoder always materializes the full raw page, so everything
// downstream (ApplyDelta, PageDataBytes, restore) is format-agnostic.

const (
	pageEncRaw byte = iota
	pageEncZero
	pageEncSparse
)

// segHdrBytes is the wire cost of one sparse segment header (offset +
// length); zero gaps shorter than this are cheaper to ship inline than
// to split around.
const segHdrBytes = 4

// maxSparseLen bounds pages eligible for zero/sparse encoding: segment
// offsets are u16, so anything larger goes raw.
const maxSparseLen = 1 << 16

// nextSparseRun returns the next non-zero run at or after i, with zero
// gaps shorter than a segment header merged in. Returns (-1, -1) when
// only zeros remain.
func nextSparseRun(data []byte, i int) (start, end int) {
	for i < len(data) && data[i] == 0 {
		i++
	}
	if i >= len(data) {
		return -1, -1
	}
	start = i
	end = i
	for i < len(data) {
		if data[i] != 0 {
			i++
			end = i
			continue
		}
		j := i
		for j < len(data) && data[j] == 0 {
			j++
		}
		if j < len(data) && j-i < segHdrBytes {
			i = j
			continue
		}
		break
	}
	return start, end
}

// encodePage appends one page's content in the cheapest representation.
// It allocates nothing: segment runs are discovered by scanning twice
// (size pass, emit pass) instead of collecting them.
func encodePage(w *wbuf, data []byte) {
	if len(data) >= maxSparseLen {
		w.u8(pageEncRaw)
		w.bytes(data)
		return
	}
	nseg, sparseSize := 0, 2
	for s, e := nextSparseRun(data, 0); s >= 0; s, e = nextSparseRun(data, e) {
		nseg++
		sparseSize += segHdrBytes + (e - s)
	}
	if nseg == 0 {
		w.u8(pageEncZero)
		w.u32(uint32(len(data)))
		return
	}
	if nseg >= 1<<16 || sparseSize >= len(data) {
		w.u8(pageEncRaw)
		w.bytes(data)
		return
	}
	w.u8(pageEncSparse)
	w.u32(uint32(len(data)))
	w.u16(uint16(nseg))
	for s, e := nextSparseRun(data, 0); s >= 0; s, e = nextSparseRun(data, e) {
		w.u16(uint16(s))
		w.u16(uint16(e - s))
		w.b = append(w.b, data[s:e]...)
	}
}

// maxDecodedPage bounds a decoded page's claimed raw length; real pages
// are PageSize, but the decoder is a fuzz surface and must not be
// talked into huge allocations.
const maxDecodedPage = 1 << 20

// decodePageData parses one encodePage record, returning the full raw
// page content (freshly allocated — it never aliases the input).
func decodePageData(r *rbuf) []byte {
	switch r.u8() {
	case pageEncRaw:
		return r.bytes()
	case pageEncZero:
		n := int(r.u32())
		if r.err != nil || n < 0 || n > maxDecodedPage {
			r.fail()
			return nil
		}
		return make([]byte, n)
	case pageEncSparse:
		n := int(r.u32())
		nseg := int(r.u16())
		if r.err != nil || n < 0 || n > maxDecodedPage {
			r.fail()
			return nil
		}
		out := make([]byte, n)
		for i := 0; i < nseg; i++ {
			off := int(r.u16())
			l := int(r.u16())
			if r.err != nil {
				return nil
			}
			if off+l > n || r.off+l > len(r.b) {
				r.fail()
				return nil
			}
			copy(out[off:off+l], r.b[r.off:r.off+l])
			r.off += l
		}
		if r.err != nil {
			return nil
		}
		return out
	default:
		r.fail()
		return nil
	}
}
