package ckpt

import (
	"bytes"
	"reflect"
	"testing"
	"time"

	"dvemig/internal/netstack"
	"dvemig/internal/proc"
	"dvemig/internal/simtime"
)

func newTestCluster(n int) *proc.Cluster {
	return proc.NewCluster(simtime.NewScheduler(), n)
}

// buildProcess creates a process with memory content, several threads and
// regular files, returning it and its node.
func buildProcess(c *proc.Cluster) *proc.Process {
	n := c.Nodes[0]
	p := n.Spawn("zone_serv", 3)
	heap := p.AS.Mmap(64*proc.PageSize, "rw-")
	stack := p.AS.Mmap(16*proc.PageSize, "rw-")
	for i := uint64(0); i < 32; i++ {
		p.AS.Write(heap.Start+i*proc.PageSize, []byte{byte(i), byte(i * 3), 0xEE})
	}
	p.AS.Write(stack.Start, []byte("stack-bottom"))
	p.FDs.Install(&proc.RegularFile{Path: "/srv/world.db", Offset: 4096, Flags: 2})
	p.FDs.Install(&proc.RegularFile{Path: "/var/log/zone.log", Offset: 999, Flags: 1})
	p.CPUDemand = 0.35
	return p
}

func TestFullCheckpointRestoreMemoryIdentical(t *testing.T) {
	c := newTestCluster(2)
	p := buildProcess(c)
	img := Checkpoint(p)
	q, err := Restore(c.Nodes[1], img)
	if err != nil {
		t.Fatal(err)
	}
	if q.PID != p.PID || q.Name != p.Name {
		t.Fatal("identity not preserved")
	}
	if len(q.Threads) != len(p.Threads) {
		t.Fatal("thread count differs")
	}
	for i := range p.Threads {
		if !reflect.DeepEqual(p.Threads[i].Regs, q.Threads[i].Regs) {
			t.Fatal("registers corrupted")
		}
	}
	// Memory byte-for-byte over every mapped region.
	for i, v := range p.AS.VMAs() {
		qv := q.AS.VMAs()[i]
		if v.Start != qv.Start || v.End != qv.End {
			t.Fatal("vma geometry differs")
		}
		a, _ := p.AS.Read(v.Start, int(v.Len()))
		b, _ := q.AS.Read(v.Start, int(v.Len()))
		if !bytes.Equal(a, b) {
			t.Fatalf("memory differs in region %#x", v.Start)
		}
	}
	if q.CPUDemand != p.CPUDemand {
		t.Fatal("cpu accounting lost")
	}
	// Files re-opened with metadata.
	f, ok := q.FDs.Get(3).(*proc.RegularFile)
	if !ok || f.Path != "/srv/world.db" || f.Offset != 4096 {
		t.Fatal("file fd not restored")
	}
}

func TestImageEncodeDecodeRoundTrip(t *testing.T) {
	c := newTestCluster(1)
	p := buildProcess(c)
	img := Checkpoint(p)
	img.HandledSignals = []proc.Signal{proc.SIGCKPT}
	enc := img.Encode()
	dec, err := DecodeImage(enc)
	if err != nil {
		t.Fatal(err)
	}
	img.Behavior = nil // not serialized
	if !reflect.DeepEqual(img, dec) {
		t.Fatal("image roundtrip mismatch")
	}
}

func TestImageDecodeTruncated(t *testing.T) {
	c := newTestCluster(1)
	img := Checkpoint(buildProcess(c))
	enc := img.Encode()
	for _, cut := range []int{1, len(enc) / 2, len(enc) - 3} {
		if _, err := DecodeImage(enc[:cut]); err == nil {
			t.Fatalf("truncated image (%d bytes) accepted", cut)
		}
	}
}

func TestCheckpointWithSockets(t *testing.T) {
	c := newTestCluster(2)
	n1, n2 := c.Nodes[0], c.Nodes[1]
	p := n1.Spawn("srv", 1)
	lst := netstack.NewTCPSocket(n2.Stack)
	if err := lst.Listen(n2.LocalIP, 3306); err != nil {
		t.Fatal(err)
	}
	sk := netstack.NewTCPSocket(n1.Stack)
	if err := sk.Connect(n2.LocalIP, 3306); err != nil {
		t.Fatal(err)
	}
	us := netstack.NewUDPSocket(n1.Stack)
	if err := us.Bind(c.ClusterIP, 27960); err != nil {
		t.Fatal(err)
	}
	c.Sched.RunFor(time.Second)
	p.FDs.Install(&proc.TCPFile{Sock: sk})
	p.FDs.Install(&proc.UDPFile{Sock: us})
	p.FDs.Install(&proc.RegularFile{Path: "/x"})
	img := Checkpoint(p)
	kinds := map[string]int{}
	for _, f := range img.FDs {
		kinds[f.Kind]++
	}
	if kinds["tcp"] != 1 || kinds["udp"] != 1 || kinds["file"] != 1 {
		t.Fatalf("fd kinds = %v", kinds)
	}
	ex := CheckpointFDsExcludingSockets(p)
	if len(ex) != 1 || ex[0].Kind != "file" {
		t.Fatal("socket exclusion failed")
	}
	tcpFDs, udpFDs := SocketFDs(p)
	if len(tcpFDs) != 1 || len(udpFDs) != 1 {
		t.Fatal("SocketFDs wrong")
	}
}

func TestTrackerFirstRoundIsFull(t *testing.T) {
	c := newTestCluster(1)
	p := buildProcess(c)
	p.AS.ClearDirty()
	tr := NewTracker()
	d := tr.Delta(p.AS)
	if len(d.NewVMAs) != 2 {
		t.Fatalf("first round vmas = %d", len(d.NewVMAs))
	}
	if len(d.Pages) != 33 { // 32 heap pages + 1 stack page resident
		t.Fatalf("first round pages = %d, want 33", len(d.Pages))
	}
}

func TestTrackerDeltaOnlyDirty(t *testing.T) {
	c := newTestCluster(1)
	p := buildProcess(c)
	tr := NewTracker()
	tr.Delta(p.AS)
	heap := p.AS.VMAs()[0]
	p.AS.Touch(heap.Start + 5*proc.PageSize)
	p.AS.Touch(heap.Start + 9*proc.PageSize)
	d := tr.Delta(p.AS)
	if len(d.Pages) != 2 || len(d.NewVMAs) != 0 || len(d.Removed) != 0 {
		t.Fatalf("delta = %+v", d)
	}
	// Quiescent process: empty delta.
	d3 := tr.Delta(p.AS)
	if !d3.Empty() {
		t.Fatal("quiescent delta not empty")
	}
}

func TestTrackerGeometryChanges(t *testing.T) {
	c := newTestCluster(1)
	p := buildProcess(c)
	tr := NewTracker()
	tr.Delta(p.AS)
	// Insert, resize, remove — the three kinds of change §V-A names.
	nv := p.AS.Mmap(4*proc.PageSize, "rw-")
	heap := p.AS.VMAs()[0]
	stack := p.AS.VMAs()[1]
	if err := p.AS.Munmap(stack.Start); err != nil {
		t.Fatal(err)
	}
	if err := p.AS.Resize(heap.Start, 80*proc.PageSize); err != nil {
		t.Fatal(err)
	}
	d := tr.Delta(p.AS)
	if len(d.NewVMAs) != 1 || d.NewVMAs[0].Start != nv.Start {
		t.Fatalf("insert not tracked: %+v", d.NewVMAs)
	}
	if len(d.Resized) != 1 || d.Resized[0].End-d.Resized[0].Start != 80*proc.PageSize {
		t.Fatalf("resize not tracked: %+v", d.Resized)
	}
	if len(d.Removed) != 1 || d.Removed[0] != stack.Start {
		t.Fatalf("removal not tracked: %+v", d.Removed)
	}
}

func TestPrecopyConvergesToIdenticalMemory(t *testing.T) {
	c := newTestCluster(2)
	p := buildProcess(c)
	tr := NewTracker()
	shadow := proc.NewAddressSpace()
	// Round 1: full. Rounds 2..4: app keeps writing between rounds.
	heap := p.AS.VMAs()[0]
	for round := 0; round < 4; round++ {
		d := tr.Delta(p.AS)
		enc := d.Encode()
		dec, err := DecodeMemDelta(enc)
		if err != nil {
			t.Fatal(err)
		}
		if err := ApplyDelta(shadow, dec); err != nil {
			t.Fatal(err)
		}
		// Mutate: dirty some pages, grow a mapping.
		p.AS.Write(heap.Start+uint64(round)*proc.PageSize, []byte{byte(round + 100)})
		if round == 1 {
			p.AS.Mmap(2*proc.PageSize, "rw-")
		}
	}
	// Final freeze round.
	if err := ApplyDelta(shadow, tr.Delta(p.AS)); err != nil {
		t.Fatal(err)
	}
	// Shadow must equal source byte for byte.
	if len(shadow.VMAs()) != len(p.AS.VMAs()) {
		t.Fatalf("vma count: shadow %d, src %d", len(shadow.VMAs()), len(p.AS.VMAs()))
	}
	for i, v := range p.AS.VMAs() {
		sv := shadow.VMAs()[i]
		if v.Start != sv.Start || v.End != sv.End {
			t.Fatal("geometry mismatch")
		}
		a, _ := p.AS.Read(v.Start, int(v.Len()))
		b, _ := shadow.Read(v.Start, int(v.Len()))
		if !bytes.Equal(a, b) {
			t.Fatalf("content mismatch in region %#x", v.Start)
		}
	}
}

func TestDeltaShrinksWithQuiescence(t *testing.T) {
	// The core precopy premise: as the app's write rate is fixed and the
	// rounds shrink, dirty sets shrink too. Simulate by writing fewer
	// pages each round and verifying encoded sizes decrease.
	c := newTestCluster(1)
	p := buildProcess(c)
	tr := NewTracker()
	tr.Delta(p.AS)
	heap := p.AS.VMAs()[0]
	sizes := []int{}
	for _, writes := range []int{16, 8, 4, 1} {
		for i := 0; i < writes; i++ {
			p.AS.Touch(heap.Start + uint64(i)*proc.PageSize)
		}
		sizes = append(sizes, len(tr.Delta(p.AS).Encode()))
	}
	for i := 1; i < len(sizes); i++ {
		if sizes[i] >= sizes[i-1] {
			t.Fatalf("delta sizes not shrinking: %v", sizes)
		}
	}
}

func TestRestoreWithSocketsEndToEnd(t *testing.T) {
	// Full checkpoint of a process holding a live TCP connection, restore
	// on another node, verify the connection continues (in-cluster peer
	// reachable via the same path — no address translation needed here
	// because we restore on the same node in this unit test).
	c := newTestCluster(2)
	n1, n2 := c.Nodes[0], c.Nodes[1]
	p := n1.Spawn("db-client", 1)
	lst := netstack.NewTCPSocket(n2.Stack)
	if err := lst.Listen(n2.LocalIP, 3306); err != nil {
		t.Fatal(err)
	}
	var srv *netstack.TCPSocket
	lst.OnAccept = func(ch *netstack.TCPSocket) { srv = ch }
	sk := netstack.NewTCPSocket(n1.Stack)
	if err := sk.Connect(n2.LocalIP, 3306); err != nil {
		t.Fatal(err)
	}
	c.Sched.RunFor(time.Second)
	p.FDs.Install(&proc.TCPFile{Sock: sk})
	sk.Send([]byte("before-ckpt"))
	c.Sched.RunFor(100 * time.Millisecond)
	var got []byte
	srv.OnReadable = func() { got = append(got, srv.Recv()...) }
	got = append(got, srv.Recv()...)

	// Quiesce and checkpoint (stop-and-copy style restart on same node).
	sk.Unhash()
	img := Checkpoint(p)
	p.Exit()
	q, err := Restore(n1, img)
	if err != nil {
		t.Fatal(err)
	}
	qsk := q.FDs.Get(3).(*proc.TCPFile).Sock
	if qsk.State != netstack.TCPEstablished {
		t.Fatal("restored socket not established")
	}
	qsk.Send([]byte("+after"))
	c.Sched.RunFor(time.Second)
	if string(got) != "before-ckpt+after" {
		t.Fatalf("stream broken across restart: %q", got)
	}
}

func TestRestoreRejectsCorruptGeometry(t *testing.T) {
	c := newTestCluster(1)
	img := Checkpoint(buildProcess(c))
	img.VMAs = append(img.VMAs, img.VMAs[0]) // duplicate mapping
	if _, err := Restore(c.Nodes[0], img); err == nil {
		t.Fatal("overlapping restore accepted")
	}
}

func TestDecodeMemDeltaCorrupt(t *testing.T) {
	if _, err := DecodeMemDelta([]byte{0, 1}); err == nil {
		t.Fatal("corrupt delta accepted")
	}
}

func TestContextFileRoundTrip(t *testing.T) {
	c := newTestCluster(2)
	p := buildProcess(c)
	img := Checkpoint(p)
	var buf bytes.Buffer
	if err := WriteImage(&buf, img); err != nil {
		t.Fatal(err)
	}
	got, err := ReadImage(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	img.Behavior = nil
	if !reflect.DeepEqual(img, got) {
		t.Fatal("context file roundtrip mismatch")
	}
	// And the restored image actually restarts.
	if _, err := Restore(c.Nodes[1], got); err != nil {
		t.Fatal(err)
	}
}

func TestContextFileCorruptionDetected(t *testing.T) {
	c := newTestCluster(1)
	img := Checkpoint(buildProcess(c))
	var buf bytes.Buffer
	if err := WriteImage(&buf, img); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()

	// Flipped body byte → checksum error.
	bad := append([]byte(nil), data...)
	bad[40] ^= 0xFF
	if _, err := ReadImage(bytes.NewReader(bad)); err == nil {
		t.Fatal("corrupted body accepted")
	}
	// Bad magic.
	bad2 := append([]byte(nil), data...)
	bad2[0] = 0
	if _, err := ReadImage(bytes.NewReader(bad2)); err == nil {
		t.Fatal("bad magic accepted")
	}
	// Unsupported version.
	bad3 := append([]byte(nil), data...)
	bad3[7] = 99
	if _, err := ReadImage(bytes.NewReader(bad3)); err == nil {
		t.Fatal("bad version accepted")
	}
	// Truncated file.
	if _, err := ReadImage(bytes.NewReader(data[:len(data)/2])); err == nil {
		t.Fatal("truncated file accepted")
	}
	if _, err := ReadImage(bytes.NewReader(data[:8])); err == nil {
		t.Fatal("truncated header accepted")
	}
}
