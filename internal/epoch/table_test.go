package epoch

import "testing"

func TestRatchet(t *testing.T) {
	tb := NewTable()
	if tb.Current("svc") != 0 {
		t.Fatal("fresh table not at epoch 0")
	}
	if !tb.Observe("svc", 0) {
		t.Fatal("zero epoch rejected on fresh table")
	}
	if !tb.Observe("svc", 3) {
		t.Fatal("forward observation rejected")
	}
	if tb.Current("svc") != 3 {
		t.Fatalf("watermark = %d, want 3", tb.Current("svc"))
	}
	// Equal epochs are fresh (same owner re-advertising).
	if !tb.Observe("svc", 3) {
		t.Fatal("equal epoch rejected")
	}
	// Stale epochs are rejected and counted.
	if tb.Observe("svc", 2) {
		t.Fatal("stale epoch accepted")
	}
	if tb.Rejections != 1 {
		t.Fatalf("rejections = %d, want 1", tb.Rejections)
	}
	if !tb.Stale("svc", 1) || tb.Stale("svc", 3) {
		t.Fatal("Stale misclassifies")
	}
}

func TestBumpMints(t *testing.T) {
	tb := NewTable()
	if e := tb.Bump("svc"); e != 1 {
		t.Fatalf("first bump = %d, want 1", e)
	}
	tb.Observe("svc", 7)
	if e := tb.Bump("svc"); e != 8 {
		t.Fatalf("bump after observe(7) = %d, want 8", e)
	}
	// Independent services do not interfere.
	if e := tb.Bump("other"); e != 1 {
		t.Fatalf("other service bump = %d, want 1", e)
	}
}

func TestServicesSorted(t *testing.T) {
	tb := NewTable()
	tb.Bump("zeta")
	tb.Bump("alpha")
	tb.Observe("never", 0) // zero watermark: not listed
	got := tb.Services()
	if len(got) != 2 || got[0] != "alpha" || got[1] != "zeta" {
		t.Fatalf("services = %v", got)
	}
}
