// Package epoch implements per-service ownership epochs, the fencing
// primitive of the failover subsystem.
//
// Every service (a named migratable process owning network ports behind
// the cluster's single public IP) has a cluster-wide monotone epoch.
// Exactly one node is supposed to own a service at any epoch; ownership
// changes mint a higher epoch. Because the broadcast router delivers
// every client packet to every node, a healed node that still believes
// it owns a service would silently serve alongside the real owner —
// the classic split-brain. Epochs make that impossible: every message
// that can re-establish serving state (migd migration requests, standby
// checkpoint images, translation-rule installs, capture reinjections)
// carries the sender's epoch, and every receiver holds a ratcheting
// Table. Anything stamped with an epoch below the table's watermark is
// stale by definition and is rejected or dismantled.
//
// The table is node-local and only ever moves forward; it does not need
// consensus. Correctness comes from the ratchet: once a node has
// observed epoch e for a service, nothing from e' < e can install or
// serve state on that node again.
package epoch

import "sort"

// Table tracks the highest ownership epoch observed per service on one
// node. The zero epoch means "never fenced": legacy messages carrying
// epoch 0 are accepted until a real epoch is observed.
type Table struct {
	cur map[string]uint64

	// Rejections counts stale observations, for tests and monitoring.
	Rejections uint64
}

// NewTable returns an empty table.
func NewTable() *Table { return &Table{cur: make(map[string]uint64)} }

// Current returns the highest epoch observed for the service (0 when
// the service has never been seen).
func (t *Table) Current(name string) uint64 { return t.cur[name] }

// Observe folds an epoch seen on the wire into the table. It returns
// true when e is fresh (>= the watermark, ratcheting it up) and false
// when e is stale — the caller must then reject the message.
func (t *Table) Observe(name string, e uint64) bool {
	if e < t.cur[name] {
		t.Rejections++
		return false
	}
	if e > t.cur[name] {
		t.cur[name] = e
	}
	return true
}

// Stale reports whether e is below the watermark without recording a
// rejection (pure query).
func (t *Table) Stale(name string, e uint64) bool { return e < t.cur[name] }

// Bump mints the next epoch for a service: watermark+1, recorded as the
// new watermark. Used by the failover path when a standby activates.
func (t *Table) Bump(name string) uint64 {
	t.cur[name]++
	return t.cur[name]
}

// Services lists every service with a non-zero watermark, sorted, for
// deterministic iteration in broadcasts and logs.
func (t *Table) Services() []string {
	out := make([]string, 0, len(t.cur))
	for name, e := range t.cur {
		if e > 0 {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}
