package dve

import (
	"fmt"
	"strings"
)

// Fig5a renders the initial virtual-space partitioning and the main
// movement directions of the simulation — the textual equivalent of the
// paper's Fig 5a. Each cell shows the node initially responsible for the
// zone; arrows mark the high-level drift of the middle-region clients
// toward the up-left and down-right corners.
func Fig5a() string {
	var b strings.Builder
	b.WriteString("initial zone assignment (10x10 grid, two rows per node)\n")
	b.WriteString("and client movement directions:\n\n")
	for y := 0; y < GridH; y++ {
		b.WriteString("  ")
		for x := 0; x < GridW; x++ {
			node := ZoneAt(x, y).HomeNode() + 1
			mark := " "
			switch {
			case y >= 2 && y <= 4:
				mark = "↖" // upper middle drifts up-left
			case y >= 5 && y <= 7:
				mark = "↘" // lower middle drifts down-right
			}
			fmt.Fprintf(&b, "n%d%s ", node, mark)
		}
		fmt.Fprintf(&b, "  <- node%d\n", y/2+1)
	}
	b.WriteString("\n  ↖ upper-middle clients head for the up-left corner (node1)\n")
	b.WriteString("  ↘ lower-middle clients head for the down-right corner (node5)\n")
	return b.String()
}

// PopulationHeatmap renders the current per-zone client counts as a grid,
// for inspecting the drift during a simulation.
func PopulationHeatmap(pop Population) string {
	var b strings.Builder
	for y := 0; y < GridH; y++ {
		b.WriteString("  ")
		for x := 0; x < GridW; x++ {
			fmt.Fprintf(&b, "%4d", pop[ZoneAt(x, y)])
		}
		b.WriteByte('\n')
	}
	return b.String()
}
