package dve

import (
	"dvemig/internal/simtime"
)

// Application-layer load balancing baseline — the approach of the prior
// work the paper argues against (§I, [3][4][5]): instead of migrating the
// zone-server *process*, the *zone* is reassigned to another node. That
// has two structural costs the paper names:
//
//  1. "Client migrations are heavy, because client state has to be
//     subtracted and transferred between the zones and clients have to
//     reconnect to the new server" — the zone is unavailable for the
//     state transfer plus a reconnect storm, and every client of the
//     zone experiences the outage;
//  2. "the load of a particular server ... can be directly migrated only
//     to a server handling a neighboring zone in the virtual space" —
//     the receiver must already own an adjacent zone, severely limiting
//     placement.
//
// The balancer below implements exactly that: threshold-driven handoffs
// of boundary zones to the cooler owner of an adjacent zone, charging a
// client-visible outage per handoff. Comparing its OutageClientSeconds
// with the OS-level middleware's (freeze times of a few milliseconds)
// quantifies the paper's motivation.

// AppLayerConfig tunes the baseline.
type AppLayerConfig struct {
	// Period between balancing decisions.
	Period simtime.Duration
	// Threshold on max-min node utilisation before acting.
	Threshold float64
	// ZoneStateBytes is the client/world state subtracted and transferred
	// during a handoff.
	ZoneStateBytes int
	// ReconnectPerClient is the per-client reconnection cost added to the
	// outage (handshakes, re-authentication, state download).
	ReconnectPerClient simtime.Duration
	// LinkBandwidth for the state transfer, bits/s.
	LinkBandwidth float64
	// CalmDown after a handoff.
	CalmDown simtime.Duration
}

// DefaultAppLayerConfig uses a 4 MiB zone state and a 2 ms per-client
// reconnect cost over Gigabit Ethernet.
func DefaultAppLayerConfig() AppLayerConfig {
	return AppLayerConfig{
		Period:             1e9,
		Threshold:          0.16,
		ZoneStateBytes:     4 << 20,
		ReconnectPerClient: 2e6,
		LinkBandwidth:      1e9,
		CalmDown:           15e9,
	}
}

// Outage records one handoff's client-visible unavailability.
type Outage struct {
	At       simtime.Time
	Zone     ZoneID
	Clients  int
	Duration simtime.Duration
}

// AppLayerBalancer performs zone handoffs on a running simulation.
type AppLayerBalancer struct {
	sim *Simulation
	cfg AppLayerConfig

	// owner maps each zone to its current node index.
	owner     [GridW * GridH]int
	calmUntil simtime.Time

	// Handoffs counts completed reassignments; Outages itemizes them.
	Handoffs int
	Outages  []Outage

	ticker *simtime.Ticker
}

func newAppLayerBalancer(sim *Simulation, cfg AppLayerConfig) *AppLayerBalancer {
	b := &AppLayerBalancer{sim: sim, cfg: cfg}
	for z := ZoneID(0); z < GridW*GridH; z++ {
		b.owner[z] = z.HomeNode()
	}
	b.ticker = simtime.NewTicker(sim.Cluster.Sched, cfg.Period, "applb.tick", b.tick)
	b.ticker.Start()
	return b
}

// nodeLoads computes per-node utilisation from the owner map.
func (b *AppLayerBalancer) nodeLoads() []float64 {
	loads := make([]float64, b.sim.Config.Nodes)
	zc := b.sim.Config.Zone
	for z := ZoneID(0); z < GridW*GridH; z++ {
		loads[b.owner[z]] += zc.BaseCPU + zc.PerClientCPU*float64(b.sim.pop[z])
	}
	for i, n := range b.sim.Cluster.Nodes[:b.sim.Config.Nodes] {
		loads[i] /= n.Cores
	}
	return loads
}

func (b *AppLayerBalancer) tick() {
	now := b.sim.Cluster.Sched.Now()
	if now < b.calmUntil {
		return
	}
	loads := b.nodeLoads()
	hot, cold := 0, 0
	for i := range loads {
		if loads[i] > loads[hot] {
			hot = i
		}
		if loads[i] < loads[cold] {
			cold = i
		}
	}
	if loads[hot]-loads[cold] < b.cfg.Threshold {
		return
	}
	// Location constraint: the receiver must own a zone adjacent (in the
	// virtual space) to the zone being handed off. Pick the hot node's
	// boundary zone whose coolest adjacent owner is lightest.
	bestZone := ZoneID(-1)
	bestTo := -1
	bestLoad := loads[hot]
	for z := ZoneID(0); z < GridW*GridH; z++ {
		if b.owner[z] != hot {
			continue
		}
		for _, w := range adjacentZones(z) {
			to := b.owner[w]
			if to != hot && loads[to] < bestLoad {
				bestLoad = loads[to]
				bestZone = z
				bestTo = to
			}
		}
	}
	if bestZone < 0 {
		return // no feasible neighbor-constrained move (the paper's point)
	}
	b.handoff(bestZone, bestTo)
	b.calmUntil = now + b.cfg.CalmDown
}

// adjacentZones lists the 4-neighborhood of z in the virtual space.
func adjacentZones(z ZoneID) []ZoneID {
	x, y := z.XY()
	var out []ZoneID
	if x > 0 {
		out = append(out, ZoneAt(x-1, y))
	}
	if x+1 < GridW {
		out = append(out, ZoneAt(x+1, y))
	}
	if y > 0 {
		out = append(out, ZoneAt(x, y-1))
	}
	if y+1 < GridH {
		out = append(out, ZoneAt(x, y+1))
	}
	return out
}

// handoff reassigns zone z to node index to: the old zone server exits,
// its clients are disconnected for the transfer + reconnect storm, and a
// fresh server spawns on the receiver when the outage ends.
func (b *AppLayerBalancer) handoff(z ZoneID, to int) {
	sim := b.sim
	pop := sim.pop[z]
	transfer := simtime.Duration(float64(b.cfg.ZoneStateBytes*8) / b.cfg.LinkBandwidth * 1e9)
	outage := transfer + simtime.Duration(pop)*b.cfg.ReconnectPerClient
	b.Handoffs++
	b.Outages = append(b.Outages, Outage{
		At: sim.Cluster.Sched.Now(), Zone: z, Clients: pop, Duration: outage,
	})
	if p := sim.zoneProcs[z]; p != nil {
		p.Exit()
		delete(sim.zoneProcs, z)
	}
	b.owner[z] = to
	node := sim.Cluster.Nodes[to]
	sim.Cluster.Sched.After(outage, "applb.respawn", func() {
		popFn := func(zz ZoneID) int { return sim.pop[zz] }
		p, err := SpawnZoneServer(node, z, sim.Cluster.ClusterIP, sim.DBNode.LocalIP, sim.Config.Zone, popFn)
		if err != nil {
			// The port may still be winding down; retry shortly.
			sim.Cluster.Sched.After(1e9, "applb.retry", func() {
				if p2, err2 := SpawnZoneServer(node, z, sim.Cluster.ClusterIP, sim.DBNode.LocalIP, sim.Config.Zone, popFn); err2 == nil {
					sim.zoneProcs[z] = p2
				}
			})
			return
		}
		sim.zoneProcs[z] = p
	})
}

// OutageClientSeconds sums clients × outage duration over all handoffs —
// the total client-visible unavailability this balancing style caused.
func (b *AppLayerBalancer) OutageClientSeconds() float64 {
	total := 0.0
	for _, o := range b.Outages {
		total += float64(o.Clients) * o.Duration.Seconds()
	}
	return total
}
