// Package dve implements the distributed-virtual-environment workload of
// §VI-C: a 10×10 zone grid served by 100 zone-server processes spread
// over five nodes, 10,000 clients that drift from the middle regions
// toward the up-left and down-right corners, a MySQL-style database
// server each zone server keeps a session with, and the simulation
// driver that produces the Fig 5d/5e/5f time series with and without the
// load-balancing middleware.
package dve

import "dvemig/internal/simtime"

// Grid dimensions (§VI-C: "one hundred zones following a ten times ten
// grid shape").
const (
	GridW = 10
	GridH = 10
	// ZonesPerNode with five DVE nodes: two grid rows per node.
	ZonesPerNode = GridW * GridH / 5
)

// ZoneID identifies a zone; zones are row-major: id = y*GridW + x.
type ZoneID int

// XY returns the zone's grid coordinates.
func (z ZoneID) XY() (x, y int) { return int(z) % GridW, int(z) / GridW }

// ZoneAt returns the id of the zone at (x, y).
func ZoneAt(x, y int) ZoneID { return ZoneID(y*GridW + x) }

// HomeNode returns the index (0-based) of the node initially responsible
// for the zone: node i serves grid rows 2i and 2i+1 (Fig 5a).
func (z ZoneID) HomeNode() int {
	_, y := z.XY()
	return y / 2
}

// Client is one simulated participant.
type Client struct {
	X, Y int
	// Mobile clients walk one zone at a time toward (TX, TY).
	Mobile bool
	TX, TY int
}

// Zone returns the client's current zone.
func (c *Client) Zone() ZoneID { return ZoneAt(c.X, c.Y) }

// Arrived reports whether a mobile client reached its target.
func (c *Client) Arrived() bool { return c.X == c.TX && c.Y == c.TY }

// Step moves a mobile client one zone toward its target (diagonal-first
// walking).
func (c *Client) Step() {
	if !c.Mobile || c.Arrived() {
		return
	}
	if c.X < c.TX {
		c.X++
	} else if c.X > c.TX {
		c.X--
	}
	if c.Y < c.TY {
		c.Y++
	} else if c.Y > c.TY {
		c.Y--
	}
}

// Population counts clients per zone.
type Population [GridW * GridH]int

// MovementModel drives the §VI-C scenario: clients start uniformly
// distributed; a fraction of those in the middle rows is instructed to
// gradually move toward the up-left or down-right corner ("this sort of
// clustering of entities in large-scale environments is very common").
type MovementModel struct {
	Clients []*Client
	// MoveProb is the per-second probability that a mobile client takes
	// one step.
	MoveProb float64
	rand     *simtime.Rand
}

// NewMovementModel places nClients uniformly and marks mobileFrac of the
// middle-row clients mobile. Upper-middle rows head up-left, lower-middle
// rows head down-right; targets spread over the corner 2×2 region so
// several corner zone servers heat up.
func NewMovementModel(nClients int, mobileFrac, moveProb float64, rand *simtime.Rand) *MovementModel {
	m := &MovementModel{MoveProb: moveProb, rand: rand}
	perZone := nClients / (GridW * GridH)
	corners := [][2]int{{0, 0}, {1, 0}, {0, 1}, {1, 1}}
	k := 0
	for y := 0; y < GridH; y++ {
		for x := 0; x < GridW; x++ {
			for i := 0; i < perZone; i++ {
				c := &Client{X: x, Y: y}
				middle := y >= 2 && y <= 7
				if middle && rand.Float64() < mobileFrac {
					c.Mobile = true
					corner := corners[k%len(corners)]
					k++
					if y <= 4 { // upper middle heads up-left
						c.TX, c.TY = corner[0], corner[1]
					} else { // lower middle heads down-right
						c.TX, c.TY = GridW-1-corner[0], GridH-1-corner[1]
					}
				}
				m.Clients = append(m.Clients, c)
			}
		}
	}
	return m
}

// Tick advances one second of movement.
func (m *MovementModel) Tick() {
	for _, c := range m.Clients {
		if c.Mobile && !c.Arrived() && m.rand.Float64() < m.MoveProb {
			c.Step()
		}
	}
}

// Population returns the current per-zone client counts.
func (m *MovementModel) Population() Population {
	var pop Population
	for _, c := range m.Clients {
		pop[c.Zone()]++
	}
	return pop
}

// MobileCount reports how many clients are marked mobile.
func (m *MovementModel) MobileCount() int {
	n := 0
	for _, c := range m.Clients {
		if c.Mobile {
			n++
		}
	}
	return n
}

// ArrivedCount reports how many mobile clients reached their corner.
func (m *MovementModel) ArrivedCount() int {
	n := 0
	for _, c := range m.Clients {
		if c.Mobile && c.Arrived() {
			n++
		}
	}
	return n
}
