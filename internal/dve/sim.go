package dve

import (
	"fmt"

	"dvemig/internal/flight"
	"dvemig/internal/lb"
	"dvemig/internal/migration"
	"dvemig/internal/netstack"
	"dvemig/internal/obs"
	"dvemig/internal/proc"
	"dvemig/internal/simtime"
	"dvemig/internal/trace"
	"dvemig/internal/xlat"
)

// Config parameterizes the §VI-C experiment.
type Config struct {
	Nodes    int
	Clients  int
	Duration simtime.Duration
	// LB enables the conductor middleware (Fig 5f vs Fig 5e).
	LB        bool
	LBConfig  lb.Config
	MigConfig migration.Config
	Zone      ZoneServerConfig

	// NeighborLinks connects every zone server with its right and down
	// grid neighbors over in-cluster TCP (the inter-server connections
	// §VI-C leaves as future work; supported here via both-ends
	// migration).
	NeighborLinks bool

	// AppLayerLB replaces the OS-level middleware with the prior-work
	// application-layer zone-handoff baseline (mutually exclusive with
	// LB).
	AppLayerLB bool
	AppLayer   AppLayerConfig

	// Movement model: MobileFrac of middle-row clients drift toward the
	// corners, each stepping one zone per second with MoveProb, starting
	// at MoveStart.
	MobileFrac float64
	MoveProb   float64
	MoveStart  simtime.Duration

	SampleEvery simtime.Duration
	Seed        uint64

	// Observe attaches an observability plane (span tracing + metrics)
	// to the run: migrators and conductors get instrumented, and
	// Simulation.Obs carries the plane for capture/export afterwards.
	Observe bool

	// FlightDepth, when positive, attaches a flight recorder retaining
	// the last FlightDepth events per track: one scheduler track plus
	// node/stack/NIC tracks per machine. Simulation.Flight carries the
	// set; dump it on failures for a post-mortem window.
	FlightDepth int
}

// DefaultConfig reproduces the paper's setup: 5 nodes, 10,000 clients,
// ~15 minutes.
func DefaultConfig() Config {
	lbCfg := lb.DefaultConfig()
	// The DVE drift is gradual; a tighter imbalance trigger lets the
	// middleware keep pace with it (Fig 5f converges over many small
	// adjustments).
	lbCfg.ImbalanceThreshold = 0.08
	return Config{
		Nodes:       5,
		Clients:     10000,
		Duration:    900 * 1e9,
		LB:          false,
		LBConfig:    lbCfg,
		MigConfig:   migration.DefaultConfig(),
		Zone:        DefaultZoneConfig(),
		MobileFrac:  0.20,
		MoveProb:    0.02,
		MoveStart:   120 * 1e9,
		SampleEvery: 5 * 1e9,
		Seed:        2010,
		AppLayer:    DefaultAppLayerConfig(),
	}
}

// Results collects the experiment's time series and migration log.
type Results struct {
	// CPU holds per-node CPU percentage series (Fig 5e/5f).
	CPU *trace.SeriesSet
	// Procs holds per-node zone-server counts (Fig 5d).
	Procs *trace.SeriesSet
	// UpdateRate holds the effective client-update rate per node in
	// updates/s: 20 Hz while the node keeps up, degrading once demand
	// exceeds capacity — the interactivity loss that motivates the whole
	// system ("adversely affecting the response time and damaging the
	// interactivity", §I).
	UpdateRate *trace.SeriesSet
	// Migrations is the number of completed process migrations.
	Migrations int
	// FreezeTimes of every migration performed by the middleware.
	FreezeTimes []simtime.Duration
	// Events is the concatenated conductor decision log.
	Events []lb.Event
	// FinalSpread is max-min node CPU (%) over the last quarter of the
	// run — the imbalance measure the paper discusses.
	FinalSpread float64
	// OutageClientSeconds is the total client-visible unavailability the
	// balancing caused: Σ clients × downtime over all moves. For the
	// OS-level middleware this is freeze time × affected clients (a few
	// client-seconds at most); for the app-layer baseline it is the zone
	// handoff outage (orders of magnitude larger).
	OutageClientSeconds float64
	// Handoffs counts app-layer zone reassignments (baseline mode).
	Handoffs int
}

// Simulation is the assembled experiment.
type Simulation struct {
	Config  Config
	Cluster *proc.Cluster
	DBNode  *proc.Node
	DB      *DBServer

	Migrators  []*migration.Migrator
	Conductors []*lb.Conductor
	AppLB      *AppLayerBalancer
	Movement   *MovementModel

	// Obs is the run's observability plane (nil unless Config.Observe).
	Obs *obs.Obs

	// Flight is the run's flight-recorder set (nil unless
	// Config.FlightDepth > 0).
	Flight *flight.Set

	zoneProcs map[ZoneID]*proc.Process
	pop       Population

	cpuSeries  *trace.SeriesSet
	procSeries *trace.SeriesSet
	rateSeries *trace.SeriesSet
}

// New builds the cluster, database, zone servers and (optionally) the
// load-balancing middleware.
func New(cfg Config) (*Simulation, error) {
	sched := simtime.NewScheduler()
	s := &Simulation{
		Config:     cfg,
		Cluster:    proc.NewCluster(sched, cfg.Nodes),
		zoneProcs:  make(map[ZoneID]*proc.Process),
		cpuSeries:  trace.NewSeriesSet(),
		procSeries: trace.NewSeriesSet(),
		rateSeries: trace.NewSeriesSet(),
	}
	// The database machine is a sixth node without conductor/migd; it
	// still runs a translation daemon so in-cluster DB sessions can be
	// redirected when their zone server migrates.
	s.DBNode = s.Cluster.AddNode("db")
	var err error
	if s.DB, err = StartDBServer(s.DBNode); err != nil {
		return nil, err
	}
	if _, err := xlat.StartTransd(s.DBNode.Stack, s.DBNode.LocalIP); err != nil {
		return nil, err
	}

	if cfg.Observe {
		s.Obs = obs.New(sched)
	}
	if cfg.FlightDepth > 0 {
		s.Flight = flight.NewSet(cfg.FlightDepth)
		sched.FR = s.Flight.Track("sched")
		for _, n := range s.Cluster.Nodes { // includes the db node
			n.AttachFlight(s.Flight)
		}
	}
	for _, n := range s.Cluster.Nodes[:cfg.Nodes] {
		m, err := migration.NewMigrator(n, cfg.MigConfig)
		if err != nil {
			return nil, err
		}
		if s.Obs != nil {
			m.SetObs(s.Obs)
		}
		s.Migrators = append(s.Migrators, m)
	}

	// Movement model and initial population.
	s.Movement = NewMovementModel(cfg.Clients, cfg.MobileFrac, cfg.MoveProb, simtime.NewRand(cfg.Seed))
	s.pop = s.Movement.Population()

	// Zone servers on their home nodes (Fig 5a assignment).
	popFn := func(z ZoneID) int { return s.pop[z] }
	for z := ZoneID(0); z < GridW*GridH; z++ {
		home := z.HomeNode()
		if home >= cfg.Nodes {
			return nil, fmt.Errorf("dve: zone %d has no home with %d nodes", z, cfg.Nodes)
		}
		n := s.Cluster.Nodes[home]
		p, err := SpawnZoneServer(n, z, s.Cluster.ClusterIP, s.DBNode.LocalIP, cfg.Zone, popFn)
		if err != nil {
			return nil, err
		}
		s.zoneProcs[z] = p
	}
	if cfg.NeighborLinks {
		if err := s.connectNeighbors(); err != nil {
			return nil, err
		}
	}

	if cfg.LB && cfg.AppLayerLB {
		return nil, fmt.Errorf("dve: LB and AppLayerLB are mutually exclusive")
	}
	if cfg.LB {
		for i, n := range s.Cluster.Nodes[:cfg.Nodes] {
			cd, err := lb.NewConductor(n, s.Migrators[i], cfg.LBConfig)
			if err != nil {
				return nil, err
			}
			if s.Obs != nil {
				cd.SetObs(s.Obs)
			}
			s.Conductors = append(s.Conductors, cd)
		}
	}
	if cfg.AppLayerLB {
		s.AppLB = newAppLayerBalancer(s, cfg.AppLayer)
	}

	// Movement ticker.
	mv := simtime.NewTicker(sched, 1e9, "dve.move", func() {
		if sched.Now() >= cfg.MoveStart {
			s.Movement.Tick()
			s.pop = s.Movement.Population()
		}
	})
	mv.Start()

	// Sampler.
	sm := simtime.NewTicker(sched, cfg.SampleEvery, "dve.sample", s.sample)
	sm.Start()
	return s, nil
}

// connectNeighbors links every zone server with its right and down grid
// neighbors over the in-cluster network: each zone accepts on
// NeighborBase+zone of its home node's local address.
// CaptureObs harvests the cluster's layer counters into the plane's
// registry and freezes the run's observability artifacts under label.
// Nil when the run is unobserved.
func (s *Simulation) CaptureObs(label string) *obs.Capture {
	if s.Obs == nil {
		return nil
	}
	obs.HarvestCluster(s.Obs.Metrics, s.Cluster)
	return s.Obs.Capture(label)
}

func (s *Simulation) connectNeighbors() error {
	cfg := s.Config.Zone
	for z := ZoneID(0); z < GridW*GridH; z++ {
		n := s.Cluster.Nodes[z.HomeNode()]
		lst := netstack.NewTCPSocket(n.Stack)
		if err := lst.Listen(n.LocalIP, cfg.NeighborBase+uint16(z)); err != nil {
			return err
		}
		owner := s.zoneProcs[z]
		lst.OnAccept = func(ch *netstack.TCPSocket) {
			owner.FDs.Install(&proc.TCPFile{Sock: ch})
		}
		owner.FDs.Install(&proc.TCPFile{Sock: lst})
	}
	for z := ZoneID(0); z < GridW*GridH; z++ {
		x, y := z.XY()
		var targets []ZoneID
		if x+1 < GridW {
			targets = append(targets, ZoneAt(x+1, y))
		}
		if y+1 < GridH {
			targets = append(targets, ZoneAt(x, y+1))
		}
		from := s.Cluster.Nodes[z.HomeNode()]
		for _, w := range targets {
			to := s.Cluster.Nodes[w.HomeNode()]
			sk := netstack.NewTCPSocket(from.Stack)
			if err := sk.Connect(to.LocalIP, cfg.NeighborBase+uint16(w)); err != nil {
				return err
			}
			s.zoneProcs[z].FDs.Install(&proc.TCPFile{Sock: sk})
		}
	}
	// Let all handshakes complete before the simulation proper starts.
	s.Cluster.Sched.RunFor(1e9)
	return nil
}

func (s *Simulation) sample() {
	now := s.Cluster.Sched.Now()
	hz := float64(1e9) / float64(s.Config.Zone.LoopPeriod)
	for _, n := range s.Cluster.Nodes[:s.Config.Nodes] {
		s.cpuSeries.Get(n.Name).Add(now, n.Utilization()*100)
		s.procSeries.Get(n.Name).Add(now, float64(countZoneServers(n)))
		// Effective update rate: oversubscription stretches every
		// real-time loop iteration by demand/capacity, and queueing
		// already erodes deadlines as the CPU approaches saturation
		// (a linear knee above 90% utilisation).
		demand := 0.0
		for _, p := range n.Processes() {
			if p.State == proc.ProcRunning {
				demand += p.CPUDemand
			}
		}
		util := demand / n.Cores
		rate := hz
		switch {
		case util > 1:
			rate = hz * 0.8 / util
		case util > 0.9:
			rate = hz * (1 - 2*(util-0.9))
		}
		s.rateSeries.Get(n.Name).Add(now, rate)
	}
}

func countZoneServers(n *proc.Node) int {
	c := 0
	for _, p := range n.Processes() {
		if len(p.Name) > 9 && p.Name[:9] == "zone_serv" {
			c++
		}
	}
	return c
}

// Run executes the simulation and gathers the results.
func (s *Simulation) Run() *Results {
	s.Cluster.Sched.RunUntil(s.Config.Duration)
	r := &Results{CPU: s.cpuSeries, Procs: s.procSeries, UpdateRate: s.rateSeries}
	zc := s.Config.Zone
	for _, m := range s.Migrators {
		for _, mm := range m.Completed {
			r.Migrations++
			r.FreezeTimes = append(r.FreezeTimes, mm.FreezeTime)
			// Clients affected by the freeze, from the process's demand
			// at freeze time.
			clients := (mm.ProcCPUDemand - zc.BaseCPU) / zc.PerClientCPU
			if clients < 0 {
				clients = 0
			}
			r.OutageClientSeconds += clients * mm.FreezeTime.Seconds()
		}
	}
	if s.AppLB != nil {
		r.Handoffs = s.AppLB.Handoffs
		r.OutageClientSeconds += s.AppLB.OutageClientSeconds()
	}
	for _, cd := range s.Conductors {
		r.Events = append(r.Events, cd.Events...)
	}
	r.FinalSpread = s.finalSpread()
	return r
}

// finalSpread computes max-min average node CPU over the last quarter.
func (s *Simulation) finalSpread() float64 {
	from := s.Config.Duration * 3 / 4
	lo, hi := 1e18, -1e18
	for _, name := range s.cpuSeries.Names() {
		mean := s.cpuSeries.Get(name).After(from).Mean()
		if mean < lo {
			lo = mean
		}
		if mean > hi {
			hi = mean
		}
	}
	if hi < lo {
		return 0
	}
	return hi - lo
}

// NodeCPUMean returns a node's average CPU (%) over [from, end].
func (r *Results) NodeCPUMean(name string, from simtime.Duration) float64 {
	return r.CPU.Get(name).After(from).Mean()
}

// WorstUpdateRate returns the lowest effective update rate any node hit —
// the interactivity floor of the run (20 means nobody ever lagged).
func (r *Results) WorstUpdateRate() float64 {
	worst := 1e18
	for _, name := range r.UpdateRate.Names() {
		if m := r.UpdateRate.Get(name).Min(); m < worst {
			worst = m
		}
	}
	if worst == 1e18 {
		return 0
	}
	return worst
}
