package dve

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"dvemig/internal/netstack"
	"dvemig/internal/proc"
	"dvemig/internal/simtime"
)

func TestZoneGeometry(t *testing.T) {
	if ZoneAt(3, 7) != ZoneID(73) {
		t.Fatal("row-major indexing wrong")
	}
	x, y := ZoneID(73).XY()
	if x != 3 || y != 7 {
		t.Fatal("XY wrong")
	}
	// Node assignment: two rows per node.
	if ZoneAt(0, 0).HomeNode() != 0 || ZoneAt(9, 1).HomeNode() != 0 {
		t.Fatal("node1 rows wrong")
	}
	if ZoneAt(5, 4).HomeNode() != 2 || ZoneAt(5, 5).HomeNode() != 2 {
		t.Fatal("node3 rows wrong")
	}
	if ZoneAt(9, 9).HomeNode() != 4 {
		t.Fatal("node5 rows wrong")
	}
}

func TestClientStep(t *testing.T) {
	c := &Client{X: 5, Y: 4, Mobile: true, TX: 0, TY: 0}
	steps := 0
	for !c.Arrived() {
		c.Step()
		steps++
		if steps > 20 {
			t.Fatal("client never arrives")
		}
	}
	if steps != 5 { // diagonal-first: max(dx,dy)
		t.Fatalf("steps = %d, want 5", steps)
	}
	// Immobile clients never move.
	d := &Client{X: 5, Y: 4, TX: 0, TY: 0}
	d.Step()
	if d.X != 5 || d.Y != 4 {
		t.Fatal("immobile client moved")
	}
}

func TestMovementModelSetup(t *testing.T) {
	m := NewMovementModel(10000, 0.2, 0.02, simtime.NewRand(1))
	if len(m.Clients) != 10000 {
		t.Fatalf("clients = %d", len(m.Clients))
	}
	pop := m.Population()
	for z, n := range pop {
		if n != 100 {
			t.Fatalf("zone %d pop = %d, want uniform 100", z, n)
		}
	}
	mobile := m.MobileCount()
	// 20% of the 6000 middle clients ≈ 1200, allow PRNG spread.
	if mobile < 1000 || mobile > 1400 {
		t.Fatalf("mobile = %d, want ≈1200", mobile)
	}
	// Mobile clients only in the middle rows, targets only in corners.
	for _, c := range m.Clients {
		if c.Mobile {
			if c.Y < 2 || c.Y > 7 {
				t.Fatal("mobile client outside middle rows")
			}
			ul := c.TX <= 1 && c.TY <= 1
			dr := c.TX >= GridW-2 && c.TY >= GridH-2
			if !ul && !dr {
				t.Fatalf("target not a corner: (%d,%d)", c.TX, c.TY)
			}
		}
	}
}

func TestMovementConvergesToCorners(t *testing.T) {
	m := NewMovementModel(10000, 0.2, 0.05, simtime.NewRand(2))
	for i := 0; i < 600; i++ {
		m.Tick()
	}
	if arr := m.ArrivedCount(); float64(arr) < 0.9*float64(m.MobileCount()) {
		t.Fatalf("only %d/%d arrived", arr, m.MobileCount())
	}
	pop := m.Population()
	cornerPop := pop[ZoneAt(0, 0)] + pop[ZoneAt(1, 0)] + pop[ZoneAt(0, 1)] + pop[ZoneAt(1, 1)] +
		pop[ZoneAt(8, 9)] + pop[ZoneAt(9, 9)] + pop[ZoneAt(9, 8)] + pop[ZoneAt(8, 8)]
	if cornerPop < 1500 {
		t.Fatalf("corner population = %d, want concentration", cornerPop)
	}
	total := 0
	for _, n := range pop {
		total += n
	}
	if total != 10000 {
		t.Fatalf("clients lost: %d", total)
	}
}

func TestDBServerProtocol(t *testing.T) {
	c := proc.NewCluster(simtime.NewScheduler(), 2)
	db, err := StartDBServer(c.Nodes[1])
	if err != nil {
		t.Fatal(err)
	}
	sk := newDBClient(t, c, 0)
	var got []byte
	sk.OnReadable = func() { got = append(got, sk.Recv()...) }
	sk.Send([]byte("SET hp 100;GET hp;BOGUS;"))
	c.Sched.RunFor(time.Second)
	if string(got) != "OK;VAL 100;ERR;" {
		t.Fatalf("replies = %q", got)
	}
	if db.Get("hp") != "100" || db.Queries != 3 || db.Sessions != 1 {
		t.Fatalf("db state: %q %d %d", db.Get("hp"), db.Queries, db.Sessions)
	}
}

func newDBClient(t *testing.T, c *proc.Cluster, nodeIdx int) *netstack.TCPSocket {
	t.Helper()
	sk := netstack.NewTCPSocket(c.Nodes[nodeIdx].Stack)
	if err := sk.Connect(c.Nodes[1].LocalIP, DBPort); err != nil {
		t.Fatal(err)
	}
	c.Sched.RunFor(time.Second)
	return sk
}

func TestZoneServerTicksAndUpdatesDB(t *testing.T) {
	c := proc.NewCluster(simtime.NewScheduler(), 2)
	db, err := StartDBServer(c.Nodes[1])
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultZoneConfig()
	pop := 150
	p, err := SpawnZoneServer(c.Nodes[0], ZoneAt(2, 3), c.ClusterIP, c.Nodes[1].LocalIP,
		cfg, func(ZoneID) int { return pop })
	if err != nil {
		t.Fatal(err)
	}
	c.Sched.RunFor(3 * time.Second)
	wantDemand := cfg.BaseCPU + cfg.PerClientCPU*150
	if p.CPUDemand != wantDemand {
		t.Fatalf("demand = %v, want %v", p.CPUDemand, wantDemand)
	}
	if db.Get("zone32") != "pop150" {
		t.Fatalf("db value = %q", db.Get("zone32"))
	}
	// Population change propagates.
	pop = 60
	c.Sched.RunFor(time.Second)
	if p.CPUDemand != cfg.BaseCPU+cfg.PerClientCPU*60 {
		t.Fatal("demand did not track population")
	}
	// The loop dirties memory every tick (precopy fuel).
	if len(p.AS.DirtyPages()) == 0 {
		t.Fatal("zone server does not touch memory")
	}
}

func TestSimulationInitialBalance(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Duration = 30 * 1e9 // before movement starts
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r := s.Run()
	// Every node near 78%, no migrations.
	for _, name := range r.CPU.Names() {
		m := r.NodeCPUMean(name, 10e9)
		if m < 70 || m > 85 {
			t.Fatalf("%s initial CPU = %v%%, want ≈78%%", name, m)
		}
	}
	if r.Migrations != 0 {
		t.Fatal("migrations before any imbalance")
	}
	// 20 zone servers per node.
	for _, name := range r.Procs.Names() {
		if v := r.Procs.Get(name).Values[0]; v != ZonesPerNode {
			t.Fatalf("%s starts with %v servers", name, v)
		}
	}
}

// Short imbalance test: accelerated movement over a few minutes.
func shortConfig(lbOn bool) Config {
	cfg := DefaultConfig()
	cfg.Duration = 300 * 1e9
	cfg.MoveStart = 30 * 1e9
	cfg.MoveProb = 0.08 // faster drift to fit the shorter run
	cfg.LB = lbOn
	cfg.LBConfig.CalmDown = 8e9
	cfg.LBConfig.ImbalanceThreshold = 0.08
	return cfg
}

func TestSimulationImbalanceWithoutLB(t *testing.T) {
	s, err := New(shortConfig(false))
	if err != nil {
		t.Fatal(err)
	}
	r := s.Run()
	tail := 220 * simtime.Duration(1e9)
	n1 := r.NodeCPUMean("node1", tail)
	n3 := r.NodeCPUMean("node3", tail)
	n5 := r.NodeCPUMean("node5", tail)
	if n1 < 90 || n5 < 90 {
		t.Fatalf("edge nodes not overloaded: node1=%v node5=%v", n1, n5)
	}
	if n3 > 70 {
		t.Fatalf("middle node not relieved: node3=%v", n3)
	}
	if r.Migrations != 0 {
		t.Fatal("no LB but migrations happened")
	}
	if r.FinalSpread < 20 {
		t.Fatalf("expected heavy imbalance, spread=%v", r.FinalSpread)
	}
}

func TestSimulationLBEqualizesLoad(t *testing.T) {
	var spreadOff, spreadOn float64
	var migs int
	{
		s, err := New(shortConfig(false))
		if err != nil {
			t.Fatal(err)
		}
		spreadOff = s.Run().FinalSpread
	}
	{
		s, err := New(shortConfig(true))
		if err != nil {
			t.Fatal(err)
		}
		r := s.Run()
		spreadOn = r.FinalSpread
		migs = r.Migrations
		// Process counts changed: node1/node5 lost servers, middles gained.
		last := func(name string) float64 {
			vs := r.Procs.Get(name).Values
			return vs[len(vs)-1]
		}
		if last("node1") >= ZonesPerNode || last("node5") >= ZonesPerNode {
			t.Fatalf("edge nodes kept all servers: %v/%v", last("node1"), last("node5"))
		}
		if last("node1")+last("node2")+last("node3")+last("node4")+last("node5") != 100 {
			t.Fatal("zone servers lost")
		}
		for _, ft := range r.FreezeTimes {
			if ft > 100*time.Millisecond {
				t.Fatalf("freeze time %v too long for interactive workload", ft)
			}
		}
	}
	if migs == 0 {
		t.Fatal("LB performed no migrations")
	}
	if spreadOn >= spreadOff/2 {
		t.Fatalf("LB did not reduce imbalance: off=%v on=%v", spreadOff, spreadOn)
	}
}

func TestNeighborLinksEstablishedAndSyncing(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Duration = 20 * 1e9
	cfg.NeighborLinks = true
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.Run()
	// Every zone server holds: db session + listener(s) + neighbor conns.
	// Zone (0,0) has 2 outgoing neighbors; zone (5,5) has 2 outgoing and
	// 2 incoming. Count established non-DB sockets across all zones:
	// each of the 180 grid edges contributes one socket at each end.
	established := 0
	syncSeen := 0
	for z := ZoneID(0); z < GridW*GridH; z++ {
		p := s.zoneProcs[z]
		tcp, _ := p.Sockets()
		for _, sk := range tcp {
			if sk.State == netstack.TCPEstablished && sk.RemotePort != DBPort {
				established++
				if sk.BytesIn > 0 {
					syncSeen++
				}
			}
		}
	}
	if established != 2*180 {
		t.Fatalf("neighbor sockets = %d, want %d", established, 2*180)
	}
	if syncSeen < established*9/10 {
		t.Fatalf("only %d/%d neighbor sockets carried sync traffic", syncSeen, established)
	}
}

func TestNeighborLinksSurviveLoadBalancing(t *testing.T) {
	cfg := shortConfig(true)
	cfg.NeighborLinks = true
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r := s.Run()
	if r.Migrations == 0 {
		t.Fatal("no migrations; test exercises nothing")
	}
	// After the run, every neighbor connection must still be alive and
	// still carrying sync traffic — including those whose endpoints
	// migrated (possibly both).
	type probe struct {
		z  ZoneID
		sk *netstack.TCPSocket
		in uint64
	}
	var probes []probe
	for z := ZoneID(0); z < GridW*GridH; z++ {
		p := s.zoneProcs[z]
		if p.State != proc.ProcRunning {
			// The process object may have been replaced by migration;
			// find its successor by name.
			p = nil
			for _, n := range s.Cluster.Nodes[:cfg.Nodes] {
				for _, q := range n.Processes() {
					if q.Name == fmt.Sprintf("zone_serv%d", int(z)) {
						p = q
					}
				}
			}
			if p == nil {
				t.Fatalf("zone %d lost", z)
			}
		}
		tcp, _ := p.Sockets()
		for _, sk := range tcp {
			if sk.State == netstack.TCPEstablished && sk.RemotePort != DBPort {
				probes = append(probes, probe{z, sk, sk.BytesIn})
			}
		}
	}
	if len(probes) < 2*180 {
		t.Fatalf("neighbor sockets after LB = %d, want %d", len(probes), 2*180)
	}
	s.Cluster.Sched.RunFor(5 * 1e9)
	stalled := 0
	for _, pr := range probes {
		if pr.sk.BytesIn <= pr.in {
			stalled++
		}
	}
	if stalled > 0 {
		t.Fatalf("%d neighbor connections stalled after migrations", stalled)
	}
}

func TestFig5aRendering(t *testing.T) {
	m := Fig5a()
	for _, want := range []string{"n1", "n5", "↖", "↘", "node3"} {
		if !strings.Contains(m, want) {
			t.Fatalf("Fig5a missing %q:\n%s", want, m)
		}
	}
	lines := strings.Split(strings.TrimSpace(m), "\n")
	if len(lines) < GridH+3 {
		t.Fatalf("Fig5a too short: %d lines", len(lines))
	}
}

func TestPopulationHeatmap(t *testing.T) {
	m := NewMovementModel(10000, 0.2, 0.02, simtime.NewRand(5))
	h := PopulationHeatmap(m.Population())
	if !strings.Contains(h, "100") {
		t.Fatalf("heatmap missing uniform population:\n%s", h)
	}
	if len(strings.Split(strings.TrimSpace(h), "\n")) != GridH {
		t.Fatal("heatmap row count wrong")
	}
}

func TestInteractivityDegradesOnlyWithoutLB(t *testing.T) {
	// The system's raison d'être (§I): overload damages interactivity.
	// Without LB the edge nodes saturate and their delivered update rate
	// falls below 20 Hz; with LB it stays at (or very near) full rate.
	off, err := New(shortConfig(false))
	if err != nil {
		t.Fatal(err)
	}
	rOff := off.Run()
	if rOff.WorstUpdateRate() >= 19 {
		t.Fatalf("no interactivity loss without LB: floor=%v", rOff.WorstUpdateRate())
	}
	on, err := New(shortConfig(true))
	if err != nil {
		t.Fatal(err)
	}
	rOn := on.Run()
	if rOn.WorstUpdateRate() <= rOff.WorstUpdateRate() {
		t.Fatalf("LB did not improve the interactivity floor: %v vs %v",
			rOn.WorstUpdateRate(), rOff.WorstUpdateRate())
	}
}

func TestDrainStormEvacuatesEdgeNodeUnderLoad(t *testing.T) {
	// Operational stress: evacuate ALL 20 zone servers of node1 (each
	// holding client listeners, a DB session and neighbor links) while
	// the simulation runs. Every process must land elsewhere with every
	// connection alive.
	cfg := shortConfig(true)
	cfg.NeighborLinks = true
	cfg.Duration = 0 // we drive the clock manually
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sched := s.Cluster.Sched
	sched.RunFor(10 * 1e9) // settle
	var moved, leftAtDone int
	var drainErr error
	done := false
	s.Conductors[0].Drain(func(m int, err error) {
		moved, drainErr, done = m, err, true
		leftAtDone = countZoneServers(s.Cluster.Nodes[0])
		// The node leaves the balancing pool, as a departing machine
		// would; otherwise its peers immediately refill it.
		s.Conductors[0].Stop()
	})
	sched.RunFor(120 * 1e9)
	if !done {
		t.Fatal("drain never finished")
	}
	if drainErr != nil {
		t.Fatalf("drain failed after %d moves: %v", moved, drainErr)
	}
	if moved != 20 {
		t.Fatalf("moved %d processes, want 20", moved)
	}
	if leftAtDone != 0 {
		t.Fatalf("node1 still ran %d zone servers at drain completion", leftAtDone)
	}
	total := 0
	for _, n := range s.Cluster.Nodes[:cfg.Nodes] {
		total += countZoneServers(n)
	}
	if total != 100 {
		t.Fatalf("zone servers lost: %d", total)
	}
	// All neighbor links still sync after the storm.
	type probe struct {
		sk *netstack.TCPSocket
		in uint64
	}
	var probes []probe
	for _, n := range s.Cluster.Nodes[:cfg.Nodes] {
		for _, p := range n.Processes() {
			tcp, _ := p.Sockets()
			for _, sk := range tcp {
				if sk.State == netstack.TCPEstablished && sk.RemotePort != DBPort {
					probes = append(probes, probe{sk, sk.BytesIn})
				}
			}
		}
	}
	if len(probes) < 2*180 {
		t.Fatalf("neighbor sockets after storm = %d", len(probes))
	}
	sched.RunFor(5 * 1e9)
	for i, pr := range probes {
		if pr.sk.BytesIn <= pr.in {
			t.Fatalf("neighbor socket %d stalled after drain storm", i)
		}
	}
}

func TestAppLayerBaselineBalancesButDisruptsClients(t *testing.T) {
	// The prior-work baseline also tames the imbalance, but at a client
	// cost orders of magnitude above the OS-level middleware — the
	// paper's §I motivation made quantitative.
	appCfg := shortConfig(false)
	appCfg.AppLayerLB = true
	appCfg.AppLayer.CalmDown = 8e9
	appSim, err := New(appCfg)
	if err != nil {
		t.Fatal(err)
	}
	app := appSim.Run()
	if app.Handoffs == 0 {
		t.Fatal("baseline never acted")
	}
	noLB, err := New(shortConfig(false))
	if err != nil {
		t.Fatal(err)
	}
	plain := noLB.Run()
	if app.FinalSpread >= plain.FinalSpread {
		t.Fatalf("baseline did not reduce imbalance: %v vs %v", app.FinalSpread, plain.FinalSpread)
	}
	osSim, err := New(shortConfig(true))
	if err != nil {
		t.Fatal(err)
	}
	osRes := osSim.Run()
	if osRes.Migrations == 0 {
		t.Fatal("os middleware never acted")
	}
	// One zone handoff disconnects ~100+ clients for tens of ms of
	// transfer plus a reconnect storm; the OS freeze is milliseconds.
	if app.OutageClientSeconds < 20*osRes.OutageClientSeconds {
		t.Fatalf("baseline outage %.3f client-seconds not ≫ OS-level %.3f",
			app.OutageClientSeconds, osRes.OutageClientSeconds)
	}
	if osRes.OutageClientSeconds > 1.0 {
		t.Fatalf("OS-level outage implausibly high: %.3f client-seconds", osRes.OutageClientSeconds)
	}
}

func TestAppLayerNeighborConstraint(t *testing.T) {
	// Every handoff must respect the virtual-space adjacency constraint:
	// the receiver already owned a zone adjacent to the moved one.
	cfg := shortConfig(false)
	cfg.AppLayerLB = true
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.Run()
	if s.AppLB.Handoffs == 0 {
		t.Skip("no handoffs this run")
	}
	// Replay ownership to validate each move.
	var owner [GridW * GridH]int
	for z := ZoneID(0); z < GridW*GridH; z++ {
		owner[z] = z.HomeNode()
	}
	for _, o := range s.AppLB.Outages {
		to := s.AppLB.owner[o.Zone] // final owner unknown per-step; validate adjacency at replay
		adjacentOK := false
		for _, w := range adjacentZones(o.Zone) {
			if owner[w] != owner[o.Zone] {
				adjacentOK = true
			}
		}
		if !adjacentOK {
			t.Fatalf("handoff of zone %d violated the adjacency constraint", o.Zone)
		}
		_ = to
		owner[o.Zone] = s.AppLB.owner[o.Zone]
	}
}

// TestPaperScaleAcceptance runs the full §VI-C configuration — 900
// simulated seconds, 10,000 clients, LB on, neighbor links wired — and
// checks every headline property at once. Skipped under -short.
func TestPaperScaleAcceptance(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-scale run")
	}
	cfg := DefaultConfig()
	cfg.LB = true
	cfg.NeighborLinks = true
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r := s.Run()
	if r.Migrations == 0 {
		t.Fatal("no migrations at paper scale")
	}
	if r.FinalSpread > 15 {
		t.Fatalf("spread %v%%, want tight convergence", r.FinalSpread)
	}
	if r.WorstUpdateRate() < 19.5 {
		t.Fatalf("interactivity floor %v with LB on", r.WorstUpdateRate())
	}
	for _, f := range r.FreezeTimes {
		if f > 50*time.Millisecond {
			t.Fatalf("freeze %v exceeds the interactive budget", f)
		}
	}
	if r.OutageClientSeconds > 2 {
		t.Fatalf("client outage %v client-seconds", r.OutageClientSeconds)
	}
	total := 0
	for _, n := range s.Cluster.Nodes[:cfg.Nodes] {
		total += countZoneServers(n)
	}
	if total != 100 {
		t.Fatalf("zone servers lost at paper scale: %d", total)
	}
}
