package dve

import (
	"fmt"
	"strings"

	"dvemig/internal/netstack"
	"dvemig/internal/proc"
)

// DBPort is the database server port (MySQL's well-known port, matching
// the paper's MySQL sessions).
const DBPort = 3306

// DBServer is the database node's server process: a small key-value
// store speaking a line-oriented protocol ("SET key value;" → "OK;",
// "GET key;" → "VAL value;"). Zone servers keep one session each and
// repeatedly update properties of the virtual world (§VI-C).
type DBServer struct {
	Node     *proc.Node
	Proc     *proc.Process
	listener *netstack.TCPSocket
	store    map[string]string

	// Sessions counts accepted connections; Queries counts commands.
	Sessions int
	Queries  uint64
}

// StartDBServer launches the database on a node.
func StartDBServer(n *proc.Node) (*DBServer, error) {
	s := &DBServer{Node: n, store: make(map[string]string)}
	s.Proc = n.Spawn("mysqld", 4)
	s.Proc.CPUDemand = 0.1
	s.listener = netstack.NewTCPSocket(n.Stack)
	if err := s.listener.Listen(n.LocalIP, DBPort); err != nil {
		return nil, err
	}
	s.listener.OnAccept = func(ch *netstack.TCPSocket) {
		s.Sessions++
		s.Proc.FDs.Install(&proc.TCPFile{Sock: ch})
		buf := ""
		ch.OnReadable = func() {
			buf += string(ch.Recv())
			for {
				idx := strings.IndexByte(buf, ';')
				if idx < 0 {
					return
				}
				cmd := buf[:idx]
				buf = buf[idx+1:]
				s.handle(ch, cmd)
			}
		}
	}
	s.Proc.FDs.Install(&proc.TCPFile{Sock: s.listener})
	return s, nil
}

func (s *DBServer) handle(ch *netstack.TCPSocket, cmd string) {
	s.Queries++
	parts := strings.SplitN(strings.TrimSpace(cmd), " ", 3)
	switch {
	case len(parts) == 3 && parts[0] == "SET":
		s.store[parts[1]] = parts[2]
		_ = ch.Send([]byte("OK;"))
	case len(parts) == 2 && parts[0] == "GET":
		_ = ch.Send([]byte(fmt.Sprintf("VAL %s;", s.store[parts[1]])))
	default:
		_ = ch.Send([]byte("ERR;"))
	}
}

// Get reads a stored value (test hook).
func (s *DBServer) Get(key string) string { return s.store[key] }
