package dve

import (
	"fmt"

	"dvemig/internal/netsim"
	"dvemig/internal/netstack"
	"dvemig/internal/proc"
	"dvemig/internal/simtime"
)

// ZoneServerConfig shapes the zone server processes.
type ZoneServerConfig struct {
	// BaseCPU is the fixed demand of an empty zone; PerClientCPU scales
	// with population ("CPU consumption of a zone server process grows
	// proportionally with the number of clients present", §VI-C).
	BaseCPU      float64
	PerClientCPU float64
	// LoopPeriod is the real-time loop rate: 20 updates per second, the
	// Quake III default.
	LoopPeriod simtime.Duration
	// DBEveryTicks: issue one database update every n loop iterations.
	DBEveryTicks int
	// MemPages is the server's working-set size.
	MemPages uint64
	// BasePort: zone i listens on BasePort+i of the cluster IP.
	BasePort uint16
	// NeighborBase: zone i accepts neighbor-server connections on
	// NeighborBase+i of its node's in-cluster address (0 disables).
	// SyncEveryTicks: state-sync message rate toward neighbors.
	NeighborBase   uint16
	SyncEveryTicks int
}

// DefaultZoneConfig is calibrated so five nodes × 20 zones × 100 clients
// sit near 78% CPU, matching the opening of Fig 5e.
func DefaultZoneConfig() ZoneServerConfig {
	return ZoneServerConfig{
		BaseCPU:        0.01,
		PerClientCPU:   0.00068,
		LoopPeriod:     50 * 1e6, // 50ms → 20 Hz
		DBEveryTicks:   10,
		MemPages:       64,
		BasePort:       10000,
		NeighborBase:   20000,
		SyncEveryTicks: 10,
	}
}

// SpawnZoneServer creates the zone server process for zone z on node n:
// a listening TCP socket on the cluster IP (clients of this zone connect
// here), one MySQL session to the database node, a small working set, and
// the real-time loop that processes events, updates the world state in
// the database and tracks its CPU demand from the zone population.
//
// population is called each loop iteration to learn the current client
// count (the aggregate stand-in for per-client packet processing).
func SpawnZoneServer(n *proc.Node, z ZoneID, clusterIP, dbIP netsim.Addr,
	cfg ZoneServerConfig, population func(ZoneID) int) (*proc.Process, error) {

	p := n.Spawn(fmt.Sprintf("zone_serv%d", int(z)), 2)
	v := p.AS.Mmap(cfg.MemPages*proc.PageSize, "rw-")
	for i := uint64(0); i < cfg.MemPages; i += 8 {
		if err := p.AS.Write(v.Start+i*proc.PageSize, []byte{byte(z), byte(i)}); err != nil {
			return nil, err
		}
	}
	p.FDs.Install(&proc.RegularFile{Path: fmt.Sprintf("/srv/zones/%d.map", int(z))})

	lst := netstack.NewTCPSocket(n.Stack)
	if err := lst.Listen(clusterIP, cfg.BasePort+uint16(z)); err != nil {
		return nil, err
	}
	p.FDs.Install(&proc.TCPFile{Sock: lst})

	db := netstack.NewTCPSocket(n.Stack)
	if err := db.Connect(dbIP, DBPort); err != nil {
		return nil, err
	}
	p.FDs.Install(&proc.TCPFile{Sock: db})

	zone := z
	ticks := 0
	heapStart := v.Start
	p.Tick = func(self *proc.Process) {
		ticks++
		pop := population(zone)
		self.CPUDemand = cfg.BaseCPU + cfg.PerClientCPU*float64(pop)
		// The real-time loop touches its working set...
		_ = self.AS.Touch(heapStart + uint64(ticks%int(cfg.MemPages))*proc.PageSize)
		// ...drains whatever arrived, sorting sessions by role...
		tcp, _ := self.Sockets()
		var dbSock *netstack.TCPSocket
		var neighbors []*netstack.TCPSocket
		for _, sk := range tcp {
			if sk.State != netstack.TCPEstablished {
				continue
			}
			sk.Recv() // consume replies / client traffic / neighbor sync
			if sk.RemotePort == DBPort {
				dbSock = sk
			} else {
				neighbors = append(neighbors, sk)
			}
		}
		// ...repeatedly updates the virtual world in the database...
		if dbSock != nil && cfg.DBEveryTicks > 0 && ticks%cfg.DBEveryTicks == 0 {
			_ = dbSock.Send([]byte(fmt.Sprintf("SET zone%d pop%d;", int(zone), pop)))
		}
		// ...and exchanges boundary state with neighboring zone servers.
		if cfg.SyncEveryTicks > 0 && ticks%cfg.SyncEveryTicks == 0 {
			msg := []byte(fmt.Sprintf("SYNC z%d t%d;", int(zone), ticks))
			for _, nb := range neighbors {
				_ = nb.Send(msg)
			}
		}
	}
	p.CPUDemand = cfg.BaseCPU + cfg.PerClientCPU*float64(population(zone))
	n.StartLoop(p, cfg.LoopPeriod)
	return p, nil
}
