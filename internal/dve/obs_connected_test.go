package dve

import (
	"bytes"
	"testing"

	"dvemig/internal/obs"
)

// TestLBTraceConnected is the end-to-end acceptance check for the
// causal layer: a planned migration under the LB middleware (the
// `dvesim -lb -trace-out` path) must export one connected trace — the
// conductor's rebalance decision roots the tree, the source migration
// span links under it, and the destination's inbound restore span links
// across the node boundary. obs.CheckConnected (the `tracecheck
// -connected` mode) asserts every span resolves to its trace root and
// at least one tree spans both sides of a migration.
func TestLBTraceConnected(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Duration = 300 * 1e9
	cfg.MoveStart = 30 * 1e9
	cfg.MoveProb = 0.08
	cfg.LB = true
	cfg.LBConfig.CalmDown = 8e9
	cfg.LBConfig.ImbalanceThreshold = 0.08
	cfg.Observe = true
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r := s.Run()
	if r.Migrations == 0 {
		t.Fatal("LB performed no migrations; nothing to trace")
	}
	cap := s.CaptureObs("dve/lb=true")
	var buf bytes.Buffer
	if err := obs.WriteChromeTrace(&buf, cap); err != nil {
		t.Fatal(err)
	}
	if err := obs.ValidateChromeTrace(buf.Bytes()); err != nil {
		t.Fatalf("exported trace fails schema validation: %v", err)
	}
	if err := obs.CheckConnected(buf.Bytes()); err != nil {
		t.Fatalf("exported trace is not connected: %v", err)
	}

	// The metrics artifact of the same run must validate too.
	var mb bytes.Buffer
	if err := obs.WriteMetricsText(&mb, cap); err != nil {
		t.Fatal(err)
	}
	if err := obs.ValidateMetricsText(mb.Bytes()); err != nil {
		t.Fatalf("exported metrics fail validation: %v", err)
	}
}
