package netstack

import (
	"bytes"
	"testing"
	"time"

	"dvemig/internal/netsim"
	"dvemig/internal/simtime"
)

var (
	addrA = netsim.MakeAddr(192, 168, 0, 1)
	addrB = netsim.MakeAddr(192, 168, 0, 2)
	lan   = netsim.MakeAddr(192, 168, 0, 0)
)

// pair wires two stacks together over an in-cluster switch.
type pair struct {
	sched *simtime.Scheduler
	sw    *netsim.Switch
	a, b  *Stack
}

func newPair(t *testing.T) *pair {
	t.Helper()
	sched := simtime.NewScheduler()
	sw := netsim.NewSwitch(sched)
	a := NewStack(sched, "a", 1000)
	b := NewStack(sched, "b", 50000) // very different jiffies on purpose
	na := sw.Attach("a.eth0", addrA, netsim.GigabitEthernet)
	nb := sw.Attach("b.eth0", addrB, netsim.GigabitEthernet)
	a.AttachNIC(na, addrA)
	b.AttachNIC(nb, addrB)
	a.AddRoute(lan, 24, na, addrA)
	b.AddRoute(lan, 24, nb, addrB)
	return &pair{sched: sched, sw: sw, a: a, b: b}
}

// connect establishes a client (on a) to a server listener (on b) and
// returns client socket and the accepted server-side socket.
func (p *pair) connect(t *testing.T, port uint16) (*TCPSocket, *TCPSocket) {
	t.Helper()
	lst := NewTCPSocket(p.b)
	if err := lst.Listen(addrB, port); err != nil {
		t.Fatal(err)
	}
	var srv *TCPSocket
	lst.OnAccept = func(c *TCPSocket) { srv = c }
	cli := NewTCPSocket(p.a)
	if err := cli.Connect(addrB, port); err != nil {
		t.Fatal(err)
	}
	p.sched.RunFor(100 * time.Millisecond)
	if cli.State != TCPEstablished {
		t.Fatalf("client state = %v", cli.State)
	}
	if srv == nil || srv.State != TCPEstablished {
		t.Fatalf("server side not established: %v", srv)
	}
	return cli, srv
}

func TestHandshake(t *testing.T) {
	p := newPair(t)
	cli, srv := p.connect(t, 3306)
	if cli.RemotePort != 3306 || srv.LocalPort != 3306 {
		t.Fatal("ports wrong")
	}
	if cli.SndNxt != cli.ISS+1 || srv.RcvNxt != cli.ISS+1 {
		t.Fatal("sequence numbers inconsistent after handshake")
	}
	if len(cli.WriteQueue()) != 0 || len(srv.WriteQueue()) != 0 {
		t.Fatal("write queues not empty after handshake")
	}
	if p.b.LookupEstablished(srv.Tuple()) != srv {
		t.Fatal("server socket not in ehash")
	}
}

func TestDataTransferIntegrity(t *testing.T) {
	p := newPair(t)
	cli, srv := p.connect(t, 4000)
	var got []byte
	srv.OnReadable = func() { got = append(got, srv.Recv()...) }
	msg := make([]byte, 100*1024) // ~71 MSS segments
	for i := range msg {
		msg[i] = byte(i * 31)
	}
	if err := cli.Send(msg); err != nil {
		t.Fatal(err)
	}
	p.sched.RunFor(2 * time.Second)
	if !bytes.Equal(got, msg) {
		t.Fatalf("received %d bytes, want %d; content match=%v", len(got), len(msg), bytes.Equal(got, msg))
	}
	if len(cli.WriteQueue()) != 0 || cli.SendBufLen() != 0 {
		t.Fatal("client did not drain its send state")
	}
	if cli.SndUna != cli.SndNxt {
		t.Fatal("not everything acknowledged")
	}
}

func TestBidirectionalEcho(t *testing.T) {
	p := newPair(t)
	cli, srv := p.connect(t, 4001)
	srv.OnReadable = func() {
		if d := srv.Recv(); len(d) > 0 {
			if err := srv.Send(d); err != nil {
				t.Errorf("echo send: %v", err)
			}
		}
	}
	var echoed []byte
	cli.OnReadable = func() { echoed = append(echoed, cli.Recv()...) }
	msg := []byte("the quick brown fox jumps over the lazy dog")
	cli.Send(msg)
	p.sched.RunFor(time.Second)
	if !bytes.Equal(echoed, msg) {
		t.Fatalf("echo mismatch: %q", echoed)
	}
}

func TestRetransmissionOnLoss(t *testing.T) {
	p := newPair(t)
	cli, srv := p.connect(t, 4002)
	var got []byte
	srv.OnReadable = func() { got = append(got, srv.Recv()...) }
	// Drop the first data segment seen at b.
	dropped := false
	id := p.b.RegisterHook(HookLocalIn, 0, func(pk *netsim.Packet) Verdict {
		if !dropped && len(pk.Payload) > 0 {
			dropped = true
			return VerdictDrop
		}
		return VerdictAccept
	})
	cli.Send([]byte("hello"))
	p.sched.RunFor(5 * time.Second)
	p.b.UnregisterHook(id)
	if string(got) != "hello" {
		t.Fatalf("got %q after loss", got)
	}
	if cli.Retransmits == 0 {
		t.Fatal("expected a retransmission")
	}
}

func TestOutOfOrderReassembly(t *testing.T) {
	p := newPair(t)
	cli, srv := p.connect(t, 4003)
	var got []byte
	srv.OnReadable = func() { got = append(got, srv.Recv()...) }
	// Delay (steal and reinject later) the first data segment so the
	// second arrives first.
	var held *netsim.Packet
	id := p.b.RegisterHook(HookLocalIn, 0, func(pk *netsim.Packet) Verdict {
		if held == nil && len(pk.Payload) > 0 {
			held = pk
			return VerdictStolen
		}
		return VerdictAccept
	})
	cli.Send(bytes.Repeat([]byte("A"), DefaultMSS)) // segment 1
	cli.Send(bytes.Repeat([]byte("B"), 10))         // segment 2
	p.sched.RunFor(50 * time.Millisecond)
	if len(srv.OOOQueue()) != 1 {
		t.Fatalf("ooo queue = %d, want 1", len(srv.OOOQueue()))
	}
	p.b.UnregisterHook(id)
	p.b.Reinject(held)
	p.sched.RunFor(time.Second)
	want := append(bytes.Repeat([]byte("A"), DefaultMSS), bytes.Repeat([]byte("B"), 10)...)
	if !bytes.Equal(got, want) {
		t.Fatalf("reassembly failed: got %d bytes", len(got))
	}
	if len(srv.OOOQueue()) != 0 {
		t.Fatal("ooo queue not drained")
	}
}

func TestBacklogWhileLocked(t *testing.T) {
	p := newPair(t)
	cli, srv := p.connect(t, 4004)
	srv.Lock()
	cli.Send([]byte("deferred"))
	p.sched.RunFor(100 * time.Millisecond)
	if srv.BacklogLen() == 0 {
		t.Fatal("packet did not land on backlog")
	}
	if len(srv.Recv()) != 0 {
		t.Fatal("data visible before unlock")
	}
	srv.Unlock()
	p.sched.RunFor(100 * time.Millisecond)
	if string(srv.Recv()) != "deferred" {
		t.Fatal("backlog not processed on unlock")
	}
	if srv.BacklogLen() != 0 {
		t.Fatal("backlog not drained")
	}
}

func TestPrequeueFastPath(t *testing.T) {
	p := newPair(t)
	cli, srv := p.connect(t, 4005)
	srv.StartRecvWait()
	cli.Send([]byte("fast"))
	// Observe the prequeue at the instant of delivery: register a
	// LOCAL_IN hook that checks after demux... instead run until idle and
	// verify the data was processed via the process-context drain.
	p.sched.RunFor(time.Second)
	if string(srv.Recv()) != "fast" {
		t.Fatal("prequeue path lost data")
	}
	if srv.PrequeueBusy() {
		t.Fatal("prequeue left busy")
	}
	srv.StopRecvWait()
}

func TestCloseHandshake(t *testing.T) {
	p := newPair(t)
	cli, srv := p.connect(t, 4006)
	cli.Send([]byte("bye"))
	p.sched.RunFor(100 * time.Millisecond)
	cli.Close()
	p.sched.RunFor(100 * time.Millisecond)
	if !srv.EOF() {
		t.Fatal("server did not see EOF")
	}
	if srv.State != TCPCloseWait {
		t.Fatalf("server state = %v, want CLOSE_WAIT", srv.State)
	}
	srv.Close()
	p.sched.RunFor(5 * time.Second)
	if srv.State != TCPClosed {
		t.Fatalf("server state = %v, want CLOSED", srv.State)
	}
	if cli.State != TCPClosed {
		t.Fatalf("client state = %v, want CLOSED", cli.State)
	}
	if p.b.LookupEstablished(srv.Tuple()) != nil {
		t.Fatal("closed socket still in ehash")
	}
}

func TestListenerClose(t *testing.T) {
	p := newPair(t)
	lst := NewTCPSocket(p.b)
	if err := lst.Listen(addrB, 5000); err != nil {
		t.Fatal(err)
	}
	if p.b.LookupBound(5000) != lst {
		t.Fatal("listener not in bhash")
	}
	lst.Close()
	if p.b.LookupBound(5000) != nil {
		t.Fatal("closed listener still bound")
	}
}

func TestDuplicateListenRejected(t *testing.T) {
	p := newPair(t)
	l1 := NewTCPSocket(p.b)
	if err := l1.Listen(addrB, 5001); err != nil {
		t.Fatal(err)
	}
	l2 := NewTCPSocket(p.b)
	if err := l2.Listen(addrB, 5001); err == nil {
		t.Fatal("duplicate listen accepted")
	}
}

func TestHookOrderAndDrop(t *testing.T) {
	p := newPair(t)
	var order []int
	p.a.RegisterHook(HookLocalOut, 10, func(pk *netsim.Packet) Verdict {
		order = append(order, 10)
		return VerdictAccept
	})
	p.a.RegisterHook(HookLocalOut, -5, func(pk *netsim.Packet) Verdict {
		order = append(order, -5)
		return VerdictAccept
	})
	us := NewUDPSocket(p.a)
	us.BindEphemeral(addrA)
	us.SendTo(addrB, 9999, []byte("x"))
	if len(order) != 2 || order[0] != -5 || order[1] != 10 {
		t.Fatalf("hook order = %v", order)
	}
}

func TestHookDropStopsTraversal(t *testing.T) {
	p := newPair(t)
	ran := false
	p.b.RegisterHook(HookLocalIn, 0, func(pk *netsim.Packet) Verdict { return VerdictDrop })
	p.b.RegisterHook(HookLocalIn, 1, func(pk *netsim.Packet) Verdict { ran = true; return VerdictAccept })
	us := NewUDPSocket(p.b)
	if err := us.Bind(addrB, 7000); err != nil {
		t.Fatal(err)
	}
	ua := NewUDPSocket(p.a)
	ua.BindEphemeral(addrA)
	ua.SendTo(addrB, 7000, []byte("x"))
	p.sched.Run()
	if ran {
		t.Fatal("hook after DROP still ran")
	}
	if us.QueueLen() != 0 {
		t.Fatal("dropped packet delivered")
	}
	if p.b.Stats.HookDrops != 1 {
		t.Fatalf("HookDrops = %d", p.b.Stats.HookDrops)
	}
}

func TestStolenAndReinject(t *testing.T) {
	p := newPair(t)
	var stolen *netsim.Packet
	id := p.b.RegisterHook(HookLocalIn, 0, func(pk *netsim.Packet) Verdict {
		if stolen == nil && pk.Proto == netsim.ProtoUDP {
			stolen = pk
			return VerdictStolen
		}
		return VerdictAccept
	})
	us := NewUDPSocket(p.b)
	if err := us.Bind(addrB, 7001); err != nil {
		t.Fatal(err)
	}
	ua := NewUDPSocket(p.a)
	ua.BindEphemeral(addrA)
	ua.SendTo(addrB, 7001, []byte("steal me"))
	p.sched.Run()
	if us.QueueLen() != 0 || stolen == nil {
		t.Fatal("packet was not stolen")
	}
	p.b.UnregisterHook(id)
	p.b.Reinject(stolen)
	d, ok := us.Recv()
	if !ok || string(d.Payload) != "steal me" {
		t.Fatal("reinjection failed")
	}
	if p.b.Stats.Reinjected != 1 {
		t.Fatal("reinjection not counted")
	}
}

func TestUDPRoundTrip(t *testing.T) {
	p := newPair(t)
	srv := NewUDPSocket(p.b)
	if err := srv.Bind(addrB, 27960); err != nil {
		t.Fatal(err)
	}
	srv.OnReadable = func() {
		d, _ := srv.Recv()
		srv.SendTo(d.SrcIP, d.SrcPort, append([]byte("re:"), d.Payload...))
	}
	cli := NewUDPSocket(p.a)
	cli.BindEphemeral(addrA)
	cli.SendTo(addrB, 27960, []byte("ping"))
	p.sched.Run()
	d, ok := cli.Recv()
	if !ok || string(d.Payload) != "re:ping" {
		t.Fatalf("udp echo failed: %v %q", ok, d.Payload)
	}
}

func TestUDPUnhashStopsDelivery(t *testing.T) {
	p := newPair(t)
	srv := NewUDPSocket(p.b)
	if err := srv.Bind(addrB, 27961); err != nil {
		t.Fatal(err)
	}
	srv.Unhash()
	cli := NewUDPSocket(p.a)
	cli.BindEphemeral(addrA)
	cli.SendTo(addrB, 27961, []byte("lost"))
	p.sched.Run()
	if srv.QueueLen() != 0 {
		t.Fatal("unhashed socket received a packet")
	}
	if err := srv.Rehash(); err != nil {
		t.Fatal(err)
	}
	cli.SendTo(addrB, 27961, []byte("found"))
	p.sched.Run()
	if d, ok := srv.Recv(); !ok || string(d.Payload) != "found" {
		t.Fatal("rehash did not restore delivery")
	}
}

func TestTCPUnhashClearsTimerAndLookup(t *testing.T) {
	p := newPair(t)
	cli, srv := p.connect(t, 4008)
	cli.Send([]byte("inflight"))
	// Unhash the server before the segment arrives.
	srv.Unhash()
	if p.b.LookupEstablished(srv.Tuple()) != nil {
		t.Fatal("unhashed socket still in ehash")
	}
	p.sched.RunFor(50 * time.Millisecond)
	if len(srv.Recv()) != 0 {
		t.Fatal("unhashed socket received data")
	}
	if err := srv.Rehash(); err != nil {
		t.Fatal(err)
	}
	// Client retransmits after RTO and data arrives.
	p.sched.RunFor(5 * time.Second)
	if string(srv.Recv()) != "inflight" {
		t.Fatal("data lost across unhash/rehash")
	}
}

func TestRouteLongestPrefix(t *testing.T) {
	sched := simtime.NewScheduler()
	sw := netsim.NewSwitch(sched)
	s := NewStack(sched, "s", 0)
	n1 := sw.Attach("eth0", netsim.MakeAddr(10, 0, 0, 1), netsim.GigabitEthernet)
	n2 := sw.Attach("eth1", netsim.MakeAddr(10, 0, 1, 1), netsim.GigabitEthernet)
	s.AttachNIC(n1, n1.Addr)
	s.AttachNIC(n2, n2.Addr)
	s.AddRoute(netsim.MakeAddr(10, 0, 0, 0), 8, n1, n1.Addr)
	s.AddRoute(netsim.MakeAddr(10, 0, 1, 0), 24, n2, n2.Addr)
	if src, _ := s.SourceAddrFor(netsim.MakeAddr(10, 0, 1, 55)); src != n2.Addr {
		t.Fatal("longest prefix not preferred")
	}
	if src, _ := s.SourceAddrFor(netsim.MakeAddr(10, 9, 9, 9)); src != n1.Addr {
		t.Fatal("fallback route not used")
	}
	if _, err := s.SourceAddrFor(netsim.MakeAddr(172, 16, 0, 1)); err == nil {
		t.Fatal("unroutable address accepted")
	}
}

func TestDstCacheReuse(t *testing.T) {
	p := newPair(t)
	d1, err := p.a.DstFor(addrB)
	if err != nil {
		t.Fatal(err)
	}
	d2, _ := p.a.DstFor(addrB)
	if d1 != d2 {
		t.Fatal("destination cache did not reuse entry")
	}
	p.a.InvalidateDst(addrB)
	d3, _ := p.a.DstFor(addrB)
	if d3 == d1 {
		t.Fatal("invalidate did not evict")
	}
	d4, err := p.a.MakeDst(addrB)
	if err != nil {
		t.Fatal(err)
	}
	if d4 == d3 {
		t.Fatal("MakeDst returned the shared cache entry")
	}
}

func TestEphemeralPortsUnique(t *testing.T) {
	p := newPair(t)
	seen := map[uint16]bool{}
	for i := 0; i < 100; i++ {
		us := NewUDPSocket(p.a)
		us.BindEphemeral(addrA)
		if seen[us.LocalPort] {
			t.Fatalf("ephemeral port %d reused", us.LocalPort)
		}
		seen[us.LocalPort] = true
	}
}

func TestRTTMeasurementReasonable(t *testing.T) {
	p := newPair(t)
	cli, srv := p.connect(t, 4009)
	srv.OnReadable = func() { srv.Recv() }
	for i := 0; i < 20; i++ {
		cli.Send(bytes.Repeat([]byte("z"), 512))
		p.sched.RunFor(60 * time.Millisecond)
	}
	// Link RTT is ~100µs; jiffy granularity is 10ms, so SRTT should be
	// close to zero, definitely below 50ms, and RTO must respect MinRTO.
	if cli.SRTTms > 50 {
		t.Fatalf("SRTT = %dms, absurdly high", cli.SRTTms)
	}
	if cli.RTOms < int(MinRTO/1e6) {
		t.Fatalf("RTO below floor: %dms", cli.RTOms)
	}
}

func TestCwndLimitsInflight(t *testing.T) {
	p := newPair(t)
	cli, _ := p.connect(t, 4010)
	cli.Cwnd = 2
	cli.Ssthresh = 2
	cli.Send(make([]byte, 10*DefaultMSS))
	// Before any ACK returns, only cwnd segments may be in flight.
	if got := len(cli.WriteQueue()); got != 2 {
		t.Fatalf("inflight = %d, want 2", got)
	}
	if cli.SendBufLen() != 8*DefaultMSS {
		t.Fatalf("sndbuf = %d", cli.SendBufLen())
	}
}

func TestSeqCompareWraps(t *testing.T) {
	if !seqLT(0xFFFFFFF0, 0x10) {
		t.Fatal("wrap-around compare broken")
	}
	if seqLT(0x10, 0xFFFFFFF0) {
		t.Fatal("wrap-around compare inverted")
	}
	if !seqLE(5, 5) {
		t.Fatal("seqLE not reflexive")
	}
}

func TestBroadcastDemuxOnlyOwnerAnswers(t *testing.T) {
	// Three server stacks share the cluster IP behind the broadcast
	// router; a client SYN must create exactly one connection.
	sched := simtime.NewScheduler()
	cluster := netsim.MakeAddr(203, 0, 113, 10)
	r := netsim.NewBroadcastRouter(sched, cluster)
	var stacks []*Stack
	for i := 0; i < 3; i++ {
		st := NewStack(sched, "srv", uint32(1000*i))
		nic := r.AttachServer("pub", netsim.GigabitEthernet)
		st.AttachNIC(nic, cluster)
		st.AddRoute(0, 0, nic, cluster) // default route to the world
		stacks = append(stacks, st)
	}
	// Only stack 1 owns port 6000.
	lst := NewTCPSocket(stacks[1])
	if err := lst.Listen(cluster, 6000); err != nil {
		t.Fatal(err)
	}
	cliStack := NewStack(sched, "cli", 7)
	cnic := r.AttachExternal("cli", netsim.MakeAddr(198, 51, 100, 1), netsim.GigabitEthernet)
	cliStack.AttachNIC(cnic, cnic.Addr)
	cliStack.AddRoute(0, 0, cnic, cnic.Addr)
	cli := NewTCPSocket(cliStack)
	if err := cli.Connect(cluster, 6000); err != nil {
		t.Fatal(err)
	}
	sched.RunFor(time.Second)
	if cli.State != TCPEstablished {
		t.Fatalf("client state = %v", cli.State)
	}
	if stacks[0].Stats.NoSocketDrops == 0 || stacks[2].Stats.NoSocketDrops == 0 {
		t.Fatal("non-owner nodes should silently drop broadcast copies")
	}
	if len(stacks[0].EstablishedSockets())+len(stacks[2].EstablishedSockets()) != 0 {
		t.Fatal("non-owner created a connection")
	}
}

func TestFastRetransmitOnTripleDupAck(t *testing.T) {
	p := newPair(t)
	cli, srv := p.connect(t, 4020)
	var got []byte
	srv.OnReadable = func() { got = append(got, srv.Recv()...) }
	// Drop exactly the first data segment at b; later segments produce
	// dup ACKs that trigger fast retransmit well before the 200ms RTO.
	dropped := false
	p.b.RegisterHook(HookLocalIn, 0, func(pk *netsim.Packet) Verdict {
		if !dropped && len(pk.Payload) > 0 {
			dropped = true
			return VerdictDrop
		}
		return VerdictAccept
	})
	// Send several segments back to back.
	cli.Send(make([]byte, 5*DefaultMSS))
	p.sched.RunFor(100 * time.Millisecond) // less than MinRTO
	if cli.FastRetransmits != 1 {
		t.Fatalf("fast retransmits = %d, want 1", cli.FastRetransmits)
	}
	if cli.Retransmits != 0 {
		t.Fatalf("RTO fired (%d) before fast retransmit could act", cli.Retransmits)
	}
	if len(got) != 5*DefaultMSS {
		t.Fatalf("received %d bytes, want %d", len(got), 5*DefaultMSS)
	}
	if cli.SndUna != cli.SndNxt {
		t.Fatal("not fully acknowledged")
	}
}

func TestBulkTransferOverLossyLink(t *testing.T) {
	// End-to-end robustness: 2% loss in both directions, a 500 KB
	// transfer must still complete intact via RTO + fast retransmit.
	sched := simtime.NewScheduler()
	sw := netsim.NewSwitch(sched)
	lossy := netsim.LinkParams{Bandwidth: 1e9, Latency: 100 * 1e3, LossRate: 0.02}
	a := NewStack(sched, "a", 1000)
	b := NewStack(sched, "b", 2000)
	na := sw.Attach("a.eth0", addrA, lossy)
	nb := sw.Attach("b.eth0", addrB, lossy)
	a.AttachNIC(na, addrA)
	b.AttachNIC(nb, addrB)
	a.AddRoute(lan, 24, na, addrA)
	b.AddRoute(lan, 24, nb, addrB)
	lst := NewTCPSocket(b)
	if err := lst.Listen(addrB, 9100); err != nil {
		t.Fatal(err)
	}
	var srv *TCPSocket
	lst.OnAccept = func(ch *TCPSocket) { srv = ch }
	cli := NewTCPSocket(a)
	if err := cli.Connect(addrB, 9100); err != nil {
		t.Fatal(err)
	}
	sched.RunFor(5 * time.Second) // allow SYN retransmission under loss
	if cli.State != TCPEstablished || srv == nil {
		t.Fatalf("handshake failed under loss: %v", cli.State)
	}
	var got []byte
	srv.OnReadable = func() { got = append(got, srv.Recv()...) }
	msg := make([]byte, 500*1024)
	for i := range msg {
		msg[i] = byte(i * 7)
	}
	cli.Send(msg)
	sched.RunFor(120 * time.Second)
	if !bytes.Equal(got, msg) {
		t.Fatalf("lossy transfer corrupted: got %d of %d bytes", len(got), len(msg))
	}
	if na.LossDropped == 0 && nb.LossDropped == 0 {
		t.Fatal("loss model inactive; test vacuous")
	}
}

func TestFlowControlWindowStallsSender(t *testing.T) {
	p := newPair(t)
	cli, srv := p.connect(t, 4030)
	// Server app never reads: the receive buffer fills, the advertised
	// window closes, and the sender stalls instead of flooding.
	big := make([]byte, 4*DefaultRcvBuf)
	cli.Send(big)
	p.sched.RunFor(2 * time.Second)
	inflightAndDelivered := int(cli.SndNxt - cli.SndUna + uint32(srvBufBytes(srv)))
	if srvBufBytes(srv) > DefaultRcvBuf {
		t.Fatalf("receiver buffered %d > advertised max %d", srvBufBytes(srv), DefaultRcvBuf)
	}
	if cli.SendBufLen() == 0 {
		t.Fatal("sender did not stall on the closed window")
	}
	_ = inflightAndDelivered
	// The app drains; the window reopens and the transfer completes.
	var got []byte
	srv.OnReadable = func() { got = append(got, srv.Recv()...) }
	got = append(got, srv.Recv()...)
	p.sched.RunFor(30 * time.Second)
	if len(got) != len(big) {
		t.Fatalf("transfer incomplete after window reopened: %d of %d", len(got), len(big))
	}
	if cli.SendBufLen() != 0 {
		t.Fatal("send buffer not drained")
	}
}

func srvBufBytes(sk *TCPSocket) int {
	n := 0
	for _, p := range sk.ReceiveQueue() {
		n += len(p.Payload)
	}
	return n
}

func TestZeroWindowProbeSurvivesLostUpdate(t *testing.T) {
	p := newPair(t)
	cli, srv := p.connect(t, 4031)
	big := make([]byte, 2*DefaultRcvBuf)
	cli.Send(big)
	p.sched.RunFor(2 * time.Second)
	if cli.SendBufLen() == 0 {
		t.Fatal("setup: sender should be window-stalled")
	}
	// Drop every pure-ACK from the server for a while: the window-update
	// that Recv() sends is lost; only the persist probe can recover.
	dropping := true
	p.a.RegisterHook(HookLocalIn, 0, func(pk *netsim.Packet) Verdict {
		if dropping && len(pk.Payload) == 0 {
			return VerdictDrop
		}
		return VerdictAccept
	})
	srv.Recv() // frees the whole buffer; its window update is dropped
	p.sched.RunFor(300 * time.Millisecond)
	dropping = false
	var got []byte
	srv.OnReadable = func() { got = append(got, srv.Recv()...) }
	p.sched.RunFor(60 * time.Second)
	if cli.SendBufLen() != 0 {
		t.Fatalf("persist probe failed to unstick the sender (%d left)", cli.SendBufLen())
	}
}

func TestWindowRestoredAcrossMigration(t *testing.T) {
	p := newPair(t)
	cli, srv := p.connect(t, 4032)
	// Fill the server's buffer so its advertised window is partly closed.
	cli.Send(make([]byte, 30000))
	p.sched.RunFor(time.Second)
	srv.Unhash()
	snap := SnapshotTCP(srv)
	if snap.SndWnd == 0 && snap.RcvBufMax == 0 {
		t.Fatal("flow-control state missing from snapshot")
	}
	restored, err := RestoreTCP(p.b, snap)
	if err != nil {
		t.Fatal(err)
	}
	// The restored socket advertises a window consistent with its
	// restored (unread) receive queue.
	if got := restored.advertisedWindow(); int(got) != DefaultRcvBuf-30000 {
		t.Fatalf("restored window = %d, want %d", got, DefaultRcvBuf-30000)
	}
	if string(restored.Recv()[:5]) != string(make([]byte, 5)) {
		t.Fatal("queue content wrong")
	}
	if restored.advertisedWindow() != DefaultRcvBuf {
		t.Fatal("window did not reopen after drain")
	}
}
