package netstack

import (
	"testing"

	"dvemig/internal/netsim"
)

// FuzzTCPSnapshotDecode throws arbitrary bytes at the section-tagged
// snapshot decoder: it must reject or accept without panicking, and
// anything it accepts must re-encode and re-decode stably. The decoder
// runs on bytes received from a remote migd, so it is a trust boundary.
func FuzzTCPSnapshotDecode(f *testing.F) {
	snap := &TCPSnapshot{
		LocalIP: netsim.MakeAddr(192, 168, 1, 1), RemoteIP: netsim.MakeAddr(172, 16, 0, 9),
		LocalPort: 7777, RemotePort: 41000,
		State: TCPEstablished, ISS: 1, SndUna: 5, SndNxt: 9, IRS: 2, RcvNxt: 8,
		Cwnd: 10, Ssthresh: 64, SndWnd: 65535,
		SRTTms: 3, RTTVarms: 1, RTOms: 200, MSS: 1448,
		SndBuf: []byte("pending"),
	}
	f.Add(snap.Encode())
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := DecodeTCPSnapshot(data)
		if err != nil || s == nil {
			return
		}
		s2, err := DecodeTCPSnapshot(s.Encode())
		if err != nil {
			t.Fatalf("re-decode of encoded snapshot failed: %v", err)
		}
		if s2.LocalPort != s.LocalPort || s2.SndNxt != s.SndNxt || len(s2.SndBuf) != len(s.SndBuf) {
			t.Fatal("encode/decode not stable")
		}
	})
}

// FuzzUDPSnapshotDecode is the same property for the UDP snapshot.
func FuzzUDPSnapshotDecode(f *testing.F) {
	us := &UDPSnapshot{
		LocalIP: netsim.MakeAddr(192, 168, 1, 2), LocalPort: 27960, SrcJiffies: 77,
		Queue: []Datagram{{SrcIP: netsim.MakeAddr(1, 2, 3, 4), SrcPort: 9, Payload: []byte("dg")}},
	}
	f.Add(us.Encode())
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := DecodeUDPSnapshot(data)
		if err != nil || s == nil {
			return
		}
		s2, err := DecodeUDPSnapshot(s.Encode())
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if s2.LocalPort != s.LocalPort || len(s2.Queue) != len(s.Queue) {
			t.Fatal("encode/decode not stable")
		}
	})
}
