package netstack

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"dvemig/internal/netsim"
	"dvemig/internal/simtime"
)

// TestReassemblyUnderRandomSegmentOrder drives the receive state machine
// directly with the segments of a message delivered in an arbitrary
// order (with duplicates): the application must always observe the exact
// original byte stream.
func TestReassemblyUnderRandomSegmentOrder(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		rnd := rand.New(rand.NewSource(seed))
		st := NewStack(simtime.NewScheduler(), "rx", 0)
		sk := NewTCPSocket(st)
		sk.State = TCPEstablished
		sk.LocalIP, sk.RemoteIP = 1, 2
		sk.LocalPort, sk.RemotePort = 80, 40000
		sk.IRS = 1000
		sk.RcvNxt = 1001
		st.ehash[sk.Tuple()] = sk

		msg := make([]byte, 1+rnd.Intn(20000))
		rnd.Read(msg)
		// Segment into random-size pieces.
		var segs []*netsim.Packet
		seq := uint32(1001)
		for off := 0; off < len(msg); {
			n := 1 + rnd.Intn(1800)
			if off+n > len(msg) {
				n = len(msg) - off
			}
			segs = append(segs, &netsim.Packet{
				Proto: netsim.ProtoTCP, SrcIP: 2, DstIP: 1, SrcPort: 40000, DstPort: 80,
				Seq: seq, Flags: netsim.FlagACK | netsim.FlagPSH,
				Payload: append([]byte(nil), msg[off:off+n]...),
			})
			seq += uint32(n)
			off += n
		}
		// Shuffle and duplicate some.
		order := rnd.Perm(len(segs))
		var deliver []*netsim.Packet
		for _, i := range order {
			deliver = append(deliver, segs[i])
			if rnd.Intn(4) == 0 {
				deliver = append(deliver, segs[i].Clone()) // duplicate
			}
		}
		var got []byte
		sk.OnReadable = func() { got = append(got, sk.Recv()...) }
		for _, p := range deliver {
			sk.InjectArrived(p)
		}
		got = append(got, sk.Recv()...)
		if !bytes.Equal(got, msg) {
			t.Fatalf("seed %d: reassembly mismatch (%d vs %d bytes)", seed, len(got), len(msg))
		}
		if len(sk.OOOQueue()) != 0 {
			t.Fatalf("seed %d: ooo queue not drained (%d)", seed, len(sk.OOOQueue()))
		}
		if sk.RcvNxt != 1001+uint32(len(msg)) {
			t.Fatalf("seed %d: RcvNxt wrong", seed)
		}
	}
}

// TestSnapshotSectionsComposeProperty: applying the five sections of a
// snapshot in ANY order reconstructs the same snapshot.
func TestSnapshotSectionsComposeProperty(t *testing.T) {
	p := newPair(t)
	cli, srv := p.connect(t, 4200)
	srv.OnReadable = func() { srv.Recv() }
	cli.Send(bytes.Repeat([]byte("seed"), 500))
	p.sched.RunFor(50 * time.Millisecond)
	cli.Unhash()
	snap := SnapshotTCP(cli)
	var secs [5][]byte
	for id := SectionID(0); id < 5; id++ {
		secs[id] = snap.EncodeSection(id)
	}
	f := func(permSeed uint32) bool {
		rnd := rand.New(rand.NewSource(int64(permSeed)))
		rebuilt := &TCPSnapshot{}
		for _, i := range rnd.Perm(5) {
			if err := rebuilt.ApplySection(SectionID(i), secs[i]); err != nil {
				return false
			}
		}
		return rebuilt.SndNxt == snap.SndNxt && rebuilt.RcvNxt == snap.RcvNxt &&
			rebuilt.LocalPort == snap.LocalPort &&
			len(rebuilt.WriteQueue) == len(snap.WriteQueue) &&
			bytes.Equal(rebuilt.SndBuf, snap.SndBuf)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestChecksumProperty: FixChecksum always validates, and flipping any
// single header byte invalidates (excluding the checksum field itself).
func TestChecksumProperty(t *testing.T) {
	f := func(src, dst uint32, seq uint32, payload []byte, flipAt uint16) bool {
		p := &netsim.Packet{SrcIP: netsim.Addr(src), DstIP: netsim.Addr(dst),
			Proto: netsim.ProtoTCP, SrcPort: 1, DstPort: 2, Seq: seq, Payload: payload}
		p.FixChecksum()
		if !p.ChecksumOK() {
			return false
		}
		// Flip one bit in an address field; must be detected.
		q := p.Clone()
		q.SrcIP ^= 1 << (flipAt % 32)
		return !q.ChecksumOK()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
