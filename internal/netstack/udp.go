package netstack

import (
	"fmt"

	"dvemig/internal/netsim"
)

// Datagram is one received UDP message together with its source.
type Datagram struct {
	SrcIP   netsim.Addr
	SrcPort uint16
	TSVal   uint32 // sender jiffies, adjusted on migration like TCP buffers
	Payload []byte
}

// UDPSocket models a UDP server socket bound to a local port. Migrating
// one means unhashing it, transferring the main structure plus the
// receive-queue buffers, and rehashing on the destination (§V-C2).
type UDPSocket struct {
	stack *Stack

	LocalIP   netsim.Addr
	LocalPort uint16

	receiveQueue []Datagram
	unhashed     bool

	// OnReadable fires when a datagram is queued.
	OnReadable func()

	BytesIn, BytesOut     uint64
	PacketsIn, PacketsOut uint64

	dstCacheByPeer map[netsim.Addr]*netsim.DstEntry
}

// NewUDPSocket allocates an unbound UDP socket.
func NewUDPSocket(s *Stack) *UDPSocket {
	return &UDPSocket{stack: s, dstCacheByPeer: make(map[netsim.Addr]*netsim.DstEntry)}
}

// Stack returns the owning stack.
func (us *UDPSocket) Stack() *Stack { return us.stack }

// Bind hashes the socket under the local port.
func (us *UDPSocket) Bind(addr netsim.Addr, port uint16) error {
	if us.stack.udph[port] != nil {
		return fmt.Errorf("netstack %s: UDP port %d already bound", us.stack.Name, port)
	}
	us.LocalIP = addr
	us.LocalPort = port
	us.stack.udph[port] = us
	return nil
}

// BindEphemeral binds to a stack-chosen port (client sockets).
func (us *UDPSocket) BindEphemeral(addr netsim.Addr) {
	us.LocalIP = addr
	us.LocalPort = us.stack.allocEphemeral()
	us.stack.udph[us.LocalPort] = us
}

// SendTo transmits one datagram.
func (us *UDPSocket) SendTo(dst netsim.Addr, port uint16, payload []byte) error {
	if us.unhashed {
		return fmt.Errorf("netstack: send on unhashed UDP socket")
	}
	d, ok := us.dstCacheByPeer[dst]
	if !ok {
		var err error
		if d, err = us.stack.DstFor(dst); err != nil {
			return err
		}
		us.dstCacheByPeer[dst] = d
	}
	p := netsim.NewPacket()
	p.SrcIP, p.DstIP, p.Proto, p.TTL = us.LocalIP, dst, netsim.ProtoUDP, 64
	p.SrcPort, p.DstPort = us.LocalPort, port
	p.TSVal = us.stack.Jiffies()
	p.Payload = netsim.GetPayload(len(payload))
	copy(p.Payload, payload)
	p.Dst = d
	p.FixChecksum()
	us.PacketsOut++
	us.BytesOut += uint64(len(payload))
	us.stack.transmit(p)
	return nil
}

func (us *UDPSocket) input(p *netsim.Packet) {
	if us.unhashed {
		p.Release()
		return
	}
	us.receiveQueue = append(us.receiveQueue, Datagram{
		SrcIP: p.SrcIP, SrcPort: p.SrcPort, TSVal: p.TSVal,
		Payload: p.Payload,
	})
	us.PacketsIn++
	us.BytesIn += uint64(len(p.Payload))
	// The datagram stole the payload buffer; detach it so Release only
	// recycles the struct.
	p.Payload = nil
	p.Release()
	if us.OnReadable != nil {
		us.OnReadable()
	}
}

// Recv pops the oldest queued datagram; ok is false when empty.
func (us *UDPSocket) Recv() (Datagram, bool) {
	if len(us.receiveQueue) == 0 {
		return Datagram{}, false
	}
	d := us.receiveQueue[0]
	us.receiveQueue = us.receiveQueue[1:]
	return d, true
}

// QueueLen reports buffered datagrams (dumped at migration time).
func (us *UDPSocket) QueueLen() int { return len(us.receiveQueue) }

// ReceiveQueue exposes the buffered datagrams for checkpointing.
func (us *UDPSocket) ReceiveQueue() []Datagram { return us.receiveQueue }

// Close unbinds the socket.
func (us *UDPSocket) Close() {
	if !us.unhashed && us.stack.udph[us.LocalPort] == us {
		delete(us.stack.udph, us.LocalPort)
	}
	us.unhashed = true
}

// Unhash removes the socket from the UDP hash before migration (§V-C2:
// "each UDP server socket has to be unhashed before the migration").
func (us *UDPSocket) Unhash() {
	if us.unhashed {
		return
	}
	if us.stack.udph[us.LocalPort] == us {
		delete(us.stack.udph, us.LocalPort)
	}
	us.unhashed = true
}

// Rehash inserts the socket into its stack's UDP hash after restore.
func (us *UDPSocket) Rehash() error {
	if !us.unhashed {
		return fmt.Errorf("netstack: rehash of a hashed UDP socket")
	}
	if us.stack.udph[us.LocalPort] != nil {
		return fmt.Errorf("netstack %s: UDP port %d already bound", us.stack.Name, us.LocalPort)
	}
	us.stack.udph[us.LocalPort] = us
	us.unhashed = false
	return nil
}

// Unhashed reports migration-disabled state.
func (us *UDPSocket) Unhashed() bool { return us.unhashed }

// AdoptStack rebinds the socket to a new node's stack, clearing peer
// destination cache entries so they are re-resolved locally.
func (us *UDPSocket) AdoptStack(st *Stack) {
	us.stack = st
	us.dstCacheByPeer = make(map[netsim.Addr]*netsim.DstEntry)
}
