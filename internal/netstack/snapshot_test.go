package netstack

import (
	"bytes"
	"reflect"
	"testing"
	"testing/quick"
	"time"

	"dvemig/internal/netsim"
	"dvemig/internal/simtime"
)

func TestTCPSnapshotEncodeDecodeRoundTrip(t *testing.T) {
	f := func(iss, una, nxt, irs, rcv, tsr, ltj, srcj uint32, cwnd, ssth uint32, payload []byte) bool {
		snap := &TCPSnapshot{
			LocalIP: addrB, RemoteIP: addrA, LocalPort: 80, RemotePort: 40000,
			State: TCPEstablished,
			ISS:   iss, SndUna: una, SndNxt: nxt, IRS: irs, RcvNxt: rcv,
			Cwnd: cwnd%1000 + 1, Ssthresh: ssth%1000 + 1,
			SRTTms: 12, RTTVarms: 3, RTOms: 240,
			TSRecent: tsr, LastTxJiffies: ltj, SrcJiffies: srcj,
			MSS: DefaultMSS, SndBuf: payload,
			BytesIn: 11, BytesOut: 22,
		}
		pkt := &netsim.Packet{SrcIP: addrB, DstIP: addrA, Proto: netsim.ProtoTCP,
			SrcPort: 80, DstPort: 40000, Seq: nxt, Payload: payload}
		pkt.FixChecksum()
		snap.WriteQueue = [][]byte{pkt.Marshal()}
		got, err := DecodeTCPSnapshot(snap.Encode())
		if err != nil {
			return false
		}
		if len(payload) == 0 {
			snap.SndBuf = nil
			got.SndBuf = nil
		}
		return reflect.DeepEqual(snap, got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestIdentitySectionHasKernelImageSize(t *testing.T) {
	snap := &TCPSnapshot{MSS: DefaultMSS}
	if len(snap.EncodeSection(SecIdentity)) != KernelSockImageBytes {
		t.Fatalf("identity section = %d bytes, want %d", len(snap.EncodeSection(SecIdentity)), KernelSockImageBytes)
	}
	// The hot core section stays small so traffic-induced deltas are
	// cheap; it grows with the unsegmented send buffer.
	if n := len(snap.EncodeSection(SecCore)); n > 256 {
		t.Fatalf("core section = %d bytes, should be small", n)
	}
	snap.SndBuf = make([]byte, 1024)
	if len(snap.EncodeSection(SecCore)) < 1024 {
		t.Fatal("core section did not grow with send buffer")
	}
}

func TestQueueSectionSizeCountsSkbOverhead(t *testing.T) {
	snap := &TCPSnapshot{}
	empty := snap.EncodeSection(SecWriteQueue)
	pkt := &netsim.Packet{Payload: make([]byte, 100)}
	snap.WriteQueue = [][]byte{pkt.Marshal()}
	one := snap.EncodeSection(SecWriteQueue)
	perBuf := len(one) - len(empty)
	if perBuf < SkbOverheadBytes+100 {
		t.Fatalf("per-buffer cost = %d, want at least %d", perBuf, SkbOverheadBytes+100)
	}
}

func TestApplySectionUnknownID(t *testing.T) {
	snap := &TCPSnapshot{}
	if err := snap.ApplySection(SectionID(99), nil); err == nil {
		t.Fatal("unknown section accepted")
	}
}

func TestDecodeTruncatedSnapshot(t *testing.T) {
	snap := &TCPSnapshot{State: TCPEstablished}
	enc := snap.Encode()
	if _, err := DecodeTCPSnapshot(enc[:len(enc)-10]); err == nil {
		t.Fatal("truncated snapshot accepted")
	}
}

func TestRestoreTCPAdjustsJiffies(t *testing.T) {
	p := newPair(t)
	cli, srv := p.connect(t, 4100)
	// Put a segment in flight so the write queue is non-empty at snapshot
	// time: lock the client so the ACK cannot be processed.
	srv.OnReadable = func() { srv.Recv() }
	cli.Lock()
	cli.Send([]byte("unacked"))
	p.sched.RunFor(50 * time.Millisecond)
	if len(cli.WriteQueue()) == 0 {
		t.Fatal("write queue empty; test setup broken")
	}
	origTS := cli.WriteQueue()[0].TSVal
	cli.Unhash()
	snap := SnapshotTCP(cli)
	srcJ := p.a.Jiffies()
	if snap.SrcJiffies != srcJ {
		t.Fatalf("SrcJiffies = %d, want %d", snap.SrcJiffies, srcJ)
	}
	// Restore on stack b, whose jiffies differ by 49000. Timestamp
	// continuity is per-socket: instead of rewriting the buffered TSVals
	// to b's clock, the restore installs a TSOffset so the socket keeps
	// ticking on the clock the peer already knows.
	restored, err := RestoreTCP(p.b, snap)
	if err != nil {
		t.Fatal(err)
	}
	if restored.WriteQueue()[0].TSVal != origTS {
		t.Fatalf("buffer timestamp must be preserved verbatim: got %d, want %d",
			restored.WriteQueue()[0].TSVal, origTS)
	}
	if restored.LastTxJiffies != snap.LastTxJiffies {
		t.Fatal("LastTxJiffies must be preserved verbatim")
	}
	// The socket clock must resume from the checkpoint value: no virtual
	// time passed between snapshot and restore, so tsNow() == srcJ.
	if restored.tsNow() != srcJ {
		t.Fatalf("socket clock did not resume from source clock: tsNow=%d srcJ=%d", restored.tsNow(), srcJ)
	}
	if restored.TSOffset != srcJ-p.b.Jiffies() {
		t.Fatalf("TSOffset = %d, want %d", restored.TSOffset, srcJ-p.b.Jiffies())
	}
	if restored.TSRecent != snap.TSRecent {
		t.Fatal("TSRecent (peer clock) must not be adjusted")
	}
	if p.b.LookupEstablished(restored.Tuple()) != restored {
		t.Fatal("restored socket not rehashed")
	}
	if !restored.WriteQueue()[0].ChecksumOK() {
		t.Fatal("restored buffer checksum not intact")
	}
}

func TestRestoreTCPRestartsRetransTimer(t *testing.T) {
	p := newPair(t)
	cli, srv := p.connect(t, 4101)
	var got []byte
	srv.OnReadable = func() { got = append(got, srv.Recv()...) }
	// Steal the data packet at b so it is never delivered; the socket
	// will have to retransmit from its new home.
	id := p.b.RegisterHook(HookLocalIn, 0, func(pk *netsim.Packet) Verdict {
		if len(pk.Payload) > 0 {
			return VerdictDrop
		}
		return VerdictAccept
	})
	cli.Send([]byte("must-arrive"))
	p.sched.RunFor(20 * time.Millisecond)
	cli.Unhash()
	snap := SnapshotTCP(cli)
	p.b.UnregisterHook(id)

	// Restore the client socket onto a third stack c on the same LAN.
	addrC := netsim.MakeAddr(192, 168, 0, 3)
	nc := p.sw.Attach("c.eth0", addrC, netsim.GigabitEthernet)
	c := NewStack(p.sched, "c", 999999)
	c.AttachNIC(nc, addrC)
	c.AddRoute(lan, 24, nc, addrC)
	// The connection's local address is addrA; c must own it for demux.
	// (In the real system this is the single cluster IP shared by all
	// nodes; emulate by moving the address from a to c.)
	p.sw.Detach(p.a.nicByName("a.eth0")) // a leaves; c takes over addrA
	cNic2 := p.sw.Attach("c.eth0:0", addrA, netsim.GigabitEthernet)
	c.AttachNIC(cNic2, addrA)
	c.AddRoute(lan, 24, cNic2, addrA)

	restored, err := RestoreTCP(c, snap)
	if err != nil {
		t.Fatal(err)
	}
	p.sched.RunFor(10 * time.Second)
	if string(got) != "must-arrive" {
		t.Fatalf("retransmission from restored socket failed: %q", got)
	}
	if restored.Retransmits == 0 {
		t.Fatal("restored socket never retransmitted")
	}
	if restored.SndUna != restored.SndNxt {
		t.Fatal("retransmitted data not acknowledged")
	}
}

func TestRestoreListenerAcceptsOnNewNode(t *testing.T) {
	p := newPair(t)
	lst := NewTCPSocket(p.a)
	if err := lst.Listen(addrA, 8080); err != nil {
		t.Fatal(err)
	}
	lst.Unhash()
	snap := SnapshotTCP(lst)
	if !snap.Listening || snap.State != TCPListen {
		t.Fatal("listen snapshot wrong")
	}
	enc := snap.Encode()
	dec, err := DecodeTCPSnapshot(enc)
	if err != nil {
		t.Fatal(err)
	}
	// Restore on b under b's address (port ownership moves with it; on
	// the real cluster the IP is shared).
	dec.LocalIP = addrB
	restored, err := RestoreTCP(p.b, dec)
	if err != nil {
		t.Fatal(err)
	}
	var accepted *TCPSocket
	restored.OnAccept = func(ch *TCPSocket) { accepted = ch }
	cli := NewTCPSocket(p.a)
	if err := cli.Connect(addrB, 8080); err != nil {
		t.Fatal(err)
	}
	p.sched.RunFor(time.Second)
	if accepted == nil || accepted.State != TCPEstablished {
		t.Fatal("migrated listener did not accept")
	}
}

func TestRehashConflictDetected(t *testing.T) {
	p := newPair(t)
	cli, _ := p.connect(t, 4102)
	cli.Unhash()
	snap := SnapshotTCP(cli)
	r1, err := RestoreTCP(p.a, snap)
	if err != nil {
		t.Fatal(err)
	}
	_ = r1
	if _, err := RestoreTCP(p.a, snap); err == nil {
		t.Fatal("double restore of the same tuple accepted")
	}
}

func TestUDPSnapshotRoundTrip(t *testing.T) {
	p := newPair(t)
	srv := NewUDPSocket(p.b)
	if err := srv.Bind(addrB, 27960); err != nil {
		t.Fatal(err)
	}
	cli := NewUDPSocket(p.a)
	cli.BindEphemeral(addrA)
	cli.SendTo(addrB, 27960, []byte("q1"))
	cli.SendTo(addrB, 27960, []byte("q2"))
	p.sched.Run()
	if srv.QueueLen() != 2 {
		t.Fatalf("queue = %d", srv.QueueLen())
	}
	srv.Unhash()
	snap := SnapshotUDP(srv)
	dec, err := DecodeUDPSnapshot(snap.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if len(dec.Queue) != 2 || string(dec.Queue[0].Payload) != "q1" || string(dec.Queue[1].Payload) != "q2" {
		t.Fatalf("queue lost in roundtrip: %+v", dec.Queue)
	}
	if dec.LocalPort != 27960 {
		t.Fatal("identity lost")
	}
	restored, err := RestoreUDP(p.b, dec)
	if err != nil {
		t.Fatal(err)
	}
	if d, ok := restored.Recv(); !ok || string(d.Payload) != "q1" {
		t.Fatal("restored queue order wrong")
	}
	// And it receives fresh traffic.
	cli.SendTo(addrB, 27960, []byte("fresh"))
	p.sched.Run()
	restored.Recv()
	if d, ok := restored.Recv(); !ok || string(d.Payload) != "fresh" {
		t.Fatal("restored socket not hashed")
	}
}

func TestUDPSnapshotEncodedSizeRealistic(t *testing.T) {
	p := newPair(t)
	srv := NewUDPSocket(p.b)
	if err := srv.Bind(addrB, 27962); err != nil {
		t.Fatal(err)
	}
	snap := SnapshotUDP(srv)
	if n := len(snap.Encode()); n < UDPSockImageBytes {
		t.Fatalf("udp image = %d bytes, want ≥ %d", n, UDPSockImageBytes)
	}
}

func TestDecodeUDPSnapshotCorrupt(t *testing.T) {
	if _, err := DecodeUDPSnapshot([]byte{1, 2, 3}); err == nil {
		t.Fatal("corrupt UDP snapshot accepted")
	}
}

func TestSnapshotDataIntegrityAcrossMigration(t *testing.T) {
	// End-to-end: stream data, snapshot mid-stream with bytes in the
	// receive queue, restore elsewhere, verify the application sees the
	// exact stream.
	p := newPair(t)
	cli, srv := p.connect(t, 4103)
	msg := bytes.Repeat([]byte("0123456789"), 2000)
	cli.Send(msg)
	p.sched.RunFor(5 * time.Millisecond) // partial delivery, queues hot
	srv.Unhash()
	snap := SnapshotTCP(srv)
	restored, err := RestoreTCP(p.b, snap) // same node B: rebind
	if err != nil {
		t.Fatal(err)
	}
	var got []byte
	restored.OnReadable = func() { got = append(got, restored.Recv()...) }
	got = append(got, restored.Recv()...)
	p.sched.RunFor(10 * time.Second)
	if !bytes.Equal(got, msg) {
		t.Fatalf("stream corrupted across snapshot/restore: got %d bytes want %d", len(got), len(msg))
	}
}

func TestSectionString(t *testing.T) {
	names := map[SectionID]string{SecIdentity: "identity", SecCore: "core",
		SecWriteQueue: "write-queue", SecReceiveQueue: "receive-queue", SecOOOQueue: "ooo-queue"}
	for id, want := range names {
		if id.String() != want {
			t.Fatalf("section %d = %q", id, id.String())
		}
	}
	if SectionID(200).String() != "unknown" {
		t.Fatal("unknown section name")
	}
}

func TestHookPointString(t *testing.T) {
	if HookLocalIn.String() != "NF_INET_LOCAL_IN" || HookLocalOut.String() != "NF_INET_LOCAL_OUT" {
		t.Fatal("hook point names wrong")
	}
}

func TestTCPStateString(t *testing.T) {
	if TCPEstablished.String() != "ESTABLISHED" || TCPListen.String() != "LISTEN" {
		t.Fatal("state names wrong")
	}
	if TCPState(99).String() != "UNKNOWN" {
		t.Fatal("unknown state name")
	}
}

var _ = simtime.JiffyPeriod // keep import when tests shrink
