package netstack

import (
	"encoding/binary"
	"errors"
	"fmt"

	"dvemig/internal/netsim"
)

// Socket checkpointing: "subtracting state information" in the paper's
// terms. A snapshot is split into *sections* so the incremental collective
// strategy can ship only the sections that changed between precopy loops.
//
// Serialized sizes mirror a Linux 2.6 kernel: dumping one established TCP
// socket costs roughly the size of the tcp_sock/inet_sock/socket structure
// complex (KernelSockImageBytes of core state) plus one skb shell per
// queued buffer (SkbOverheadBytes + wire bytes). These constants make the
// bytes-transferred experiment (Fig 5c) land in the paper's range
// (~3.5 MB for 1024 connections) while the *content* is the real simulated
// socket state.
const (
	// KernelSockImageBytes is the encoded size of the core section.
	KernelSockImageBytes = 3072
	// SkbOverheadBytes is the per-buffer struct sk_buff shell.
	SkbOverheadBytes = 192
	// UDPSockImageBytes is the (smaller) UDP socket structure dump.
	UDPSockImageBytes = 1024
)

// SectionID names one independently transferable piece of socket state.
type SectionID byte

// Sections of a socket snapshot.
const (
	SecIdentity SectionID = iota
	SecCore
	SecWriteQueue
	SecReceiveQueue
	SecOOOQueue
	numSections
)

// String names the section.
func (s SectionID) String() string {
	switch s {
	case SecIdentity:
		return "identity"
	case SecCore:
		return "core"
	case SecWriteQueue:
		return "write-queue"
	case SecReceiveQueue:
		return "receive-queue"
	case SecOOOQueue:
		return "ooo-queue"
	}
	return "unknown"
}

// TCPSnapshot is the extracted state of one TCP socket.
type TCPSnapshot struct {
	LocalIP, RemoteIP     netsim.Addr
	OrigLocalIP           netsim.Addr
	LocalPort, RemotePort uint16
	State                 TCPState
	Listening             bool

	ISS, SndUna, SndNxt uint32
	IRS, RcvNxt         uint32
	Cwnd, Ssthresh      uint32
	SndWnd              uint32
	RcvBufMax           int32
	SRTTms, RTTVarms    int32
	RTOms               int32
	TSRecent            uint32
	LastTxJiffies       uint32
	// SrcJiffies is the source node's jiffies at checkpoint time; the
	// destination computes the adjustment delta from it (§V-C1).
	SrcJiffies uint32
	MSS        int32

	SndBuf       []byte
	WriteQueue   [][]byte // marshaled packets
	ReceiveQueue [][]byte
	OOOQueue     [][]byte

	BytesIn, BytesOut uint64
}

// SnapshotTCP extracts the socket's state. The caller must ensure the
// socket is quiescent (unhashed, or precopy rules: not locked, prequeue
// empty) — the snapshot does not include backlog or prequeue because the
// signal-based freeze guarantees both are empty (§V-C1).
func SnapshotTCP(sk *TCPSocket) *TCPSnapshot {
	s := &TCPSnapshot{
		LocalIP: sk.LocalIP, RemoteIP: sk.RemoteIP, OrigLocalIP: sk.OrigLocalIP,
		LocalPort: sk.LocalPort, RemotePort: sk.RemotePort,
		State: sk.State, Listening: sk.State == TCPListen,
		ISS: sk.ISS, SndUna: sk.SndUna, SndNxt: sk.SndNxt,
		IRS: sk.IRS, RcvNxt: sk.RcvNxt,
		Cwnd: sk.Cwnd, Ssthresh: sk.Ssthresh,
		SndWnd: sk.SndWnd, RcvBufMax: int32(sk.RcvBufMax),
		SRTTms: int32(sk.SRTTms), RTTVarms: int32(sk.RTTVarms), RTOms: int32(sk.RTOms),
		TSRecent: sk.TSRecent, LastTxJiffies: sk.LastTxJiffies,
		// SrcJiffies is the socket's *timestamp clock* at checkpoint,
		// not the raw node clock: a socket that has already migrated
		// once carries an offset, and chaining migrations must compose.
		SrcJiffies: sk.tsNow(),
		MSS:        int32(sk.MSS),
		SndBuf:     append([]byte(nil), sk.sndBuf...),
		BytesIn:    sk.BytesIn, BytesOut: sk.BytesOut,
	}
	s.WriteQueue = marshalQueue(sk.writeQueue)
	s.ReceiveQueue = marshalQueue(sk.receiveQueue)
	s.OOOQueue = marshalQueue(sk.oooQueue)
	return s
}

func marshalQueue(q []*netsim.Packet) [][]byte {
	out := make([][]byte, len(q))
	for i, p := range q {
		out[i] = p.Marshal()
	}
	return out
}

func unmarshalQueue(q [][]byte) ([]*netsim.Packet, error) {
	out := make([]*netsim.Packet, len(q))
	for i, b := range q {
		p, err := netsim.Unmarshal(b)
		if err != nil {
			return nil, err
		}
		out[i] = p
	}
	return out, nil
}

// --- binary encoding helpers -------------------------------------------

type wbuf struct{ b []byte }

func (w *wbuf) u8(v byte)    { w.b = append(w.b, v) }
func (w *wbuf) u16(v uint16) { w.b = binary.BigEndian.AppendUint16(w.b, v) }
func (w *wbuf) u32(v uint32) { w.b = binary.BigEndian.AppendUint32(w.b, v) }
func (w *wbuf) u64(v uint64) { w.b = binary.BigEndian.AppendUint64(w.b, v) }
func (w *wbuf) bytes(v []byte) {
	w.u32(uint32(len(v)))
	w.b = append(w.b, v...)
}
func (w *wbuf) pad(total int) {
	for len(w.b) < total {
		w.b = append(w.b, 0)
	}
}

type rbuf struct {
	b   []byte
	off int
	err error
}

func (r *rbuf) fail() {
	if r.err == nil {
		r.err = errors.New("netstack: truncated snapshot")
	}
}
func (r *rbuf) u8() byte {
	if r.err != nil || r.off+1 > len(r.b) {
		r.fail()
		return 0
	}
	v := r.b[r.off]
	r.off++
	return v
}
func (r *rbuf) u16() uint16 {
	if r.err != nil || r.off+2 > len(r.b) {
		r.fail()
		return 0
	}
	v := binary.BigEndian.Uint16(r.b[r.off:])
	r.off += 2
	return v
}
func (r *rbuf) u32() uint32 {
	if r.err != nil || r.off+4 > len(r.b) {
		r.fail()
		return 0
	}
	v := binary.BigEndian.Uint32(r.b[r.off:])
	r.off += 4
	return v
}
func (r *rbuf) u64() uint64 {
	if r.err != nil || r.off+8 > len(r.b) {
		r.fail()
		return 0
	}
	v := binary.BigEndian.Uint64(r.b[r.off:])
	r.off += 8
	return v
}
func (r *rbuf) bytes() []byte {
	n := int(r.u32())
	if r.err != nil || n < 0 || r.off+n > len(r.b) {
		r.fail()
		return nil
	}
	v := append([]byte(nil), r.b[r.off:r.off+n]...)
	r.off += n
	return v
}

// EncodeSection serializes one section of the snapshot.
func (s *TCPSnapshot) EncodeSection(id SectionID) []byte {
	var w wbuf
	switch id {
	case SecIdentity:
		w.u32(uint32(s.LocalIP))
		w.u32(uint32(s.RemoteIP))
		w.u32(uint32(s.OrigLocalIP))
		w.u16(s.LocalPort)
		w.u16(s.RemotePort)
		w.u8(byte(s.State))
		if s.Listening {
			w.u8(1)
		} else {
			w.u8(0)
		}
		// The bulk of the kernel socket structure complex (socket,
		// inet_sock, protocol options, sk_buff_head headers, timers, ...)
		// is configuration fixed at connection setup: it rides with the
		// identity section, which never changes after the first transfer.
		w.pad(KernelSockImageBytes)
	case SecCore:
		w.u32(s.ISS)
		w.u32(s.SndUna)
		w.u32(s.SndNxt)
		w.u32(s.IRS)
		w.u32(s.RcvNxt)
		w.u32(s.Cwnd)
		w.u32(s.Ssthresh)
		w.u32(s.SndWnd)
		w.u32(uint32(s.RcvBufMax))
		w.u32(uint32(s.SRTTms))
		w.u32(uint32(s.RTTVarms))
		w.u32(uint32(s.RTOms))
		w.u32(s.TSRecent)
		w.u32(s.LastTxJiffies)
		w.u32(s.SrcJiffies)
		w.u32(uint32(s.MSS))
		w.u64(s.BytesIn)
		w.u64(s.BytesOut)
		w.bytes(s.SndBuf)
	case SecWriteQueue:
		encodeQueue(&w, s.WriteQueue)
	case SecReceiveQueue:
		encodeQueue(&w, s.ReceiveQueue)
	case SecOOOQueue:
		encodeQueue(&w, s.OOOQueue)
	}
	return w.b
}

// SectionHashBytes returns the section encoding with the capture-time
// clock (SrcJiffies) masked out. Change trackers must hash this form:
// SrcJiffies is stamped at every snapshot and would otherwise make an
// idle socket's core section look modified every precopy round.
func (s *TCPSnapshot) SectionHashBytes(id SectionID) []byte {
	if id != SecCore {
		return s.EncodeSection(id)
	}
	saved := s.SrcJiffies
	s.SrcJiffies = 0
	b := s.EncodeSection(id)
	s.SrcJiffies = saved
	return b
}

func encodeQueue(w *wbuf, q [][]byte) {
	w.u32(uint32(len(q)))
	for _, pkt := range q {
		w.bytes(pkt)
		// Each buffer carries its sk_buff shell.
		w.b = append(w.b, make([]byte, SkbOverheadBytes)...)
	}
}

func decodeQueue(r *rbuf) [][]byte {
	n := int(r.u32())
	if r.err != nil || n < 0 || n > 1<<20 {
		r.fail()
		return nil
	}
	if n == 0 {
		return nil
	}
	q := make([][]byte, 0, n)
	for i := 0; i < n; i++ {
		q = append(q, r.bytes())
		// Skip the sk_buff shell.
		if r.off+SkbOverheadBytes > len(r.b) {
			r.fail()
			return nil
		}
		r.off += SkbOverheadBytes
	}
	return q
}

// ApplySection decodes one encoded section into the snapshot, overwriting
// that section's fields. The destination node accumulates sections from
// successive precopy rounds this way and applies the final state in the
// freeze phase.
func (s *TCPSnapshot) ApplySection(id SectionID, data []byte) error {
	r := &rbuf{b: data}
	switch id {
	case SecIdentity:
		s.LocalIP = netsim.Addr(r.u32())
		s.RemoteIP = netsim.Addr(r.u32())
		s.OrigLocalIP = netsim.Addr(r.u32())
		s.LocalPort = r.u16()
		s.RemotePort = r.u16()
		s.State = TCPState(r.u8())
		s.Listening = r.u8() == 1
		if len(data) >= KernelSockImageBytes {
			r.off = KernelSockImageBytes // skip the static structure image
		}
	case SecCore:
		s.ISS = r.u32()
		s.SndUna = r.u32()
		s.SndNxt = r.u32()
		s.IRS = r.u32()
		s.RcvNxt = r.u32()
		s.Cwnd = r.u32()
		s.Ssthresh = r.u32()
		s.SndWnd = r.u32()
		s.RcvBufMax = int32(r.u32())
		s.SRTTms = int32(r.u32())
		s.RTTVarms = int32(r.u32())
		s.RTOms = int32(r.u32())
		s.TSRecent = r.u32()
		s.LastTxJiffies = r.u32()
		s.SrcJiffies = r.u32()
		s.MSS = int32(r.u32())
		s.BytesIn = r.u64()
		s.BytesOut = r.u64()
		s.SndBuf = r.bytes()
	case SecWriteQueue:
		s.WriteQueue = decodeQueue(r)
	case SecReceiveQueue:
		s.ReceiveQueue = decodeQueue(r)
	case SecOOOQueue:
		s.OOOQueue = decodeQueue(r)
	default:
		return fmt.Errorf("netstack: unknown section %d", id)
	}
	return r.err
}

// Encode serializes the whole snapshot as a sequence of tagged sections.
func (s *TCPSnapshot) Encode() []byte {
	var w wbuf
	for id := SectionID(0); id < numSections; id++ {
		sec := s.EncodeSection(id)
		w.u8(byte(id))
		w.bytes(sec)
	}
	return w.b
}

// DecodeTCPSnapshot parses a snapshot produced by Encode.
func DecodeTCPSnapshot(data []byte) (*TCPSnapshot, error) {
	s := &TCPSnapshot{}
	r := &rbuf{b: data}
	for r.off < len(r.b) {
		id := SectionID(r.u8())
		sec := r.bytes()
		if r.err != nil {
			return nil, r.err
		}
		if err := s.ApplySection(id, sec); err != nil {
			return nil, err
		}
	}
	return s, r.err
}

// RestoreTCP materializes a socket on st from the snapshot: allocate a
// fresh socket structure, apply the latest state, rebuild the queues with
// timestamps adjusted by the jiffies delta, rehash into ehash/bhash and
// restart the retransmission timer (§V-C1 restore path).
func RestoreTCP(st *Stack, snap *TCPSnapshot) (*TCPSocket, error) {
	sk := NewTCPSocket(st)
	sk.LocalIP = snap.LocalIP
	sk.OrigLocalIP = snap.OrigLocalIP
	sk.RemoteIP = snap.RemoteIP
	sk.LocalPort = snap.LocalPort
	sk.RemotePort = snap.RemotePort
	sk.State = snap.State
	sk.ISS = snap.ISS
	sk.SndUna = snap.SndUna
	sk.SndNxt = snap.SndNxt
	sk.IRS = snap.IRS
	sk.RcvNxt = snap.RcvNxt
	sk.Cwnd = snap.Cwnd
	sk.Ssthresh = snap.Ssthresh
	sk.SndWnd = snap.SndWnd
	if snap.RcvBufMax > 0 {
		sk.RcvBufMax = int(snap.RcvBufMax)
	}
	sk.SRTTms = int(snap.SRTTms)
	sk.RTTVarms = int(snap.RTTVarms)
	sk.RTOms = int(snap.RTOms)
	sk.MSS = int(snap.MSS)
	sk.sndBuf = append([]byte(nil), snap.SndBuf...)
	sk.BytesIn = snap.BytesIn
	sk.BytesOut = snap.BytesOut
	sk.unhashed = true

	// Timestamp continuity: instead of rewriting every buffered TSVal to
	// this node's clock, install a per-socket timestamp offset so the
	// restored socket keeps ticking on the clock its peer already knows
	// (the strategy Linux exposes as TCP_TIMESTAMP during socket
	// repair). SrcJiffies is the socket's timestamp clock at checkpoint
	// time; the offset makes tsNow() resume from exactly that value.
	// This keeps RTT samples valid for ACKs that echo *pre-migration*
	// timestamps — with a clock rewrite those echoes would differ from
	// the destination clock by the inter-node boot delta and inflate the
	// RTO by hours. TSRecent holds the peer's timestamp and is copied
	// verbatim; LastTxJiffies and write-queue TSVals are already on the
	// socket clock and need no adjustment.
	sk.TSOffset = snap.SrcJiffies - st.Jiffies()
	st.Stats.TSFixups++
	sk.TSRecent = snap.TSRecent
	sk.LastTxJiffies = snap.LastTxJiffies

	var err error
	if sk.writeQueue, err = unmarshalQueue(snap.WriteQueue); err != nil {
		return nil, err
	}
	if sk.receiveQueue, err = unmarshalQueue(snap.ReceiveQueue); err != nil {
		return nil, err
	}
	for _, p := range sk.receiveQueue {
		sk.rcvBufUsed += len(p.Payload)
	}
	if sk.oooQueue, err = unmarshalQueue(snap.OOOQueue); err != nil {
		return nil, err
	}
	if !snap.Listening {
		if err := sk.AdoptStack(st); err != nil {
			return nil, err
		}
	} else {
		sk.stack = st
	}
	if err := sk.Rehash(); err != nil {
		return nil, err
	}
	sk.RestartRetransTimer()
	return sk, nil
}

// --- UDP ----------------------------------------------------------------

// UDPSnapshot is the extracted state of a UDP socket: the main structure
// plus the receive-queue buffers (§V-C2).
type UDPSnapshot struct {
	LocalIP    netsim.Addr
	LocalPort  uint16
	SrcJiffies uint32
	Queue      []Datagram

	BytesIn, BytesOut     uint64
	PacketsIn, PacketsOut uint64
}

// SnapshotUDP extracts the socket state.
func SnapshotUDP(us *UDPSocket) *UDPSnapshot {
	q := make([]Datagram, len(us.receiveQueue))
	for i, d := range us.receiveQueue {
		q[i] = Datagram{SrcIP: d.SrcIP, SrcPort: d.SrcPort, TSVal: d.TSVal,
			Payload: append([]byte(nil), d.Payload...)}
	}
	return &UDPSnapshot{
		LocalIP: us.LocalIP, LocalPort: us.LocalPort,
		SrcJiffies: us.stack.Jiffies(), Queue: q,
		BytesIn: us.BytesIn, BytesOut: us.BytesOut,
		PacketsIn: us.PacketsIn, PacketsOut: us.PacketsOut,
	}
}

// Encode serializes the UDP snapshot.
func (s *UDPSnapshot) Encode() []byte {
	var w wbuf
	w.u32(uint32(s.LocalIP))
	w.u16(s.LocalPort)
	w.u32(s.SrcJiffies)
	w.u64(s.BytesIn)
	w.u64(s.BytesOut)
	w.u64(s.PacketsIn)
	w.u64(s.PacketsOut)
	w.u32(uint32(len(s.Queue)))
	for _, d := range s.Queue {
		w.u32(uint32(d.SrcIP))
		w.u16(d.SrcPort)
		w.u32(d.TSVal)
		w.bytes(d.Payload)
		w.b = append(w.b, make([]byte, SkbOverheadBytes)...)
	}
	w.pad(len(w.b) + UDPSockImageBytes) // socket structure image
	return w.b
}

// HashBytes returns the encoding with SrcJiffies masked, for change
// tracking (see TCPSnapshot.SectionHashBytes).
func (s *UDPSnapshot) HashBytes() []byte {
	saved := s.SrcJiffies
	s.SrcJiffies = 0
	b := s.Encode()
	s.SrcJiffies = saved
	return b
}

// DecodeUDPSnapshot parses an encoded UDP snapshot.
func DecodeUDPSnapshot(data []byte) (*UDPSnapshot, error) {
	r := &rbuf{b: data}
	s := &UDPSnapshot{}
	s.LocalIP = netsim.Addr(r.u32())
	s.LocalPort = r.u16()
	s.SrcJiffies = r.u32()
	s.BytesIn = r.u64()
	s.BytesOut = r.u64()
	s.PacketsIn = r.u64()
	s.PacketsOut = r.u64()
	n := int(r.u32())
	if r.err != nil || n < 0 || n > 1<<20 {
		return nil, errors.New("netstack: corrupt UDP snapshot")
	}
	for i := 0; i < n; i++ {
		d := Datagram{}
		d.SrcIP = netsim.Addr(r.u32())
		d.SrcPort = r.u16()
		d.TSVal = r.u32()
		d.Payload = r.bytes()
		if r.off+SkbOverheadBytes > len(r.b) {
			r.fail()
			break
		}
		r.off += SkbOverheadBytes
		s.Queue = append(s.Queue, d)
	}
	return s, r.err
}

// RestoreUDP materializes a UDP socket on st from the snapshot and
// rehashes it.
func RestoreUDP(st *Stack, snap *UDPSnapshot) (*UDPSocket, error) {
	us := NewUDPSocket(st)
	us.LocalIP = snap.LocalIP
	us.LocalPort = snap.LocalPort
	us.BytesIn = snap.BytesIn
	us.BytesOut = snap.BytesOut
	us.PacketsIn = snap.PacketsIn
	us.PacketsOut = snap.PacketsOut
	us.receiveQueue = append(us.receiveQueue, snap.Queue...)
	us.unhashed = true
	if err := us.Rehash(); err != nil {
		return nil, err
	}
	return us, nil
}
