// Package netstack implements the per-node network stack of the simulated
// cluster: a netfilter-style hook framework, an IPv4 layer with routing
// and a destination cache, and TCP/UDP transport with the exact kernel
// structures the paper's socket migration manipulates — the ehash and
// bhash lookup tables, the write / receive / out-of-order / backlog /
// prequeue socket buffer queues, jiffies-based TCP timestamps and the
// retransmission timer.
package netstack

import (
	"sort"

	"dvemig/internal/netsim"
)

// HookPoint identifies where in the stack traversal a hook runs, mirroring
// the Linux netfilter hook points used by the paper: NF_INET_LOCAL_IN for
// packet capture and incoming translation, NF_INET_LOCAL_OUT for outgoing
// translation.
type HookPoint int

// Hook points in traversal order.
const (
	HookPreRouting HookPoint = iota
	HookLocalIn
	HookLocalOut
	HookPostRouting
	numHookPoints
)

// String names the hook point like the kernel constant.
func (h HookPoint) String() string {
	switch h {
	case HookPreRouting:
		return "NF_INET_PRE_ROUTING"
	case HookLocalIn:
		return "NF_INET_LOCAL_IN"
	case HookLocalOut:
		return "NF_INET_LOCAL_OUT"
	case HookPostRouting:
		return "NF_INET_POST_ROUTING"
	}
	return "NF_INET_UNKNOWN"
}

// Verdict is a netfilter verdict.
type Verdict int

// Verdicts: Accept continues traversal, Drop discards the packet, Stolen
// means the hook took ownership (the capture module queues the packet and
// later reinjects it through the okfn, ip_rcv_finish in IPv4).
const (
	VerdictAccept Verdict = iota
	VerdictDrop
	VerdictStolen
)

// HookFunc inspects and may mutate the packet, returning a verdict.
type HookFunc func(p *netsim.Packet) Verdict

// HookID identifies a registered hook for unregistration.
type HookID struct {
	point HookPoint
	id    int
}

type hookEntry struct {
	id   int
	prio int
	seq  int
	fn   HookFunc
}

type hookTable struct {
	nextID  int
	entries [numHookPoints][]hookEntry
}

// RegisterHook attaches fn at the given point. Lower priority runs first;
// ties run in registration order.
func (s *Stack) RegisterHook(point HookPoint, prio int, fn HookFunc) HookID {
	t := &s.hooks
	t.nextID++
	e := hookEntry{id: t.nextID, prio: prio, seq: t.nextID, fn: fn}
	list := append(t.entries[point], e)
	sort.SliceStable(list, func(i, j int) bool {
		if list[i].prio != list[j].prio {
			return list[i].prio < list[j].prio
		}
		return list[i].seq < list[j].seq
	})
	t.entries[point] = list
	return HookID{point: point, id: t.nextID}
}

// UnregisterHook removes a previously registered hook. Unknown IDs are
// ignored so teardown paths can be idempotent.
func (s *Stack) UnregisterHook(id HookID) {
	list := s.hooks.entries[id.point]
	for i, e := range list {
		if e.id == id.id {
			s.hooks.entries[id.point] = append(list[:i:i], list[i+1:]...)
			return
		}
	}
}

// runHooks traverses the chain at point. It returns the final verdict.
func (s *Stack) runHooks(point HookPoint, p *netsim.Packet) Verdict {
	for _, e := range s.hooks.entries[point] {
		switch e.fn(p) {
		case VerdictDrop:
			s.Stats.HookDrops++
			return VerdictDrop
		case VerdictStolen:
			return VerdictStolen
		}
	}
	return VerdictAccept
}
