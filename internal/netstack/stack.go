package netstack

import (
	"fmt"

	"dvemig/internal/flight"
	"dvemig/internal/netsim"
	"dvemig/internal/simtime"
)

// FourTuple identifies an established TCP connection in the ehash table.
type FourTuple struct {
	LocalIP    netsim.Addr
	LocalPort  uint16
	RemoteIP   netsim.Addr
	RemotePort uint16
}

// Stats counts stack-level events; tests and experiments read them.
type Stats struct {
	Delivered      uint64 // packets demuxed to a socket
	NoSocketDrops  uint64 // broadcast copies for connections owned elsewhere
	HookDrops      uint64
	Reinjected     uint64 // packets resubmitted through the okfn
	ChecksumErrors uint64

	// Aggregated TCP socket events; the per-socket counters remain on
	// TCPSocket, these accumulate across all sockets (including ones
	// that have since closed or migrated away) so the observability
	// plane can harvest them after the fact.
	Retransmits     uint64 // timer-driven resends
	FastRetransmits uint64 // triple-dup-ack recoveries
	RTOResets       uint64 // retransmission timers restarted after restore
	TSFixups        uint64 // timestamp-offset rewrites applied at restore
}

// Stack is one node's network stack.
type Stack struct {
	Name  string
	sched *simtime.Scheduler

	// BootJiffies is the node's jiffies counter value at simulation time
	// zero. Nodes boot at different times, so counters differ — the reason
	// TCP timestamps must be adjusted during migration (paper §V-C1).
	BootJiffies uint32

	nics       []*netsim.NIC
	routes     []route
	localAddrs map[netsim.Addr]bool

	hooks    hookTable
	dstCache map[netsim.Addr]*netsim.DstEntry

	// The kernel lookup tables the paper names: ehash for established
	// connections, bhash for bound/listening ports, and the UDP hash.
	ehash map[FourTuple]*TCPSocket
	bhash map[uint16]*TCPSocket
	udph  map[uint16]*UDPSocket

	nextEphemeral uint16
	isnCounter    uint32

	// down marks a crashed node: a down stack neither accepts ingress nor
	// emits egress, so a "dead" node cannot keep a migration alive with
	// packets scheduled before the crash. Set by proc.Node.Fail and by the
	// fault plane's crash triggers.
	down bool

	Stats Stats

	// FR, when attached, records stack-level packet verdicts (netfilter
	// drops/steals, no-socket drops) into the flight recorder. Nil by
	// default.
	FR *flight.Recorder
}

type route struct {
	prefix netsim.Addr
	bits   int
	nic    *netsim.NIC
	src    netsim.Addr
}

// NewStack creates a stack bound to the scheduler with a per-node jiffies
// boot offset.
func NewStack(sched *simtime.Scheduler, name string, bootJiffies uint32) *Stack {
	return &Stack{
		Name:        name,
		sched:       sched,
		BootJiffies: bootJiffies,
		localAddrs:  make(map[netsim.Addr]bool),
		dstCache:    make(map[netsim.Addr]*netsim.DstEntry),
		ehash:       make(map[FourTuple]*TCPSocket),
		bhash:       make(map[uint16]*TCPSocket),
		udph:        make(map[uint16]*UDPSocket),
		// The ephemeral-port cursor starts at a node-specific point, as
		// it would on machines with distinct histories; without this,
		// identical allocation sequences on every node would make a
		// migrated in-cluster connection collide with the destination's
		// own connection to the same peer on the full four-tuple.
		nextEphemeral: 32768 + uint16((uint64(bootJiffies)*2654435761>>16)%28000),
		isnCounter:    uint32(bootJiffies)*2654435761 + 7,
	}
}

// Scheduler exposes the virtual clock the stack runs on.
func (s *Stack) Scheduler() *simtime.Scheduler { return s.sched }

// SetDown marks the stack dead (true) or alive (false). While down, all
// ingress and egress is silently discarded.
func (s *Stack) SetDown(down bool) { s.down = down }

// IsDown reports whether the stack has been marked dead.
func (s *Stack) IsDown() bool { return s.down }

// Jiffies returns this node's current jiffies counter, the clock TCP
// timestamps are taken from.
func (s *Stack) Jiffies() uint32 { return simtime.Jiffies(s.sched.Now(), s.BootJiffies) }

// AttachNIC registers an interface and the address it owns, and installs
// the stack as the NIC's ingress handler.
func (s *Stack) AttachNIC(nic *netsim.NIC, addr netsim.Addr) {
	s.nics = append(s.nics, nic)
	s.localAddrs[addr] = true
	nic.SetHandler(netsim.HandlerFunc(func(p *netsim.Packet) { s.input(p) }))
}

// AddRoute installs a prefix route: packets to addresses matching the
// first bits of prefix leave through nic with source address src.
func (s *Stack) AddRoute(prefix netsim.Addr, bits int, nic *netsim.NIC, src netsim.Addr) {
	s.routes = append(s.routes, route{prefix: prefix, bits: bits, nic: nic, src: src})
}

func (s *Stack) routeFor(dst netsim.Addr) (route, bool) {
	best := -1
	var found route
	for _, r := range s.routes {
		mask := netsim.Addr(0)
		if r.bits > 0 {
			mask = netsim.Addr(^uint32(0) << (32 - r.bits))
		}
		if dst&mask == r.prefix&mask && r.bits > best {
			best = r.bits
			found = r
		}
	}
	return found, best >= 0
}

// SourceAddrFor returns the local address the stack would use to reach
// dst; sockets call it when connecting.
func (s *Stack) SourceAddrFor(dst netsim.Addr) (netsim.Addr, error) {
	r, ok := s.routeFor(dst)
	if !ok {
		return 0, fmt.Errorf("netstack %s: no route to %s", s.Name, dst)
	}
	return r.src, nil
}

// DstFor returns the (cached) destination entry for addr, modelling the
// Linux IP destination cache. Sockets hold on to the entry and stamp it
// onto every outgoing packet; the output path forwards by the entry, not
// by the header address — the exact behaviour that bites local address
// translation in §V-D.
func (s *Stack) DstFor(addr netsim.Addr) (*netsim.DstEntry, error) {
	if e, ok := s.dstCache[addr]; ok {
		return e, nil
	}
	r, ok := s.routeFor(addr)
	if !ok {
		return nil, fmt.Errorf("netstack %s: no route to %s", s.Name, addr)
	}
	e := &netsim.DstEntry{NextHop: addr, Iface: r.nic.Name}
	s.dstCache[addr] = e
	return e, nil
}

// InvalidateDst drops the cached entry for addr.
func (s *Stack) InvalidateDst(addr netsim.Addr) { delete(s.dstCache, addr) }

// MakeDst builds a fresh destination entry for addr without touching the
// shared cache; the translation filter uses it to replace the entry
// inherited from the peer socket.
func (s *Stack) MakeDst(addr netsim.Addr) (*netsim.DstEntry, error) {
	r, ok := s.routeFor(addr)
	if !ok {
		return nil, fmt.Errorf("netstack %s: no route to %s", s.Name, addr)
	}
	return &netsim.DstEntry{NextHop: addr, Iface: r.nic.Name}, nil
}

// input is the ip_rcv path: PRE_ROUTING hooks, local-address check,
// LOCAL_IN hooks, then transport demux.
func (s *Stack) input(p *netsim.Packet) {
	if s.down {
		p.Release()
		return
	}
	if v := s.runHooks(HookPreRouting, p); v != VerdictAccept {
		s.frVerdict(v, "prerouting", p)
		if v == VerdictDrop {
			p.Release() // stolen packets stay alive in the hook's queue
		}
		return
	}
	if !s.localAddrs[p.DstIP] {
		// Not ours and we do not forward; broadcast copies for other
		// nodes' flows die here too when the address differs.
		s.Stats.NoSocketDrops++
		p.Release()
		return
	}
	if v := s.runHooks(HookLocalIn, p); v != VerdictAccept {
		s.frVerdict(v, "local-in", p)
		if v == VerdictDrop {
			p.Release()
		}
		return
	}
	s.demux(p)
}

// frVerdict records a non-accept netfilter verdict into the flight
// recorder: hook-drop for discarded packets, hook-steal for packets a
// capture filter took over. One pointer check when detached.
func (s *Stack) frVerdict(v Verdict, hook string, p *netsim.Packet) {
	if s.FR == nil {
		return
	}
	kind := "hook-drop"
	if v == VerdictStolen {
		kind = "hook-steal"
	}
	s.FR.Record(int64(s.sched.Now()), kind, hook,
		int64(uint64(p.SrcIP)<<32|uint64(p.SrcPort)),
		int64(uint64(p.DstIP)<<32|uint64(p.DstPort)), int64(p.Seq))
}

// Reinject is the okfn (ip_rcv_finish): it resubmits a stolen packet to
// local delivery, bypassing the LOCAL_IN chain so a capture filter does
// not steal its own reinjection.
func (s *Stack) Reinject(p *netsim.Packet) {
	s.Stats.Reinjected++
	s.demux(p)
}

func (s *Stack) demux(p *netsim.Packet) {
	switch p.Proto {
	case netsim.ProtoTCP:
		if sk := s.ehash[FourTuple{p.DstIP, p.DstPort, p.SrcIP, p.SrcPort}]; sk != nil {
			s.Stats.Delivered++
			sk.input(p)
			return
		}
		if lk := s.bhash[p.DstPort]; lk != nil && lk.State == TCPListen {
			s.Stats.Delivered++
			lk.listenInput(p)
			return
		}
		// Silent drop: on the broadcast cluster every node sees every
		// client packet; only the connection owner may answer (no RST).
		s.Stats.NoSocketDrops++
		p.Release()
	case netsim.ProtoUDP:
		if us := s.udph[p.DstPort]; us != nil {
			s.Stats.Delivered++
			us.input(p)
			return
		}
		s.Stats.NoSocketDrops++
		p.Release()
	default:
		s.Stats.NoSocketDrops++
		p.Release()
	}
}

// TransmitRaw pushes a fully formed packet through the output path (raw
// socket equivalent): LOCAL_OUT and POST_ROUTING hooks run, then the
// packet leaves through the interface chosen by its destination entry.
func (s *Stack) TransmitRaw(p *netsim.Packet) { s.transmit(p) }

// transmit runs LOCAL_OUT hooks and sends the packet out the interface
// selected by its destination cache entry.
func (s *Stack) transmit(p *netsim.Packet) {
	if s.down {
		p.Release()
		return
	}
	if p.Dst == nil {
		e, err := s.DstFor(p.DstIP)
		if err != nil {
			p.Release() // unroutable; counted implicitly by peers timing out
			return
		}
		p.Dst = e
	}
	if v := s.runHooks(HookLocalOut, p); v != VerdictAccept {
		s.frVerdict(v, "local-out", p)
		if v == VerdictDrop {
			p.Release()
		}
		return
	}
	if v := s.runHooks(HookPostRouting, p); v != VerdictAccept {
		s.frVerdict(v, "postrouting", p)
		if v == VerdictDrop {
			p.Release()
		}
		return
	}
	nic := s.nicByName(p.Dst.Iface)
	if nic == nil {
		p.Release()
		return
	}
	nic.Send(p)
}

func (s *Stack) nicByName(name string) *netsim.NIC {
	for _, n := range s.nics {
		if n.Name == name {
			return n
		}
	}
	return nil
}

// allocEphemeral returns a free local port for outgoing connections.
func (s *Stack) allocEphemeral() uint16 {
	for i := 0; i < 65536; i++ {
		p := s.nextEphemeral
		s.nextEphemeral++
		if s.nextEphemeral < 32768 {
			s.nextEphemeral = 32768
		}
		if s.bhash[p] == nil && s.udph[p] == nil {
			return p
		}
	}
	panic("netstack: ephemeral ports exhausted")
}

func (s *Stack) nextISN() uint32 {
	s.isnCounter = s.isnCounter*1664525 + 1013904223
	return s.isnCounter
}

// EstablishedSockets returns the established TCP sockets, in no
// particular order; the migration engine iterates the FD table instead,
// this accessor exists for tests and monitoring.
func (s *Stack) EstablishedSockets() []*TCPSocket {
	out := make([]*TCPSocket, 0, len(s.ehash))
	for _, sk := range s.ehash {
		out = append(out, sk)
	}
	return out
}

// LookupEstablished finds a socket in the ehash table.
func (s *Stack) LookupEstablished(t FourTuple) *TCPSocket { return s.ehash[t] }

// LookupBound finds a listening socket in the bhash table.
func (s *Stack) LookupBound(port uint16) *TCPSocket { return s.bhash[port] }

// LookupUDP finds a bound UDP socket.
func (s *Stack) LookupUDP(port uint16) *UDPSocket { return s.udph[port] }
