package netstack

import (
	"testing"
	"time"

	"dvemig/internal/netsim"
	"dvemig/internal/simtime"
)

// Micro-benchmarks of the simulator's hot paths: how fast the event loop
// pushes TCP bytes, snapshots sockets and drives the hash tables. These
// bound the wall-clock cost of the big experiments.

func benchPair() (*simtime.Scheduler, *Stack, *Stack) {
	sched := simtime.NewScheduler()
	sw := netsim.NewSwitch(sched)
	a := NewStack(sched, "a", 1000)
	b := NewStack(sched, "b", 2000)
	na := sw.Attach("a.eth0", addrA, netsim.GigabitEthernet)
	nb := sw.Attach("b.eth0", addrB, netsim.GigabitEthernet)
	a.AttachNIC(na, addrA)
	b.AttachNIC(nb, addrB)
	a.AddRoute(lan, 24, na, addrA)
	b.AddRoute(lan, 24, nb, addrB)
	return sched, a, b
}

// BenchmarkTCPBulkTransfer measures simulated-TCP throughput in host
// time: one 1 MB transfer per iteration.
func BenchmarkTCPBulkTransfer(b *testing.B) {
	sched, sa, sb := benchPair()
	lst := NewTCPSocket(sb)
	if err := lst.Listen(addrB, 9000); err != nil {
		b.Fatal(err)
	}
	var srv *TCPSocket
	lst.OnAccept = func(ch *TCPSocket) { srv = ch }
	cli := NewTCPSocket(sa)
	if err := cli.Connect(addrB, 9000); err != nil {
		b.Fatal(err)
	}
	sched.RunFor(time.Second)
	srv.OnReadable = func() { srv.Recv() }
	msg := make([]byte, 1<<20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := cli.Send(msg); err != nil {
			b.Fatal(err)
		}
		sched.RunFor(5 * time.Second)
		if cli.SndUna != cli.SndNxt {
			b.Fatal("transfer incomplete")
		}
	}
	b.SetBytes(1 << 20)
}

// BenchmarkSnapshotTCP measures socket state subtraction + encoding.
func BenchmarkSnapshotTCP(b *testing.B) {
	sched, sa, sb := benchPair()
	lst := NewTCPSocket(sb)
	if err := lst.Listen(addrB, 9001); err != nil {
		b.Fatal(err)
	}
	cli := NewTCPSocket(sa)
	if err := cli.Connect(addrB, 9001); err != nil {
		b.Fatal(err)
	}
	sched.RunFor(time.Second)
	cli.Send(make([]byte, 8192))
	sched.RunFor(time.Second)
	b.ResetTimer()
	var total int
	for i := 0; i < b.N; i++ {
		snap := SnapshotTCP(cli)
		total += len(snap.Encode())
	}
	_ = total
}

// BenchmarkSnapshotRestoreRoundTrip measures the full per-socket
// migration unit: snapshot, encode, decode, restore, unhash again.
func BenchmarkSnapshotRestoreRoundTrip(b *testing.B) {
	sched, sa, sb := benchPair()
	lst := NewTCPSocket(sb)
	if err := lst.Listen(addrB, 9002); err != nil {
		b.Fatal(err)
	}
	cli := NewTCPSocket(sa)
	if err := cli.Connect(addrB, 9002); err != nil {
		b.Fatal(err)
	}
	sched.RunFor(time.Second)
	cli.Unhash()
	enc := SnapshotTCP(cli).Encode()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		snap, err := DecodeTCPSnapshot(enc)
		if err != nil {
			b.Fatal(err)
		}
		sk, err := RestoreTCP(sa, snap)
		if err != nil {
			b.Fatal(err)
		}
		sk.Unhash()
	}
}

// BenchmarkEhashDemux measures the demux fast path.
func BenchmarkEhashDemux(b *testing.B) {
	sched := simtime.NewScheduler()
	st := NewStack(sched, "s", 0)
	// Populate the table with many established sockets.
	for i := 0; i < 1024; i++ {
		sk := NewTCPSocket(st)
		sk.State = TCPEstablished
		sk.LocalIP, sk.LocalPort = addrA, 80
		sk.RemoteIP, sk.RemotePort = netsim.Addr(i+1), uint16(30000+i)
		st.ehash[sk.Tuple()] = sk
	}
	p := &netsim.Packet{Proto: netsim.ProtoTCP, DstIP: addrA, DstPort: 80,
		SrcIP: 512, SrcPort: 30511, Flags: netsim.FlagACK}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st.demux(p)
	}
}
