package netstack

import (
	"errors"
	"fmt"
	"sort"

	"dvemig/internal/netsim"
	"dvemig/internal/simtime"
)

// TCPState is the protocol state of a socket.
type TCPState int

// TCP states (the subset of RFC 793 the simulation exercises; the paper
// migrates sockets in Established or Listen state).
const (
	TCPClosed TCPState = iota
	TCPListen
	TCPSynSent
	TCPSynRcvd
	TCPEstablished
	TCPFinWait1
	TCPFinWait2
	TCPCloseWait
	TCPLastAck
	TCPClosing
	TCPTimeWait
)

// String names the state.
func (s TCPState) String() string {
	names := [...]string{"CLOSED", "LISTEN", "SYN_SENT", "SYN_RCVD", "ESTABLISHED",
		"FIN_WAIT1", "FIN_WAIT2", "CLOSE_WAIT", "LAST_ACK", "CLOSING", "TIME_WAIT"}
	if int(s) < len(names) {
		return names[s]
	}
	return "UNKNOWN"
}

// TCP tuning constants.
const (
	// DefaultMSS is the maximum segment payload; 1448 matches Ethernet
	// MTU 1500 minus IP/TCP headers with timestamps.
	DefaultMSS = 1448
	// MinRTO / MaxRTO bound the retransmission timeout like Linux
	// (TCP_RTO_MIN is 200 ms on 2.6 kernels).
	MinRTO = 200 * simtime.Duration(1e6)
	MaxRTO = 120 * simtime.Duration(1e9)
	// InitialCwnd / DefaultSsthresh, in segments.
	InitialCwnd     = 10
	DefaultSsthresh = 64
	// TimeWaitDelay is deliberately short; the simulation does not study
	// 2MSL behaviour.
	TimeWaitDelay = 200 * simtime.Duration(1e6)
	// DefaultRcvBuf is the receive buffer bound, and thus the largest
	// window a socket advertises (fits the 16-bit header field).
	DefaultRcvBuf = 65535
	// PersistInterval paces zero-window probes when the peer's buffer is
	// full and the window-update ACK might have been lost.
	PersistInterval = 500 * simtime.Duration(1e6)
	// MaxConsecRetrans bounds consecutive RTO expirations without forward
	// progress before the connection is aborted, mirroring Linux's
	// tcp_retries2 default of 15. With exponential backoff from MinRTO
	// the budget spans many simulated minutes, so ordinary experiments
	// never hit it — only connections whose peer is gone for good, which
	// would otherwise re-arm their timer forever and keep the event queue
	// from draining.
	MaxConsecRetrans = 15
)

// ErrNotConnected is returned by Send on a socket that cannot carry data.
var ErrNotConnected = errors.New("netstack: socket not connected")

// TCPSocket models struct tcp_sock closely enough for the migration
// mechanism: identity, sequence state, congestion/RTT state, jiffies
// timestamps, and the five socket-buffer queues enumerated in §V-C1.
type TCPSocket struct {
	stack *Stack

	State      TCPState
	LocalIP    netsim.Addr
	LocalPort  uint16
	RemoteIP   netsim.Addr
	RemotePort uint16

	// OrigLocalIP preserves the connection's original local address
	// across (repeated) in-cluster migrations: the peer's socket still
	// names that address as its remote, and every translation rule must
	// be keyed on it (§III-C). Zero until the first migration rewrites
	// LocalIP.
	OrigLocalIP netsim.Addr

	// Send sequence state.
	ISS    uint32 // initial send sequence
	SndUna uint32 // oldest unacknowledged
	SndNxt uint32 // next to send

	// Receive sequence state.
	IRS    uint32 // initial receive sequence
	RcvNxt uint32 // next expected

	// Congestion and RTT state (cwnd/ssthresh in segments, times in ms).
	Cwnd     uint32
	Ssthresh uint32
	SRTTms   int
	RTTVarms int
	RTOms    int

	// Flow control: SndWnd is the peer's last advertised receive window;
	// RcvBufMax bounds the local receive buffer and therefore the window
	// this socket advertises.
	SndWnd    uint32
	RcvBufMax int

	// TSRecent is the most recent peer timestamp (jiffies of the *peer*);
	// LastTxJiffies is the local jiffies of the last transmission. Both
	// are what timestamp adjustment rewrites after migration.
	TSRecent      uint32
	LastTxJiffies uint32

	// TSOffset is added to the node's jiffies counter whenever this
	// socket emits or interprets a TCP timestamp. It is zero for sockets
	// born on this node; RestoreTCP sets it so a migrated socket keeps
	// ticking on its *original* node's timestamp clock (the equivalent of
	// Linux's per-socket tsoffset installed via TCP_TIMESTAMP during
	// repair). Without it, the peer's echoed timestamps — generated
	// against the source node's clock — would poison RTT samples on the
	// destination with the inter-node boot-time delta.
	TSOffset uint32

	MSS int

	// Trace identifies the causal trace of the migration (or checkpoint
	// stream) this socket serves. Nil for application sockets; the
	// migration engine stamps its control connections with one shared
	// immutable TraceRef so every segment the socket emits carries the
	// trace context as out-of-band packet metadata. Not serialized by
	// migration: a migrated application socket starts clean.
	Trace *netsim.TraceRef

	// Class is the traffic class stamped onto every segment the socket
	// emits (netsim.Packet.Class). The migration engine flips its
	// control connection to netsim.ClassPagePull when the post-copy
	// demand-pull phase begins so NIC accounting can separate pull
	// traffic from the application's. Like Trace, not serialized.
	Class byte

	// The five queues of §V-C1. writeQueue holds sent-but-unacked
	// segments (retransmission source); sndBuf is app data not yet
	// segmented because cwnd is full. receiveQueue holds in-order data
	// the application has not read; oooQueue holds out-of-window-order
	// segments; backlog holds packets that arrived while the socket was
	// locked by a system call; prequeue feeds the fast-path receive.
	writeQueue   []*netsim.Packet
	sndBuf       []byte
	receiveQueue []*netsim.Packet
	oooQueue     []*netsim.Packet
	backlog      []*netsim.Packet
	prequeue     []*netsim.Packet

	retransTimer *simtime.Event
	rtoPending   bool
	dupAcks      int
	// consecRetrans counts RTO expirations without forward progress;
	// MaxConsecRetrans of them abort the connection (tcp_retries2).
	consecRetrans int
	// Retransmits counts timer-driven resends; the capture ablation
	// experiment shows these appearing when capture is disabled.
	// FastRetransmits counts triple-dup-ack recoveries.
	Retransmits     uint64
	FastRetransmits uint64
	// TimedOut reports that the connection was aborted after exhausting
	// its retransmission budget (the kernel's ETIMEDOUT path). Without
	// this cap a connection whose peer crashed would re-arm its RTO
	// forever and the event queue would never drain.
	TimedOut bool

	locked        bool
	readerWaiting bool
	unhashed      bool
	ownsBind      bool
	rcvBufUsed    int
	persistTimer  *simtime.Event

	dst *netsim.DstEntry

	// Listener state.
	acceptQueue []*TCPSocket
	OnAccept    func(child *TCPSocket)

	// OnReadable fires when data (or EOF) becomes available.
	OnReadable func()
	eof        bool

	// BytesIn / BytesOut count application payload for tests.
	BytesIn, BytesOut uint64
}

// NewTCPSocket allocates a closed socket on the stack.
func NewTCPSocket(s *Stack) *TCPSocket {
	return &TCPSocket{
		stack:     s,
		State:     TCPClosed,
		Cwnd:      InitialCwnd,
		Ssthresh:  DefaultSsthresh,
		RTOms:     1000,
		MSS:       DefaultMSS,
		SndWnd:    DefaultRcvBuf,
		RcvBufMax: DefaultRcvBuf,
	}
}

// Stack returns the owning stack.
func (sk *TCPSocket) Stack() *Stack { return sk.stack }

// Tuple returns the connection four-tuple.
func (sk *TCPSocket) Tuple() FourTuple {
	return FourTuple{sk.LocalIP, sk.LocalPort, sk.RemoteIP, sk.RemotePort}
}

// Listen binds the socket to port on addr and enters LISTEN state,
// inserting it into the bhash table.
func (sk *TCPSocket) Listen(addr netsim.Addr, port uint16) error {
	if sk.stack.bhash[port] != nil {
		return fmt.Errorf("netstack %s: port %d already bound", sk.stack.Name, port)
	}
	sk.LocalIP = addr
	sk.LocalPort = port
	sk.State = TCPListen
	sk.ownsBind = true
	sk.stack.bhash[port] = sk
	return nil
}

// Connect initiates the three-way handshake toward addr:port.
func (sk *TCPSocket) Connect(addr netsim.Addr, port uint16) error {
	src, err := sk.stack.SourceAddrFor(addr)
	if err != nil {
		return err
	}
	sk.LocalIP = src
	sk.LocalPort = sk.stack.allocEphemeral()
	sk.RemoteIP = addr
	sk.RemotePort = port
	sk.ownsBind = true
	sk.stack.bhash[sk.LocalPort] = sk
	sk.ISS = sk.stack.nextISN()
	sk.SndUna = sk.ISS
	sk.SndNxt = sk.ISS + 1
	sk.State = TCPSynSent
	sk.stack.ehash[sk.Tuple()] = sk
	if sk.dst, err = sk.stack.DstFor(addr); err != nil {
		return err
	}
	syn := sk.makePacket(netsim.FlagSYN, sk.ISS, 0, nil)
	sk.writeQueue = append(sk.writeQueue, syn)
	sk.stack.transmit(syn.Clone())
	sk.armRetransTimer()
	return nil
}

// listenInput handles a segment addressed to a listening port: a SYN
// spawns a half-open child socket that is immediately inserted into the
// ehash table (so retransmitted handshake segments find it).
func (sk *TCPSocket) listenInput(p *netsim.Packet) {
	if p.Flags&netsim.FlagSYN == 0 || p.Flags&netsim.FlagACK != 0 {
		return
	}
	child := NewTCPSocket(sk.stack)
	child.LocalIP = p.DstIP
	child.LocalPort = p.DstPort
	child.RemoteIP = p.SrcIP
	child.RemotePort = p.SrcPort
	if sk.stack.ehash[child.Tuple()] != nil {
		return // duplicate SYN for an in-progress connection
	}
	child.IRS = p.Seq
	child.RcvNxt = p.Seq + 1
	child.ISS = sk.stack.nextISN()
	child.SndUna = child.ISS
	child.SndNxt = child.ISS + 1
	child.TSRecent = p.TSVal
	child.State = TCPSynRcvd
	sk.stack.ehash[child.Tuple()] = child
	d, err := sk.stack.DstFor(p.SrcIP)
	if err != nil {
		delete(sk.stack.ehash, child.Tuple())
		return
	}
	child.dst = d
	synack := child.makePacket(netsim.FlagSYN|netsim.FlagACK, child.ISS, child.RcvNxt, nil)
	child.writeQueue = append(child.writeQueue, synack)
	sk.stack.transmit(synack.Clone())
	child.armRetransTimer()
}

// Send queues application data for transmission. Data beyond the
// congestion window waits in the send buffer.
func (sk *TCPSocket) Send(data []byte) error {
	if sk.unhashed {
		// Disabled by migration: the connection lives elsewhere now.
		return ErrNotConnected
	}
	switch sk.State {
	case TCPEstablished, TCPCloseWait:
	default:
		return ErrNotConnected
	}
	sk.sndBuf = append(sk.sndBuf, data...)
	sk.BytesOut += uint64(len(data))
	sk.pushNew()
	return nil
}

// Recv drains the in-order receive queue and returns its payload bytes.
// It never blocks; it returns nil when nothing is buffered.
func (sk *TCPSocket) Recv() []byte {
	var out []byte
	for i, p := range sk.receiveQueue {
		out = append(out, p.Payload...)
		p.Release() // bytes copied out; the buffer goes back to the pool
		sk.receiveQueue[i] = nil
	}
	sk.receiveQueue = sk.receiveQueue[:0]
	if len(out) > 0 {
		wasFull := sk.rcvBufUsed >= sk.RcvBufMax-sk.MSS
		sk.rcvBufUsed -= len(out)
		if sk.rcvBufUsed < 0 {
			sk.rcvBufUsed = 0
		}
		// The application freed a previously exhausted buffer: announce
		// the reopened window so a stalled sender resumes.
		if wasFull && sk.State == TCPEstablished && !sk.unhashed {
			sk.sendAck()
		}
	}
	return out
}

// EOF reports whether the peer closed its direction.
func (sk *TCPSocket) EOF() bool { return sk.eof }

// Accept pops a fully established child connection from the listener's
// accept queue; nil when empty.
func (sk *TCPSocket) Accept() *TCPSocket {
	if len(sk.acceptQueue) == 0 {
		return nil
	}
	c := sk.acceptQueue[0]
	sk.acceptQueue = sk.acceptQueue[1:]
	return c
}

// Close starts an orderly shutdown (FIN). A migrated-away (unhashed)
// socket is disabled: closing it tears down local state without touching
// the network — the connection now lives on the destination node.
func (sk *TCPSocket) Close() {
	if sk.unhashed {
		sk.State = TCPClosed
		return
	}
	switch sk.State {
	case TCPListen:
		delete(sk.stack.bhash, sk.LocalPort)
		sk.State = TCPClosed
	case TCPEstablished:
		sk.State = TCPFinWait1
		sk.sendFIN()
	case TCPCloseWait:
		sk.State = TCPLastAck
		sk.sendFIN()
	case TCPClosed:
	default:
		// Already closing.
	}
}

func (sk *TCPSocket) sendFIN() {
	fin := sk.makePacket(netsim.FlagFIN|netsim.FlagACK, sk.SndNxt, sk.RcvNxt, nil)
	sk.SndNxt++
	sk.writeQueue = append(sk.writeQueue, fin)
	sk.stack.transmit(fin.Clone())
	sk.armRetransTimer()
}

// Lock simulates a thread entering a system call that locks the socket:
// packets arriving meanwhile land on the backlog queue. The paper's
// signal-based checkpoint notification guarantees threads return to
// userspace first, so the backlog is empty during the freeze phase.
func (sk *TCPSocket) Lock() { sk.locked = true }

// Unlock releases the socket lock and processes the backlog.
func (sk *TCPSocket) Unlock() {
	sk.locked = false
	bl := sk.backlog
	sk.backlog = nil
	for _, p := range bl {
		sk.segArrived(p)
	}
}

// Locked reports the lock state (precopy socket tracking skips locked
// sockets, §V-C1).
func (sk *TCPSocket) Locked() bool { return sk.locked }

// StartRecvWait simulates a blocked reader enabling the fast-path
// prequeue; StopRecvWait drains it in process context.
func (sk *TCPSocket) StartRecvWait() { sk.readerWaiting = true }

// StopRecvWait disables the prequeue and processes deferred packets.
func (sk *TCPSocket) StopRecvWait() {
	sk.readerWaiting = false
	pq := sk.prequeue
	sk.prequeue = nil
	for _, p := range pq {
		sk.segArrived(p)
	}
}

// PrequeueBusy reports whether packets are parked on the prequeue.
func (sk *TCPSocket) PrequeueBusy() bool { return len(sk.prequeue) > 0 }

// BacklogLen returns the number of packets on the backlog queue.
func (sk *TCPSocket) BacklogLen() int { return len(sk.backlog) }

// WriteQueue, ReceiveQueue and OOOQueue expose the queues the migration
// mechanism dumps (§V-C1 states copying these three suffices because
// backlog and prequeue are empty at freeze time).
func (sk *TCPSocket) WriteQueue() []*netsim.Packet { return sk.writeQueue }

// ReceiveQueue exposes in-order received, unread segments.
func (sk *TCPSocket) ReceiveQueue() []*netsim.Packet { return sk.receiveQueue }

// OOOQueue exposes out-of-order segments awaiting the gap fill.
func (sk *TCPSocket) OOOQueue() []*netsim.Packet { return sk.oooQueue }

// SendBufLen reports unsegmented application bytes waiting for cwnd.
func (sk *TCPSocket) SendBufLen() int { return len(sk.sndBuf) }

// input is the softirq receive path for a hashed socket.
func (sk *TCPSocket) input(p *netsim.Packet) {
	if sk.unhashed {
		p.Release() // cannot happen via demux; defensive
		return
	}
	if sk.locked {
		sk.backlog = append(sk.backlog, p)
		return
	}
	if sk.readerWaiting && sk.State == TCPEstablished && p.Flags&(netsim.FlagSYN|netsim.FlagFIN|netsim.FlagRST) == 0 {
		// Fast path: park on the prequeue, process in "process context"
		// (a zero-delay event standing in for the awakened reader).
		sk.prequeue = append(sk.prequeue, p)
		sk.stack.sched.AfterCall(0, "tcp.prequeue", prequeueCall, sk, nil)
		return
	}
	sk.segArrived(p)
}

// prequeueCall drains the prequeue in "process context" (a zero-delay
// event standing in for the awakened reader); closure-free because it
// fires once per fast-path segment.
func prequeueCall(a0, _ any) {
	sk := a0.(*TCPSocket)
	if sk.readerWaiting {
		sk.StopRecvWait()
		sk.StartRecvWait()
	}
}

// segArrived runs the TCP state machine on one segment. It is the
// ownership sink of the receive path: unless processData queued the
// packet on the receive or out-of-order queue, the segment's payload
// buffer goes back to the pool here.
func (sk *TCPSocket) segArrived(p *netsim.Packet) {
	if p.TSVal != 0 {
		sk.TSRecent = p.TSVal
	}
	switch sk.State {
	case TCPSynSent:
		if p.Flags&(netsim.FlagSYN|netsim.FlagACK) == netsim.FlagSYN|netsim.FlagACK && p.Ack == sk.SndNxt {
			sk.IRS = p.Seq
			sk.RcvNxt = p.Seq + 1
			sk.SndUna = p.Ack
			sk.writeQueue = sk.writeQueue[:0] // SYN acknowledged
			sk.State = TCPEstablished
			sk.stopRetransTimer()
			sk.sendAck()
			if sk.OnReadable != nil {
				sk.OnReadable() // connection completion notification
			}
		}
		p.Release()
		return
	case TCPSynRcvd:
		if p.Flags&netsim.FlagACK != 0 && p.Ack == sk.SndNxt {
			sk.State = TCPEstablished
			sk.stopRetransTimer()
			if parent := sk.stack.bhash[sk.LocalPort]; parent != nil && parent.State == TCPListen {
				parent.acceptQueue = append(parent.acceptQueue, sk)
				if parent.OnAccept != nil {
					parent.OnAccept(sk)
				}
			}
			// Fall through in case the ACK carries data.
		} else {
			p.Release()
			return
		}
	}

	if p.Flags&netsim.FlagACK != 0 {
		sk.processAck(p)
	}
	retained := false
	if len(p.Payload) > 0 {
		retained = sk.processData(p)
	}
	if p.Flags&netsim.FlagFIN != 0 {
		sk.processFIN(p)
	}
	if !retained {
		p.Release()
	}
}

func seqLE(a, b uint32) bool { return int32(b-a) >= 0 }
func seqLT(a, b uint32) bool { return int32(b-a) > 0 }

func (sk *TCPSocket) processAck(p *netsim.Packet) {
	if !seqLT(sk.SndUna, p.Ack) || !seqLE(p.Ack, sk.SndNxt) {
		if p.Ack == sk.SndUna && len(p.Payload) == 0 {
			// Window updates ride on duplicate ACKs too.
			sk.updateSndWnd(p)
			// A duplicate ACK for the oldest unacknowledged byte signals a
			// hole at the receiver; the third one triggers fast retransmit.
			if len(sk.writeQueue) > 0 {
				sk.dupAcks++
				if sk.dupAcks == 3 {
					sk.fastRetransmit()
				}
			}
		}
		return // old or impossible ack
	}
	sk.dupAcks = 0
	sk.updateSndWnd(p)
	// RTT sample from the echoed timestamp (jiffies difference on this
	// socket's timestamp clock; a migrated socket keeps the source node's
	// clock via TSOffset, so echoes of pre-migration segments still yield
	// valid samples here).
	if p.TSEcr != 0 {
		deltaJiffies := sk.tsNow() - p.TSEcr
		sk.updateRTT(int(deltaJiffies) * int(simtime.JiffyPeriod/1e6))
	}
	sk.SndUna = p.Ack
	sk.consecRetrans = 0 // forward progress resets the retry budget
	// Drop fully acknowledged segments from the write queue; their
	// payload buffers return to the pool (the wire only ever carried
	// clones, so the originals have no other referents).
	keep := sk.writeQueue[:0]
	for _, seg := range sk.writeQueue {
		segEnd := seg.Seq + uint32(len(seg.Payload))
		if seg.Flags&(netsim.FlagSYN|netsim.FlagFIN) != 0 {
			segEnd++
		}
		if seqLT(p.Ack, segEnd) {
			keep = append(keep, seg)
		} else {
			seg.Release()
		}
	}
	sk.writeQueue = keep
	// Congestion window growth: slow start below ssthresh, then linear.
	if sk.Cwnd < sk.Ssthresh {
		sk.Cwnd++
	} else {
		sk.Cwnd += 1 // coarse congestion avoidance: +1 per ACK batch
	}
	if len(sk.writeQueue) == 0 {
		sk.stopRetransTimer()
	} else {
		sk.armRetransTimer()
	}
	switch sk.State {
	case TCPFinWait1:
		if p.Ack == sk.SndNxt {
			sk.State = TCPFinWait2
		}
	case TCPLastAck:
		if p.Ack == sk.SndNxt {
			sk.becomeClosed()
		}
	case TCPClosing:
		if p.Ack == sk.SndNxt {
			sk.enterTimeWait()
		}
	}
	sk.pushNew()
}

// processData reports whether the socket retained the packet (on the
// receive or out-of-order queue); unretained packets are released by the
// caller after the FIN check, which still reads the payload length.
func (sk *TCPSocket) processData(p *netsim.Packet) bool {
	switch {
	case p.Seq == sk.RcvNxt:
		sk.enqueueInOrder(p)
		sk.drainOOO()
		sk.sendAck()
		if sk.OnReadable != nil {
			sk.OnReadable()
		}
		return true
	case seqLT(sk.RcvNxt, p.Seq):
		retained := sk.insertOOO(p)
		sk.sendAck() // duplicate ack signals the gap
		return retained
	default:
		// Entirely old data (e.g. a retransmission that raced the ack, or
		// a captured duplicate): re-ack.
		sk.sendAck()
		return false
	}
}

func (sk *TCPSocket) enqueueInOrder(p *netsim.Packet) {
	sk.receiveQueue = append(sk.receiveQueue, p)
	sk.rcvBufUsed += len(p.Payload)
	sk.RcvNxt = p.Seq + uint32(len(p.Payload))
	sk.BytesIn += uint64(len(p.Payload))
}

// insertOOO queues an out-of-order segment, reporting whether it was
// retained (duplicates are not).
func (sk *TCPSocket) insertOOO(p *netsim.Packet) bool {
	for _, q := range sk.oooQueue {
		if q.Seq == p.Seq {
			return false // duplicate
		}
	}
	sk.oooQueue = append(sk.oooQueue, p)
	sort.Slice(sk.oooQueue, func(i, j int) bool { return seqLT(sk.oooQueue[i].Seq, sk.oooQueue[j].Seq) })
	return true
}

func (sk *TCPSocket) drainOOO() {
	for len(sk.oooQueue) > 0 && sk.oooQueue[0].Seq == sk.RcvNxt {
		q := sk.oooQueue[0]
		sk.oooQueue = sk.oooQueue[1:]
		sk.enqueueInOrder(q)
	}
	// Discard anything now stale.
	keep := sk.oooQueue[:0]
	for _, q := range sk.oooQueue {
		if seqLT(sk.RcvNxt, q.Seq+uint32(len(q.Payload))) {
			keep = append(keep, q)
		} else {
			q.Release()
		}
	}
	sk.oooQueue = keep
}

func (sk *TCPSocket) processFIN(p *netsim.Packet) {
	finSeq := p.Seq + uint32(len(p.Payload))
	if finSeq != sk.RcvNxt {
		return // FIN out of order; wait for retransmission
	}
	sk.RcvNxt++
	sk.eof = true
	sk.sendAck()
	switch sk.State {
	case TCPEstablished:
		sk.State = TCPCloseWait
	case TCPFinWait1:
		sk.State = TCPClosing
	case TCPFinWait2:
		sk.enterTimeWait()
	}
	if sk.OnReadable != nil {
		sk.OnReadable()
	}
}

func (sk *TCPSocket) enterTimeWait() {
	sk.State = TCPTimeWait
	sk.stopRetransTimer()
	sk.stack.sched.After(TimeWaitDelay, "tcp.timewait", func() {
		if sk.State == TCPTimeWait {
			sk.becomeClosed()
		}
	})
}

func (sk *TCPSocket) becomeClosed() {
	sk.State = TCPClosed
	sk.stopRetransTimer()
	if !sk.unhashed {
		delete(sk.stack.ehash, sk.Tuple())
		if sk.ownsBind && sk.stack.bhash[sk.LocalPort] == sk {
			delete(sk.stack.bhash, sk.LocalPort)
		}
	}
}

// updateSndWnd adopts the peer's advertised window and restarts stalled
// transmission when it reopens.
func (sk *TCPSocket) updateSndWnd(p *netsim.Packet) {
	sk.SndWnd = uint32(p.Window)
	if sk.SndWnd > 0 && len(sk.sndBuf) > 0 {
		sk.pushNew()
	}
}

// pushNew segments and transmits buffered data while both the congestion
// window and the peer's receive window allow.
func (sk *TCPSocket) pushNew() {
	for len(sk.sndBuf) > 0 && uint32(len(sk.writeQueue)) < sk.Cwnd {
		inflight := sk.SndNxt - sk.SndUna
		n := len(sk.sndBuf)
		if n > sk.MSS {
			n = sk.MSS
		}
		if inflight+uint32(n) > sk.SndWnd {
			// Receiver-limited: stop and arm the persist timer so a lost
			// window update cannot deadlock the connection.
			sk.ensurePersistTimer()
			break
		}
		payload := netsim.GetPayload(n)
		copy(payload, sk.sndBuf[:n])
		sk.sndBuf = sk.sndBuf[n:]
		seg := sk.makePacket(netsim.FlagACK|netsim.FlagPSH, sk.SndNxt, sk.RcvNxt, payload)
		sk.SndNxt += uint32(n)
		sk.writeQueue = append(sk.writeQueue, seg)
		sk.stack.transmit(seg.Clone())
	}
	if len(sk.writeQueue) > 0 {
		sk.ensureRetransTimer()
	}
}

// ensurePersistTimer arms the zero-window probe.
func (sk *TCPSocket) ensurePersistTimer() {
	if sk.persistTimer != nil {
		return
	}
	sk.persistTimer = sk.stack.sched.After(PersistInterval, "tcp.persist", func() {
		sk.persistTimer = nil
		if sk.unhashed || sk.State != TCPEstablished {
			return
		}
		next := len(sk.sndBuf)
		if next > sk.MSS {
			next = sk.MSS
		}
		if len(sk.sndBuf) > 0 && sk.SndNxt-sk.SndUna+uint32(next) > sk.SndWnd {
			// Window probe: push a single byte past the window. The
			// receiver acknowledges it with its current window, which
			// either reopens transmission or re-arms the probe.
			payload := netsim.GetPayload(1)
			payload[0] = sk.sndBuf[0]
			sk.sndBuf = sk.sndBuf[1:]
			seg := sk.makePacket(netsim.FlagACK|netsim.FlagPSH, sk.SndNxt, sk.RcvNxt, payload)
			sk.SndNxt++
			sk.writeQueue = append(sk.writeQueue, seg)
			sk.stack.transmit(seg.Clone())
			sk.ensureRetransTimer()
			sk.ensurePersistTimer()
		}
	})
}

func (sk *TCPSocket) sendAck() {
	if sk.unhashed {
		return
	}
	ack := sk.makePacket(netsim.FlagACK, sk.SndNxt, sk.RcvNxt, nil)
	sk.stack.transmit(ack)
}

// advertisedWindow is the free receive-buffer space this socket announces.
func (sk *TCPSocket) advertisedWindow() uint16 {
	free := sk.RcvBufMax - sk.rcvBufUsed
	if free < 0 {
		free = 0
	}
	if free > 65535 {
		free = 65535
	}
	return uint16(free)
}

// tsNow is the socket's timestamp clock: node jiffies shifted by the
// per-socket offset a migration installs (zero on sockets born here).
func (sk *TCPSocket) tsNow() uint32 { return sk.stack.Jiffies() + sk.TSOffset }

// makePacket stamps identity, timestamps, the advertised window and the
// destination cache entry onto a new segment.
func (sk *TCPSocket) makePacket(flags byte, seq, ack uint32, payload []byte) *netsim.Packet {
	sk.LastTxJiffies = sk.tsNow()
	p := netsim.NewPacket()
	p.SrcIP, p.DstIP, p.Proto, p.TTL = sk.LocalIP, sk.RemoteIP, netsim.ProtoTCP, 64
	p.SrcPort, p.DstPort = sk.LocalPort, sk.RemotePort
	p.Seq, p.Ack, p.Flags, p.Window = seq, ack, flags, sk.advertisedWindow()
	p.TSVal, p.TSEcr = sk.LastTxJiffies, sk.TSRecent
	p.Payload = payload
	p.Dst = sk.dst
	p.Trace = sk.Trace
	p.Class = sk.Class
	p.FixChecksum()
	return p
}

func (sk *TCPSocket) updateRTT(sampleMs int) {
	// Reject negative samples and samples beyond the RTO ceiling: the
	// latter can only come from a timestamp echo on a foreign clock
	// (e.g. a peer echoing a pre-migration TSVal when the offsets are
	// misconfigured) and would otherwise poison SRTT for good.
	if sampleMs < 0 || sampleMs > int(MaxRTO/1e6) {
		return
	}
	if sk.SRTTms == 0 {
		sk.SRTTms = sampleMs
		sk.RTTVarms = sampleMs / 2
	} else {
		diff := sampleMs - sk.SRTTms
		if diff < 0 {
			diff = -diff
		}
		sk.RTTVarms = (3*sk.RTTVarms + diff) / 4
		sk.SRTTms = (7*sk.SRTTms + sampleMs) / 8
	}
	sk.RTOms = sk.SRTTms + 4*sk.RTTVarms
	if min := int(MinRTO / 1e6); sk.RTOms < min {
		sk.RTOms = min
	}
}

// armRetransTimer (re)starts the retransmission timer for the head of the
// write queue. RestartRetransTimer is the restore-side entry (§V-C1:
// "the retransmission timer is restarted").
func (sk *TCPSocket) armRetransTimer() {
	sk.stopRetransTimer()
	rto := simtime.Duration(sk.RTOms) * 1e6
	if rto < MinRTO {
		rto = MinRTO
	}
	if rto > MaxRTO {
		rto = MaxRTO
	}
	sk.rtoPending = true
	sk.retransTimer = sk.stack.sched.AfterCall(rto, "tcp.rto", rtoCall, sk, nil)
}

// rtoCall is the closure-free retransmission-timeout trampoline: arming
// the timer per ACK batch must not allocate a method-value closure.
func rtoCall(a0, _ any) { a0.(*TCPSocket).onRetransTimeout() }

// ensureRetransTimer arms the timer only when none is pending: sending
// fresh segments must not keep pushing the timeout of the oldest
// unacknowledged one into the future.
func (sk *TCPSocket) ensureRetransTimer() {
	if !sk.rtoPending {
		sk.armRetransTimer()
	}
}

// RestartRetransTimer is called after a socket is restored on the
// destination node.
func (sk *TCPSocket) RestartRetransTimer() {
	if len(sk.writeQueue) > 0 {
		sk.stack.Stats.RTOResets++
		sk.armRetransTimer()
	}
}

func (sk *TCPSocket) stopRetransTimer() {
	sk.rtoPending = false
	if sk.retransTimer != nil {
		sk.stack.sched.Cancel(sk.retransTimer)
		sk.retransTimer = nil
	}
}

// fastRetransmit resends the head of the write queue immediately after
// three duplicate ACKs, with the multiplicative window reduction of NewReno
// (simplified: no partial-ack bookkeeping).
func (sk *TCPSocket) fastRetransmit() {
	if sk.unhashed || len(sk.writeQueue) == 0 {
		return
	}
	sk.FastRetransmits++
	sk.stack.Stats.FastRetransmits++
	inflight := uint32(len(sk.writeQueue))
	sk.Ssthresh = inflight / 2
	if sk.Ssthresh < 2 {
		sk.Ssthresh = 2
	}
	sk.Cwnd = sk.Ssthresh
	head := sk.writeQueue[0]
	re := head.Clone()
	re.Ack = sk.RcvNxt
	re.TSVal = sk.tsNow()
	re.TSEcr = sk.TSRecent
	re.Dst = sk.dst
	re.FixChecksum()
	sk.stack.transmit(re)
	sk.armRetransTimer()
}

func (sk *TCPSocket) onRetransTimeout() {
	sk.rtoPending = false
	sk.retransTimer = nil // the firing event is dead; drop the reference
	if sk.unhashed || len(sk.writeQueue) == 0 {
		return
	}
	sk.consecRetrans++
	if sk.consecRetrans > MaxConsecRetrans {
		sk.abortConn()
		return
	}
	sk.Retransmits++
	sk.stack.Stats.Retransmits++
	// Multiplicative backoff and window collapse.
	sk.RTOms *= 2
	if max := int(MaxRTO / 1e6); sk.RTOms > max {
		sk.RTOms = max
	}
	inflight := uint32(len(sk.writeQueue))
	sk.Ssthresh = inflight / 2
	if sk.Ssthresh < 2 {
		sk.Ssthresh = 2
	}
	sk.Cwnd = 1
	head := sk.writeQueue[0]
	re := head.Clone()
	re.Ack = sk.RcvNxt
	re.TSVal = sk.tsNow()
	re.TSEcr = sk.TSRecent
	re.Dst = sk.dst
	re.FixChecksum()
	sk.stack.transmit(re)
	sk.armRetransTimer()
}

// abortConn tears the connection down after the retransmission budget is
// exhausted (the kernel would surface ETIMEDOUT). Pending queues release
// their buffers, pending timers die, and the application observes EOF.
func (sk *TCPSocket) abortConn() {
	sk.TimedOut = true
	for _, seg := range sk.writeQueue {
		seg.Release()
	}
	sk.writeQueue = nil
	for _, q := range sk.oooQueue {
		q.Release()
	}
	sk.oooQueue = nil
	sk.sndBuf = nil
	if sk.persistTimer != nil {
		sk.stack.sched.Cancel(sk.persistTimer)
		sk.persistTimer = nil
	}
	sk.eof = true
	sk.becomeClosed()
	if sk.OnReadable != nil {
		sk.OnReadable() // deliver the EOF notification
	}
}

// --- Migration support -------------------------------------------------

// Unhash removes the socket from the ehash and bhash tables and clears
// the retransmission timer of the write queue: the first step of TCP
// socket migration (§V-C1). The socket stops receiving and sending.
func (sk *TCPSocket) Unhash() {
	if sk.unhashed {
		return
	}
	delete(sk.stack.ehash, sk.Tuple())
	if sk.ownsBind && sk.stack.bhash[sk.LocalPort] == sk {
		delete(sk.stack.bhash, sk.LocalPort)
	}
	sk.stopRetransTimer()
	if sk.persistTimer != nil {
		sk.stack.sched.Cancel(sk.persistTimer)
		sk.persistTimer = nil
	}
	sk.unhashed = true
}

// Rehash inserts the socket into the lookup tables of its (possibly new)
// stack; the final restore step before the retransmission timer restart.
func (sk *TCPSocket) Rehash() error {
	if !sk.unhashed {
		return errors.New("netstack: rehash of a hashed socket")
	}
	st := sk.stack
	if sk.State == TCPListen {
		if st.bhash[sk.LocalPort] != nil {
			return fmt.Errorf("netstack %s: port %d already bound", st.Name, sk.LocalPort)
		}
		st.bhash[sk.LocalPort] = sk
		sk.ownsBind = true
		sk.unhashed = false
		return nil
	}
	if st.ehash[sk.Tuple()] != nil {
		return fmt.Errorf("netstack %s: tuple %v already hashed", st.Name, sk.Tuple())
	}
	st.ehash[sk.Tuple()] = sk
	if st.bhash[sk.LocalPort] == nil {
		st.bhash[sk.LocalPort] = sk
		sk.ownsBind = true
	} else {
		sk.ownsBind = false
	}
	sk.unhashed = false
	return nil
}

// Unhashed reports migration-disabled state.
func (sk *TCPSocket) Unhashed() bool { return sk.unhashed }

// AdoptStack rebinds the socket to a new node's stack and refreshes its
// destination cache entry there. Called by restore.
func (sk *TCPSocket) AdoptStack(st *Stack) error {
	sk.stack = st
	d, err := st.DstFor(sk.RemoteIP)
	if err != nil {
		return err
	}
	sk.dst = d
	return nil
}

// InjectArrived lets the capture module feed a reinjected packet straight
// into the state machine (used after Reinject demux found the socket).
func (sk *TCPSocket) InjectArrived(p *netsim.Packet) { sk.segArrived(p) }
