// Package proc models the operating-system substrate the migration
// mechanism runs on: cluster nodes, processes with threads, signals and
// file-descriptor tables, and virtual address spaces made of vm_area
// regions whose pages carry the dirty bit the precopy engine tracks.
package proc

import (
	"fmt"
	"sort"
)

// PageSize is the virtual memory page size.
const PageSize = 4096

// Page is one resident page: its data and the page-table dirty bit. The
// paper's implementation tracks dirtiness via the PTE dirty bit with the
// swap facility relaxed (§V-A); our pages are never swapped either.
// Absent marks a post-copy placeholder: the page's content still lives
// on the migration source, and any access faults (ErrPageAbsent) until
// FillPage delivers the data.
type Page struct {
	Data   []byte
	Dirty  bool
	Absent bool
}

// VMA is a continuous mapped memory area, the analogue of Linux
// vm_area_struct. Pages are materialized on first touch.
type VMA struct {
	Start uint64 // inclusive, page aligned
	End   uint64 // exclusive, page aligned
	Perms string // e.g. "rw-", informational
	Pages map[uint64]*Page
}

// Len returns the region size in bytes.
func (v *VMA) Len() uint64 { return v.End - v.Start }

// Resident returns the number of materialized pages.
func (v *VMA) Resident() int { return len(v.Pages) }

// AddressSpace is an ordered set of non-overlapping VMAs, the analogue of
// the mm_struct VMA list the tracking mechanism of §V-A diffs against.
type AddressSpace struct {
	vmas    []*VMA // sorted by Start
	nextMap uint64 // bump allocator for anonymous mappings

	// OnMissing observes every access that lands on an absent page (a
	// post-copy placeholder whose content is still on the migration
	// source). The access itself fails with ErrPageAbsent and the state
	// of the space is untouched; the hook is where the demand-pull
	// client hangs.
	OnMissing func(vmaStart, pageIndex uint64)
}

// NewAddressSpace creates an empty address space with mappings starting
// at a conventional base.
func NewAddressSpace() *AddressSpace {
	return &AddressSpace{nextMap: 0x4000_0000}
}

// VMAs returns the live region list in address order. Callers must not
// mutate it.
func (as *AddressSpace) VMAs() []*VMA { return as.vmas }

// Mmap maps length bytes at a chosen address and returns the region.
func (as *AddressSpace) Mmap(length uint64, perms string) *VMA {
	if length == 0 {
		length = PageSize
	}
	length = (length + PageSize - 1) / PageSize * PageSize
	v := &VMA{Start: as.nextMap, End: as.nextMap + length, Perms: perms, Pages: make(map[uint64]*Page)}
	as.nextMap += length + PageSize // guard page gap
	as.vmas = append(as.vmas, v)
	sort.Slice(as.vmas, func(i, j int) bool { return as.vmas[i].Start < as.vmas[j].Start })
	return v
}

// MmapFixed maps a region at a specific address (restart path).
func (as *AddressSpace) MmapFixed(start, end uint64, perms string) (*VMA, error) {
	if start%PageSize != 0 || end%PageSize != 0 || end <= start {
		return nil, fmt.Errorf("proc: bad fixed mapping [%#x,%#x)", start, end)
	}
	for _, v := range as.vmas {
		if start < v.End && v.Start < end {
			return nil, fmt.Errorf("proc: mapping [%#x,%#x) overlaps [%#x,%#x)", start, end, v.Start, v.End)
		}
	}
	v := &VMA{Start: start, End: end, Perms: perms, Pages: make(map[uint64]*Page)}
	as.vmas = append(as.vmas, v)
	sort.Slice(as.vmas, func(i, j int) bool { return as.vmas[i].Start < as.vmas[j].Start })
	if end+PageSize > as.nextMap {
		as.nextMap = end + PageSize
	}
	return v, nil
}

// Munmap removes the region starting at start.
func (as *AddressSpace) Munmap(start uint64) error {
	for i, v := range as.vmas {
		if v.Start == start {
			as.vmas = append(as.vmas[:i], as.vmas[i+1:]...)
			return nil
		}
	}
	return fmt.Errorf("proc: munmap of unmapped address %#x", start)
}

// Resize grows or shrinks a region in place (mremap-style modification;
// one of the three kinds of address-space change the tracking list must
// reflect).
func (as *AddressSpace) Resize(start, newLen uint64) error {
	newLen = (newLen + PageSize - 1) / PageSize * PageSize
	for i, v := range as.vmas {
		if v.Start != start {
			continue
		}
		newEnd := start + newLen
		if i+1 < len(as.vmas) && newEnd > as.vmas[i+1].Start {
			return fmt.Errorf("proc: resize collides with next mapping")
		}
		if newEnd < v.End {
			for idx := range v.Pages {
				if idx*PageSize >= newEnd-v.Start {
					delete(v.Pages, idx)
				}
			}
		}
		v.End = newEnd
		return nil
	}
	return fmt.Errorf("proc: resize of unmapped address %#x", start)
}

func (as *AddressSpace) findVMA(addr uint64) *VMA {
	i := sort.Search(len(as.vmas), func(i int) bool { return as.vmas[i].End > addr })
	if i < len(as.vmas) && as.vmas[i].Start <= addr {
		return as.vmas[i]
	}
	return nil
}

func (v *VMA) page(addr uint64) *Page {
	idx := (addr - v.Start) / PageSize
	p := v.Pages[idx]
	if p == nil {
		p = &Page{Data: make([]byte, PageSize)}
		v.Pages[idx] = p
	}
	return p
}

// ErrPageAbsent is the fault an access to a post-copy placeholder page
// raises: the content has not arrived from the migration source yet.
var ErrPageAbsent = fmt.Errorf("proc: page not resident (post-copy fault)")

// missing fires the demand-fault hook and returns the canonical fault.
func (as *AddressSpace) missing(v *VMA, idx uint64) error {
	if as.OnMissing != nil {
		as.OnMissing(v.Start, idx)
	}
	return ErrPageAbsent
}

// Write stores data at addr, faulting pages in and setting dirty bits.
// Writes that land on an absent page fault (fire OnMissing, return
// ErrPageAbsent) without storing anything.
func (as *AddressSpace) Write(addr uint64, data []byte) error {
	for len(data) > 0 {
		v := as.findVMA(addr)
		if v == nil {
			return fmt.Errorf("proc: segmentation fault writing %#x", addr)
		}
		idx := (addr - v.Start) / PageSize
		if p := v.Pages[idx]; p != nil && p.Absent {
			return as.missing(v, idx)
		}
		p := v.page(addr)
		off := addr % PageSize
		n := copy(p.Data[off:], data)
		p.Dirty = true
		data = data[n:]
		addr += uint64(n)
	}
	return nil
}

// Read copies length bytes starting at addr. Reads that land on an
// absent page fault like writes do.
func (as *AddressSpace) Read(addr uint64, length int) ([]byte, error) {
	out := make([]byte, 0, length)
	for length > 0 {
		v := as.findVMA(addr)
		if v == nil {
			return nil, fmt.Errorf("proc: segmentation fault reading %#x", addr)
		}
		off := addr % PageSize
		n := PageSize - int(off)
		if n > length {
			n = length
		}
		idx := (addr - v.Start) / PageSize
		if p := v.Pages[idx]; p != nil {
			if p.Absent {
				return nil, as.missing(v, idx)
			}
			out = append(out, p.Data[off:int(off)+n]...)
		} else {
			out = append(out, make([]byte, n)...) // unfaulted zero page
		}
		length -= n
		addr += uint64(n)
	}
	return out, nil
}

// Touch dirties a single page (the workload generator's write primitive).
func (as *AddressSpace) Touch(addr uint64) error {
	v := as.findVMA(addr)
	if v == nil {
		return fmt.Errorf("proc: segmentation fault touching %#x", addr)
	}
	idx := (addr - v.Start) / PageSize
	if p := v.Pages[idx]; p != nil && p.Absent {
		return as.missing(v, idx)
	}
	p := v.page(addr)
	p.Dirty = true
	p.Data[addr%PageSize]++
	return nil
}

// MarkAbsent installs a post-copy placeholder: the page is known to
// exist (it was resident on the source at freeze time) but its content
// has not been shipped. Any access faults until FillPage arrives.
func (as *AddressSpace) MarkAbsent(vmaStart, pageIndex uint64) error {
	v := as.findVMA(vmaStart)
	if v == nil || v.Start != vmaStart {
		return fmt.Errorf("proc: mark-absent on unmapped region %#x", vmaStart)
	}
	v.Pages[pageIndex] = &Page{Absent: true}
	return nil
}

// FillPage delivers a pulled (or pushed) page's content, clearing the
// absent mark. The fill does not set the dirty bit: arriving content is
// clean by definition (it is the source's authoritative copy). Filling
// a page that is not absent is rejected so the exactly-once shipping
// property is checkable at the memory layer.
func (as *AddressSpace) FillPage(vmaStart, pageIndex uint64, data []byte) error {
	v := as.findVMA(vmaStart)
	if v == nil || v.Start != vmaStart {
		return fmt.Errorf("proc: fill of unmapped region %#x", vmaStart)
	}
	p := v.Pages[pageIndex]
	if p == nil || !p.Absent {
		return fmt.Errorf("proc: duplicate fill of resident page %#x+%d", vmaStart, pageIndex)
	}
	p.Data = make([]byte, PageSize)
	copy(p.Data, data)
	p.Absent = false
	p.Dirty = false
	return nil
}

// AbsentPages lists the remaining placeholders in canonical (VMA,
// index) order — the prefetch sweep's work list.
func (as *AddressSpace) AbsentPages() []DirtyRef {
	var out []DirtyRef
	for _, v := range as.vmas {
		idxs := make([]uint64, 0, len(v.Pages))
		for idx, p := range v.Pages {
			if p.Absent {
				idxs = append(idxs, idx)
			}
		}
		sort.Slice(idxs, func(i, j int) bool { return idxs[i] < idxs[j] })
		for _, idx := range idxs {
			out = append(out, DirtyRef{VMA: v, PageIndex: idx})
		}
	}
	return out
}

// AbsentCount counts the remaining placeholders.
func (as *AddressSpace) AbsentCount() int {
	n := 0
	for _, v := range as.vmas {
		for _, p := range v.Pages {
			if p.Absent {
				n++
			}
		}
	}
	return n
}

// DirtyPages returns (vmaStart, pageIndex) pairs of every dirty page.
func (as *AddressSpace) DirtyPages() []DirtyRef {
	var out []DirtyRef
	for _, v := range as.vmas {
		idxs := make([]uint64, 0, len(v.Pages))
		for idx, p := range v.Pages {
			if p.Dirty {
				idxs = append(idxs, idx)
			}
		}
		sort.Slice(idxs, func(i, j int) bool { return idxs[i] < idxs[j] })
		for _, idx := range idxs {
			out = append(out, DirtyRef{VMA: v, PageIndex: idx})
		}
	}
	return out
}

// DirtyRef names one dirty page.
type DirtyRef struct {
	VMA       *VMA
	PageIndex uint64
}

// Addr returns the page's virtual address.
func (d DirtyRef) Addr() uint64 { return d.VMA.Start + d.PageIndex*PageSize }

// ClearDirty resets all dirty bits (done after each precopy transfer
// round, like clearing PTE dirty bits).
func (as *AddressSpace) ClearDirty() {
	for _, v := range as.vmas {
		for _, p := range v.Pages {
			p.Dirty = false
		}
	}
}

// ResidentBytes sums materialized page bytes across all regions.
func (as *AddressSpace) ResidentBytes() uint64 {
	var n uint64
	for _, v := range as.vmas {
		n += uint64(len(v.Pages)) * PageSize
	}
	return n
}

// MappedBytes sums region sizes.
func (as *AddressSpace) MappedBytes() uint64 {
	var n uint64
	for _, v := range as.vmas {
		n += v.Len()
	}
	return n
}
