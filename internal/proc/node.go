package proc

import (
	"fmt"
	"sort"

	"dvemig/internal/flight"
	"dvemig/internal/netsim"
	"dvemig/internal/netstack"
	"dvemig/internal/simtime"
)

// Node is one DVE server machine: a network stack on both the public
// (broadcast) and local (in-cluster) networks, a process table and CPU
// accounting. The testbed nodes are dual-core Opterons (§VI-A); CPU
// utilisation is reported as a percentage of the whole machine like atop.
type Node struct {
	Name    string
	Sched   *simtime.Scheduler
	Stack   *netstack.Stack
	LocalIP netsim.Addr

	PublicNIC, LocalNIC *netsim.NIC

	// Cores is the machine's CPU capacity in core-equivalents.
	Cores float64

	Alive bool

	// FR, when attached, is this node's flight recorder: migration phase
	// transitions, failure-detector flips and conductor decisions record
	// into it. AttachFlight wires it (plus the stack and NIC recorders).
	FR *flight.Recorder

	processes map[int]*Process
	nextPID   int
	tickers   map[int]*simtime.Ticker
}

func newNode(name string, sched *simtime.Scheduler, bootJiffies uint32) *Node {
	return &Node{
		Name:      name,
		Sched:     sched,
		Stack:     netstack.NewStack(sched, name, bootJiffies),
		Cores:     2,
		Alive:     true,
		processes: make(map[int]*Process),
		tickers:   make(map[int]*simtime.Ticker),
		nextPID:   100,
	}
}

// AttachFlight wires a flight-recorder set into the node: one recorder
// for node-level events (n.FR), one for the stack's packet verdicts, and
// one per NIC for wire-level verdicts. Passing nil detaches them all.
func (n *Node) AttachFlight(set *flight.Set) {
	if set == nil {
		n.FR = nil
		n.Stack.FR = nil
		if n.PublicNIC != nil {
			n.PublicNIC.FR = nil
		}
		if n.LocalNIC != nil {
			n.LocalNIC.FR = nil
		}
		return
	}
	n.FR = set.Track(n.Name)
	n.Stack.FR = set.Track(n.Name + "/stack")
	if n.PublicNIC != nil {
		n.PublicNIC.FR = set.Track(n.Name + "/nic-pub")
	}
	if n.LocalNIC != nil {
		n.LocalNIC.FR = set.Track(n.Name + "/nic-local")
	}
}

// Spawn creates a process with the given number of threads and a fresh
// address space and FD table.
func (n *Node) Spawn(name string, threads int) *Process {
	n.nextPID++
	p := &Process{
		PID:         n.nextPID,
		Name:        name,
		Node:        n,
		State:       ProcRunning,
		AS:          NewAddressSpace(),
		FDs:         NewFDTable(),
		SigHandlers: make(map[Signal]func(*Process, *Thread)),
	}
	if threads < 1 {
		threads = 1
	}
	for i := 0; i < threads; i++ {
		p.NewThread()
	}
	n.processes[p.PID] = p
	return p
}

// Adopt re-homes a migrated process onto this node, preserving its PID
// when free (BLCR restores the original PID).
func (n *Node) Adopt(p *Process) {
	if _, taken := n.processes[p.PID]; taken {
		n.nextPID++
		p.PID = n.nextPID
	}
	p.Node = n
	n.processes[p.PID] = p
	if p.PID > n.nextPID {
		n.nextPID = p.PID
	}
}

func (n *Node) removeProcess(p *Process) {
	delete(n.processes, p.PID)
	if tk := n.tickers[p.PID]; tk != nil {
		tk.Stop()
		delete(n.tickers, p.PID)
	}
}

// Detach removes the process from the node without exiting it (source
// side of a completed migration).
func (n *Node) Detach(p *Process) { n.removeProcess(p) }

// Processes lists processes in PID order.
func (n *Node) Processes() []*Process {
	out := make([]*Process, 0, len(n.processes))
	for _, p := range n.processes {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].PID < out[j].PID })
	return out
}

// NumProcesses returns the process count.
func (n *Node) NumProcesses() int { return len(n.processes) }

// StartLoop arms the process's real-time loop at the given period. The
// loop silently skips while the process is frozen (the freeze phase of a
// migration) or stalled on a demand page fault (post-copy), and is
// re-armed on the destination node after migration.
func (n *Node) StartLoop(p *Process, period simtime.Duration) {
	p.LoopPeriod = period
	if tk := n.tickers[p.PID]; tk != nil {
		tk.Stop()
	}
	tk := simtime.NewTicker(n.Sched, period, p.Name+".loop", func() {
		if p.State == ProcRunning && !p.Stalled && p.Tick != nil {
			p.Tick(p)
		}
	})
	n.tickers[p.PID] = tk
	tk.Start()
}

// StopLoop disarms the process loop (source side after migration).
func (n *Node) StopLoop(p *Process) {
	if tk := n.tickers[p.PID]; tk != nil {
		tk.Stop()
		delete(n.tickers, p.PID)
	}
}

// Utilization reports machine CPU usage in [0,1]: the summed demand of
// runnable processes against the core count, saturating at 1.
func (n *Node) Utilization() float64 {
	var demand float64
	for _, p := range n.processes {
		if p.State == ProcRunning {
			demand += p.CPUDemand
		}
	}
	u := demand / n.Cores
	if u > 1 {
		u = 1
	}
	return u
}

// Fail kills the node: processes exit, NICs detach, and the stack is
// marked down so packets already in flight (or events already scheduled
// on the virtual clock) can neither be received nor answered by the dead
// machine. Used by the fault-tolerance extension and the fault plane's
// crash triggers.
func (n *Node) Fail(c *Cluster) {
	n.Alive = false
	n.Stack.SetDown(true)
	for _, p := range n.Processes() {
		p.Exit()
	}
	if n.PublicNIC != nil {
		c.Router.DetachServer(n.PublicNIC)
	}
	if n.LocalNIC != nil {
		c.Switch.Detach(n.LocalNIC)
	}
}

// Cluster is the full single-IP-address testbed: a broadcast router on
// the public side, a switch on the in-cluster side, and the server nodes.
type Cluster struct {
	Sched     *simtime.Scheduler
	ClusterIP netsim.Addr
	Router    *netsim.BroadcastRouter
	Switch    *netsim.Switch
	Nodes     []*Node
	Rand      *simtime.Rand

	nextExternal    byte
	nextLocal       byte
	lastExternalNIC *netsim.NIC
}

// LocalNet is the in-cluster subnet.
var LocalNet = netsim.MakeAddr(192, 168, 1, 0)

// NewCluster builds the testbed with n server nodes (the paper uses 5
// DVE servers plus a MySQL machine; the DB node is added separately with
// AddNode so experiments can choose).
func NewCluster(sched *simtime.Scheduler, n int) *Cluster {
	c := &Cluster{
		Sched:     sched,
		ClusterIP: netsim.MakeAddr(203, 0, 113, 10),
		Rand:      simtime.NewRand(2010),
		nextLocal: 1,
	}
	c.Router = netsim.NewBroadcastRouter(sched, c.ClusterIP)
	c.Switch = netsim.NewSwitch(sched)
	for i := 0; i < n; i++ {
		c.AddNode(fmt.Sprintf("node%d", i+1))
	}
	return c
}

// AddNode attaches a new server node to both networks. Jiffies boot
// offsets are deliberately distinct across nodes.
func (c *Cluster) AddNode(name string) *Node {
	idx := c.nextLocal
	c.nextLocal++
	boot := uint32(idx)*1_000_003 + 12345
	n := newNode(name, c.Sched, boot)
	n.LocalIP = netsim.MakeAddr(192, 168, 1, idx)
	n.PublicNIC = c.Router.AttachServer(name+".pub", netsim.GigabitEthernet)
	n.LocalNIC = c.Switch.Attach(name+".lan", n.LocalIP, netsim.GigabitEthernet)
	n.Stack.AttachNIC(n.PublicNIC, c.ClusterIP)
	n.Stack.AttachNIC(n.LocalNIC, n.LocalIP)
	n.Stack.AddRoute(LocalNet, 24, n.LocalNIC, n.LocalIP)
	n.Stack.AddRoute(0, 0, n.PublicNIC, c.ClusterIP)
	c.Nodes = append(c.Nodes, n)
	return n
}

// RemoveNode detaches the node from the cluster fabric (clean leave).
func (c *Cluster) RemoveNode(n *Node) {
	for i, m := range c.Nodes {
		if m == n {
			c.Nodes = append(c.Nodes[:i], c.Nodes[i+1:]...)
			break
		}
	}
	n.Alive = false
	c.Router.DetachServer(n.PublicNIC)
	c.Switch.Detach(n.LocalNIC)
}

// NodeByLocalIP finds a node by its in-cluster address.
func (c *Cluster) NodeByLocalIP(ip netsim.Addr) *Node {
	for _, n := range c.Nodes {
		if n.LocalIP == ip && n.Alive {
			return n
		}
	}
	return nil
}

// NewExternalHost attaches a client machine on the WAN side of the router
// and returns its stack.
func (c *Cluster) NewExternalHost(name string) *netstack.Stack {
	c.nextExternal++
	addr := netsim.MakeAddr(198, 51, 100, c.nextExternal)
	st := netstack.NewStack(c.Sched, name, uint32(c.nextExternal)*77777)
	nic := c.Router.AttachExternal(name, addr, netsim.GigabitEthernet)
	st.AttachNIC(nic, addr)
	st.AddRoute(0, 0, nic, addr)
	c.lastExternalNIC = nic
	return st
}

// LastExternalNIC returns the access-link interface of the most recently
// created external host, for attaching measurement taps.
func (c *Cluster) LastExternalNIC() *netsim.NIC { return c.lastExternalNIC }
