package proc

import (
	"bytes"
	"testing"
	"testing/quick"
	"time"

	"dvemig/internal/netstack"
	"dvemig/internal/simtime"
)

func TestMmapAndWriteRead(t *testing.T) {
	as := NewAddressSpace()
	v := as.Mmap(3*PageSize, "rw-")
	data := bytes.Repeat([]byte{0xAB}, 2*PageSize+100)
	if err := as.Write(v.Start+50, data); err != nil {
		t.Fatal(err)
	}
	got, err := as.Read(v.Start+50, len(data))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("read mismatch")
	}
	// The write spans three pages; all must be dirty.
	if len(as.DirtyPages()) != 3 {
		t.Fatalf("dirty pages = %d, want 3", len(as.DirtyPages()))
	}
}

func TestReadUnfaultedIsZero(t *testing.T) {
	as := NewAddressSpace()
	v := as.Mmap(PageSize, "rw-")
	got, err := as.Read(v.Start, 64)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, make([]byte, 64)) {
		t.Fatal("unfaulted page not zero")
	}
	if v.Resident() != 0 {
		t.Fatal("read must not fault pages in")
	}
}

func TestSegfaultOutsideMapping(t *testing.T) {
	as := NewAddressSpace()
	if err := as.Write(0x1000, []byte{1}); err == nil {
		t.Fatal("write outside mapping succeeded")
	}
	if _, err := as.Read(0x1000, 1); err == nil {
		t.Fatal("read outside mapping succeeded")
	}
	if err := as.Touch(0x1000); err == nil {
		t.Fatal("touch outside mapping succeeded")
	}
}

func TestDirtyTrackingClearAndRetouch(t *testing.T) {
	as := NewAddressSpace()
	v := as.Mmap(8*PageSize, "rw-")
	for i := uint64(0); i < 8; i++ {
		as.Touch(v.Start + i*PageSize)
	}
	if len(as.DirtyPages()) != 8 {
		t.Fatal("all touched pages should be dirty")
	}
	as.ClearDirty()
	if len(as.DirtyPages()) != 0 {
		t.Fatal("clear failed")
	}
	as.Touch(v.Start + 3*PageSize)
	d := as.DirtyPages()
	if len(d) != 1 || d[0].Addr() != v.Start+3*PageSize {
		t.Fatalf("retouch tracking wrong: %+v", d)
	}
}

func TestDirtyPagesDeterministicOrder(t *testing.T) {
	as := NewAddressSpace()
	v := as.Mmap(16*PageSize, "rw-")
	for _, i := range []uint64{9, 2, 14, 0, 7} {
		as.Touch(v.Start + i*PageSize)
	}
	d := as.DirtyPages()
	for i := 1; i < len(d); i++ {
		if d[i-1].Addr() >= d[i].Addr() {
			t.Fatal("dirty pages not in address order")
		}
	}
}

func TestMmapFixedOverlapRejected(t *testing.T) {
	as := NewAddressSpace()
	if _, err := as.MmapFixed(0x10000, 0x14000, "rw-"); err != nil {
		t.Fatal(err)
	}
	if _, err := as.MmapFixed(0x12000, 0x16000, "rw-"); err == nil {
		t.Fatal("overlap accepted")
	}
	if _, err := as.MmapFixed(0x14000, 0x14000, "rw-"); err == nil {
		t.Fatal("empty mapping accepted")
	}
	if _, err := as.MmapFixed(0x14001, 0x18000, "rw-"); err == nil {
		t.Fatal("unaligned mapping accepted")
	}
}

func TestMunmapAndResize(t *testing.T) {
	as := NewAddressSpace()
	v := as.Mmap(4*PageSize, "rw-")
	as.Touch(v.Start + 3*PageSize)
	if err := as.Resize(v.Start, 2*PageSize); err != nil {
		t.Fatal(err)
	}
	if v.Len() != 2*PageSize {
		t.Fatal("shrink failed")
	}
	if len(as.DirtyPages()) != 0 {
		t.Fatal("pages beyond shrink not discarded")
	}
	if err := as.Resize(v.Start, 6*PageSize); err != nil {
		t.Fatal(err)
	}
	if err := as.Munmap(v.Start); err != nil {
		t.Fatal(err)
	}
	if err := as.Munmap(v.Start); err == nil {
		t.Fatal("double munmap succeeded")
	}
	if len(as.VMAs()) != 0 {
		t.Fatal("vma list not empty")
	}
}

func TestResizeCollision(t *testing.T) {
	as := NewAddressSpace()
	a := as.Mmap(PageSize, "rw-")
	as.Mmap(PageSize, "rw-")
	if err := as.Resize(a.Start, 64*PageSize); err == nil {
		t.Fatal("resize into next mapping accepted")
	}
}

func TestAccountingBytes(t *testing.T) {
	as := NewAddressSpace()
	v := as.Mmap(10*PageSize, "rw-")
	if as.MappedBytes() != 10*PageSize {
		t.Fatal("mapped bytes wrong")
	}
	as.Touch(v.Start)
	as.Touch(v.Start + 5*PageSize)
	if as.ResidentBytes() != 2*PageSize {
		t.Fatal("resident bytes wrong")
	}
}

func TestWriteReadProperty(t *testing.T) {
	as := NewAddressSpace()
	v := as.Mmap(64*PageSize, "rw-")
	f := func(off uint32, data []byte) bool {
		if len(data) == 0 {
			return true
		}
		o := uint64(off) % (60 * PageSize)
		if err := as.Write(v.Start+o, data); err != nil {
			return false
		}
		got, err := as.Read(v.Start+o, len(data))
		return err == nil && bytes.Equal(got, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestFDTable(t *testing.T) {
	ft := NewFDTable()
	fd1 := ft.Install(&RegularFile{Path: "/var/game/map.bsp"})
	fd2 := ft.Install(&RegularFile{Path: "/var/log/x"})
	if fd1 != 3 || fd2 != 4 {
		t.Fatalf("fds = %d,%d", fd1, fd2)
	}
	if err := ft.InstallAt(10, &RegularFile{Path: "/z"}); err != nil {
		t.Fatal(err)
	}
	if err := ft.InstallAt(10, &RegularFile{}); err == nil {
		t.Fatal("duplicate fd accepted")
	}
	if got := ft.FDs(); len(got) != 3 || got[0] != 3 || got[2] != 10 {
		t.Fatalf("FDs order = %v", got)
	}
	ft.CloseFD(4)
	if ft.Len() != 2 || ft.Get(4) != nil {
		t.Fatal("close failed")
	}
	// nextFD advanced past InstallAt.
	if fd := ft.Install(&RegularFile{}); fd != 11 {
		t.Fatalf("next fd = %d, want 11", fd)
	}
}

func TestSpawnAndThreads(t *testing.T) {
	c := NewCluster(simtime.NewScheduler(), 1)
	n := c.Nodes[0]
	p := n.Spawn("zone_serv1", 3)
	if len(p.Threads) != 3 {
		t.Fatal("thread count")
	}
	seen := map[int]bool{}
	for _, th := range p.Threads {
		if seen[th.TID] {
			t.Fatal("duplicate TID")
		}
		seen[th.TID] = true
		if th.Regs.PC == 0 {
			t.Fatal("registers not initialized")
		}
	}
	if n.NumProcesses() != 1 {
		t.Fatal("process table")
	}
	p.Exit()
	if n.NumProcesses() != 0 {
		t.Fatal("exit did not remove process")
	}
}

func TestSignalAbandonsSyscall(t *testing.T) {
	c := NewCluster(simtime.NewScheduler(), 2)
	a, b := c.Nodes[0], c.Nodes[1]
	// Connect a socket between the nodes over the local network.
	lst := netstack.NewTCPSocket(b.Stack)
	if err := lst.Listen(b.LocalIP, 3306); err != nil {
		t.Fatal(err)
	}
	sk := netstack.NewTCPSocket(a.Stack)
	if err := sk.Connect(b.LocalIP, 3306); err != nil {
		t.Fatal(err)
	}
	c.Sched.RunFor(time.Second)
	p := a.Spawn("app", 2)
	p.FDs.Install(&TCPFile{Sock: sk})
	p.Threads[0].EnterSyscall(sk, false) // locks the socket
	if !sk.Locked() {
		t.Fatal("socket not locked by syscall")
	}
	ran := 0
	p.SigHandlers[SIGCKPT] = func(pp *Process, th *Thread) { ran++ }
	p.Signal(SIGCKPT)
	if sk.Locked() {
		t.Fatal("signal did not force syscall abandonment")
	}
	if ran != 2 {
		t.Fatalf("handler ran %d times, want once per thread", ran)
	}
	if p.Threads[0].Syscall != nil {
		t.Fatal("syscall state not cleared")
	}
}

func TestSignalReleasesRecvWait(t *testing.T) {
	c := NewCluster(simtime.NewScheduler(), 1)
	n := c.Nodes[0]
	sk := netstack.NewTCPSocket(n.Stack)
	p := n.Spawn("app", 1)
	p.Threads[0].EnterSyscall(sk, true)
	p.Signal(SIGCKPT)
	if sk.PrequeueBusy() {
		t.Fatal("prequeue busy after signal")
	}
}

func TestProcessLoopAndFreeze(t *testing.T) {
	c := NewCluster(simtime.NewScheduler(), 1)
	n := c.Nodes[0]
	p := n.Spawn("rt", 1)
	ticks := 0
	p.Tick = func(*Process) { ticks++ }
	n.StartLoop(p, 50*time.Millisecond)
	c.Sched.RunUntil(500 * time.Millisecond)
	if ticks != 10 {
		t.Fatalf("ticks = %d, want 10", ticks)
	}
	p.State = ProcFrozen
	c.Sched.RunUntil(time.Second)
	if ticks != 10 {
		t.Fatalf("frozen process ticked: %d", ticks)
	}
	p.State = ProcRunning
	c.Sched.RunUntil(1500 * time.Millisecond)
	if ticks != 20 {
		t.Fatalf("ticks after thaw = %d, want 20", ticks)
	}
	n.StopLoop(p)
	c.Sched.RunUntil(2 * time.Second)
	if ticks != 20 {
		t.Fatal("loop ran after StopLoop")
	}
}

func TestUtilizationSaturates(t *testing.T) {
	c := NewCluster(simtime.NewScheduler(), 1)
	n := c.Nodes[0]
	for i := 0; i < 5; i++ {
		p := n.Spawn("w", 1)
		p.CPUDemand = 0.8
	}
	if u := n.Utilization(); u != 1 {
		t.Fatalf("utilization = %v, want saturated 1", u)
	}
	for _, p := range n.Processes()[:4] {
		p.Exit()
	}
	if u := n.Utilization(); u != 0.4 { // 0.8 demand / 2 cores
		t.Fatalf("utilization = %v, want 0.4", u)
	}
}

func TestAdoptPreservesOrRemapsPID(t *testing.T) {
	c := NewCluster(simtime.NewScheduler(), 2)
	a, b := c.Nodes[0], c.Nodes[1]
	p := a.Spawn("mover", 1)
	pid := p.PID
	a.Detach(p)
	b.Adopt(p)
	if p.PID != pid || p.Node != b {
		t.Fatal("adopt changed a free PID")
	}
	// Occupy the PID on a third node and adopt there: must remap.
	c2 := NewCluster(simtime.NewScheduler(), 1)
	n3 := c2.Nodes[0]
	q := n3.Spawn("occupant", 1)
	if q.PID != pid {
		t.Skip("pid allocation changed; adjust test")
	}
	b.Detach(p)
	n3.Adopt(p)
	if p.PID == pid {
		t.Fatal("PID collision not remapped")
	}
}

func TestClusterConnectivityLocalAndPublic(t *testing.T) {
	sched := simtime.NewScheduler()
	c := NewCluster(sched, 3)
	// Local: node1 -> node3 TCP.
	lst := netstack.NewTCPSocket(c.Nodes[2].Stack)
	if err := lst.Listen(c.Nodes[2].LocalIP, 3306); err != nil {
		t.Fatal(err)
	}
	sk := netstack.NewTCPSocket(c.Nodes[0].Stack)
	if err := sk.Connect(c.Nodes[2].LocalIP, 3306); err != nil {
		t.Fatal(err)
	}
	sched.RunFor(time.Second)
	if sk.State != netstack.TCPEstablished {
		t.Fatal("in-cluster connect failed")
	}
	// Public: external client UDP to a port owned by node2.
	us := netstack.NewUDPSocket(c.Nodes[1].Stack)
	if err := us.Bind(c.ClusterIP, 27960); err != nil {
		t.Fatal(err)
	}
	ext := c.NewExternalHost("player")
	cu := netstack.NewUDPSocket(ext)
	extAddr, err := ext.SourceAddrFor(c.ClusterIP)
	if err != nil {
		t.Fatal(err)
	}
	cu.BindEphemeral(extAddr)
	cu.SendTo(c.ClusterIP, 27960, []byte("join"))
	sched.RunFor(time.Second)
	d, ok := us.Recv()
	if !ok || string(d.Payload) != "join" {
		t.Fatal("public path failed")
	}
	// And the reply reaches the client despite the shared cluster IP.
	us.SendTo(d.SrcIP, d.SrcPort, []byte("welcome"))
	sched.RunFor(time.Second)
	if d, ok := cu.Recv(); !ok || string(d.Payload) != "welcome" {
		t.Fatal("reply path failed")
	}
}

func TestNodeByLocalIPAndRemove(t *testing.T) {
	c := NewCluster(simtime.NewScheduler(), 3)
	n2 := c.Nodes[1]
	if c.NodeByLocalIP(n2.LocalIP) != n2 {
		t.Fatal("lookup failed")
	}
	c.RemoveNode(n2)
	if c.NodeByLocalIP(n2.LocalIP) != nil {
		t.Fatal("removed node still found")
	}
	if len(c.Nodes) != 2 || c.Router.ServerCount() != 2 {
		t.Fatal("fabric not detached")
	}
}

func TestNodeFailKillsProcesses(t *testing.T) {
	c := NewCluster(simtime.NewScheduler(), 2)
	n := c.Nodes[0]
	p := n.Spawn("victim", 1)
	n.Fail(c)
	if p.State != ProcExited || n.Alive {
		t.Fatal("fail did not kill processes")
	}
}
