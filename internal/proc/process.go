package proc

import (
	"fmt"
	"sort"

	"dvemig/internal/netstack"
	"dvemig/internal/simtime"
)

// Signal numbers used by the checkpoint machinery.
type Signal int

// Signals. SIGCKPT is the live-checkpoint request BLCR delivers; the
// handler clones the helper thread (§III-A).
const (
	SIGCKPT Signal = 64 + iota
	SIGFREEZE
	SIGKILLPROC
)

// ProcState is a process lifecycle state.
type ProcState int

// Process states.
const (
	ProcRunning ProcState = iota
	ProcFrozen            // freeze phase of migration: unresponsive
	ProcExited
)

// File is anything an FD can reference.
type File interface {
	FileKind() string
}

// RegularFile is an open disk file; the paper assumes file *contents* are
// available on all nodes (replicated or on a distributed FS), so a
// checkpoint records only path, offset and flags, and restart re-opens.
type RegularFile struct {
	Path   string
	Offset int64
	Flags  int
}

// FileKind identifies the FD type.
func (f *RegularFile) FileKind() string { return "file" }

// TCPFile wraps a TCP socket in the FD table.
type TCPFile struct{ Sock *netstack.TCPSocket }

// FileKind identifies the FD type.
func (f *TCPFile) FileKind() string { return "tcp" }

// UDPFile wraps a UDP socket in the FD table.
type UDPFile struct{ Sock *netstack.UDPSocket }

// FileKind identifies the FD type.
func (f *UDPFile) FileKind() string { return "udp" }

// FDTable maps descriptors to open files.
type FDTable struct {
	files  map[int]File
	nextFD int
	// gen counts mutations; caches derived from the table (the sorted FD
	// list, a process's socket slices) compare generations instead of
	// rebuilding per call — the application tick loop asks for its sockets
	// every period and the table almost never changes between asks.
	gen    uint64
	fds    []int // sorted descriptors, valid when fdsGen == gen+1
	fdsGen uint64
}

// NewFDTable returns an empty table with descriptors from 3 (0-2 are the
// standard streams, uninteresting here).
func NewFDTable() *FDTable {
	return &FDTable{files: make(map[int]File), nextFD: 3}
}

// Install adds a file and returns its descriptor.
func (t *FDTable) Install(f File) int {
	fd := t.nextFD
	t.nextFD++
	t.files[fd] = f
	t.gen++
	return fd
}

// InstallAt places a file at a specific descriptor (restart path).
func (t *FDTable) InstallAt(fd int, f File) error {
	if _, dup := t.files[fd]; dup {
		return fmt.Errorf("proc: fd %d already in use", fd)
	}
	t.files[fd] = f
	if fd >= t.nextFD {
		t.nextFD = fd + 1
	}
	t.gen++
	return nil
}

// Get returns the file at fd, or nil.
func (t *FDTable) Get(fd int) File { return t.files[fd] }

// CloseFD removes the descriptor.
func (t *FDTable) CloseFD(fd int) {
	delete(t.files, fd)
	t.gen++
}

// Len returns the number of open descriptors.
func (t *FDTable) Len() int { return len(t.files) }

// Gen returns the table's mutation generation (see gen).
func (t *FDTable) Gen() uint64 { return t.gen }

// FDs returns descriptors in ascending order — the iteration order of the
// migration engine's "file descriptor table iteration". The slice is a
// cached snapshot rebuilt only after a mutation; callers must not modify
// it. A rebuild allocates fresh backing so a snapshot held across a
// mutation stays internally consistent (merely stale).
func (t *FDTable) FDs() []int {
	if t.fdsGen == t.gen+1 {
		return t.fds
	}
	out := make([]int, 0, len(t.files))
	for fd := range t.files {
		out = append(out, fd)
	}
	sort.Ints(out)
	t.fds, t.fdsGen = out, t.gen+1
	return out
}

// Registers is the simulated execution context of one thread; its exact
// content is irrelevant, but migration must preserve it bit for bit.
type Registers struct {
	PC, SP uint64
	GPR    [8]uint64
}

// SyscallState records that a thread is blocked inside a system call on a
// socket; the signal-based checkpoint notification forces it to abandon
// the call and return to userspace (§III-A), releasing the socket lock —
// which is why backlog and prequeue are guaranteed empty in the freeze
// phase (§V-C1).
type SyscallState struct {
	Sock     *netstack.TCPSocket
	RecvWait bool
}

// Thread is one kernel thread of a process.
type Thread struct {
	TID     int
	Regs    Registers
	Syscall *SyscallState
	// SigHandlerRan counts handler invocations, for tests.
	SigHandlerRan int
}

// EnterSyscall simulates the thread blocking in a socket call.
func (th *Thread) EnterSyscall(sk *netstack.TCPSocket, recvWait bool) {
	th.Syscall = &SyscallState{Sock: sk, RecvWait: recvWait}
	if recvWait {
		sk.StartRecvWait()
	} else {
		sk.Lock()
	}
}

// AbandonSyscall forces the thread back to userspace, releasing socket
// state. Safe to call when not in a syscall.
func (th *Thread) AbandonSyscall() {
	if th.Syscall == nil {
		return
	}
	if th.Syscall.RecvWait {
		th.Syscall.Sock.StopRecvWait()
	} else {
		th.Syscall.Sock.Unlock()
	}
	th.Syscall = nil
}

// Process is a simulated OS process.
type Process struct {
	PID     int
	Name    string
	Node    *Node
	State   ProcState
	Threads []*Thread
	AS      *AddressSpace
	FDs     *FDTable

	// SigHandlers maps signals to handlers; the checkpoint signal handler
	// is installed by the migration library. Handlers run once per thread,
	// mirroring signal delivery to a thread group.
	SigHandlers map[Signal]func(p *Process, th *Thread)

	// CPUDemand is the fraction of one CPU the process currently wants;
	// the DVE zone server raises it proportionally to its client count.
	CPUDemand float64

	// Stalled gates the real-time loop while a demand page fault is
	// outstanding (post-copy migration): the process is logically
	// running — it still owns its sockets and counts as the service
	// owner — but is blocked on memory, so ticks are skipped until the
	// page arrives.
	Stalled bool

	// Tick, if set, runs the application's real-time loop; the node wires
	// it to a ticker firing every LoopPeriod. It receives the process it
	// runs as (the object identity changes across a migration, the state
	// does not).
	Tick       func(p *Process)
	LoopPeriod simtime.Duration

	nextTID int

	// Cached Sockets() result, keyed by the FD table's generation (zero
	// sockGen means never built). Rebuilds allocate fresh slices so a
	// caller holding the previous snapshot is unaffected.
	sockGen uint64
	sockTCP []*netstack.TCPSocket
	sockUDP []*netstack.UDPSocket
}

// NewThread adds a thread to the process.
func (p *Process) NewThread() *Thread {
	p.nextTID++
	th := &Thread{TID: p.nextTID}
	// Give the registers distinguishable content so migration tests can
	// detect corruption.
	th.Regs.PC = uint64(p.PID)<<32 | uint64(p.nextTID)
	th.Regs.SP = 0x7FFF_0000_0000 - uint64(p.nextTID)*0x10000
	for i := range th.Regs.GPR {
		th.Regs.GPR[i] = uint64(p.PID*1000+p.nextTID*10) + uint64(i)
	}
	p.Threads = append(p.Threads, th)
	return th
}

// Signal delivers sig to every thread: each thread abandons any system
// call first (returning to userspace), then runs the handler.
func (p *Process) Signal(sig Signal) {
	h := p.SigHandlers[sig]
	for _, th := range p.Threads {
		th.AbandonSyscall()
		if h != nil {
			th.SigHandlerRan++
			h(p, th)
		}
	}
}

// Sockets returns the process's TCP and UDP sockets in FD order. The
// slices are cached snapshots rebuilt only when the FD table changes;
// callers must not modify them.
func (p *Process) Sockets() (tcp []*netstack.TCPSocket, udp []*netstack.UDPSocket) {
	if p.sockGen == p.FDs.Gen()+1 {
		return p.sockTCP, p.sockUDP
	}
	for _, fd := range p.FDs.FDs() {
		switch f := p.FDs.Get(fd).(type) {
		case *TCPFile:
			tcp = append(tcp, f.Sock)
		case *UDPFile:
			udp = append(udp, f.Sock)
		}
	}
	p.sockTCP, p.sockUDP, p.sockGen = tcp, udp, p.FDs.Gen()+1
	return tcp, udp
}

// Exit terminates the process and closes its sockets.
func (p *Process) Exit() {
	if p.State == ProcExited {
		return
	}
	p.State = ProcExited
	tcp, udp := p.Sockets()
	for _, sk := range tcp {
		sk.Close()
	}
	for _, us := range udp {
		us.Close()
	}
	if p.Node != nil {
		p.Node.removeProcess(p)
	}
}
