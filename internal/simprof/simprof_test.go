package simprof

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"
)

func TestSubsystemOf(t *testing.T) {
	cases := []struct{ name, want string }{
		{"netsim.deliver", "netsim"},
		{"tcp.retx", "tcp"},
		{"ctlplane/ctl-1", "ctlplane"},
		{"migd.phase.timer", "migd"},
		{"plainname", "other"},
		{"", "other"},
		{".leading", "other"},
		{"/leading", "other"},
	}
	for _, c := range cases {
		if got := SubsystemOf(c.name); got != c.want {
			t.Errorf("SubsystemOf(%q) = %q, want %q", c.name, got, c.want)
		}
	}
}

func TestLoopProfStrideAndBuckets(t *testing.T) {
	p := New(4)
	lp := p.Loop("cell")
	for i := 0; i < 100; i++ {
		t0 := lp.Begin()
		// Stride 4 samples i = 3, 7, 11, …; alternate the name on i/4 so
		// both buckets receive sampled events.
		name := "netsim.deliver"
		if (i/4)%2 == 1 {
			name = "bare"
		}
		lp.End(t0, name, i%7)
	}
	r := lp.report()
	if r.Events != 100 {
		t.Errorf("events = %d, want 100", r.Events)
	}
	if r.Sampled != 25 {
		t.Errorf("sampled = %d with stride 4, want 25", r.Sampled)
	}
	var bucketEvents uint64
	seen := map[string]bool{}
	for _, b := range r.Buckets {
		bucketEvents += b.Events
		seen[b.Subsystem] = true
	}
	if bucketEvents != r.Sampled {
		t.Errorf("bucket events %d != sampled %d", bucketEvents, r.Sampled)
	}
	if !seen["netsim"] || !seen["other"] {
		t.Errorf("buckets missing netsim/other: %+v", r.Buckets)
	}
	if r.PendingMax > 6 || r.PendingMax < 0 {
		t.Errorf("pending max = %d out of fed range", r.PendingMax)
	}
	// Full attribution sanity: frac sums to ~1 and attributed = 1 - other share.
	var fracSum, otherFrac float64
	for _, b := range r.Buckets {
		fracSum += b.Frac
		if b.Subsystem == "other" {
			otherFrac = b.Frac
		}
	}
	if r.WallNs > 0 {
		if fracSum < 0.999 || fracSum > 1.001 {
			t.Errorf("bucket fracs sum to %v, want 1", fracSum)
		}
		if got := 1 - otherFrac; r.AttributedFrac < got-1e-9 || r.AttributedFrac > got+1e-9 {
			t.Errorf("AttributedFrac = %v, want %v", r.AttributedFrac, got)
		}
	}
}

func TestSweepProfOccupancy(t *testing.T) {
	sp := New(1).Sweep("sweep", 8)
	sp.Begin(3, 2)
	sp.CellStart(0, 0)
	sp.CellEnd(0)
	sp.CellStart(1, 1)
	sp.CellEnd(1)
	sp.CellStart(2, 0)
	time.Sleep(2 * time.Millisecond)
	sp.CellEnd(2)
	sp.End()
	r := sp.report()
	if r.WorkersRequested != 8 || r.WorkersEffective != 2 {
		t.Errorf("workers requested/effective = %d/%d, want 8/2", r.WorkersRequested, r.WorkersEffective)
	}
	if r.Cells != 3 || len(r.CellStats) != 3 {
		t.Fatalf("cells = %d, stats = %d, want 3/3", r.Cells, len(r.CellStats))
	}
	if len(r.Workers) != 2 {
		t.Fatalf("worker reports = %d, want 2", len(r.Workers))
	}
	w0 := r.Workers[0]
	if w0.Worker != 0 || w0.Cells != 2 {
		t.Errorf("worker 0 ran %d cells, want 2: %+v", w0.Cells, w0)
	}
	for _, w := range r.Workers {
		if w.BusyNs < 0 || w.BusyNs+w.IdleNs > r.WallNs+int64(time.Millisecond) {
			t.Errorf("worker %d busy+idle %d exceeds sweep wall %d", w.Worker, w.BusyNs+w.IdleNs, r.WallNs)
		}
		if w.Occupancy < 0 || w.Occupancy > 1.0001 {
			t.Errorf("worker %d occupancy %v out of [0,1]", w.Worker, w.Occupancy)
		}
	}
	if w0.BusyNs < 2*int64(time.Millisecond)/2 {
		t.Errorf("worker 0 busy %dns, want ≥ ~1ms from the slept cell", w0.BusyNs)
	}
}

func TestSkewProf(t *testing.T) {
	p := New(1)
	sk := p.Skew("cell")
	sk.Record("Freeze", 1000, 500)
	sk.Record("Freeze", 1000, 1500)
	sk.Record("Resume", 400, 100)
	r := p.Report()
	if len(r.PhaseSkewTotal) != 2 {
		t.Fatalf("phases = %d, want 2", len(r.PhaseSkewTotal))
	}
	// Sorted by phase name.
	if r.PhaseSkewTotal[0].Phase != "Freeze" || r.PhaseSkewTotal[1].Phase != "Resume" {
		t.Errorf("phase order: %+v", r.PhaseSkewTotal)
	}
	f := r.PhaseSkewTotal[0]
	if f.Count != 2 || f.SimNs != 2000 || f.WallNs != 2000 {
		t.Errorf("Freeze aggregate wrong: %+v", f)
	}
	if f.WallPerSim != 1.0 {
		t.Errorf("WallPerSim = %v, want 1.0", f.WallPerSim)
	}
}

func TestReportMergesLoopsAndMarksKind(t *testing.T) {
	p := New(1)
	a := p.Loop("a")
	b := p.Loop("b")
	for i := 0; i < 10; i++ {
		a.End(a.Begin(), "netsim.x", 1)
		b.End(b.Begin(), "tcp.y", 2)
	}
	r := p.Report()
	if r.Kind != ReportKind {
		t.Errorf("kind = %q, want %q", r.Kind, ReportKind)
	}
	if r.EventLoopTotal == nil {
		t.Fatal("EventLoopTotal missing")
	}
	if r.EventLoopTotal.Events != 20 {
		t.Errorf("merged events = %d, want 20", r.EventLoopTotal.Events)
	}
	if len(r.EventLoops) != 2 {
		t.Errorf("per-loop reports = %d, want 2", len(r.EventLoops))
	}
	seen := map[string]uint64{}
	for _, bk := range r.EventLoopTotal.Buckets {
		seen[bk.Subsystem] = bk.Events
	}
	if seen["netsim"] != 10 || seen["tcp"] != 10 {
		t.Errorf("merged buckets wrong: %+v", r.EventLoopTotal.Buckets)
	}

	var buf bytes.Buffer
	if err := p.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	var back map[string]any
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("report not valid JSON: %v", err)
	}
	if back["kind"] != ReportKind {
		t.Errorf("JSON kind = %v", back["kind"])
	}
}

// Every method must be a no-op on nil receivers — the disabled path the
// alloc gate pins at zero allocations.
func TestNilSafety(t *testing.T) {
	var p *Profiler
	lp := p.Loop("x")
	if lp != nil {
		t.Fatal("nil profiler handed out non-nil LoopProf")
	}
	lp.End(lp.Begin(), "netsim.x", 3)
	if lp.Events() != 0 {
		t.Error("nil LoopProf counted events")
	}
	sp := p.Sweep("x", 4)
	sp.Begin(2, 1)
	sp.CellStart(0, 0)
	sp.CellEnd(0)
	sp.End()
	sk := p.Skew("x")
	sk.Record("Freeze", 1, sk.NowNs())
	r := p.Report()
	if r == nil || r.Kind != ReportKind {
		t.Fatalf("nil profiler report: %+v", r)
	}
	if r.EventLoopTotal != nil || len(r.Sweeps) != 0 || len(r.PhaseSkewTotal) != 0 {
		t.Errorf("nil profiler report not empty: %+v", r)
	}
	if err := p.WriteFile("/nonexistent/dir/should-not-be-written"); err != nil {
		t.Errorf("nil WriteFile must no-op, got %v", err)
	}
}
