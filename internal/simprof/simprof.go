// Package simprof is the simulator's wall-clock self-profiling plane:
// it attributes real nanoseconds and allocations to the simulator's own
// hot paths — event-loop dispatch bucketed by the firing callback's
// subsystem, per-sweep-cell wall time and memory deltas in the parallel
// runner, and per-phase wall-vs-sim skew in the migration engine.
//
// Everything else in this repository measures *simulated* quantities;
// simprof is the one plane that reads the host clock. It is strictly
// read-only with respect to the simulation: it never schedules events,
// never mutates simulation state, and no wall-clock reading ever feeds
// a sim-time decision — which is why artifacts (trace/metrics/series)
// are byte-identical with profiling on or off at any worker count.
//
// Like flight, simprof is a dependency-free leaf package (std only):
// simtime, eval and migration all record into it, so it must import
// none of them. Durations are plain int64 nanoseconds read from one
// monotonic base per Profiler.
//
// Every recording type is nil-safe: a nil *Profiler hands out nil
// *LoopProf / *SweepProf / *SkewProf whose methods are no-ops, so the
// disabled path costs one pointer comparison and zero allocations
// (pinned by allocgate_test.go).
package simprof

import (
	"encoding/json"
	"io"
	"os"
	"runtime"
	"sort"
	"sync"
	"time"
)

// ReportKind is the top-level marker of a -simprof-out JSON artifact.
const ReportKind = "dvemig-simprof"

// Profiler owns one profiling session: a monotonic time base plus the
// loop/sweep/skew collectors registered against it. Constructors are
// safe to call from sweep worker goroutines; each returned collector is
// then owned by the cell that requested it (SweepProf additionally
// accepts concurrent CellStart/CellEnd from workers on disjoint
// indices).
type Profiler struct {
	mu     sync.Mutex
	base   time.Time
	stride uint64
	loops  []*LoopProf
	sweeps []*SweepProf
	skews  []*SkewProf
}

// New returns a profiler whose clock starts now. stride selects event-
// loop sampling: every stride-th dispatched event is timed (≤ 1 times
// every event).
func New(stride int) *Profiler {
	if stride < 1 {
		stride = 1
	}
	return &Profiler{base: time.Now(), stride: uint64(stride)}
}

// nowNs is nanoseconds since the profiler's base — a monotonic-clock
// reading (time.Since uses the monotonic part of the base).
func (p *Profiler) nowNs() int64 { return int64(time.Since(p.base)) }

// Loop registers an event-loop collector for one scheduler (one sweep
// cell). Nil-safe: a nil profiler returns a nil collector.
func (p *Profiler) Loop(label string) *LoopProf {
	if p == nil {
		return nil
	}
	lp := &LoopProf{label: label, base: p.base, stride: p.stride,
		buckets: make(map[string]*loopBucket, 16)}
	p.mu.Lock()
	p.loops = append(p.loops, lp)
	p.mu.Unlock()
	return lp
}

// Sweep registers a parallel-runner collector: per-cell wall time and
// ReadMemStats deltas plus per-worker occupancy. requested is the
// worker count the caller asked for, before clamping.
func (p *Profiler) Sweep(label string, requested int) *SweepProf {
	if p == nil {
		return nil
	}
	sp := &SweepProf{label: label, requested: requested, base: p.base}
	p.mu.Lock()
	p.sweeps = append(p.sweeps, sp)
	p.mu.Unlock()
	return sp
}

// Skew registers a migration phase-skew collector (one per cell; the
// source and destination migrators of a cell share it).
func (p *Profiler) Skew(label string) *SkewProf {
	if p == nil {
		return nil
	}
	sk := &SkewProf{label: label, base: p.base,
		phases: make(map[string]*phaseSkew, 12)}
	p.mu.Lock()
	p.skews = append(p.skews, sk)
	p.mu.Unlock()
	return sk
}

// SubsystemOf maps an event name to its attribution bucket: the prefix
// before the first '.' or '/' separator ("netsim.deliver" → "netsim",
// "ctlplane/ctl-1" → "ctlplane"), "other" when the name has no
// separator. Slicing a string allocates nothing, so the hot path stays
// alloc-free.
func SubsystemOf(name string) string {
	for i := 0; i < len(name); i++ {
		if name[i] == '.' || name[i] == '/' {
			if i == 0 {
				return "other"
			}
			return name[:i]
		}
	}
	return "other"
}

// LoopProf attributes event-loop dispatch time: the scheduler calls
// Begin before firing a callback and End after, and the sample lands in
// the bucket of the event name's subsystem. Owned by a single cell
// goroutine — not safe for concurrent use (each scheduler gets its
// own).
type LoopProf struct {
	label   string
	base    time.Time
	stride  uint64
	events  uint64 // all dispatched events
	sampled uint64 // events actually timed
	wallNs  int64  // total timed dispatch wall time
	pendSum uint64 // sum of pending-queue depths at sampled events
	pendMax int
	buckets map[string]*loopBucket
}

type loopBucket struct {
	events uint64
	wallNs int64
}

// Begin marks the start of one event dispatch and returns the token to
// pass to End; -1 means the event is not sampled (stride skip or nil
// receiver) and End will ignore it.
func (lp *LoopProf) Begin() int64 {
	if lp == nil {
		return -1
	}
	lp.events++
	if lp.stride > 1 && lp.events%lp.stride != 0 {
		return -1
	}
	return int64(time.Since(lp.base))
}

// End closes the dispatch opened by Begin: name is the fired event's
// registered name, pending the queue depth after the dispatch.
func (lp *LoopProf) End(t0 int64, name string, pending int) {
	if lp == nil || t0 < 0 {
		return
	}
	d := int64(time.Since(lp.base)) - t0
	lp.sampled++
	lp.wallNs += d
	lp.pendSum += uint64(pending)
	if pending > lp.pendMax {
		lp.pendMax = pending
	}
	key := SubsystemOf(name)
	b := lp.buckets[key]
	if b == nil {
		b = &loopBucket{}
		lp.buckets[key] = b
	}
	b.events++
	b.wallNs += d
}

// Events returns the total number of events dispatched through this
// collector (sampled or not).
func (lp *LoopProf) Events() uint64 {
	if lp == nil {
		return 0
	}
	return lp.events
}

// SweepProf records one parallel sweep: per-cell wall time, worker
// assignment and runtime.MemStats deltas (GC cycles, pause total, heap
// allocation), plus the sweep's own wall window for occupancy math.
// CellStart/CellEnd may run concurrently on worker goroutines as long
// as cell indices are disjoint (the runner guarantees that); Begin and
// End bracket the whole sweep on the caller's goroutine.
type SweepProf struct {
	label     string
	requested int
	base      time.Time
	effective int
	startNs   int64
	endNs     int64
	cells     []sweepCell
	memStart  runtime.MemStats
	memEnd    runtime.MemStats
}

type sweepCell struct {
	set        bool
	worker     int
	startNs    int64
	endNs      int64
	gcStart    uint32
	gcEnd      uint32
	pauseStart uint64
	pauseEnd   uint64
	allocStart uint64
	allocEnd   uint64
}

// Begin opens the sweep window: ncells cells about to run on effective
// workers (after clamping).
func (sp *SweepProf) Begin(ncells, effective int) {
	if sp == nil {
		return
	}
	sp.effective = effective
	sp.cells = make([]sweepCell, ncells)
	runtime.ReadMemStats(&sp.memStart)
	sp.startNs = int64(time.Since(sp.base))
}

// CellStart marks cell i as starting on the given worker.
func (sp *SweepProf) CellStart(i, worker int) {
	if sp == nil {
		return
	}
	c := &sp.cells[i]
	c.set = true
	c.worker = worker
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	c.gcStart, c.pauseStart, c.allocStart = ms.NumGC, ms.PauseTotalNs, ms.TotalAlloc
	c.startNs = int64(time.Since(sp.base))
}

// CellEnd marks cell i as finished. MemStats deltas are process-global:
// with more than one effective worker, concurrent cells' allocations
// and GC cycles overlap and the per-cell numbers are upper bounds.
func (sp *SweepProf) CellEnd(i int) {
	if sp == nil {
		return
	}
	c := &sp.cells[i]
	c.endNs = int64(time.Since(sp.base))
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	c.gcEnd, c.pauseEnd, c.allocEnd = ms.NumGC, ms.PauseTotalNs, ms.TotalAlloc
}

// End closes the sweep window.
func (sp *SweepProf) End() {
	if sp == nil {
		return
	}
	sp.endNs = int64(time.Since(sp.base))
	runtime.ReadMemStats(&sp.memEnd)
}

// SkewProf accumulates per-phase wall-vs-sim time for one cell's
// migrations: each phase transition records the simulated nanoseconds
// the phase took next to the wall nanoseconds the simulator spent
// computing it. A mutex guards the map so a shared collector stays safe
// even if a cell ever fans out.
type SkewProf struct {
	label  string
	base   time.Time
	mu     sync.Mutex
	phases map[string]*phaseSkew
}

type phaseSkew struct {
	count  uint64
	simNs  int64
	wallNs int64
}

// NowNs returns nanoseconds since the profiler base — the wall
// timestamp the migration engine stores per phase track.
func (sk *SkewProf) NowNs() int64 {
	if sk == nil {
		return 0
	}
	return int64(time.Since(sk.base))
}

// Record adds one phase transition: simNs of virtual time elapsed since
// the previous phase against wallNs of host time.
func (sk *SkewProf) Record(phase string, simNs, wallNs int64) {
	if sk == nil {
		return
	}
	sk.mu.Lock()
	ps := sk.phases[phase]
	if ps == nil {
		ps = &phaseSkew{}
		sk.phases[phase] = ps
	}
	ps.count++
	ps.simNs += simNs
	ps.wallNs += wallNs
	sk.mu.Unlock()
}

// Report is the -simprof-out JSON document.
type Report struct {
	Kind       string `json:"kind"`
	Go         string `json:"go"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	CPUs       int    `json:"cpus"`
	WallNs     int64  `json:"wall_ns"`

	// EventLoopTotal merges every registered loop collector: the sweep-
	// wide attribution of dispatch wall time to subsystems.
	EventLoopTotal *LoopReport  `json:"event_loop_total,omitempty"`
	EventLoops     []LoopReport `json:"event_loops,omitempty"`

	Sweeps []SweepReport `json:"sweeps,omitempty"`

	// PhaseSkewTotal merges every skew collector: for each migration
	// phase, simulated time elapsed vs wall time spent computing it.
	PhaseSkewTotal []PhaseSkewReport `json:"phase_skew_total,omitempty"`
}

// LoopReport is one event loop's attribution: totals, pending-queue
// stats and the per-subsystem buckets sorted by wall time (descending).
type LoopReport struct {
	Label          string         `json:"label,omitempty"`
	Events         uint64         `json:"events"`
	Sampled        uint64         `json:"sampled"`
	WallNs         int64          `json:"wall_ns"`
	PendingMax     int            `json:"pending_max"`
	PendingAvg     float64        `json:"pending_avg"`
	AttributedFrac float64        `json:"attributed_frac"`
	Buckets        []BucketReport `json:"buckets"`
}

// BucketReport is one subsystem's share of an event loop.
type BucketReport struct {
	Subsystem string  `json:"subsystem"`
	Events    uint64  `json:"events"`
	WallNs    int64   `json:"wall_ns"`
	Frac      float64 `json:"frac"`
}

// SweepReport is one parallel sweep: worker occupancy against the sweep
// wall window plus process-global memory deltas.
type SweepReport struct {
	Label            string         `json:"label"`
	WorkersRequested int            `json:"workers_requested"`
	WorkersEffective int            `json:"workers_effective"`
	Cells            int            `json:"cells"`
	WallNs           int64          `json:"wall_ns"`
	GCCycles         uint32         `json:"gc_cycles"`
	GCPauseNs        uint64         `json:"gc_pause_ns"`
	HeapGrowthBytes  int64          `json:"heap_growth_bytes"`
	AllocBytes       uint64         `json:"alloc_bytes"`
	Workers          []WorkerReport `json:"workers"`
	CellStats        []CellReport   `json:"cell_stats"`
}

// WorkerReport is one worker's busy/idle split over a sweep: BusyNs
// sums its cells' wall time, IdleNs is the sweep window minus that, and
// Occupancy their ratio.
type WorkerReport struct {
	Worker    int     `json:"worker"`
	Cells     int     `json:"cells"`
	BusyNs    int64   `json:"busy_ns"`
	IdleNs    int64   `json:"idle_ns"`
	Occupancy float64 `json:"occupancy"`
}

// CellReport is one sweep cell's wall time and memory deltas.
type CellReport struct {
	Index      int    `json:"index"`
	Worker     int    `json:"worker"`
	WallNs     int64  `json:"wall_ns"`
	GCCycles   uint32 `json:"gc_cycles"`
	GCPauseNs  uint64 `json:"gc_pause_ns"`
	AllocBytes uint64 `json:"alloc_bytes"`
}

// PhaseSkewReport is one migration phase's aggregate wall-vs-sim skew.
// WallPerSim > 1 means the simulator spends more host time than the
// phase covers in virtual time.
type PhaseSkewReport struct {
	Phase      string  `json:"phase"`
	Count      uint64  `json:"count"`
	SimNs      int64   `json:"sim_ns"`
	WallNs     int64   `json:"wall_ns"`
	WallPerSim float64 `json:"wall_per_sim"`
}

func (lp *LoopProf) report() LoopReport {
	r := LoopReport{Label: lp.label, Events: lp.events, Sampled: lp.sampled,
		WallNs: lp.wallNs, PendingMax: lp.pendMax}
	if lp.sampled > 0 {
		r.PendingAvg = float64(lp.pendSum) / float64(lp.sampled)
	}
	var otherNs int64
	for name, b := range lp.buckets {
		frac := 0.0
		if lp.wallNs > 0 {
			frac = float64(b.wallNs) / float64(lp.wallNs)
		}
		r.Buckets = append(r.Buckets, BucketReport{
			Subsystem: name, Events: b.events, WallNs: b.wallNs, Frac: frac})
		if name == "other" {
			otherNs = b.wallNs
		}
	}
	sortBuckets(r.Buckets)
	if lp.wallNs > 0 {
		r.AttributedFrac = float64(lp.wallNs-otherNs) / float64(lp.wallNs)
	}
	return r
}

func sortBuckets(bs []BucketReport) {
	sort.Slice(bs, func(i, j int) bool {
		if bs[i].WallNs != bs[j].WallNs {
			return bs[i].WallNs > bs[j].WallNs
		}
		return bs[i].Subsystem < bs[j].Subsystem
	})
}

func (sp *SweepProf) report() SweepReport {
	r := SweepReport{
		Label:            sp.label,
		WorkersRequested: sp.requested,
		WorkersEffective: sp.effective,
		Cells:            len(sp.cells),
		WallNs:           sp.endNs - sp.startNs,
		GCCycles:         sp.memEnd.NumGC - sp.memStart.NumGC,
		GCPauseNs:        sp.memEnd.PauseTotalNs - sp.memStart.PauseTotalNs,
		HeapGrowthBytes:  int64(sp.memEnd.HeapAlloc) - int64(sp.memStart.HeapAlloc),
		AllocBytes:       sp.memEnd.TotalAlloc - sp.memStart.TotalAlloc,
	}
	busy := map[int]*WorkerReport{}
	for i := range sp.cells {
		c := &sp.cells[i]
		if !c.set {
			continue
		}
		r.CellStats = append(r.CellStats, CellReport{
			Index:      i,
			Worker:     c.worker,
			WallNs:     c.endNs - c.startNs,
			GCCycles:   c.gcEnd - c.gcStart,
			GCPauseNs:  c.pauseEnd - c.pauseStart,
			AllocBytes: c.allocEnd - c.allocStart,
		})
		w := busy[c.worker]
		if w == nil {
			w = &WorkerReport{Worker: c.worker}
			busy[c.worker] = w
		}
		w.Cells++
		w.BusyNs += c.endNs - c.startNs
	}
	ids := make([]int, 0, len(busy))
	for id := range busy {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		w := busy[id]
		if r.WallNs > w.BusyNs {
			w.IdleNs = r.WallNs - w.BusyNs
		}
		if r.WallNs > 0 {
			w.Occupancy = float64(w.BusyNs) / float64(r.WallNs)
		}
		r.Workers = append(r.Workers, *w)
	}
	return r
}

// Report assembles the profiling session into its JSON document. Safe
// to call on a nil profiler (returns an empty, well-formed report);
// call it after the profiled work completed — collectors are not
// synchronized against in-flight recording.
func (p *Profiler) Report() *Report {
	r := &Report{
		Kind:       ReportKind,
		Go:         runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		CPUs:       runtime.NumCPU(),
	}
	if p == nil {
		return r
	}
	p.mu.Lock()
	loops := append([]*LoopProf(nil), p.loops...)
	sweeps := append([]*SweepProf(nil), p.sweeps...)
	skews := append([]*SkewProf(nil), p.skews...)
	p.mu.Unlock()
	r.WallNs = p.nowNs()

	if len(loops) > 0 {
		total := LoopReport{Label: "total"}
		merged := map[string]*BucketReport{}
		var pendSum uint64
		for _, lp := range loops {
			lr := lp.report()
			r.EventLoops = append(r.EventLoops, lr)
			total.Events += lr.Events
			total.Sampled += lr.Sampled
			total.WallNs += lr.WallNs
			pendSum += lp.pendSum
			if lr.PendingMax > total.PendingMax {
				total.PendingMax = lr.PendingMax
			}
			for _, b := range lr.Buckets {
				mb := merged[b.Subsystem]
				if mb == nil {
					mb = &BucketReport{Subsystem: b.Subsystem}
					merged[b.Subsystem] = mb
				}
				mb.Events += b.Events
				mb.WallNs += b.WallNs
			}
		}
		if total.Sampled > 0 {
			total.PendingAvg = float64(pendSum) / float64(total.Sampled)
		}
		var otherNs int64
		for name, b := range merged {
			if total.WallNs > 0 {
				b.Frac = float64(b.WallNs) / float64(total.WallNs)
			}
			if name == "other" {
				otherNs = b.WallNs
			}
			total.Buckets = append(total.Buckets, *b)
		}
		sortBuckets(total.Buckets)
		if total.WallNs > 0 {
			total.AttributedFrac = float64(total.WallNs-otherNs) / float64(total.WallNs)
		}
		r.EventLoopTotal = &total
	}

	for _, sp := range sweeps {
		r.Sweeps = append(r.Sweeps, sp.report())
	}

	if len(skews) > 0 {
		merged := map[string]*PhaseSkewReport{}
		for _, sk := range skews {
			sk.mu.Lock()
			for phase, ps := range sk.phases {
				mp := merged[phase]
				if mp == nil {
					mp = &PhaseSkewReport{Phase: phase}
					merged[phase] = mp
				}
				mp.Count += ps.count
				mp.SimNs += ps.simNs
				mp.WallNs += ps.wallNs
			}
			sk.mu.Unlock()
		}
		names := make([]string, 0, len(merged))
		for name := range merged {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			mp := merged[name]
			if mp.SimNs > 0 {
				mp.WallPerSim = float64(mp.WallNs) / float64(mp.SimNs)
			}
			r.PhaseSkewTotal = append(r.PhaseSkewTotal, *mp)
		}
	}
	return r
}

// WriteJSON writes the report (indented) to w.
func (p *Profiler) WriteJSON(w io.Writer) error {
	data, err := json.MarshalIndent(p.Report(), "", "  ")
	if err != nil {
		return err
	}
	_, err = w.Write(append(data, '\n'))
	return err
}

// WriteFile writes the report to path — the -simprof-out plumbing
// shared by the commands. No-op on a nil profiler or empty path.
func (p *Profiler) WriteFile(path string) error {
	if p == nil || path == "" {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := p.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
