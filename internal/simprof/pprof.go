package simprof

import (
	"os"
	"runtime"
	"runtime/pprof"
)

// StartCPUProfile begins a pprof CPU profile at path and returns the
// function that stops it and closes the file. An empty path is a no-op
// (the returned stop is still non-nil) — the -cpuprofile flag plumbing
// shared by the commands.
func StartCPUProfile(path string) (stop func() error, err error) {
	if path == "" {
		return func() error { return nil }, nil
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return nil, err
	}
	return func() error {
		pprof.StopCPUProfile()
		return f.Close()
	}, nil
}

// Session bundles the -cpuprofile / -memprofile / -simprof-out plumbing
// every command shares: Open starts the CPU profile and (when a simprof
// path is given) creates the Profiler; Close stops the CPU profile,
// writes the heap profile and the simprof report. All three paths are
// individually optional.
type Session struct {
	// Prof is non-nil only when a -simprof-out path was given; callers
	// pass it (or its nil) straight into the eval config.
	Prof *Profiler

	cpuStop     func() error
	memPath     string
	simprofPath string
}

// OpenSession starts a profiling session for a command run. stride is
// the event-loop sampling stride handed to New.
func OpenSession(cpuPath, memPath, simprofPath string, stride int) (*Session, error) {
	s := &Session{memPath: memPath, simprofPath: simprofPath}
	if simprofPath != "" {
		s.Prof = New(stride)
	}
	stop, err := StartCPUProfile(cpuPath)
	if err != nil {
		return nil, err
	}
	s.cpuStop = stop
	return s, nil
}

// Close finishes the session: stops the CPU profile, then writes the
// heap profile and the simprof report. The first error wins but every
// step runs.
func (s *Session) Close() error {
	if s == nil {
		return nil
	}
	err := s.cpuStop()
	if e := WriteHeapProfile(s.memPath); err == nil {
		err = e
	}
	if e := s.Prof.WriteFile(s.simprofPath); err == nil {
		err = e
	}
	return err
}

// WriteHeapProfile writes a pprof heap profile to path after a full GC
// (so the profile reflects live objects, not collectable garbage). An
// empty path is a no-op — the -memprofile flag plumbing.
func WriteHeapProfile(path string) error {
	if path == "" {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	runtime.GC()
	if err := pprof.WriteHeapProfile(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
