package ctlplane

import (
	"fmt"

	"dvemig/internal/simtime"
)

// AuditLive checks the control plane's safety invariants against the
// live object stores — callable mid-run at every sample boundary, not
// just at teardown, so a violation surfaces inside the window it
// happened in. The checks are chosen to hold at *any* instant of a
// healthy run (unlike the teardown audits, which may only hold at
// quiescence):
//
//   - split-brain: two live controllers must never both act as primary
//     under the same epoch (different epochs are a legal transient
//     during a partition — the higher epoch fences the lower on the
//     next hello);
//   - duplicate in-flight: the authoritative store must never drive
//     two non-terminal objects for one service;
//   - stuck objects: every object is bounded by deadline + cancel
//     grace; one still non-terminal slack past that budget means the
//     reconcile loop lost it.
//
// Violation strings are stable across windows (no ever-growing ages),
// so callers can deduplicate a persisting violation by message.
func AuditLive(a, b *Controller, slack simtime.Duration) []string {
	var v []string
	if a != nil && b != nil && a.Primary && b.Primary &&
		a.Node.Alive && b.Node.Alive && a.epoch == b.epoch {
		v = append(v, fmt.Sprintf("split-brain: both controllers primary at epoch %d", a.epoch))
	}
	auth := authoritative(a, b)
	if auth == nil {
		return v // takeover blind window: no live primary to audit against
	}
	now := auth.Node.Sched.Now()
	seen := make(map[string]uint64, len(auth.inflight))
	for _, id := range auth.order {
		o := auth.objects[id]
		if o == nil || o.Terminal() {
			continue
		}
		name := o.Spec.Name
		if prev, dup := seen[name]; dup {
			v = append(v, fmt.Sprintf("duplicate in-flight objects for %q: #%d and #%d", name, prev, id))
		} else {
			seen[name] = id
		}
		budget := auth.Config.deadline(o) + auth.Config.CancelGrace + slack
		if now-o.Status.SubmitAt > budget {
			v = append(v, fmt.Sprintf("object #%d (%q) stuck non-terminal past submit+%v", id, name, budget))
		}
	}
	return v
}

// authoritative picks the controller whose store reflects cluster
// truth right now: the live primary with the highest epoch. Nil during
// a takeover blind window (primary dead, standby not yet promoted).
func authoritative(cs ...*Controller) *Controller {
	var pick *Controller
	for _, c := range cs {
		if c != nil && c.Primary && c.Node.Alive && (pick == nil || c.epoch > pick.epoch) {
			pick = c
		}
	}
	return pick
}
