package ctlplane

import (
	"strings"
	"testing"
	"time"

	"dvemig/internal/simtime"
)

// auditHas reports whether any violation contains substr.
func auditHas(vs []string, substr string) bool {
	for _, v := range vs {
		if strings.Contains(v, substr) {
			return true
		}
	}
	return false
}

func TestAuditLiveHealthyRun(t *testing.T) {
	e := newCtlEnv(t, 2, true, fastCtlConfig())
	p := e.worker(0, "svc")
	if _, err := e.ctl.Submit(e.spec(p, 0, 1)); err != nil {
		t.Fatal(err)
	}
	// Audit at every 100ms boundary while the object runs to completion.
	for i := 0; i < 100; i++ {
		e.c.Sched.RunFor(100 * simtime.Duration(time.Millisecond))
		if vs := AuditLive(e.ctl, e.standby, time.Second); len(vs) > 0 {
			t.Fatalf("healthy run flagged at step %d: %v", i, vs)
		}
	}
}

func TestAuditLiveSplitBrainSameEpoch(t *testing.T) {
	e := newCtlEnv(t, 1, true, fastCtlConfig())
	e.c.Sched.RunFor(simtime.Duration(time.Second))
	// Forge the forbidden state: both claim primacy at one epoch.
	e.standby.Primary = true
	e.standby.epoch = e.ctl.epoch
	vs := AuditLive(e.ctl, e.standby, time.Second)
	if !auditHas(vs, "split-brain") {
		t.Fatalf("same-epoch dual primary not flagged: %v", vs)
	}
	// Different epochs are a legal fencing transient, not split-brain.
	e.standby.epoch = e.ctl.epoch + 1
	if vs := AuditLive(e.ctl, e.standby, time.Second); auditHas(vs, "split-brain") {
		t.Fatalf("cross-epoch dual primary wrongly flagged: %v", vs)
	}
}

func TestAuditLiveDuplicateInflight(t *testing.T) {
	e := newCtlEnv(t, 2, false, fastCtlConfig())
	p := e.worker(0, "svc")
	a, err := e.ctl.Submit(e.spec(p, 0, 1))
	if err != nil {
		t.Fatal(err)
	}
	b, err := e.ctl.Submit(e.spec(p, 0, 1))
	if err != nil {
		t.Fatal(err)
	}
	// The admission queue legally holds both; a second *dispatched*
	// object for one service is the invariant breach. Forge it.
	a.Status.State = Running
	b.Status.State = Running
	vs := AuditLive(e.ctl, nil, time.Second)
	if !auditHas(vs, "duplicate in-flight") {
		t.Fatalf("duplicate in-flight not flagged: %v", vs)
	}
}

func TestAuditLiveStuckObject(t *testing.T) {
	cfg := fastCtlConfig()
	cfg.Deadline = 2 * time.Second
	cfg.CancelGrace = time.Second
	e := newCtlEnv(t, 2, false, cfg)
	p := e.worker(0, "svc")
	o, err := e.ctl.Submit(e.spec(p, 0, 1))
	if err != nil {
		t.Fatal(err)
	}
	// Freeze the object outside the reconcile loop so nothing ever
	// drives it terminal, then advance past deadline+grace+slack.
	e.ctl.Stop()
	for _, a := range e.agents {
		a.Stop()
	}
	e.c.Sched.RunFor(simtime.Duration(10 * time.Second))
	if o.Terminal() {
		t.Skip("object settled despite stopped controller")
	}
	vs := AuditLive(e.ctl, nil, time.Second)
	if !auditHas(vs, "stuck non-terminal") {
		t.Fatalf("stuck object not flagged: %v", vs)
	}
	// The message is stable across windows (no growing age) so callers
	// can deduplicate a persisting violation.
	vs2 := AuditLive(e.ctl, nil, time.Second)
	if len(vs) != len(vs2) || vs[0] != vs2[0] {
		t.Fatalf("stuck message not stable: %q vs %q", vs, vs2)
	}
}

func TestAuditLiveNoPrimaryBlindWindow(t *testing.T) {
	e := newCtlEnv(t, 1, true, fastCtlConfig())
	e.ctl.Node.Alive = false
	// Primary dead, standby not yet promoted: the object checks have no
	// authoritative store — the audit must stay silent, not flag.
	if vs := AuditLive(e.ctl, e.standby, time.Second); len(vs) != 0 {
		t.Fatalf("blind window flagged: %v", vs)
	}
}
