package ctlplane

import (
	"fmt"
	"testing"
	"time"

	"dvemig/internal/migration"
)

// TestControllerCrashMatrix kills the primary controller's node while a
// migration object sits in each pre-terminal lifecycle state, for every
// strategy. The standby must take over under a bumped epoch and drive
// the object to a terminal state — and the agents' dedup log must keep
// the engine at exactly one migration: a crash can delay an object, but
// never double-drive it.
func TestControllerCrashMatrix(t *testing.T) {
	states := []State{Pending, Scheduling, Running}
	for _, strat := range migration.StrategyNames() {
		for _, st := range states {
			t.Run(fmt.Sprintf("%s_%s", strat, st), func(t *testing.T) {
				e := newCtlEnv(t, 2, true, fastCtlConfig())
				p := e.worker(0, "zone")
				spec := e.spec(p, 0, 1)
				spec.Strategy = strat
				o, err := e.ctl.Submit(spec)
				if err != nil {
					t.Fatal(err)
				}
				crash := func() {
					if e.ctl.Node.Alive {
						e.ctl.Node.Fail(e.c)
						e.ctl.Stop()
					}
				}
				if st == Pending {
					// Before the first reconcile tick: only the Pending
					// replica made it to the standby.
					e.c.Sched.After(10*time.Millisecond, "test/crash", crash)
				} else {
					target := st
					e.ctl.OnTransition = func(obj *Object, _, to State) {
						if obj.Spec.ID == o.Spec.ID && to == target {
							// Mid-transition: the stack goes down before this
							// very transition can replicate, so the standby
							// resumes from the previous state.
							crash()
						}
					}
				}
				e.c.Sched.RunFor(60 * time.Second)

				if e.standby.Takeovers != 1 {
					t.Fatalf("takeovers = %d, want 1", e.standby.Takeovers)
				}
				if e.standby.Epoch() <= 1 {
					t.Fatalf("standby epoch = %d, want > 1", e.standby.Epoch())
				}
				got := e.standby.Get(o.Spec.ID)
				if got == nil {
					t.Fatal("object lost across takeover")
				}
				if got.Status.State != Succeeded {
					t.Fatalf("object = %s %v", got.Status.State, got.Status.Cause)
				}
				// Exactly one engine migration end to end: one agent start,
				// one completed outbound, zero aborted, and the process
				// arrived exactly once.
				if e.agents[0].Started != 1 {
					t.Fatalf("agent drove %d migrations, want 1", e.agents[0].Started)
				}
				if n := len(e.migrators[0].Completed); n != 1 {
					t.Fatalf("engine completed %d migrations, want 1", n)
				}
				if n := len(e.migrators[0].Aborted); n != 0 {
					t.Fatalf("engine aborted %d migrations, want 0", n)
				}
				if e.c.Nodes[1].NumProcesses() != 1 || e.c.Nodes[0].NumProcesses() != 0 {
					t.Fatalf("process placement wrong: src=%d dst=%d",
						e.c.Nodes[0].NumProcesses(), e.c.Nodes[1].NumProcesses())
				}
			})
		}
	}
}
