// Package ctlplane is the declarative migration control plane: a
// Migration object with a spec/status lifecycle (Pending → Scheduling →
// Running → Succeeded / Failed / Aborted), a reconcile controller that
// watches desired state and drives the migration engine through
// per-node agents, and first-class robustness policy — admission checks
// against ownership epochs, per-object deadlines, bounded retry with
// seed-deterministic exponential backoff + jitter, cancel as an API
// verb, and parking in Failed with a recorded cause chain instead of
// hot-looping.
//
// The controller is itself a simulated service: it runs on a node,
// its run/cancel/watch-event messages are UDP datagrams over
// internal/netsim, so partitions, faults and crashes apply to the
// control plane exactly as to the data plane. A standby controller
// receives a replicated object store and heartbeats; when the primary
// goes silent it takes over under a bumped controller epoch, and the
// agents' (object, attempt) dedup log plus the epoch fence guarantee
// no migration is ever driven twice.
package ctlplane

import (
	"encoding/binary"
	"fmt"

	"dvemig/internal/netsim"
	"dvemig/internal/simtime"
)

// State is a Migration object's lifecycle state.
type State int

// Lifecycle: Pending (submitted, not yet admitted) → Scheduling
// (admitted, dispatching to the source agent) → Running (the engine is
// migrating) → one of the terminal states. Aborted is the terminal for
// explicit cancels; Failed for admission rejects, exhausted retries and
// deadlines; Succeeded for a completed migration.
const (
	Pending State = iota
	Scheduling
	Running
	Succeeded
	Failed
	Aborted
)

func (s State) String() string {
	switch s {
	case Pending:
		return "Pending"
	case Scheduling:
		return "Scheduling"
	case Running:
		return "Running"
	case Succeeded:
		return "Succeeded"
	case Failed:
		return "Failed"
	case Aborted:
		return "Aborted"
	}
	return fmt.Sprintf("State(%d)", int(s))
}

// Terminal reports whether the state is final.
func (s State) Terminal() bool { return s == Succeeded || s == Failed || s == Aborted }

// Spec is the desired state: migrate the named process from Source to
// Dest with the given strategy and robustness budget. The controller
// never mutates a Spec after Submit.
type Spec struct {
	// ID is assigned by Submit (unique per controller lineage).
	ID uint64
	// PID / Name identify the process; Name is also the ownership-epoch
	// key the admission check fences on.
	PID  int
	Name string
	// Source is the node the process currently runs on (its agent
	// drives the migration); Dest is where it should go.
	Source netsim.Addr
	Dest   netsim.Addr
	// Strategy is the memory-movement strategy name ("precopy",
	// "postcopy", "hybrid"; empty = the agent's default).
	Strategy string
	// Epoch, when nonzero, is the ownership epoch the submitter believes
	// the service has; admission rejects the object if the watermark has
	// moved past it (the submitter's view is stale).
	Epoch uint64
	// Deadline bounds the object end to end (submit → terminal), across
	// every retry. Zero uses the controller default.
	Deadline simtime.Duration
	// MaxRetries bounds re-dispatches after an aborted attempt
	// (negative = controller default; 0 = never retry).
	MaxRetries int
}

// Status is the observed state the controller maintains.
type Status struct {
	State State
	// Attempt is the current (1-based) migration attempt; Retries counts
	// attempts beyond the first.
	Attempt int
	Retries int
	// Cause is the recorded cause chain, oldest first — every admission
	// verdict, abort reason, retry decision and deadline event appends
	// here, so a parked object explains itself.
	Cause []string
	// CancelRequested marks an in-flight Cancel verb.
	CancelRequested bool
	SubmitAt        simtime.Time
	DoneAt          simtime.Time
}

// Object is one Migration: desired Spec plus observed Status.
type Object struct {
	Spec   Spec
	Status Status

	// Controller-runtime fields (not replicated; the standby rebuilds
	// them on takeover).
	nextAt     simtime.Time // no dispatch before this instant (backoff gate)
	lastSent   simtime.Time // last opRun send, for the level-triggered probe
	dispatched int          // opRun datagrams sent for the current attempt
	deadlined  bool         // the pending cancel is deadline-triggered → park Failed, not Aborted
	// cancelRefused: the engine reported the migration past its commit
	// fence — stop cancelling and wait for the outcome event instead.
	cancelRefused bool
}

// Terminal reports whether the object reached a final state.
func (o *Object) Terminal() bool { return o.Status.State.Terminal() }

// addCause appends one cause-chain entry.
func (o *Object) addCause(format string, args ...any) {
	o.Status.Cause = append(o.Status.Cause, fmt.Sprintf(format, args...))
}

// --- wire codec -----------------------------------------------------------
//
// The object codec is the replication payload (primary → standby) and a
// fuzz surface: it must reject truncated and corrupt frames without
// panicking, and every accepted frame must roundtrip.

const objCodecVersion = 1

// maxWireStrings bounds decoded string/slice lengths so a corrupt
// length field cannot allocate unbounded memory.
const (
	maxWireName  = 256
	maxWireCause = 64
)

// EncodeObject serializes spec+status (not the runtime fields).
func EncodeObject(o *Object) []byte {
	name := o.Spec.Name
	if len(name) > maxWireName {
		name = name[:maxWireName]
	}
	strat := o.Spec.Strategy
	if len(strat) > 255 {
		strat = strat[:255]
	}
	b := make([]byte, 0, 96+len(name)+len(strat))
	b = append(b, objCodecVersion)
	b = binary.BigEndian.AppendUint64(b, o.Spec.ID)
	b = binary.BigEndian.AppendUint32(b, uint32(o.Spec.PID))
	b = binary.BigEndian.AppendUint32(b, uint32(o.Spec.Source))
	b = binary.BigEndian.AppendUint32(b, uint32(o.Spec.Dest))
	b = binary.BigEndian.AppendUint64(b, o.Spec.Epoch)
	b = binary.BigEndian.AppendUint64(b, uint64(o.Spec.Deadline))
	b = binary.BigEndian.AppendUint32(b, uint32(int32(o.Spec.MaxRetries)))
	b = append(b, byte(o.Status.State))
	b = binary.BigEndian.AppendUint32(b, uint32(o.Status.Attempt))
	b = binary.BigEndian.AppendUint32(b, uint32(o.Status.Retries))
	if o.Status.CancelRequested {
		b = append(b, 1)
	} else {
		b = append(b, 0)
	}
	b = binary.BigEndian.AppendUint64(b, uint64(o.Status.SubmitAt))
	b = binary.BigEndian.AppendUint64(b, uint64(o.Status.DoneAt))
	b = append(b, byte(len(strat)))
	b = append(b, strat...)
	b = binary.BigEndian.AppendUint16(b, uint16(len(name)))
	b = append(b, name...)
	causes := o.Status.Cause
	if len(causes) > maxWireCause {
		causes = causes[len(causes)-maxWireCause:]
	}
	b = binary.BigEndian.AppendUint16(b, uint16(len(causes)))
	for _, cz := range causes {
		if len(cz) > 512 {
			cz = cz[:512]
		}
		b = binary.BigEndian.AppendUint16(b, uint16(len(cz)))
		b = append(b, cz...)
	}
	return b
}

// DecodeObject parses an EncodeObject frame.
func DecodeObject(b []byte) (*Object, error) {
	d := wireReader{b: b}
	if v := d.u8(); v != objCodecVersion {
		return nil, fmt.Errorf("ctlplane: object codec version %d", v)
	}
	o := &Object{}
	o.Spec.ID = d.u64()
	o.Spec.PID = int(d.u32())
	o.Spec.Source = netsim.Addr(d.u32())
	o.Spec.Dest = netsim.Addr(d.u32())
	o.Spec.Epoch = d.u64()
	o.Spec.Deadline = simtime.Duration(d.u64())
	o.Spec.MaxRetries = int(int32(d.u32()))
	st := State(d.u8())
	o.Status.Attempt = int(d.u32())
	o.Status.Retries = int(d.u32())
	o.Status.CancelRequested = d.u8() == 1
	o.Status.SubmitAt = simtime.Time(d.u64())
	o.Status.DoneAt = simtime.Time(d.u64())
	o.Spec.Strategy = d.str(int(d.u8()))
	o.Spec.Name = d.str(int(d.u16()))
	nCause := int(d.u16())
	if nCause > maxWireCause {
		return nil, fmt.Errorf("ctlplane: %d cause entries (max %d)", nCause, maxWireCause)
	}
	for i := 0; i < nCause; i++ {
		o.Status.Cause = append(o.Status.Cause, d.str(int(d.u16())))
	}
	if d.err != nil {
		return nil, d.err
	}
	if d.off != len(b) {
		return nil, fmt.Errorf("ctlplane: %d trailing bytes", len(b)-d.off)
	}
	if st < Pending || st > Aborted {
		return nil, fmt.Errorf("ctlplane: invalid state %d", int(st))
	}
	o.Status.State = st
	if len(o.Spec.Name) > maxWireName {
		return nil, fmt.Errorf("ctlplane: name too long")
	}
	return o, nil
}

// wireReader is a bounds-checked big-endian cursor; the first short
// read poisons it and every later read returns zero.
type wireReader struct {
	b   []byte
	off int
	err error
}

func (d *wireReader) need(n int) bool {
	if d.err != nil {
		return false
	}
	if d.off+n > len(d.b) {
		d.err = fmt.Errorf("ctlplane: truncated frame (want %d bytes at %d, have %d)", n, d.off, len(d.b))
		return false
	}
	return true
}

func (d *wireReader) u8() byte {
	if !d.need(1) {
		return 0
	}
	v := d.b[d.off]
	d.off++
	return v
}

func (d *wireReader) u16() uint16 {
	if !d.need(2) {
		return 0
	}
	v := binary.BigEndian.Uint16(d.b[d.off:])
	d.off += 2
	return v
}

func (d *wireReader) u32() uint32 {
	if !d.need(4) {
		return 0
	}
	v := binary.BigEndian.Uint32(d.b[d.off:])
	d.off += 4
	return v
}

func (d *wireReader) u64() uint64 {
	if !d.need(8) {
		return 0
	}
	v := binary.BigEndian.Uint64(d.b[d.off:])
	d.off += 8
	return v
}

func (d *wireReader) str(n int) string {
	if n < 0 || n > 1<<16 {
		if d.err == nil {
			d.err = fmt.Errorf("ctlplane: bad string length %d", n)
		}
		return ""
	}
	if !d.need(n) {
		return ""
	}
	v := string(d.b[d.off : d.off+n])
	d.off += n
	return v
}
