package ctlplane

import (
	"fmt"

	"dvemig/internal/lb"
	"dvemig/internal/migration"
	"dvemig/internal/netsim"
	"dvemig/internal/netstack"
	"dvemig/internal/obs"
	"dvemig/internal/proc"
)

// Agent is the per-node control-plane agent: it receives run/cancel
// directives from the controller, performs the node-local admission
// checks (process present and running, ownership epoch not stale),
// takes the lb conductor's migration slot when one is attached, drives
// the migration engine, and reports watch events back.
//
// Exactly-once: every (object, attempt) pair is recorded in a dedup
// log. A re-sent or replayed run directive — a controller probe, a
// duplicated datagram, a standby resuming after takeover — answers
// with the recorded outcome instead of driving the engine again.
// Controller fencing: directives carry the controller epoch; anything
// below the agent's watermark is refused with a stale-ctl event, so a
// superseded primary can never race the standby that replaced it.
type Agent struct {
	Node *proc.Node
	Mig  *migration.Migrator
	// Cond, when set, is the node's lb conductor: the agent claims its
	// one-migration-at-a-time slot for the duration of each attempt, so
	// the conductor's own balancing and the control plane never drive
	// the same node concurrently. Released synchronously in the
	// migration's done callback — early aborts included.
	Cond *lb.Conductor

	sock     *netstack.UDPSocket
	ctlEpoch uint64
	ctlAddr  netsim.Addr
	runs     map[uint64]*agentRun

	// Started counts migrations actually handed to the engine; Deduped
	// counts run directives answered from the dedup log; StaleCtl
	// counts directives refused by the controller-epoch fence; Rejected
	// counts admission refusals. The soak audit sums these across
	// agents: Started must equal the number of distinct (object,
	// attempt) pairs that ever reached the engine.
	Started  uint64
	Deduped  uint64
	StaleCtl uint64
	Rejected uint64
}

// agentRun is the dedup log entry for one object on this agent.
type agentRun struct {
	attempt uint32
	pid     int
	name    string
	done    bool
	kind    byte // terminal event kind once done
	reason  string
	locked  bool // holds the conductor's migration slot
}

// NewAgent starts the agent service on a node that runs a migrator.
func NewAgent(n *proc.Node, mig *migration.Migrator, cond *lb.Conductor) (*Agent, error) {
	a := &Agent{Node: n, Mig: mig, Cond: cond, runs: make(map[uint64]*agentRun)}
	a.sock = netstack.NewUDPSocket(n.Stack)
	if err := a.sock.Bind(n.LocalIP, AgentPort); err != nil {
		return nil, fmt.Errorf("ctlplane agent: %w", err)
	}
	a.sock.OnReadable = a.serve
	return a, nil
}

// Stop closes the agent's socket.
func (a *Agent) Stop() { a.sock.Close() }

func (a *Agent) serve() {
	for {
		dg, ok := a.sock.Recv()
		if !ok {
			return
		}
		if len(dg.Payload) == 0 {
			continue
		}
		switch dg.Payload[0] {
		case opRun:
			if m, err := decodeRunMsg(dg.Payload); err == nil {
				a.handleRun(dg.SrcIP, m)
			}
		case opCancel:
			if m, err := decodeCancelMsg(dg.Payload); err == nil {
				a.handleCancel(dg.SrcIP, m)
			}
		}
	}
}

// fence ratchets the agent's controller-epoch watermark. A directive
// below the watermark is answered (to its sender, not the current
// controller) with a stale-ctl event so a partitioned-away ex-primary
// learns it was superseded and demotes itself.
func (a *Agent) fence(from netsim.Addr, ctlEpoch, objID uint64, attempt uint32) bool {
	if ctlEpoch < a.ctlEpoch {
		a.StaleCtl++
		ev := eventMsg{CtlEpoch: a.ctlEpoch, ObjID: objID, Attempt: attempt, Kind: evStaleCtl}
		_ = a.sock.SendTo(from, CtlPort, ev.encode())
		return false
	}
	a.ctlEpoch = ctlEpoch
	a.ctlAddr = from
	return true
}

// event reports a watch event to the current controller, stamped with
// the agent's controller-epoch watermark and the service's current
// ownership epoch.
func (a *Agent) event(objID uint64, attempt uint32, kind byte, name, detail string) {
	ev := eventMsg{CtlEpoch: a.ctlEpoch, ObjID: objID, Attempt: attempt,
		Kind: kind, SvcEpoch: a.Mig.Epochs.Current(name), Detail: detail}
	_ = a.sock.SendTo(a.ctlAddr, CtlPort, ev.encode())
}

// procByPID finds the running process, if it lives here.
func (a *Agent) procByPID(pid int) *proc.Process {
	for _, p := range a.Node.Processes() {
		if p.PID == pid {
			return p
		}
	}
	return nil
}

func (a *Agent) handleRun(from netsim.Addr, m runMsg) {
	if !a.fence(from, m.CtlEpoch, m.ObjID, m.Attempt) {
		return
	}
	if r := a.runs[m.ObjID]; r != nil {
		switch {
		case r.attempt == m.Attempt && r.done:
			// Replay of a decided attempt: answer with the recorded
			// outcome — the exactly-once core.
			a.Deduped++
			a.event(m.ObjID, r.attempt, r.kind, r.name, r.reason)
			return
		case r.attempt == m.Attempt:
			// Probe of the in-flight attempt: it is running.
			a.Deduped++
			a.event(m.ObjID, r.attempt, evAccepted, r.name, "")
			return
		case !r.done:
			// A different attempt while one is still in flight: refuse —
			// driving both would double-migrate the process.
			a.event(m.ObjID, m.Attempt, evBusy, r.name, "another attempt in flight")
			return
		case m.Attempt < r.attempt:
			// Stale duplicate of a superseded attempt; drop.
			a.Deduped++
			return
		}
	}
	// Fresh attempt: admission before anything moves.
	p := a.procByPID(int(m.PID))
	switch {
	case p == nil || p.State != proc.ProcRunning:
		a.Rejected++
		a.event(m.ObjID, m.Attempt, evRejected, m.Name,
			fmt.Sprintf("admission: process %d not running on %s", m.PID, a.Node.Name))
		return
	case m.Name != "" && p.Name != m.Name:
		a.Rejected++
		a.event(m.ObjID, m.Attempt, evRejected, m.Name,
			fmt.Sprintf("admission: pid %d is %q, not %q", m.PID, p.Name, m.Name))
		return
	case m.Dest == a.Node.LocalIP:
		a.Rejected++
		a.event(m.ObjID, m.Attempt, evRejected, m.Name, "admission: already at destination")
		return
	case m.SvcEpoch != 0 && a.Mig.Epochs.Stale(m.Name, m.SvcEpoch):
		a.Rejected++
		a.event(m.ObjID, m.Attempt, evRejected, m.Name,
			fmt.Sprintf("admission: stale epoch %d for %q (watermark %d)",
				m.SvcEpoch, m.Name, a.Mig.Epochs.Current(m.Name)))
		return
	}
	var strat migration.Strategy
	if m.Strategy != "" {
		st, err := migration.StrategyByName(m.Strategy)
		if err != nil {
			a.Rejected++
			a.event(m.ObjID, m.Attempt, evRejected, m.Name, "admission: "+err.Error())
			return
		}
		strat = st
	} else {
		strat = a.Mig.Config.Mig
	}
	r := &agentRun{attempt: m.Attempt, pid: int(m.PID), name: m.Name}
	if a.Cond != nil {
		if !a.Cond.TryAcquireMigration() {
			// Retryable without rollback: nothing moved, the conductor is
			// mid-transfer. Record it as decided so a replay of this
			// attempt does not later start a migration the controller
			// already retried past.
			r.done, r.kind, r.reason = true, evBusy, "lb migration slot busy"
			a.runs[m.ObjID] = r
			a.event(m.ObjID, m.Attempt, evBusy, m.Name, r.reason)
			return
		}
		r.locked = true
	}
	a.runs[m.ObjID] = r
	a.Started++
	a.event(m.ObjID, m.Attempt, evAccepted, m.Name, "")
	a.Mig.MigrateWith(p, m.Dest, strat, obs.TraceContext{}, func(_ *migration.Metrics, err error) {
		// The slot frees the instant the engine decides — the
		// early-abort path (connect refused, admission races) included;
		// the conductor can balance again without waiting for a tick.
		if r.locked {
			a.Cond.ReleaseMigration()
			r.locked = false
		}
		r.done = true
		if err != nil {
			r.kind, r.reason = evAborted, err.Error()
		} else {
			r.kind = evSucceeded
		}
		a.event(m.ObjID, r.attempt, r.kind, r.name, r.reason)
	})
}

func (a *Agent) handleCancel(from netsim.Addr, m cancelMsg) {
	if !a.fence(from, m.CtlEpoch, m.ObjID, m.Attempt) {
		return
	}
	r := a.runs[m.ObjID]
	if r == nil {
		// Nothing started here — but a reordered run directive may still
		// be in flight. Record a tombstone so it dedups into "canceled"
		// instead of starting a migration for a parked object.
		a.runs[m.ObjID] = &agentRun{attempt: m.Attempt, done: true,
			kind: evAborted, reason: "canceled before start"}
		a.event(m.ObjID, m.Attempt, evAborted, "", "canceled before start")
		return
	}
	if r.done {
		a.event(m.ObjID, r.attempt, r.kind, r.name, r.reason)
		return
	}
	if a.Mig.Cancel(r.pid, m.Reason) {
		// The engine's done callback (above) already reported evAborted
		// synchronously.
		return
	}
	// Past the post-copy point of no return: the migration commits.
	a.event(m.ObjID, r.attempt, evCancelRefused, r.name, "past point of no return")
}
