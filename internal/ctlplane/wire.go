package ctlplane

import (
	"encoding/binary"
	"fmt"

	"dvemig/internal/netsim"
)

// CtlPort is the UDP port controllers (primary and standby) listen on;
// AgentPort is the per-node agent's. Both ride internal/netsim, so the
// control plane shares the cluster links' faults with the data plane.
const (
	CtlPort   = 7903
	AgentPort = 7904
)

// Wire opcodes. Every controller-originated message leads with the
// controller epoch — the fence agents ratchet on, so a superseded
// primary cannot drive anything after a takeover.
const (
	opRun       = 1 // ctl→agent: drive one migration attempt
	opCancel    = 2 // ctl→agent: cancel the object's in-flight attempt
	opEvent     = 3 // agent→ctl: watch event (lifecycle observation)
	opHello     = 4 // primary→standby: liveness heartbeat
	opReplicate = 5 // primary→standby: one object's spec+status
)

// Watch-event kinds (agent → controller).
const (
	evAccepted      = 1 // admitted; the engine's migration started
	evRejected      = 2 // admission check failed — terminal, never started
	evSucceeded     = 3 // migration completed; process runs on dest
	evAborted       = 4 // migration rolled back (or canceled) at the source
	evBusy          = 5 // lb migration slot busy — retryable without rollback
	evCancelRefused = 6 // cancel arrived past the point of no return
	evStaleCtl      = 7 // the sending controller's epoch is below the fence
)

func evKindString(k byte) string {
	switch k {
	case evAccepted:
		return "accepted"
	case evRejected:
		return "rejected"
	case evSucceeded:
		return "succeeded"
	case evAborted:
		return "aborted"
	case evBusy:
		return "busy"
	case evCancelRefused:
		return "cancel-refused"
	case evStaleCtl:
		return "stale-ctl"
	}
	return fmt.Sprintf("ev(%d)", k)
}

// runMsg is one migration-attempt directive. Resending it is always
// safe: the agent dedups on (ObjID, Attempt) and answers with the
// recorded outcome instead of driving twice.
type runMsg struct {
	CtlEpoch uint64
	ObjID    uint64
	Attempt  uint32
	PID      uint32
	Dest     netsim.Addr
	SvcEpoch uint64 // submitter's ownership-epoch claim (0 = unchecked)
	Strategy string
	Name     string
}

func (m runMsg) encode() []byte {
	b := make([]byte, 0, 40+len(m.Strategy)+len(m.Name))
	b = append(b, opRun)
	b = binary.BigEndian.AppendUint64(b, m.CtlEpoch)
	b = binary.BigEndian.AppendUint64(b, m.ObjID)
	b = binary.BigEndian.AppendUint32(b, m.Attempt)
	b = binary.BigEndian.AppendUint32(b, m.PID)
	b = binary.BigEndian.AppendUint32(b, uint32(m.Dest))
	b = binary.BigEndian.AppendUint64(b, m.SvcEpoch)
	b = append(b, byte(len(m.Strategy)))
	b = append(b, m.Strategy...)
	b = append(b, m.Name...)
	return b
}

func decodeRunMsg(b []byte) (runMsg, error) {
	var m runMsg
	d := wireReader{b: b}
	if op := d.u8(); op != opRun {
		return m, fmt.Errorf("ctlplane: not a run frame (op %d)", op)
	}
	m.CtlEpoch = d.u64()
	m.ObjID = d.u64()
	m.Attempt = d.u32()
	m.PID = d.u32()
	m.Dest = netsim.Addr(d.u32())
	m.SvcEpoch = d.u64()
	m.Strategy = d.str(int(d.u8()))
	if d.err != nil {
		return m, d.err
	}
	m.Name = string(b[d.off:])
	if len(m.Name) > maxWireName {
		return m, fmt.Errorf("ctlplane: name too long (%d)", len(m.Name))
	}
	return m, nil
}

// cancelMsg asks the agent to abort the object's in-flight attempt.
type cancelMsg struct {
	CtlEpoch uint64
	ObjID    uint64
	Attempt  uint32
	Reason   string
}

func (m cancelMsg) encode() []byte {
	b := make([]byte, 0, 24+len(m.Reason))
	b = append(b, opCancel)
	b = binary.BigEndian.AppendUint64(b, m.CtlEpoch)
	b = binary.BigEndian.AppendUint64(b, m.ObjID)
	b = binary.BigEndian.AppendUint32(b, m.Attempt)
	b = append(b, m.Reason...)
	return b
}

func decodeCancelMsg(b []byte) (cancelMsg, error) {
	var m cancelMsg
	d := wireReader{b: b}
	if op := d.u8(); op != opCancel {
		return m, fmt.Errorf("ctlplane: not a cancel frame (op %d)", op)
	}
	m.CtlEpoch = d.u64()
	m.ObjID = d.u64()
	m.Attempt = d.u32()
	if d.err != nil {
		return m, d.err
	}
	m.Reason = string(b[d.off:])
	return m, nil
}

// eventMsg is one watch event: the agent's observation of an object's
// lifecycle, carrying the agent's controller-epoch watermark (so a
// superseded primary learns it was fenced) and the service's current
// ownership epoch (so the controller's admission watermark advances).
type eventMsg struct {
	CtlEpoch uint64
	ObjID    uint64
	Attempt  uint32
	Kind     byte
	SvcEpoch uint64
	Detail   string
}

func (m eventMsg) encode() []byte {
	b := make([]byte, 0, 32+len(m.Detail))
	b = append(b, opEvent)
	b = binary.BigEndian.AppendUint64(b, m.CtlEpoch)
	b = binary.BigEndian.AppendUint64(b, m.ObjID)
	b = binary.BigEndian.AppendUint32(b, m.Attempt)
	b = append(b, m.Kind)
	b = binary.BigEndian.AppendUint64(b, m.SvcEpoch)
	b = append(b, m.Detail...)
	return b
}

func decodeEventMsg(b []byte) (eventMsg, error) {
	var m eventMsg
	d := wireReader{b: b}
	if op := d.u8(); op != opEvent {
		return m, fmt.Errorf("ctlplane: not an event frame (op %d)", op)
	}
	m.CtlEpoch = d.u64()
	m.ObjID = d.u64()
	m.Attempt = d.u32()
	m.Kind = d.u8()
	m.SvcEpoch = d.u64()
	if d.err != nil {
		return m, d.err
	}
	if m.Kind < evAccepted || m.Kind > evStaleCtl {
		return m, fmt.Errorf("ctlplane: unknown event kind %d", m.Kind)
	}
	m.Detail = string(b[d.off:])
	return m, nil
}

// helloMsg is the primary's liveness beacon to the standby.
type helloMsg struct {
	CtlEpoch uint64
	Seq      uint64
}

func (m helloMsg) encode() []byte {
	b := make([]byte, 0, 17)
	b = append(b, opHello)
	b = binary.BigEndian.AppendUint64(b, m.CtlEpoch)
	b = binary.BigEndian.AppendUint64(b, m.Seq)
	return b
}

func decodeHelloMsg(b []byte) (helloMsg, error) {
	var m helloMsg
	d := wireReader{b: b}
	if op := d.u8(); op != opHello {
		return m, fmt.Errorf("ctlplane: not a hello frame (op %d)", op)
	}
	m.CtlEpoch = d.u64()
	m.Seq = d.u64()
	if d.err != nil {
		return m, d.err
	}
	if d.off != len(b) {
		return m, fmt.Errorf("ctlplane: %d trailing bytes in hello", len(b)-d.off)
	}
	return m, nil
}

// encodeReplicate frames one object for the standby.
func encodeReplicate(ctlEpoch uint64, o *Object) []byte {
	obj := EncodeObject(o)
	b := make([]byte, 0, 9+len(obj))
	b = append(b, opReplicate)
	b = binary.BigEndian.AppendUint64(b, ctlEpoch)
	b = append(b, obj...)
	return b
}

func decodeReplicate(b []byte) (uint64, *Object, error) {
	d := wireReader{b: b}
	if op := d.u8(); op != opReplicate {
		return 0, nil, fmt.Errorf("ctlplane: not a replicate frame (op %d)", op)
	}
	ep := d.u64()
	if d.err != nil {
		return 0, nil, d.err
	}
	o, err := DecodeObject(b[d.off:])
	if err != nil {
		return 0, nil, err
	}
	return ep, o, nil
}
