package ctlplane

import (
	"strings"
	"testing"
	"time"

	"dvemig/internal/lb"
	"dvemig/internal/migration"
	"dvemig/internal/netsim"
	"dvemig/internal/proc"
	"dvemig/internal/simtime"
)

// ctlEnv is a cluster with worker nodes (migrator + agent) and one or
// two controller nodes at the tail.
type ctlEnv struct {
	c         *proc.Cluster
	migrators []*migration.Migrator
	agents    []*Agent
	ctl       *Controller // primary
	standby   *Controller // nil unless standby=true
}

func fastMigConfig() migration.Config {
	cfg := migration.DefaultConfig()
	cfg.ConnTimeout = 200 * time.Millisecond
	cfg.ConnRetries = 1
	cfg.RetryBackoff = 50 * time.Millisecond
	cfg.RetryBackoffMax = 200 * time.Millisecond
	return cfg
}

func fastCtlConfig() Config {
	cfg := DefaultConfig()
	cfg.Retry = migration.BackoffPolicy{Base: 100 * time.Millisecond, Max: 500 * time.Millisecond}
	cfg.ProbeAfter = 500 * time.Millisecond
	return cfg
}

func newCtlEnv(t *testing.T, workers int, standby bool, ccfg Config) *ctlEnv {
	t.Helper()
	nodes := workers + 1
	if standby {
		nodes++
	}
	e := &ctlEnv{c: proc.NewCluster(simtime.NewScheduler(), nodes)}
	for i := 0; i < workers; i++ {
		n := e.c.Nodes[i]
		m, err := migration.NewMigrator(n, fastMigConfig())
		if err != nil {
			t.Fatal(err)
		}
		a, err := NewAgent(n, m, nil)
		if err != nil {
			t.Fatal(err)
		}
		e.migrators = append(e.migrators, m)
		e.agents = append(e.agents, a)
	}
	primaryNode := e.c.Nodes[workers]
	var peer netsim.Addr
	if standby {
		peer = e.c.Nodes[workers+1].LocalIP
	}
	ctl, err := NewController(primaryNode, peer, true, ccfg)
	if err != nil {
		t.Fatal(err)
	}
	e.ctl = ctl
	if standby {
		sb, err := NewController(e.c.Nodes[workers+1], primaryNode.LocalIP, false, ccfg)
		if err != nil {
			t.Fatal(err)
		}
		e.standby = sb
	}
	return e
}

// worker spawns a small migratable process on node i.
func (e *ctlEnv) worker(i int, name string) *proc.Process {
	n := e.c.Nodes[i]
	p := n.Spawn(name, 1)
	v := p.AS.Mmap(16*proc.PageSize, "rw-")
	for j := uint64(0); j < 4; j++ {
		p.AS.Write(v.Start+j*proc.PageSize, []byte{byte(j)})
	}
	p.CPUDemand = 0.2
	p.Tick = func(self *proc.Process) { self.AS.Touch(v.Start) }
	n.StartLoop(p, 50*time.Millisecond)
	return p
}

func (e *ctlEnv) spec(p *proc.Process, from, to int) Spec {
	return Spec{
		PID: p.PID, Name: p.Name,
		Source: e.c.Nodes[from].LocalIP, Dest: e.c.Nodes[to].LocalIP,
		MaxRetries: -1,
	}
}

func hasCause(o *Object, substr string) bool {
	for _, cz := range o.Status.Cause {
		if strings.Contains(cz, substr) {
			return true
		}
	}
	return false
}

func TestLifecycleSucceeds(t *testing.T) {
	for _, strat := range migration.StrategyNames() {
		t.Run(strat, func(t *testing.T) {
			e := newCtlEnv(t, 2, false, fastCtlConfig())
			p := e.worker(0, "zone")
			spec := e.spec(p, 0, 1)
			spec.Strategy = strat
			o, err := e.ctl.Submit(spec)
			if err != nil {
				t.Fatal(err)
			}
			e.c.Sched.RunFor(15 * time.Second)
			if o.Status.State != Succeeded {
				t.Fatalf("state = %s (causes %v)", o.Status.State, o.Status.Cause)
			}
			if o.Status.Attempt != 1 || o.Status.Retries != 0 {
				t.Fatalf("attempt=%d retries=%d, want 1/0", o.Status.Attempt, o.Status.Retries)
			}
			if o.Status.DoneAt == 0 {
				t.Fatal("DoneAt not stamped")
			}
			if e.c.Nodes[1].NumProcesses() != 1 || e.c.Nodes[0].NumProcesses() != 0 {
				t.Fatalf("process did not move: src=%d dst=%d",
					e.c.Nodes[0].NumProcesses(), e.c.Nodes[1].NumProcesses())
			}
			if e.agents[0].Started != 1 {
				t.Fatalf("agent drove %d migrations, want 1", e.agents[0].Started)
			}
		})
	}
}

func TestAdmissionRejectsBeforeAnyStateMoves(t *testing.T) {
	e := newCtlEnv(t, 2, false, fastCtlConfig())
	p := e.worker(0, "zone")

	// Destination equals source.
	same := e.spec(p, 0, 0)
	o1, _ := e.ctl.Submit(same)
	// Second in-flight migration for the same service.
	a, _ := e.ctl.Submit(e.spec(p, 0, 1))
	b, _ := e.ctl.Submit(e.spec(p, 0, 1))
	e.c.Sched.RunFor(15 * time.Second)

	if o1.Status.State != Failed || !hasCause(o1, "destination equals source") {
		t.Fatalf("same-dest object: %s %v", o1.Status.State, o1.Status.Cause)
	}
	if a.Status.State != Succeeded {
		t.Fatalf("first migration: %s %v", a.Status.State, a.Status.Cause)
	}
	if b.Status.State != Failed || !hasCause(b, "already has migration") {
		t.Fatalf("duplicate in-flight object: %s %v", b.Status.State, b.Status.Cause)
	}
	// Nothing was dispatched for the rejected objects.
	if o1.dispatched != 0 || b.dispatched != 0 {
		t.Fatalf("rejected objects were dispatched: %d/%d", o1.dispatched, b.dispatched)
	}
	if e.agents[0].Started != 1 {
		t.Fatalf("agent drove %d migrations, want 1", e.agents[0].Started)
	}
}

func TestAdmissionRejectsStaleOwnershipEpoch(t *testing.T) {
	e := newCtlEnv(t, 2, false, fastCtlConfig())
	p := e.worker(0, "zone")
	// The service's ownership epoch on the source has moved to 5; a
	// submitter claiming epoch 3 has a stale view.
	e.migrators[0].Epochs.Observe("zone", 5)
	spec := e.spec(p, 0, 1)
	spec.Epoch = 3
	o, _ := e.ctl.Submit(spec)
	e.c.Sched.RunFor(10 * time.Second)
	if o.Status.State != Failed || !hasCause(o, "stale epoch") {
		t.Fatalf("stale-epoch object: %s %v", o.Status.State, o.Status.Cause)
	}
	if e.agents[0].Started != 0 {
		t.Fatal("stale-epoch migration was driven")
	}
	// A fresh claim at the watermark is admitted.
	spec2 := e.spec(p, 0, 1)
	spec2.Epoch = 5
	o2, _ := e.ctl.Submit(spec2)
	e.c.Sched.RunFor(15 * time.Second)
	if o2.Status.State != Succeeded {
		t.Fatalf("current-epoch object: %s %v", o2.Status.State, o2.Status.Cause)
	}
}

func TestRetriesExhaustedParksFailedWithCauseChain(t *testing.T) {
	e := newCtlEnv(t, 1, false, fastCtlConfig())
	p := e.worker(0, "zone")
	// Dest is a hole: no node, every connect times out.
	spec := e.spec(p, 0, 0)
	spec.Dest = netsim.Addr(0xC0A801FA) // 192.168.1.250, unoccupied
	spec.MaxRetries = 2
	o, _ := e.ctl.Submit(spec)
	e.c.Sched.RunFor(25 * time.Second)
	if o.Status.State != Failed {
		t.Fatalf("state = %s %v", o.Status.State, o.Status.Cause)
	}
	if o.Status.Attempt != 3 || o.Status.Retries != 2 {
		t.Fatalf("attempt=%d retries=%d, want 3/2", o.Status.Attempt, o.Status.Retries)
	}
	if !hasCause(o, "retries exhausted") {
		t.Fatalf("cause chain missing verdict: %v", o.Status.Cause)
	}
	// One cause entry per aborted attempt, oldest first.
	aborts := 0
	for _, cz := range o.Status.Cause {
		if strings.Contains(cz, "aborted") {
			aborts++
		}
	}
	if aborts != 3 {
		t.Fatalf("cause chain has %d abort entries, want 3: %v", aborts, o.Status.Cause)
	}
	// The process never left and still runs.
	if p.State != proc.ProcRunning || p.Node != e.c.Nodes[0] {
		t.Fatal("process disturbed by failed migration")
	}
	// No hot loop: exactly 3 attempts were driven.
	if e.agents[0].Started != 3 {
		t.Fatalf("agent drove %d attempts, want 3", e.agents[0].Started)
	}
}

func TestCancelVerbAbortsInFlightMigration(t *testing.T) {
	e := newCtlEnv(t, 2, false, fastCtlConfig())
	n := e.c.Nodes[0]
	p := n.Spawn("zone", 1)
	// Big, hot address space so precopy has work to do.
	v := p.AS.Mmap(512*proc.PageSize, "rw-")
	for j := uint64(0); j < 512; j++ {
		p.AS.Write(v.Start+j*proc.PageSize, []byte{byte(j)})
	}
	p.Tick = func(self *proc.Process) {
		for j := uint64(0); j < 64; j++ {
			self.AS.Touch(v.Start + j*proc.PageSize)
		}
	}
	n.StartLoop(p, 20*time.Millisecond)

	o, _ := e.ctl.Submit(e.spec(p, 0, 1))
	// Cancel once it is Running.
	canceled := false
	e.ctl.OnTransition = func(obj *Object, _, to State) {
		if obj == o && to == Running && !canceled {
			canceled = true
			e.c.Sched.After(50*time.Millisecond, "test/cancel", func() {
				if err := e.ctl.Cancel(o.Spec.ID, "operator said so"); err != nil {
					t.Errorf("cancel: %v", err)
				}
			})
		}
	}
	e.c.Sched.RunFor(20 * time.Second)
	if !canceled {
		t.Fatal("migration never reached Running")
	}
	if o.Status.State != Aborted {
		t.Fatalf("state = %s %v", o.Status.State, o.Status.Cause)
	}
	// Rollback: the process thawed and still runs at the source.
	if p.Node != e.c.Nodes[0] || p.State != proc.ProcRunning {
		t.Fatalf("rollback failed: node=%v state=%v", p.Node.Name, p.State)
	}
	if e.c.Nodes[1].NumProcesses() != 0 {
		t.Fatal("ghost process on destination")
	}
	if !hasCause(o, "cancel requested") {
		t.Fatalf("cause chain: %v", o.Status.Cause)
	}
}

func TestCancelBeforeDispatchAbortsImmediately(t *testing.T) {
	e := newCtlEnv(t, 2, false, fastCtlConfig())
	p := e.worker(0, "zone")
	o, _ := e.ctl.Submit(e.spec(p, 0, 1))
	if err := e.ctl.Cancel(o.Spec.ID, "changed my mind"); err != nil {
		t.Fatal(err)
	}
	if o.Status.State != Aborted {
		t.Fatalf("state = %s", o.Status.State)
	}
	e.c.Sched.RunFor(5 * time.Second)
	if e.agents[0].Started != 0 {
		t.Fatal("canceled object was still dispatched")
	}
	if err := e.ctl.Cancel(o.Spec.ID, "again"); err == nil {
		t.Fatal("cancel of a terminal object should error")
	}
}

func TestDeadlineParksObject(t *testing.T) {
	e := newCtlEnv(t, 1, false, fastCtlConfig())
	p := e.worker(0, "zone")
	spec := e.spec(p, 0, 0)
	spec.Dest = netsim.Addr(0xC0A801FA) // black hole
	spec.Deadline = 900 * time.Millisecond
	spec.MaxRetries = 50 // deadline, not retry budget, must stop it
	o, _ := e.ctl.Submit(spec)
	e.c.Sched.RunFor(30 * time.Second)
	if o.Status.State != Failed {
		t.Fatalf("state = %s %v", o.Status.State, o.Status.Cause)
	}
	if !hasCause(o, "deadline exceeded") {
		t.Fatalf("cause chain: %v", o.Status.Cause)
	}
	if p.State != proc.ProcRunning {
		t.Fatal("process not running after deadline abort")
	}
	// Parked means parked: no further dispatches after the terminal state.
	started := e.agents[0].Started
	e.c.Sched.RunFor(10 * time.Second)
	if e.agents[0].Started != started {
		t.Fatal("controller kept dispatching a parked object")
	}
}

func TestStandbyTakesOverAndFinishesObjects(t *testing.T) {
	e := newCtlEnv(t, 2, true, fastCtlConfig())
	p := e.worker(0, "zone")
	o, _ := e.ctl.Submit(e.spec(p, 0, 1))
	// Let replication land, then kill the primary before it can finish
	// reconciling (the first dispatch happens on the next tick; crash the
	// node shortly after submit while the object is still in flight).
	e.c.Sched.After(150*time.Millisecond, "test/crash-primary", func() {
		e.ctl.Node.Fail(e.c)
		e.ctl.Stop()
	})
	e.c.Sched.RunFor(30 * time.Second)
	if e.standby.Takeovers != 1 {
		t.Fatalf("takeovers = %d, want 1", e.standby.Takeovers)
	}
	if !e.standby.Primary {
		t.Fatal("standby did not promote")
	}
	if e.standby.Epoch() <= 1 {
		t.Fatalf("takeover did not bump the epoch: %d", e.standby.Epoch())
	}
	got := e.standby.Get(o.Spec.ID)
	if got == nil || got.Status.State != Succeeded {
		t.Fatalf("object after takeover: %+v", got)
	}
	// Exactly one engine migration despite the handoff.
	if e.agents[0].Started != 1 {
		t.Fatalf("agent drove %d migrations, want 1", e.agents[0].Started)
	}
	if e.c.Nodes[1].NumProcesses() != 1 {
		t.Fatal("process did not arrive")
	}
}

func TestFencedExPrimaryDemotes(t *testing.T) {
	e := newCtlEnv(t, 2, true, fastCtlConfig())
	p := e.worker(0, "zone")
	// Partition the primary from everything; the standby takes over and
	// completes a migration, bumping every agent's watermark. When the
	// partition heals, the ex-primary's next directive is fenced and it
	// demotes itself instead of double-driving.
	e.c.Sched.After(100*time.Millisecond, "test/partition", func() {
		e.ctl.Node.Stack.SetDown(true)
	})
	e.c.Sched.After(4*time.Second, "test/submit", func() {
		if _, err := e.standby.Submit(e.spec(p, 0, 1)); err != nil {
			t.Errorf("standby submit: %v", err)
		}
	})
	e.c.Sched.After(20*time.Second, "test/heal", func() {
		e.ctl.Node.Stack.SetDown(false)
		// The healed ex-primary still believes it is primary and tries to
		// reconcile — give it an object to dispatch so a directive flows.
		if e.ctl.Primary {
			if _, err := e.ctl.Submit(e.spec(p, 1, 0)); err != nil {
				t.Errorf("ex-primary submit: %v", err)
			}
		}
	})
	e.c.Sched.RunFor(40 * time.Second)
	if e.standby.Takeovers != 1 {
		t.Fatalf("takeovers = %d", e.standby.Takeovers)
	}
	if e.ctl.Primary {
		t.Fatal("fenced ex-primary still believes it is primary")
	}
	if e.ctl.Demotions == 0 {
		t.Fatal("demotion not recorded")
	}
}

// TestEarlyAbortReleasesConductorSlotSynchronously is the satellite-2
// regression: an abort that never reached Freeze must free the lb
// conductor's migration slot at the instant the engine decides — not at
// the next conductor heartbeat — for every strategy.
func TestEarlyAbortReleasesConductorSlotSynchronously(t *testing.T) {
	for _, strat := range migration.StrategyNames() {
		t.Run(strat, func(t *testing.T) {
			sched := simtime.NewScheduler()
			c := proc.NewCluster(sched, 2)
			lcfg := lb.DefaultConfig()
			lcfg.ImbalanceThreshold = 10 // conductor never balances on its own
			lcfg.Period = time.Hour      // and never ticks during the window we probe
			var agents []*Agent
			var conds []*lb.Conductor
			for _, n := range c.Nodes {
				m, err := migration.NewMigrator(n, fastMigConfig())
				if err != nil {
					t.Fatal(err)
				}
				cd, err := lb.NewConductor(n, m, lcfg)
				if err != nil {
					t.Fatal(err)
				}
				a, err := NewAgent(n, m, cd)
				if err != nil {
					t.Fatal(err)
				}
				agents = append(agents, a)
				conds = append(conds, cd)
			}
			ctl, err := NewController(c.AddNode("ctl"), 0, true, fastCtlConfig())
			if err != nil {
				t.Fatal(err)
			}
			n := c.Nodes[0]
			p := n.Spawn("zone", 1)
			p.AS.Mmap(8*proc.PageSize, "rw-")
			n.StartLoop(p, 50*time.Millisecond)

			spec := Spec{PID: p.PID, Name: "zone", Source: n.LocalIP,
				Dest:     netsim.Addr(0xC0A801FA), // black hole: connect never succeeds
				Strategy: strat, MaxRetries: 0}
			o, _ := ctl.Submit(spec)

			// Watch the engine: the instant the abort fires, the conductor
			// slot must already be free one scheduler step later — no
			// conductor tick can run in between (Period = 1h).
			checked := false
			mig := agents[0].Mig
			mig.OnPhase = func(ev migration.PhaseEvent) {
				if ev.Phase == migration.PhaseAborted && !checked {
					checked = true
					sched.After(0, "test/check-slot", func() {
						if !conds[0].MigrationSlotFree() {
							t.Error("conductor slot still held after early abort")
						}
						if mig.Migrating(p.PID) {
							t.Error("engine still marks the process as migrating")
						}
					})
				}
			}
			sched.RunFor(30 * time.Second)
			if !checked {
				t.Fatal("migration never aborted")
			}
			if o.Status.State != Failed {
				t.Fatalf("object = %s %v", o.Status.State, o.Status.Cause)
			}
			if p.State != proc.ProcRunning {
				t.Fatal("process not running after abort")
			}
			ctl.Stop()
		})
	}
}
