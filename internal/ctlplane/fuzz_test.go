package ctlplane

import (
	"testing"
	"time"

	"dvemig/internal/migration"
	"dvemig/internal/netstack"
	"dvemig/internal/proc"
	"dvemig/internal/simtime"
)

// FuzzObjectCodec feeds arbitrary bytes to the Migration spec/status
// wire codec — the replication payload. The decoder must never panic,
// must reject truncated/trailing/garbage frames, and every frame it
// accepts must survive an encode/decode roundtrip unchanged.
func FuzzObjectCodec(f *testing.F) {
	full := &Object{
		Spec: Spec{ID: 7, PID: 42, Name: "zone", Source: 0xC0A80101, Dest: 0xC0A80102,
			Strategy: "hybrid", Epoch: 3, Deadline: 20 * time.Second, MaxRetries: 2},
		Status: Status{State: Failed, Attempt: 3, Retries: 2,
			Cause:           []string{"attempt 1 aborted: x", "retries exhausted"},
			CancelRequested: true, SubmitAt: 1e9, DoneAt: 2e9},
	}
	f.Add(EncodeObject(full))
	f.Add(EncodeObject(&Object{}))
	f.Add([]byte{})
	f.Add([]byte{objCodecVersion})
	f.Add(make([]byte, 64))
	f.Fuzz(func(t *testing.T, data []byte) {
		o, err := DecodeObject(data)
		if err != nil {
			return
		}
		back := EncodeObject(o)
		o2, err := DecodeObject(back)
		if err != nil {
			t.Fatalf("re-decode of accepted frame failed: %v", err)
		}
		if o2.Spec != o.Spec {
			t.Fatalf("spec roundtrip broken: %+v != %+v", o2.Spec, o.Spec)
		}
		if o2.Status.State != o.Status.State || o2.Status.Attempt != o.Status.Attempt ||
			o2.Status.Retries != o.Status.Retries ||
			o2.Status.CancelRequested != o.Status.CancelRequested ||
			o2.Status.SubmitAt != o.Status.SubmitAt || o2.Status.DoneAt != o.Status.DoneAt ||
			len(o2.Status.Cause) != len(o.Status.Cause) {
			t.Fatalf("status roundtrip broken: %+v != %+v", o2.Status, o.Status)
		}
		for i := range o.Status.Cause {
			if o2.Status.Cause[i] != o.Status.Cause[i] {
				t.Fatalf("cause[%d] roundtrip broken", i)
			}
		}
	})
}

// FuzzCtlFrames covers the control-plane datagram decoders (run,
// cancel, event, hello, replicate): no panics, and accepted frames
// roundtrip through their encoders.
func FuzzCtlFrames(f *testing.F) {
	f.Add(runMsg{CtlEpoch: 2, ObjID: 9, Attempt: 1, PID: 4, Dest: 0x0A000001,
		SvcEpoch: 5, Strategy: "postcopy", Name: "zone"}.encode())
	f.Add(cancelMsg{CtlEpoch: 2, ObjID: 9, Attempt: 1, Reason: "deadline"}.encode())
	f.Add(eventMsg{CtlEpoch: 2, ObjID: 9, Attempt: 1, Kind: evAborted,
		SvcEpoch: 5, Detail: "connect refused"}.encode())
	f.Add(helloMsg{CtlEpoch: 3, Seq: 11}.encode())
	f.Add(encodeReplicate(4, &Object{Spec: Spec{ID: 1, Name: "z"}}))
	f.Add([]byte{opRun})
	f.Add([]byte{opEvent, 0xFF})
	f.Add([]byte{0xEE, 0xEE, 0xEE})
	f.Fuzz(func(t *testing.T, data []byte) {
		if m, err := decodeRunMsg(data); err == nil {
			back, err2 := decodeRunMsg(m.encode())
			if err2 != nil || back != m {
				t.Fatalf("run roundtrip broken: %+v vs %+v (%v)", back, m, err2)
			}
		}
		if m, err := decodeCancelMsg(data); err == nil {
			back, err2 := decodeCancelMsg(m.encode())
			if err2 != nil || back != m {
				t.Fatalf("cancel roundtrip broken: %+v vs %+v (%v)", back, m, err2)
			}
		}
		if m, err := decodeEventMsg(data); err == nil {
			back, err2 := decodeEventMsg(m.encode())
			if err2 != nil || back != m {
				t.Fatalf("event roundtrip broken: %+v vs %+v (%v)", back, m, err2)
			}
		}
		if m, err := decodeHelloMsg(data); err == nil {
			back, err2 := decodeHelloMsg(m.encode())
			if err2 != nil || back != m {
				t.Fatalf("hello roundtrip broken: %+v vs %+v (%v)", back, m, err2)
			}
		}
		if ep, o, err := decodeReplicate(data); err == nil {
			ep2, o2, err2 := decodeReplicate(encodeReplicate(ep, o))
			if err2 != nil || ep2 != ep || o2.Spec != o.Spec {
				t.Fatalf("replicate roundtrip broken (%v)", err2)
			}
		}
	})
}

// FuzzControllerServe throws raw datagrams — truncated, garbage, and
// stale-epoch frames — at a live primary controller's watch-event port.
// Whatever arrives, the controller must not panic, must not let a
// forged event corrupt an object, and must keep reconciling: a real
// migration submitted afterwards still completes.
func FuzzControllerServe(f *testing.F) {
	f.Add(eventMsg{CtlEpoch: 0, ObjID: 1, Attempt: 1, Kind: evSucceeded}.encode()) // stale epoch, forged success
	f.Add(eventMsg{CtlEpoch: ^uint64(0), ObjID: 1, Attempt: 1, Kind: evStaleCtl}.encode())
	f.Add(helloMsg{CtlEpoch: ^uint64(0), Seq: 1}.encode())
	f.Add(encodeReplicate(9, &Object{Spec: Spec{ID: 1, Name: "zone"}}))
	f.Add([]byte{opEvent})
	f.Add([]byte{0xEE})
	f.Fuzz(func(t *testing.T, data []byte) {
		sched := simtime.NewScheduler()
		cluster := proc.NewCluster(sched, 3)
		mig, err := migration.NewMigrator(cluster.Nodes[0], fastMigConfig())
		if err != nil {
			t.Fatal(err)
		}
		if _, err := migration.NewMigrator(cluster.Nodes[1], fastMigConfig()); err != nil {
			t.Fatal(err)
		}
		if _, err := NewAgent(cluster.Nodes[0], mig, nil); err != nil {
			t.Fatal(err)
		}
		ctl, err := NewController(cluster.Nodes[2], 0, true, fastCtlConfig())
		if err != nil {
			t.Fatal(err)
		}
		atk := netstack.NewUDPSocket(cluster.Nodes[1].Stack)
		atk.BindEphemeral(cluster.Nodes[1].LocalIP)
		if err := atk.SendTo(cluster.Nodes[2].LocalIP, CtlPort, data); err != nil {
			t.Fatal(err)
		}
		sched.RunFor(100 * time.Millisecond)
		// The controller must still reconcile real work end to end.
		p := cluster.Nodes[0].Spawn("zone", 1)
		p.AS.Mmap(8*proc.PageSize, "rw-")
		cluster.Nodes[0].StartLoop(p, 50*time.Millisecond)
		o, err := ctl.Submit(Spec{PID: p.PID, Name: "zone",
			Source: cluster.Nodes[0].LocalIP, Dest: cluster.Nodes[1].LocalIP, MaxRetries: -1})
		if err != nil {
			// A forged hello with a higher epoch may have demoted the
			// controller — that is fencing working as designed, not a wedge.
			if ctl.Primary {
				t.Fatalf("submit refused while primary: %v", err)
			}
			return
		}
		sched.RunFor(15 * time.Second)
		if o.Status.State != Succeeded {
			t.Fatalf("controller wedged after fuzz frame: %s %v", o.Status.State, o.Status.Cause)
		}
	})
}

// FuzzAgentServe does the same for a live agent's directive port: the
// run/cancel decoders and the dedup/fence paths parse whatever arrives,
// and a legitimate run directive afterwards must still drive a
// migration exactly once.
func FuzzAgentServe(f *testing.F) {
	f.Add(runMsg{CtlEpoch: ^uint64(0), ObjID: 1, Attempt: 1, PID: 9999,
		Dest: 0xC0A80163, Name: "ghost"}.encode()) // high epoch, bogus pid
	f.Add(cancelMsg{CtlEpoch: 1, ObjID: 77, Attempt: 1, Reason: "x"}.encode())
	f.Add([]byte{opRun, 0, 1})
	f.Add([]byte{0xEE})
	f.Fuzz(func(t *testing.T, data []byte) {
		sched := simtime.NewScheduler()
		cluster := proc.NewCluster(sched, 3)
		mig, err := migration.NewMigrator(cluster.Nodes[0], fastMigConfig())
		if err != nil {
			t.Fatal(err)
		}
		if _, err := migration.NewMigrator(cluster.Nodes[1], fastMigConfig()); err != nil {
			t.Fatal(err)
		}
		ag, err := NewAgent(cluster.Nodes[0], mig, nil)
		if err != nil {
			t.Fatal(err)
		}
		p := cluster.Nodes[0].Spawn("zone", 1)
		p.AS.Mmap(8*proc.PageSize, "rw-")
		cluster.Nodes[0].StartLoop(p, 50*time.Millisecond)

		atk := netstack.NewUDPSocket(cluster.Nodes[2].Stack)
		atk.BindEphemeral(cluster.Nodes[2].LocalIP)
		if err := atk.SendTo(cluster.Nodes[0].LocalIP, AgentPort, data); err != nil {
			t.Fatal(err)
		}
		sched.RunFor(200 * time.Millisecond)
		// A fuzz frame may itself have been a valid directive for pid/zone;
		// whatever happened, a directive with a fresh object ID and the
		// maximum epoch must still be served (accepted or refused per the
		// admission rules — never ignored, never panicking).
		run := runMsg{CtlEpoch: ^uint64(0), ObjID: ^uint64(0), Attempt: 1,
			PID: uint32(p.PID), Dest: cluster.Nodes[1].LocalIP, Name: "zone"}
		if err := atk.SendTo(cluster.Nodes[0].LocalIP, AgentPort, run.encode()); err != nil {
			t.Fatal(err)
		}
		sched.RunFor(15 * time.Second)
		if ag.Started == 0 && ag.Rejected == 0 && ag.Deduped == 0 {
			t.Fatal("agent wedged: real directive neither served nor refused")
		}
		if p.Node == nil {
			t.Fatal("process lost")
		}
		if ag.Started > 0 && mig.Migrating(p.PID) {
			t.Fatal("migration never settled")
		}
	})
}
