package ctlplane

import (
	"fmt"
	"time"

	"dvemig/internal/epoch"
	"dvemig/internal/migration"
	"dvemig/internal/netsim"
	"dvemig/internal/netstack"
	"dvemig/internal/proc"
	"dvemig/internal/simtime"
)

// Config is the controller's reconcile policy.
type Config struct {
	// Period is the reconcile tick.
	Period simtime.Duration
	// Retry is the backoff between migration attempts — the same
	// BackoffPolicy the engine uses for connect retries, with
	// seed-deterministic jitter so a fleet of retries does not
	// thundering-herd a recovering node.
	Retry migration.BackoffPolicy
	// MaxRetries bounds re-dispatches per object (Spec.MaxRetries < 0
	// inherits this).
	MaxRetries int
	// Deadline bounds an object submit → terminal (Spec.Deadline == 0
	// inherits this).
	Deadline simtime.Duration
	// CancelGrace is how long after a deadline-triggered cancel the
	// controller waits for the abort to land before parking the object.
	CancelGrace simtime.Duration
	// ProbeAfter is the level-triggered resend: while an attempt is
	// dispatched or running and nothing has been heard for this long,
	// the (idempotent) run directive is re-sent.
	ProbeAfter simtime.Duration
	// HelloPeriod paces primary → standby heartbeats; TakeoverAfter is
	// the primary-silence threshold at which the standby takes over.
	HelloPeriod   simtime.Duration
	TakeoverAfter simtime.Duration
	// Seed feeds the retry-jitter RNG.
	Seed uint64
}

// DefaultConfig returns the policy used by the soak harness.
func DefaultConfig() Config {
	return Config{
		Period:        100 * time.Millisecond,
		Retry:         migration.BackoffPolicy{Base: 300 * time.Millisecond, Max: 5 * time.Second, Jitter: 0.3},
		MaxRetries:    2,
		Deadline:      30 * time.Second,
		CancelGrace:   5 * time.Second,
		ProbeAfter:    1 * time.Second,
		HelloPeriod:   500 * time.Millisecond,
		TakeoverAfter: 2500 * time.Millisecond,
		Seed:          1,
	}
}

func (c Config) maxRetries(o *Object) int {
	if o.Spec.MaxRetries >= 0 {
		return o.Spec.MaxRetries
	}
	return c.MaxRetries
}

func (c Config) deadline(o *Object) simtime.Duration {
	if o.Spec.Deadline > 0 {
		return o.Spec.Deadline
	}
	return c.Deadline
}

// Controller reconciles Migration objects: it admits, dispatches,
// retries, cancels and parks them, driving per-node agents over the
// simulated network. Exactly one controller is primary at a time; a
// standby mirrors the object store via replication and takes over under
// a bumped controller epoch when the primary goes silent.
type Controller struct {
	Node   *proc.Node
	Config Config
	// Primary is true while this controller reconciles. The standby
	// flips it on takeover; a fenced ex-primary flips it off.
	Primary bool

	sock   *netstack.UDPSocket
	ticker *simtime.Ticker
	peer   netsim.Addr // the other controller (0 = run without standby)

	epoch     uint64 // this controller's epoch while primary
	seenEpoch uint64 // highest epoch observed from the peer
	nextID    uint64

	objects  map[uint64]*Object
	order    []uint64          // deterministic reconcile order
	inflight map[string]uint64 // service name → non-terminal object ID
	homes    map[string]netsim.Addr
	epochs   *epoch.Table // observed ownership epochs (admission fence)
	rng      *simtime.Rand

	helloSeq  uint64
	lastHello simtime.Time // standby: last hello heard (or construction)
	lastSent  simtime.Time // primary: last hello sent

	// OnTransition, when set, observes every state transition (used by
	// the crash-matrix tests to kill the controller at a chosen state).
	OnTransition func(o *Object, from, to State)

	// Counters for audits and the soak report.
	Takeovers   uint64
	Demotions   uint64
	Dispatches  uint64
	Resends     uint64
	StaleEvents uint64
}

// NewController starts a controller service on a node. peer is the
// other controller's address (zero = no standby); primary picks the
// initial role. The primary starts at controller epoch 1, the standby
// at 0 — a takeover always bumps past everything it has seen.
func NewController(n *proc.Node, peer netsim.Addr, primary bool, cfg Config) (*Controller, error) {
	if cfg.Period <= 0 {
		cfg.Period = 100 * time.Millisecond
	}
	c := &Controller{
		Node: n, Config: cfg, Primary: primary, peer: peer,
		objects:  make(map[uint64]*Object),
		inflight: make(map[string]uint64),
		homes:    make(map[string]netsim.Addr),
		epochs:   epoch.NewTable(),
		rng:      simtime.NewRand(cfg.Seed ^ 0x63746c706c616e65),
		nextID:   1,
	}
	if primary {
		c.epoch = 1
	}
	c.lastHello = n.Sched.Now()
	c.sock = netstack.NewUDPSocket(n.Stack)
	if err := c.sock.Bind(n.LocalIP, CtlPort); err != nil {
		return nil, fmt.Errorf("ctlplane controller: %w", err)
	}
	c.sock.OnReadable = c.serve
	c.ticker = simtime.NewTicker(n.Sched, cfg.Period, "ctlplane/"+n.Name, func() { c.tick() })
	c.ticker.Start()
	return c, nil
}

// Stop halts the reconcile loop and closes the socket (harnesses call
// this before draining the scheduler).
func (c *Controller) Stop() {
	c.ticker.Stop()
	c.sock.Close()
}

// Epoch returns the controller epoch this instance last acted under.
func (c *Controller) Epoch() uint64 { return c.epoch }

// Objects returns the object store in submission order.
func (c *Controller) Objects() []*Object {
	out := make([]*Object, 0, len(c.order))
	for _, id := range c.order {
		out = append(out, c.objects[id])
	}
	return out
}

// Get returns one object by ID.
func (c *Controller) Get(id uint64) *Object { return c.objects[id] }

// Submit creates a Migration object in Pending; the reconcile loop
// takes it from there. Only the primary accepts submissions.
func (c *Controller) Submit(spec Spec) (*Object, error) {
	if !c.Primary {
		return nil, fmt.Errorf("ctlplane: not primary")
	}
	// IDs carry the assigning epoch in the high bits so a fenced
	// ex-primary and its successor can never mint the same ID during a
	// split-brain window.
	spec.ID = c.epoch<<32 | (c.nextID & 0xFFFFFFFF)
	c.nextID++
	o := &Object{Spec: spec}
	o.Status.SubmitAt = c.Node.Sched.Now()
	c.objects[spec.ID] = o
	c.order = append(c.order, spec.ID)
	c.replicate(o)
	return o, nil
}

// Cancel is the abort verb. A Pending or never-dispatched object parks
// in Aborted immediately; an in-flight one gets a cancel directive and
// lands in Aborted when the engine's rollback confirms (or stays on
// course if it was already past the point of no return).
func (c *Controller) Cancel(id uint64, reason string) error {
	o := c.objects[id]
	if o == nil {
		return fmt.Errorf("ctlplane: no object %d", id)
	}
	if o.Terminal() {
		return fmt.Errorf("ctlplane: object %d already %s", id, o.Status.State)
	}
	if !c.Primary {
		return fmt.Errorf("ctlplane: not primary")
	}
	if o.Status.State == Pending || (o.Status.State == Scheduling && o.dispatched == 0) {
		o.addCause("canceled before dispatch: %s", reason)
		c.park(o, Aborted)
		return nil
	}
	o.Status.CancelRequested = true
	o.addCause("cancel requested: %s", reason)
	c.sendCancel(o, reason)
	c.replicate(o)
	return nil
}

// --- reconcile loop --------------------------------------------------------

func (c *Controller) tick() {
	if !c.Node.Alive {
		return
	}
	now := c.Node.Sched.Now()
	if !c.Primary {
		// Standby: watch for primary silence.
		if c.peer != 0 && now-c.lastHello > c.Config.TakeoverAfter {
			c.takeover(now)
		}
		return
	}
	if c.peer != 0 && (c.lastSent == 0 || now-c.lastSent >= c.Config.HelloPeriod) {
		c.helloSeq++
		_ = c.sock.SendTo(c.peer, CtlPort, helloMsg{CtlEpoch: c.epoch, Seq: c.helloSeq}.encode())
		c.lastSent = now
	}
	for _, id := range c.order {
		if o := c.objects[id]; !o.Terminal() {
			c.reconcile(o, now)
		}
	}
}

// takeover promotes the standby: bump the controller epoch past
// everything seen, then re-drive every non-terminal object. The agents'
// dedup log makes the re-drive exactly-once — a replayed attempt
// answers with its recorded outcome instead of migrating again.
func (c *Controller) takeover(now simtime.Time) {
	c.Primary = true
	if c.seenEpoch > c.epoch {
		c.epoch = c.seenEpoch
	}
	c.epoch++
	c.Takeovers++
	for _, id := range c.order {
		o := c.objects[id]
		if o.Terminal() {
			continue
		}
		// Force an immediate (re-)dispatch; the runtime fields were not
		// replicated, so rebuild them conservatively.
		o.nextAt = now
		o.lastSent = 0
		if o.Status.State == Running {
			// Probe: the attempt may have finished while we were blind.
			o.dispatched = 0
		}
	}
}

func (c *Controller) reconcile(o *Object, now simtime.Time) {
	// Deadline first: it bounds the whole object, every retry included.
	dl := o.Status.SubmitAt + c.Config.deadline(o)
	if now > dl {
		switch {
		case o.Status.State == Pending || (o.Status.State == Scheduling && o.dispatched == 0):
			o.addCause("deadline exceeded before dispatch")
			c.park(o, Failed)
			return
		case !o.Status.CancelRequested && !o.cancelRefused:
			o.Status.CancelRequested = true
			o.deadlined = true
			o.addCause("deadline exceeded; canceling attempt %d", o.Status.Attempt)
			c.sendCancel(o, "deadline exceeded")
			c.replicate(o)
			return
		case now > dl+c.Config.CancelGrace:
			// The cancel never confirmed (partition, or past the point of
			// no return with the success event lost). Park rather than
			// hot-loop; the soak audit cross-checks actual ownership.
			o.addCause("deadline cancel unconfirmed after %v; parking", c.Config.CancelGrace)
			c.park(o, Failed)
			return
		}
		if !o.cancelRefused {
			return // waiting on the cancel to confirm
		}
		// The engine refused the cancel: the migration is past its commit
		// fence and an outcome event is imminent. Keep probing (the agent
		// re-sends a lost outcome) until it lands or the grace parks us.
	}
	switch o.Status.State {
	case Pending:
		c.admit(o, now)
	case Scheduling:
		if now >= o.nextAt {
			c.dispatch(o, now)
		}
	case Running:
		if now-o.lastSent >= c.Config.ProbeAfter {
			c.dispatch(o, now) // idempotent probe; answers with the outcome
		}
	}
}

// admit runs the control-plane admission checks — everything that can
// be rejected before any state moves is rejected here.
func (c *Controller) admit(o *Object, now simtime.Time) {
	fail := func(format string, args ...any) {
		o.addCause(format, args...)
		c.park(o, Failed)
	}
	name := o.Spec.Name
	switch {
	case o.Spec.Dest == o.Spec.Source:
		fail("admission: destination equals source")
	case o.Spec.Source == 0 || o.Spec.Dest == 0:
		fail("admission: missing source or destination")
	case c.inflight[name] != 0 && c.inflight[name] != o.Spec.ID:
		fail("admission: %q already has migration #%d in flight", name, c.inflight[name])
	case c.homes[name] == o.Spec.Dest:
		fail("admission: %q already owned by destination", name)
	case o.Spec.Epoch != 0 && c.epochs.Stale(name, o.Spec.Epoch):
		fail("admission: ownership epoch %d for %q is stale (watermark %d)",
			o.Spec.Epoch, name, c.epochs.Current(name))
	default:
		c.inflight[name] = o.Spec.ID
		o.Status.Attempt = 1
		o.nextAt = now
		c.transition(o, Scheduling)
		c.dispatch(o, now)
	}
}

// dispatch (re)sends the current attempt's run directive to the source
// agent. Safe to repeat: the agent dedups on (object, attempt).
func (c *Controller) dispatch(o *Object, now simtime.Time) {
	m := runMsg{
		CtlEpoch: c.epoch,
		ObjID:    o.Spec.ID,
		Attempt:  uint32(o.Status.Attempt),
		PID:      uint32(o.Spec.PID),
		Dest:     o.Spec.Dest,
		SvcEpoch: o.Spec.Epoch,
		Strategy: o.Spec.Strategy,
		Name:     o.Spec.Name,
	}
	_ = c.sock.SendTo(o.Spec.Source, AgentPort, m.encode())
	o.dispatched++
	o.lastSent = now
	o.nextAt = now + c.Config.ProbeAfter
	if o.dispatched > 1 {
		c.Resends++
	} else {
		c.Dispatches++
	}
}

func (c *Controller) sendCancel(o *Object, reason string) {
	m := cancelMsg{CtlEpoch: c.epoch, ObjID: o.Spec.ID,
		Attempt: uint32(o.Status.Attempt), Reason: reason}
	_ = c.sock.SendTo(o.Spec.Source, AgentPort, m.encode())
}

// park moves an object to a terminal state and releases its inflight
// slot. The cause chain explains how it got there.
func (c *Controller) park(o *Object, st State) {
	o.Status.DoneAt = c.Node.Sched.Now()
	if c.inflight[o.Spec.Name] == o.Spec.ID {
		delete(c.inflight, o.Spec.Name)
	}
	c.transition(o, st)
}

func (c *Controller) transition(o *Object, to State) {
	from := o.Status.State
	o.Status.State = to
	if c.OnTransition != nil {
		c.OnTransition(o, from, to)
	}
	c.replicate(o)
}

func (c *Controller) replicate(o *Object) {
	if c.peer != 0 && c.Primary {
		_ = c.sock.SendTo(c.peer, CtlPort, encodeReplicate(c.epoch, o))
	}
}

// --- message handling ------------------------------------------------------

func (c *Controller) serve() {
	for {
		dg, ok := c.sock.Recv()
		if !ok {
			return
		}
		if len(dg.Payload) == 0 {
			continue
		}
		switch dg.Payload[0] {
		case opEvent:
			if ev, err := decodeEventMsg(dg.Payload); err == nil {
				c.handleEvent(ev)
			}
		case opHello:
			if m, err := decodeHelloMsg(dg.Payload); err == nil {
				c.handleHello(m)
			}
		case opReplicate:
			if ep, o, err := decodeReplicate(dg.Payload); err == nil {
				c.applyReplica(ep, o)
			}
		}
	}
}

// handleHello tracks the peer's liveness and epoch. If two controllers
// ever both believe they are primary (the old one was partitioned, not
// dead), the higher epoch wins and the other demotes.
func (c *Controller) handleHello(m helloMsg) {
	if m.CtlEpoch > c.seenEpoch {
		c.seenEpoch = m.CtlEpoch
	}
	c.lastHello = c.Node.Sched.Now()
	if c.Primary && m.CtlEpoch > c.epoch {
		c.demoteTo(m.CtlEpoch)
	}
}

// demoteTo fences this controller: a peer with a higher epoch owns the
// cluster now. Every non-terminal object in the local store parks in
// Failed with the fence recorded — a fenced controller can neither
// dispatch nor observe outcomes, so pretending its objects were still
// progressing would strand their clients forever. Anything replicated
// before the fence lives on authoritatively under the new primary.
func (c *Controller) demoteTo(ep uint64) {
	if !c.Primary {
		return
	}
	c.Primary = false
	c.Demotions++
	for _, id := range c.order {
		o := c.objects[id]
		if o.Terminal() {
			continue
		}
		o.addCause("controller fenced by epoch %d", ep)
		c.park(o, Failed)
	}
}

// applyReplica installs the primary's view of one object on the
// standby. Stale-epoch replicas (from a fenced ex-primary) are dropped.
func (c *Controller) applyReplica(ep uint64, o *Object) {
	if c.Primary {
		return // a primary never overwrites its own authoritative store
	}
	if ep < c.seenEpoch {
		return
	}
	if ep > c.seenEpoch {
		c.seenEpoch = ep
	}
	c.lastHello = c.Node.Sched.Now()
	id := o.Spec.ID
	if _, known := c.objects[id]; !known {
		c.order = append(c.order, id)
	}
	c.objects[id] = o
	if seq := id & 0xFFFFFFFF; seq >= c.nextID {
		c.nextID = seq + 1
	}
	name := o.Spec.Name
	if o.Terminal() {
		if c.inflight[name] == id {
			delete(c.inflight, name)
		}
		if o.Status.State == Succeeded {
			c.homes[name] = o.Spec.Dest
		}
	} else if o.Status.State != Pending {
		c.inflight[name] = id
	}
}

func (c *Controller) handleEvent(ev eventMsg) {
	if ev.CtlEpoch > c.epoch {
		// An agent has seen a newer controller: we were superseded.
		if ev.CtlEpoch > c.seenEpoch {
			c.seenEpoch = ev.CtlEpoch
		}
		c.demoteTo(ev.CtlEpoch)
		if ev.Kind == evStaleCtl {
			return
		}
	}
	if !c.Primary {
		c.StaleEvents++
		return
	}
	o := c.objects[ev.ObjID]
	if o == nil {
		c.StaleEvents++
		return
	}
	// Every event advances the ownership-epoch watermark the admission
	// check fences against.
	if ev.SvcEpoch != 0 {
		c.epochs.Observe(o.Spec.Name, ev.SvcEpoch)
	}
	if o.Terminal() {
		return // duplicate delivery after the object settled
	}
	if int(ev.Attempt) != o.Status.Attempt {
		// An event for a superseded attempt (duplicated datagram from a
		// retry ago) must not decide the current one.
		c.StaleEvents++
		return
	}
	now := c.Node.Sched.Now()
	switch ev.Kind {
	case evAccepted:
		if o.Status.State == Scheduling {
			c.transition(o, Running)
		}
		o.lastSent = now // quiet the probe for another ProbeAfter
	case evRejected:
		o.addCause("%s", ev.Detail)
		c.park(o, Failed)
	case evSucceeded:
		c.homes[o.Spec.Name] = o.Spec.Dest
		if o.Status.CancelRequested {
			o.addCause("cancel lost the race: migration committed")
		}
		c.park(o, Succeeded)
	case evAborted, evBusy:
		if o.Status.CancelRequested || o.deadlined {
			o.addCause("attempt %d aborted: %s", o.Status.Attempt, ev.Detail)
			if o.deadlined {
				c.park(o, Failed) // deadline is a failure, not an operator abort
			} else {
				c.park(o, Aborted)
			}
			return
		}
		o.addCause("attempt %d %s: %s", o.Status.Attempt, evKindString(ev.Kind), ev.Detail)
		if o.Status.Retries >= c.Config.maxRetries(o) {
			o.addCause("retries exhausted after %d attempts", o.Status.Attempt)
			c.park(o, Failed)
			return
		}
		o.Status.Retries++
		o.Status.Attempt++
		o.dispatched = 0
		o.nextAt = now + c.Config.Retry.Delay(o.Status.Retries, c.rng)
		if o.Status.State != Scheduling {
			c.transition(o, Scheduling)
		} else {
			c.replicate(o)
		}
	case evCancelRefused:
		o.Status.CancelRequested = false
		o.cancelRefused = true
		o.addCause("cancel refused: %s", ev.Detail)
		c.replicate(o)
	}
}
