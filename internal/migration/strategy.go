package migration

import (
	"fmt"

	"dvemig/internal/sockmig"
)

// Strategy is the memory-movement axis of a migration: how page content
// gets from the source to the destination relative to the freeze point.
// It is orthogonal to Config.Strategy, which picks the *socket*
// migration flavor (§III-C); any combination of the two axes is valid.
//
//   - Precopy  — iterate dirty-page rounds while the process runs, then
//     freeze and ship the residue (Fig 3; the engine's historical mode).
//   - Postcopy — freeze immediately, ship a minimal image plus a page
//     directory, resume at the destination with every page a hole, and
//     fill the holes by demand pulls plus a background prefetch sweep.
//   - Hybrid   — one bounded pre-copy round, then post-copy for the
//     pages dirtied during that round.
//
// The methods are unexported: implementations live in this package and
// hook the phases of the outbound engine. Use Precopy/Postcopy/Hybrid
// (or StrategyByName) to obtain one.
type Strategy interface {
	Name() string
	// mode is the wire tag stamped into migrateReq.Mode.
	mode() byte
	// start runs when the destination acks the migration request.
	start(ob *outbound)
	// finalTransfer ships the freeze-time payload once the socket phase
	// has subtracted sd (nil for the iterative socket strategy, which
	// already shipped its sockets one by one).
	finalTransfer(ob *outbound, sd *sockmig.SockDelta)
	// onSourceMsg handles strategy-specific messages on the source side;
	// false means the message is not part of this strategy's protocol.
	onSourceMsg(ob *outbound, t MsgType, payload []byte) bool
}

type precopyStrategy struct{}

func (precopyStrategy) Name() string { return "precopy" }
func (precopyStrategy) mode() byte   { return modePrecopy }
func (precopyStrategy) start(ob *outbound) {
	if ob.m.Config.EnablePrecopy {
		ob.precopyRound()
	} else {
		ob.freeze()
	}
}
func (precopyStrategy) finalTransfer(ob *outbound, sd *sockmig.SockDelta) { ob.sendFreeze(sd) }
func (precopyStrategy) onSourceMsg(*outbound, MsgType, []byte) bool       { return false }

type postcopyStrategy struct{}

func (postcopyStrategy) Name() string       { return "postcopy" }
func (postcopyStrategy) mode() byte         { return modePostcopy }
func (postcopyStrategy) start(ob *outbound) { ob.freeze() }
func (postcopyStrategy) finalTransfer(ob *outbound, sd *sockmig.SockDelta) {
	ob.sendPostImage(sd, false)
}
func (postcopyStrategy) onSourceMsg(ob *outbound, t MsgType, payload []byte) bool {
	return ob.postSourceMsg(t, payload)
}

type hybridStrategy struct{}

func (hybridStrategy) Name() string       { return "hybrid" }
func (hybridStrategy) mode() byte         { return modeHybrid }
func (hybridStrategy) start(ob *outbound) { ob.hybridRound() }
func (hybridStrategy) finalTransfer(ob *outbound, sd *sockmig.SockDelta) {
	ob.sendPostImage(sd, true)
}
func (hybridStrategy) onSourceMsg(ob *outbound, t MsgType, payload []byte) bool {
	return ob.postSourceMsg(t, payload)
}

// Precopy returns the iterative dirty-page pre-copy strategy (the
// default when Config.Mig is nil).
func Precopy() Strategy { return precopyStrategy{} }

// Postcopy returns the freeze-first demand-paging strategy.
func Postcopy() Strategy { return postcopyStrategy{} }

// Hybrid returns one bounded pre-copy round followed by post-copy for
// the residual dirty set.
func Hybrid() Strategy { return hybridStrategy{} }

// StrategyNames lists the migration strategies in canonical order (the
// order the strategy race reports them in).
func StrategyNames() []string { return []string{"precopy", "postcopy", "hybrid"} }

// StrategyByName parses a -strategy flag value. The empty string means
// the default (precopy).
func StrategyByName(s string) (Strategy, error) {
	switch s {
	case "precopy", "":
		return Precopy(), nil
	case "postcopy":
		return Postcopy(), nil
	case "hybrid":
		return Hybrid(), nil
	}
	return nil, fmt.Errorf("migration: unknown strategy %q (want precopy, postcopy or hybrid)", s)
}

// strategyByMode maps a migrateReq.Mode wire tag back to its strategy
// (the destination's dispatch).
func strategyByMode(b byte) (Strategy, error) {
	switch b {
	case modePrecopy:
		return Precopy(), nil
	case modePostcopy:
		return Postcopy(), nil
	case modeHybrid:
		return Hybrid(), nil
	}
	return nil, fmt.Errorf("migration: unknown strategy mode %d", b)
}

// mig resolves the configured migration strategy, defaulting to
// pre-copy so every pre-existing Config keeps its behavior.
func (c *Config) mig() Strategy {
	if c.Mig == nil {
		return Precopy()
	}
	return c.Mig
}
