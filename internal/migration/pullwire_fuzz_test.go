package migration

import (
	"testing"
	"time"

	"dvemig/internal/ckpt"
	"dvemig/internal/netstack"
	"dvemig/internal/proc"
	"dvemig/internal/simtime"
)

// fakeDest impersonates a migration destination at the wire level: it
// listens on migd, acks the request, collects the post-image, announces
// a resume, and then lets the test inject arbitrary pull frames — the
// only way to hit the pull server with traffic a real destination would
// never send (duplicates, stale epochs, garbage).
type fakeDest struct {
	c    *proc.Cluster
	conn *Conn

	req     migrateReq
	img     postImage
	dir     *ckpt.PageDir
	gotImg  bool
	aborted []string
	// filled counts content deliveries per page across demand replies
	// AND prefetch pushes — the exactly-once ledger.
	filled map[ckpt.PageCoord]int
	resps  int
}

func newFakeDest(t *testing.T, c *proc.Cluster, node *proc.Node) *fakeDest {
	t.Helper()
	fd := &fakeDest{c: c, filled: make(map[ckpt.PageCoord]int)}
	lst := netstack.NewTCPSocket(node.Stack)
	if err := lst.Listen(node.LocalIP, MigdPort); err != nil {
		t.Fatal(err)
	}
	lst.OnAccept = func(ch *netstack.TCPSocket) {
		fd.conn = NewConn(ch)
		fd.conn.OnMsg = func(mt MsgType, payload []byte) { fd.onMsg(t, mt, payload) }
	}
	return fd
}

func (fd *fakeDest) onMsg(t *testing.T, mt MsgType, payload []byte) {
	switch mt {
	case MsgMigrateReq:
		req, err := decodeMigrateReq(payload)
		if err != nil {
			t.Fatalf("fakeDest: bad migrate req: %v", err)
		}
		fd.req = req
		fd.conn.Send(MsgMigrateAck, nil)
	case MsgPostImage:
		pm, err := decodePostImage(payload)
		if err != nil {
			t.Fatalf("fakeDest: bad post image: %v", err)
		}
		dir, err := ckpt.DecodePageDir(pm.Dir)
		if err != nil {
			t.Fatalf("fakeDest: bad page dir: %v", err)
		}
		fd.img, fd.dir, fd.gotImg = pm, dir, true
		fd.conn.Send(MsgResumed, restoreDone{ResumeAt: fd.c.Sched.Now()}.encode())
	case MsgPageResp:
		resp, err := decodePageResp(payload)
		if err != nil {
			t.Fatalf("fakeDest: bad page resp: %v", err)
		}
		fd.resps++
		for _, pg := range resp.Pages {
			fd.filled[pg.Coord]++
		}
	case MsgAbort:
		fd.aborted = append(fd.aborted, string(payload))
	}
}

func (fd *fakeDest) pull(id uint32, epoch uint64, coords ...ckpt.PageCoord) {
	fd.conn.Send(MsgPageReq, pageReq{ID: id, Epoch: epoch, Coords: coords}.encode())
}

// pullEnv: node0 runs a real migrator with an 8-page process; node1 is
// the fake destination. Prefetch is disabled so every shipment the test
// sees is a reply to a frame it sent.
func pullEnv(t *testing.T, prefetch simtime.Duration) (*fakeDest, *Migrator, func() (*Metrics, error)) {
	t.Helper()
	c := proc.NewCluster(simtime.NewScheduler(), 2)
	cfg := DefaultConfig()
	cfg.Mig = Postcopy()
	cfg.EnableCapture = false
	cfg.PrefetchInterval = prefetch
	cfg.InboundLease = 3 * 1e9
	// The fake destination speaks the monolithic wire dialect (it
	// switches on MsgPostImage directly); disabling chunking here both
	// keeps this impersonator simple and keeps the legacy path under
	// fuzz. The chunked dialect has its own battery in chunk_fuzz_test.go.
	cfg.ChunkBytes = 0
	m, err := NewMigrator(c.Nodes[0], cfg)
	if err != nil {
		t.Fatal(err)
	}
	p := c.Nodes[0].Spawn("pull_target", 1)
	heap := p.AS.Mmap(8*proc.PageSize, "rw-")
	for i := uint64(0); i < 8; i++ {
		p.AS.Write(heap.Start+i*proc.PageSize, []byte{byte(i + 1)})
	}
	fd := newFakeDest(t, c, c.Nodes[1])
	var got *Metrics
	var gotErr error
	done := false
	m.Migrate(p, c.Nodes[1].LocalIP, func(mm *Metrics, err error) {
		got, gotErr, done = mm, err, true
	})
	c.Sched.RunFor(time.Second)
	if fd.conn == nil || !fd.gotImg {
		t.Fatal("handshake never reached the post-image")
	}
	wait := func() (*Metrics, error) {
		c.Sched.RunFor(30 * time.Second)
		if !done {
			t.Fatal("migration reached no terminal state")
		}
		return got, gotErr
	}
	return fd, m, wait
}

// TestDuplicatePullAnsweredOnce: the second pull of a page must come
// back empty (counted as a duplicate), never re-shipping content.
func TestDuplicatePullAnsweredOnce(t *testing.T) {
	fd, _, wait := pullEnv(t, 0)
	if len(fd.dir.Absent) != 8 {
		t.Fatalf("directory lists %d absent pages, want 8", len(fd.dir.Absent))
	}
	c0 := fd.dir.Absent[0]
	fd.pull(1, fd.req.Epoch, c0)
	fd.c.Sched.RunFor(100 * time.Millisecond)
	fd.pull(2, fd.req.Epoch, c0) // exact duplicate
	// And a request that is half dup, half fresh.
	fd.pull(3, fd.req.Epoch, c0, fd.dir.Absent[1])
	fd.c.Sched.RunFor(100 * time.Millisecond)
	for _, c := range fd.dir.Absent[2:] {
		fd.pull(4, fd.req.Epoch, c)
	}
	fd.c.Sched.RunFor(100 * time.Millisecond)
	fd.conn.Send(MsgPullsDone, pullsDone{LastFillAt: fd.c.Sched.Now()}.encode())
	m, err := wait()
	if err != nil {
		t.Fatalf("migration failed: %v", err)
	}
	for c, n := range fd.filled {
		if n != 1 {
			t.Fatalf("page %#x+%d shipped %d times", c.VMAStart, c.Index, n)
		}
	}
	if len(fd.filled) != 8 {
		t.Fatalf("%d distinct pages shipped, want 8", len(fd.filled))
	}
	if m.PullDuplicates != 2 {
		t.Fatalf("PullDuplicates = %d, want 2", m.PullDuplicates)
	}
	if m.PagesShipped != 8 || m.PagesDemand != 8 {
		t.Fatalf("accounting off: shipped=%d demand=%d", m.PagesShipped, m.PagesDemand)
	}
}

// TestStaleEpochPullFenced: a pull stamped with a superseded epoch
// means the puller's ownership was fenced by a failover — the server
// must refuse it with an abort, ship nothing, and reap its frozen
// shell rather than feed a zombie owner.
func TestStaleEpochPullFenced(t *testing.T) {
	fd, mig, wait := pullEnv(t, 0)
	fd.pull(1, fd.req.Epoch+7, fd.dir.Absent[0])
	m, err := wait()
	if err == nil {
		t.Fatal("stale-epoch pull was served")
	}
	if len(fd.aborted) == 0 {
		t.Fatal("no abort frame reached the stale puller")
	}
	if len(fd.filled) != 0 {
		t.Fatalf("%d pages shipped to a fenced puller", len(fd.filled))
	}
	if m == nil || !m.Aborted {
		t.Fatalf("metrics not flagged aborted: %+v", m)
	}
	// Post-handover failure: the source shell is reaped, never thawed.
	if findProcess(mig.Node, "pull_target") != nil {
		t.Fatal("fenced migration left the frozen shell attached")
	}
}

// TestNonResidentPullAborts: asking for a page outside the directory is
// a protocol violation; the server must abort, not panic or invent one.
func TestNonResidentPullAborts(t *testing.T) {
	fd, _, wait := pullEnv(t, 0)
	fd.pull(1, fd.req.Epoch, ckpt.PageCoord{VMAStart: 0xdead0000, Index: 99})
	if _, err := wait(); err == nil {
		t.Fatal("non-resident pull was served")
	}
}

// FuzzPullWire drives the whole pull protocol with a fuzz-chosen script
// of frames — valid pulls, duplicates, stale epochs, truncated and
// garbage frames, early completion — against a live pull server. The
// invariants: the server never panics, never ships a page's content
// twice, and always reaches exactly one terminal state.
func FuzzPullWire(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7, 5}) // clean drain then done
	f.Add([]byte{0, 0, 0})                   // duplicates
	f.Add([]byte{1})                         // stale epoch
	f.Add([]byte{2, 4, 3})                   // bogus coord, garbage, truncated
	f.Add([]byte{5, 0})                      // done before any pull
	f.Fuzz(func(t *testing.T, script []byte) {
		if len(script) > 64 {
			script = script[:64]
		}
		fd, _, wait := pullEnv(t, 0)
		next := 0 // cursor over the directory for "valid" ops
		var id uint32
		for _, op := range script {
			id++
			switch op % 6 {
			case 0: // valid pull of the next page (wraps to duplicates)
				c := fd.dir.Absent[int(next)%len(fd.dir.Absent)]
				next++
				fd.pull(id, fd.req.Epoch, c)
			case 1: // stale epoch
				fd.pull(id, fd.req.Epoch+uint64(op)+1, fd.dir.Absent[0])
			case 2: // non-resident coord
				fd.pull(id, fd.req.Epoch, ckpt.PageCoord{VMAStart: uint64(op) << 20, Index: uint64(op)})
			case 3: // truncated pull frame
				raw := pageReq{ID: id, Epoch: fd.req.Epoch, Coords: fd.dir.Absent[:1]}.encode()
				fd.conn.Send(MsgPageReq, raw[:len(raw)-1-int(op)%8])
			case 4: // garbage frame of a pull type
				fd.conn.Send(MsgPullsDone, []byte{op, op, op})
			case 5: // declare completion
				fd.conn.Send(MsgPullsDone, pullsDone{LastFillAt: fd.c.Sched.Now()}.encode())
			}
			fd.c.Sched.RunFor(20 * time.Millisecond)
		}
		wait() // asserts exactly one terminal state, no hang
		for c, n := range fd.filled {
			if n != 1 {
				t.Fatalf("page %#x+%d shipped %d times", c.VMAStart, c.Index, n)
			}
		}
	})
}

// FuzzPullDecoders feeds arbitrary bytes to the four pull-protocol
// decoders: no panic, and everything accepted must roundtrip.
func FuzzPullDecoders(f *testing.F) {
	f.Add(pageReq{ID: 1, Epoch: 2, Coords: []ckpt.PageCoord{{VMAStart: 0x1000, Index: 3}}}.encode())
	f.Add(pageResp{ID: 4, Pages: []respPage{{Coord: ckpt.PageCoord{VMAStart: 0x2000, Index: 1}, Data: []byte{9}}}}.encode())
	f.Add(pullsDone{LastFillAt: 5, Demand: 6, Prefetched: 7, StallNs: 8}.encode())
	f.Add(postImage{FreezeStart: 1, Image: []byte{2}, Dir: []byte{3, 4}}.encode())
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		if pr, err := decodePageReq(data); err == nil {
			back, err := decodePageReq(pr.encode())
			if err != nil || back.ID != pr.ID || back.Epoch != pr.Epoch || len(back.Coords) != len(pr.Coords) {
				t.Fatalf("pageReq roundtrip broken: %v", err)
			}
		}
		if resp, err := decodePageResp(data); err == nil {
			back, err := decodePageResp(resp.encode())
			if err != nil || back.ID != resp.ID || len(back.Pages) != len(resp.Pages) {
				t.Fatalf("pageResp roundtrip broken: %v", err)
			}
			for i := range resp.Pages {
				if back.Pages[i].Coord != resp.Pages[i].Coord ||
					len(back.Pages[i].Data) != len(resp.Pages[i].Data) {
					t.Fatalf("pageResp page %d mutated in roundtrip", i)
				}
			}
		}
		if pd, err := decodePullsDone(data); err == nil {
			if back, err := decodePullsDone(pd.encode()); err != nil || back != pd {
				t.Fatalf("pullsDone roundtrip broken: %v", err)
			}
		}
		if pm, err := decodePostImage(data); err == nil {
			back, err := decodePostImage(pm.encode())
			if err != nil || back.FreezeStart != pm.FreezeStart ||
				len(back.Image) != len(pm.Image) || len(back.Dir) != len(pm.Dir) ||
				len(back.MemDelta) != len(pm.MemDelta) || len(back.SockDelta) != len(pm.SockDelta) {
				t.Fatalf("postImage roundtrip broken: %v", err)
			}
		}
	})
}
