package migration

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"dvemig/internal/netsim"
	"dvemig/internal/netstack"
	"dvemig/internal/proc"
	"dvemig/internal/simtime"
	"dvemig/internal/sockmig"
)

// TestMigrationFuzzStreamIntegrity is the randomized end-to-end property:
// under random client traffic and randomly timed chained migrations
// across three nodes, every client's byte stream arrives exactly once,
// in order, with no corruption — for every strategy.
func TestMigrationFuzzStreamIntegrity(t *testing.T) {
	for seed := uint64(1); seed <= 3; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed-%d", seed), func(t *testing.T) {
			strat := sockmig.Strategy(seed % 3)
			cfg := DefaultConfig()
			cfg.Strategy = strat
			e := newEnv(t, 3, 6, cfg)
			rnd := simtime.NewRand(seed)

			// Random traffic: each client sends random-size messages at
			// random intervals.
			var sent [6][]byte
			var tickers []*simtime.Ticker
			for i, cli := range e.clients {
				i, cli := i, cli
				period := time.Duration(10+rnd.Intn(60)) * time.Millisecond
				tk := simtime.NewTicker(e.c.Sched, period, "fuzz-cli", func() {
					n := 1 + rnd.Intn(600)
					msg := []byte(fmt.Sprintf("c%d.%d|", i, len(sent[i])))
					for len(msg) < n {
						msg = append(msg, byte('a'+len(msg)%26))
					}
					msg = append(msg, ';')
					sent[i] = append(sent[i], msg...)
					_ = cli.Send(msg)
				})
				tk.Start()
				tickers = append(tickers, tk)
			}

			// Chain of migrations after random delays: node1→node2→node3.
			hops := []int{1, 2}
			var scheduleHop func(hopIdx, fromIdx int, delay simtime.Duration)
			scheduleHop = func(hopIdx, fromIdx int, delay simtime.Duration) {
				if hopIdx >= len(hops) {
					return
				}
				to := hops[hopIdx]
				e.c.Sched.After(delay, "fuzz-migrate", func() {
					p := findProcess(e.c.Nodes[fromIdx], "zone_serv1")
					if p == nil {
						t.Errorf("hop %d: process not found on node%d", hopIdx, fromIdx+1)
						return
					}
					e.migrators[fromIdx].Migrate(p, e.c.Nodes[to].LocalIP, func(m *Metrics, err error) {
						if err != nil {
							t.Errorf("hop %d failed: %v", hopIdx, err)
							return
						}
						scheduleHop(hopIdx+1, to, simtime.Duration(300+rnd.Intn(1200))*1e6)
					})
				})
			}
			scheduleHop(0, 0, simtime.Duration(500+rnd.Intn(1500))*1e6)

			e.c.Sched.RunFor(12 * time.Second)
			for _, tk := range tickers {
				tk.Stop()
			}
			e.c.Sched.RunFor(3 * time.Second)

			if findProcess(e.c.Nodes[2], "zone_serv1") == nil {
				t.Fatal("process did not reach node3")
			}
			all := e.received.Bytes()
			for i := range e.clients {
				got := extractFuzzClient(all, i)
				if !bytes.Equal(got, sent[i]) {
					t.Fatalf("seed %d strategy %v client %d: stream mismatch (%d vs %d bytes)",
						seed, strat, i, len(got), len(sent[i]))
				}
			}
			// The DB session survived both hops.
			if got := e.dbPeer.Recv(); !bytes.Contains(got, []byte("ping;")) && e.dbPeer.BytesIn == 0 {
				t.Fatal("db session dead after chained migrations")
			}
		})
	}
}

// extractFuzzClient pulls client i's tokens ("c<i>.<off>|padding;") from
// the interleaved stream in order.
func extractFuzzClient(all []byte, i int) []byte {
	var out []byte
	prefix := []byte(fmt.Sprintf("c%d.", i))
	for _, tok := range bytes.Split(all, []byte(";")) {
		if bytes.HasPrefix(tok, prefix) {
			out = append(out, tok...)
			out = append(out, ';')
		}
	}
	return out
}

// TestConcurrentOppositeMigrations runs two migrations at once in
// opposite directions between the same pair of nodes; both must succeed
// and both processes keep their connections.
func TestConcurrentOppositeMigrations(t *testing.T) {
	cfg := DefaultConfig()
	e := newEnv(t, 2, 4, cfg) // zone_serv1 on node1 with clients

	// A second server on node2 with its own client.
	p2 := e.c.Nodes[1].Spawn("zone_serv2", 1)
	lst := netstack.NewTCPSocket(e.c.Nodes[1].Stack)
	if err := lst.Listen(e.c.ClusterIP, 7878); err != nil {
		t.Fatal(err)
	}
	var accepted2 int
	lst.OnAccept = func(ch *netstack.TCPSocket) {
		accepted2++
		p2.FDs.Install(&proc.TCPFile{Sock: ch})
	}
	p2.FDs.Install(&proc.TCPFile{Sock: lst})
	ext := e.c.NewExternalHost("p2cli")
	cli2 := netstack.NewTCPSocket(ext)
	if err := cli2.Connect(e.c.ClusterIP, 7878); err != nil {
		t.Fatal(err)
	}
	e.c.Sched.RunFor(time.Second)
	if accepted2 != 1 {
		t.Fatal("second server has no client")
	}
	var got2 []byte
	p2.Tick = func(self *proc.Process) {
		tcp, _ := self.Sockets()
		for _, sk := range tcp {
			got2 = append(got2, sk.Recv()...)
		}
	}
	e.c.Nodes[1].StartLoop(p2, 50*time.Millisecond)

	done1, done2 := false, false
	var err1, err2 error
	e.migrators[0].Migrate(e.p, e.c.Nodes[1].LocalIP, func(m *Metrics, err error) { done1, err1 = true, err })
	e.migrators[1].Migrate(p2, e.c.Nodes[0].LocalIP, func(m *Metrics, err error) { done2, err2 = true, err })
	e.c.Sched.RunFor(10 * time.Second)
	if !done1 || !done2 {
		t.Fatalf("concurrent migrations incomplete: %v %v", done1, done2)
	}
	if err1 != nil || err2 != nil {
		t.Fatalf("concurrent migrations failed: %v / %v", err1, err2)
	}
	if findProcess(e.c.Nodes[1], "zone_serv1") == nil || findProcess(e.c.Nodes[0], "zone_serv2") == nil {
		t.Fatal("processes did not swap nodes")
	}
	// Both still receive.
	cli2.Send([]byte("post-swap"))
	e.clients[0].Send([]byte("post-swap-too"))
	e.c.Sched.RunFor(time.Second)
	if !bytes.Contains(got2, []byte("post-swap")) {
		t.Fatal("swapped server 2 deaf")
	}
	if !bytes.Contains(e.received.Bytes(), []byte("post-swap-too")) {
		t.Fatal("swapped server 1 deaf")
	}
}

// TestBothEndsMigration exercises the paper's named future work: a
// connection between two zone-server-like processes where BOTH endpoints
// migrate, one after the other. The translation rules must follow each
// move (peer resolution through the local table, rule replication onto
// the destination, stale-rule cleanup).
func TestBothEndsMigration(t *testing.T) {
	cfg := DefaultConfig()
	c := proc.NewCluster(simtime.NewScheduler(), 4)
	var migs []*Migrator
	for _, n := range c.Nodes {
		m, err := NewMigrator(n, cfg)
		if err != nil {
			t.Fatal(err)
		}
		migs = append(migs, m)
	}
	// A on node1 connects to B on node2.
	pa := c.Nodes[0].Spawn("zoneA", 1)
	pb := c.Nodes[1].Spawn("zoneB", 1)
	lst := netstack.NewTCPSocket(c.Nodes[1].Stack)
	if err := lst.Listen(c.Nodes[1].LocalIP, 21000); err != nil {
		t.Fatal(err)
	}
	var bSide *netstack.TCPSocket
	lst.OnAccept = func(ch *netstack.TCPSocket) { bSide = ch }
	pb.FDs.Install(&proc.TCPFile{Sock: lst})
	aSide := netstack.NewTCPSocket(c.Nodes[0].Stack)
	if err := aSide.Connect(c.Nodes[1].LocalIP, 21000); err != nil {
		t.Fatal(err)
	}
	pa.FDs.Install(&proc.TCPFile{Sock: aSide})
	c.Sched.RunFor(time.Second)
	if bSide == nil {
		t.Fatal("setup: no connection")
	}
	pb.FDs.Install(&proc.TCPFile{Sock: bSide})
	// Both apps: poll, echo counters to each other.
	var aGot, bGot []byte
	pa.Tick = func(self *proc.Process) {
		tcp, _ := self.Sockets()
		for _, sk := range tcp {
			aGot = append(aGot, sk.Recv()...)
			if sk.State == netstack.TCPEstablished {
				_ = sk.Send([]byte("a"))
			}
		}
	}
	pb.Tick = func(self *proc.Process) {
		tcp, _ := self.Sockets()
		for _, sk := range tcp {
			bGot = append(bGot, sk.Recv()...)
			if sk.State == netstack.TCPEstablished {
				_ = sk.Send([]byte("b"))
			}
		}
	}
	c.Nodes[0].StartLoop(pa, 50*time.Millisecond)
	c.Nodes[1].StartLoop(pb, 50*time.Millisecond)
	c.Sched.RunFor(500 * time.Millisecond)

	migrateAndWait := func(mi int, p *proc.Process, to int) {
		t.Helper()
		done := false
		var mErr error
		migs[mi].Migrate(p, c.Nodes[to].LocalIP, func(m *Metrics, err error) { done, mErr = true, err })
		c.Sched.RunFor(5 * time.Second)
		if !done || mErr != nil {
			t.Fatalf("migration failed: done=%v err=%v", done, mErr)
		}
	}

	// Hop 1: A moves node1 → node3.
	migrateAndWait(0, pa, 2)
	pa = findProcess(c.Nodes[2], "zoneA")
	if pa == nil {
		t.Fatal("A not on node3")
	}
	beforeA, beforeB := len(aGot), len(bGot)
	c.Sched.RunFor(time.Second)
	if len(aGot) <= beforeA || len(bGot) <= beforeB {
		t.Fatal("traffic stalled after A's move")
	}

	// Hop 2: B moves node2 → node4 — the peer (A) already migrated, so
	// the source must resolve A's current home through its own
	// translation table and replicate its rule to node4.
	migrateAndWait(1, pb, 3)
	pb = findProcess(c.Nodes[3], "zoneB")
	if pb == nil {
		t.Fatal("B not on node4")
	}
	beforeA, beforeB = len(aGot), len(bGot)
	c.Sched.RunFor(2 * time.Second)
	if len(aGot) <= beforeA {
		t.Fatalf("A receives nothing after B's move (%d)", len(aGot)-beforeA)
	}
	if len(bGot) <= beforeB {
		t.Fatalf("B receives nothing after B's move (%d)", len(bGot)-beforeB)
	}
	// Stale rules cleaned up: node2 (B's old host) holds none.
	if n := len(migs[1].Transd.Translator().Rules()); n != 0 {
		t.Fatalf("stale rules on node2: %d", n)
	}
	// Node3 (A's host) translates toward node4; node4 (B's host)
	// translates toward node3.
	if n := len(migs[2].Transd.Translator().Rules()); n != 1 {
		t.Fatalf("rules on node3 = %d, want 1", n)
	}
	if n := len(migs[3].Transd.Translator().Rules()); n != 1 {
		t.Fatalf("rules on node4 = %d, want 1", n)
	}
}

// TestDestinationDiesMidMigration kills the destination node during the
// precopy phase: the migration must abort by deadline, and the process
// must thaw at the source with all its sockets rehashed and serving.
func TestDestinationDiesMidMigration(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Deadline = 10 * 1e9
	e := newEnv(t, 2, 4, cfg)
	var gotErr error
	done := false
	e.migrators[0].Migrate(e.p, e.c.Nodes[1].LocalIP, func(m *Metrics, err error) {
		gotErr, done = err, true
	})
	// Kill node2 a moment into the migration (mid-precopy).
	e.c.Sched.After(200*time.Millisecond, "kill", func() {
		e.c.Nodes[1].Fail(e.c)
	})
	e.c.Sched.RunFor(30 * time.Second)
	if !done || gotErr == nil {
		t.Fatalf("migration did not abort: done=%v err=%v", done, gotErr)
	}
	if e.p.State != proc.ProcRunning {
		t.Fatalf("process state after abort = %v", e.p.State)
	}
	// The process still serves its clients from the source.
	before := e.received.Len()
	e.clients[0].Send([]byte("still-here"))
	e.c.Sched.RunFor(2 * time.Second)
	if e.received.Len() <= before {
		t.Fatal("process deaf after aborted migration")
	}
	tcp, _ := e.p.Sockets()
	for _, sk := range tcp {
		if sk.Unhashed() {
			t.Fatal("socket left unhashed after thaw")
		}
	}
}

// TestDestinationDiesDuringFreeze kills the destination after the freeze
// started; the deadline must still rescue the process.
func TestDestinationDiesDuringFreeze(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Deadline = 5 * 1e9
	cfg.InitialTimeout = 100 * 1e6 // freeze quickly
	e := newEnv(t, 2, 2, cfg)
	var gotErr error
	done := false
	e.migrators[0].Migrate(e.p, e.c.Nodes[1].LocalIP, func(m *Metrics, err error) {
		gotErr, done = err, true
	})
	// Kill the destination the instant the freeze begins.
	killed := false
	watch := simtime.NewTicker(e.c.Sched, 100*time.Microsecond, "watch", func() {
		if !killed && e.p.State == proc.ProcFrozen {
			killed = true
			e.c.Nodes[1].Fail(e.c)
		}
	})
	watch.Start()
	defer watch.Stop()
	e.c.Sched.RunFor(30 * time.Second)
	if !done || gotErr == nil {
		t.Fatalf("migration did not abort: done=%v err=%v", done, gotErr)
	}
	if e.p.State != proc.ProcRunning {
		t.Fatal("process not thawed")
	}
	before := e.received.Len()
	e.clients[0].Send([]byte("alive"))
	e.c.Sched.RunFor(3 * time.Second)
	if e.received.Len() <= before {
		t.Fatal("process dead after freeze abort")
	}
}

// TestMigrationOverLossyNetwork runs a live migration while both the
// players' access link and the in-cluster links drop packets at random.
// TCP (fast retransmit + RTO) must carry both the client streams and the
// migd transfer itself to a correct result.
func TestMigrationOverLossyNetwork(t *testing.T) {
	cfg := DefaultConfig()
	e := newEnv(t, 2, 4, cfg)
	// Turn on loss after setup so the environment builds deterministically.
	e.c.LastExternalNIC().Params.LossRate = 0.01
	for _, n := range e.c.Nodes {
		n.LocalNIC.Params.LossRate = 0.005
	}
	var sent [][]byte
	var tickers []*simtime.Ticker
	for i, cli := range e.clients {
		i, cli := i, cli
		sent = append(sent, nil)
		tk := simtime.NewTicker(e.c.Sched, 60*time.Millisecond, "cli", func() {
			msg := []byte(fmt.Sprintf("c%d.%d;", i, len(sent[i])))
			sent[i] = append(sent[i], msg...)
			cli.Send(msg)
		})
		tk.Start()
		tickers = append(tickers, tk)
	}
	m := e.migrate(t, 1)
	if m.FreezeTime <= 0 {
		t.Fatal("no freeze measured")
	}
	// Long drain: loss recovery may need several RTOs.
	e.c.Sched.RunFor(10 * time.Second)
	for _, tk := range tickers {
		tk.Stop()
	}
	e.c.Sched.RunFor(20 * time.Second)
	all := e.received.Bytes()
	for i := range e.clients {
		got := extractClient(all, i)
		if !bytes.Equal(got, sent[i]) {
			t.Fatalf("client %d stream broken under loss: %d vs %d bytes", i, len(got), len(sent[i]))
		}
	}
	if e.c.LastExternalNIC().LossDropped == 0 {
		t.Fatal("loss model inactive; test vacuous")
	}
}

// TestFreezeWithThreadInSyscall: a thread blocked in a socket system call
// when the freeze signal arrives must abandon the call (emptying backlog
// and prequeue) so the three-queue socket dump stays sufficient (§V-C1).
func TestFreezeWithThreadInSyscall(t *testing.T) {
	cfg := DefaultConfig()
	e := newEnv(t, 2, 4, cfg)
	tcp, _ := e.p.Sockets()
	// One thread locks a socket (syscall), another waits in recv.
	e.p.Threads[0].EnterSyscall(tcp[1], false)
	e.p.Threads[1].EnterSyscall(tcp[2], true)
	// Traffic arrives on the locked socket: it lands on the backlog.
	e.clients[0].Send([]byte("locked-data"))
	e.c.Sched.RunFor(100 * time.Millisecond)
	if tcp[1].BacklogLen() == 0 {
		t.Fatal("setup: no backlog accumulated")
	}
	m := e.migrate(t, 1)
	if m.FreezeTime <= 0 {
		t.Fatal("no migration")
	}
	// The data that sat on the backlog was processed when the signal
	// released the lock, migrated inside the regular queues, and reached
	// the application on the destination.
	e.c.Sched.RunFor(2 * time.Second)
	if !bytes.Contains(e.received.Bytes(), []byte("locked-data")) {
		t.Fatal("backlog data lost across freeze")
	}
	q := findProcess(e.c.Nodes[1], "zone_serv1")
	qtcp, _ := q.Sockets()
	for _, sk := range qtcp {
		if sk.BacklogLen() != 0 || sk.PrequeueBusy() {
			t.Fatal("restored socket has backlog/prequeue content")
		}
	}
}

// TestOOOQueueMigrates engineers an out-of-order queue at freeze time:
// a missing middle segment leaves later segments parked in the OOO queue,
// which must migrate and complete once the hole is retransmitted into the
// destination.
func TestOOOQueueMigrates(t *testing.T) {
	cfg := DefaultConfig()
	cfg.InitialTimeout = 100 * 1e6 // fast precopy
	e := newEnv(t, 2, 1, cfg)
	cli := e.clients[0]
	// Hold the first data segment at node1 so followers go out of order.
	var held bool
	hookID := e.c.Nodes[0].Stack.RegisterHook(netstack.HookLocalIn, -200,
		func(pk *netsim.Packet) netstack.Verdict {
			if !held && pk.Proto == netsim.ProtoTCP && len(pk.Payload) > 0 && pk.DstPort == 7777 {
				held = true
				return netstack.VerdictDrop // client's RTO will resupply it later
			}
			return netstack.VerdictAccept
		})
	cli.Send(bytes.Repeat([]byte("A"), netstack.DefaultMSS)) // dropped
	cli.Send(bytes.Repeat([]byte("B"), 100))                 // lands in OOO
	e.c.Sched.RunFor(20 * time.Millisecond)
	// Confirm OOO content exists on the server side pre-migration.
	srvTCP, _ := e.p.Sockets()
	oooFound := false
	for _, sk := range srvTCP {
		if len(sk.OOOQueue()) > 0 {
			oooFound = true
		}
	}
	if !oooFound {
		t.Fatal("setup: no out-of-order state")
	}
	e.c.Nodes[0].Stack.UnregisterHook(hookID)
	m := e.migrate(t, 1) // RTO (200ms+) fires after freeze; hole fills at node2
	_ = m
	e.c.Sched.RunFor(5 * time.Second)
	want := append(bytes.Repeat([]byte("A"), netstack.DefaultMSS), bytes.Repeat([]byte("B"), 100)...)
	if !bytes.Contains(e.received.Bytes(), want) {
		t.Fatal("ooo-held data did not complete after migration")
	}
}

// TestConcurrentInboundMigrations sends two processes from two sources to
// the SAME destination at once: the destination must handle both inbound
// streams independently.
func TestConcurrentInboundMigrations(t *testing.T) {
	cfg := DefaultConfig()
	c := proc.NewCluster(simtime.NewScheduler(), 3)
	var migs []*Migrator
	for _, n := range c.Nodes {
		m, err := NewMigrator(n, cfg)
		if err != nil {
			t.Fatal(err)
		}
		migs = append(migs, m)
	}
	mk := func(node int, name string) *proc.Process {
		p := c.Nodes[node].Spawn(name, 1)
		v := p.AS.Mmap(64*proc.PageSize, "rw-")
		for i := uint64(0); i < 64; i += 2 {
			p.AS.Write(v.Start+i*proc.PageSize, []byte{byte(i)})
		}
		ticks := 0
		p.Tick = func(self *proc.Process) {
			ticks++
			_ = self.AS.Touch(v.Start + uint64(ticks%64)*proc.PageSize)
		}
		c.Nodes[node].StartLoop(p, 50*time.Millisecond)
		return p
	}
	pa := mk(0, "svcA")
	pb := mk(1, "svcB")
	c.Sched.RunFor(time.Second)
	var doneA, doneB bool
	var errA, errB error
	migs[0].Migrate(pa, c.Nodes[2].LocalIP, func(m *Metrics, err error) { doneA, errA = true, err })
	migs[1].Migrate(pb, c.Nodes[2].LocalIP, func(m *Metrics, err error) { doneB, errB = true, err })
	c.Sched.RunFor(15 * time.Second)
	if !doneA || !doneB || errA != nil || errB != nil {
		t.Fatalf("concurrent inbound: A(%v,%v) B(%v,%v)", doneA, errA, doneB, errB)
	}
	if findProcess(c.Nodes[2], "svcA") == nil || findProcess(c.Nodes[2], "svcB") == nil {
		t.Fatal("both processes should be on node3")
	}
	if c.Nodes[2].NumProcesses() != 2 {
		t.Fatalf("node3 has %d processes", c.Nodes[2].NumProcesses())
	}
}

// TestMigdSurvivesGarbageConnection: random bytes thrown at the migd port
// must not disturb a concurrent legitimate migration.
func TestMigdSurvivesGarbageConnection(t *testing.T) {
	cfg := DefaultConfig()
	e := newEnv(t, 2, 2, cfg)
	// Garbage client against node2's migd from node1's stack.
	junk := netstack.NewTCPSocket(e.c.Nodes[0].Stack)
	if err := junk.Connect(e.c.Nodes[1].LocalIP, MigdPort); err != nil {
		t.Fatal(err)
	}
	e.c.Sched.RunFor(200 * time.Millisecond)
	junk.Send([]byte{0xFF, 0x00, 0x00, 0x00, 0x08, 1, 2, 3, 4, 5, 6, 7, 8}) // unknown type
	junk.Send([]byte{byte(MsgMigrateReq), 0x00, 0x00, 0x00, 0x02, 9, 9})    // short payload
	e.c.Sched.RunFor(200 * time.Millisecond)
	// A real migration still works.
	m := e.migrate(t, 1)
	if m.FreezeTime <= 0 {
		t.Fatal("legitimate migration failed alongside garbage peer")
	}
}

// TestMigratorStopRefusesInbound: after Stop, new migrations to the node
// fail cleanly and the source process keeps running.
func TestMigratorStopRefusesInbound(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Deadline = 8e9
	e := newEnv(t, 2, 2, cfg)
	e.migrators[1].Stop()
	var done bool
	var gotErr error
	e.migrators[0].Migrate(e.p, e.c.Nodes[1].LocalIP, func(m *Metrics, err error) { done, gotErr = true, err })
	e.c.Sched.RunFor(30 * time.Second)
	if !done || gotErr == nil {
		t.Fatalf("migration to stopped migd should fail: done=%v err=%v", done, gotErr)
	}
	if e.p.State != proc.ProcRunning {
		t.Fatal("process not left running")
	}
}
