package migration

import (
	"fmt"
	"testing"
	"time"

	"dvemig/internal/ckpt"
	"dvemig/internal/netstack"
	"dvemig/internal/obs"
	"dvemig/internal/proc"
	"dvemig/internal/simtime"
)

// failoverEnv: a counter service on node1 guarded by node2.
func failoverSetup(t *testing.T) (c *proc.Cluster, p *proc.Process, g *Guardian, sb *Standby) {
	t.Helper()
	c = proc.NewCluster(simtime.NewScheduler(), 2)
	var err error
	sb, err = NewStandby(c.Nodes[1])
	if err != nil {
		t.Fatal(err)
	}
	p = c.Nodes[0].Spawn("counter_svc", 1)
	v := p.AS.Mmap(8*proc.PageSize, "rw-")
	// The app persists its counter into page 0 each tick.
	p.Tick = func(self *proc.Process) {
		cur, _ := self.AS.Read(v.Start, 8)
		n := uint64(cur[0]) | uint64(cur[1])<<8
		n++
		_ = self.AS.Write(v.Start, []byte{byte(n), byte(n >> 8)})
	}
	// A UDP service port and a listener, plus an established conn that
	// must NOT survive a crash.
	us := netstack.NewUDPSocket(c.Nodes[0].Stack)
	if err := us.Bind(c.ClusterIP, 4242); err != nil {
		t.Fatal(err)
	}
	p.FDs.Install(&proc.UDPFile{Sock: us})
	lst := netstack.NewTCPSocket(c.Nodes[0].Stack)
	if err := lst.Listen(c.ClusterIP, 4243); err != nil {
		t.Fatal(err)
	}
	p.FDs.Install(&proc.TCPFile{Sock: lst})
	est := netstack.NewTCPSocket(c.Nodes[0].Stack)
	if err := est.Connect(c.Nodes[1].LocalIP, StandbyPort); err != nil {
		t.Fatal(err) // any reachable port works for an established conn
	}
	p.FDs.Install(&proc.TCPFile{Sock: est})
	c.Nodes[0].StartLoop(p, 50*time.Millisecond)
	c.Sched.RunFor(time.Second)

	g, err = NewGuardian(p, c.Nodes[1].LocalIP, 500*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	return c, p, g, sb
}

func counterOf(t *testing.T, p *proc.Process) uint64 {
	t.Helper()
	v := p.AS.VMAs()[0]
	cur, err := p.AS.Read(v.Start, 8)
	if err != nil {
		t.Fatal(err)
	}
	return uint64(cur[0]) | uint64(cur[1])<<8
}

func TestGuardianShipsCheckpoints(t *testing.T) {
	c, _, g, sb := failoverSetup(t)
	c.Sched.RunFor(3 * time.Second)
	if g.Sent < 5 {
		t.Fatalf("guardian sent %d checkpoints", g.Sent)
	}
	if !sb.Have("counter_svc") {
		t.Fatal("standby stored nothing")
	}
	if g.LastBytes < 1000 {
		t.Fatalf("image suspiciously small: %d bytes", g.LastBytes)
	}
}

func TestFailoverRestartsFromLatestImage(t *testing.T) {
	c, p, g, sb := failoverSetup(t)
	c.Sched.RunFor(5 * time.Second)
	before := counterOf(t, p)
	if before == 0 {
		t.Fatal("counter never ran")
	}
	// Node1 dies.
	g.Stop()
	c.Nodes[0].Fail(c)
	c.Sched.RunFor(time.Second)

	q, err := sb.Activate("counter_svc")
	if err != nil {
		t.Fatal(err)
	}
	if q.Node != c.Nodes[1] {
		t.Fatal("restarted on wrong node")
	}
	restored := counterOf(t, q)
	// At most one checkpoint interval of progress lost (500ms = 10 ticks),
	// plus the second of post-failure delay during which nothing ran.
	if restored > before || before-restored > 11 {
		t.Fatalf("counter restored to %d, last live value %d (too much loss)", restored, before)
	}
	// The loop continues on the standby.
	c.Sched.RunFor(time.Second)
	after := counterOf(t, q)
	if after <= restored {
		t.Fatal("restarted process does not run")
	}
	// FD table: UDP and listener restored, established TCP dropped.
	tcp, udp := q.Sockets()
	if len(udp) != 1 {
		t.Fatalf("udp sockets = %d", len(udp))
	}
	listeners, established := 0, 0
	for _, sk := range tcp {
		if sk.State == netstack.TCPListen {
			listeners++
		} else {
			established++
		}
	}
	if listeners != 1 || established != 0 {
		t.Fatalf("tcp fds after failover: %d listeners, %d established", listeners, established)
	}
	// Service ports answer on the standby: a client datagram arrives.
	ext := c.NewExternalHost("probe")
	extAddr, _ := ext.SourceAddrFor(c.ClusterIP)
	uc := netstack.NewUDPSocket(ext)
	uc.BindEphemeral(extAddr)
	uc.SendTo(c.ClusterIP, 4242, []byte("alive?"))
	c.Sched.RunFor(time.Second)
	if udp[0].QueueLen() == 0 && udp[0].PacketsIn == 0 {
		t.Fatal("restored UDP port unreachable")
	}
	// A second activation must fail (image consumed).
	if _, err := sb.Activate("counter_svc"); err == nil {
		t.Fatal("image re-activated twice")
	}
}

func TestStandbyKeepsNewestImage(t *testing.T) {
	c, _, _, sb := failoverSetup(t)
	c.Sched.RunFor(2 * time.Second)
	first := sb.Stored
	c.Sched.RunFor(2 * time.Second)
	if sb.Stored <= first {
		t.Fatal("standby stopped accepting newer images")
	}
}

func TestBehaviorRegistryBounded(t *testing.T) {
	// Every checkpoint registers a behavior token; before the retention
	// fix the standby kept only the newest image but never released the
	// superseded tokens, so the registry grew without bound.
	c, _, g, sb := failoverSetup(t)
	c.Sched.RunFor(2 * time.Second)
	base := len(behaviorRegistry)
	c.Sched.RunFor(20 * time.Second) // ~40 more checkpoints
	if g.Sent < 20 {
		t.Fatalf("guardian only sent %d checkpoints", g.Sent)
	}
	if grown := len(behaviorRegistry) - base; grown > 1 {
		t.Fatalf("behavior registry grew by %d entries across %d checkpoints", grown, g.Sent)
	}
	if sb.NumImages() != 1 {
		t.Fatalf("images = %d, want 1 (newest per name)", sb.NumImages())
	}
}

func TestStandbyRetentionBound(t *testing.T) {
	c := proc.NewCluster(simtime.NewScheduler(), 1)
	sb, err := NewStandby(c.Nodes[0])
	if err != nil {
		t.Fatal(err)
	}
	sb.MaxImages = 3
	var tokens []uint64
	for i := 0; i < 5; i++ {
		tok := registerBehavior(&ckpt.Behavior{})
		tokens = append(tokens, tok)
		sb.offer(fmt.Sprintf("svc%d", i), tok, 1, 0, obs.TraceContext{}, 0, []byte("img"))
		c.Sched.RunFor(time.Millisecond) // distinct receive times
	}
	if sb.NumImages() != 3 {
		t.Fatalf("images = %d, want 3", sb.NumImages())
	}
	if sb.Evicted != 2 {
		t.Fatalf("Evicted = %d, want 2", sb.Evicted)
	}
	// Stalest receive times evicted first, their tokens released.
	if sb.Have("svc0") || sb.Have("svc1") {
		t.Fatal("stalest images not evicted")
	}
	if !sb.Have("svc2") || !sb.Have("svc3") || !sb.Have("svc4") {
		t.Fatal("fresh images evicted")
	}
	if behaviorRegistry[tokens[0]] != nil || behaviorRegistry[tokens[1]] != nil {
		t.Fatal("evicted images leaked their behavior tokens")
	}
	for _, tok := range tokens[2:] {
		takeBehavior(tok) // clean up for other tests
	}
}

func TestStandbyEpochPrecedence(t *testing.T) {
	c := proc.NewCluster(simtime.NewScheduler(), 1)
	sb, err := NewStandby(c.Nodes[0])
	if err != nil {
		t.Fatal(err)
	}
	t1 := registerBehavior(&ckpt.Behavior{})
	sb.offer("svc", t1, 9, 1, obs.TraceContext{}, 7, []byte("old-owner"))
	// A new owner's guardian restarts seq at 1 but carries a higher
	// epoch: epoch precedence must let it supersede seq 9.
	t2 := registerBehavior(&ckpt.Behavior{})
	sb.offer("svc", t2, 1, 2, obs.TraceContext{}, 8, []byte("new-owner"))
	ep, seq, from, ok := sb.ImageInfo("svc")
	if !ok || ep != 2 || seq != 1 || from != 8 {
		t.Fatalf("ImageInfo = %d/%d/%v/%v", ep, seq, from, ok)
	}
	// A stale-epoch image is refused no matter how high its seq.
	t3 := registerBehavior(&ckpt.Behavior{})
	sb.offer("svc", t3, 99, 1, obs.TraceContext{}, 7, []byte("stale"))
	if sb.RejectedStale != 1 {
		t.Fatalf("RejectedStale = %d, want 1", sb.RejectedStale)
	}
	if ep, _, _, _ := sb.ImageInfo("svc"); ep != 2 {
		t.Fatal("stale image replaced the fresh one")
	}
	// Superseded and refused tokens released; the live one retained.
	if behaviorRegistry[t1] != nil || behaviorRegistry[t3] != nil {
		t.Fatal("superseded/refused tokens leaked")
	}
	if behaviorRegistry[t2] == nil {
		t.Fatal("live image's token released prematurely")
	}
	takeBehavior(t2)
}

func TestActivateUnknownName(t *testing.T) {
	c := proc.NewCluster(simtime.NewScheduler(), 1)
	sb, err := NewStandby(c.Nodes[0])
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sb.Activate("ghost"); err == nil {
		t.Fatal("unknown activation accepted")
	}
}

var _ = simtime.JiffyPeriod
