package migration

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"dvemig/internal/netsim"
	"dvemig/internal/netstack"
	"dvemig/internal/proc"
	"dvemig/internal/simtime"
	"dvemig/internal/sockmig"
)

// env is a cluster where every node runs a migrator, plus a DB server on
// the last node and a set of external TCP clients streaming to a zone
// process on node1.
type env struct {
	c         *proc.Cluster
	migrators []*Migrator
	p         *proc.Process
	clients   []*netstack.TCPSocket
	dbPeer    *netstack.TCPSocket
	received  *bytes.Buffer // all bytes the zone app consumed, in order per client
}

func newEnv(t *testing.T, nodes, nClients int, cfg Config) *env {
	t.Helper()
	e := &env{c: proc.NewCluster(simtime.NewScheduler(), nodes), received: &bytes.Buffer{}}
	for _, n := range e.c.Nodes {
		m, err := NewMigrator(n, cfg)
		if err != nil {
			t.Fatal(err)
		}
		e.migrators = append(e.migrators, m)
	}
	n1 := e.c.Nodes[0]
	e.p = n1.Spawn("zone_serv1", 2)
	heap := e.p.AS.Mmap(256*proc.PageSize, "rw-")
	for i := uint64(0); i < 256; i += 4 {
		e.p.AS.Write(heap.Start+i*proc.PageSize, []byte{byte(i), 0xCD})
	}
	e.p.FDs.Install(&proc.RegularFile{Path: "/srv/world.map", Offset: 128})

	// Listener for game clients on the cluster IP.
	lst := netstack.NewTCPSocket(n1.Stack)
	if err := lst.Listen(e.c.ClusterIP, 7777); err != nil {
		t.Fatal(err)
	}
	var accepted []*netstack.TCPSocket
	lst.OnAccept = func(ch *netstack.TCPSocket) { accepted = append(accepted, ch) }
	e.p.FDs.Install(&proc.TCPFile{Sock: lst})

	ext := e.c.NewExternalHost("players")
	for i := 0; i < nClients; i++ {
		cli := netstack.NewTCPSocket(ext)
		if err := cli.Connect(e.c.ClusterIP, 7777); err != nil {
			t.Fatal(err)
		}
		e.clients = append(e.clients, cli)
	}
	// DB session to the last node.
	dbNode := e.c.Nodes[nodes-1]
	dbl := netstack.NewTCPSocket(dbNode.Stack)
	if err := dbl.Listen(dbNode.LocalIP, 3306); err != nil {
		t.Fatal(err)
	}
	dbl.OnAccept = func(ch *netstack.TCPSocket) { e.dbPeer = ch }
	db := netstack.NewTCPSocket(n1.Stack)
	if err := db.Connect(dbNode.LocalIP, 3306); err != nil {
		t.Fatal(err)
	}
	e.c.Sched.RunFor(time.Second)
	if len(accepted) != nClients || e.dbPeer == nil {
		t.Fatalf("setup: accepted=%d db=%v", len(accepted), e.dbPeer)
	}
	for _, sk := range accepted {
		e.p.FDs.Install(&proc.TCPFile{Sock: sk})
	}
	e.p.FDs.Install(&proc.TCPFile{Sock: db})

	// The app: a polling real-time loop that drains every socket, dirties
	// some memory, and pings the database. The closure travels with the
	// process (program text is on every node).
	received := e.received
	counter := 0
	e.p.Tick = func(self *proc.Process) {
		counter++
		tcp, _ := self.Sockets()
		for _, sk := range tcp {
			if data := sk.Recv(); len(data) > 0 {
				received.Write(data)
			}
		}
		self.AS.Touch(heap.Start + uint64(counter%256)*proc.PageSize)
		// Ping the DB via the last TCP fd (the db connection).
		if len(tcp) > 0 {
			_ = tcp[len(tcp)-1].Send([]byte("ping;"))
		}
	}
	e.p.CPUDemand = 0.4
	n1.StartLoop(e.p, 50*time.Millisecond)
	e.c.Sched.RunFor(200 * time.Millisecond)
	return e
}

// migrate runs a migration from node1 to dst and returns the metrics.
func (e *env) migrate(t *testing.T, dstIdx int) *Metrics {
	t.Helper()
	var got *Metrics
	var gotErr error
	done := false
	e.migrators[0].Migrate(e.p, e.c.Nodes[dstIdx].LocalIP, func(m *Metrics, err error) {
		got, gotErr, done = m, err, true
	})
	e.c.Sched.RunFor(10 * time.Second)
	if !done {
		t.Fatal("migration never completed")
	}
	if gotErr != nil {
		t.Fatalf("migration failed: %v", gotErr)
	}
	return got
}

func findProcess(n *proc.Node, name string) *proc.Process {
	for _, p := range n.Processes() {
		if p.Name == name {
			return p
		}
	}
	return nil
}

func TestLiveMigrationEndToEnd(t *testing.T) {
	for _, strat := range []sockmig.Strategy{sockmig.Iterative, sockmig.Collective, sockmig.IncrementalCollective} {
		t.Run(strat.String(), func(t *testing.T) {
			cfg := DefaultConfig()
			cfg.Strategy = strat
			e := newEnv(t, 3, 8, cfg)
			origPID := e.p.PID
			var regs []proc.Registers
			for _, th := range e.p.Threads {
				regs = append(regs, th.Regs)
			}
			memBefore, _ := e.p.AS.Read(e.p.AS.VMAs()[0].Start, 64*proc.PageSize)

			// Clients stream during the whole migration.
			var sent [][]byte
			var tickers []*simtime.Ticker
			for i, cli := range e.clients {
				i, cli := i, cli
				sent = append(sent, nil)
				tk := simtime.NewTicker(e.c.Sched, 40*time.Millisecond, "cli", func() {
					msg := []byte(fmt.Sprintf("c%d.%d;", i, len(sent[i])))
					sent[i] = append(sent[i], msg...)
					cli.Send(msg)
				})
				tk.Start()
				tickers = append(tickers, tk)
			}
			e.c.Sched.RunFor(300 * time.Millisecond)

			m := e.migrate(t, 1)
			dst := e.c.Nodes[1]
			q := findProcess(dst, "zone_serv1")
			if q == nil {
				t.Fatal("process did not arrive on destination")
			}
			if q.PID != origPID {
				t.Fatalf("PID changed: %d -> %d", origPID, q.PID)
			}
			if len(q.Threads) != 2 {
				t.Fatal("thread count lost")
			}
			for i, th := range q.Threads {
				if th.Regs != regs[i] {
					t.Fatal("registers corrupted")
				}
			}
			// Memory written before migration must be intact (pages
			// touched by ticks after the read are beyond the checked
			// region prefix only if counter stayed within it; compare
			// the untouched tail instead: bytes at offset 1 of each page
			// were only written at setup).
			memAfter, err := q.AS.Read(q.AS.VMAs()[0].Start, 64*proc.PageSize)
			if err != nil {
				t.Fatal(err)
			}
			for pg := 0; pg < 64; pg += 4 {
				if memBefore[pg*proc.PageSize+1] != 0xCD || memAfter[pg*proc.PageSize+1] != 0xCD {
					t.Fatalf("memory corrupted at page %d", pg)
				}
			}
			if m.TCPMigrated != 10 { // 8 clients + listener + db
				t.Fatalf("TCPMigrated = %d, want 10", m.TCPMigrated)
			}
			if m.FreezeTime <= 0 || m.FreezeTime > 500*time.Millisecond {
				t.Fatalf("freeze time implausible: %v", m.FreezeTime)
			}
			// The process left the source.
			if findProcess(e.c.Nodes[0], "zone_serv1") != nil {
				t.Fatal("process still on source")
			}
			// Loop continues on destination and keeps consuming client
			// streams without loss or reordering. Stop the streams, then
			// let everything in flight drain before comparing.
			e.c.Sched.RunFor(2 * time.Second)
			for _, tk := range tickers {
				tk.Stop()
			}
			e.c.Sched.RunFor(time.Second)
			all := e.received.Bytes()
			for i := range e.clients {
				want := sent[i]
				got := extractClient(all, i)
				if !bytes.Equal(got, want) {
					t.Fatalf("client %d stream mismatch: got %d bytes, want %d\n got=%q\nwant=%q",
						i, len(got), len(want), trunc(got), trunc(want))
				}
			}
			// DB connection still alive: the dest app pings; peer sees data.
			dbGot := e.dbPeer.Recv()
			if !bytes.Contains(dbGot, []byte("ping;")) {
				t.Fatal("db connection dead after migration")
			}
		})
	}
}

// extractClient pulls the "c<i>.*;" tokens for one client from the
// interleaved stream, preserving order.
func extractClient(all []byte, i int) []byte {
	var out []byte
	prefix := []byte(fmt.Sprintf("c%d.", i))
	for _, tok := range bytes.Split(all, []byte(";")) {
		if bytes.HasPrefix(tok, prefix) {
			out = append(out, tok...)
			out = append(out, ';')
		}
	}
	return out
}

func trunc(b []byte) []byte {
	if len(b) > 120 {
		return b[:120]
	}
	return b
}

func TestFreezeTimeOrderingAcrossStrategies(t *testing.T) {
	freeze := map[sockmig.Strategy]time.Duration{}
	for _, strat := range []sockmig.Strategy{sockmig.Iterative, sockmig.Collective, sockmig.IncrementalCollective} {
		cfg := DefaultConfig()
		cfg.Strategy = strat
		e := newEnv(t, 2, 128, cfg)
		m := e.migrate(t, 1)
		freeze[strat] = m.FreezeTime
	}
	if !(freeze[sockmig.Iterative] > freeze[sockmig.Collective]) {
		t.Fatalf("iterative %v not slower than collective %v",
			freeze[sockmig.Iterative], freeze[sockmig.Collective])
	}
	if !(freeze[sockmig.Collective] > freeze[sockmig.IncrementalCollective]) {
		t.Fatalf("collective %v not slower than incremental %v",
			freeze[sockmig.Collective], freeze[sockmig.IncrementalCollective])
	}
}

func TestFreezeBytesIncrementalMuchSmaller(t *testing.T) {
	var full, inc uint64
	{
		cfg := DefaultConfig()
		cfg.Strategy = sockmig.Collective
		e := newEnv(t, 2, 64, cfg)
		full = e.migrate(t, 1).FreezeSockBytes
	}
	{
		cfg := DefaultConfig()
		e := newEnv(t, 2, 64, cfg)
		inc = e.migrate(t, 1).FreezeSockBytes
	}
	if inc*4 > full {
		t.Fatalf("incremental freeze bytes %d not ≪ collective %d", inc, full)
	}
}

func TestCapturePreventsRetransmission(t *testing.T) {
	run := func(enableCapture bool) (retrans uint64, captured uint32) {
		cfg := DefaultConfig()
		cfg.EnableCapture = enableCapture
		e := newEnv(t, 2, 4, cfg)
		// Clients hammer during migration so packets land in the freeze
		// window.
		tk := simtime.NewTicker(e.c.Sched, 500*time.Microsecond, "spam", func() {
			for _, cli := range e.clients {
				cli.Send([]byte("x"))
			}
		})
		tk.Start()
		defer tk.Stop()
		m := e.migrate(t, 1)
		for _, cli := range e.clients {
			retrans += cli.Retransmits
		}
		return retrans, m.Captured
	}
	retransWith, captured := run(true)
	if captured == 0 {
		t.Fatal("capture saw no packets despite client spam during freeze")
	}
	if retransWith != 0 {
		t.Fatalf("capture enabled but clients retransmitted %d times", retransWith)
	}
	retransWithout, _ := run(false)
	if retransWithout == 0 {
		t.Fatal("without capture, freeze-window packets should be lost and retransmitted")
	}
}

func TestMigrationToUnreachableNodeFails(t *testing.T) {
	cfg := DefaultConfig()
	e := newEnv(t, 2, 2, cfg)
	var gotErr error
	done := false
	// 192.168.1.99 has no node.
	e.migrators[0].Migrate(e.p, proc.LocalNet+99, func(m *Metrics, err error) {
		gotErr, done = err, true
	})
	e.c.Sched.RunFor(30 * time.Second)
	if !done || gotErr == nil {
		t.Fatal("migration to unreachable node did not fail")
	}
	if e.p.State != proc.ProcRunning {
		t.Fatal("process not left running after failed migration")
	}
	// And it can still migrate successfully afterwards.
	m := e.migrate(t, 1)
	if m.FreezeTime <= 0 {
		t.Fatal("follow-up migration broken")
	}
}

func TestDoubleMigrationKeepsInClusterConnection(t *testing.T) {
	cfg := DefaultConfig()
	e := newEnv(t, 4, 2, cfg) // db on node4
	e.migrate(t, 1)           // node1 -> node2
	// Re-point the engine handle: process now lives on node2.
	p2 := findProcess(e.c.Nodes[1], "zone_serv1")
	if p2 == nil {
		t.Fatal("not on node2")
	}
	e.p = p2
	var done bool
	var gotErr error
	e.migrators[1].Migrate(p2, e.c.Nodes[2].LocalIP, func(m *Metrics, err error) { done, gotErr = true, err })
	e.c.Sched.RunFor(10 * time.Second)
	if !done || gotErr != nil {
		t.Fatalf("second migration: done=%v err=%v", done, gotErr)
	}
	p3 := findProcess(e.c.Nodes[2], "zone_serv1")
	if p3 == nil {
		t.Fatal("not on node3")
	}
	// The DB connection (peer on node4) must still work after two hops.
	before := e.dbPeer.BytesIn
	e.c.Sched.RunFor(time.Second)
	if e.dbPeer.BytesIn <= before {
		t.Fatal("db peer receives nothing after double migration")
	}
	// The peer's translation daemon holds exactly one rule for the flow
	// (retargeted, not stacked).
	rules := e.migrators[3].Transd.Translator().Rules()
	if len(rules) != 1 {
		t.Fatalf("peer rules = %d, want 1 retargeted rule: %v", len(rules), rules)
	}
	if rules[0].NewAddr != e.c.Nodes[2].LocalIP || rules[0].OldAddr != e.c.Nodes[0].LocalIP {
		t.Fatalf("rule not retargeted to node3 keyed on node1: %v", rules[0])
	}
}

func TestStopAndCopyAblation(t *testing.T) {
	pre := DefaultConfig()
	stop := DefaultConfig()
	stop.EnablePrecopy = false
	var preM, stopM *Metrics
	{
		e := newEnv(t, 2, 8, pre)
		preM = e.migrate(t, 1)
	}
	{
		e := newEnv(t, 2, 8, stop)
		stopM = e.migrate(t, 1)
	}
	if stopM.Rounds != 0 {
		t.Fatalf("stop-and-copy ran %d precopy rounds", stopM.Rounds)
	}
	if preM.Rounds < 3 {
		t.Fatalf("precopy rounds = %d", preM.Rounds)
	}
	// Stop-and-copy moves all memory inside the freeze window.
	if stopM.FreezeMemBytes <= preM.FreezeMemBytes {
		t.Fatalf("stop-and-copy freeze mem %d not larger than precopy %d",
			stopM.FreezeMemBytes, preM.FreezeMemBytes)
	}
	if stopM.FreezeTime <= preM.FreezeTime {
		t.Fatalf("stop-and-copy freeze %v not longer than precopy %v",
			stopM.FreezeTime, preM.FreezeTime)
	}
}

func TestUDPSocketMigration(t *testing.T) {
	cfg := DefaultConfig()
	e := newEnv(t, 2, 1, cfg)
	us := netstack.NewUDPSocket(e.c.Nodes[0].Stack)
	if err := us.Bind(e.c.ClusterIP, 27960); err != nil {
		t.Fatal(err)
	}
	e.p.FDs.Install(&proc.UDPFile{Sock: us})
	ext := e.c.NewExternalHost("udp-player")
	extAddr, _ := ext.SourceAddrFor(e.c.ClusterIP)
	uc := netstack.NewUDPSocket(ext)
	uc.BindEphemeral(extAddr)
	sentN := 0
	tk := simtime.NewTicker(e.c.Sched, 10*time.Millisecond, "udp-spam", func() {
		uc.SendTo(e.c.ClusterIP, 27960, []byte{byte(sentN)})
		sentN++
	})
	tk.Start()
	defer tk.Stop()
	e.c.Sched.RunFor(100 * time.Millisecond)
	m := e.migrate(t, 1)
	if m.UDPMigrated != 1 {
		t.Fatalf("UDPMigrated = %d", m.UDPMigrated)
	}
	tk.Stop() // let in-flight datagrams drain before counting
	e.c.Sched.RunFor(time.Second)
	q := findProcess(e.c.Nodes[1], "zone_serv1")
	_, udp := q.Sockets()
	if len(udp) != 1 {
		t.Fatal("udp socket lost")
	}
	moved := udp[0]
	// No datagram may be lost: capture covers the freeze gap. A handful
	// of duplicates are possible — in the short window between capture
	// enable (destination) and socket disable (source) the broadcast
	// delivers a datagram to both nodes.
	if moved.PacketsIn < uint64(sentN) {
		t.Fatalf("udp datagrams delivered %d < sent %d (loss)", moved.PacketsIn, sentN)
	}
	if moved.PacketsIn > uint64(sentN)+3 {
		t.Fatalf("udp datagrams delivered %d ≫ sent %d (unbounded duplication)", moved.PacketsIn, sentN)
	}
}

func TestMetricsAccounting(t *testing.T) {
	cfg := DefaultConfig()
	e := newEnv(t, 2, 16, cfg)
	m := e.migrate(t, 1)
	if m.Strategy != sockmig.IncrementalCollective {
		t.Fatal("strategy not recorded")
	}
	if m.PrecopyMemBytes == 0 {
		t.Fatal("no precopy memory bytes")
	}
	if m.FreezeSockBytes == 0 {
		t.Fatal("no freeze socket bytes")
	}
	if m.TotalTime <= m.FreezeTime {
		t.Fatal("total time must exceed freeze time (precopy ran)")
	}
	if m.ResumeAt != m.FreezeStart+m.FreezeTime {
		t.Fatal("time bookkeeping inconsistent")
	}
	if len(e.migrators[0].Completed) != 1 {
		t.Fatal("completed list not updated")
	}
}

func TestMsgTypeString(t *testing.T) {
	if MsgFreeze.String() != "FREEZE" || MsgType(99).String() != "MSG(99)" {
		t.Fatal("names wrong")
	}
}

func TestConnFramingAcrossSegmentBoundaries(t *testing.T) {
	// Frames split and coalesced arbitrarily by TCP segmentation must
	// reassemble exactly.
	c := proc.NewCluster(simtime.NewScheduler(), 2)
	lst := netstack.NewTCPSocket(c.Nodes[1].Stack)
	if err := lst.Listen(c.Nodes[1].LocalIP, 7900); err != nil {
		t.Fatal(err)
	}
	var gotTypes []MsgType
	var gotLens []int
	lst.OnAccept = func(ch *netstack.TCPSocket) {
		conn := NewConn(ch)
		conn.OnMsg = func(mt MsgType, payload []byte) {
			gotTypes = append(gotTypes, mt)
			gotLens = append(gotLens, len(payload))
		}
	}
	sk := netstack.NewTCPSocket(c.Nodes[0].Stack)
	cl := NewConn(sk)
	if err := sk.Connect(c.Nodes[1].LocalIP, 7900); err != nil {
		t.Fatal(err)
	}
	c.Sched.RunFor(time.Second)
	// A mix of tiny and multi-MSS frames back to back.
	sizes := []int{0, 1, 5, 1447, 1448, 1449, 100000, 3, 65536}
	for i, n := range sizes {
		if err := cl.Send(MsgType(byte(i+1)), make([]byte, n)); err != nil {
			t.Fatal(err)
		}
	}
	c.Sched.RunFor(5 * time.Second)
	if len(gotTypes) != len(sizes) {
		t.Fatalf("frames = %d, want %d", len(gotTypes), len(sizes))
	}
	for i, n := range sizes {
		if gotLens[i] != n || gotTypes[i] != MsgType(byte(i+1)) {
			t.Fatalf("frame %d: type=%v len=%d, want type=%d len=%d",
				i, gotTypes[i], gotLens[i], i+1, n)
		}
	}
	if cl.BytesSent == 0 {
		t.Fatal("byte accounting missing")
	}
}

func TestWireDecodersRejectGarbage(t *testing.T) {
	if _, err := decodeMigrateReq([]byte{1, 2}); err == nil {
		t.Fatal("short MIGRATE_REQ accepted")
	}
	if _, err := decodeCaptureReq([]byte{0}); err == nil {
		t.Fatal("short CAPTURE_REQ accepted")
	}
	if _, err := decodeCaptureReq([]byte{0, 0, 0, 5, 1, 2}); err == nil {
		t.Fatal("truncated CAPTURE_REQ accepted")
	}
	if _, err := decodeFreezeMsg([]byte{1}); err == nil {
		t.Fatal("short FREEZE accepted")
	}
	if _, err := decodeFreezeMsg(make([]byte, 9)); err == nil {
		t.Fatal("truncated FREEZE accepted")
	}
	if _, err := decodeRestoreDone([]byte{1, 2, 3}); err == nil {
		t.Fatal("short RESTORE_DONE accepted")
	}
	// Roundtrips.
	req := migrateReq{PID: 42, Strategy: sockmig.Collective, Token: 7, Name: "zone"}
	got, err := decodeMigrateReq(req.encode())
	if err != nil || got != req {
		t.Fatalf("migrateReq roundtrip: %+v %v", got, err)
	}
	keys := []netsim.FlowKey{{RemoteIP: 1, RemotePort: 2, LocalPort: 3, Proto: 6}}
	kk, err := decodeCaptureReq(encodeCaptureReq(keys))
	if err != nil || len(kk) != 1 || kk[0] != keys[0] {
		t.Fatalf("captureReq roundtrip: %+v %v", kk, err)
	}
	fm := freezeMsg{FreezeStart: 123, Image: []byte{1}, MemDelta: []byte{2, 3}, SockDelta: nil}
	gotFm, err := decodeFreezeMsg(fm.encode())
	if err != nil || gotFm.FreezeStart != 123 || len(gotFm.Image) != 1 || len(gotFm.MemDelta) != 2 {
		t.Fatalf("freezeMsg roundtrip: %+v %v", gotFm, err)
	}
	rd := restoreDone{ResumeAt: 9, Captured: 2, Reinjected: 1}
	gotRd, err := decodeRestoreDone(rd.encode())
	if err != nil || gotRd != rd {
		t.Fatalf("restoreDone roundtrip: %+v %v", gotRd, err)
	}
}
