package migration

import (
	"encoding/binary"
	"errors"
	"sync"

	"dvemig/internal/ckpt"
	"dvemig/internal/netsim"
	"dvemig/internal/simtime"
	"dvemig/internal/sockmig"
)

// migrateReq opens a migration. Epoch is the sender's ownership epoch
// for the service (Name); a destination whose epoch table has seen a
// higher epoch rejects the request — the sender is acting on superseded
// ownership. TraceID/SpanID carry the source migration span's causal
// coordinate (obs.TraceContext) so the destination's restore spans
// parent into the same end-to-end trace; both are zero when the plane
// is disabled.
type migrateReq struct {
	PID      int
	Strategy sockmig.Strategy
	// Mode is the migration strategy's wire tag (modePrecopy /
	// modePostcopy / modeHybrid): it tells the destination which restore
	// machinery to run — full-image restore, or partial restore plus the
	// page-pull protocol.
	Mode    byte
	Token   uint64
	Epoch   uint64
	TraceID uint64
	SpanID  uint64
	Name    string
}

func (m migrateReq) encode() []byte {
	b := make([]byte, 38, 38+len(m.Name))
	binary.BigEndian.PutUint32(b[0:], uint32(m.PID))
	b[4] = byte(m.Strategy)
	binary.BigEndian.PutUint64(b[5:], m.Token)
	binary.BigEndian.PutUint64(b[13:], m.Epoch)
	binary.BigEndian.PutUint64(b[21:], m.TraceID)
	binary.BigEndian.PutUint64(b[29:], m.SpanID)
	b[37] = m.Mode
	return append(b, m.Name...)
}

func decodeMigrateReq(b []byte) (migrateReq, error) {
	if len(b) < 38 {
		return migrateReq{}, errors.New("migration: short MIGRATE_REQ")
	}
	return migrateReq{
		PID:      int(binary.BigEndian.Uint32(b[0:])),
		Strategy: sockmig.Strategy(b[4]),
		Token:    binary.BigEndian.Uint64(b[5:]),
		Epoch:    binary.BigEndian.Uint64(b[13:]),
		TraceID:  binary.BigEndian.Uint64(b[21:]),
		SpanID:   binary.BigEndian.Uint64(b[29:]),
		Mode:     b[37],
		Name:     string(b[38:]),
	}, nil
}

func encodeCaptureReq(keys []netsim.FlowKey) []byte {
	b := make([]byte, 4, 4+9*len(keys))
	binary.BigEndian.PutUint32(b, uint32(len(keys)))
	for _, k := range keys {
		var e [9]byte
		binary.BigEndian.PutUint32(e[0:], uint32(k.RemoteIP))
		binary.BigEndian.PutUint16(e[4:], k.RemotePort)
		binary.BigEndian.PutUint16(e[6:], k.LocalPort)
		e[8] = k.Proto
		b = append(b, e[:]...)
	}
	return b
}

func decodeCaptureReq(b []byte) ([]netsim.FlowKey, error) {
	if len(b) < 4 {
		return nil, errors.New("migration: short CAPTURE_REQ")
	}
	n := int(binary.BigEndian.Uint32(b))
	if n < 0 || len(b) < 4+9*n {
		return nil, errors.New("migration: truncated CAPTURE_REQ")
	}
	keys := make([]netsim.FlowKey, 0, n)
	off := 4
	for i := 0; i < n; i++ {
		keys = append(keys, netsim.FlowKey{
			RemoteIP:   netsim.Addr(binary.BigEndian.Uint32(b[off:])),
			RemotePort: binary.BigEndian.Uint16(b[off+4:]),
			LocalPort:  binary.BigEndian.Uint16(b[off+6:]),
			Proto:      b[off+8],
		})
		off += 9
	}
	return keys, nil
}

// freezeMsg carries everything the destination still needs at freeze
// time: the final memory delta, the execution contexts and non-socket
// FDs (inside the ckpt image), and — for collective strategies — the
// socket payload.
type freezeMsg struct {
	FreezeStart simtime.Time
	Image       []byte // encoded ckpt.Image (threads, regular fds, meta)
	MemDelta    []byte // encoded ckpt.MemDelta
	SockDelta   []byte // encoded sockmig.SockDelta (may be empty)
}

func (m freezeMsg) encode() []byte {
	b := make([]byte, 8, 8+12+len(m.Image)+len(m.MemDelta)+len(m.SockDelta))
	binary.BigEndian.PutUint64(b, uint64(m.FreezeStart))
	for _, part := range [][]byte{m.Image, m.MemDelta, m.SockDelta} {
		var l [4]byte
		binary.BigEndian.PutUint32(l[:], uint32(len(part)))
		b = append(b, l[:]...)
		b = append(b, part...)
	}
	return b
}

func decodeFreezeMsg(b []byte) (freezeMsg, error) {
	var m freezeMsg
	if len(b) < 8 {
		return m, errors.New("migration: short FREEZE")
	}
	m.FreezeStart = simtime.Time(binary.BigEndian.Uint64(b))
	off := 8
	parts := make([][]byte, 3)
	for i := range parts {
		if off+4 > len(b) {
			return m, errors.New("migration: truncated FREEZE")
		}
		n := int(binary.BigEndian.Uint32(b[off:]))
		off += 4
		if off+n > len(b) {
			return m, errors.New("migration: truncated FREEZE part")
		}
		parts[i] = b[off : off+n]
		off += n
	}
	m.Image, m.MemDelta, m.SockDelta = parts[0], parts[1], parts[2]
	return m, nil
}

// Chunked checkpoint stream kinds: which logical payload a MsgChunk
// stream reassembles into.
const (
	chunkKindMemDelta  byte = iota + 1 // an encoded ckpt.MemDelta (precopy round)
	chunkKindFreeze                    // an encoded freezeMsg (pre-copy final image)
	chunkKindPostImage                 // an encoded postImage (post-copy/hybrid handover)
)

// chunkHdrBytes is the fixed prefix of a MsgChunk payload: kind (u8),
// stream id (u32), sequence number (u32).
const chunkHdrBytes = 9

// chunkEndBytes is the exact size of a MsgChunkEnd payload: kind (u8),
// stream id (u32), frame count (u32), total bytes (u64).
const chunkEndBytes = 17

// maxChunkStreamBytes bounds a reassembled stream; a peer claiming more
// is malformed (real images are a few MB at most).
const maxChunkStreamBytes = 1 << 30

// chunkFrame is one decoded MsgChunk payload. Data aliases the input
// buffer; the reassembler copies it into its stream buffer immediately.
type chunkFrame struct {
	Kind   byte
	Stream uint32
	Seq    uint32
	Data   []byte
}

// putChunkHdr fills the frame header the sender prepends via Conn.Send2.
func putChunkHdr(h *[chunkHdrBytes]byte, kind byte, stream, seq uint32) {
	h[0] = kind
	binary.BigEndian.PutUint32(h[1:5], stream)
	binary.BigEndian.PutUint32(h[5:9], seq)
}

func (m chunkFrame) encode() []byte {
	b := make([]byte, chunkHdrBytes+len(m.Data))
	b[0] = m.Kind
	binary.BigEndian.PutUint32(b[1:5], m.Stream)
	binary.BigEndian.PutUint32(b[5:9], m.Seq)
	copy(b[chunkHdrBytes:], m.Data)
	return b
}

func decodeChunk(b []byte) (chunkFrame, error) {
	if len(b) < chunkHdrBytes {
		return chunkFrame{}, errors.New("migration: short CHUNK")
	}
	return chunkFrame{
		Kind:   b[0],
		Stream: binary.BigEndian.Uint32(b[1:5]),
		Seq:    binary.BigEndian.Uint32(b[5:9]),
		Data:   b[chunkHdrBytes:],
	}, nil
}

// chunkEnd is the stream trailer. Chunks and Total let the destination
// verify it reassembled exactly what the source sent before acting on it.
type chunkEnd struct {
	Kind   byte
	Stream uint32
	Chunks uint32
	Total  uint64
}

func (m chunkEnd) encode() []byte {
	b := make([]byte, chunkEndBytes)
	b[0] = m.Kind
	binary.BigEndian.PutUint32(b[1:5], m.Stream)
	binary.BigEndian.PutUint32(b[5:9], m.Chunks)
	binary.BigEndian.PutUint64(b[9:17], m.Total)
	return b
}

func decodeChunkEnd(b []byte) (chunkEnd, error) {
	if len(b) != chunkEndBytes {
		return chunkEnd{}, errors.New("migration: malformed CHUNK_END")
	}
	return chunkEnd{
		Kind:   b[0],
		Stream: binary.BigEndian.Uint32(b[1:5]),
		Chunks: binary.BigEndian.Uint32(b[5:9]),
		Total:  binary.BigEndian.Uint64(b[9:17]),
	}, nil
}

// restoreDone reports completion back to the source.
type restoreDone struct {
	ResumeAt   simtime.Time
	Captured   uint32
	Reinjected uint32
}

func (m restoreDone) encode() []byte {
	b := make([]byte, 16)
	binary.BigEndian.PutUint64(b, uint64(m.ResumeAt))
	binary.BigEndian.PutUint32(b[8:], m.Captured)
	binary.BigEndian.PutUint32(b[12:], m.Reinjected)
	return b
}

func decodeRestoreDone(b []byte) (restoreDone, error) {
	if len(b) < 16 {
		return restoreDone{}, errors.New("migration: short RESTORE_DONE")
	}
	return restoreDone{
		ResumeAt:   simtime.Time(binary.BigEndian.Uint64(b)),
		Captured:   binary.BigEndian.Uint32(b[8:]),
		Reinjected: binary.BigEndian.Uint32(b[12:]),
	}, nil
}

// behaviorRegistry carries process behaviour (Go closures standing in for
// program text) between engine instances within one simulation. In a real
// deployment the executable is present on all nodes (§II-A); here the
// token in MIGRATE_REQ names the entry.
//
// The registry is shared by concurrently running simulations (the eval
// parallel sweep runner), so access is mutex-guarded. Token *values* are
// opaque map keys of fixed wire width: they never influence packet
// lengths, audits or trace hashes, so cross-simulation interleaving of
// token assignment cannot perturb per-cell determinism.
var (
	behaviorMu        sync.Mutex
	behaviorRegistry  = map[uint64]*ckpt.Behavior{}
	nextBehaviorToken uint64
)

func registerBehavior(b *ckpt.Behavior) uint64 {
	behaviorMu.Lock()
	defer behaviorMu.Unlock()
	nextBehaviorToken++
	behaviorRegistry[nextBehaviorToken] = b
	return nextBehaviorToken
}

func takeBehavior(token uint64) *ckpt.Behavior {
	behaviorMu.Lock()
	defer behaviorMu.Unlock()
	b := behaviorRegistry[token]
	delete(behaviorRegistry, token)
	return b
}
