package migration

import (
	"dvemig/internal/simtime"
)

// BackoffPolicy is the shared retry schedule for everything that
// re-attempts migration work: the migd reconnect loop in this package
// and the control plane's per-object retry/resend timers (ctlplane).
// Delays grow exponentially from Base, doubling per attempt, capped at
// Max, with an optional seed-deterministic jitter fraction on top — the
// jitter comes from a simtime.Rand the caller seeds, never from wall
// clock, so every schedule is reproducible at any worker count.
type BackoffPolicy struct {
	// Base is the delay before the first retry. Zero or negative falls
	// back to 100 ms.
	Base simtime.Duration
	// Max caps the exponential growth. Zero or negative means no cap.
	Max simtime.Duration
	// Jitter adds up to this fraction of the computed delay, drawn from
	// the caller's deterministic rng: delay += delay*Jitter*rng.Float64().
	// Zero disables jitter (and never touches the rng, so existing
	// schedules are bit-identical to the pre-jitter code).
	Jitter float64
}

// Delay returns the wait before retry `attempt` (1-based: attempt 1 is
// the first retry). rng may be nil when Jitter is zero.
func (b BackoffPolicy) Delay(attempt int, rng *simtime.Rand) simtime.Duration {
	d := b.Base
	if d <= 0 {
		d = 100 * 1e6
	}
	for i := 1; i < attempt; i++ {
		d *= 2
		if b.Max > 0 && d >= b.Max {
			d = b.Max
			break
		}
	}
	if b.Max > 0 && d > b.Max {
		d = b.Max
	}
	if b.Jitter > 0 && rng != nil {
		d += simtime.Duration(float64(d) * b.Jitter * rng.Float64())
	}
	return d
}

// Schedule renders the first n delays of the policy — what a caller
// that retries n times would actually wait — using rng for the jitter
// term. Tests pin this and the control plane logs it into cause chains.
func (b BackoffPolicy) Schedule(n int, rng *simtime.Rand) []simtime.Duration {
	out := make([]simtime.Duration, n)
	for i := range out {
		out[i] = b.Delay(i+1, rng)
	}
	return out
}

// retryPolicy derives the migd reconnect schedule from the config
// knobs (RetryBackoff/RetryBackoffMax/RetryJitter).
func (c Config) retryPolicy() BackoffPolicy {
	return BackoffPolicy{Base: c.RetryBackoff, Max: c.RetryBackoffMax, Jitter: c.RetryJitter}
}
