// The commit-fence property: a Cancel issued at ANY instant of a
// migration must leave exactly one running copy of the process. Before
// the fence the source rolls back; after it the cancel is refused and
// the destination commits. The soak harness found the original
// violation — a cancel landing between the final image send and the
// restore ack rolled the source back while the destination resumed,
// forking the process. This sweep pins the fix for every strategy.
package migration_test

import (
	"testing"
	"time"

	"dvemig/internal/migration"
	"dvemig/internal/simtime"
)

func TestCancelAtAnyInstantNeverDuplicates(t *testing.T) {
	for _, strat := range migration.StrategyNames() {
		t.Run(strat, func(t *testing.T) {
			mig, _ := migration.StrategyByName(strat)
			// First pass: measure how long an undisturbed migration takes
			// so the sweep covers the whole window including the commit
			// tail.
			total := func() simtime.Duration {
				cfg := migration.DefaultConfig()
				cfg.Mig = mig
				e := newFaultEnv(t, 3, 2, 1, cfg)
				e.startStreams(40 * time.Millisecond)
				done := false
				e.migs[0].Migrate(e.p, e.c.Nodes[1].LocalIP, func(m *migration.Metrics, err error) {
					if err != nil {
						t.Fatalf("baseline migration failed: %v", err)
					}
					done = true
				})
				start := e.c.Sched.Now()
				e.c.Sched.RunFor(30 * time.Second)
				e.stopStreams()
				if !done {
					t.Fatal("baseline migration hung")
				}
				return e.c.Sched.Now() - start
			}()

			step := total / 16
			if step <= 0 {
				step = time.Millisecond
			}
			refused, rolledBack := 0, 0
			for at := simtime.Duration(0); at <= total+step; at += step {
				cfg := migration.DefaultConfig()
				cfg.Mig = mig
				e := newFaultEnv(t, 3, 2, 1, cfg)
				e.startStreams(40 * time.Millisecond)
				settled := false
				var migErr error
				e.migs[0].Migrate(e.p, e.c.Nodes[1].LocalIP, func(m *migration.Metrics, err error) {
					settled, migErr = true, err
				})
				canceled := false
				e.c.Sched.After(at, "test/cancel", func() {
					canceled = e.migs[0].Cancel(e.p.PID, "sweep")
				})
				e.c.Sched.RunFor(40 * time.Second)
				e.stopStreams()
				if !settled {
					t.Fatalf("cancel@%v: migration neither completed nor aborted", at)
				}
				if canceled {
					rolledBack++
					if migErr == nil {
						t.Fatalf("cancel@%v: accepted but migration reported success", at)
					}
				} else {
					refused++
				}
				if n := fenvCountRunning(e.c, "zone_serv"); n != 1 {
					t.Fatalf("cancel@%v (accepted=%v): %d running copies of the process, want exactly 1",
						at, canceled, n)
				}
				// Ownership must match the verdict: rollback keeps it on the
				// source, refusal means the destination got it.
				srcHas := fenvFindProcess(e.c.Nodes[0], "zone_serv") != nil
				dstHas := fenvFindProcess(e.c.Nodes[1], "zone_serv") != nil
				if canceled && (!srcHas || dstHas) {
					t.Fatalf("cancel@%v: accepted cancel but src=%v dst=%v", at, srcHas, dstHas)
				}
				if !canceled && (srcHas || !dstHas) {
					t.Fatalf("cancel@%v: refused cancel but src=%v dst=%v", at, srcHas, dstHas)
				}
			}
			// The sweep must actually exercise both sides of the fence.
			if rolledBack == 0 || refused == 0 {
				t.Fatalf("sweep never crossed the fence: %d rollbacks, %d refusals", rolledBack, refused)
			}
		})
	}
}
