// Fault-injection properties of the migration engine, exercised through
// the internal/faults plane. This file lives in the external test
// package because internal/faults itself imports migration (for the
// phase-crash trigger), which would cycle with an in-package test.
package migration_test

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"dvemig/internal/faults"
	"dvemig/internal/migration"
	"dvemig/internal/netsim"
	"dvemig/internal/netstack"
	"dvemig/internal/proc"
	"dvemig/internal/simtime"
)

// fenv mirrors the in-package newEnv: a cluster with a migrator per
// node, a zone process on node1 serving external TCP clients, a DB
// session to the last node, plus a fault injector over the topology.
type fenv struct {
	c         *proc.Cluster
	inj       *faults.Injector
	migs      []*migration.Migrator
	p         *proc.Process
	clients   []*netstack.TCPSocket
	clientNIC *netsim.NIC
	dbPeer    *netstack.TCPSocket
	received  *bytes.Buffer

	sent    [][]byte
	tickers []*simtime.Ticker
}

func newFaultEnv(t *testing.T, nodes, nClients int, seed uint64, cfg migration.Config) *fenv {
	t.Helper()
	e := &fenv{
		c:        proc.NewCluster(simtime.NewScheduler(), nodes),
		received: &bytes.Buffer{},
	}
	e.inj = faults.NewInjector(e.c.Sched, seed)
	for _, n := range e.c.Nodes {
		m, err := migration.NewMigrator(n, cfg)
		if err != nil {
			t.Fatal(err)
		}
		e.migs = append(e.migs, m)
	}
	n1 := e.c.Nodes[0]
	e.p = n1.Spawn("zone_serv", 2)
	heap := e.p.AS.Mmap(128*proc.PageSize, "rw-")
	for i := uint64(0); i < 128; i += 4 {
		e.p.AS.Write(heap.Start+i*proc.PageSize, []byte{byte(i), 0xEE})
	}

	lst := netstack.NewTCPSocket(n1.Stack)
	if err := lst.Listen(e.c.ClusterIP, 7777); err != nil {
		t.Fatal(err)
	}
	var accepted []*netstack.TCPSocket
	lst.OnAccept = func(ch *netstack.TCPSocket) { accepted = append(accepted, ch) }
	e.p.FDs.Install(&proc.TCPFile{Sock: lst})

	ext := e.c.NewExternalHost("players")
	e.clientNIC = e.c.LastExternalNIC()
	for i := 0; i < nClients; i++ {
		cli := netstack.NewTCPSocket(ext)
		if err := cli.Connect(e.c.ClusterIP, 7777); err != nil {
			t.Fatal(err)
		}
		e.clients = append(e.clients, cli)
	}
	dbNode := e.c.Nodes[nodes-1]
	dbl := netstack.NewTCPSocket(dbNode.Stack)
	if err := dbl.Listen(dbNode.LocalIP, 3306); err != nil {
		t.Fatal(err)
	}
	dbl.OnAccept = func(ch *netstack.TCPSocket) { e.dbPeer = ch }
	db := netstack.NewTCPSocket(n1.Stack)
	if err := db.Connect(dbNode.LocalIP, 3306); err != nil {
		t.Fatal(err)
	}
	e.c.Sched.RunFor(time.Second)
	if len(accepted) != nClients || e.dbPeer == nil {
		t.Fatalf("setup: accepted=%d db=%v", len(accepted), e.dbPeer)
	}
	for _, sk := range accepted {
		e.p.FDs.Install(&proc.TCPFile{Sock: sk})
	}
	e.p.FDs.Install(&proc.TCPFile{Sock: db})

	received := e.received
	counter := 0
	e.p.Tick = func(self *proc.Process) {
		counter++
		tcp, _ := self.Sockets()
		for _, sk := range tcp {
			if data := sk.Recv(); len(data) > 0 {
				received.Write(data)
			}
		}
		self.AS.Touch(heap.Start + uint64(counter%128)*proc.PageSize)
		if len(tcp) > 0 {
			_ = tcp[len(tcp)-1].Send([]byte("ping;"))
		}
	}
	e.p.CPUDemand = 0.4
	n1.StartLoop(e.p, 50*time.Millisecond)
	e.c.Sched.RunFor(200 * time.Millisecond)
	return e
}

// startStreams begins one ticker per client, each appending what it sent
// to a per-client ledger for the later audit.
func (e *fenv) startStreams(period time.Duration) {
	e.sent = make([][]byte, len(e.clients))
	for i, cli := range e.clients {
		i, cli := i, cli
		tk := simtime.NewTicker(e.c.Sched, period, "fault-cli", func() {
			msg := []byte(fmt.Sprintf("c%d.%d;", i, len(e.sent[i])))
			e.sent[i] = append(e.sent[i], msg...)
			cli.Send(msg)
		})
		tk.Start()
		e.tickers = append(e.tickers, tk)
	}
}

func (e *fenv) stopStreams() {
	for _, tk := range e.tickers {
		tk.Stop()
	}
	e.tickers = nil
}

// audit checks the byte-stream invariant: every client's bytes arrived
// at the application exactly once, in order, uncorrupted.
func (e *fenv) audit(t *testing.T, label string) {
	t.Helper()
	all := e.received.Bytes()
	for i := range e.clients {
		got := extractFenvClient(all, i)
		if !bytes.Equal(got, e.sent[i]) {
			t.Errorf("%s: client %d stream mismatch: got %d bytes, want %d",
				label, i, len(got), len(e.sent[i]))
		}
	}
}

func extractFenvClient(all []byte, i int) []byte {
	var out []byte
	prefix := []byte(fmt.Sprintf("c%d.", i))
	for _, tok := range bytes.Split(all, []byte(";")) {
		if bytes.HasPrefix(tok, prefix) {
			out = append(out, tok...)
			out = append(out, ';')
		}
	}
	return out
}

func fenvCountRunning(c *proc.Cluster, name string) int {
	n := 0
	for _, node := range c.Nodes {
		for _, p := range node.Processes() {
			if p.Name == name && p.State == proc.ProcRunning {
				n++
			}
		}
	}
	return n
}

func fenvFindProcess(n *proc.Node, name string) *proc.Process {
	for _, p := range n.Processes() {
		if p.Name == name {
			return p
		}
	}
	return nil
}

// TestByteStreamInvariantUnderFaultScenarios is the end-to-end property
// of §V-C over a seed sweep: under every recoverable fault scenario —
// loss burst around the migration window, duplication, reordering, and
// a partition of the destination's cluster link during the freeze — the
// migration completes and every client stream arrives exactly once, in
// order, uncorrupted.
func TestByteStreamInvariantUnderFaultScenarios(t *testing.T) {
	type scenario struct {
		name string
		arm  func(e *fenv)
	}
	scenarios := []scenario{
		{"loss-burst", func(e *fenv) {
			now := e.c.Sched.Now()
			w := faults.Window{From: now, To: now + 3*1e9}
			e.inj.Attach(e.clientNIC, &faults.Program{Bursts: []faults.Burst{{Window: w, Rate: 0.3}}})
		}},
		{"dup", func(e *fenv) {
			e.inj.Attach(e.clientNIC, &faults.Program{DupRate: 0.05})
		}},
		{"reorder", func(e *fenv) {
			e.inj.Attach(e.clientNIC, &faults.Program{ReorderRate: 0.2, ReorderDelay: 3 * 1e6})
		}},
		{"partition-freeze", func(e *fenv) {
			// When the source announces the freeze, take the destination's
			// cluster link down for 250ms: the migd transfer must recover
			// by retransmission and still finish inside the deadline.
			prev := e.migs[0].OnPhase
			e.migs[0].OnPhase = func(ev migration.PhaseEvent) {
				if prev != nil {
					prev(ev)
				}
				if ev.Phase == migration.PhaseFreeze {
					e.inj.DownFor(e.c.Nodes[1].LocalNIC, ev.Time, ev.Time+250*1e6)
				}
			}
		}},
	}
	for _, sc := range scenarios {
		for seed := uint64(1); seed <= 2; seed++ {
			sc, seed := sc, seed
			t.Run(fmt.Sprintf("%s/seed-%d", sc.name, seed), func(t *testing.T) {
				e := newFaultEnv(t, 3, 6, seed, migration.DefaultConfig())
				e.startStreams(40 * time.Millisecond)
				e.c.Sched.RunFor(300 * time.Millisecond)
				sc.arm(e)

				done := false
				var mErr error
				e.migs[0].Migrate(e.p, e.c.Nodes[1].LocalIP, func(m *migration.Metrics, err error) {
					done, mErr = true, err
				})
				e.c.Sched.RunFor(10 * time.Second)
				if !done {
					t.Fatal("migration hung")
				}
				if mErr != nil {
					t.Fatalf("recoverable fault aborted the migration: %v", mErr)
				}
				if fenvFindProcess(e.c.Nodes[1], "zone_serv") == nil {
					t.Fatal("process not on destination")
				}
				// Let the burst window close and recovery finish, then stop
				// the streams and drain what is still in flight.
				e.c.Sched.RunFor(4 * time.Second)
				e.stopStreams()
				e.c.Sched.RunFor(10 * time.Second)
				e.audit(t, sc.name)
				if e.dbPeer.BytesIn == 0 {
					t.Fatal("db session carried nothing")
				}
			})
		}
	}
}

// TestCrashMatrix kills the destination node at each named migration
// phase. In every cell the engine must abort within the configured
// deadline (no hang), the process must keep running on the source with
// all sockets rehashed, the client byte streams must stay intact, and
// the whole cell must reproduce bit-identically under the same seed.
func TestCrashMatrix(t *testing.T) {
	cases := []struct {
		name  string
		watch int // migrator index whose OnPhase fires the trigger
		phase migration.Phase
		round int
	}{
		{"connect", 0, migration.PhaseConnect, 0},
		{"precopy-round2", 0, migration.PhasePrecopy, 2},
		{"freeze", 0, migration.PhaseFreeze, 0},
		{"transfer", 0, migration.PhaseTransfer, 0},
		{"restore", 1, migration.PhaseRestore, 0},
		{"reinject", 1, migration.PhaseReinject, 0},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			run := func() (reason string, recvLen int) {
				cfg := migration.DefaultConfig()
				cfg.Deadline = 6 * 1e9
				cfg.ConnTimeout = 1 * 1e9
				e := newFaultEnv(t, 3, 4, 1, cfg)
				e.startStreams(40 * time.Millisecond)
				e.c.Sched.RunFor(300 * time.Millisecond)

				dest := e.c.Nodes[1]
				faults.CrashAtPhase(e.c, e.migs[tc.watch], dest, tc.phase, tc.round)

				start := e.c.Sched.Now()
				var doneAt simtime.Time
				done := false
				var mErr error
				var metrics *migration.Metrics
				e.migs[0].Migrate(e.p, dest.LocalIP, func(m *migration.Metrics, err error) {
					done, mErr, metrics = true, err, m
					doneAt = e.c.Sched.Now()
				})
				e.c.Sched.RunFor(20 * time.Second)
				if !done {
					t.Fatal("hang: migration neither completed nor aborted")
				}
				if mErr == nil {
					t.Fatal("destination died but migration reported success")
				}
				if metrics == nil || !metrics.Aborted {
					t.Fatalf("metrics not flagged aborted: %+v", metrics)
				}
				// Aborted within the configured rescue window (deadline plus
				// slack for the abort protocol itself).
				if doneAt > start+simtime.Time(cfg.Deadline)+2*1e9 {
					t.Fatalf("abort too late: %v after start", doneAt-start)
				}
				if dest.Alive {
					t.Fatal("victim still alive; trigger never fired")
				}
				// The process survived at the source, and only there.
				if e.p.State != proc.ProcRunning {
					t.Fatalf("source process state = %v", e.p.State)
				}
				if fenvFindProcess(e.c.Nodes[0], "zone_serv") == nil {
					t.Fatal("process missing from source")
				}
				if fenvFindProcess(dest, "zone_serv") != nil {
					t.Fatal("dead destination still holds the process")
				}
				tcp, _ := e.p.Sockets()
				for _, sk := range tcp {
					if sk.Unhashed() {
						t.Fatal("socket left unhashed after thaw")
					}
				}
				// Streams keep flowing after the abort; the invariant holds.
				e.c.Sched.RunFor(2 * time.Second)
				e.stopStreams()
				e.c.Sched.RunFor(8 * time.Second)
				e.audit(t, tc.name)
				return mErr.Error(), e.received.Len()
			}
			r1, n1 := run()
			r2, n2 := run()
			if r1 != r2 || n1 != n2 {
				t.Fatalf("cell not reproducible: (%q,%d) vs (%q,%d)", r1, n1, r2, n2)
			}
		})
	}
}

// TestSourceCrashMatrix is the mirror of TestCrashMatrix: the SOURCE
// node dies at each pre-handover phase. The destination holds only a
// shadow copy at that point, and a crashed source sends no FIN — the
// inbound lease is the only thing standing between the destination and
// a leaked half-restored process. In every cell the destination must
// discard its shadow state once the lease lapses, and the cluster must
// converge to at most one owner of the service (zero here: the owner
// died before handover, and half an image must never serve).
func TestSourceCrashMatrix(t *testing.T) {
	cases := []struct {
		name  string
		phase migration.Phase
		round int
		// expectLease: whether the destination's inbound was active (a
		// migrate request had arrived) and so must expire a lease. A
		// crash at connect kills the source before the request is sent.
		expectLease bool
	}{
		{"connect", migration.PhaseConnect, 0, false},
		{"precopy-round2", migration.PhasePrecopy, 2, true},
		{"freeze", migration.PhaseFreeze, 0, true},
		{"transfer", migration.PhaseTransfer, 0, true},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			run := func() (leases uint64, recvLen int) {
				cfg := migration.DefaultConfig()
				cfg.Deadline = 6 * 1e9
				cfg.ConnTimeout = 1 * 1e9
				cfg.InboundLease = 3 * 1e9
				e := newFaultEnv(t, 3, 4, 1, cfg)
				e.startStreams(40 * time.Millisecond)
				e.c.Sched.RunFor(300 * time.Millisecond)

				src := e.c.Nodes[0]
				dest := e.c.Nodes[1]
				faults.CrashAtPhase(e.c, e.migs[0], src, tc.phase, tc.round)

				e.migs[0].Migrate(e.p, dest.LocalIP, func(m *migration.Metrics, err error) {
					// The source dies mid-flight; whether its callback
					// still manages to fire is not part of the contract.
				})
				// Long enough for the lease (3s) plus restore slack.
				e.c.Sched.RunFor(15 * time.Second)
				e.stopStreams()
				e.c.Sched.RunFor(2 * time.Second)

				if src.Alive {
					t.Fatal("victim still alive; trigger never fired")
				}
				if got := e.migs[1].LeaseExpired; tc.expectLease && got == 0 {
					t.Fatal("destination never expired the source lease")
				} else if !tc.expectLease && got != 0 {
					t.Fatalf("lease expired %d times before a request arrived", got)
				}
				// Nothing half-restored leaks: the destination holds no
				// process of the service, running or otherwise.
				if fenvFindProcess(dest, "zone_serv") != nil {
					t.Fatal("destination leaked a half-restored process")
				}
				// Convergence to ≤1 owner — zero, since the owner died
				// before the image was handed over.
				if n := fenvCountRunning(e.c, "zone_serv"); n != 0 {
					t.Fatalf("%d running owners after source crash", n)
				}
				return e.migs[1].LeaseExpired, e.received.Len()
			}
			l1, n1 := run()
			l2, n2 := run()
			if l1 != l2 || n1 != n2 {
				t.Fatalf("cell not reproducible: (%d,%d) vs (%d,%d)", l1, n1, l2, n2)
			}
		})
	}
}
