package migration

import (
	"testing"

	"dvemig/internal/netsim"
	"dvemig/internal/sockmig"
)

// FuzzWireDecoders feeds arbitrary bytes to every migd message decoder.
// These parse input from a remote node, so they must never panic, and
// every value they accept must roundtrip through its encoder.
func FuzzWireDecoders(f *testing.F) {
	f.Add(migrateReq{PID: 42, Strategy: sockmig.Collective, Token: 7, Name: "zone"}.encode())
	f.Add(encodeCaptureReq([]netsim.FlowKey{{RemoteIP: 1, RemotePort: 2, LocalPort: 3, Proto: 6}}))
	f.Add(freezeMsg{FreezeStart: 123, Image: []byte{1}, MemDelta: []byte{2, 3}}.encode())
	f.Add(restoreDone{ResumeAt: 9, Captured: 2, Reinjected: 1}.encode())
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		if req, err := decodeMigrateReq(data); err == nil {
			if back, err := decodeMigrateReq(req.encode()); err != nil || back != req {
				t.Fatalf("migrateReq roundtrip broken: %+v %v", back, err)
			}
		}
		if keys, err := decodeCaptureReq(data); err == nil {
			back, err := decodeCaptureReq(encodeCaptureReq(keys))
			if err != nil || len(back) != len(keys) {
				t.Fatalf("captureReq roundtrip broken: %v", err)
			}
		}
		if fm, err := decodeFreezeMsg(data); err == nil {
			back, err := decodeFreezeMsg(fm.encode())
			if err != nil || back.FreezeStart != fm.FreezeStart ||
				len(back.Image) != len(fm.Image) || len(back.MemDelta) != len(fm.MemDelta) ||
				len(back.SockDelta) != len(fm.SockDelta) {
				t.Fatalf("freezeMsg roundtrip broken: %v", err)
			}
		}
		if rd, err := decodeRestoreDone(data); err == nil {
			if back, err := decodeRestoreDone(rd.encode()); err != nil || back != rd {
				t.Fatalf("restoreDone roundtrip broken: %v", err)
			}
		}
	})
}

// FuzzConnFraming drives the stream reassembler with arbitrary chunk
// boundaries: whatever the split, the parser must not panic, must never
// deliver a frame whose length disagrees with its header, and must
// consume complete frames exactly once.
func FuzzConnFraming(f *testing.F) {
	f.Add([]byte{byte(MsgFreeze), 0, 0, 0, 2, 9, 9}, 3)
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF}, 1)
	f.Add([]byte{}, 1)
	f.Fuzz(func(t *testing.T, stream []byte, chunk int) {
		if chunk <= 0 {
			chunk = 1
		}
		c := &Conn{}
		frames := 0
		var total int
		c.OnMsg = func(mt MsgType, payload []byte) {
			frames++
			total += 5 + len(payload)
		}
		for off := 0; off < len(stream); off += chunk {
			end := off + chunk
			if end > len(stream) {
				end = len(stream)
			}
			c.feed(stream[off:end])
		}
		if total > len(stream) {
			t.Fatalf("parser consumed %d bytes of a %d-byte stream", total, len(stream))
		}
	})
}
