package migration

import (
	"bytes"
	"testing"
	"time"

	"dvemig/internal/proc"
	"dvemig/internal/simtime"
)

// TestChunkedMatchesMonolithic pins the pipelined/monolithic boundary:
// the same migration run monolithically (ChunkBytes 0), at a
// pathological 512-byte chunk size, and at the default 64 KiB must ship
// the same rounds, the same payload bytes, and restore a byte-identical
// heap. Chunking is a transport concern — it must never change what is
// shipped.
func TestChunkedMatchesMonolithic(t *testing.T) {
	type run struct {
		m    *Metrics
		heap []byte
	}
	runs := map[int]run{}
	for _, chunk := range []int{0, 512, 64 << 10} {
		cfg := DefaultConfig()
		cfg.ChunkBytes = chunk
		e := newEnv(t, 2, 4, cfg)
		heapStart := e.p.AS.VMAs()[0].Start
		m := e.migrate(t, 1)
		p := findProcess(e.c.Nodes[1], "zone_serv1")
		if p == nil {
			t.Fatalf("chunk=%d: process not on destination", chunk)
		}
		heap, err := p.AS.Read(heapStart, int(256*proc.PageSize))
		if err != nil {
			t.Fatalf("chunk=%d: %v", chunk, err)
		}
		runs[chunk] = run{m: m, heap: heap}
	}
	base := runs[0]
	for _, chunk := range []int{512, 64 << 10} {
		r := runs[chunk]
		if r.m.Rounds != base.m.Rounds {
			t.Errorf("chunk=%d: Rounds=%d, monolithic=%d", chunk, r.m.Rounds, base.m.Rounds)
		}
		if r.m.PrecopyMemBytes != base.m.PrecopyMemBytes {
			t.Errorf("chunk=%d: PrecopyMemBytes=%d, monolithic=%d",
				chunk, r.m.PrecopyMemBytes, base.m.PrecopyMemBytes)
		}
		if r.m.FreezeMemBytes != base.m.FreezeMemBytes {
			t.Errorf("chunk=%d: FreezeMemBytes=%d, monolithic=%d",
				chunk, r.m.FreezeMemBytes, base.m.FreezeMemBytes)
		}
		if r.m.MemPageBytes != base.m.MemPageBytes {
			t.Errorf("chunk=%d: MemPageBytes=%d, monolithic=%d",
				chunk, r.m.MemPageBytes, base.m.MemPageBytes)
		}
		if !bytes.Equal(r.heap, base.heap) {
			t.Errorf("chunk=%d: restored heap differs from monolithic restore", chunk)
		}
	}
}

// quiescentEnv: a two-node cluster with an idle process — it ticks but
// never touches memory, so every precopy round after the first is empty.
func quiescentEnv(t *testing.T, cfg Config) (*proc.Cluster, []*Migrator, *proc.Process) {
	t.Helper()
	c := proc.NewCluster(simtime.NewScheduler(), 2)
	var migs []*Migrator
	for _, n := range c.Nodes {
		m, err := NewMigrator(n, cfg)
		if err != nil {
			t.Fatal(err)
		}
		migs = append(migs, m)
	}
	p := c.Nodes[0].Spawn("idle_serv", 1)
	heap := p.AS.Mmap(32*proc.PageSize, "rw-")
	for i := uint64(0); i < 32; i++ {
		p.AS.Write(heap.Start+i*proc.PageSize, []byte{byte(i + 1), 0xEE})
	}
	p.Tick = func(self *proc.Process) {} // alive but quiescent
	c.Nodes[0].StartLoop(p, 50*time.Millisecond)
	c.Sched.RunFor(100 * time.Millisecond)
	return c, migs, p
}

// TestQuiescentRoundShipsNothing is the regression test for the
// empty-delta bug: shipDeltaRound used to send a MsgMemDelta frame even
// when the delta was empty, so every quiescent round paid wire framing
// and delta headers. Now a longer precopy schedule (more empty rounds)
// must ship exactly the same bytes as a short one.
func TestQuiescentRoundShipsNothing(t *testing.T) {
	migrate := func(initial simtime.Duration) *Metrics {
		cfg := DefaultConfig()
		cfg.InitialTimeout = initial
		c, migs, p := quiescentEnv(t, cfg)
		var got *Metrics
		var gotErr error
		done := false
		migs[0].Migrate(p, c.Nodes[1].LocalIP, func(m *Metrics, err error) {
			got, gotErr, done = m, err, true
		})
		c.Sched.RunFor(30 * time.Second)
		if !done {
			t.Fatal("migration never completed")
		}
		if gotErr != nil {
			t.Fatalf("migration failed: %v", gotErr)
		}
		if findProcess(c.Nodes[1], "idle_serv") == nil {
			t.Fatal("process not on destination")
		}
		return got
	}
	short := migrate(320 * 1e6) // 320ms: few precopy rounds
	long := migrate(2560 * 1e6) // 2.56s: three more halvings, all empty
	if long.Rounds <= short.Rounds {
		t.Fatalf("long schedule ran %d rounds, short ran %d — test is not adding empty rounds",
			long.Rounds, short.Rounds)
	}
	if long.PrecopyMemBytes != short.PrecopyMemBytes {
		t.Fatalf("empty rounds shipped delta bytes: long=%d short=%d",
			long.PrecopyMemBytes, short.PrecopyMemBytes)
	}
	if long.MemPageBytes != short.MemPageBytes {
		t.Fatalf("empty rounds shipped page content: long=%d short=%d",
			long.MemPageBytes, short.MemPageBytes)
	}
}

// TestPipelineShipsEveryDirtyPageOnce runs the chunked pipeline against
// a shadow ledger: at each precopy round the test notes what the
// tracker is about to ship (all resident pages in round 1, the dirty
// set afterwards), and at freeze it notes the final dirty set plus a
// snapshot of the source heap. The engine's MemPageBytes must equal the
// ledger exactly — every dirty page shipped exactly once per round it
// was dirty in, nothing skipped, nothing shipped twice — and the
// destination heap must equal the freeze-time snapshot.
func TestPipelineShipsEveryDirtyPageOnce(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ChunkBytes = 4 << 10 // force real multi-chunk streams
	e := newEnv(t, 2, 4, cfg)
	heapStart := e.p.AS.VMAs()[0].Start

	var ledger uint64
	var frozenHeap []byte
	srcNode := e.c.Nodes[0].Name
	e.migrators[0].OnPhase = func(ev PhaseEvent) {
		if ev.Node != srcNode || ev.PID != e.p.PID {
			return
		}
		switch ev.Phase {
		case PhasePrecopy:
			if ev.Round == 1 {
				ledger += e.p.AS.ResidentBytes()
			} else {
				ledger += proc.PageSize * uint64(len(e.p.AS.DirtyPages()))
			}
		case PhaseFreeze:
			ledger += proc.PageSize * uint64(len(e.p.AS.DirtyPages()))
			h, err := e.p.AS.Read(heapStart, int(256*proc.PageSize))
			if err != nil {
				t.Errorf("freeze snapshot: %v", err)
			}
			frozenHeap = h
		}
	}
	var arrivedHeap []byte
	e.migrators[1].OnArrived = func(p *proc.Process, _ *Metrics) {
		h, err := p.AS.Read(heapStart, int(256*proc.PageSize))
		if err != nil {
			t.Errorf("arrival snapshot: %v", err)
		}
		arrivedHeap = h
	}

	m := e.migrate(t, 1)
	if ledger == 0 || frozenHeap == nil || arrivedHeap == nil {
		t.Fatal("phase hooks never fired")
	}
	if m.MemPageBytes != ledger {
		t.Fatalf("MemPageBytes=%d, shadow ledger=%d — pages skipped or double-shipped",
			m.MemPageBytes, ledger)
	}
	if !bytes.Equal(frozenHeap, arrivedHeap) {
		t.Fatal("destination heap differs from the freeze-time source heap")
	}
	// The checkpoint stream must ride its own traffic class: the source
	// NIC counts at least the encoded delta payloads, and on this
	// lossless fabric the destination sees every byte the source sent.
	tx := e.c.Nodes[0].LocalNIC.CkptTxBytes
	rx := e.c.Nodes[1].LocalNIC.CkptRxBytes
	if enc := m.PrecopyMemBytes + m.FreezeMemBytes; tx < enc || rx != tx {
		t.Fatalf("checkpoint class accounting: tx=%d rx=%d, encoded payload %d",
			tx, rx, enc)
	}
}
