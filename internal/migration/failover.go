package migration

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"

	"dvemig/internal/ckpt"
	"dvemig/internal/netsim"
	"dvemig/internal/netstack"
	"dvemig/internal/obs"
	"dvemig/internal/proc"
	"dvemig/internal/simtime"
)

// Fault tolerance (paper §VIII names it as future work for the
// mechanism): a Guardian periodically checkpoints a process and streams
// the image to a Standby on a buddy node; when the home node dies, the
// standby restarts the process from the most recent image. The lb
// conductor's failure detector drives the activation (see internal/lb):
// suspicion after missed heartbeats, confirmation after PeerTimeout,
// then a claim election among standbys holding images — the freshest
// (epoch, seq) wins — and the winner activates under a freshly minted
// ownership epoch.
//
// Connection state cannot outlive a crash the way it outlives a planned
// migration — the post-checkpoint socket state died with the node, so
// replaying a stale snapshot would desynchronize sequence numbers with
// the peers. On activation the standby therefore restores listening TCP
// sockets and UDP server sockets (ports the service owns) but drops
// established TCP connections: clients reconnect, exactly as after a
// server crash with fast restart.

// StandbyPort is the TCP port standby daemons listen on.
const StandbyPort = 7802

// Checkpoint stream message types (separate space from migd messages).
const (
	msgCkptImage MsgType = 100 + iota
	msgCkptAck
)

// Standby receives and stores checkpoint images and can activate them.
type Standby struct {
	Node *proc.Node

	// MaxImages bounds how many distinct services the standby retains
	// images for; storing one more evicts the stalest (oldest receive
	// time). Zero means the DefaultMaxImages bound.
	MaxImages int

	listener *netstack.TCPSocket
	images   map[string]*standbyImage

	// Stored counts images accepted; Evicted counts images dropped by
	// the retention bound; RejectedStale counts images refused for
	// carrying a superseded (epoch, seq).
	Stored        uint64
	Evicted       uint64
	RejectedStale uint64

	// DroppedDatagrams counts queued UDP datagrams discarded during
	// Activate (the paper's restart-consistency rule: a snapshot queue
	// must not be answered twice). The observability plane harvests it.
	DroppedDatagrams uint64
}

// DefaultMaxImages is the retention bound applied when MaxImages is 0.
const DefaultMaxImages = 64

type standbyImage struct {
	data  []byte
	token uint64
	seq   uint64
	epoch uint64
	from  netsim.Addr  // guardian's node (the image's home)
	at    simtime.Time // receive time, for eviction order
	tctx  obs.TraceContext
}

// NewStandby starts the standby daemon on a node.
func NewStandby(n *proc.Node) (*Standby, error) {
	s := &Standby{Node: n, images: make(map[string]*standbyImage)}
	s.listener = netstack.NewTCPSocket(n.Stack)
	if err := s.listener.Listen(n.LocalIP, StandbyPort); err != nil {
		return nil, err
	}
	s.listener.OnAccept = func(ch *netstack.TCPSocket) {
		conn := NewConn(ch)
		conn.OnMsg = func(t MsgType, payload []byte) {
			if t != msgCkptImage {
				return
			}
			name, token, seq, ep, tctx, img, err := decodeCkptImage(payload)
			if err != nil {
				return
			}
			s.offer(name, token, seq, ep, tctx, ch.RemoteIP, img)
			conn.Send(msgCkptAck, payload[:8])
		}
	}
	return s, nil
}

// offer folds a received image into the store under the freshness order
// (epoch, then seq). Superseded and refused images release their
// behavior tokens immediately — the fix for the unbounded registry
// growth the old "keep every token forever" behaviour caused.
func (s *Standby) offer(name string, token, seq, ep uint64, tctx obs.TraceContext, from netsim.Addr, img []byte) {
	cur := s.images[name]
	fresher := cur == nil || ep > cur.epoch || (ep == cur.epoch && seq > cur.seq)
	if !fresher {
		s.RejectedStale++
		takeBehavior(token) // refused image's behavior is unreachable
		return
	}
	if cur != nil && cur.token != token {
		takeBehavior(cur.token) // superseded image's behavior
	}
	if cur == nil {
		s.evictFor(name)
	}
	s.images[name] = &standbyImage{data: img, token: token, seq: seq,
		epoch: ep, from: from, at: s.Node.Sched.Now(), tctx: tctx}
	s.Stored++
}

// evictFor makes room for one more service, dropping the stalest image
// (ties broken by name for determinism) when the bound is reached.
func (s *Standby) evictFor(name string) {
	max := s.MaxImages
	if max <= 0 {
		max = DefaultMaxImages
	}
	for len(s.images) >= max {
		victim := ""
		for n, si := range s.images {
			if victim == "" || si.at < s.images[victim].at ||
				(si.at == s.images[victim].at && n < victim) {
				victim = n
			}
		}
		if victim == "" {
			return
		}
		takeBehavior(s.images[victim].token)
		delete(s.images, victim)
		s.Evicted++
	}
}

// Have reports whether an image for the process name is stored.
func (s *Standby) Have(name string) bool { return s.images[name] != nil }

// ImageInfo reports the freshness and origin of the stored image for a
// service: the ownership epoch and sequence number it was checkpointed
// under and the in-cluster address of the node it came from. The
// detector-driven failover election compares (epoch, seq) across
// claimants so the standby holding the freshest image wins.
func (s *Standby) ImageInfo(name string) (ep, seq uint64, from netsim.Addr, ok bool) {
	si := s.images[name]
	if si == nil {
		return 0, 0, 0, false
	}
	return si.epoch, si.seq, si.from, true
}

// ImageTraceCtx returns the causal coordinate the stored image's
// guardian stamped onto the checkpoint stream (the guard span on the
// dead owner's node), or the zero context when unknown. A failover
// election links its span here, so the whole detector→claim→activate
// chain hangs off the guarded service's trace.
func (s *Standby) ImageTraceCtx(name string) obs.TraceContext {
	si := s.images[name]
	if si == nil {
		return obs.TraceContext{}
	}
	return si.tctx
}

// NumImages reports how many services have a stored image.
func (s *Standby) NumImages() int { return len(s.images) }

// ImagesFrom lists the services whose stored image came from the given
// node, sorted for deterministic iteration — the candidate set a
// failure detector consults when that node dies.
func (s *Standby) ImagesFrom(from netsim.Addr) []string {
	var out []string
	for name, si := range s.images {
		if si.from == from {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}

// Activate restarts the named process from its latest image on the
// standby's node. Established TCP connections from the image are dropped
// (see package comment); listening and UDP sockets are restored so the
// service is immediately reachable again.
func (s *Standby) Activate(name string) (*proc.Process, error) {
	si := s.images[name]
	if si == nil {
		return nil, fmt.Errorf("failover: no image for %q", name)
	}
	img, err := ckpt.DecodeImage(si.data)
	if err != nil {
		return nil, err
	}
	// Filter the FD table: keep files, listeners and UDP sockets.
	kept := img.FDs[:0]
	for _, f := range img.FDs {
		switch {
		case f.Kind == "file":
			kept = append(kept, f)
		case f.Kind == "udp":
			// The binding survives; queued datagrams do not. The old
			// owner kept consuming its queue after this checkpoint was
			// taken, so replaying the snapshot would answer datagrams a
			// second time — the restart serves only traffic that arrives
			// under the new ownership.
			s.DroppedDatagrams += uint64(len(f.UDP.Queue))
			f.UDP.Queue = nil
			kept = append(kept, f)
		case f.Kind == "tcp" && f.TCP.Listening:
			kept = append(kept, f)
		}
	}
	img.FDs = kept
	img.Behavior = takeBehavior(si.token)
	p, err := ckpt.Restore(s.Node, img)
	if err != nil {
		return nil, err
	}
	delete(s.images, name)
	return p, nil
}

// Guardian periodically checkpoints one process to a standby node.
type Guardian struct {
	Node    *proc.Node
	Proc    *proc.Process
	BuddyIP netsim.Addr

	// Epoch stamps shipped images with the owner's current ownership
	// epoch; the failover election prefers higher epochs regardless of
	// sequence numbers (a new owner's guardian restarts seq at 1).
	Epoch uint64

	// Span is the guardianship's open span on the owner's track (nil
	// when the observability plane is disabled; lb.AnnounceOwnership
	// opens it). Its context rides on every shipped checkpoint image so
	// a failover election on the standby links into the same trace.
	Span *obs.Span

	conn   *Conn
	ticker *simtime.Ticker
	seq    uint64
	token  uint64

	// Sent counts shipped checkpoints; LastBytes the latest image size.
	Sent      uint64
	LastBytes int

	// encBuf / msgBuf are scratch buffers reused across periodic
	// checkpoints (the transport copies payloads into the socket send
	// buffer, so reuse is safe).
	encBuf []byte
	msgBuf []byte
}

// NewGuardian starts periodic checkpointing of p to the standby at
// buddy. The first checkpoint is taken after one interval.
func NewGuardian(p *proc.Process, buddy netsim.Addr, interval simtime.Duration) (*Guardian, error) {
	if p.Node == nil {
		return nil, errors.New("failover: process has no node")
	}
	g := &Guardian{Node: p.Node, Proc: p, BuddyIP: buddy}
	sk := netstack.NewTCPSocket(g.Node.Stack)
	g.conn = NewConn(sk)
	if err := sk.Connect(buddy, StandbyPort); err != nil {
		return nil, err
	}
	g.ticker = simtime.NewTicker(g.Node.Sched, interval, "guardian", g.checkpoint)
	g.ticker.Start()
	return g, nil
}

// Stop halts periodic checkpointing and closes the guardianship span.
func (g *Guardian) Stop() {
	g.ticker.Stop()
	g.conn.Close()
	g.Span.Close()
}

// checkpoint takes a consistent image of the (briefly signalled) process
// and ships it. The process keeps running: this is a cooperative
// checkpoint, not a freeze — sockets are snapshotted in place.
func (g *Guardian) checkpoint() {
	if g.Proc.State != proc.ProcRunning {
		return
	}
	// The checkpoint signal flushes syscall state like the migration
	// freeze does, so socket queues are quiescent for the snapshot.
	g.Proc.Signal(proc.SIGCKPT)
	img := ckpt.Checkpoint(g.Proc)
	token := registerBehavior(img.Behavior)
	g.token = token
	g.seq++
	g.encBuf = img.EncodeInto(g.encBuf)
	g.msgBuf = encodeCkptImageInto(g.msgBuf, g.Proc.Name, token, g.seq, g.Epoch, g.Span.Context(), g.encBuf)
	payload := g.msgBuf
	g.LastBytes = len(payload)
	if err := g.conn.Send(msgCkptImage, payload); err == nil {
		g.Sent++
	} else {
		// The image never left this node; its behavior entry would leak.
		takeBehavior(token)
	}
}

// Checkpoint-image wire layout:
//
//	[8B seq][8B token][8B epoch][8B trace][8B span][4B name len][name][image]
//
// trace/span are the guardian's obs.TraceContext (zero when the plane
// is disabled).
func encodeCkptImage(name string, token, seq, ep uint64, tctx obs.TraceContext, img []byte) []byte {
	return encodeCkptImageInto(nil, name, token, seq, ep, tctx, img)
}

// encodeCkptImageInto encodes into buf, reusing its capacity when it
// fits; content is overwritten.
func encodeCkptImageInto(buf []byte, name string, token, seq, ep uint64, tctx obs.TraceContext, img []byte) []byte {
	need := 8 + 8 + 8 + 16 + 4 + len(name) + len(img)
	b := buf[:0]
	if cap(b) < need {
		b = make([]byte, 0, need)
	}
	b = b[:need]
	binary.BigEndian.PutUint64(b, seq)
	binary.BigEndian.PutUint64(b[8:], token)
	binary.BigEndian.PutUint64(b[16:], ep)
	binary.BigEndian.PutUint64(b[24:], tctx.Trace)
	binary.BigEndian.PutUint64(b[32:], tctx.Span)
	binary.BigEndian.PutUint32(b[40:], uint32(len(name)))
	copy(b[44:], name)
	copy(b[44+len(name):], img)
	return b
}

func decodeCkptImage(b []byte) (name string, token, seq, ep uint64, tctx obs.TraceContext, img []byte, err error) {
	if len(b) < 44 {
		return "", 0, 0, 0, obs.TraceContext{}, nil, errors.New("failover: short image message")
	}
	seq = binary.BigEndian.Uint64(b)
	token = binary.BigEndian.Uint64(b[8:])
	ep = binary.BigEndian.Uint64(b[16:])
	tctx = obs.TraceContext{Trace: binary.BigEndian.Uint64(b[24:]), Span: binary.BigEndian.Uint64(b[32:])}
	nl := int(binary.BigEndian.Uint32(b[40:]))
	if nl < 0 || 44+nl > len(b) {
		return "", 0, 0, 0, obs.TraceContext{}, nil, errors.New("failover: corrupt image message")
	}
	name = string(b[44 : 44+nl])
	img = b[44+nl:]
	return name, token, seq, ep, tctx, img, nil
}
