package migration

import (
	"encoding/binary"
	"errors"
	"fmt"

	"dvemig/internal/ckpt"
	"dvemig/internal/netsim"
	"dvemig/internal/netstack"
	"dvemig/internal/proc"
	"dvemig/internal/simtime"
)

// Fault tolerance (paper §VIII names it as future work for the
// mechanism): a Guardian periodically checkpoints a process and streams
// the image to a Standby on a buddy node; when the home node dies, the
// standby restarts the process from the most recent image.
//
// Connection state cannot outlive a crash the way it outlives a planned
// migration — the post-checkpoint socket state died with the node, so
// replaying a stale snapshot would desynchronize sequence numbers with
// the peers. On activation the standby therefore restores listening TCP
// sockets and UDP server sockets (ports the service owns) but drops
// established TCP connections: clients reconnect, exactly as after a
// server crash with fast restart.

// StandbyPort is the TCP port standby daemons listen on.
const StandbyPort = 7802

// Checkpoint stream message types (separate space from migd messages).
const (
	msgCkptImage MsgType = 100 + iota
	msgCkptAck
)

// Standby receives and stores checkpoint images and can activate them.
type Standby struct {
	Node *proc.Node

	listener *netstack.TCPSocket
	images   map[string]*standbyImage

	// Stored counts images received; useful for tests.
	Stored uint64
}

type standbyImage struct {
	data  []byte
	token uint64
	seq   uint64
}

// NewStandby starts the standby daemon on a node.
func NewStandby(n *proc.Node) (*Standby, error) {
	s := &Standby{Node: n, images: make(map[string]*standbyImage)}
	s.listener = netstack.NewTCPSocket(n.Stack)
	if err := s.listener.Listen(n.LocalIP, StandbyPort); err != nil {
		return nil, err
	}
	s.listener.OnAccept = func(ch *netstack.TCPSocket) {
		conn := NewConn(ch)
		conn.OnMsg = func(t MsgType, payload []byte) {
			if t != msgCkptImage {
				return
			}
			name, token, seq, img, err := decodeCkptImage(payload)
			if err != nil {
				return
			}
			cur := s.images[name]
			if cur == nil || seq > cur.seq {
				s.images[name] = &standbyImage{data: img, token: token, seq: seq}
				s.Stored++
			}
			conn.Send(msgCkptAck, payload[:8])
		}
	}
	return s, nil
}

// Have reports whether an image for the process name is stored.
func (s *Standby) Have(name string) bool { return s.images[name] != nil }

// Activate restarts the named process from its latest image on the
// standby's node. Established TCP connections from the image are dropped
// (see package comment); listening and UDP sockets are restored so the
// service is immediately reachable again.
func (s *Standby) Activate(name string) (*proc.Process, error) {
	si := s.images[name]
	if si == nil {
		return nil, fmt.Errorf("failover: no image for %q", name)
	}
	img, err := ckpt.DecodeImage(si.data)
	if err != nil {
		return nil, err
	}
	// Filter the FD table: keep files, listeners and UDP sockets.
	kept := img.FDs[:0]
	for _, f := range img.FDs {
		switch {
		case f.Kind == "file":
			kept = append(kept, f)
		case f.Kind == "udp":
			kept = append(kept, f)
		case f.Kind == "tcp" && f.TCP.Listening:
			kept = append(kept, f)
		}
	}
	img.FDs = kept
	img.Behavior = takeBehavior(si.token)
	p, err := ckpt.Restore(s.Node, img)
	if err != nil {
		return nil, err
	}
	delete(s.images, name)
	return p, nil
}

// Guardian periodically checkpoints one process to a standby node.
type Guardian struct {
	Node    *proc.Node
	Proc    *proc.Process
	BuddyIP netsim.Addr

	conn   *Conn
	ticker *simtime.Ticker
	seq    uint64
	token  uint64

	// Sent counts shipped checkpoints; LastBytes the latest image size.
	Sent      uint64
	LastBytes int
}

// NewGuardian starts periodic checkpointing of p to the standby at
// buddy. The first checkpoint is taken after one interval.
func NewGuardian(p *proc.Process, buddy netsim.Addr, interval simtime.Duration) (*Guardian, error) {
	if p.Node == nil {
		return nil, errors.New("failover: process has no node")
	}
	g := &Guardian{Node: p.Node, Proc: p, BuddyIP: buddy}
	sk := netstack.NewTCPSocket(g.Node.Stack)
	g.conn = NewConn(sk)
	if err := sk.Connect(buddy, StandbyPort); err != nil {
		return nil, err
	}
	g.ticker = simtime.NewTicker(g.Node.Sched, interval, "guardian", g.checkpoint)
	g.ticker.Start()
	return g, nil
}

// Stop halts periodic checkpointing.
func (g *Guardian) Stop() {
	g.ticker.Stop()
	g.conn.Close()
}

// checkpoint takes a consistent image of the (briefly signalled) process
// and ships it. The process keeps running: this is a cooperative
// checkpoint, not a freeze — sockets are snapshotted in place.
func (g *Guardian) checkpoint() {
	if g.Proc.State != proc.ProcRunning {
		return
	}
	// The checkpoint signal flushes syscall state like the migration
	// freeze does, so socket queues are quiescent for the snapshot.
	g.Proc.Signal(proc.SIGCKPT)
	img := ckpt.Checkpoint(g.Proc)
	token := registerBehavior(img.Behavior)
	g.token = token
	g.seq++
	payload := encodeCkptImage(g.Proc.Name, token, g.seq, img.Encode())
	g.LastBytes = len(payload)
	if err := g.conn.Send(msgCkptImage, payload); err == nil {
		g.Sent++
	}
}

func encodeCkptImage(name string, token, seq uint64, img []byte) []byte {
	b := make([]byte, 8+8+4+len(name)+len(img))
	binary.BigEndian.PutUint64(b, seq)
	binary.BigEndian.PutUint64(b[8:], token)
	binary.BigEndian.PutUint32(b[16:], uint32(len(name)))
	copy(b[20:], name)
	copy(b[20+len(name):], img)
	return b
}

func decodeCkptImage(b []byte) (name string, token, seq uint64, img []byte, err error) {
	if len(b) < 20 {
		return "", 0, 0, nil, errors.New("failover: short image message")
	}
	seq = binary.BigEndian.Uint64(b)
	token = binary.BigEndian.Uint64(b[8:])
	nl := int(binary.BigEndian.Uint32(b[16:]))
	if nl < 0 || 20+nl > len(b) {
		return "", 0, 0, nil, errors.New("failover: corrupt image message")
	}
	name = string(b[20 : 20+nl])
	img = b[20+nl:]
	return name, token, seq, img, nil
}
