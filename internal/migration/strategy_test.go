package migration

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"dvemig/internal/ckpt"
	"dvemig/internal/proc"
	"dvemig/internal/simtime"
)

func TestStrategyByName(t *testing.T) {
	for _, name := range StrategyNames() {
		st, err := StrategyByName(name)
		if err != nil {
			t.Fatal(err)
		}
		if st.Name() != name {
			t.Fatalf("StrategyByName(%q).Name() = %q", name, st.Name())
		}
		rt, err := strategyByMode(st.mode())
		if err != nil {
			t.Fatal(err)
		}
		if rt.Name() != name {
			t.Fatalf("mode round-trip broke: %q -> %q", name, rt.Name())
		}
	}
	if st, err := StrategyByName(""); err != nil || st.Name() != "precopy" {
		t.Fatalf("empty name should default to precopy, got %v, %v", st, err)
	}
	if _, err := StrategyByName("lazy"); err == nil {
		t.Fatal("unknown strategy accepted")
	}
	if _, err := strategyByMode(77); err == nil {
		t.Fatal("unknown mode accepted")
	}
}

// TestPostcopyMigrationEndToEnd runs the full client-streaming scenario
// of TestLiveMigrationEndToEnd under the post-copy and hybrid
// strategies: the process must arrive, resume with holes, drain, and
// never lose or reorder a byte of any client stream.
func TestPostcopyMigrationEndToEnd(t *testing.T) {
	for _, mig := range []Strategy{Postcopy(), Hybrid()} {
		t.Run(mig.Name(), func(t *testing.T) {
			cfg := DefaultConfig()
			cfg.Mig = mig
			e := newEnv(t, 3, 8, cfg)
			origPID := e.p.PID

			var sent [][]byte
			var tickers []*simtime.Ticker
			for i, cli := range e.clients {
				i, cli := i, cli
				sent = append(sent, nil)
				tk := simtime.NewTicker(e.c.Sched, 40*time.Millisecond, "cli", func() {
					msg := []byte(fmt.Sprintf("c%d.%d;", i, len(sent[i])))
					sent[i] = append(sent[i], msg...)
					cli.Send(msg)
				})
				tk.Start()
				tickers = append(tickers, tk)
			}
			e.c.Sched.RunFor(300 * time.Millisecond)

			m := e.migrate(t, 1)
			dst := e.c.Nodes[1]
			q := findProcess(dst, "zone_serv1")
			if q == nil {
				t.Fatal("process did not arrive on destination")
			}
			if q.PID != origPID {
				t.Fatalf("PID changed: %d -> %d", origPID, q.PID)
			}
			if findProcess(e.c.Nodes[0], "zone_serv1") != nil {
				t.Fatal("process still on source")
			}
			if m.Mig != mig.Name() {
				t.Fatalf("Metrics.Mig = %q, want %q", m.Mig, mig.Name())
			}
			// The drain happened: every hole filled, no page left absent.
			if n := q.AS.AbsentCount(); n != 0 {
				t.Fatalf("%d pages still absent after completion", n)
			}
			if q.Stalled {
				t.Fatal("process still stalled after drain")
			}
			// Pull accounting is exact: demand + prefetch = shipped, no
			// duplicates anywhere, and the degraded window is coherent.
			if m.PagesShipped == 0 {
				t.Fatal("no pages shipped post-resume")
			}
			if m.PagesDemand+m.PagesPrefetched != m.PagesShipped {
				t.Fatalf("pull accounting off: demand %d + prefetch %d != shipped %d",
					m.PagesDemand, m.PagesPrefetched, m.PagesShipped)
			}
			if m.PullDuplicates != 0 {
				t.Fatalf("PullDuplicates = %d, want 0", m.PullDuplicates)
			}
			if e.migrators[1].DupFills != 0 {
				t.Fatalf("destination rejected %d duplicate fills", e.migrators[1].DupFills)
			}
			if m.LastFillAt < m.ResumeAt {
				t.Fatalf("LastFillAt %v before ResumeAt %v", m.LastFillAt, m.ResumeAt)
			}
			if m.DegradedWindow <= 0 || m.TotalTime <= 0 {
				t.Fatalf("windows implausible: degraded %v total %v", m.DegradedWindow, m.TotalTime)
			}
			// Post-copy's raison d'être: the freeze window excludes memory
			// copying, so it stays short even with 256 pages resident.
			if m.FreezeTime <= 0 || m.FreezeTime > 200*time.Millisecond {
				t.Fatalf("freeze time implausible for %s: %v", mig.Name(), m.FreezeTime)
			}
			// The pull traffic was class-stamped: both NICs saw page-pull
			// bytes on the in-cluster link.
			if e.c.Nodes[0].LocalNIC.PullTxBytes == 0 || e.c.Nodes[1].LocalNIC.PullRxBytes == 0 {
				t.Fatalf("pull-class accounting missing: tx=%d rx=%d",
					e.c.Nodes[0].LocalNIC.PullTxBytes, e.c.Nodes[1].LocalNIC.PullRxBytes)
			}

			// Stream integrity across the degraded window.
			e.c.Sched.RunFor(2 * time.Second)
			for _, tk := range tickers {
				tk.Stop()
			}
			e.c.Sched.RunFor(time.Second)
			all := e.received.Bytes()
			for i := range e.clients {
				want := sent[i]
				got := extractClient(all, i)
				if !bytes.Equal(got, want) {
					t.Fatalf("client %d stream mismatch: got %d bytes, want %d",
						i, len(got), len(want))
				}
			}
			if !bytes.Contains(e.dbPeer.Recv(), []byte("ping;")) {
				t.Fatal("db connection dead after migration")
			}
		})
	}
}

// TestPostcopyShipsEveryPageExactlyOnce is the shadow-model property:
// the set of pages shipped after resume must equal the resident set at
// freeze time, each shipped exactly once, split consistently between
// demand and prefetch.
func TestPostcopyShipsEveryPageExactlyOnce(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Mig = Postcopy()
	e := newEnv(t, 2, 4, cfg)

	shipped := map[ckpt.PageCoord]int{}
	demand := 0
	e.migrators[0].OnPageShip = func(c ckpt.PageCoord, d bool) {
		shipped[c]++
		if d {
			demand++
		}
	}
	frozen := map[ckpt.PageCoord]bool{}
	e.migrators[0].OnPhase = func(ev PhaseEvent) {
		if ev.Phase == PhaseFreeze && ev.Node == e.c.Nodes[0].Name {
			// Synchronous with the freeze point: no tick can interleave, so
			// this is exactly the resident set the directory will describe.
			for _, v := range e.p.AS.VMAs() {
				for idx := range v.Pages {
					frozen[ckpt.PageCoord{VMAStart: v.Start, Index: idx}] = true
				}
			}
		}
	}
	m := e.migrate(t, 1)
	if len(frozen) == 0 {
		t.Fatal("freeze snapshot empty — hook never fired")
	}
	if len(shipped) != len(frozen) {
		t.Fatalf("shipped %d distinct pages, frozen resident set has %d", len(shipped), len(frozen))
	}
	for c, n := range shipped {
		if !frozen[c] {
			t.Fatalf("shipped page %#x+%d was not resident at freeze", c.VMAStart, c.Index)
		}
		if n != 1 {
			t.Fatalf("page %#x+%d shipped %d times", c.VMAStart, c.Index, n)
		}
	}
	if int(m.PagesShipped) != len(frozen) {
		t.Fatalf("PagesShipped = %d, want %d", m.PagesShipped, len(frozen))
	}
	if int(m.PagesDemand) != demand {
		t.Fatalf("PagesDemand = %d, hook saw %d", m.PagesDemand, demand)
	}
	if m.PullDuplicates != 0 || e.migrators[1].DupFills != 0 {
		t.Fatalf("duplicates: served=%d filled=%d, want 0/0", m.PullDuplicates, e.migrators[1].DupFills)
	}
}

// TestHybridBytesNeverExceedPrecopy is the transfer-volume property:
// for the same seed-deterministic dirty-page schedule, hybrid's total
// page bytes (one bounded round + pulls for the residual) can never
// exceed pure pre-copy's (the same first round plus every later round
// and the freeze residue).
func TestHybridBytesNeverExceedPrecopy(t *testing.T) {
	for _, nClients := range []int{2, 8, 16} {
		t.Run(fmt.Sprintf("clients=%d", nClients), func(t *testing.T) {
			run := func(mig Strategy) *Metrics {
				cfg := DefaultConfig()
				cfg.Mig = mig
				e := newEnv(t, 2, nClients, cfg)
				return e.migrate(t, 1)
			}
			pre := run(Precopy())
			hyb := run(Hybrid())
			if pre.MemPageBytes == 0 || hyb.MemPageBytes == 0 {
				t.Fatalf("page byte accounting missing: pre=%d hyb=%d",
					pre.MemPageBytes, hyb.MemPageBytes)
			}
			if hyb.MemPageBytes > pre.MemPageBytes {
				t.Fatalf("hybrid shipped more page bytes than precopy: %d > %d",
					hyb.MemPageBytes, pre.MemPageBytes)
			}
			if hyb.Rounds != 1 {
				t.Fatalf("hybrid ran %d pre-copy rounds, want exactly 1", hyb.Rounds)
			}
			if pre.Rounds <= 1 {
				t.Fatalf("precopy ran %d rounds; comparison degenerate", pre.Rounds)
			}
		})
	}
}

// TestPostcopyZeroResidentDrainsImmediately covers the degenerate
// directory: a process whose address space has no materialized pages
// resumes and drains in the same instant, with no pull traffic.
func TestPostcopyZeroResidentDrainsImmediately(t *testing.T) {
	c := proc.NewCluster(simtime.NewScheduler(), 2)
	cfg := DefaultConfig()
	cfg.Mig = Postcopy()
	var ms []*Migrator
	for _, n := range c.Nodes {
		m, err := NewMigrator(n, cfg)
		if err != nil {
			t.Fatal(err)
		}
		ms = append(ms, m)
	}
	p := c.Nodes[0].Spawn("empty_proc", 1)
	p.AS.Mmap(16*proc.PageSize, "rw-") // mapped but never touched
	var got *Metrics
	ms[0].Migrate(p, c.Nodes[1].LocalIP, func(m *Metrics, err error) {
		if err != nil {
			t.Errorf("migration failed: %v", err)
		}
		got = m
	})
	c.Sched.RunFor(5 * time.Second)
	if got == nil {
		t.Fatal("migration never completed")
	}
	if got.PagesShipped != 0 {
		t.Fatalf("shipped %d pages from an empty resident set", got.PagesShipped)
	}
	q := findProcess(c.Nodes[1], "empty_proc")
	if q == nil || q.AS.AbsentCount() != 0 {
		t.Fatal("process missing or hole-y on destination")
	}
}
