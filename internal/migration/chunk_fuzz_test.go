package migration

import (
	"bytes"
	"testing"
	"time"

	"dvemig/internal/ckpt"
	"dvemig/internal/netstack"
	"dvemig/internal/proc"
	"dvemig/internal/simtime"
)

// fakeSrc impersonates a migration *source* at the wire level: it dials
// the real migd daemon on the destination node and injects arbitrary
// chunk frames — the only way to hit the inbound reassembler with
// traffic a real source would never send (gaps, duplicates, interleaved
// streams, garbage).
type fakeSrc struct {
	c    *proc.Cluster
	conn *Conn

	acked    bool
	restored bool
	aborts   []string
	closed   bool
}

func newFakeSrc(t *testing.T, c *proc.Cluster, from, to *proc.Node) *fakeSrc {
	t.Helper()
	fs := &fakeSrc{c: c}
	sk := netstack.NewTCPSocket(from.Stack)
	fs.conn = NewConn(sk)
	fs.conn.OnMsg = func(mt MsgType, payload []byte) {
		switch mt {
		case MsgMigrateAck:
			fs.acked = true
		case MsgRestoreDone:
			fs.restored = true
		case MsgAbort:
			fs.aborts = append(fs.aborts, string(payload))
		}
	}
	fs.conn.OnClose = func() { fs.closed = true }
	if err := sk.Connect(to.LocalIP, MigdPort); err != nil {
		t.Fatal(err)
	}
	c.Sched.RunFor(200 * time.Millisecond)
	if sk.State != netstack.TCPEstablished {
		t.Fatal("fake source never connected")
	}
	return fs
}

// handshake sends a MIGRATE_REQ and waits for the ack.
func (fs *fakeSrc) handshake(t *testing.T, pid int) {
	t.Helper()
	req := migrateReq{PID: pid, Mode: modePrecopy, Name: "chunk_target"}
	fs.conn.Send(MsgMigrateReq, req.encode())
	fs.c.Sched.RunFor(200 * time.Millisecond)
	if !fs.acked {
		t.Fatal("handshake never acked")
	}
}

// sendChunks splits payload into size-byte MsgChunk frames (plus the
// trailer when end is true), exactly as the real sender would.
func (fs *fakeSrc) sendChunks(kind byte, stream uint32, payload []byte, size int, end bool) {
	var seq uint32
	for off := 0; ; {
		n := size
		if off+n > len(payload) {
			n = len(payload) - off
		}
		fs.conn.Send(MsgChunk, chunkFrame{Kind: kind, Stream: stream, Seq: seq,
			Data: payload[off : off+n]}.encode())
		seq++
		off += n
		if off >= len(payload) {
			break
		}
	}
	if end {
		fs.conn.Send(MsgChunkEnd, chunkEnd{Kind: kind, Stream: stream,
			Chunks: seq, Total: uint64(len(payload))}.encode())
	}
}

// validFreezePayload builds a complete freeze image a destination can
// restore: one 4-page VMA with one sparse and one dense page.
func validFreezePayload(pid int) []byte {
	dense := make([]byte, proc.PageSize)
	for i := range dense {
		dense[i] = byte(i%255) + 1
	}
	sparse := make([]byte, proc.PageSize)
	sparse[77] = 0xEE
	md := &ckpt.MemDelta{
		Round:   1,
		NewVMAs: []ckpt.VMARange{{Start: 0x40000, End: 0x40000 + 4*proc.PageSize, Perms: "rw-"}},
		Pages: []ckpt.PageImage{
			{VMAStart: 0x40000, Index: 0, Data: dense},
			{VMAStart: 0x40000, Index: 2, Data: sparse},
		},
	}
	img := &ckpt.Image{PID: pid, Name: "chunk_target",
		Threads: []ckpt.ThreadImage{{TID: 1}}}
	return freezeMsg{Image: img.Encode(), MemDelta: md.Encode()}.encode()
}

func chunkEnv(t *testing.T) (*fakeSrc, *proc.Cluster) {
	t.Helper()
	c := proc.NewCluster(simtime.NewScheduler(), 2)
	cfg := DefaultConfig()
	cfg.EnableCapture = false
	cfg.InboundLease = 3 * 1e9
	if _, err := NewMigrator(c.Nodes[1], cfg); err != nil {
		t.Fatal(err)
	}
	return newFakeSrc(t, c, c.Nodes[0], c.Nodes[1]), c
}

// TestChunkStreamRestoresProcess: a hand-fed chunked freeze stream must
// drive the real destination through a full restore, byte-identically,
// even at a pathological 7-byte chunk size.
func TestChunkStreamRestoresProcess(t *testing.T) {
	fs, c := chunkEnv(t)
	fs.handshake(t, 901)
	payload := validFreezePayload(901)
	fs.sendChunks(chunkKindFreeze, 1, payload, 7, true)
	c.Sched.RunFor(2 * time.Second)
	if len(fs.aborts) > 0 {
		t.Fatalf("destination aborted: %q", fs.aborts)
	}
	if !fs.restored {
		t.Fatal("no RESTORE_DONE")
	}
	p := findProcess(c.Nodes[1], "chunk_target")
	if p == nil {
		t.Fatal("process not restored on destination")
	}
	got, err := p.AS.Read(0x40000, 4*proc.PageSize)
	if err != nil {
		t.Fatal(err)
	}
	if got[2*proc.PageSize+77] != 0xEE || got[0] != 1 {
		t.Fatal("restored memory does not match the shipped image")
	}
}

// TestChunkStreamViolationsAbort: every way a chunk stream can be
// malformed must abort the migration (and restore nothing) rather than
// crash or restore garbage.
func TestChunkStreamViolationsAbort(t *testing.T) {
	frame := func(kind byte, stream, seq uint32, data []byte) []byte {
		return chunkFrame{Kind: kind, Stream: stream, Seq: seq, Data: data}.encode()
	}
	end := func(kind byte, stream, chunks uint32, total uint64) []byte {
		return chunkEnd{Kind: kind, Stream: stream, Chunks: chunks, Total: total}.encode()
	}
	cases := map[string][][2]interface{}{
		"chunk-before-req": nil, // special-cased below
		"unknown-kind": {
			{MsgChunk, frame(99, 1, 0, []byte("xx"))},
		},
		"opened-mid-stream": {
			{MsgChunk, frame(chunkKindFreeze, 1, 3, []byte("xx"))},
		},
		"duplicate-seq": {
			{MsgChunk, frame(chunkKindFreeze, 1, 0, []byte("ab"))},
			{MsgChunk, frame(chunkKindFreeze, 1, 0, []byte("ab"))},
		},
		"seq-gap": {
			{MsgChunk, frame(chunkKindFreeze, 1, 0, []byte("ab"))},
			{MsgChunk, frame(chunkKindFreeze, 1, 2, []byte("cd"))},
		},
		"interleaved-kind": {
			{MsgChunk, frame(chunkKindFreeze, 1, 0, []byte("ab"))},
			{MsgChunk, frame(chunkKindMemDelta, 1, 1, []byte("cd"))},
		},
		"interleaved-stream": {
			{MsgChunk, frame(chunkKindFreeze, 1, 0, []byte("ab"))},
			{MsgChunk, frame(chunkKindFreeze, 2, 1, []byte("cd"))},
		},
		"end-without-stream": {
			{MsgChunkEnd, end(chunkKindFreeze, 1, 1, 2)},
		},
		"end-wrong-count": {
			{MsgChunk, frame(chunkKindFreeze, 1, 0, []byte("ab"))},
			{MsgChunkEnd, end(chunkKindFreeze, 1, 2, 2)},
		},
		"end-wrong-total": {
			{MsgChunk, frame(chunkKindFreeze, 1, 0, []byte("ab"))},
			{MsgChunkEnd, end(chunkKindFreeze, 1, 1, 3)},
		},
		"end-truncated": {
			{MsgChunk, frame(chunkKindFreeze, 1, 0, []byte("ab"))},
			{MsgChunkEnd, []byte{1, 2, 3}},
		},
		"chunk-truncated": {
			{MsgChunk, []byte{1, 0, 0}},
		},
		"garbage-content": {
			{MsgChunk, frame(chunkKindFreeze, 1, 0, []byte("not a freeze image"))},
			{MsgChunkEnd, end(chunkKindFreeze, 1, 1, 18)},
		},
	}
	for name, script := range cases {
		t.Run(name, func(t *testing.T) {
			fs, c := chunkEnv(t)
			if name == "chunk-before-req" {
				fs.conn.Send(MsgChunk, frame(chunkKindFreeze, 1, 0, []byte("ab")))
			} else {
				fs.handshake(t, 902)
				for _, step := range script {
					fs.conn.Send(step[0].(MsgType), step[1].([]byte))
				}
			}
			c.Sched.RunFor(2 * time.Second)
			if len(fs.aborts) == 0 && !fs.closed {
				t.Fatal("malformed stream neither aborted nor closed")
			}
			if fs.restored {
				t.Fatal("malformed stream still restored a process")
			}
			if findProcess(c.Nodes[1], "chunk_target") != nil {
				t.Fatal("malformed stream left a process behind")
			}
		})
	}
}

// FuzzChunkDecoders: the frame codecs round-trip, and arbitrary bytes
// never panic the decoders.
func FuzzChunkDecoders(f *testing.F) {
	f.Add([]byte{1, 0, 0, 0, 1, 0, 0, 0, 0, 0xAB})
	f.Add(chunkEnd{Kind: 2, Stream: 7, Chunks: 3, Total: 12345}.encode())
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, b []byte) {
		if ch, err := decodeChunk(b); err == nil {
			rt := ch.encode()
			if !bytes.Equal(rt, b) {
				t.Fatalf("chunk re-encode mismatch: %x vs %x", rt, b)
			}
		}
		if ce, err := decodeChunkEnd(b); err == nil {
			if !bytes.Equal(ce.encode(), b) {
				t.Fatal("chunk-end re-encode mismatch")
			}
		}
	})
}

// FuzzChunkStream drives the real migd destination with a script of
// valid, truncated, duplicated, reordered and garbage chunk frames.
// Whatever the script, the daemon must never panic, and a malformed
// stream must never end in a restored process.
func FuzzChunkStream(f *testing.F) {
	f.Add([]byte{0})
	f.Add([]byte{1, 2, 0})
	f.Add([]byte{3, 4, 5, 6})
	f.Add([]byte{7, 8, 2, 9, 0})
	f.Fuzz(func(t *testing.T, script []byte) {
		fs, c := chunkEnv(t)
		fs.handshake(t, 903)
		payload := validFreezePayload(903)
		poisoned := false
		restoredAtPoison := false
		step := func() {
			c.Sched.RunFor(50 * time.Millisecond)
		}
		for i := 0; i < len(script) && i < 12; i++ {
			op := script[i] % 10
			arg := 1 + int(script[i]/10)*16 // chunk size 1..401
			switch op {
			case 0: // complete valid stream
				fs.sendChunks(chunkKindFreeze, uint32(i+1), payload, arg, true)
			case 1: // truncated stream (no trailer)
				fs.sendChunks(chunkKindMemDelta, uint32(i+1), payload, arg, false)
				poisoned = true // next open on this stream id mismatches
			case 2: // duplicate first frame
				fs.conn.Send(MsgChunk, chunkFrame{Kind: chunkKindFreeze, Stream: uint32(i + 1),
					Seq: 0, Data: payload[:1]}.encode())
				fs.conn.Send(MsgChunk, chunkFrame{Kind: chunkKindFreeze, Stream: uint32(i + 1),
					Seq: 0, Data: payload[:1]}.encode())
				poisoned = true
			case 3: // out-of-order open
				fs.conn.Send(MsgChunk, chunkFrame{Kind: chunkKindFreeze, Stream: uint32(i + 1),
					Seq: 7, Data: payload[:1]}.encode())
				poisoned = true
			case 4: // unknown kind
				fs.conn.Send(MsgChunk, chunkFrame{Kind: 0xEF, Stream: uint32(i + 1),
					Seq: 0, Data: payload[:1]}.encode())
				poisoned = true
			case 5: // trailer with no stream
				fs.conn.Send(MsgChunkEnd, chunkEnd{Kind: chunkKindFreeze,
					Stream: uint32(i + 1), Chunks: 1, Total: 1}.encode())
				poisoned = true
			case 6: // garbage frame bytes
				fs.conn.Send(MsgChunk, script)
				poisoned = true
			case 7: // garbage trailer bytes
				fs.conn.Send(MsgChunkEnd, script)
				poisoned = true
			case 8: // valid mem-delta stream (empty delta decodes, applies)
				md := (&ckpt.MemDelta{Round: 1}).Encode()
				fs.sendChunks(chunkKindMemDelta, uint32(i+1), md, arg, true)
			case 9: // lying trailer
				fs.sendChunks(chunkKindFreeze, uint32(i+1), payload, arg, false)
				fs.conn.Send(MsgChunkEnd, chunkEnd{Kind: chunkKindFreeze,
					Stream: uint32(i + 1), Chunks: 1, Total: 0}.encode())
				poisoned = true
			}
			step()
			if poisoned {
				restoredAtPoison = fs.restored
				break
			}
		}
		c.Sched.RunFor(time.Second)
		// A valid stream may have restored *before* the malformed op; the
		// violation is a restore completing after one.
		if poisoned && !restoredAtPoison && fs.restored {
			t.Fatal("restore completed after a malformed stream")
		}
	})
}
