package migration

import (
	"errors"
	"fmt"

	"dvemig/internal/capture"
	"dvemig/internal/ckpt"
	"dvemig/internal/epoch"
	"dvemig/internal/netsim"
	"dvemig/internal/netstack"
	"dvemig/internal/obs"
	"dvemig/internal/proc"
	"dvemig/internal/simprof"
	"dvemig/internal/simtime"
	"dvemig/internal/sockmig"
	"dvemig/internal/xlat"
)

// CostModel charges the CPU work of checkpointing that the simulated
// event loop would otherwise execute for free. Values are per-socket or
// per-operation and approximate a mid-2000s Opteron (§VI-A); they are
// what gives the freeze-time curves their paper-like scale — network
// transfer times come from the simulated links themselves.
type CostModel struct {
	// SockSubtract: full state subtraction + serialization of one socket.
	SockSubtract simtime.Duration
	// SockTrack: hash-compare of one unchanged socket in an incremental
	// round.
	SockTrack simtime.Duration
	// SockRestore: allocating, filling and rehashing one socket on the
	// destination.
	SockRestore simtime.Duration
	// FreezeOverhead: signal delivery, thread barriers, leader election.
	FreezeOverhead simtime.Duration
}

// DefaultCosts is the calibrated model.
var DefaultCosts = CostModel{
	SockSubtract:   15 * 1e3, // 15µs
	SockTrack:      8 * 1e3,  // 8µs
	SockRestore:    25 * 1e3, // 25µs
	FreezeOverhead: 200 * 1e3,
}

// Config controls a migrator.
type Config struct {
	Strategy sockmig.Strategy
	// InitialTimeout is the first precopy loop timeout; each iteration
	// halves it and the freeze phase starts when it drops below
	// FreezeThreshold (20 ms in the paper, §III-A).
	InitialTimeout  simtime.Duration
	FreezeThreshold simtime.Duration
	// EnablePrecopy false degrades to stop-and-copy (ablation).
	EnablePrecopy bool
	// EnableCapture false disables incoming-packet-loss prevention
	// (ablation: §VI ablation shows retransmission delays without it).
	EnableCapture bool
	// LocalNetBits sizes the in-cluster subnet for address rewriting.
	LocalNetBits int
	// Deadline aborts a migration that has not completed in this much
	// (simulated) time; the process thaws and keeps running at the
	// source.
	Deadline simtime.Duration
	// ConnTimeout bounds a single migd connection attempt; zero or
	// negative falls back to the historical 5 s default.
	ConnTimeout simtime.Duration
	// ConnRetries is how many additional connection attempts follow a
	// timed-out or refused first attempt (0 = give up immediately).
	ConnRetries int
	// RetryBackoff is the wait before the first reconnection attempt;
	// it doubles on each subsequent attempt, capped at RetryBackoffMax.
	// Zero or negative falls back to 100 ms.
	RetryBackoff    simtime.Duration
	RetryBackoffMax simtime.Duration
	// RetryJitter adds up to this fraction of each backoff delay, drawn
	// from a per-migration rng seeded from (PID, start time) — fully
	// deterministic per run, but decorrelated across concurrent
	// migrations so retry storms spread out. Zero (the default) keeps
	// the exact historical schedule. The same BackoffPolicy drives the
	// control plane's retry timers (see ctlplane).
	RetryJitter float64
	// InboundLease bounds how long the destination keeps half-restored
	// state without hearing from the source. A crashed source sends no
	// FIN, so the connection's OnClose never fires; the lease is the only
	// thing standing between a source crash mid-transfer and a leaked
	// shadow process. Renewed on every migd message; once the full freeze
	// image has arrived the restore completes regardless. Zero disables.
	// Post-copy reuses the same bound for peer silence during the pull
	// phase, on both sides: the destination's hole-y process dies if the
	// source goes silent, and the source reaps its frozen shell if the
	// destination does.
	InboundLease simtime.Duration
	// Mig selects the migration strategy — the memory-movement axis:
	// Precopy() (the default when nil), Postcopy() or Hybrid().
	// Orthogonal to Strategy, which picks the socket migration flavor.
	Mig Strategy
	// PrefetchInterval/PrefetchBatch drive post-copy's background sweep:
	// every interval the source pushes up to batch not-yet-shipped pages
	// in canonical order. A zero interval disables the sweep (pure
	// demand paging).
	PrefetchInterval simtime.Duration
	PrefetchBatch    int
	// ChunkBytes splits large checkpoint payloads (precopy deltas, the
	// freeze image, post-copy's directory image) into MsgChunk frames of
	// at most this many bytes, so serialization and link transfer
	// overlap. Zero or negative disables chunking: payloads travel as
	// the legacy monolithic messages.
	ChunkBytes int
	// ChunkWindow bounds how many chunk frames are queued on the
	// transport per event-loop step; the remainder is pumped via
	// zero-delay continuations so the socket drains between bursts.
	// Zero or negative falls back to defaultChunkWindow.
	ChunkWindow int
	Costs       CostModel
}

// DefaultConfig returns the paper's configuration with the incremental
// collective strategy.
func DefaultConfig() Config {
	return Config{
		Strategy:         sockmig.IncrementalCollective,
		InitialTimeout:   500 * 1e6, // 500ms
		FreezeThreshold:  20 * 1e6,  // 20ms
		EnablePrecopy:    true,
		EnableCapture:    true,
		LocalNetBits:     24,
		Deadline:         30 * 1e9,
		ConnTimeout:      5 * 1e9,
		ConnRetries:      0,
		RetryBackoff:     100 * 1e6, // 100ms, doubling
		RetryBackoffMax:  1600 * 1e6,
		InboundLease:     10 * 1e9, // 10s of source silence discards the transfer
		PrefetchInterval: 2 * 1e6,  // 2ms between prefetch batches
		PrefetchBatch:    8,
		ChunkBytes:       64 << 10, // 64 KiB checkpoint chunks
		ChunkWindow:      defaultChunkWindow,
		Costs:            DefaultCosts,
	}
}

// Metrics reports one migration, the quantities Figs 4/5b/5c measure.
type Metrics struct {
	Strategy sockmig.Strategy
	// Mig names the migration strategy ("precopy", "postcopy", "hybrid").
	Mig string
	// PID / ProcName / ProcCPUDemand identify the migrated process and
	// its CPU demand at freeze time (experiments derive client counts
	// from it).
	PID           int
	ProcName      string
	ProcCPUDemand float64

	Start            simtime.Time
	FreezeStart      simtime.Time
	ResumeAt         simtime.Time
	FreezeTime       simtime.Duration
	TotalTime        simtime.Duration
	Rounds           int
	TCPMigrated      int
	UDPMigrated      int
	PrecopyMemBytes  uint64
	PrecopySockBytes uint64
	FreezeMemBytes   uint64
	FreezeSockBytes  uint64
	Captured         uint32
	Reinjected       uint32
	// MemPageBytes sums raw page content shipped over every channel —
	// pre-copy rounds, the freeze delta, demand pulls and prefetch
	// pushes — with geometry and framing excluded, so the three
	// strategies compare like for like on the bytes axis.
	MemPageBytes uint64
	// Post-copy pull accounting: pages the source shipped in total, by
	// demand pull, by prefetch push, and duplicate coords it refused to
	// re-ship (exactly-once guarantee; nonzero only under wire anomalies).
	PagesShipped    uint32
	PagesDemand     uint32
	PagesPrefetched uint32
	PullDuplicates  uint32
	// StallTime is the virtual time the destination's process loop spent
	// gated on outstanding demand faults; LastFillAt is when the last
	// hole filled (the degraded window's end). TotalDowntime for the
	// strategy race is FreezeTime + StallTime.
	StallTime  simtime.Duration
	LastFillAt simtime.Time
	// DegradedWindow is the total span the application ran degraded by
	// migration work: Start→FreezeStart (pre-copy rounds competing for
	// the link) plus ResumeAt→LastFillAt (running with holes). Pre-copy
	// has only the first term, post-copy essentially only the second,
	// hybrid both.
	DegradedWindow simtime.Duration
	// Retries counts migd reconnection attempts beyond the first.
	Retries int
	// TraceID identifies the migration's end-to-end trace when the
	// observability plane is enabled (zero otherwise): every span of
	// this migration — source phases, destination restore, conductor
	// decisions — carries it, and obsdiff/tracecheck key on it.
	TraceID uint64
	// Aborted is set when the migration was rolled back; AbortReason
	// carries the triggering error and LocalReinjected the packets the
	// source-side capture filters fed back to the thawed sockets.
	Aborted         bool
	AbortReason     string
	LocalReinjected uint32
}

// Migrator is the per-node migration daemon (migd) plus the kernel
// module functionality (mig_mod): it listens for inbound migrations and
// initiates outbound ones.
type Migrator struct {
	Node    *proc.Node
	Config  Config
	Capture *capture.Service
	Xlat    *xlat.Client
	Transd  *xlat.Transd

	// Epochs is the node's ownership-epoch ratchet. Outbound migrations
	// stamp the current epoch of the migrated service into the migd
	// request, the translation rules and the capture filters; inbound
	// requests below the watermark are rejected (the sender's ownership
	// was superseded by a failover).
	Epochs *epoch.Table

	// LeaseExpired counts inbound migrations discarded because the source
	// went silent for longer than Config.InboundLease mid-transfer (for
	// post-copy this includes hole-y processes destroyed mid-pull).
	LeaseExpired uint64

	// DupFills counts page fills the destination's memory layer rejected
	// because the page was already resident — zero whenever the
	// exactly-once shipping guarantee holds.
	DupFills uint64

	// OnPageShip observes every page the post-copy pull server ships
	// (demand true for demand pulls, false for prefetch pushes) — the
	// property tests' shadow-model hook.
	OnPageShip func(c ckpt.PageCoord, demand bool)

	listener *netstack.TCPSocket

	// OnArrived fires when a migrated process resumes on this node.
	OnArrived func(p *proc.Process, m *Metrics)

	// OnPhase observes phase transitions of migrations this node takes
	// part in (source or destination side). The fault plane's crash
	// triggers attach here.
	OnPhase func(PhaseEvent)

	// Completed collects metrics of finished outbound migrations.
	Completed []*Metrics

	// Aborted collects metrics of rolled-back outbound migrations.
	Aborted []*Metrics

	// Obs is the node's observability plane (nil = disabled; every
	// recording site checks this one pointer and falls through). Attach
	// via SetObs so the metric handles in obsm are pre-resolved.
	Obs  *obs.Obs
	obsm migObsHandles

	// Prof, when attached, records per-phase wall-vs-sim skew into the
	// self-profiling plane: how much host time the simulator spent
	// computing each phase against the virtual time the phase covered.
	// Wall readings are recorded only — they never feed back into
	// sim-time decisions, so profiled runs stay bit-identical. Nil (the
	// default) costs one pointer comparison per phase event.
	Prof *simprof.SkewProf

	// active tracks the in-flight outbound migration per PID: the
	// second Migrate of a process already leaving is rejected (no
	// double-drive), and Cancel finds its target here. Entries are
	// removed synchronously on finish/fail — the same instant the done
	// callback fires, never at a later tick.
	active map[int]*outbound
}

// NewMigrator starts the migration service on a node: the migd listener
// on the in-cluster interface, the capture service, the translation
// daemon and the translation request client.
func NewMigrator(n *proc.Node, cfg Config) (*Migrator, error) {
	m := &Migrator{Node: n, Config: cfg, Epochs: epoch.NewTable(), active: make(map[int]*outbound)}
	m.Capture = capture.NewService(n.Stack)
	m.Xlat = xlat.NewClient(n.Stack, n.LocalIP)
	var err error
	if m.Transd, err = xlat.StartTransd(n.Stack, n.LocalIP); err != nil {
		return nil, err
	}
	m.listener = netstack.NewTCPSocket(n.Stack)
	if err := m.listener.Listen(n.LocalIP, MigdPort); err != nil {
		return nil, err
	}
	m.listener.OnAccept = func(ch *netstack.TCPSocket) {
		ib := &inbound{m: m, conn: NewConn(ch)}
		ib.conn.OnMsg = ib.onMsg
		ib.conn.OnClose = ib.cleanup
	}
	return m, nil
}

// Stop shuts the migration service down: the migd listener closes and
// no further inbound migrations are accepted (a node preparing to leave
// calls this after draining).
func (m *Migrator) Stop() {
	m.listener.Close()
}

func (m *Migrator) sched() *simtime.Scheduler { return m.Node.Sched }

// Migrate live-migrates process p to the node at dest (in-cluster IP).
// done fires with the metrics on completion or an error on failure.
func (m *Migrator) Migrate(p *proc.Process, dest netsim.Addr, done func(*Metrics, error)) {
	m.MigrateTraced(p, dest, obs.TraceContext{}, done)
}

// MigrateTraced is Migrate with an explicit causal parent: the lb
// conductor passes its rebalance-decision span's context so the whole
// migration — including the destination's restore tree — parents into
// the decision that caused it. The zero context roots a fresh trace.
func (m *Migrator) MigrateTraced(p *proc.Process, dest netsim.Addr, ctx obs.TraceContext, done func(*Metrics, error)) {
	m.MigrateWith(p, dest, m.Config.mig(), ctx, done)
}

// MigrateWith is MigrateTraced with an explicit memory-movement
// strategy for this one migration, overriding Config.Mig — the control
// plane routes per-object strategy choices through here without
// mutating the shared config under concurrent migrations.
func (m *Migrator) MigrateWith(p *proc.Process, dest netsim.Addr, strat Strategy, ctx obs.TraceContext, done func(*Metrics, error)) {
	if p.Node != m.Node {
		done(nil, fmt.Errorf("migration: process %d not on node %s", p.PID, m.Node.Name))
		return
	}
	if p.State != proc.ProcRunning {
		done(nil, fmt.Errorf("migration: process %d not running", p.PID))
		return
	}
	if m.active[p.PID] != nil {
		done(nil, fmt.Errorf("migration: process %d already migrating", p.PID))
		return
	}
	if strat == nil {
		strat = Precopy()
	}
	ob := &outbound{
		m: m, p: p, dest: dest, done: done, strat: strat,
		memTracker:  ckpt.NewTracker(),
		sockTracker: sockmig.NewTracker(),
		timeout:     m.Config.InitialTimeout,
		metrics: &Metrics{Strategy: m.Config.Strategy, Mig: strat.Name(),
			Start: m.sched().Now(), PID: p.PID, ProcName: p.Name},
	}
	m.active[p.PID] = ob
	ob.pt.begin(m, "migration", p.PID, ctx)
	ob.pt.root.SetAttr("strategy", m.Config.Strategy.String())
	ob.pt.root.SetAttr("mig_strategy", strat.Name())
	ob.metrics.TraceID = ob.pt.root.Context().Trace
	ob.dial()
	if ob.failed {
		return
	}
	// Overall deadline: a destination that dies mid-migration must not
	// leave the process frozen forever. Refused after the post-copy
	// handover — once the destination runs the process the source can
	// never roll back, and the pull watchdog bounds the remaining phase.
	// If the deadline lands inside the commit window (final image sent,
	// ack not yet back), rolling back immediately would race a live
	// destination's restore and run the process twice; instead the ack
	// gets one bounded grace period, after which the destination is
	// presumed dead and the rollback is safe.
	if m.Config.Deadline > 0 {
		var onDeadline func(graced bool)
		onDeadline = func(graced bool) {
			if ob.finished || ob.failed || ob.handedOver {
				return
			}
			if ob.commitSent && !graced {
				// ConnTimeout is the engine's liveness bound for the peer —
				// the right budget for "will the restore ack ever come".
				grace := m.Config.ConnTimeout
				if grace <= 0 {
					grace = m.Config.InboundLease
				}
				if grace <= 0 {
					grace = 5 * 1e9
				}
				m.sched().After(grace, "migd.commit-grace", func() { onDeadline(true) })
				return
			}
			ob.fail(errors.New("migration: deadline exceeded"))
		}
		m.sched().After(m.Config.Deadline, "migd.deadline", func() { onDeadline(false) })
	}
}

// Cancel aborts the in-flight outbound migration of pid, rolling the
// process back to full service on this node (the PR-1 rollback path:
// thaw, rehash, local reinjection, xlat undo, MsgAbort to the peer).
// Returns false when there is nothing to cancel or the migration is
// past a point of no return: the post-copy handover (the destination
// already runs the process), or the commit fence (the final image is
// on the wire and the destination restores unconditionally when it
// lands — a rollback now could leave the process running on both
// nodes). The caller must treat the migration as committed.
func (m *Migrator) Cancel(pid int, reason string) bool {
	ob := m.active[pid]
	if ob == nil || ob.failed || ob.finished || ob.handedOver || ob.commitSent {
		return false
	}
	ob.fail(fmt.Errorf("migration: canceled: %s", reason))
	return true
}

// Migrating reports whether pid has an in-flight outbound migration.
func (m *Migrator) Migrating(pid int) bool { return m.active[pid] != nil }

// dial opens one migd connection attempt. All attempt-scoped callbacks
// capture the generation counter so a late failure of an abandoned
// attempt cannot interfere with its successor.
func (ob *outbound) dial() {
	ob.dialGen++
	gen := ob.dialGen
	sk := netstack.NewTCPSocket(ob.m.Node.Stack)
	// Stamp the migd control connection with the migration's causal
	// coordinate: every packet it emits carries the (trace, span) pair as
	// out-of-band metadata, so packet-level tooling can attribute
	// migration-critical traffic to the end-to-end trace.
	if c := ob.pt.root.Context(); c.Valid() {
		sk.Trace = &netsim.TraceRef{Trace: c.Trace, Span: c.Span}
	}
	// The outbound leg carries checkpoint transfer until (for post-copy)
	// handover restamps it to the pull class.
	sk.Class = netsim.ClassCheckpoint
	ob.conn = NewConn(sk)
	ob.conn.OnMsg = ob.onMsg
	sk.OnReadable = func() {
		if gen != ob.dialGen {
			return
		}
		ob.conn.onReadable()
		if sk.State == netstack.TCPEstablished && !ob.started {
			ob.started = true
			ob.m.firePhase(&ob.pt, PhaseConnect, 0, ob.p.PID)
			ob.start()
		}
	}
	ob.conn.OnClose = func() {
		if gen != ob.dialGen {
			return
		}
		if !ob.started {
			ob.connFailed(gen, errors.New("migration: destination refused the connection"))
			return
		}
		if !ob.finished {
			ob.fail(errors.New("migration: destination closed the connection"))
		}
	}
	if err := sk.Connect(ob.dest, MigdPort); err != nil {
		ob.fail(err)
		return
	}
	// Guard against an unreachable destination. The timeout and the
	// retry/backoff schedule come from the config (satellite fix: this
	// used to be a hard-coded 5 s with no retry).
	timeout := ob.m.Config.ConnTimeout
	if timeout <= 0 {
		timeout = 5 * 1e9
	}
	ob.m.sched().After(timeout, "migd.conn-timeout", func() {
		ob.connFailed(gen, errors.New("migration: destination unreachable"))
	})
}

// connFailed handles a failed connection attempt: retry with exponential
// backoff while the budget lasts, then abort.
func (ob *outbound) connFailed(gen int, err error) {
	if gen != ob.dialGen || ob.started || ob.failed || ob.finished {
		return
	}
	if ob.attempts >= ob.m.Config.ConnRetries {
		ob.fail(err)
		return
	}
	ob.attempts++
	ob.metrics.Retries++
	ob.dialGen++ // invalidate the abandoned attempt's callbacks
	ob.conn.Close()
	if ob.rng == nil && ob.m.Config.RetryJitter > 0 {
		// Seeded from the migration's identity (PID, start instant):
		// deterministic per run, decorrelated across migrations.
		ob.rng = simtime.NewRand(uint64(ob.p.PID)<<32 ^ uint64(ob.metrics.Start) ^ 0x6d696764)
	}
	backoff := ob.m.Config.retryPolicy().Delay(ob.attempts, ob.rng)
	ob.m.sched().After(backoff, "migd.conn-retry", func() {
		if ob.failed || ob.finished || ob.started {
			return
		}
		ob.dial()
	})
}

// --- source side ---------------------------------------------------------

type outbound struct {
	m    *Migrator
	p    *proc.Process
	dest netsim.Addr
	conn *Conn
	done func(*Metrics, error)

	memTracker  *ckpt.Tracker
	sockTracker *sockmig.Tracker
	timeout     simtime.Duration
	metrics     *Metrics
	token       uint64
	epoch       uint64 // ownership epoch of the migrated service

	// strat is this migration's memory-movement strategy (frozen at
	// start so a config change mid-flight cannot switch modes); rng
	// feeds the retry backoff jitter, lazily seeded on first retry.
	strat Strategy
	rng   *simtime.Rand

	// encBuf / sockEncBuf are per-migration scratch buffers for delta
	// serialization: the transport copies payloads into the socket send
	// buffer, so each precopy round may reuse the previous round's
	// allocation instead of growing the heap.
	encBuf     []byte
	sockEncBuf []byte

	// chunkStream numbers outgoing chunk streams (chunkpipe.go); the id
	// lets the destination reject frames from an abandoned stream.
	chunkStream uint32

	started  bool
	frozen   bool
	failed   bool
	finished bool

	// pt is the migration's phase clock and span cursor.
	pt phaseTrack

	// dialGen/attempts drive the reconnect machinery; callbacks of an
	// abandoned attempt compare their captured generation and bail out.
	dialGen  int
	attempts int

	// rollback records the inverse of every translation request sent
	// during setupTranslation, so an abort can undo partial installs.
	rollback []xlatOp

	// localFilters capture packets for this process's connections on the
	// *source* while its sockets are unhashed: on success they are
	// dropped (the destination's own filters did the real work), on
	// abort they are reinjected into the thawed sockets so nothing that
	// arrived mid-transfer is lost.
	localFilters []*capture.Filter

	transferFired bool
	onCaptureAck  func()

	// commitSent marks the source-side commit fence: the final image
	// (MsgFreeze or MsgPostImage) is on the wire. The destination
	// completes its restore unconditionally once that image arrives, so
	// from here a voluntary rollback (Cancel, the deadline's first
	// firing) could leave the process running on both nodes. Only
	// evidence of a dead destination — connection close, or the commit
	// grace expiring with no ack — may roll back past this fence.
	commitSent bool

	// Post-copy pull-server state (postcopy.go). handedOver marks the
	// point of no return: the destination runs the process, so fail()
	// routes to orphan() and the deadline stands down.
	handedOver      bool
	resumeAt        simtime.Time
	pullDir         *ckpt.PageDir
	shipped         map[ckpt.PageCoord]bool
	shipCursor      int
	pullsServed     int
	prefetchBatches int
	pullWatch       *simtime.Event

	// Freeze-time attribution (paper Fig 5b's breakdown axis): the three
	// directly measurable components of the freeze window accumulate
	// here — coordination (signal/freeze overhead plus capture-filter
	// handshakes), xlat (translation-rule installs on peers), and socket
	// serialization (per-socket subtract cost). Page copy — shipping the
	// freeze image and the destination's restore — is the remainder of
	// FreezeTime, computed at finish. Plain duration adds on the hot
	// path; the histograms are only resolved (per connection count) once
	// per completed migration when the plane is enabled.
	attrCoord simtime.Duration
	attrXlat  simtime.Duration
	attrSer   simtime.Duration
}

// mig returns the outbound's pinned strategy.
func (ob *outbound) mig() Strategy {
	if ob.strat == nil {
		return Precopy()
	}
	return ob.strat
}

// xlatOp is one translation request to (un)do during rollback.
type xlatOp struct {
	peer netsim.Addr
	add  bool
	rule xlat.Rule
}

func (ob *outbound) start() {
	ob.token = registerBehavior(&ckpt.Behavior{Tick: ob.p.Tick, SigHandlers: ob.p.SigHandlers})
	ob.epoch = ob.m.Epochs.Current(ob.p.Name)
	rctx := ob.pt.root.Context()
	req := migrateReq{PID: ob.p.PID, Strategy: ob.m.Config.Strategy,
		Mode: ob.mig().mode(), Token: ob.token,
		Epoch: ob.epoch, TraceID: rctx.Trace, SpanID: rctx.Span, Name: ob.p.Name}
	ob.send(MsgMigrateReq, req.encode())
}

func (ob *outbound) send(t MsgType, payload []byte) {
	if err := ob.conn.Send(t, payload); err != nil {
		ob.fail(err)
	}
}

// fail aborts the migration and rolls the source back to a fully
// functional state: sockets rehash, packets captured while they were
// disabled reinject locally, translation rules installed on in-cluster
// peers are undone, the real-time loop restarts, and the destination —
// if it still lives — is told to discard its partial state via
// MsgAbort. The rollback order matters: rehash before reinject (so the
// demux finds the sockets again), reinject before the loop restarts (so
// the application observes a contiguous stream).
func (ob *outbound) fail(err error) {
	if ob.failed || ob.finished {
		return
	}
	if ob.handedOver {
		// Past the post-copy point of no return: the process runs (or
		// died) remotely, so there is nothing to thaw — reap the shell.
		ob.orphan(err)
		return
	}
	ob.failed = true
	if ob.p.State == proc.ProcFrozen {
		// Thaw: migration aborted, the process keeps running here. Its
		// sockets were disabled at the freeze point; bring them back.
		ob.p.State = proc.ProcRunning
		tcp, udp := ob.p.Sockets()
		for _, sk := range tcp {
			if sk.Unhashed() {
				_ = sk.Rehash()
				sk.RestartRetransTimer()
			}
		}
		for _, us := range udp {
			if us.Unhashed() {
				_ = us.Rehash()
			}
		}
		// Feed back everything the wire delivered while the sockets were
		// out of the hash tables.
		for _, f := range ob.localFilters {
			ob.metrics.LocalReinjected += uint32(f.Captured)
			if n, rerr := ob.m.Capture.ReinjectAndDisable(f); rerr != nil {
				_ = n // filter already gone; nothing to reinject
			}
		}
		ob.localFilters = nil
		// Undo the translation rules: peers must stop rewriting this
		// process's flows toward the dead destination. Re-installing a
		// rule whose NewAddr equals the flow's real current home either
		// removes it (identity) or retargets it back (chained
		// migrations); replica rules shipped to the destination are
		// removed outright. Requests to a crashed destination simply
		// time out in the translation client.
		for _, op := range ob.rollback {
			ob.m.Xlat.Request(op.peer, op.add, op.rule, func(error) {})
		}
		ob.rollback = nil
		if ob.p.LoopPeriod > 0 && ob.p.Tick != nil {
			ob.m.Node.StartLoop(ob.p, ob.p.LoopPeriod)
		}
	} else {
		for _, f := range ob.localFilters {
			ob.m.Capture.Drop(f)
		}
		ob.localFilters = nil
	}
	takeBehavior(ob.token)
	delete(ob.m.active, ob.p.PID)
	ob.conn.Send(MsgAbort, nil)
	ob.conn.Close()
	ob.metrics.Aborted = true
	ob.metrics.AbortReason = err.Error()
	ob.m.Aborted = append(ob.m.Aborted, ob.metrics)
	ob.m.firePhase(&ob.pt, PhaseAborted, 0, ob.p.PID)
	if ob.done != nil {
		ob.done(ob.metrics, err)
	}
}

func (ob *outbound) onMsg(t MsgType, payload []byte) {
	if ob.failed || ob.finished {
		return
	}
	if ob.handedOver {
		ob.renewPullWatch()
	}
	switch t {
	case MsgMigrateAck:
		ob.mig().start(ob)
	case MsgCaptureAck:
		if cb := ob.onCaptureAck; cb != nil {
			ob.onCaptureAck = nil
			cb()
		}
	case MsgRestoreDone:
		rd, err := decodeRestoreDone(payload)
		if err != nil {
			ob.fail(err)
			return
		}
		ob.finish(rd)
	case MsgAbort:
		if len(payload) > 0 {
			ob.fail(fmt.Errorf("%w: %s", errAborted, payload))
		} else {
			ob.fail(errAborted)
		}
	case MsgResumed, MsgPageReq, MsgPullsDone:
		if !ob.mig().onSourceMsg(ob, t, payload) {
			ob.fail(fmt.Errorf("migration: unexpected %s for %s strategy",
				t, ob.mig().Name()))
		}
	}
}

// precopyRound runs one iteration of the Fig 3 helper-thread loop: dump
// address-space changes (and, for the incremental strategy, socket
// changes), then sleep for the current timeout while the application
// keeps running; halve the timeout and either iterate or freeze.
func (ob *outbound) precopyRound() {
	ob.metrics.Rounds++
	ob.m.firePhase(&ob.pt, PhasePrecopy, ob.metrics.Rounds, ob.p.PID)
	if ob.failed || ob.finished {
		return // a phase hook may have aborted the migration
	}
	trackCost := ob.shipDeltaRound()
	wait := ob.timeout + trackCost
	ob.timeout /= 2
	ob.m.sched().After(wait, "migd.precopy", func() {
		if ob.failed || ob.finished {
			return
		}
		if ob.timeout < ob.m.Config.FreezeThreshold {
			ob.freeze()
		} else {
			ob.precopyRound()
		}
	})
}

// shipDeltaRound dumps one round of address-space changes (and, for
// the incremental socket strategy, socket changes) to the destination,
// returning the socket tracking cost the round incurred. Shared by the
// pre-copy loop and hybrid's single bounded round.
func (ob *outbound) shipDeltaRound() simtime.Duration {
	d := ob.memTracker.Delta(ob.p.AS)
	if d.Empty() {
		// Quiescent round: nothing changed since the last scan, so no
		// MEM_DELTA crosses the wire (mirroring the socket delta's
		// emptiness guard below). Rounds still counts — the loop ran —
		// but the round contributes zero delta bytes.
		if ob.m.Obs != nil {
			ob.m.obsm.roundBytes.Observe(0)
			ob.pt.cur.SetInt("mem_bytes", 0)
		}
	} else {
		ob.encBuf = d.EncodeInto(ob.encBuf)
		ob.metrics.PrecopyMemBytes += uint64(len(ob.encBuf))
		ob.metrics.MemPageBytes += d.PageDataBytes()
		if ob.m.Obs != nil {
			ob.m.obsm.roundBytes.Observe(float64(len(ob.encBuf)))
			ob.pt.cur.SetInt("mem_bytes", int64(len(ob.encBuf)))
		}
		ob.sendPayload(chunkKindMemDelta, MsgMemDelta, ob.encBuf, false)
	}
	var trackCost simtime.Duration
	if ob.m.Config.Strategy == sockmig.IncrementalCollective {
		sd := ob.sockTracker.Delta(ob.p, false)
		ntcp, nudp := ob.p.Sockets()
		trackCost = simtime.Duration(len(ntcp)+len(nudp)) * ob.m.Config.Costs.SockTrack
		if !sd.Empty() {
			ob.sockEncBuf = sd.EncodeInto(ob.sockEncBuf)
			ob.metrics.PrecopySockBytes += uint64(len(ob.sockEncBuf))
			ob.send(MsgSockDelta, ob.sockEncBuf)
		}
	}
	return trackCost
}

// freeze enters the freeze phase: signal the application (threads abandon
// system calls and return to userspace, leaving backlog and prequeue
// empty), stop the real-time loop, then run capture setup, address
// translation and socket migration according to the strategy.
func (ob *outbound) freeze() {
	ob.frozen = true
	ob.m.firePhase(&ob.pt, PhaseFreeze, 0, ob.p.PID)
	if ob.failed || ob.finished {
		return
	}
	ob.metrics.FreezeStart = ob.m.sched().Now()
	ob.metrics.ProcCPUDemand = ob.p.CPUDemand
	ob.p.Signal(proc.SIGCKPT)
	ob.p.State = proc.ProcFrozen
	ob.m.Node.StopLoop(ob.p)
	ob.m.sched().After(ob.m.Config.Costs.FreezeOverhead, "migd.freeze", func() {
		ob.attrCoord += ob.m.Config.Costs.FreezeOverhead
		ob.setupTranslation(func() {
			switch ob.m.Config.Strategy {
			case sockmig.Iterative:
				tcp, udp := sockmig.SocketsInFDOrder(ob.p)
				ob.iterativeStep(tcp, udp)
			default:
				ob.collectivePhase1()
			}
		})
	})
}

// setupTranslation installs translation filters on the peers of all
// in-cluster connections (§III-C): the peer rewrites packets addressed to
// the connection's original identity so they reach the destination node.
func (ob *outbound) setupTranslation(then func()) {
	xlatStart := ob.m.sched().Now()
	var rules []xlatOp
	tcp, _ := ob.p.Sockets()
	for _, sk := range tcp {
		if sk.State != netstack.TCPEstablished || !ob.inCluster(sk.RemoteIP) {
			continue
		}
		oldAddr := sk.OrigLocalIP
		if oldAddr == 0 {
			oldAddr = sk.LocalIP
		}
		// The socket names the peer by its *original* address; if the
		// peer has itself migrated, our local translation table knows
		// its current home — send the request there (both-ends
		// migration support).
		peer := sk.RemoteIP
		if cur, ok := ob.m.Transd.Translator().LookupPeer(netsim.ProtoTCP,
			sk.RemoteIP, sk.LocalPort, sk.RemotePort); ok {
			peer = cur
		}
		rules = append(rules, xlatOp{
			peer: peer, add: true,
			rule: xlat.Rule{Proto: netsim.ProtoTCP, OldAddr: oldAddr, NewAddr: ob.dest,
				LocalPort: sk.RemotePort, RemotePort: sk.LocalPort, Epoch: ob.epoch},
		})
		// The inverse, should the migration abort: point the peer's rule
		// back at the flow's real current home. If the socket never
		// migrated before, that is an identity mapping the translator
		// collapses into a removal; for a chained migration it retargets
		// the rule back to this node.
		ob.rollback = append(ob.rollback, xlatOp{
			peer: peer, add: true,
			rule: xlat.Rule{Proto: netsim.ProtoTCP, OldAddr: oldAddr, NewAddr: sk.LocalIP,
				LocalPort: sk.RemotePort, RemotePort: sk.LocalPort, Epoch: ob.epoch},
		})
		// If this node is translating the socket's own outgoing traffic
		// (its peer migrated before), the rule must move with the socket:
		// replicate it onto the destination node.
		if local, ok := ob.m.Transd.Translator().FlowRule(netsim.ProtoTCP,
			sk.RemoteIP, sk.LocalPort, sk.RemotePort); ok {
			rules = append(rules, xlatOp{peer: ob.dest, add: true, rule: local})
			ob.rollback = append(ob.rollback, xlatOp{peer: ob.dest, add: false, rule: local})
		}
	}
	if len(rules) == 0 {
		then()
		return
	}
	pending := len(rules)
	var firstErr error
	for _, r := range rules {
		ob.m.Xlat.Request(r.peer, r.add, r.rule, func(err error) {
			if err != nil && firstErr == nil {
				firstErr = err
			}
			pending--
			if pending == 0 {
				ob.attrXlat += ob.m.sched().Now() - xlatStart
				if firstErr != nil {
					ob.fail(firstErr)
					return
				}
				if ob.failed || ob.finished {
					return
				}
				then()
			}
		})
	}
}

func (ob *outbound) inCluster(addr netsim.Addr) bool {
	bits := ob.m.Config.LocalNetBits
	if bits == 0 {
		return false
	}
	mask := netsim.Addr(^uint32(0) << (32 - bits))
	return addr&mask == proc.LocalNet&mask
}

// iterativeStep migrates sockets one by one: capture sync, disable,
// subtract, transfer — repeated per connection (§III-C's "natural way",
// whose overhead motivated the collective design).
func (ob *outbound) iterativeStep(tcp []*netstack.TCPSocket, udp []*netstack.UDPSocket) {
	if !ob.transferFired {
		ob.transferFired = true
		ob.m.firePhase(&ob.pt, PhaseTransfer, 0, ob.p.PID)
	}
	if ob.failed || ob.finished {
		return
	}
	if len(tcp) == 0 && len(udp) == 0 {
		ob.mig().finalTransfer(ob, nil)
		return
	}
	var key netsim.FlowKey
	var fd int
	if len(tcp) > 0 {
		sk := tcp[0]
		fd = sockmig.FDOf(ob.p, sk)
		if sk.State == netstack.TCPListen {
			key = netsim.FlowKey{LocalPort: sk.LocalPort, Proto: netsim.ProtoTCP}
		} else {
			key = netsim.FlowKey{RemoteIP: sk.RemoteIP, RemotePort: sk.RemotePort,
				LocalPort: sk.LocalPort, Proto: netsim.ProtoTCP}
		}
	} else {
		us := udp[0]
		fd = sockmig.FDOfUDP(ob.p, us)
		key = netsim.FlowKey{LocalPort: us.LocalPort, Proto: netsim.ProtoUDP}
	}
	transfer := func() {
		// Subtract this one socket's state and ship it in its own
		// message (the per-socket computation/transmission interleaving).
		ob.m.sched().After(ob.m.Config.Costs.SockSubtract, "migd.subtract", func() {
			if ob.failed || ob.finished {
				return
			}
			ob.attrSer += ob.m.Config.Costs.SockSubtract
			// Anything arriving for this connection while it is out of
			// the hash tables is captured locally: reinjected on abort,
			// discarded on success (the destination's filter has its own
			// copy via the broadcast).
			if ob.m.Config.EnableCapture {
				ob.localFilters = append(ob.localFilters, ob.m.Capture.EnableEpoch(key, ob.epoch))
			}
			var sd *sockmig.SockDelta
			if len(tcp) > 0 {
				sk := tcp[0]
				sk.Unhash()
				sd = sockmig.SingleTCP(fd, sk)
				ob.metrics.TCPMigrated++
			} else {
				us := udp[0]
				us.Unhash()
				sd = sockmig.SingleUDP(fd, us)
				ob.metrics.UDPMigrated++
			}
			ob.sockEncBuf = sd.EncodeInto(ob.sockEncBuf)
			ob.metrics.FreezeSockBytes += uint64(len(ob.sockEncBuf))
			ob.send(MsgSockDelta, ob.sockEncBuf)
			if len(tcp) > 0 {
				ob.iterativeStep(tcp[1:], udp)
			} else {
				ob.iterativeStep(tcp, udp[1:])
			}
		})
	}
	if ob.m.Config.EnableCapture {
		capStart := ob.m.sched().Now()
		ob.onCaptureAck = func() {
			ob.attrCoord += ob.m.sched().Now() - capStart
			transfer()
		}
		ob.send(MsgCaptureReq, encodeCaptureReq([]netsim.FlowKey{key}))
	} else {
		transfer()
	}
}

// collectivePhase1 ships the capture details of all connections in one
// message and waits for a single acknowledgement.
func (ob *outbound) collectivePhase1() {
	if ob.m.Config.EnableCapture {
		keys := sockmig.CaptureKeys(ob.p)
		capStart := ob.m.sched().Now()
		ob.onCaptureAck = func() {
			ob.attrCoord += ob.m.sched().Now() - capStart
			ob.collectivePhase2()
		}
		ob.send(MsgCaptureReq, encodeCaptureReq(keys))
	} else {
		ob.collectivePhase2()
	}
}

// collectivePhase2 disables all sockets, subtracts their state into one
// unified buffer and transfers it in one go; the incremental variant
// subtracts only the sections changed since the last precopy round.
func (ob *outbound) collectivePhase2() {
	ob.transferFired = true
	ob.m.firePhase(&ob.pt, PhaseTransfer, 0, ob.p.PID)
	if ob.failed || ob.finished {
		return
	}
	tcp, udp := ob.p.Sockets()
	n := len(tcp) + len(udp)
	var cost simtime.Duration
	if ob.m.Config.Strategy == sockmig.IncrementalCollective {
		cost = simtime.Duration(n) * ob.m.Config.Costs.SockTrack
	} else {
		cost = simtime.Duration(n) * ob.m.Config.Costs.SockSubtract
	}
	ob.m.sched().After(cost, "migd.subtract", func() {
		if ob.failed || ob.finished {
			return
		}
		ob.attrSer += cost
		// Mirror the destination's capture filters locally so an abort
		// can replay what arrived while the sockets were out of the
		// hash tables (reinjected on rollback, discarded on success).
		if ob.m.Config.EnableCapture {
			for _, k := range sockmig.CaptureKeys(ob.p) {
				ob.localFilters = append(ob.localFilters, ob.m.Capture.EnableEpoch(k, ob.epoch))
			}
		}
		ntcp, nudp := sockmig.DisableAll(ob.p)
		ob.metrics.TCPMigrated = ntcp
		ob.metrics.UDPMigrated = nudp
		var sd *sockmig.SockDelta
		if ob.m.Config.Strategy == sockmig.IncrementalCollective {
			sd = ob.sockTracker.Delta(ob.p, true)
		} else {
			sd = sockmig.FullDelta(ob.p)
		}
		ob.mig().finalTransfer(ob, sd)
	})
}

// sendFreeze transfers the final memory delta, thread contexts and the
// non-socket FD table (phase 3: BLCR's regular iteration excluding the
// already-processed connections), plus — for collective strategies — the
// unified socket buffer.
func (ob *outbound) sendFreeze(sd *sockmig.SockDelta) {
	if ob.m.Config.Strategy == sockmig.Iterative {
		// Sockets were unhashed one by one already.
	} else if sd == nil {
		sd = &sockmig.SockDelta{}
	}
	memDelta := ob.memTracker.Delta(ob.p.AS)
	memEnc := memDelta.Encode()
	ob.metrics.FreezeMemBytes += uint64(len(memEnc))
	ob.metrics.MemPageBytes += memDelta.PageDataBytes()
	fm := freezeMsg{
		FreezeStart: ob.metrics.FreezeStart,
		Image:       ob.buildImage().Encode(),
		MemDelta:    memEnc,
	}
	if sd != nil {
		fm.SockDelta = sd.Encode()
		ob.metrics.FreezeSockBytes += uint64(len(fm.SockDelta))
		if ob.m.Config.Strategy != sockmig.Iterative {
			ob.metrics.TCPMigrated, ob.metrics.UDPMigrated = countSockets(ob.p)
		}
	}
	// The commit fence rises with the stream's final frame (sendPayload);
	// the destination restores only on a complete image either way.
	ob.sendPayload(chunkKindFreeze, MsgFreeze, fm.encode(), true)
}

func countSockets(p *proc.Process) (int, int) {
	tcp, udp := p.Sockets()
	return len(tcp), len(udp)
}

// buildImage assembles the minimal checkpoint image (threads, regular
// FDs, meta) every strategy's freeze payload carries.
func (ob *outbound) buildImage() *ckpt.Image {
	img := &ckpt.Image{
		PID: ob.p.PID, Name: ob.p.Name,
		CPUDemand: ob.p.CPUDemand, LoopPeriod: ob.p.LoopPeriod,
		FDs: ckpt.CheckpointFDsExcludingSockets(ob.p),
	}
	for sig := range ob.p.SigHandlers {
		img.HandledSignals = append(img.HandledSignals, sig)
	}
	for _, th := range ob.p.Threads {
		img.Threads = append(img.Threads, ckpt.ThreadImage{TID: th.TID, Regs: th.Regs})
	}
	return img
}

// FreezeAttrComponents are the freeze-time attribution components, in
// rendering order: signal/capture coordination, the precopy'd pages'
// final copy plus destination restore, per-socket state serialization,
// and translation-rule installs (Fig 5b's breakdown axis).
var FreezeAttrComponents = [...]string{
	"coordination", "page_copy", "socket_serialize", "xlat",
}

// FreezeAttrMetric names the attribution histogram of one component at
// one connection count, e.g. mig/freeze_attr/conns=0064/xlat_us —
// shared by the recorder below and eval's attribution table.
func FreezeAttrMetric(conns int, component string) string {
	return fmt.Sprintf("mig/freeze_attr/conns=%04d/%s_us", conns, component)
}

// observeFreezeAttr records the completed migration's freeze-time
// breakdown into histograms keyed by the migrated connection count.
// Only called on the enabled path, once per migration: the Sprintf'd
// metric names and registry lookups never touch the disabled hot path.
func (ob *outbound) observeFreezeAttr() {
	conns := ob.metrics.TCPMigrated + ob.metrics.UDPMigrated
	page := ob.metrics.FreezeTime - ob.attrCoord - ob.attrXlat - ob.attrSer
	if page < 0 {
		page = 0
	}
	comps := [...]simtime.Duration{ob.attrCoord, page, ob.attrSer, ob.attrXlat}
	r := ob.m.Obs.M()
	for i, name := range FreezeAttrComponents {
		r.Histogram(FreezeAttrMetric(conns, name), obs.DurationBucketsUs).
			Observe(float64(comps[i]) / 1e3)
	}
	ob.pt.root.SetInt("attr_coordination_us", int64(ob.attrCoord/1e3))
	ob.pt.root.SetInt("attr_page_copy_us", int64(page/1e3))
	ob.pt.root.SetInt("attr_socket_serialize_us", int64(ob.attrSer/1e3))
	ob.pt.root.SetInt("attr_xlat_us", int64(ob.attrXlat/1e3))
}

func (ob *outbound) finish(rd restoreDone) {
	ob.finished = true
	delete(ob.m.active, ob.p.PID)
	// The process resumed remotely: the local safety-net filters (and
	// the packets they swallowed — the destination processed its own
	// broadcast copies) are no longer needed, nor is the rollback plan.
	for _, f := range ob.localFilters {
		ob.m.Capture.Drop(f)
	}
	ob.localFilters = nil
	ob.rollback = nil
	ob.metrics.ResumeAt = rd.ResumeAt
	ob.metrics.FreezeTime = rd.ResumeAt - ob.metrics.FreezeStart
	ob.metrics.TotalTime = rd.ResumeAt - ob.metrics.Start
	ob.metrics.Captured = rd.Captured
	ob.metrics.Reinjected = rd.Reinjected
	// Pre-copy's degraded window is the pre-freeze span (rounds competing
	// with the application for the link); the resume instant is also the
	// moment the last page arrived.
	ob.metrics.DegradedWindow = ob.metrics.FreezeStart - ob.metrics.Start
	ob.metrics.LastFillAt = rd.ResumeAt
	// The process now lives on the destination; dismantle it here and
	// drop any local translation rules that protected its (departed)
	// in-cluster connections.
	tcp, _ := ob.p.Sockets()
	for _, sk := range tcp {
		if ob.inCluster(sk.RemoteIP) {
			ob.m.Transd.Translator().RemoveFlow(netsim.ProtoTCP, sk.RemoteIP, sk.LocalPort, sk.RemotePort)
		}
	}
	ob.p.State = proc.ProcExited
	ob.m.Node.Detach(ob.p)
	ob.conn.Close()
	ob.m.Completed = append(ob.m.Completed, ob.metrics)
	if ob.m.Obs != nil {
		ob.m.obsm.freezeUs.Observe(float64(ob.metrics.FreezeTime) / 1e3)
		ob.m.obsm.downtimeUs.Observe(float64(ob.metrics.FreezeTime+ob.metrics.StallTime) / 1e3)
		ob.pt.root.SetInt("freeze_us", int64(ob.metrics.FreezeTime)/1e3)
		ob.observeFreezeAttr()
	}
	ob.m.firePhase(&ob.pt, PhaseDone, 0, ob.p.PID)
	if ob.done != nil {
		ob.done(ob.metrics, nil)
	}
}

// --- destination side ------------------------------------------------------

type inbound struct {
	m    *Migrator
	conn *Conn
	req  migrateReq

	shadowAS *proc.AddressSpace
	store    *sockmig.Store
	filters  []*capture.Filter

	active bool

	// post marks a post-copy/hybrid restore: the freeze payload is a
	// POST_IMAGE, PhaseReinject is not terminal, and a puller drives the
	// demand-paging phase after resume. holes is the absent-page count
	// the directory declared.
	post   bool
	holes  int
	puller *puller

	// Chunk-stream reassembly (chunkpipe.go): the open stream's identity,
	// the next expected sequence number, and the accumulation buffer
	// (reused across precopy rounds' streams).
	chunkOpen   bool
	chunkKind   byte
	chunkStream uint32
	chunkNext   uint32
	chunkBuf    []byte

	// lease discards the half-restored state if the source goes silent
	// (a crashed source sends no FIN, so OnClose never fires). Renewed on
	// every message; disarmed once the full freeze image has arrived —
	// from that point the restore completes whether the source lives or
	// not, and the source being dead just means one owner, here.
	lease     *simtime.Event
	restoring bool

	// pt is the migration's phase clock and span cursor.
	pt phaseTrack
}

// renewLease (re)arms the source-silence timer.
func (ib *inbound) renewLease() {
	d := ib.m.Config.InboundLease
	if d <= 0 || ib.restoring {
		return
	}
	if ib.lease != nil {
		ib.m.sched().Cancel(ib.lease)
	}
	ib.lease = ib.m.sched().After(d, "migd.lease", func() {
		ib.lease = nil // fired; the event pointer is dead
		if !ib.active || ib.restoring {
			return
		}
		ib.m.LeaseExpired++
		ib.cleanup()
		ib.conn.Close()
	})
}

func (ib *inbound) onMsg(t MsgType, payload []byte) {
	if ib.active {
		ib.renewLease()
	}
	switch t {
	case MsgMigrateReq:
		req, err := decodeMigrateReq(payload)
		if err != nil {
			ib.abort(err)
			return
		}
		// Fencing: a request stamped below the service's epoch watermark
		// comes from a node whose ownership a failover superseded.
		if req.Name != "" && !ib.m.Epochs.Observe(req.Name, req.Epoch) {
			ib.abort(fmt.Errorf("migration: stale epoch %d for %q (watermark %d)",
				req.Epoch, req.Name, ib.m.Epochs.Current(req.Name)))
			return
		}
		if _, err := strategyByMode(req.Mode); err != nil {
			ib.abort(err)
			return
		}
		ib.req = req
		ib.post = req.Mode != modePrecopy
		ib.pt.pullsAfterReinject = ib.post
		ib.shadowAS = proc.NewAddressSpace()
		ib.store = sockmig.NewStore()
		ib.active = true
		// The request carries the source migration span's coordinate; the
		// destination's restore tree parents into it — one connected trace
		// spanning both nodes. The return-path packets (acks, RESTORE_DONE)
		// are stamped with the same coordinate.
		sctx := obs.TraceContext{Trace: req.TraceID, Span: req.SpanID}
		ib.pt.begin(ib.m, "inbound", req.PID, sctx)
		if sctx.Valid() {
			sk := ib.conn.Socket()
			sk.Trace = &netsim.TraceRef{Trace: sctx.Trace, Span: sctx.Span}
		}
		// Acks and RESTORE_DONE ride the checkpoint class too (the pull
		// phase restamps to ClassPagePull at resume).
		ib.conn.Socket().Class = netsim.ClassCheckpoint
		ib.renewLease()
		ib.conn.Send(MsgMigrateAck, nil)
	case MsgMemDelta:
		ib.applyMemDelta(payload)
	case MsgSockDelta:
		ib.applySockDelta(payload)
	case MsgChunk:
		ib.onChunk(payload)
	case MsgChunkEnd:
		ib.onChunkEnd(payload)
	case MsgCaptureReq:
		keys, err := decodeCaptureReq(payload)
		if err != nil {
			ib.abort(err)
			return
		}
		for _, k := range keys {
			ib.filters = append(ib.filters, ib.m.Capture.EnableEpoch(k, ib.req.Epoch))
		}
		ib.conn.Send(MsgCaptureAck, nil)
	case MsgFreeze:
		ib.beginFreeze(payload)
	case MsgPostImage:
		ib.beginPostImage(payload)
	case MsgPageResp:
		if ib.puller == nil {
			return // late content after teardown; drop
		}
		pr, err := decodePageResp(payload)
		if err != nil {
			ib.abort(err)
			return
		}
		ib.puller.onResp(pr)
	case MsgAbort:
		ib.cleanup()
	}
}

func (ib *inbound) abort(err error) {
	var payload []byte
	if err != nil {
		payload = []byte(err.Error())
	}
	ib.conn.Send(MsgAbort, payload)
	ib.cleanup()
	ib.conn.Close()
}

func (ib *inbound) cleanup() {
	if ib.puller != nil {
		// Mid-pull teardown (source abort, fence, corruption): a process
		// with holes can never serve — destroy() is a no-op once drained.
		ib.puller.destroy()
		ib.puller = nil
	}
	for _, f := range ib.filters {
		ib.m.Capture.Drop(f)
	}
	ib.filters = nil
	ib.active = false
	if ib.lease != nil {
		ib.m.sched().Cancel(ib.lease)
		ib.lease = nil
	}
	// Discard the shadow state outright: nothing half-restored survives.
	ib.shadowAS = nil
	ib.store = nil
	ib.pt.abandon()
}

// restore runs the destination freeze-phase work: fold in the final
// deltas, rebuild the process, rehash sockets, reinject captured packets
// and resume execution.
func (ib *inbound) restore(fm freezeMsg) {
	ib.m.firePhase(&ib.pt, PhaseRestore, 0, ib.req.PID)
	if !ib.m.Node.Alive {
		ib.cleanup()
		return // a phase hook crashed this node
	}
	img, err := ckpt.DecodeImage(fm.Image)
	if err != nil {
		ib.abort(err)
		return
	}
	memDelta, err := ckpt.DecodeMemDelta(fm.MemDelta)
	if err != nil {
		ib.abort(err)
		return
	}
	if err := ckpt.ApplyDelta(ib.shadowAS, memDelta); err != nil {
		ib.abort(err)
		return
	}
	if len(fm.SockDelta) > 0 {
		sd, err := sockmig.DecodeSockDelta(fm.SockDelta)
		if err != nil {
			ib.abort(err)
			return
		}
		if err := ib.store.Apply(sd); err != nil {
			ib.abort(err)
			return
		}
	}
	nsock := ib.store.TCPCount() + ib.store.UDPCount()
	cost := simtime.Duration(nsock)*ib.m.Config.Costs.SockRestore + ib.m.Config.Costs.FreezeOverhead
	ib.m.sched().After(cost, "migd.restore", func() {
		ib.finishRestore(img)
	})
}

func (ib *inbound) finishRestore(img *ckpt.Image) {
	if !ib.active {
		return // aborted during the restore window; state already discarded
	}
	if !ib.m.Node.Alive {
		ib.cleanup()
		return // the node crashed during the restore window
	}
	n := ib.m.Node
	p := n.Spawn(img.Name, 0)
	n.Detach(p)
	p.PID = ib.req.PID
	n.Adopt(p)
	p.Threads = p.Threads[:0]
	for _, ti := range img.Threads {
		th := p.NewThread()
		th.TID = ti.TID
		th.Regs = ti.Regs
	}
	p.AS = ib.shadowAS
	p.CPUDemand = img.CPUDemand
	if err := ckpt.RestoreFDs(n, p, img.FDs); err != nil {
		ib.abort(err)
		return
	}
	opt := sockmig.RestoreOptions{
		LocalNet: proc.LocalNet, LocalNetBits: ib.m.Config.LocalNetBits,
		NewLocalIP: n.LocalIP,
	}
	if _, _, err := ib.store.RestoreAll(n.Stack, p, opt); err != nil {
		ib.abort(err)
		return
	}
	if b := takeBehavior(ib.req.Token); b != nil {
		p.Tick = b.Tick
		if b.SigHandlers != nil {
			p.SigHandlers = b.SigHandlers
		}
	}
	if ib.post {
		// Install the demand-paging client before anything can touch the
		// address space: reinjected packets and the first loop tick may
		// land on holes.
		ib.puller = newPuller(ib, p)
	}
	// Reinject captured packets through the okfn, then resume.
	ib.m.firePhase(&ib.pt, PhaseReinject, 0, ib.req.PID)
	if !ib.m.Node.Alive {
		// A phase hook crashed this node after the process image was
		// adopted; dismantle so the dead node holds no running state.
		n.Detach(p)
		ib.cleanup()
		return
	}
	var captured, reinjected uint32
	for _, f := range ib.filters {
		captured += uint32(f.Captured)
		nrj, err := ib.m.Capture.ReinjectAndDisable(f)
		if err == nil {
			reinjected += uint32(nrj)
		}
	}
	ib.filters = nil
	p.State = proc.ProcRunning
	if img.LoopPeriod > 0 && p.Tick != nil {
		n.StartLoop(p, img.LoopPeriod)
	}
	now := ib.m.sched().Now()
	if ib.post {
		ib.puller.resume(now, captured, reinjected)
	} else {
		ib.conn.Send(MsgRestoreDone, restoreDone{ResumeAt: now, Captured: captured, Reinjected: reinjected}.encode())
	}
	if ib.m.OnArrived != nil {
		mig := Precopy()
		if st, err := strategyByMode(ib.req.Mode); err == nil {
			mig = st
		}
		m := &Metrics{Strategy: ib.req.Strategy, Mig: mig.Name(), ResumeAt: now}
		ib.m.OnArrived(p, m)
	}
}
