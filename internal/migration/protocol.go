// Package migration is the live-migration engine: the migd daemon and
// mig_mod kernel-module equivalent. It drives the precopy loop of Fig 3,
// orchestrates incoming-packet-loss prevention (capture), local address
// translation for in-cluster connections, the three socket migration
// strategies, the freeze-phase transfer and the destination-side restore,
// and reports the metrics the evaluation section plots.
package migration

import (
	"encoding/binary"
	"errors"
	"fmt"

	"dvemig/internal/netstack"
)

// MigdPort is the TCP port migration daemons listen on (in-cluster
// interface).
const MigdPort = 7801

// MsgType identifies a migd protocol message.
type MsgType byte

// Protocol messages, in rough flow order.
const (
	MsgMigrateReq  MsgType = iota + 1 // S→D: open a migration
	MsgMigrateAck                     // D→S: accepted
	MsgMemDelta                       // S→D: one precopy round of memory
	MsgSockDelta                      // S→D: socket updates (precopy or freeze)
	MsgCaptureReq                     // S→D: enable capture filters
	MsgCaptureAck                     // D→S: filters active
	MsgFreeze                         // S→D: final state (mem, threads, fds)
	MsgRestoreDone                    // D→S: process resumed
	MsgAbort                          // either direction

	// Post-copy page-pull protocol (PR 6).
	MsgPostImage // S→D: minimal freeze image + page directory, no page data
	MsgResumed   // D→S: process resumed with holes; downtime ends here
	MsgPageReq   // D→S: demand pull for faulted pages (epoch-fenced)
	MsgPageResp  // S→D: page content (demand reply or prefetch push)
	MsgPullsDone // D→S: last hole filled; the source may dismantle

	// Chunked checkpoint streams (PR 8). Large checkpoint payloads —
	// precopy memory deltas, the freeze image, post-copy's directory
	// image — are split into bounded MsgChunk frames closed by a
	// MsgChunkEnd trailer, so serialization and link transfer overlap
	// instead of one monolithic message stalling the pipeline.
	MsgChunk    // S→D: one bounded frame of a chunked checkpoint payload
	MsgChunkEnd // S→D: stream trailer — kind, frame count, total bytes
)

// String names the message type.
func (t MsgType) String() string {
	names := map[MsgType]string{
		MsgMigrateReq: "MIGRATE_REQ", MsgMigrateAck: "MIGRATE_ACK",
		MsgMemDelta: "MEM_DELTA", MsgSockDelta: "SOCK_DELTA",
		MsgCaptureReq: "CAPTURE_REQ", MsgCaptureAck: "CAPTURE_ACK",
		MsgFreeze: "FREEZE", MsgRestoreDone: "RESTORE_DONE", MsgAbort: "ABORT",
		MsgPostImage: "POST_IMAGE", MsgResumed: "RESUMED",
		MsgPageReq: "PAGE_REQ", MsgPageResp: "PAGE_RESP", MsgPullsDone: "PULLS_DONE",
		MsgChunk: "CHUNK", MsgChunkEnd: "CHUNK_END",
	}
	if s, ok := names[t]; ok {
		return s
	}
	return fmt.Sprintf("MSG(%d)", byte(t))
}

// Conn frames migd messages over a simulated TCP connection.
type Conn struct {
	sk  *netstack.TCPSocket
	buf []byte
	// OnMsg receives each complete message.
	OnMsg func(t MsgType, payload []byte)
	// OnClose fires when the peer closes or the connection dies.
	OnClose func()

	// BytesSent counts framed payload bytes, for metrics.
	BytesSent uint64

	// hdr is the frame-header scratch; the transport copies what Send
	// hands it synchronously, so one buffer per connection suffices.
	hdr [5]byte
}

// NewConn wraps an (established or establishing) TCP socket.
func NewConn(sk *netstack.TCPSocket) *Conn {
	c := &Conn{sk: sk}
	sk.OnReadable = c.onReadable
	return c
}

// Socket exposes the underlying transport socket.
func (c *Conn) Socket() *netstack.TCPSocket { return c.sk }

// Send transmits one framed message: type byte + u32 length + payload.
func (c *Conn) Send(t MsgType, payload []byte) error {
	return c.Send2(t, payload, nil)
}

// Send2 transmits one framed message whose payload is the concatenation
// head||tail, without gluing the parts into a temporary buffer. The
// chunk sender uses it to prepend a small frame header to a slice of a
// larger encode buffer.
func (c *Conn) Send2(t MsgType, head, tail []byte) error {
	n := len(head) + len(tail)
	c.hdr[0] = byte(t)
	binary.BigEndian.PutUint32(c.hdr[1:], uint32(n))
	c.BytesSent += uint64(n) + 5
	if err := c.sk.Send(c.hdr[:]); err != nil {
		return err
	}
	if len(head) > 0 {
		if err := c.sk.Send(head); err != nil {
			return err
		}
	}
	if len(tail) > 0 {
		return c.sk.Send(tail)
	}
	return nil
}

func (c *Conn) onReadable() {
	if data := c.sk.Recv(); len(data) > 0 {
		c.feed(data)
	}
	if c.sk.EOF() && c.OnClose != nil {
		cb := c.OnClose
		c.OnClose = nil
		cb()
	}
}

// feed appends raw stream bytes and drains every complete frame. It is
// the transport-independent half of the parser (also the fuzz surface).
func (c *Conn) feed(data []byte) {
	c.buf = append(c.buf, data...)
	for {
		if len(c.buf) < 5 {
			break
		}
		n := int(binary.BigEndian.Uint32(c.buf[1:5]))
		if len(c.buf) < 5+n {
			break
		}
		t := MsgType(c.buf[0])
		payload := append([]byte(nil), c.buf[5:5+n]...)
		c.buf = c.buf[5+n:]
		if c.OnMsg != nil {
			c.OnMsg(t, payload)
		}
	}
}

// Close shuts the transport down.
func (c *Conn) Close() { c.sk.Close() }

// errAborted signals a migration aborted by the peer.
var errAborted = errors.New("migration: aborted by peer")
