package migration

import (
	"testing"
	"time"

	"dvemig/internal/proc"
	"dvemig/internal/simtime"
)

// TestConnTimeoutConfig: the migd connection timeout is configuration,
// not the historical hard-coded 5s. With a short ConnTimeout and no
// retries, a migration to an unreachable destination must fail at
// approximately that timeout.
func TestConnTimeoutConfig(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ConnTimeout = 400 * 1e6
	cfg.ConnRetries = 0
	e := newEnv(t, 2, 1, cfg)
	start := e.c.Sched.Now()
	var doneAt simtime.Time
	done := false
	var gotErr error
	e.migrators[0].Migrate(e.p, proc.LocalNet+99, func(m *Metrics, err error) {
		done, gotErr = true, err
		doneAt = e.c.Sched.Now()
	})
	e.c.Sched.RunFor(10 * time.Second)
	if !done || gotErr == nil {
		t.Fatalf("migration to unreachable node did not fail: done=%v err=%v", done, gotErr)
	}
	elapsed := doneAt - start
	if elapsed < 400*1e6 || elapsed > 700*1e6 {
		t.Fatalf("failure at %v after start, want ≈ConnTimeout (400ms)", elapsed)
	}
	if e.p.State != proc.ProcRunning {
		t.Fatalf("process state after conn failure = %v", e.p.State)
	}
}

// TestConnRetryBackoff: with ConnRetries > 0 the engine re-dials with
// exponential backoff before giving up, and the retry count lands in the
// metrics. Three attempts of 500ms separated by 100ms and 200ms backoffs
// put the failure near 1.8s.
func TestConnRetryBackoff(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ConnTimeout = 500 * 1e6
	cfg.ConnRetries = 2
	cfg.RetryBackoff = 100 * 1e6
	cfg.RetryBackoffMax = 400 * 1e6
	e := newEnv(t, 2, 1, cfg)
	start := e.c.Sched.Now()
	var doneAt simtime.Time
	done := false
	var gotErr error
	var m *Metrics
	e.migrators[0].Migrate(e.p, proc.LocalNet+99, func(mm *Metrics, err error) {
		done, gotErr, m = true, err, mm
		doneAt = e.c.Sched.Now()
	})
	e.c.Sched.RunFor(15 * time.Second)
	if !done || gotErr == nil {
		t.Fatalf("did not fail: done=%v err=%v", done, gotErr)
	}
	if m == nil || m.Retries != 2 {
		t.Fatalf("Retries = %v, want 2", m)
	}
	if !m.Aborted {
		t.Fatal("metrics not flagged aborted")
	}
	elapsed := doneAt - start
	// 3 × 500ms attempts + 100ms + 200ms backoffs = 1800ms.
	if elapsed < 1700*1e6 || elapsed > 2300*1e6 {
		t.Fatalf("failure at %v, want ≈1.8s (timeouts plus backoffs)", elapsed)
	}
	// The process never froze: still serving from the source, and a
	// follow-up migration to a real node succeeds.
	if e.p.State != proc.ProcRunning {
		t.Fatalf("process state = %v", e.p.State)
	}
	mm := e.migrate(t, 1)
	if mm.FreezeTime <= 0 {
		t.Fatal("follow-up migration broken after retries")
	}
}

// TestRetryBackoffCap: the doubling backoff saturates at RetryBackoffMax.
// With 4 retries, 100ms base and a 200ms cap, the gaps are
// 100+200+200+200 = 700ms on top of 5 × 300ms attempts ⇒ ≈2.2s.
func TestRetryBackoffCap(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ConnTimeout = 300 * 1e6
	cfg.ConnRetries = 4
	cfg.RetryBackoff = 100 * 1e6
	cfg.RetryBackoffMax = 200 * 1e6
	e := newEnv(t, 2, 1, cfg)
	start := e.c.Sched.Now()
	var doneAt simtime.Time
	done := false
	var m *Metrics
	e.migrators[0].Migrate(e.p, proc.LocalNet+99, func(mm *Metrics, err error) {
		done, m = true, mm
		doneAt = e.c.Sched.Now()
	})
	e.c.Sched.RunFor(15 * time.Second)
	if !done || m == nil {
		t.Fatal("did not finish")
	}
	if m.Retries != 4 {
		t.Fatalf("Retries = %d, want 4", m.Retries)
	}
	elapsed := doneAt - start
	if elapsed < 2100*1e6 || elapsed > 2800*1e6 {
		t.Fatalf("failure at %v, want ≈2.2s with capped backoff", elapsed)
	}
}
