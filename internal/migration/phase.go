package migration

import (
	"dvemig/internal/obs"
	"dvemig/internal/simtime"
)

// Phase names the checkpoints of a live migration. The fault plane's
// crash triggers hang off these (internal/faults.CrashAtPhase), and the
// chaos tests use them to pin a failure to an exact protocol moment.
// Connect/Precopy/Freeze/Transfer/Done/Aborted fire on the source
// migrator; Restore/Reinject fire on the destination.
type Phase int

const (
	// PhaseConnect: the migd control connection reached Established.
	PhaseConnect Phase = iota
	// PhasePrecopy: a precopy round is starting (PhaseEvent.Round = k).
	PhasePrecopy
	// PhaseFreeze: the process is being frozen on the source.
	PhaseFreeze
	// PhaseTransfer: socket state subtraction/transfer is starting.
	PhaseTransfer
	// PhaseRestore: the destination received the freeze image and is
	// rebuilding the process.
	PhaseRestore
	// PhaseReinject: the destination is about to reinject captured
	// packets and resume the process.
	PhaseReinject
	// PhaseDone: the source learned the process resumed remotely (and,
	// for post-copy, that every page was delivered).
	PhaseDone
	// PhaseAborted: the migration was rolled back at the source.
	PhaseAborted
	// PhaseResume: the source learned the destination resumed the
	// process with holes (post-copy; downtime ends, the degraded
	// demand-pull window begins). Fires on the source migrator.
	PhaseResume
	// PhasePull: the source served one demand page pull
	// (PhaseEvent.Round = 1-based pull number).
	PhasePull
	// PhasePrefetch: the source pushed one background prefetch batch
	// (PhaseEvent.Round = 1-based batch number).
	PhasePrefetch
	// PhaseDrained: the destination filled its last hole (terminal on
	// the destination for post-copy restores).
	PhaseDrained
)

var phaseNames = [...]string{
	"connect", "precopy", "freeze", "transfer",
	"restore", "reinject", "done", "aborted",
	"resume", "pull", "prefetch", "drained",
}

func (p Phase) String() string {
	if p >= 0 && int(p) < len(phaseNames) {
		return phaseNames[p]
	}
	return "unknown"
}

// PhaseEvent describes one phase transition of one migration.
type PhaseEvent struct {
	Phase Phase
	// Round is the 1-based precopy round for PhasePrecopy, 0 otherwise.
	Round int
	// PID is the migrating process.
	PID int
	// Node is the migrator on which the event fired.
	Node string
	Time simtime.Time
	// Since is the sim-time of the previous phase event of the same
	// migration — the migration's start (source side) or the arrival of
	// the migd request (destination side) for the first event. Consumers
	// read the per-phase latency as Time-Since instead of recomputing
	// deltas from their own bookkeeping.
	Since simtime.Time
}

// migObsHandles caches the metric handles one migrator records into, so
// the hot path never does a map lookup. All handles are nil when the
// plane is disabled; their methods are nil-receiver no-ops, and every
// recording site is additionally gated on the single m.Obs pointer
// check so the disabled path costs one comparison.
type migObsHandles struct {
	phaseUs    [len(phaseNames)]*obs.Histogram
	freezeUs   *obs.Histogram
	downtimeUs *obs.Histogram
	roundBytes *obs.Histogram
	completed  *obs.Counter
	aborted    *obs.Counter
}

// SetObs attaches an observability plane to the migrator and
// pre-resolves the metric handles. Call before any migration starts; a
// nil o detaches the plane.
func (m *Migrator) SetObs(o *obs.Obs) {
	m.Obs = o
	r := o.M()
	for ph := PhaseConnect; int(ph) < len(phaseNames); ph++ {
		m.obsm.phaseUs[ph] = r.Histogram("mig/phase_"+ph.String()+"_us", obs.DurationBucketsUs)
	}
	m.obsm.freezeUs = r.Histogram("mig/freeze_us", obs.DurationBucketsUs)
	// Downtime is the strategy race's comparison axis: FreezeTime plus
	// (for post-copy) the demand-fault stall — the quantity the soak's
	// p99-downtime SLO bounds.
	m.obsm.downtimeUs = r.Histogram("mig/downtime_us", obs.DurationBucketsUs)
	m.obsm.roundBytes = r.Histogram("mig/precopy_round_bytes", obs.ByteBuckets)
	m.obsm.completed = r.Counter("mig/completed_total")
	m.obsm.aborted = r.Counter("mig/aborted_total")
}

// phaseTrack is the per-migration phase clock and span cursor: the
// sim-time of the previous phase event (feeding PhaseEvent.Since) and,
// when the plane is enabled, the migration's root span plus the child
// span of the phase currently underway. One lives in each outbound and
// each inbound.
type phaseTrack struct {
	last simtime.Time
	root *obs.Span
	cur  *obs.Span

	// lastWall is the self-profiling plane's wall timestamp of the
	// previous phase event (ns since the profiler base), so firePhase
	// can pair each phase's sim-time delta with the host time the
	// simulator spent computing it. Unused (zero) when Prof is nil.
	lastWall int64

	// pullsAfterReinject marks a post-copy inbound: PhaseReinject is not
	// terminal (the pull/drain phases follow) and PhaseDrained closes
	// the trace instead.
	pullsAfterReinject bool
}

// begin stamps the migration's start time and, when observing, opens
// the root span on this node's track. A valid ctx — the source span's
// coordinate carried over from another node (or a conductor's rebalance
// decision on this one) — parents the new span into that trace instead
// of rooting a fresh one; the zero context behaves exactly like Start.
func (pt *phaseTrack) begin(m *Migrator, name string, pid int, ctx obs.TraceContext) {
	pt.last = m.sched().Now()
	if m.Prof != nil {
		pt.lastWall = m.Prof.NowNs()
	}
	if m.Obs != nil {
		pt.root = m.Obs.Trace.StartLinked(m.Node.Name, name, ctx)
		pt.root.SetInt("pid", int64(pid))
	}
}

// firePhase advances one migration's phase machine: it records the
// per-phase latency (Time-Since) into the phase histogram, rolls the
// span cursor (close the previous phase's child span, open the next
// one; terminal phases close the root), then drives OnPhase with a
// fully-populated PhaseEvent. The span bookkeeping happens before the
// callback so a phase hook that crashes the node (faults.CrashAtPhase)
// still leaves a well-formed trace.
func (m *Migrator) firePhase(pt *phaseTrack, ph Phase, round, pid int) {
	now := m.sched().Now()
	since := pt.last
	pt.last = now
	if m.Node.FR != nil {
		m.Node.FR.Record(int64(now), "phase", ph.String(),
			int64(pid), int64(round), int64(now-since))
	}
	if m.Prof != nil {
		w := m.Prof.NowNs()
		m.Prof.Record(ph.String(), int64(now-since), w-pt.lastWall)
		pt.lastWall = w
	}
	if m.Obs != nil {
		m.obsm.phaseUs[ph].Observe(float64(now-since) / 1e3)
		pt.cur.CloseAt(now)
		switch ph {
		case PhaseDone:
			m.obsm.completed.Inc()
			pt.root.SetAttr("outcome", "done")
			pt.root.CloseAt(now)
			pt.cur = nil
		case PhaseAborted:
			m.obsm.aborted.Inc()
			pt.root.SetAttr("outcome", "aborted")
			pt.root.CloseAt(now)
			pt.cur = nil
		case PhaseReinject:
			pt.cur = pt.root.Child(ph.String())
			if pt.pullsAfterReinject {
				// Post-copy: the restore is not over — the reinject child
				// stays open until PhaseDrained closes the trace.
				break
			}
			// Terminal on the destination for pre-copy: the remaining
			// reinject work runs synchronously inside this event, at the
			// same virtual instant.
			pt.cur.CloseAt(now)
			pt.root.CloseAt(now)
		case PhaseDrained:
			// Terminal on the destination for post-copy: the last hole
			// filled at this instant.
			pt.cur = pt.root.Child(ph.String())
			pt.cur.CloseAt(now)
			pt.root.SetAttr("outcome", "drained")
			pt.root.CloseAt(now)
			pt.cur = nil
		default:
			pt.cur = pt.root.Child(ph.String())
			switch ph {
			case PhasePrecopy, PhasePull, PhasePrefetch:
				pt.cur.SetInt("round", int64(round))
			}
		}
	}
	if m.OnPhase != nil {
		m.OnPhase(PhaseEvent{Phase: ph, Round: round, PID: pid,
			Node: m.Node.Name, Time: now, Since: since})
	}
}

// abandon closes a migration's spans without a terminal phase event —
// the inbound cleanup path (lease expiry, source abort), where no
// OnPhase consumer expects a source-side Aborted.
func (pt *phaseTrack) abandon() {
	pt.cur.Close()
	if pt.root.Open() {
		pt.root.SetAttr("outcome", "abandoned")
		pt.root.Close()
	}
}
