package migration

import "dvemig/internal/simtime"

// Phase names the checkpoints of a live migration. The fault plane's
// crash triggers hang off these (internal/faults.CrashAtPhase), and the
// chaos tests use them to pin a failure to an exact protocol moment.
// Connect/Precopy/Freeze/Transfer/Done/Aborted fire on the source
// migrator; Restore/Reinject fire on the destination.
type Phase int

const (
	// PhaseConnect: the migd control connection reached Established.
	PhaseConnect Phase = iota
	// PhasePrecopy: a precopy round is starting (PhaseEvent.Round = k).
	PhasePrecopy
	// PhaseFreeze: the process is being frozen on the source.
	PhaseFreeze
	// PhaseTransfer: socket state subtraction/transfer is starting.
	PhaseTransfer
	// PhaseRestore: the destination received the freeze image and is
	// rebuilding the process.
	PhaseRestore
	// PhaseReinject: the destination is about to reinject captured
	// packets and resume the process.
	PhaseReinject
	// PhaseDone: the source learned the process resumed remotely.
	PhaseDone
	// PhaseAborted: the migration was rolled back at the source.
	PhaseAborted
)

var phaseNames = [...]string{
	"connect", "precopy", "freeze", "transfer",
	"restore", "reinject", "done", "aborted",
}

func (p Phase) String() string {
	if p >= 0 && int(p) < len(phaseNames) {
		return phaseNames[p]
	}
	return "unknown"
}

// PhaseEvent describes one phase transition of one migration.
type PhaseEvent struct {
	Phase Phase
	// Round is the 1-based precopy round for PhasePrecopy, 0 otherwise.
	Round int
	// PID is the migrating process.
	PID int
	// Node is the migrator on which the event fired.
	Node string
	Time simtime.Time
}

func (m *Migrator) firePhase(ph Phase, round, pid int) {
	if m.OnPhase != nil {
		m.OnPhase(PhaseEvent{Phase: ph, Round: round, PID: pid,
			Node: m.Node.Name, Time: m.sched().Now()})
	}
}
