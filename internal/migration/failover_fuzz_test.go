package migration

import (
	"bytes"
	"testing"

	"dvemig/internal/obs"
)

// FuzzCkptImage feeds arbitrary bytes to the checkpoint-stream image
// decoder. Standby daemons parse these frames straight off a TCP
// connection from another node, so the decoder must never panic, must
// reject frames shorter than the 44-byte fixed header or with a name
// length pointing past the buffer, and every frame it accepts must
// roundtrip through the encoder bit-for-bit.
func FuzzCkptImage(f *testing.F) {
	f.Add(encodeCkptImage("scoreboard", 7, 3, 2, obs.TraceContext{Trace: 5, Span: 9}, []byte{1, 2, 3}))
	f.Add(encodeCkptImage("", 0, 0, 0, obs.TraceContext{}, nil))
	f.Add([]byte{})
	f.Add(make([]byte, 43))
	f.Fuzz(func(t *testing.T, data []byte) {
		name, token, seq, ep, tctx, img, err := decodeCkptImage(data)
		if len(data) < 44 {
			if err == nil {
				t.Fatalf("decoded a %d-byte frame (min header is 44)", len(data))
			}
			return
		}
		if err != nil {
			return
		}
		back := encodeCkptImage(name, token, seq, ep, tctx, img)
		if !bytes.Equal(back, data) {
			t.Fatalf("re-encode is not bit-identical: %x != %x", back, data)
		}
		n2, tok2, seq2, ep2, tctx2, img2, err := decodeCkptImage(back)
		if err != nil || n2 != name || tok2 != token || seq2 != seq || ep2 != ep ||
			tctx2 != tctx || !bytes.Equal(img2, img) {
			t.Fatalf("roundtrip broken: (%q,%d,%d,%d,%v,%d bytes,%v)",
				n2, tok2, seq2, ep2, tctx2, len(img2), err)
		}
	})
}
