package migration

import (
	"bytes"
	"testing"
)

// FuzzCkptImage feeds arbitrary bytes to the checkpoint-stream image
// decoder. Standby daemons parse these frames straight off a TCP
// connection from another node, so the decoder must never panic, must
// reject frames shorter than the 28-byte fixed header or with a name
// length pointing past the buffer, and every frame it accepts must
// roundtrip through the encoder bit-for-bit.
func FuzzCkptImage(f *testing.F) {
	f.Add(encodeCkptImage("scoreboard", 7, 3, 2, []byte{1, 2, 3}))
	f.Add(encodeCkptImage("", 0, 0, 0, nil))
	f.Add([]byte{})
	f.Add(make([]byte, 27))
	f.Fuzz(func(t *testing.T, data []byte) {
		name, token, seq, ep, img, err := decodeCkptImage(data)
		if len(data) < 28 {
			if err == nil {
				t.Fatalf("decoded a %d-byte frame (min header is 28)", len(data))
			}
			return
		}
		if err != nil {
			return
		}
		back := encodeCkptImage(name, token, seq, ep, img)
		if !bytes.Equal(back, data) {
			t.Fatalf("re-encode is not bit-identical: %x != %x", back, data)
		}
		n2, tok2, seq2, ep2, img2, err := decodeCkptImage(back)
		if err != nil || n2 != name || tok2 != token || seq2 != seq || ep2 != ep ||
			!bytes.Equal(img2, img) {
			t.Fatalf("roundtrip broken: (%q,%d,%d,%d,%d bytes,%v)",
				n2, tok2, seq2, ep2, len(img2), err)
		}
	})
}
