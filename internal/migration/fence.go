package migration

import (
	"dvemig/internal/netstack"
	"dvemig/internal/proc"
)

// FenceService records that ownership of the named service moved to a
// higher epoch elsewhere and dismantles every piece of local serving
// state that predates it. This is the healed-split-brain path: a node
// that was isolated while a standby took over still holds the service's
// process, sockets, capture filters and translation rules — and because
// the broadcast router feeds it every client packet, it would silently
// serve alongside the real owner. Fencing tears all of that down
// without emitting a single packet (sockets are unhashed before they
// close, so no FIN or RST escapes) and raises the capture/translation
// fences so nothing captured or installed under the old epoch can ever
// be replayed or re-established.
//
// Returns true when local serving state was dismantled. A call at or
// below the local watermark is a no-op: an owner never fences itself on
// its own (or an older) epoch.
func (m *Migrator) FenceService(name string, ep uint64) bool {
	if ep <= m.Epochs.Current(name) {
		return false
	}
	m.Epochs.Observe(name, ep)
	dismantled := false
	for _, p := range m.Node.Processes() {
		if p.Name != name || p.State == proc.ProcExited {
			continue
		}
		dismantled = true
		m.Node.StopLoop(p)
		ports := make(map[uint16]bool)
		tcp, udp := p.Sockets()
		// Silent teardown: unhash first, then close. A closed-but-hashed
		// TCP socket would emit a FIN; a fenced owner must stay mute.
		for _, sk := range tcp {
			ports[sk.LocalPort] = true
			if !sk.Unhashed() {
				sk.Unhash()
			}
			sk.Close()
		}
		for _, us := range udp {
			ports[us.LocalPort] = true
			if !us.Unhashed() {
				us.Unhash()
			}
			us.Close()
		}
		p.State = proc.ProcExited
		m.Node.Detach(p)
		for port := range ports {
			m.Capture.FencePort(port, ep)
			m.Transd.Translator().FenceRemotePort(port, ep)
		}
	}
	return dismantled
}

// SuspendService quiesces every local running process of the named
// service without destroying state: loops are stopped and sockets
// unhashed so not a byte goes in or out, but memory, FDs and connection
// state stay intact for a later resume. This is the self-fencing an
// isolated owner applies when it can no longer prove it is the sole
// owner. Returns the number of processes suspended.
func (m *Migrator) SuspendService(name string) int {
	n := 0
	for _, p := range m.Node.Processes() {
		if p.Name != name || p.State != proc.ProcRunning {
			continue
		}
		n++
		m.Node.StopLoop(p)
		tcp, udp := p.Sockets()
		for _, sk := range tcp {
			if !sk.Unhashed() {
				sk.Unhash()
			}
		}
		for _, us := range udp {
			if !us.Unhashed() {
				us.Unhash()
			}
		}
	}
	return n
}

// ResumeService reverses SuspendService: sockets are rehashed,
// established connections restart their retransmit machinery, and the
// process loop is re-armed. Returns the number of processes resumed.
func (m *Migrator) ResumeService(name string) int {
	n := 0
	for _, p := range m.Node.Processes() {
		if p.Name != name || p.State != proc.ProcRunning {
			continue
		}
		n++
		tcp, udp := p.Sockets()
		for _, sk := range tcp {
			if sk.Unhashed() {
				if err := sk.Rehash(); err == nil && sk.State == netstack.TCPEstablished {
					sk.RestartRetransTimer()
				}
			}
		}
		for _, us := range udp {
			if us.Unhashed() {
				_ = us.Rehash()
			}
		}
		if p.LoopPeriod > 0 && p.Tick != nil {
			m.Node.StartLoop(p, p.LoopPeriod)
		}
	}
	return n
}

// OwnsService reports whether a running process of the given name lives
// on this node (the serving-state probe used by failover audits).
func (m *Migrator) OwnsService(name string) bool {
	for _, p := range m.Node.Processes() {
		if p.Name == name && p.State == proc.ProcRunning {
			return true
		}
	}
	return false
}
