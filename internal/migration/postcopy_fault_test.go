// Post-copy abort matrix: a crash in every phase of the post-copy
// protocol, on either side of the handover. Before the destination
// sends RESUMED the source must roll back and thaw exactly as in the
// pre-copy crash matrix; after it, the point of no return has passed
// and the only legal outcomes are orphan-reaping (destination died) or
// hole-y-process destruction (source died) — never two owners, never a
// resurrected copy. Lives in the external test package for the same
// import-cycle reason as faultinject_test.go.
package migration_test

import (
	"testing"
	"time"

	"dvemig/internal/faults"
	"dvemig/internal/migration"
	"dvemig/internal/proc"
	"dvemig/internal/simtime"
)

// TestPostcopyAbortMatrix covers the pre-handover cells for both
// post-copy and hybrid: the destination dies at freeze, at the
// minimal-transfer point, during restore, and during reinjection (the
// last instant before RESUMED). Every cell must abort within the
// deadline, thaw the source with all sockets rehashed, keep the byte
// streams intact, and reproduce bit-identically.
func TestPostcopyAbortMatrix(t *testing.T) {
	cases := []struct {
		name  string
		watch int // migrator index whose OnPhase fires the trigger
		phase migration.Phase
	}{
		{"freeze", 0, migration.PhaseFreeze},
		{"minimal-transfer", 0, migration.PhaseTransfer},
		{"restore", 1, migration.PhaseRestore},
		{"reinject", 1, migration.PhaseReinject},
	}
	for _, strat := range []migration.Strategy{migration.Postcopy(), migration.Hybrid()} {
		for _, tc := range cases {
			strat, tc := strat, tc
			t.Run(strat.Name()+"/"+tc.name, func(t *testing.T) {
				run := func() (reason string, recvLen int) {
					cfg := migration.DefaultConfig()
					cfg.Mig = strat
					cfg.Deadline = 6 * 1e9
					cfg.ConnTimeout = 1 * 1e9
					e := newFaultEnv(t, 3, 4, 1, cfg)
					e.startStreams(40 * time.Millisecond)
					e.c.Sched.RunFor(300 * time.Millisecond)

					dest := e.c.Nodes[1]
					faults.CrashAtPhase(e.c, e.migs[tc.watch], dest, tc.phase, 0)

					start := e.c.Sched.Now()
					var doneAt simtime.Time
					done := false
					var mErr error
					var metrics *migration.Metrics
					e.migs[0].Migrate(e.p, dest.LocalIP, func(m *migration.Metrics, err error) {
						done, mErr, metrics = true, err, m
						doneAt = e.c.Sched.Now()
					})
					e.c.Sched.RunFor(20 * time.Second)
					if !done {
						t.Fatal("hang: migration neither completed nor aborted")
					}
					if mErr == nil {
						t.Fatal("destination died pre-handover but migration reported success")
					}
					if metrics == nil || !metrics.Aborted {
						t.Fatalf("metrics not flagged aborted: %+v", metrics)
					}
					if doneAt > start+simtime.Time(cfg.Deadline)+2*1e9 {
						t.Fatalf("abort too late: %v after start", doneAt-start)
					}
					if dest.Alive {
						t.Fatal("victim still alive; trigger never fired")
					}
					// Pre-handover: the source copy is still the owner and
					// must be running, with every socket rehashed.
					if e.p.State != proc.ProcRunning {
						t.Fatalf("source process state = %v after rollback", e.p.State)
					}
					if fenvFindProcess(e.c.Nodes[0], "zone_serv") == nil {
						t.Fatal("process missing from source")
					}
					if fenvFindProcess(dest, "zone_serv") != nil {
						t.Fatal("dead destination still holds the process")
					}
					if n := fenvCountRunning(e.c, "zone_serv"); n != 1 {
						t.Fatalf("%d running owners after rollback, want 1", n)
					}
					tcp, _ := e.p.Sockets()
					for _, sk := range tcp {
						if sk.Unhashed() {
							t.Fatal("socket left unhashed after thaw")
						}
					}
					e.c.Sched.RunFor(2 * time.Second)
					e.stopStreams()
					e.c.Sched.RunFor(8 * time.Second)
					e.audit(t, strat.Name()+"/"+tc.name)
					return mErr.Error(), e.received.Len()
				}
				r1, n1 := run()
				r2, n2 := run()
				if r1 != r2 || n1 != n2 {
					t.Fatalf("cell not reproducible: (%q,%d) vs (%q,%d)", r1, n1, r2, n2)
				}
			})
		}
	}
}

// TestPostcopyDestCrashAfterResume is the first post-handover cell: the
// destination dies the instant the source learns of the resume. The
// source must NOT thaw (the destination ran — and possibly externalized
// — state the frozen copy never saw); it reaps the shell once the pull
// watchdog expires, reports the migration aborted, and the cluster
// converges to zero owners with no resurrection ever.
func TestPostcopyDestCrashAfterResume(t *testing.T) {
	run := func() (reason string, owners int) {
		cfg := migration.DefaultConfig()
		cfg.Mig = migration.Postcopy()
		cfg.Deadline = 6 * 1e9
		cfg.InboundLease = 2 * 1e9
		e := newFaultEnv(t, 3, 4, 1, cfg)
		e.startStreams(40 * time.Millisecond)
		e.c.Sched.RunFor(300 * time.Millisecond)

		dest := e.c.Nodes[1]
		// PhaseResume fires on the source when RESUMED lands — the
		// handover is already committed when the victim drops.
		faults.CrashAtPhase(e.c, e.migs[0], dest, migration.PhaseResume, 0)

		done := false
		var mErr error
		var metrics *migration.Metrics
		e.migs[0].Migrate(e.p, dest.LocalIP, func(m *migration.Metrics, err error) {
			done, mErr, metrics = true, err, m
		})
		e.c.Sched.RunFor(20 * time.Second)
		if !done {
			t.Fatal("hang: source never reaped the orphaned shell")
		}
		if mErr == nil {
			t.Fatal("destination died post-handover but migration reported success")
		}
		if metrics == nil || !metrics.Aborted {
			t.Fatalf("metrics not flagged aborted: %+v", metrics)
		}
		if dest.Alive {
			t.Fatal("victim still alive; trigger never fired")
		}
		// Past the point of no return the frozen source shell must never
		// thaw: it is reaped, not resurrected.
		if e.p.State == proc.ProcRunning {
			t.Fatal("source resurrected a handed-over process")
		}
		if fenvFindProcess(e.c.Nodes[0], "zone_serv") != nil {
			t.Fatal("reaped shell still attached to source")
		}
		// No owner anywhere — recovering this service is failover
		// (epoch promotion) territory, not the migration engine's.
		n := fenvCountRunning(e.c, "zone_serv")
		if n != 0 {
			t.Fatalf("%d running owners after post-handover destination crash", n)
		}
		e.stopStreams()
		e.c.Sched.RunFor(5 * time.Second)
		if nn := fenvCountRunning(e.c, "zone_serv"); nn != 0 {
			t.Fatalf("owner resurrected later: %d running", nn)
		}
		return mErr.Error(), n
	}
	r1, o1 := run()
	r2, o2 := run()
	if r1 != r2 || o1 != o2 {
		t.Fatalf("cell not reproducible: (%q,%d) vs (%q,%d)", r1, o1, r2, o2)
	}
}

// TestPostcopySourceCrashDuringPulls is the mirror post-handover cell:
// the source dies mid-prefetch while the destination still has holes. A
// process that cannot fill its holes can never serve again, so the pull
// lease must expire and destroy it fence-style — zero owners, no
// half-complete image left hashed into any stack.
func TestPostcopySourceCrashDuringPulls(t *testing.T) {
	run := func() (leases uint64, owners int) {
		cfg := migration.DefaultConfig()
		cfg.Mig = migration.Postcopy()
		cfg.InboundLease = 2 * 1e9
		// Slow the sweep down so the crash is guaranteed to land while
		// holes remain.
		cfg.PrefetchInterval = 50 * 1e6
		cfg.PrefetchBatch = 4
		e := newFaultEnv(t, 3, 4, 1, cfg)
		e.startStreams(40 * time.Millisecond)
		e.c.Sched.RunFor(300 * time.Millisecond)

		src := e.c.Nodes[0]
		dest := e.c.Nodes[1]
		faults.CrashAtPhase(e.c, e.migs[0], src, migration.PhasePrefetch, 1)

		e.migs[0].Migrate(e.p, dest.LocalIP, func(m *migration.Metrics, err error) {
			// The source dies mid-pull; its callback firing is not part
			// of the contract.
		})
		// Long enough for the 2s lease plus teardown slack.
		e.c.Sched.RunFor(15 * time.Second)
		e.stopStreams()
		e.c.Sched.RunFor(2 * time.Second)

		if src.Alive {
			t.Fatal("victim still alive; trigger never fired")
		}
		if e.migs[1].LeaseExpired == 0 {
			t.Fatal("destination never expired the pull lease")
		}
		// The hole-y process is gone, not serving with missing pages.
		if fenvFindProcess(dest, "zone_serv") != nil {
			t.Fatal("destination kept a hole-y process after the source died")
		}
		n := fenvCountRunning(e.c, "zone_serv")
		if n != 0 {
			t.Fatalf("%d running owners after source crash mid-pull", n)
		}
		return e.migs[1].LeaseExpired, n
	}
	l1, o1 := run()
	l2, o2 := run()
	if l1 != l2 || o1 != o2 {
		t.Fatalf("cell not reproducible: (%d,%d) vs (%d,%d)", l1, o1, l2, o2)
	}
}

// TestPostcopyDeadlineRefusedAfterHandover: a deadline that fires while
// pulls are still draining must be REFUSED — the destination is running
// the process, so aborting would strand the only owner. The migration
// completes normally, strictly later than the deadline it outlived.
func TestPostcopyDeadlineRefusedAfterHandover(t *testing.T) {
	cfg := migration.DefaultConfig()
	cfg.Mig = migration.Postcopy()
	// Handover happens within a few ms; the sweep over the ~40 resident
	// pages (8 per 20ms batch) needs ~100ms, so a 60ms deadline lands
	// mid-pull.
	cfg.Deadline = 60 * 1e6
	cfg.PrefetchInterval = 20 * 1e6
	e := newFaultEnv(t, 3, 4, 1, cfg)
	e.startStreams(40 * time.Millisecond)
	e.c.Sched.RunFor(300 * time.Millisecond)

	start := e.c.Sched.Now()
	var doneAt simtime.Time
	done := false
	var mErr error
	var metrics *migration.Metrics
	e.migs[0].Migrate(e.p, e.c.Nodes[1].LocalIP, func(m *migration.Metrics, err error) {
		done, mErr, metrics = true, err, m
		doneAt = e.c.Sched.Now()
	})
	e.c.Sched.RunFor(20 * time.Second)
	if !done {
		t.Fatal("migration hung")
	}
	if mErr != nil {
		t.Fatalf("deadline aborted a handed-over migration: %v", mErr)
	}
	if doneAt <= start+simtime.Time(cfg.Deadline) {
		t.Fatalf("migration finished at %v, before the %v deadline — cell never exercised the refusal",
			doneAt-start, cfg.Deadline)
	}
	if metrics.PagesShipped == 0 || metrics.LastFillAt < metrics.ResumeAt {
		t.Fatalf("pull accounting implausible: %+v", metrics)
	}
	q := fenvFindProcess(e.c.Nodes[1], "zone_serv")
	if q == nil || q.AS.AbsentCount() != 0 {
		t.Fatal("process missing or hole-y on destination after drain")
	}
	e.c.Sched.RunFor(2 * time.Second)
	e.stopStreams()
	e.c.Sched.RunFor(8 * time.Second)
	e.audit(t, "deadline-refused")
}
