package migration

import (
	"testing"
	"time"

	"dvemig/internal/simtime"
)

// TestBackoffScheduleIsPinned locks the exact retry schedule: the
// deterministic exponential envelope without jitter, and the
// seed-deterministic jittered sequence (same seed → same delays on any
// machine, any worker count). Changing either is a replay-compatibility
// break and must be deliberate.
func TestBackoffScheduleIsPinned(t *testing.T) {
	b := BackoffPolicy{Base: 100 * time.Millisecond, Max: 2 * time.Second}
	want := []simtime.Duration{
		100 * time.Millisecond,  // attempt 1
		200 * time.Millisecond,  // 2: doubled
		400 * time.Millisecond,  // 3
		800 * time.Millisecond,  // 4
		1600 * time.Millisecond, // 5
		2 * time.Second,         // 6: capped at Max
		2 * time.Second,         // 7: stays capped
	}
	for i, w := range want {
		if got := b.Delay(i+1, nil); got != w {
			t.Fatalf("Delay(%d) = %v, want %v", i+1, got, w)
		}
	}

	// Jittered: pinned against simtime.Rand(42). The jitter only ever
	// extends a delay (never below the envelope) and is drawn from the
	// caller's rng, so the whole schedule is a pure function of the seed.
	jb := BackoffPolicy{Base: 100 * time.Millisecond, Max: 2 * time.Second, Jitter: 0.5}
	wantJ := []simtime.Duration{
		116954263, 278225584, 558027409, 1177617053, 2211514942, 2835739858,
	}
	rng := simtime.NewRand(42)
	for i, w := range wantJ {
		got := jb.Delay(i+1, rng)
		if got != w {
			t.Fatalf("jittered Delay(%d) = %d, want %d", i+1, int64(got), int64(w))
		}
		envelope := b.Delay(i+1, nil)
		if got < envelope || got > envelope+envelope/2 {
			t.Fatalf("jittered Delay(%d) = %v outside [env, 1.5*env] around %v", i+1, got, envelope)
		}
	}

	// Schedule is Delay folded over one rng.
	rng2 := simtime.NewRand(42)
	sched := jb.Schedule(6, rng2)
	for i, w := range wantJ {
		if sched[i] != w {
			t.Fatalf("Schedule[%d] = %d, want %d", i, int64(sched[i]), int64(w))
		}
	}

	// Zero-value policy falls back to the historical 100ms base.
	var zero BackoffPolicy
	if got := zero.Delay(1, nil); got != 100*time.Millisecond {
		t.Fatalf("zero-policy Delay(1) = %v", got)
	}
}

// TestEngineRetrySchedule pins the engine's wiring of the shared
// policy: Config{RetryBackoff, RetryBackoffMax, RetryJitter} must
// produce the same schedule as the standalone BackoffPolicy — the
// control plane and the engine retry off one definition.
func TestEngineRetrySchedule(t *testing.T) {
	cfg := DefaultConfig()
	cfg.RetryBackoff = 50 * time.Millisecond
	cfg.RetryBackoffMax = 300 * time.Millisecond
	p := cfg.retryPolicy()
	want := []simtime.Duration{50e6, 100e6, 200e6, 300e6, 300e6}
	for i, w := range want {
		if got := p.Delay(i+1, nil); got != w {
			t.Fatalf("engine Delay(%d) = %v, want %v", i+1, got, w)
		}
	}
	if p.Jitter != 0 {
		t.Fatal("default config must keep the exact historical schedule (no jitter)")
	}
	cfg.RetryJitter = 0.25
	if got := cfg.retryPolicy().Jitter; got != 0.25 {
		t.Fatalf("RetryJitter not threaded: %v", got)
	}
}
