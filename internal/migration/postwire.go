package migration

import (
	"encoding/binary"
	"errors"

	"dvemig/internal/ckpt"
	"dvemig/internal/simtime"
)

// Migration strategy wire tags (migrateReq.Mode).
const (
	modePrecopy byte = iota
	modePostcopy
	modeHybrid
)

// postImage is the post-copy freeze payload: the minimal image (threads,
// non-socket FDs, meta), the page directory describing which pages ride
// along as resident versus which stay behind as pull-on-demand holes,
// and — for collective socket strategies — the socket payload. Page
// *data* for the resident set travels in the MemDelta part (hybrid);
// pure post-copy ships an empty delta and every page is a hole.
type postImage struct {
	FreezeStart simtime.Time
	Image       []byte // encoded ckpt.Image
	Dir         []byte // encoded ckpt.PageDir
	MemDelta    []byte // encoded ckpt.MemDelta (resident pages; may be empty)
	SockDelta   []byte // encoded sockmig.SockDelta (may be empty)
}

func (m postImage) encode() []byte {
	b := make([]byte, 8, 8+16+len(m.Image)+len(m.Dir)+len(m.MemDelta)+len(m.SockDelta))
	binary.BigEndian.PutUint64(b, uint64(m.FreezeStart))
	for _, part := range [][]byte{m.Image, m.Dir, m.MemDelta, m.SockDelta} {
		var l [4]byte
		binary.BigEndian.PutUint32(l[:], uint32(len(part)))
		b = append(b, l[:]...)
		b = append(b, part...)
	}
	return b
}

func decodePostImage(b []byte) (postImage, error) {
	var m postImage
	if len(b) < 8 {
		return m, errors.New("migration: short POST_IMAGE")
	}
	m.FreezeStart = simtime.Time(binary.BigEndian.Uint64(b))
	off := 8
	parts := make([][]byte, 4)
	for i := range parts {
		if off+4 > len(b) {
			return m, errors.New("migration: truncated POST_IMAGE")
		}
		n := int(binary.BigEndian.Uint32(b[off:]))
		off += 4
		if n < 0 || off+n > len(b) {
			return m, errors.New("migration: truncated POST_IMAGE part")
		}
		parts[i] = b[off : off+n]
		off += n
	}
	m.Image, m.Dir, m.MemDelta, m.SockDelta = parts[0], parts[1], parts[2], parts[3]
	return m, nil
}

// pageReq is a destination→source demand pull: the pages the resumed
// process faulted on. Epoch is the destination's view of the service
// epoch from the original MIGRATE_REQ; the source fences requests whose
// epoch is no longer current (the puller's ownership was superseded).
type pageReq struct {
	ID     uint32 // correlates the eventual pageResp, 1-based
	Epoch  uint64
	Coords []ckpt.PageCoord
}

func (m pageReq) encode() []byte {
	b := make([]byte, 16, 16+16*len(m.Coords))
	binary.BigEndian.PutUint32(b[0:], m.ID)
	binary.BigEndian.PutUint64(b[4:], m.Epoch)
	binary.BigEndian.PutUint32(b[12:], uint32(len(m.Coords)))
	for _, c := range m.Coords {
		var e [16]byte
		binary.BigEndian.PutUint64(e[0:], c.VMAStart)
		binary.BigEndian.PutUint64(e[8:], c.Index)
		b = append(b, e[:]...)
	}
	return b
}

func decodePageReq(b []byte) (pageReq, error) {
	if len(b) < 16 {
		return pageReq{}, errors.New("migration: short PAGE_REQ")
	}
	m := pageReq{
		ID:    binary.BigEndian.Uint32(b[0:]),
		Epoch: binary.BigEndian.Uint64(b[4:]),
	}
	n := int(binary.BigEndian.Uint32(b[12:]))
	if n < 0 || n > (len(b)-16)/16 {
		return pageReq{}, errors.New("migration: truncated PAGE_REQ")
	}
	off := 16
	m.Coords = make([]ckpt.PageCoord, 0, n)
	for i := 0; i < n; i++ {
		m.Coords = append(m.Coords, ckpt.PageCoord{
			VMAStart: binary.BigEndian.Uint64(b[off:]),
			Index:    binary.BigEndian.Uint64(b[off+8:]),
		})
		off += 16
	}
	return m, nil
}

// pageResp carries page content source→destination. ID echoes the
// demand pageReq it answers, or 0 for an unsolicited prefetch push. A
// demand reply may carry fewer pages than were asked for when some of
// the coords were already shipped (the content is then in flight ahead
// of this reply on the same ordered stream).
type pageResp struct {
	ID    uint32
	Pages []respPage
}

// respPage is one page of content keyed by its coordinate.
type respPage struct {
	Coord ckpt.PageCoord
	Data  []byte
}

func (m pageResp) encode() []byte {
	sz := 8
	for _, p := range m.Pages {
		sz += 20 + len(p.Data)
	}
	b := make([]byte, 8, sz)
	binary.BigEndian.PutUint32(b[0:], m.ID)
	binary.BigEndian.PutUint32(b[4:], uint32(len(m.Pages)))
	for _, p := range m.Pages {
		var e [20]byte
		binary.BigEndian.PutUint64(e[0:], p.Coord.VMAStart)
		binary.BigEndian.PutUint64(e[8:], p.Coord.Index)
		binary.BigEndian.PutUint32(e[16:], uint32(len(p.Data)))
		b = append(b, e[:]...)
		b = append(b, p.Data...)
	}
	return b
}

func decodePageResp(b []byte) (pageResp, error) {
	if len(b) < 8 {
		return pageResp{}, errors.New("migration: short PAGE_RESP")
	}
	m := pageResp{ID: binary.BigEndian.Uint32(b[0:])}
	n := int(binary.BigEndian.Uint32(b[4:]))
	if n < 0 || n > (len(b)-8)/20 {
		return pageResp{}, errors.New("migration: truncated PAGE_RESP")
	}
	off := 8
	m.Pages = make([]respPage, 0, n)
	for i := 0; i < n; i++ {
		if off+20 > len(b) {
			return pageResp{}, errors.New("migration: truncated PAGE_RESP page")
		}
		c := ckpt.PageCoord{
			VMAStart: binary.BigEndian.Uint64(b[off:]),
			Index:    binary.BigEndian.Uint64(b[off+8:]),
		}
		dl := int(binary.BigEndian.Uint32(b[off+16:]))
		off += 20
		if dl < 0 || off+dl > len(b) {
			return pageResp{}, errors.New("migration: truncated PAGE_RESP data")
		}
		m.Pages = append(m.Pages, respPage{Coord: c, Data: b[off : off+dl]})
		off += dl
	}
	return m, nil
}

// pullsDone reports the end of the degraded window back to the source:
// the destination filled its last hole at LastFillAt, after Demand
// demand-pulled pages and Prefetched prefetch-pushed ones, stalling the
// process for StallNs of virtual time in total.
type pullsDone struct {
	LastFillAt simtime.Time
	Demand     uint32
	Prefetched uint32
	StallNs    uint64
}

func (m pullsDone) encode() []byte {
	b := make([]byte, 24)
	binary.BigEndian.PutUint64(b[0:], uint64(m.LastFillAt))
	binary.BigEndian.PutUint32(b[8:], m.Demand)
	binary.BigEndian.PutUint32(b[12:], m.Prefetched)
	binary.BigEndian.PutUint64(b[16:], m.StallNs)
	return b
}

func decodePullsDone(b []byte) (pullsDone, error) {
	if len(b) < 24 {
		return pullsDone{}, errors.New("migration: short PULLS_DONE")
	}
	return pullsDone{
		LastFillAt: simtime.Time(binary.BigEndian.Uint64(b[0:])),
		Demand:     binary.BigEndian.Uint32(b[8:]),
		Prefetched: binary.BigEndian.Uint32(b[12:]),
		StallNs:    binary.BigEndian.Uint64(b[16:]),
	}, nil
}
