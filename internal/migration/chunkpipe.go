package migration

import (
	"errors"
	"fmt"

	"dvemig/internal/ckpt"
	"dvemig/internal/sockmig"
)

// Chunked checkpoint pipeline (PR 8). Historically every checkpoint
// payload — a precopy round's memory delta, the freeze image, the
// post-copy directory image — crossed the migd connection as one
// monolithic message: serialize everything, then hand one giant buffer
// to the transport. Chunking splits the payload into ChunkBytes-sized
// MsgChunk frames pushed under a bounded window, so the link starts
// draining the first frames while later ones are still being queued,
// and closes the stream with a MsgChunkEnd trailer carrying the frame
// count and total size for end-to-end verification.
//
// All frames of one payload are pumped at the same simulated instant
// (zero-delay continuations between window bursts), so the source-side
// encode scratch (ob.encBuf) stays valid for the stream's lifetime and
// event ordering is deterministic regardless of chunk size.

// defaultChunkWindow is the fallback for Config.ChunkWindow: how many
// chunk frames each event-loop step queues before yielding.
const defaultChunkWindow = 4

// sendPayload ships one checkpoint payload to the destination: as the
// legacy monolithic message when chunking is disabled, otherwise as a
// MsgChunk stream. commit marks the payload as the migration's final
// image; the commit fence (ob.commitSent) rises with the last frame —
// the trailer — because the destination acts only on a complete
// stream, so a cancellation mid-stream still rolls back safely.
func (ob *outbound) sendPayload(kind byte, legacy MsgType, payload []byte, commit bool) {
	size := ob.m.Config.ChunkBytes
	if size <= 0 {
		if commit {
			ob.commitSent = true
		}
		ob.send(legacy, payload)
		return
	}
	ob.chunkStream++
	stream := ob.chunkStream
	window := ob.m.Config.ChunkWindow
	if window <= 0 {
		window = defaultChunkWindow
	}
	var seq uint32
	off := 0
	var pump func()
	pump = func() {
		if ob.failed || ob.finished {
			return
		}
		for i := 0; i < window; i++ {
			end := off + size
			if end > len(payload) {
				end = len(payload)
			}
			ob.sendChunkFrame(kind, stream, seq, payload[off:end])
			if ob.failed || ob.finished {
				return
			}
			seq++
			off = end
			if off >= len(payload) {
				if commit {
					ob.commitSent = true
				}
				ob.send(MsgChunkEnd, chunkEnd{Kind: kind, Stream: stream,
					Chunks: seq, Total: uint64(len(payload))}.encode())
				return
			}
		}
		// Window exhausted: yield so the transport drains what is already
		// queued before the next burst, still at the same instant.
		ob.m.sched().After(0, "migd.chunk-pump", pump)
	}
	pump()
}

// sendChunkFrame frames one MsgChunk without gluing header and data
// into a temporary buffer (Send2 writes the parts back to back).
func (ob *outbound) sendChunkFrame(kind byte, stream, seq uint32, data []byte) {
	var h [chunkHdrBytes]byte
	putChunkHdr(&h, kind, stream, seq)
	if err := ob.conn.Send2(MsgChunk, h[:], data); err != nil {
		ob.fail(err)
	}
}

// --- destination side ----------------------------------------------------

// onChunk appends one frame to the open stream, opening one on the
// first frame. Any protocol violation — unknown kind, interleaved
// streams, a gap or reorder in the sequence — aborts the migration:
// the transport is ordered and reliable, so a malformed stream means a
// broken or hostile peer, not loss.
func (ib *inbound) onChunk(payload []byte) {
	ch, err := decodeChunk(payload)
	if err != nil {
		ib.abort(err)
		return
	}
	if !ib.active {
		ib.abort(errors.New("migration: CHUNK before MIGRATE_REQ"))
		return
	}
	if !ib.chunkOpen {
		switch ch.Kind {
		case chunkKindMemDelta, chunkKindFreeze, chunkKindPostImage:
		default:
			ib.abort(fmt.Errorf("migration: unknown chunk kind %d", ch.Kind))
			return
		}
		if ch.Seq != 0 {
			ib.abort(fmt.Errorf("migration: chunk stream %d opened at seq %d", ch.Stream, ch.Seq))
			return
		}
		ib.chunkOpen = true
		ib.chunkKind = ch.Kind
		ib.chunkStream = ch.Stream
		ib.chunkNext = 0
		ib.chunkBuf = ib.chunkBuf[:0]
	}
	if ch.Kind != ib.chunkKind || ch.Stream != ib.chunkStream {
		ib.abort(fmt.Errorf("migration: interleaved chunk streams (kind %d stream %d inside kind %d stream %d)",
			ch.Kind, ch.Stream, ib.chunkKind, ib.chunkStream))
		return
	}
	if ch.Seq != ib.chunkNext {
		ib.abort(fmt.Errorf("migration: chunk seq %d out of order (want %d)", ch.Seq, ib.chunkNext))
		return
	}
	if len(ib.chunkBuf)+len(ch.Data) > maxChunkStreamBytes {
		ib.abort(errors.New("migration: chunk stream exceeds size bound"))
		return
	}
	ib.chunkNext++
	ib.chunkBuf = append(ib.chunkBuf, ch.Data...)
}

// onChunkEnd verifies the trailer against what was reassembled and
// dispatches the payload into the same handlers the monolithic
// messages use.
func (ib *inbound) onChunkEnd(payload []byte) {
	ce, err := decodeChunkEnd(payload)
	if err != nil {
		ib.abort(err)
		return
	}
	if !ib.chunkOpen {
		ib.abort(errors.New("migration: CHUNK_END without an open stream"))
		return
	}
	if ce.Kind != ib.chunkKind || ce.Stream != ib.chunkStream {
		ib.abort(fmt.Errorf("migration: CHUNK_END kind %d stream %d does not match open stream (kind %d stream %d)",
			ce.Kind, ce.Stream, ib.chunkKind, ib.chunkStream))
		return
	}
	if ce.Chunks != ib.chunkNext || ce.Total != uint64(len(ib.chunkBuf)) {
		ib.abort(fmt.Errorf("migration: CHUNK_END declares %d frames/%d bytes, reassembled %d/%d",
			ce.Chunks, ce.Total, ib.chunkNext, len(ib.chunkBuf)))
		return
	}
	kind := ib.chunkKind
	buf := ib.chunkBuf
	ib.chunkOpen = false
	switch kind {
	case chunkKindMemDelta:
		// DecodeMemDelta copies every page and string out of the buffer,
		// so the stream scratch is free for the next round's stream.
		ib.applyMemDelta(buf)
	case chunkKindFreeze:
		// Freeze/post-image decoding hands out subslices of the payload
		// (the image is consumed during restore); sever the scratch so a
		// later append cannot scribble over it.
		ib.chunkBuf = nil
		ib.beginFreeze(buf)
	case chunkKindPostImage:
		ib.chunkBuf = nil
		ib.beginPostImage(buf)
	}
}

// --- payload handlers, shared by monolithic messages and chunk streams ---

// applyMemDelta folds one precopy round's memory delta into the shadow
// address space.
func (ib *inbound) applyMemDelta(payload []byte) {
	if !ib.active {
		ib.abort(errors.New("migration: MEM_DELTA before MIGRATE_REQ"))
		return
	}
	d, err := ckpt.DecodeMemDelta(payload)
	if err != nil {
		ib.abort(err)
		return
	}
	if err := ckpt.ApplyDelta(ib.shadowAS, d); err != nil {
		ib.abort(err)
	}
}

// beginFreeze handles the complete pre-copy freeze image: past the
// point of no return, the restore proceeds even if the source dies now
// (the source only dismantles its copy after RestoreDone, and a dead
// source cannot serve — either way exactly one owner remains).
func (ib *inbound) beginFreeze(payload []byte) {
	if !ib.active {
		ib.abort(errors.New("migration: FREEZE before MIGRATE_REQ"))
		return
	}
	fm, err := decodeFreezeMsg(payload)
	if err != nil {
		ib.abort(err)
		return
	}
	ib.restoring = true
	if ib.lease != nil {
		ib.m.sched().Cancel(ib.lease)
		ib.lease = nil
	}
	ib.restore(fm)
}

// beginPostImage handles the complete post-copy/hybrid handover image.
// Same point-of-no-return logic as beginFreeze: the restore (and the
// resume with holes) proceeds; from here the *pull lease* bounds source
// silence instead of the transfer lease.
func (ib *inbound) beginPostImage(payload []byte) {
	if !ib.active {
		ib.abort(errors.New("migration: POST_IMAGE before MIGRATE_REQ"))
		return
	}
	if !ib.post {
		ib.abort(errors.New("migration: POST_IMAGE on a pre-copy migration"))
		return
	}
	pm, err := decodePostImage(payload)
	if err != nil {
		ib.abort(err)
		return
	}
	ib.restoring = true
	if ib.lease != nil {
		ib.m.sched().Cancel(ib.lease)
		ib.lease = nil
	}
	ib.restorePost(pm)
}

// applySockDelta folds a socket delta into the staging store (sockets
// are never chunked — their deltas are small — but the handler lives
// here with its siblings).
func (ib *inbound) applySockDelta(payload []byte) {
	if !ib.active {
		ib.abort(errors.New("migration: SOCK_DELTA before MIGRATE_REQ"))
		return
	}
	sd, err := sockmig.DecodeSockDelta(payload)
	if err != nil {
		ib.abort(err)
		return
	}
	if err := ib.store.Apply(sd); err != nil {
		ib.abort(err)
	}
}
