package migration

import (
	"errors"
	"fmt"

	"dvemig/internal/ckpt"
	"dvemig/internal/netsim"
	"dvemig/internal/proc"
	"dvemig/internal/simtime"
	"dvemig/internal/sockmig"
)

// --- source side: hybrid round, post-image, pull server --------------------

// hybridRound runs hybrid's single bounded pre-copy round: one full
// dump of the resident set while the process keeps running, one wait of
// the initial timeout, then straight to the freeze point. Pages dirtied
// during the wait become the post-copy residual.
func (ob *outbound) hybridRound() {
	ob.metrics.Rounds++
	ob.m.firePhase(&ob.pt, PhasePrecopy, ob.metrics.Rounds, ob.p.PID)
	if ob.failed || ob.finished {
		return
	}
	trackCost := ob.shipDeltaRound()
	ob.m.sched().After(ob.timeout+trackCost, "migd.hybrid", func() {
		if ob.failed || ob.finished {
			return
		}
		ob.freeze()
	})
}

// sendPostImage is the post-copy analogue of sendFreeze: instead of the
// final memory delta it ships the page directory — geometry plus a
// present/absent verdict per resident page. For pure post-copy (hybrid
// false) everything is absent; for hybrid a page is present iff its
// dirty bit is clear, i.e. the bounded round's copy on the destination
// is still authoritative.
func (ob *outbound) sendPostImage(sd *sockmig.SockDelta, hybrid bool) {
	if ob.m.Config.Strategy != sockmig.Iterative && sd == nil {
		sd = &sockmig.SockDelta{}
	}
	var present func(v *proc.VMA, idx uint64, pg *proc.Page) bool
	if hybrid {
		present = func(_ *proc.VMA, _ uint64, pg *proc.Page) bool { return !pg.Dirty }
	}
	dir := ckpt.BuildPageDir(ob.p.AS, present)
	ob.pullDir = dir
	ob.shipped = make(map[ckpt.PageCoord]bool, len(dir.Absent))
	pm := postImage{
		FreezeStart: ob.metrics.FreezeStart,
		Image:       ob.buildImage().Encode(),
		Dir:         dir.Encode(),
	}
	ob.metrics.FreezeMemBytes += uint64(len(pm.Dir))
	if sd != nil {
		pm.SockDelta = sd.Encode()
		ob.metrics.FreezeSockBytes += uint64(len(pm.SockDelta))
		if ob.m.Config.Strategy != sockmig.Iterative {
			ob.metrics.TCPMigrated, ob.metrics.UDPMigrated = countSockets(ob.p)
		}
	}
	// The commit fence rises with the stream's final frame (sendPayload);
	// the destination restores only on a complete image either way.
	ob.sendPayload(chunkKindPostImage, MsgPostImage, pm.encode(), true)
}

// postSourceMsg handles the pull-protocol messages on the source; false
// means the message type is not part of the post-copy protocol.
func (ob *outbound) postSourceMsg(t MsgType, payload []byte) bool {
	switch t {
	case MsgResumed:
		rd, err := decodeRestoreDone(payload)
		if err != nil {
			ob.fail(err)
			return true
		}
		ob.handleResumed(rd)
	case MsgPageReq:
		pr, err := decodePageReq(payload)
		if err != nil {
			ob.fail(err)
			return true
		}
		ob.servePull(pr)
	case MsgPullsDone:
		pd, err := decodePullsDone(payload)
		if err != nil {
			ob.fail(err)
			return true
		}
		ob.finishPost(pd)
	default:
		return false
	}
	return true
}

// handleResumed is the post-copy point of no return: the process runs
// on the destination from here on, so the source can never thaw its
// copy again. The safety nets (local capture filters, the translation
// rollback plan) are dropped, the control connection is reclassified as
// page-pull traffic, and the prefetch sweep starts.
func (ob *outbound) handleResumed(rd restoreDone) {
	if ob.handedOver {
		return
	}
	ob.handedOver = true
	ob.resumeAt = rd.ResumeAt
	ob.metrics.ResumeAt = rd.ResumeAt
	ob.metrics.FreezeTime = rd.ResumeAt - ob.metrics.FreezeStart
	ob.metrics.Captured = rd.Captured
	ob.metrics.Reinjected = rd.Reinjected
	for _, f := range ob.localFilters {
		ob.m.Capture.Drop(f)
	}
	ob.localFilters = nil
	ob.rollback = nil
	ob.conn.Socket().Class = netsim.ClassPagePull
	ob.m.firePhase(&ob.pt, PhaseResume, 0, ob.p.PID)
	if ob.failed || ob.finished {
		return // a phase hook crashed this node or aborted
	}
	ob.renewPullWatch()
	ob.prefetchPump()
}

// renewPullWatch (re)arms the destination-silence watchdog that bounds
// the pull phase after handover: the deadline no longer applies (the
// migration cannot be aborted once the destination runs the process),
// so a destination that dies mid-pull would otherwise leave the frozen
// source shell around forever. Reuses the InboundLease bound — both are
// "how long may the peer stay silent mid-protocol".
func (ob *outbound) renewPullWatch() {
	d := ob.m.Config.InboundLease
	if d <= 0 {
		return
	}
	if ob.pullWatch != nil {
		ob.m.sched().Cancel(ob.pullWatch)
	}
	ob.pullWatch = ob.m.sched().After(d, "migd.pull-watch", func() {
		ob.pullWatch = nil
		if ob.finished || ob.failed {
			return
		}
		ob.fail(errors.New("migration: destination went silent after handover"))
	})
}

// prefetchPump is the background sweep: every PrefetchInterval it
// pushes up to PrefetchBatch not-yet-shipped pages in canonical order,
// until everything has been shipped or the migration ends.
func (ob *outbound) prefetchPump() {
	interval := ob.m.Config.PrefetchInterval
	if interval <= 0 {
		return // sweep disabled: pure demand paging
	}
	ob.m.sched().After(interval, "migd.prefetch", func() {
		if ob.failed || ob.finished || !ob.m.Node.Alive {
			return
		}
		batch := ob.nextPrefetchBatch()
		if len(batch) == 0 {
			return // everything shipped; awaiting PULLS_DONE
		}
		ob.prefetchBatches++
		ob.shipPages(0, batch)
		if ob.failed || ob.finished {
			return
		}
		ob.m.firePhase(&ob.pt, PhasePrefetch, ob.prefetchBatches, ob.p.PID)
		if ob.failed || ob.finished {
			return
		}
		ob.prefetchPump()
	})
}

func (ob *outbound) nextPrefetchBatch() []ckpt.PageCoord {
	max := ob.m.Config.PrefetchBatch
	if max <= 0 {
		max = 8
	}
	var batch []ckpt.PageCoord
	for ob.shipCursor < len(ob.pullDir.Absent) && len(batch) < max {
		c := ob.pullDir.Absent[ob.shipCursor]
		ob.shipCursor++
		if ob.shipped[c] {
			continue // demand pull got there first
		}
		batch = append(batch, c)
	}
	return batch
}

// shipPages sends page content, skipping anything already shipped so
// every page crosses the wire exactly once (duplicates are counted, and
// the earlier shipment is ordered ahead of the — then empty — reply on
// the same TCP stream).
func (ob *outbound) shipPages(id uint32, coords []ckpt.PageCoord) {
	resp := pageResp{ID: id}
	for _, c := range coords {
		if ob.shipped[c] {
			ob.metrics.PullDuplicates++
			continue
		}
		data, ok := ckpt.ExtractPage(ob.p.AS, c)
		if !ok {
			ob.fail(fmt.Errorf("migration: pull of non-resident page %#x+%d", c.VMAStart, c.Index))
			return
		}
		ob.shipped[c] = true
		ob.metrics.PagesShipped++
		ob.metrics.MemPageBytes += uint64(len(data))
		if id != 0 {
			ob.metrics.PagesDemand++
		} else {
			ob.metrics.PagesPrefetched++
		}
		if ob.m.OnPageShip != nil {
			ob.m.OnPageShip(c, id != 0)
		}
		resp.Pages = append(resp.Pages, respPage{Coord: c, Data: data})
	}
	ob.send(MsgPageResp, resp.encode())
}

// servePull answers one demand pull. Stale-epoch requests are fenced:
// if the service's epoch moved past the one the destination restored
// under, the puller's ownership was superseded (a failover promoted
// someone else) and feeding it pages would resurrect a fenced owner.
func (ob *outbound) servePull(pr pageReq) {
	if !ob.handedOver {
		ob.fail(errors.New("migration: PAGE_REQ before RESUMED"))
		return
	}
	if cur := ob.m.Epochs.Current(ob.p.Name); pr.Epoch != cur {
		ob.conn.Send(MsgAbort, []byte(fmt.Sprintf("stale epoch %d pull fenced (current %d)", pr.Epoch, cur)))
		ob.fail(fmt.Errorf("migration: fenced stale-epoch pull (epoch %d, current %d)", pr.Epoch, cur))
		return
	}
	ob.pullsServed++
	ob.shipPages(pr.ID, pr.Coords)
	if ob.failed || ob.finished {
		return
	}
	ob.m.firePhase(&ob.pt, PhasePull, ob.pullsServed, ob.p.PID)
}

// finishPost completes a post-copy migration on the source: the
// destination filled its last hole, so the frozen shell here can go.
func (ob *outbound) finishPost(pd pullsDone) {
	ob.finished = true
	delete(ob.m.active, ob.p.PID)
	if ob.pullWatch != nil {
		ob.m.sched().Cancel(ob.pullWatch)
		ob.pullWatch = nil
	}
	ob.metrics.LastFillAt = pd.LastFillAt
	ob.metrics.StallTime = simtime.Duration(pd.StallNs)
	ob.metrics.TotalTime = pd.LastFillAt - ob.metrics.Start
	ob.metrics.DegradedWindow = (ob.metrics.FreezeStart - ob.metrics.Start) +
		(pd.LastFillAt - ob.resumeAt)
	tcp, _ := ob.p.Sockets()
	for _, sk := range tcp {
		if ob.inCluster(sk.RemoteIP) {
			ob.m.Transd.Translator().RemoveFlow(netsim.ProtoTCP, sk.RemoteIP, sk.LocalPort, sk.RemotePort)
		}
	}
	ob.p.State = proc.ProcExited
	ob.m.Node.Detach(ob.p)
	ob.conn.Close()
	ob.m.Completed = append(ob.m.Completed, ob.metrics)
	if ob.m.Obs != nil {
		ob.m.obsm.freezeUs.Observe(float64(ob.metrics.FreezeTime) / 1e3)
		ob.m.obsm.downtimeUs.Observe(float64(ob.metrics.FreezeTime+ob.metrics.StallTime) / 1e3)
		ob.pt.root.SetInt("freeze_us", int64(ob.metrics.FreezeTime)/1e3)
		ob.pt.root.SetInt("degraded_us", int64(ob.metrics.DegradedWindow)/1e3)
		ob.pt.root.SetInt("pages_demand", int64(ob.metrics.PagesDemand))
		ob.pt.root.SetInt("pages_prefetched", int64(ob.metrics.PagesPrefetched))
		ob.observeFreezeAttr()
	}
	ob.m.firePhase(&ob.pt, PhaseDone, 0, ob.p.PID)
	if ob.done != nil {
		ob.done(ob.metrics, nil)
	}
}

// orphan is fail past the point of no return: the process lives (or
// died) on the destination, so the frozen source shell must never thaw.
// It is reaped, the behavior-registry entry dropped, and the migration
// reported aborted — recovery of a destination that died after resume
// is failover territory (epoch promotion), not rollback.
func (ob *outbound) orphan(err error) {
	ob.failed = true
	delete(ob.m.active, ob.p.PID)
	if ob.pullWatch != nil {
		ob.m.sched().Cancel(ob.pullWatch)
		ob.pullWatch = nil
	}
	takeBehavior(ob.token)
	for _, f := range ob.localFilters {
		ob.m.Capture.Drop(f)
	}
	ob.localFilters = nil
	ob.conn.Close()
	ob.p.State = proc.ProcExited
	ob.m.Node.Detach(ob.p)
	ob.metrics.Aborted = true
	ob.metrics.AbortReason = err.Error()
	ob.m.Aborted = append(ob.m.Aborted, ob.metrics)
	ob.m.firePhase(&ob.pt, PhaseAborted, 0, ob.p.PID)
	if ob.done != nil {
		ob.done(ob.metrics, err)
	}
}

// --- destination side: partial restore and the demand puller ---------------

// restorePost is the post-copy restore entry: apply the page directory
// to the shadow space (geometry to the frozen shape, holes marked
// absent), fold in the socket payload, then finish the restore after
// the simulated restore cost.
func (ib *inbound) restorePost(pm postImage) {
	ib.m.firePhase(&ib.pt, PhaseRestore, 0, ib.req.PID)
	if !ib.m.Node.Alive {
		ib.cleanup()
		return // a phase hook crashed this node
	}
	img, err := ckpt.DecodeImage(pm.Image)
	if err != nil {
		ib.abort(err)
		return
	}
	dir, err := ckpt.DecodePageDir(pm.Dir)
	if err != nil {
		ib.abort(err)
		return
	}
	if err := ckpt.ApplyPageDir(ib.shadowAS, dir); err != nil {
		ib.abort(err)
		return
	}
	ib.holes = len(dir.Absent)
	if len(pm.SockDelta) > 0 {
		sd, err := sockmig.DecodeSockDelta(pm.SockDelta)
		if err != nil {
			ib.abort(err)
			return
		}
		if err := ib.store.Apply(sd); err != nil {
			ib.abort(err)
			return
		}
	}
	nsock := ib.store.TCPCount() + ib.store.UDPCount()
	cost := simtime.Duration(nsock)*ib.m.Config.Costs.SockRestore + ib.m.Config.Costs.FreezeOverhead
	ib.m.sched().After(cost, "migd.restore", func() {
		ib.finishRestore(img)
	})
}

// puller is the destination's demand-paging client: it turns absent-page
// faults into PAGE_REQ messages, stalls the process loop while a demand
// fault is outstanding, folds arriving content back in, and declares the
// drain once the last hole fills. While holes remain it holds a lease on
// the source's liveness — a destination can never serve with missing
// pages, so a silent source means the hole-y process must die.
type puller struct {
	ib      *inbound
	p       *proc.Process
	holes   int
	pending map[ckpt.PageCoord]bool

	nextID     uint32
	demand     uint32
	prefetched uint32
	stallStart simtime.Time
	stallNs    uint64
	lastFill   simtime.Time
	lease      *simtime.Event
	done       bool
}

func newPuller(ib *inbound, p *proc.Process) *puller {
	pl := &puller{ib: ib, p: p, holes: ib.holes, pending: make(map[ckpt.PageCoord]bool)}
	p.AS.OnMissing = pl.fault
	return pl
}

// fault is the AddressSpace.OnMissing hook: request the page and stall
// the process loop until every outstanding demand fault is satisfied.
func (pl *puller) fault(vmaStart, pageIndex uint64) {
	if pl.done {
		return
	}
	c := ckpt.PageCoord{VMAStart: vmaStart, Index: pageIndex}
	if pl.pending[c] {
		return // already requested
	}
	pl.pending[c] = true
	if !pl.p.Stalled {
		pl.p.Stalled = true
		pl.stallStart = pl.ib.m.sched().Now()
	}
	pl.nextID++
	pl.ib.conn.Send(MsgPageReq,
		pageReq{ID: pl.nextID, Epoch: pl.ib.req.Epoch, Coords: []ckpt.PageCoord{c}}.encode())
}

// resume announces the process is live with holes: downtime ends here.
func (pl *puller) resume(now simtime.Time, captured, reinjected uint32) {
	ib := pl.ib
	ib.conn.Send(MsgResumed,
		restoreDone{ResumeAt: now, Captured: captured, Reinjected: reinjected}.encode())
	ib.conn.Socket().Class = netsim.ClassPagePull
	pl.lastFill = now
	if pl.holes <= 0 {
		pl.drained(now)
		return
	}
	pl.renewLease()
}

// onResp folds arriving page content in. FillPage rejects a fill of a
// resident page, which is how a violated exactly-once guarantee
// surfaces (counted on the migrator, asserted by the property tests).
func (pl *puller) onResp(resp pageResp) {
	if pl.done {
		return
	}
	now := pl.ib.m.sched().Now()
	for _, pg := range resp.Pages {
		if err := pl.p.AS.FillPage(pg.Coord.VMAStart, pg.Coord.Index, pg.Data); err != nil {
			pl.ib.m.DupFills++
			continue
		}
		pl.holes--
		pl.lastFill = now
		delete(pl.pending, pg.Coord)
		if resp.ID != 0 {
			pl.demand++
		} else {
			pl.prefetched++
		}
	}
	if len(pl.pending) == 0 && pl.p.Stalled {
		pl.stallNs += uint64(now - pl.stallStart)
		pl.p.Stalled = false
	}
	if pl.holes <= 0 {
		pl.drained(now)
		return
	}
	pl.renewLease()
}

// drained: the last hole filled; the degraded window ends.
func (pl *puller) drained(now simtime.Time) {
	pl.done = true
	pl.p.AS.OnMissing = nil
	if pl.p.Stalled {
		pl.stallNs += uint64(now - pl.stallStart)
		pl.p.Stalled = false
	}
	if pl.lease != nil {
		pl.ib.m.sched().Cancel(pl.lease)
		pl.lease = nil
	}
	ib := pl.ib
	ib.m.firePhase(&ib.pt, PhaseDrained, 0, ib.req.PID)
	ib.conn.Send(MsgPullsDone, pullsDone{
		LastFillAt: pl.lastFill, Demand: pl.demand,
		Prefetched: pl.prefetched, StallNs: pl.stallNs,
	}.encode())
}

// renewLease (re)arms the source-silence bound of the pull phase.
func (pl *puller) renewLease() {
	d := pl.ib.m.Config.InboundLease
	if d <= 0 {
		return
	}
	if pl.lease != nil {
		pl.ib.m.sched().Cancel(pl.lease)
	}
	pl.lease = pl.ib.m.sched().After(d, "migd.pull-lease", func() {
		pl.lease = nil
		if pl.done {
			return
		}
		pl.ib.m.LeaseExpired++
		pl.destroy()
		pl.ib.cleanup()
		pl.ib.conn.Close()
	})
}

// destroy dismantles a hole-y process whose source is gone: it can
// never serve again (any read may land on a page it does not have), so
// it is torn down fence-style — sockets unhash before they close, so
// no FIN or RST escapes a node that was never the legitimate owner of
// a complete process image.
func (pl *puller) destroy() {
	if pl.done {
		return
	}
	pl.done = true
	p := pl.p
	p.AS.OnMissing = nil
	p.Stalled = false
	if pl.lease != nil {
		pl.ib.m.sched().Cancel(pl.lease)
		pl.lease = nil
	}
	n := pl.ib.m.Node
	n.StopLoop(p)
	tcp, udp := p.Sockets()
	for _, sk := range tcp {
		if !sk.Unhashed() {
			sk.Unhash()
		}
		sk.Close()
	}
	for _, us := range udp {
		if !us.Unhashed() {
			us.Unhash()
		}
		us.Close()
	}
	p.State = proc.ProcExited
	n.Detach(p)
}
