package obs

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"dvemig/internal/simtime"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite testdata golden files")

// TestWriteTimelineGolden pins the timeline's same-timestamp ordering
// against a golden file. The capture is deliberately adversarial: all
// events land on the same virtual instant and are *recorded* in
// reverse-sorted order (instant first, track "zulu" before "alpha",
// high span IDs before low). The timeline must order by (time, track,
// spans-before-instants, span ID) — never by incidental record
// interleaving — so the golden bytes are the contract.
func TestWriteTimelineGolden(t *testing.T) {
	sched := simtime.NewScheduler()
	o := New(sched)
	tr := o.T()
	sched.After(2e6, "warp", func() {})
	sched.Run() // all events below stamp t=2ms

	tr.Instant("zulu", "late-instant", Attr{Key: "k", Val: "v"})
	zr := tr.Start("zulu", "zulu-root")
	zc := zr.Child("zulu-child")
	tr.Instant("alpha", "alpha-instant")
	ar := tr.Start("alpha", "alpha-root")
	ar.SetInt("n", 7)
	ar.CloseAt(2e6)
	zc.CloseAt(2e6)
	zr.CloseAt(2e6)
	c := o.Capture("tie-break")

	var buf bytes.Buffer
	if err := WriteTimeline(&buf, c); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "timeline_tiebreak.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (regenerate with -update-golden)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("timeline drifted from golden file:\n--- got ---\n%s--- want ---\n%s", buf.Bytes(), want)
	}
}
