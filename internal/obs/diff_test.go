package obs

import (
	"bytes"
	"strings"
	"testing"

	"dvemig/internal/simtime"
)

// buildCapture makes a small two-node trace: a root "migration" span on
// node1 with a "freeze" child, and a cross-node "inbound" span on node2
// parented into the root — plus a couple of metrics.
func buildCapture(t *testing.T, freezeCost float64) *Capture {
	t.Helper()
	sched := simtime.NewScheduler()
	o := New(sched)
	root := o.T().Start("node1", "migration")
	sched.After(1e6, "x", func() {})
	sched.Run()
	fr := root.Child("freeze")
	inb := o.T().StartLinked("node2", "inbound", root.Context())
	fr.Close()
	inb.Close()
	root.Close()
	o.M().Counter("mig/completed_total").Inc()
	o.M().Histogram("mig/freeze_us", DurationBucketsUs).Observe(freezeCost)
	return o.Capture("run")
}

func exportBoth(t *testing.T, c *Capture) (traceJSON, metricsTxt []byte) {
	t.Helper()
	var tb, mb bytes.Buffer
	if err := WriteChromeTrace(&tb, c); err != nil {
		t.Fatal(err)
	}
	if err := WriteMetricsText(&mb, c); err != nil {
		t.Fatal(err)
	}
	return tb.Bytes(), mb.Bytes()
}

func TestDiffIdenticalArtifacts(t *testing.T) {
	ta, ma := exportBoth(t, buildCapture(t, 500))
	tb, mb := exportBoth(t, buildCapture(t, 500))
	if d, err := DiffTraceJSON(ta, tb); err != nil || d != nil {
		t.Fatalf("trace diff of identical runs: %v, %v", d, err)
	}
	if d, err := DiffMetricsText(ma, mb); err != nil || d != nil {
		t.Fatalf("metrics diff of identical runs: %v, %v", d, err)
	}
}

// TestDiffLocalizesInjectedTraceDivergence is the acceptance check: an
// artificially injected divergence (one span attribute changed between
// two otherwise identical exports) must be localized to that exact span,
// with its causal ancestry running back to the migration root.
func TestDiffLocalizesInjectedTraceDivergence(t *testing.T) {
	ta, _ := exportBoth(t, buildCapture(t, 500))
	// Inject: rebuild the second capture identically, then poison the
	// cross-node inbound span's attrs before export.
	c := buildCapture(t, 500)
	for _, s := range c.Trace.Spans {
		if s.Name == "inbound" {
			s.SetAttr("poison", "1")
		}
	}
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, c); err != nil {
		t.Fatal(err)
	}
	d, err := DiffTraceJSON(ta, buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if d == nil {
		t.Fatal("injected divergence not detected")
	}
	if !strings.Contains(d.Path, `span "inbound"`) {
		t.Fatalf("divergence not localized to the poisoned span: %s", d.Path)
	}
	if !strings.Contains(d.Detail, "poison") {
		t.Fatalf("detail does not name the differing field: %s", d.Detail)
	}
	if len(d.Ancestry) < 2 || !strings.Contains(d.Ancestry[0], "migration") ||
		!strings.Contains(d.Ancestry[len(d.Ancestry)-1], "inbound") {
		t.Fatalf("ancestry does not run root→divergent span: %v", d.Ancestry)
	}
	// The ancestry names the tracks, making the cross-node hop visible.
	if !strings.Contains(d.Ancestry[0], "node1") || !strings.Contains(d.Ancestry[1], "node2") {
		t.Fatalf("ancestry lacks track attribution: %v", d.Ancestry)
	}
}

func TestDiffLocalizesInjectedMetricDivergence(t *testing.T) {
	_, ma := exportBoth(t, buildCapture(t, 500))
	_, mb := exportBoth(t, buildCapture(t, 900)) // different freeze cost
	d, err := DiffMetricsText(ma, mb)
	if err != nil {
		t.Fatal(err)
	}
	if d == nil {
		t.Fatal("metric divergence not detected")
	}
	if d.Path != "mig/freeze_us" {
		t.Fatalf("divergence not localized to the changed metric: %s", d.Path)
	}
	if !strings.Contains(d.Detail, "A:") || !strings.Contains(d.Detail, "B:") {
		t.Fatalf("detail lacks both lines: %s", d.Detail)
	}
}

func TestDiffTraceLengthMismatch(t *testing.T) {
	ta, _ := exportBoth(t, buildCapture(t, 500))
	// Second run has an extra instant.
	c := buildCapture(t, 500)
	c.Trace.Instant("node1", "extra")
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, c); err != nil {
		t.Fatal(err)
	}
	d, err := DiffTraceJSON(ta, buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if d == nil || !strings.Contains(d.Detail, "event count differs") {
		t.Fatalf("length mismatch not reported: %+v", d)
	}
}

func TestDiffRejectsGarbage(t *testing.T) {
	if _, err := DiffTraceJSON([]byte("not json"), []byte("{}")); err == nil {
		t.Fatal("garbage trace accepted")
	}
	if _, err := DiffTraceJSON([]byte(`{"traceEvents":[]}`), []byte(`{"other":1}`)); err == nil {
		t.Fatal("trace without traceEvents accepted")
	}
}
