package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"

	"dvemig/internal/simtime"
)

// chromeEvent is one entry of the Chrome trace_event format
// (https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU),
// the subset Perfetto and chrome://tracing load: complete events ("X"),
// instant events ("i") and metadata ("M"). Timestamps are microseconds
// of *virtual* time.
type chromeEvent struct {
	Name  string            `json:"name"`
	Cat   string            `json:"cat,omitempty"`
	Ph    string            `json:"ph"`
	Ts    float64           `json:"ts"`
	Dur   *float64          `json:"dur,omitempty"`
	Pid   int               `json:"pid"`
	Tid   int               `json:"tid"`
	ID    string            `json:"id,omitempty"` // flow-event binding id
	BP    string            `json:"bp,omitempty"` // flow binding point ("e" = enclosing slice)
	Scope string            `json:"s,omitempty"`
	Args  map[string]string `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

func usOf(t simtime.Time) float64 { return float64(t) / 1e3 }

func attrMap(attrs []Attr) map[string]string {
	if len(attrs) == 0 {
		return nil
	}
	m := make(map[string]string, len(attrs))
	for _, a := range attrs {
		m[a.Key] = a.Val
	}
	return m
}

// spanArgs builds the export args for a span: user attributes plus the
// causal coordinates (span_id/trace_id/parent_id) that tracecheck
// -connected and obsdiff consume to reconstruct the span tree.
func spanArgs(s *Span) map[string]string {
	m := make(map[string]string, len(s.Attrs)+3)
	for _, a := range s.Attrs {
		m[a.Key] = a.Val
	}
	m["span_id"] = itoa(int64(s.ID))
	m["trace_id"] = itoa(int64(s.TraceID))
	if s.Parent != nil {
		m["parent_id"] = itoa(int64(s.Parent.ID))
	}
	return m
}

// WriteChromeTrace writes the captures as one Chrome trace_event JSON
// document. Each capture becomes one "process" (pid = 1-based capture
// index, named by the capture label); each track within a capture
// becomes one "thread" (tid in first-use order). Spans emit complete
// ("X") events — Perfetto nests them by containment — and instants emit
// thread-scoped "i" events.
//
// The output is deterministic: encoding/json sorts map keys, events are
// emitted in recorded order, and all values derive from virtual time.
func WriteChromeTrace(w io.Writer, caps ...*Capture) error {
	doc := chromeTrace{DisplayTimeUnit: "ms", TraceEvents: []chromeEvent{}}
	for i, c := range caps {
		if c == nil || c.Trace == nil {
			continue
		}
		pid := i + 1
		c.Trace.closeOpen()
		label := c.Label
		if label == "" {
			label = fmt.Sprintf("run-%d", pid)
		}
		doc.TraceEvents = append(doc.TraceEvents, chromeEvent{
			Name: "process_name", Ph: "M", Pid: pid,
			Args: map[string]string{"name": label},
		})
		tids := map[string]int{}
		tidOf := func(track string) int {
			id, ok := tids[track]
			if !ok {
				id = len(tids) + 1
				tids[track] = id
				doc.TraceEvents = append(doc.TraceEvents, chromeEvent{
					Name: "thread_name", Ph: "M", Pid: pid, Tid: id,
					Args: map[string]string{"name": track},
				})
			}
			return id
		}
		for _, s := range c.Trace.Spans {
			dur := usOf(s.End) - usOf(s.Start)
			doc.TraceEvents = append(doc.TraceEvents, chromeEvent{
				Name: s.Name, Cat: "span", Ph: "X",
				Ts: usOf(s.Start), Dur: &dur,
				Pid: pid, Tid: tidOf(s.Track),
				Args: spanArgs(s),
			})
			// Cross-track parent links render as Perfetto flow arrows:
			// a flow start ("s") inside the parent slice pointing at a
			// flow finish ("f") bound to the child slice. Same-track
			// links nest by containment and need no arrow.
			if p := s.Parent; p != nil && p.Track != s.Track {
				fid := fmt.Sprintf("p%d.s%d", pid, s.ID)
				at := s.Start
				if at > p.End {
					at = p.End
				}
				if at < p.Start {
					at = p.Start
				}
				doc.TraceEvents = append(doc.TraceEvents, chromeEvent{
					Name: "causal", Cat: "flow", Ph: "s",
					Ts: usOf(at), Pid: pid, Tid: tidOf(p.Track), ID: fid,
				})
				doc.TraceEvents = append(doc.TraceEvents, chromeEvent{
					Name: "causal", Cat: "flow", Ph: "f", BP: "e",
					Ts: usOf(s.Start), Pid: pid, Tid: tidOf(s.Track), ID: fid,
				})
			}
		}
		for _, in := range c.Trace.Instants {
			doc.TraceEvents = append(doc.TraceEvents, chromeEvent{
				Name: in.Name, Cat: "instant", Ph: "i",
				Ts: usOf(in.At), Pid: pid, Tid: tidOf(in.Track), Scope: "t",
				Args: attrMap(in.Attrs),
			})
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(doc)
}

// ValidateChromeTrace is the minimal schema check the CI smoke job
// runs: the document parses, has a traceEvents array, every event
// carries name/ph/pid and a numeric ts, and at least one complete ("X")
// span with a duration is present.
func ValidateChromeTrace(data []byte) error {
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		return fmt.Errorf("obs: trace is not valid JSON: %w", err)
	}
	if doc.TraceEvents == nil {
		return fmt.Errorf("obs: trace has no traceEvents array")
	}
	spans := 0
	for i, ev := range doc.TraceEvents {
		for _, key := range []string{"name", "ph", "ts", "pid"} {
			if _, ok := ev[key]; !ok {
				return fmt.Errorf("obs: traceEvents[%d] missing %q", i, key)
			}
		}
		if _, ok := ev["ts"].(float64); !ok {
			return fmt.Errorf("obs: traceEvents[%d] ts is not numeric", i)
		}
		if ev["ph"] == "X" {
			if _, ok := ev["dur"].(float64); !ok {
				return fmt.Errorf("obs: traceEvents[%d] complete event without dur", i)
			}
			spans++
		}
	}
	if spans == 0 {
		return fmt.Errorf("obs: trace contains no complete (X) spans")
	}
	return nil
}

// WriteTimeline renders the captures as a plain-text timeline: one line
// per span begin/end and per instant, in virtual-time order (stable on
// ties: spans before instants, then record order), indented by span
// depth. The human-readable sibling of the Chrome export.
func WriteTimeline(w io.Writer, caps ...*Capture) error {
	bw := bufio.NewWriter(w)
	for _, c := range caps {
		if c == nil || c.Trace == nil {
			continue
		}
		c.Trace.closeOpen()
		if c.Label != "" {
			fmt.Fprintf(bw, "=== %s ===\n", c.Label)
		}
		type line struct {
			at    simtime.Time
			track string
			kind  int // 0 = span begin, 1 = instant (spans sort first on full ties)
			id    uint64
			text  string
		}
		var lines []line
		depthOf := func(s *Span) int {
			d := 0
			for p := s.Parent; p != nil; p = p.Parent {
				d++
			}
			return d
		}
		for _, s := range c.Trace.Spans {
			ind := strings.Repeat("  ", depthOf(s))
			attrs := ""
			for _, a := range s.Attrs {
				attrs += fmt.Sprintf(" %s=%s", a.Key, a.Val)
			}
			lines = append(lines, line{at: s.Start, track: s.Track, kind: 0, id: s.ID, text: fmt.Sprintf(
				"%12.3fms %-8s %s%s [%.3fms]%s", usOf(s.Start)/1e3, s.Track, ind, s.Name,
				usOf(s.End-s.Start)/1e3, attrs)})
		}
		for i, in := range c.Trace.Instants {
			attrs := ""
			for _, a := range in.Attrs {
				attrs += fmt.Sprintf(" %s=%s", a.Key, a.Val)
			}
			lines = append(lines, line{at: in.At, track: in.Track, kind: 1, id: uint64(i + 1), text: fmt.Sprintf(
				"%12.3fms %-8s * %s%s", usOf(in.At)/1e3, in.Track, in.Name, attrs)})
		}
		// Same-timestamp events order by (node, span ID): ties are broken
		// first by track name, then spans before instants, then by span
		// ID (creation order) — never by incidental record interleaving.
		sort.SliceStable(lines, func(i, j int) bool {
			a, b := lines[i], lines[j]
			if a.at != b.at {
				return a.at < b.at
			}
			if a.track != b.track {
				return a.track < b.track
			}
			if a.kind != b.kind {
				return a.kind < b.kind
			}
			return a.id < b.id
		})
		for _, l := range lines {
			bw.WriteString(l.text)
			bw.WriteByte('\n')
		}
	}
	return bw.Flush()
}

// WriteMetricsText writes each capture's snapshot (labelled) as plain
// text — the -metrics-out format.
func WriteMetricsText(w io.Writer, caps ...*Capture) error {
	bw := bufio.NewWriter(w)
	for _, c := range caps {
		if c == nil || c.Snap == nil {
			continue
		}
		if c.Label != "" {
			fmt.Fprintf(bw, "=== %s ===\n", c.Label)
		}
		bw.WriteString(c.Snap.Text())
	}
	return bw.Flush()
}

// SeriesDocKind is the top-level marker of a -series-out JSON artifact;
// tracecheck auto-detects series files by it.
const SeriesDocKind = "dvemig-series"

// seriesDoc is the -series-out JSON schema: one document per export,
// one entry per capture, one series per sampled metric. Field order is
// fixed by the struct, values derive from virtual time — byte-identical
// across runs and worker counts.
type seriesDoc struct {
	Kind     string          `json:"kind"`
	Captures []seriesCapture `json:"captures"`
}

type seriesCapture struct {
	Label      string        `json:"label"`
	PeriodNs   int64         `json:"period_ns"`
	MaxSamples int           `json:"max_samples"`
	Series     []seriesEntry `json:"series"`
	SLO        []sloEntry    `json:"slo,omitempty"`
}

type seriesEntry struct {
	Name  string    `json:"name"`
	Kind  string    `json:"kind"`
	Total uint64    `json:"total"`
	T     []int64   `json:"t_ns"`
	V     []float64 `json:"v"`
}

type sloEntry struct {
	Name     string      `json:"name"`
	Target   float64     `json:"target"`
	Overall  float64     `json:"overall"`
	Met      bool        `json:"met"`
	Breaches int         `json:"breach_windows"`
	First    int         `json:"first_breach"`
	Burns    []burnEntry `json:"burns,omitempty"`
}

type burnEntry struct {
	Len    int     `json:"len"`
	Peak   float64 `json:"peak"`
	PeakAt int     `json:"peak_at"`
}

func seriesDocOf(caps ...*Capture) seriesDoc {
	doc := seriesDoc{Kind: SeriesDocKind, Captures: []seriesCapture{}}
	for _, c := range caps {
		if c == nil || c.Series == nil {
			continue
		}
		sc := seriesCapture{
			Label:      c.Label,
			PeriodNs:   int64(c.SamplePeriod),
			MaxSamples: c.Series.Max,
			Series:     []seriesEntry{},
		}
		for _, name := range c.Series.Names() {
			ts := c.Series.Series(name)
			t, v := ts.Points()
			e := seriesEntry{Name: name, Kind: string(ts.Kind), Total: ts.Total(),
				T: make([]int64, len(t)), V: v}
			for i, at := range t {
				e.T[i] = int64(at)
			}
			sc.Series = append(sc.Series, e)
		}
		for _, r := range c.SLO {
			se := sloEntry{Name: r.Name, Target: r.Objective.Max, Overall: r.Overall,
				Met: r.Met, Breaches: r.BreachWindows, First: r.FirstBreach}
			for _, b := range r.Burns {
				se.Burns = append(se.Burns, burnEntry{Len: b.Len, Peak: b.Peak, PeakAt: b.PeakAt})
			}
			sc.SLO = append(sc.SLO, se)
		}
		doc.Captures = append(doc.Captures, sc)
	}
	return doc
}

// WriteSeriesJSON writes the captures' sampled time series (and SLO
// verdicts, when present) as one JSON document — the -series-out
// format. Captures without a sampler are skipped.
func WriteSeriesJSON(w io.Writer, caps ...*Capture) error {
	enc := json.NewEncoder(w)
	return enc.Encode(seriesDocOf(caps...))
}

// WriteSeriesCSV writes the same data in long form — one row per
// sample point: capture,series,kind,t_ns,value.
func WriteSeriesCSV(w io.Writer, caps ...*Capture) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "capture,series,kind,t_ns,value")
	for _, c := range caps {
		if c == nil || c.Series == nil {
			continue
		}
		for _, name := range c.Series.Names() {
			ts := c.Series.Series(name)
			t, v := ts.Points()
			for i := range t {
				fmt.Fprintf(bw, "%s,%s,%s,%d,%s\n", c.Label, name, ts.Kind,
					int64(t[i]), strconv.FormatFloat(v[i], 'g', -1, 64))
			}
		}
	}
	return bw.Flush()
}

// WriteSeriesFile writes the captures' series artifact at path: CSV
// when the path ends in .csv, JSON otherwise — the -series-out
// plumbing shared by the commands.
func WriteSeriesFile(path string, caps ...*Capture) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	werr := WriteSeriesJSON
	if strings.HasSuffix(path, ".csv") {
		werr = WriteSeriesCSV
	}
	if err := werr(f, caps...); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// WriteChromeTraceFile writes the captures as one Chrome trace JSON
// file at path — the -trace-out plumbing shared by the commands.
func WriteChromeTraceFile(path string, caps ...*Capture) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteChromeTrace(f, caps...); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// WriteMetricsFile writes the captures' metric snapshots as plain text
// at path — the -metrics-out plumbing shared by the commands.
func WriteMetricsFile(path string, caps ...*Capture) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteMetricsText(f, caps...); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
