package obs

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
)

// First-divergence diagnosis between two exported observability
// artifacts. Exports are deterministic functions of a run, so the first
// event (trace) or line (metrics) where two artifacts disagree is the
// first observable symptom of a determinism break; everything after it
// is cascade. DiffTraceJSON and DiffMetricsText localize that point and,
// for traces, reconstruct the divergent span's causal ancestry from the
// parent_id chain the exporter embeds in span args.

// Divergence describes the first point where two artifacts disagree.
type Divergence struct {
	// Kind is "trace" or "metrics".
	Kind string
	// Index is the 0-based event index (trace) or 1-based line number
	// (metrics) of the first disagreement.
	Index int
	// Path locates the divergent object: "pid 1 span migration
	// (span_id 3, track node1)" for traces, the metric name for metrics.
	Path string
	// Detail says what differs (field-by-field for trace events, the two
	// lines for metrics).
	Detail string
	// Ancestry is the divergent span's causal chain, root first, each
	// entry "name (span_id N, track T)". Empty for metrics and for
	// non-span events.
	Ancestry []string
}

func (d *Divergence) String() string {
	if d == nil {
		return "identical"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "first divergence: %s[%d] %s\n  %s\n", d.Kind, d.Index, d.Path, d.Detail)
	if len(d.Ancestry) > 0 {
		b.WriteString("  causal ancestry (root first):\n")
		for i, a := range d.Ancestry {
			fmt.Fprintf(&b, "    %s%s\n", strings.Repeat("  ", i), a)
		}
	}
	return strings.TrimRight(b.String(), "\n")
}

// diffEvent is the subset of the Chrome trace_event schema the differ
// aligns on; Raw retains every field for the detail report.
type diffEvent struct {
	Raw map[string]any
}

func (e diffEvent) str(key string) string {
	v, _ := e.Raw[key].(string)
	return v
}

func (e diffEvent) num(key string) (float64, bool) {
	v, ok := e.Raw[key].(float64)
	return v, ok
}

func (e diffEvent) arg(key string) string {
	args, _ := e.Raw["args"].(map[string]any)
	v, _ := args[key].(string)
	return v
}

// pathOf renders a human-readable locator for one event.
func (e diffEvent) pathOf() string {
	pid, _ := e.num("pid")
	name := e.str("name")
	switch e.str("ph") {
	case "X":
		p := fmt.Sprintf("pid %d span %q", int(pid), name)
		if id := e.arg("span_id"); id != "" {
			p += fmt.Sprintf(" (span_id %s)", id)
		}
		return p
	case "i":
		return fmt.Sprintf("pid %d instant %q", int(pid), name)
	case "M":
		return fmt.Sprintf("pid %d metadata %q", int(pid), name)
	default:
		return fmt.Sprintf("pid %d %s event %q", int(pid), e.str("ph"), name)
	}
}

func parseTrace(data []byte) ([]diffEvent, error) {
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, fmt.Errorf("obs: trace is not valid JSON: %w", err)
	}
	if doc.TraceEvents == nil {
		return nil, fmt.Errorf("obs: trace has no traceEvents array")
	}
	evs := make([]diffEvent, len(doc.TraceEvents))
	for i, raw := range doc.TraceEvents {
		evs[i] = diffEvent{Raw: raw}
	}
	return evs, nil
}

// canonJSON renders any JSON value deterministically (encoding/json
// sorts map keys), for field-level comparison.
func canonJSON(v any) string {
	b, err := json.Marshal(v)
	if err != nil {
		return fmt.Sprintf("%v", v)
	}
	return string(b)
}

// eventDetail lists the fields on which two aligned events differ.
func eventDetail(a, b diffEvent) string {
	keys := map[string]bool{}
	for k := range a.Raw {
		keys[k] = true
	}
	for k := range b.Raw {
		keys[k] = true
	}
	names := make([]string, 0, len(keys))
	for k := range keys {
		names = append(names, k)
	}
	sort.Strings(names)
	var diffs []string
	for _, k := range names {
		av, aok := a.Raw[k]
		bv, bok := b.Raw[k]
		switch {
		case !aok:
			diffs = append(diffs, fmt.Sprintf("%s: <absent> != %s", k, canonJSON(bv)))
		case !bok:
			diffs = append(diffs, fmt.Sprintf("%s: %s != <absent>", k, canonJSON(av)))
		case canonJSON(av) != canonJSON(bv):
			diffs = append(diffs, fmt.Sprintf("%s: %s != %s", k, canonJSON(av), canonJSON(bv)))
		}
	}
	if len(diffs) == 0 {
		return "events identical" // unreachable when called on a mismatch
	}
	return strings.Join(diffs, "; ")
}

// ancestryOf walks the parent_id chain of a span event through the
// artifact's (pid, span_id) index and returns the chain root-first.
func ancestryOf(e diffEvent, evs []diffEvent) []string {
	if e.str("ph") != "X" {
		return nil
	}
	pid, _ := e.num("pid")
	index := map[string]diffEvent{}
	for _, ev := range evs {
		if p, _ := ev.num("pid"); p != pid || ev.str("ph") != "X" {
			continue
		}
		if id := ev.arg("span_id"); id != "" {
			index[id] = ev
		}
	}
	var chain []string
	cur := e
	for steps := 0; steps < 1000; steps++ { // cycle guard
		track := ""
		for _, ev := range evs {
			if p, _ := ev.num("pid"); int(p) == int(pid) && ev.str("ph") == "M" &&
				ev.str("name") == "thread_name" {
				tidA, _ := ev.num("tid")
				tidB, _ := cur.num("tid")
				if tidA == tidB {
					track = ev.arg("name")
				}
			}
		}
		entry := fmt.Sprintf("%s (span_id %s", cur.str("name"), cur.arg("span_id"))
		if track != "" {
			entry += fmt.Sprintf(", track %s", track)
		}
		entry += ")"
		chain = append(chain, entry)
		pidStr := cur.arg("parent_id")
		if pidStr == "" {
			break
		}
		next, ok := index[pidStr]
		if !ok {
			chain = append(chain, fmt.Sprintf("<unresolved parent span_id %s>", pidStr))
			break
		}
		cur = next
	}
	// Reverse: root first.
	for i, j := 0, len(chain)-1; i < j; i, j = i+1, j-1 {
		chain[i], chain[j] = chain[j], chain[i]
	}
	return chain
}

// DiffTraceJSON compares two exported Chrome traces event-by-event and
// returns the first divergence (nil when identical). The divergent
// event's causal ancestry is reconstructed from the span_id/parent_id
// coordinates in span args, using the first artifact's tree (falling
// back to the second when the event only exists there).
func DiffTraceJSON(a, b []byte) (*Divergence, error) {
	ea, err := parseTrace(a)
	if err != nil {
		return nil, fmt.Errorf("artifact A: %w", err)
	}
	eb, err := parseTrace(b)
	if err != nil {
		return nil, fmt.Errorf("artifact B: %w", err)
	}
	n := len(ea)
	if len(eb) < n {
		n = len(eb)
	}
	for i := 0; i < n; i++ {
		if canonJSON(ea[i].Raw) == canonJSON(eb[i].Raw) {
			continue
		}
		return &Divergence{
			Kind: "trace", Index: i,
			Path:     ea[i].pathOf(),
			Detail:   eventDetail(ea[i], eb[i]),
			Ancestry: ancestryOf(ea[i], ea),
		}, nil
	}
	if len(ea) != len(eb) {
		longer, which := ea, "A"
		if len(eb) > len(ea) {
			longer, which = eb, "B"
		}
		e := longer[n]
		return &Divergence{
			Kind: "trace", Index: n,
			Path:     e.pathOf(),
			Detail:   fmt.Sprintf("event count differs: A has %d, B has %d; first extra event only in %s", len(ea), len(eb), which),
			Ancestry: ancestryOf(e, longer),
		}, nil
	}
	return nil, nil
}

// DiffMetricsText compares two -metrics-out artifacts line-by-line and
// returns the first divergence (nil when identical). Path carries the
// metric name (the line's first field).
func DiffMetricsText(a, b []byte) (*Divergence, error) {
	la := strings.Split(strings.TrimRight(string(a), "\n"), "\n")
	lb := strings.Split(strings.TrimRight(string(b), "\n"), "\n")
	n := len(la)
	if len(lb) < n {
		n = len(lb)
	}
	for i := 0; i < n; i++ {
		if la[i] == lb[i] {
			continue
		}
		return &Divergence{
			Kind: "metrics", Index: i + 1,
			Path:   metricNameOf(la[i], lb[i]),
			Detail: fmt.Sprintf("A: %s\n  B: %s", strings.TrimSpace(la[i]), strings.TrimSpace(lb[i])),
		}, nil
	}
	if len(la) != len(lb) {
		longer := la
		if len(lb) > len(la) {
			longer = lb
		}
		return &Divergence{
			Kind: "metrics", Index: n + 1,
			Path:   metricNameOf(longer[n], ""),
			Detail: fmt.Sprintf("line count differs: A has %d, B has %d", len(la), len(lb)),
		}, nil
	}
	return nil, nil
}

// metricNameOf extracts the metric name from the first non-empty of the
// two lines (section headers report as themselves).
func metricNameOf(a, b string) string {
	line := a
	if strings.TrimSpace(line) == "" {
		line = b
	}
	line = strings.TrimSpace(line)
	if line == "" {
		return "<blank line>"
	}
	if strings.HasPrefix(line, "#") || strings.HasPrefix(line, "===") {
		return line
	}
	if f := strings.Fields(line); len(f) > 0 {
		return f[0]
	}
	return line
}
